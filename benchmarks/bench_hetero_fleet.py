"""Heterogeneous fleets: cost-weighted shards, placement, utilization.

The Topology PR shards a mixed fleet's trailing updates by *predicted
throughput* (each rank's rows proportional to its cost-model
``update_rate``) instead of uniformly, and lets ``Solver.tune`` search
device placement analytically.  This bench records what that buys on an
H100 + A100 fleet, everything priced by the discrete-event engine:

1. weighted vs uniform sharding makespan over sizes - weighted must be
   strictly faster, since uniform shards make every sweep wait for the
   A100;
2. the placement search win over naively using every device: the tuned
   plan is never slower than the full-fleet default, and reports which
   sub-fleet won;
3. the per-device utilization spread of the weighted run - the
   straggler diagnostic one ``format_breakdown`` call now shows.

Run standalone with ``--quick`` for the CI smoke slice::

    PYTHONPATH=src python benchmarks/bench_hetero_fleet.py --quick
"""

import argparse

import repro
from repro import Topology
from repro.core import emit_svd_graph
from repro.report import format_seconds, format_table
from repro.sim import partition_graph, simulate_events
from repro.sim.partition import fleet_scale

FLEET = Topology(devices=("h100", "h100", "h100", "a100"))
SIZES = (2048, 8192)
QUICK_SIZES = (2048,)


def fleet_makespans(solver: "repro.Solver", n: int) -> tuple:
    """Event-priced makespans of weighted vs uniform sharding at ``n``."""
    config = solver.config
    scale = fleet_scale(FLEET, config)
    labels = tuple(
        f"dev{i}:{d}" for i, d in enumerate(FLEET.devices)
    )
    weighted = simulate_events(
        partition_graph(
            emit_svd_graph(n, config), topology=FLEET, config=config
        ),
        config, device_scale=scale, device_labels=labels,
    )
    uniform = simulate_events(
        partition_graph(
            emit_svd_graph(n, config), topology=FLEET, config=config,
            weights=(1.0,) * FLEET.ngpu,
        ),
        config, device_scale=scale, device_labels=labels,
    )
    assert weighted.makespan_s < uniform.makespan_s, (
        f"n={n}: cost-weighted shards must beat uniform shards"
    )
    return weighted, uniform


def util_spread(ev) -> float:
    """Max minus min per-device busy share of the makespan."""
    util = ev.breakdown().device_utilization()
    return max(util.values()) - min(util.values())


def sharding_rows(solver: "repro.Solver", sizes) -> list:
    """Weighted-vs-uniform table block, one row pair per size."""
    rows = []
    for n in sizes:
        weighted, uniform = fleet_makespans(solver, n)
        for name, ev in (("weighted", weighted), ("uniform", uniform)):
            rows.append(
                [
                    str(n),
                    name,
                    format_seconds(ev.makespan_s).strip(),
                    f"{uniform.makespan_s / ev.makespan_s:.2f}x",
                    f"{util_spread(ev):5.1%}",
                ]
            )
    return rows


def placement_rows(solver: "repro.Solver", n: int) -> list:
    """Placement search vs naively running on every device."""
    naive = solver.predict(n, topology=FLEET)
    plan = solver.tune(n, budget=20, topology=FLEET)
    assert plan.best.predicted_s <= naive.total_s * (1 + 1e-12), (
        "the placement search may never lose to the naive full fleet"
    )
    assert plan.speedup >= 1.0, "pinned never slower than the default"
    best = plan.best
    placement = (
        repr(best.topology) if best.topology is not None
        else f"ngpu={best.ngpu} (homogeneous default axis)"
    )
    return [
        [str(n), "naive full fleet", repr(FLEET),
         format_seconds(naive.total_s).strip()],
        [str(n), f"tuned (streams={best.streams})", placement,
         format_seconds(best.predicted_s).strip()],
    ]


def utilization_rows(solver: "repro.Solver", n: int) -> list:
    """Per-device busy share of the weighted run at ``n``."""
    weighted, _ = fleet_makespans(solver, n)
    util = weighted.breakdown().device_utilization()
    return [
        [label, f"{share:6.1%}"] for label, share in util.items()
    ]


def run(quick: bool = False) -> str:
    solver = repro.Solver(backend="h100", precision="fp32")
    sizes = QUICK_SIZES if quick else SIZES
    text = format_table(
        ["n", "sharding", "makespan", "vs uniform", "util spread"],
        sharding_rows(solver, sizes),
        title="cost-weighted vs uniform sharding on "
        f"{FLEET!r} (event-simulated)",
    )
    text += "\n\n" + format_table(
        ["n", "strategy", "placement", "predicted"],
        placement_rows(solver, sizes[0]),
        title="placement search vs naive all-devices",
    )
    text += "\n\n" + format_table(
        ["device", "busy share"],
        utilization_rows(solver, sizes[-1]),
        title=f"per-device utilization, weighted shards at n={sizes[-1]}",
    )
    return text


def metrics() -> dict:
    """Deterministic predicted-time metrics for the CI regression gate."""
    from conftest import get_solver

    solver = get_solver()
    weighted, uniform = fleet_makespans(solver, 8192)
    plan = solver.tune(2048, budget=20, topology=FLEET)
    return {
        "hetero/weighted_makespan_s@8192": weighted.makespan_s,
        "hetero/uniform_makespan_s@8192": uniform.makespan_s,
        "hetero/weighted_uniform_ratio@8192": (
            weighted.makespan_s / uniform.makespan_s
        ),
        "hetero/util_spread@8192": util_spread(weighted),
        "hetero/placement_tuned_s@2048": plan.best.predicted_s,
    }


def test_hetero_fleet(benchmark, solver):
    from conftest import save_result

    text = run(quick=False)
    save_result("hetero_fleet", text)
    benchmark(lambda: solver.predict(8192, topology=FLEET))


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smoke slice: one small size, no results file",
    )
    args = parser.parse_args()
    print(run(quick=args.quick))
