"""Serving-layer benchmark: dynamic batching vs serial under traffic.

PR 6 added ``repro.serve``: an async request queue whose dynamic batcher
groups same-shape-class requests into one batched launch graph, with
admission control pricing every batch analytically before dispatch.
This bench replays seeded Poisson and bursty ON/OFF traces through the
*virtual-clock* service simulator (:func:`repro.serve.simulate_service`
- the same batcher/admission/metrics stack as the live service, with
batch service time equal to the analytic prediction), so every number is
deterministic across machines:

1. **Poisson trace** - steady overload at 4000 req/s across four
   problem sizes in two shape classes; dynamic batching must show
   strictly better goodput than the batch=1 serial baseline (the PR's
   acceptance criterion, asserted here);
2. **bursty trace** - ON/OFF modulated arrivals at twice the peak rate,
   the workload that separates a latency-bounded batcher from a naive
   one;
3. **knob sweep** - goodput and p99 across ``max_batch``, showing the
   occupancy-vs-latency tradeoff.

Run standalone with ``--quick`` for the CI bench-gate slice::

    PYTHONPATH=src python benchmarks/bench_serving.py --quick
"""

import argparse

from repro.report import format_table
from repro.serve import bursty_trace, poisson_trace, simulate_service

#: Problem sizes of the traces: two shape classes at tilesize 32
#: (120/128 -> npad 128, 250/256 -> npad 256), so heterogeneous-n
#: requests coalesce into shared batched graphs.
TRACE_NS = (120, 128, 250, 256)

#: Offered load (req/s) of the Poisson trace - past the serial
#: capacity of one device, inside the batched capacity.
RATE_HZ = 4000.0

#: Per-request latency SLO of both traces.
SLO_S = 0.05


def make_traces(quick: bool):
    """The two seeded traces of this bench (smaller when quick)."""
    num = 600 if quick else 4000
    poisson = poisson_trace(num, RATE_HZ, ns=TRACE_NS, slo_s=SLO_S, seed=7)
    bursty = bursty_trace(
        num, 2 * RATE_HZ, ns=TRACE_NS, mean_on_s=0.05, mean_off_s=0.05,
        slo_s=SLO_S, seed=11,
    )
    return poisson, bursty


def service_row(label, stats) -> list:
    """One table row of a simulated serving run."""
    return [
        label,
        f"{stats.completed}",
        f"{stats.shed}",
        f"{stats.mean_batch_size:.1f}",
        f"{stats.p50_latency_s * 1e3:.2f} ms",
        f"{stats.p99_latency_s * 1e3:.2f} ms",
        f"{stats.goodput_rps:.0f}/s",
    ]


def trace_rows(trace, solver) -> tuple:
    """Batched vs serial rows for one trace (returns rows, both stats)."""
    batched = simulate_service(trace, solver, max_batch=16, max_wait_s=0.005)
    serial = simulate_service(trace, solver, max_batch=1, max_wait_s=0.0)
    rows = [
        service_row("dynamic batch<=16", batched),
        service_row("serial batch=1", serial),
    ]
    return rows, batched, serial


def knob_rows(trace, solver) -> list:
    """Goodput/latency across the max_batch knob."""
    rows = []
    for max_batch in (1, 4, 16, 64):
        stats = simulate_service(
            trace, solver, max_batch=max_batch, max_wait_s=0.005
        )
        rows.append(service_row(f"max_batch={max_batch}", stats))
    return rows


def run(quick: bool = False) -> str:
    from conftest import get_solver

    solver = get_solver()
    poisson, bursty = make_traces(quick)

    p_rows, p_batched, p_serial = trace_rows(poisson, solver)
    assert p_batched.goodput_rps > p_serial.goodput_rps, (
        "dynamic batching must beat the serial baseline on the Poisson "
        f"trace (got {p_batched.goodput_rps:.0f} vs "
        f"{p_serial.goodput_rps:.0f} req/s)"
    )
    headers = [
        "policy", "completed", "shed", "batch", "p50", "p99", "goodput",
    ]
    text = format_table(
        headers, p_rows,
        title=f"Poisson trace ({len(poisson)} req @ {RATE_HZ:.0f}/s, "
        f"SLO {SLO_S * 1e3:.0f} ms, h100 fp32)",
    )

    b_rows, b_batched, _ = trace_rows(bursty, solver)
    text += "\n\n" + format_table(
        headers, b_rows,
        title=f"bursty ON/OFF trace ({len(bursty)} req, peak "
        f"{2 * RATE_HZ:.0f}/s)",
    )
    assert b_batched.completed + b_batched.shed == len(bursty)

    text += "\n\n" + format_table(
        headers, knob_rows(poisson, solver),
        title="max_batch knob on the Poisson trace "
        "(occupancy vs latency tradeoff)",
    )
    return text


def metrics() -> dict:
    """Deterministic predicted-time metrics for the CI regression gate.

    Lower-is-better only (the gate fails on increases): request
    latencies and device seconds per completed request.  Goodput is
    higher-is-better and therefore reported in the rendered tables, not
    gated.
    """
    from conftest import get_solver

    solver = get_solver()
    poisson, bursty = make_traces(quick=True)
    p = simulate_service(poisson, solver, max_batch=16, max_wait_s=0.005)
    b = simulate_service(bursty, solver, max_batch=16, max_wait_s=0.005)
    return {
        "serving/poisson_p50_latency_s": p.p50_latency_s,
        "serving/poisson_p99_latency_s": p.p99_latency_s,
        "serving/poisson_device_s_per_completed": p.predicted_s / p.completed,
        "serving/bursty_p50_latency_s": b.p50_latency_s,
        "serving/bursty_p99_latency_s": b.p99_latency_s,
    }


def test_serving(benchmark, solver):
    from conftest import save_result

    text = run(quick=False)
    save_result("serving", text)
    trace = poisson_trace(200, RATE_HZ, ns=TRACE_NS, slo_s=SLO_S, seed=7)
    benchmark(
        lambda: simulate_service(trace, solver, max_batch=16,
                                 max_wait_s=0.005)
    )


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="bench-gate slice: shorter traces, same policies",
    )
    args = parser.parse_args()
    print(run(quick=args.quick))
