"""Figure 6: relative runtime of the computational stages.

Regenerates the stage breakdown per device/size and asserts the paper's
two observations: stage 1 grows in relative weight with matrix size, and
the trailing-update-to-panel ratio climbs (steeply on the 24-SM RTX4060
between 8k and 32k, once full occupancy is exceeded).
"""

from conftest import save_result
from repro.experiments import fig6


def test_fig6_regenerates(benchmark):
    rows = benchmark(fig6.run)
    save_result("fig6_stages", fig6.render(rows))
    by = {(r.backend, r.n): r for r in rows}

    for be in fig6.FIG6_DEVICES:
        # stage 1 share grows from small to large sizes
        assert by[(be, 16384)].stage1 > by[(be, 512)].stage1, be
        # trailing/panel ratio grows with size
        assert (
            by[(be, 32768)].update_to_panel > by[(be, 2048)].update_to_panel
        ), be

    # RTX4060: steep growth between 8k and 32k (few SMs saturate early)
    rtx_growth = (
        by[("rtx4060", 32768)].update_to_panel
        / by[("rtx4060", 8192)].update_to_panel
    )
    h100_growth = (
        by[("h100", 32768)].update_to_panel / by[("h100", 8192)].update_to_panel
    )
    assert rtx_growth > h100_growth

    # shares always sum to one
    for r in rows:
        assert abs(r.panel + r.update + r.brd + r.solve - 1.0) < 1e-9
