"""Figure 4: runtime ratio of the unified API to the vendor libraries.

Regenerates the cuSOLVER / rocSOLVER / oneMKL comparisons up to 16384 (the
64-bit addressing limit the paper cites) and asserts the reported shape:
cuSOLVER ahead on H100/A100 (unified at 50-90%), unified ahead on the
consumer RTX4060 at scale, rocSOLVER behind everywhere, oneMKL crossover
past 2048.
"""

from conftest import save_result
from repro.experiments import ratios


def test_fig4_regenerates(benchmark):
    curves = benchmark(ratios.fig4_curves)
    save_result(
        "fig4_vendor",
        ratios.render_curves(curves, "Figure 4: unified vs vendor libraries"),
    )
    by = {(c.backend, c.library): c for c in curves}

    # vendor charts stop at 16384 (addressing limitation)
    for c in curves:
        assert max(c.sizes) <= 16384

    # H100/A100: cuSOLVER ahead at every size; unified within 40-100%
    for be in ("h100", "a100"):
        c = by[(be, "cusolver")]
        assert all(r <= 1.0 for r in c.ratios), be
        assert all(r >= 0.35 for r in c.ratios), be

    # consumer RTX4060: unified ahead at large sizes
    c = by[("rtx4060", "cusolver")]
    for n in (8192, 16384):
        assert c.ratios[c.sizes.index(n)] > 1.0

    # MI250: unified beats rocSOLVER at every size (paper geomean 5.9)
    c = by[("mi250", "rocsolver")]
    assert all(r > 1.0 for r in c.ratios)
    assert c.geomean > 2.5

    # PVC: oneMKL wins small, unified wins past the crossover
    c = by[("pvc", "onemkl")]
    assert c.ratios[c.sizes.index(512)] < 1.0
    assert c.ratios[c.sizes.index(16384)] > 1.0
