"""Table 3: hyperparameter sensitivity of the unified kernels.

Regenerates both parameter studies over the paper's size grid, asserts the
sign pattern the paper reports, and benchmarks the analytic sweep itself.
"""

from conftest import save_result
from repro.experiments import table3


def _index(cells):
    return {(c.study, c.backend, c.precision, c.n): c.delta_pct for c in cells}


def test_table3_regenerates(benchmark):
    cells = benchmark(table3.run)
    save_result("table3_hyperparams", table3.render(cells))
    d = _index(cells)

    # TILESIZE 64->32: positive (32 wins) at small sizes everywhere
    for be, pr in table3.CONFIGS:
        assert d[("tilesize", be, pr, 512)] > 0
        assert d[("tilesize", be, pr, 2048)] > 0
    # ... negative (64 wins) at 32k except MI250 FP64 (paper Table 3)
    assert d[("tilesize", "h100", "fp32", 32768)] < 0
    assert d[("tilesize", "h100", "fp64", 32768)] < 0
    assert d[("tilesize", "mi250", "fp32", 32768)] < 0
    assert d[("tilesize", "mi250", "fp64", 32768)] > 0

    # COLPERBLOCK 32->16: near-zero at 128, increasingly negative at 32k,
    # worst on the AMD wavefronts
    for be, pr in table3.CONFIGS:
        assert abs(d[("colperblock", be, pr, 128)]) < 3.0
        assert d[("colperblock", be, pr, 32768)] < -3.0
    assert (
        d[("colperblock", "mi250", "fp32", 32768)]
        < d[("colperblock", "h100", "fp32", 32768)]
    )
