"""Cluster strong scaling under the discrete-event scheduler.

PR 8 extends the partitioner to ``nodes x gpus`` two-tier topologies and
prices them through the PPT-style discrete-event engine
(:func:`repro.sim.events.simulate_events`): every launch occupies a
resource - device stream pool, peer-link lane, or the node's one fabric
lane - for its priced duration, so the makespan includes the FIFO
queueing a greedy list scheduler cannot express.  This bench records
what that unlocks:

1. strong scaling over node counts at fixed gpus-per-node, reporting
   the makespan, speedup over one node, the per-tier comm split
   (node-local link vs inter-node fabric) and the contention share of
   the makespan;
2. the fabric-bandwidth sensitivity: halving the inter-node bandwidth
   must slow the prediction, and extra fabric lanes must relieve (never
   worsen) the queueing of oversubscribed batched gathers.

Run standalone with ``--quick`` for the CI smoke slice::

    PYTHONPATH=src python benchmarks/bench_cluster_scaling.py --quick
"""

import argparse

import repro
from repro.report import format_seconds, format_table

SIZES = (8192, 16384)
QUICK_SIZES = (4096,)
NODES = (1, 2, 4)
GPUS_PER_NODE = 2


def scaling_rows(solver: "repro.Solver", n: int) -> list:
    """One cluster strong-scaling table block for matrix order ``n``."""
    rows = []
    base_total = None
    for m in NODES:
        result = solver.predict(
            n, ngpu=GPUS_PER_NODE, nodes=m, check_capacity=False
        )
        if m == 1:
            # one node is the greedy device-aware schedule: no fabric,
            # no inter-tier comm to queue on
            assert result.comm_s >= 0.0
            base_total = result.total_s
            inter_s = getattr(result, "comm_inter_s", 0.0)
            queue_share = 0.0
        else:
            assert result.comm_inter_s > 0.0, f"n={n}, m={m}: no inter comm"
            inter_s = result.comm_inter_s
            queue_share = result.contention_share
        rows.append(
            [
                str(n),
                f"{m} x {GPUS_PER_NODE}",
                format_seconds(result.total_s).strip(),
                f"{base_total / result.total_s:.2f}x",
                format_seconds(getattr(result, "comm_intra_s", 0.0)).strip(),
                format_seconds(inter_s).strip(),
                f"{queue_share:5.1%}",
            ]
        )
    return rows


def fabric_rows(solver: "repro.Solver", n: int) -> list:
    """Inter-node bandwidth sensitivity at a fixed topology."""
    fast = solver.predict(n, ngpu=GPUS_PER_NODE, nodes=2, check_capacity=False)
    slow = solver.predict(
        n, ngpu=GPUS_PER_NODE, nodes=2, fabric_gbs=25.0, check_capacity=False
    )
    assert slow.total_s > fast.total_s, "halved fabric must cost time"
    return [
        [str(n), "50 GB/s (default)", format_seconds(fast.total_s).strip()],
        [str(n), "25 GB/s", format_seconds(slow.total_s).strip()],
    ]


def contention_rows(solver: "repro.Solver") -> list:
    """Oversubscribed batched gathers: fabric lanes vs FIFO queueing."""
    from repro.core import emit_batched_graph
    from repro.sim import partition_graph, simulate_events

    config = solver.config
    storage = config.require_precision("bench")
    graph = partition_graph(
        emit_batched_graph(256, 32, config, streams=1),
        2, nodes=4, fabric=config.fabric_spec(),
    )
    rows = []
    prev = None
    for lanes in (1, 2, 8):
        ev = simulate_events(
            graph, config, storage, streams=1, fabric_lanes=lanes
        )
        if prev is not None:
            assert ev.contention_s <= prev, "more lanes must relieve queueing"
        prev = ev.contention_s
        rows.append(
            [
                str(lanes),
                format_seconds(ev.makespan_s).strip(),
                format_seconds(ev.contention_s).strip(),
                f"{ev.contention_share:5.1%}",
            ]
        )
    assert rows[0][2] != rows[-1][2], "lane sweep should move contention"
    return rows


def run(quick: bool = False) -> str:
    solver = repro.Solver(backend="h100", precision="fp32")
    sizes = QUICK_SIZES if quick else SIZES
    body = []
    for n in sizes:
        body.extend(scaling_rows(solver, n))
    text = format_table(
        ["n", "nodes x gpus", "makespan", "speedup", "comm intra",
         "comm inter", "queue share"],
        body,
        title="cluster strong scaling, discrete-event scheduler "
        "(h100 fp32, NVLink + 50 GB/s fabric)",
    )
    fab = []
    for n in sizes:
        fab.extend(fabric_rows(solver, n))
    text += "\n\n" + format_table(
        ["n", "fabric bandwidth", "makespan"],
        fab,
        title="inter-node fabric sensitivity at 2 x "
        f"{GPUS_PER_NODE} devices",
    )
    text += "\n\n" + format_table(
        ["fabric lanes", "makespan", "total FIFO wait", "queue share"],
        contention_rows(solver),
        title="oversubscribed batched gathers: 4 nodes -> node 0, "
        "batch=32",
    )
    return text


def metrics() -> dict:
    """Deterministic predicted-time metrics for the CI regression gate."""
    from conftest import get_solver

    solver = get_solver()
    out = {}
    for m in (2, 4):
        ev = solver.predict(
            8192, ngpu=GPUS_PER_NODE, nodes=m, check_capacity=False
        )
        out[f"cluster/makespan_s@8192_m{m}"] = ev.makespan_s
    ev4 = solver.predict(8192, ngpu=GPUS_PER_NODE, nodes=4,
                         check_capacity=False)
    out["cluster/comm_inter_s@8192_m4"] = ev4.comm_inter_s
    out["cluster/contention_s@8192_m4"] = ev4.contention_s
    out["cluster/batched_makespan_s@512_b64_m2"] = solver.predict(
        512, batch=64, ngpu=GPUS_PER_NODE, nodes=2, check_capacity=False
    ).makespan_s
    return out


def test_cluster_scaling(benchmark, solver):
    from conftest import save_result

    text = run(quick=False)
    save_result("cluster_scaling", text)
    benchmark(
        lambda: solver.predict(
            8192, ngpu=GPUS_PER_NODE, nodes=2, check_capacity=False
        )
    )


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smoke slice: one small size, no results file",
    )
    args = parser.parse_args()
    print(run(quick=args.quick))
