"""Workload diversity: the low-rank and eigensolver emitters, priced.

The workloads PR routes two new front doors through the shared IR - the
randomized low-rank SVD (:meth:`repro.Solver.svd_lowrank` /
``predict(rank=)``) and the symmetric eigensolver
(:meth:`repro.Solver.eigh` / ``predict(workload="eigh")``).  This bench
records what the cost model says they buy:

1. the low-rank speedup over the full square pipeline across sizes and
   ranks - sketching must win, and win more at larger sizes, since the
   expensive finishing solve runs at the sample width, not ``n``;
2. the eigensolver's price relative to the square SVD across sizes -
   near one, since the band reduction reuses the square pipeline's
   tiles and only the tail differs;
3. how both compose with the execution axes (multi-GPU, streams)
   through the one ``predict`` front door.

Run standalone with ``--quick`` for the CI smoke slice::

    PYTHONPATH=src python benchmarks/bench_workloads.py --quick
"""

import argparse

import repro
from repro.report import format_seconds, format_table

SIZES = (2048, 8192)
QUICK_SIZES = (2048,)
RANKS = (16, 64)


def lowrank_rows(solver: "repro.Solver", sizes) -> list:
    """Low-rank vs full-pipeline price, one row per (n, rank)."""
    rows = []
    for n in sizes:
        full = solver.predict(n, check_capacity=False)
        for rank in RANKS:
            lr = solver.predict(n, rank=rank, check_capacity=False)
            assert lr.total_s < full.total_s, (
                f"n={n} rank={rank}: sketching must beat the full pipeline"
            )
            rows.append(
                [
                    str(n),
                    str(rank),
                    format_seconds(lr.total_s).strip(),
                    format_seconds(full.total_s).strip(),
                    f"{full.total_s / lr.total_s:.1f}x",
                ]
            )
    return rows


def eigh_rows(solver: "repro.Solver", sizes) -> list:
    """Eigensolver vs square-SVD price, one row per size."""
    rows = []
    for n in sizes:
        eig = solver.predict(n, workload="eigh", check_capacity=False)
        svd = solver.predict(n, check_capacity=False)
        rows.append(
            [
                str(n),
                format_seconds(eig.total_s).strip(),
                format_seconds(svd.total_s).strip(),
                f"{eig.total_s / svd.total_s:.3f}",
            ]
        )
    return rows


def composition_rows(solver: "repro.Solver", n: int) -> list:
    """Both workloads through the multi-GPU / stream axes."""
    rows = []
    for label, kwargs in (
        ("lowrank", {"rank": RANKS[-1]}),
        ("eigh", {"workload": "eigh"}),
    ):
        single = solver.predict(n, check_capacity=False, **kwargs)
        multi = solver.predict(
            n, ngpu=4, streams=2, check_capacity=False, **kwargs
        )
        assert multi.makespan_s < single.total_s, (
            f"{label}: four devices with streams must beat one device"
        )
        rows.append(
            [
                label,
                str(n),
                format_seconds(single.total_s).strip(),
                format_seconds(multi.makespan_s).strip(),
                f"{single.total_s / multi.makespan_s:.2f}x",
            ]
        )
    return rows


def run(quick: bool = False) -> str:
    solver = repro.Solver(backend="h100", precision="fp32")
    sizes = QUICK_SIZES if quick else SIZES
    text = format_table(
        ["n", "rank", "low-rank", "full svd", "speedup"],
        lowrank_rows(solver, sizes),
        title="randomized low-rank vs the full square pipeline (predicted)",
    )
    text += "\n\n" + format_table(
        ["n", "eigh", "svd", "eigh/svd"],
        eigh_rows(solver, sizes),
        title="symmetric eigensolver vs square SVD (predicted)",
    )
    text += "\n\n" + format_table(
        ["workload", "n", "1 gpu", "4 gpus x 2 streams", "speedup"],
        composition_rows(solver, sizes[-1]),
        title="workloads through the composition axes",
    )
    return text


def metrics() -> dict:
    """Deterministic predicted-time metrics for the CI regression gate."""
    from conftest import get_solver

    solver = get_solver()
    lr = solver.predict(8192, rank=64, check_capacity=False)
    full = solver.predict(8192, check_capacity=False)
    eig = solver.predict(8192, workload="eigh", check_capacity=False)
    eig4 = solver.predict(
        8192, workload="eigh", ngpu=4, streams=2, check_capacity=False
    )
    return {
        "lowrank/predicted_s@8192_r64": lr.total_s,
        "lowrank/full_over_lowrank@8192_r64": full.total_s / lr.total_s,
        "eigh/predicted_s@8192": eig.total_s,
        "eigh/eigh_svd_ratio@8192": eig.total_s / full.total_s,
        "eigh/fourgpu_makespan_s@8192": eig4.makespan_s,
    }


def test_workloads(benchmark, solver):
    from conftest import save_result

    text = run(quick=False)
    save_result("workloads", text)
    benchmark(lambda: solver.predict(8192, rank=64, check_capacity=False))


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smoke slice: one small size, no results file",
    )
    args = parser.parse_args()
    print(run(quick=args.quick))
