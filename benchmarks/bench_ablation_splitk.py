"""Ablation: SPLITK panel parallelism (paper section 3.3).

SPLITK is the paper's purely computational knob: the same operations in
the same order, split across more threads with shared-memory reductions.
Asserts that panel time improves up to a point and that the knob never
changes numerics; benchmarks the analytic sweep.
"""

import numpy as np
from conftest import save_result
from repro.core import svdvals
from repro.experiments import ablations
from repro.sim import KernelParams


def test_splitk_ablation(benchmark):
    rows = benchmark(ablations.run_splitk)
    save_result("ablation_splitk", ablations.render_splitk(rows))

    t = {r.splitk: r.panel_seconds for r in rows}
    # more threads per column shorten the serial chain...
    assert t[8] < t[1]
    # ...but each doubling helps less (reduction/synchronization cost)
    gain_1_2 = t[1] / t[2]
    gain_8_16 = t[8] / t[16]
    assert gain_1_2 > gain_8_16

    # SPLITK is computational only: values identical across settings
    rng = np.random.default_rng(1)
    A = rng.standard_normal((64, 64))
    ref = svdvals(A, backend="h100", params=KernelParams(32, 32, 1))
    for sk in (2, 8, 16):
        got = svdvals(A, backend="h100", params=KernelParams(32, 32, sk))
        np.testing.assert_array_equal(got, ref)
