"""Ablation: fused vs unfused kernel schedules (paper section 3.2).

Asserts the launch-count scaling claim (quadratic unfused vs linear fused
in the tile count) and that fusion's simulated advantage grows with size;
benchmarks the *numeric* fused vs unfused execution at a real size to show
the numerics are identical while only the schedule differs.
"""

import numpy as np
from conftest import save_result
from repro.core import svdvals
from repro.experiments import ablations


def test_fusion_ablation(benchmark):
    rows = ablations.run_fusion()
    save_result("ablation_fusion", ablations.render_fusion(rows))

    for r in rows:
        assert r.launches_fused < r.launches_unfused
        assert r.speedup > 1.0
    # advantage grows with size (launch overhead amortization)
    assert rows[-1].launches_unfused / rows[-1].launches_fused > (
        rows[0].launches_unfused / rows[0].launches_fused
    )

    # numeric equality at a real size
    rng = np.random.default_rng(0)
    A = rng.standard_normal((96, 96))
    vf = svdvals(A, backend="h100", fused=True)
    vu = svdvals(A, backend="h100", fused=False)
    np.testing.assert_array_equal(vf, vu)

    benchmark(lambda: svdvals(A, backend="h100", fused=True))
