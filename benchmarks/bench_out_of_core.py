"""Out-of-core execution through the rewritten stage graph.

PR 4 made out-of-core a graph axis: ``Solver.predict(n, out_of_core=True)``
rewrites the emitted LaunchGraph into a host-resident plan - pinned
panels, trailing tile rows streamed through a bounded device window with
explicit ``h2d_tile``/``d2h_tile`` transfer nodes priced over the PCIe
link - replacing the closed-form streaming formula.  This bench records
what the rewriter unlocks:

1. the **capacity cliff**: totals and io share across the in-core ->
   streamed boundary of the H100 (io is zero below capacity by
   construction);
2. the **closed-form oracle**: the graph pricing against the legacy
   formula on its modeled regime;
3. the **composition axes**: out_of_core x streams (transfers overlap
   compute on a dedicated host-link lane) and out_of_core x ngpu
   (partition first, then rewrite each shard against its own budget).

Run standalone with ``--quick`` for the CI smoke slice::

    PYTHONPATH=src python benchmarks/bench_out_of_core.py --quick
"""

import argparse

from repro.report import format_breakdown, format_seconds, format_table
from repro.sim.scaling import out_of_core_closed_form_resolved


def cliff_rows(solver, sizes, budget_gb=None) -> list:
    from repro.sim.outofcore import _WORKING_FACTOR

    rows = []
    sizeof = solver.precision.sizeof
    cap = (
        solver.backend.max_n(solver.precision)
        if budget_gb is None
        else int((budget_gb * 2**30 / (sizeof * _WORKING_FACTOR)) ** 0.5)
    )
    prev = 0.0
    for n in sizes:
        bd = solver.predict(n, out_of_core=True, oc_budget_gb=budget_gb)
        mode = "in-core" if n <= cap else "streamed"
        if n <= cap:
            assert bd.io_s == 0.0, "io must be zero below capacity"
        else:
            assert bd.io_s > 0.0 and bd.launches["h2d_tile"] > 0
        assert bd.total_s > prev, f"n={n}: total not monotone"
        prev = bd.total_s
        share = bd.io_s / bd.total_s
        rows.append(
            [
                str(n),
                mode,
                format_seconds(bd.total_s).strip(),
                format_seconds(bd.io_s).strip(),
                f"{share:5.1%}",
                str(bd.launches.get("h2d_tile", 0)),
            ]
        )
    return rows


def oracle_rows(solver, sizes) -> list:
    rows = []
    for n in sizes:
        new = solver.predict(n, out_of_core=True)
        old = out_of_core_closed_form_resolved(n, solver.config)
        ratio = new.total_s / old.total_s
        assert abs(ratio - 1.0) < 0.15, f"n={n}: oracle drift {ratio:.3f}"
        rows.append(
            [
                str(n),
                format_seconds(new.total_s).strip(),
                format_seconds(old.total_s).strip(),
                f"{ratio:.3f}",
            ]
        )
    return rows


def composition_rows(solver, n: int, budget_gb: float) -> list:
    serial = solver.predict(n, out_of_core=True, oc_budget_gb=budget_gb)
    sched = solver.predict(
        n, out_of_core=True, streams=2, oc_budget_gb=budget_gb
    )
    assert sched.total_s < serial.total_s, "overlap must beat serial pricing"
    two = solver.predict(n, out_of_core=True, ngpu=2, oc_budget_gb=budget_gb)
    both = solver.predict(
        n, out_of_core=True, ngpu=2, streams=2, oc_budget_gb=budget_gb
    )
    assert both.total_s < two.total_s
    return [
        [str(n), "1 x 1", format_seconds(serial.total_s).strip(),
         format_seconds(serial.io_s).strip(), "stage-structured pricing"],
        [str(n), "1 x 2", format_seconds(sched.total_s).strip(),
         format_seconds(sched.io_s).strip(), "host-link lane overlap"],
        [str(n), "2 x 1", format_seconds(two.total_s).strip(),
         format_seconds(two.io_s).strip(), "per-device shard windows"],
        [str(n), "2 x 2", format_seconds(both.total_s).strip(),
         format_seconds(both.io_s).strip(), "both axes composed"],
    ]


def run(quick: bool = False) -> str:
    from conftest import get_solver

    solver = get_solver()
    if quick:
        # the CI smoke slice forces streaming at small sizes with a tiny
        # device budget instead of pricing 150k-order graphs
        budget = 0.05
        cliff = cliff_rows(solver, (2048, 4096, 8192, 16384), budget)
        title = f"out-of-core cliff (h100 fp32, {budget} GiB window)"
    else:
        cap = solver.backend.max_n("fp32")
        cliff = cliff_rows(
            solver, (cap // 2, cap, int(cap * 1.25), int(cap * 1.6))
        )
        title = f"out-of-core cliff (h100 fp32, capacity n={cap})"
    text = format_table(
        ["n", "mode", "total", "io", "io share", "h2d launches"],
        cliff, title=title,
    )

    if not quick:
        cap = solver.backend.max_n("fp32")
        text += "\n\n" + format_table(
            ["n", "graph", "closed form", "ratio"],
            oracle_rows(solver, (int(cap * 1.25), int(cap * 1.6))),
            title="rewritten-graph pricing vs closed-form oracle "
            "(agreement within 15%)",
        )

    # pick a per-device budget the 2-GPU shards still overflow, so the
    # ngpu rows of the composition table stream too
    n, budget = (4096, 0.03) if quick else (32768, 1.0)
    text += "\n\n" + format_table(
        ["n", "gpus x streams", "total", "io", "model"],
        composition_rows(solver, n, budget),
        title=f"out_of_core x ngpu x streams composition "
        f"({budget} GiB per-device window)",
    )
    text += "\n\n" + format_breakdown(
        solver.predict(n, out_of_core=True, oc_budget_gb=budget),
        title=f"io-vs-compute split at n={n}, {budget} GiB window",
    )
    return text


def metrics() -> dict:
    """Deterministic predicted-time metrics for the CI regression gate."""
    from conftest import get_solver

    solver = get_solver()
    ooc = solver.predict(16384, out_of_core=True, oc_budget_gb=0.5)
    sched = solver.predict(
        16384, out_of_core=True, streams=2, oc_budget_gb=0.5
    )
    multi = solver.predict(16384, out_of_core=True, ngpu=2, oc_budget_gb=0.5)
    return {
        "out_of_core/total_s@16384_0.5gb": ooc.total_s,
        "out_of_core/io_s@16384_0.5gb": ooc.io_s,
        "out_of_core/streams2_makespan_s@16384_0.5gb": sched.total_s,
        "out_of_core/ngpu2_total_s@16384_0.5gb": multi.total_s,
    }


def test_out_of_core(benchmark, solver):
    from conftest import save_result

    text = run(quick=False)
    save_result("out_of_core", text)
    benchmark(
        lambda: solver.predict(16384, out_of_core=True, oc_budget_gb=0.5)
    )


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smoke slice: small sizes under a tiny window budget",
    )
    args = parser.parse_args()
    print(run(quick=args.quick))
