"""Benchmark-harness configuration.

Each ``bench_*`` module regenerates one table or figure of the paper and
asserts its headline shape; ``pytest-benchmark`` times a representative
slice of the workload.  Rendered tables are echoed to stdout (run with
``-s`` to see them) and written to ``benchmarks/results/``.

Benchmarks share :class:`repro.Solver` handles through :func:`get_solver`
(and the ``solver`` fixture): the handle is constructed once per
(backend, precision) pair and reused across every module, which is the
intended production idiom — and keeps handle construction out of the
timed regions.
"""

from __future__ import annotations

from functools import lru_cache
from pathlib import Path

import pytest

import repro

RESULTS_DIR = Path(__file__).parent / "results"


@lru_cache(maxsize=None)
def get_solver(backend: str = "h100", precision: str = "fp32") -> repro.Solver:
    """One shared, fully-resolved solver handle per (backend, precision)."""
    return repro.Solver(backend=backend, precision=precision)


@pytest.fixture
def solver() -> repro.Solver:
    """The default shared H100/FP32 solver handle."""
    return get_solver()


def save_result(name: str, text: str) -> None:
    """Persist a rendered table next to the benchmarks and echo it."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print()
    print(text)
