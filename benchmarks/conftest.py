"""Benchmark-harness configuration.

Each ``bench_*`` module regenerates one table or figure of the paper and
asserts its headline shape; ``pytest-benchmark`` times a representative
slice of the workload.  Rendered tables are echoed to stdout (run with
``-s`` to see them) and written to ``benchmarks/results/``.
"""

from __future__ import annotations

import os
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def save_result(name: str, text: str) -> None:
    """Persist a rendered table next to the benchmarks and echo it."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print()
    print(text)
