"""Graph emission vs cached replay: schedule-construction overhead.

Since the stage-graph refactor every solve replays a
:class:`~repro.sim.LaunchGraph`; a one-shot call emits the graph first,
while a reused :class:`~repro.SvdPlan` caches it alongside the workspace
and launch-price table.  This bench quantifies the saving two ways:

1. **emission microbenchmark**: ``emit_svd_graph`` cost across the
   paper's size grid (emission is numerics-free, so large sizes time in
   microseconds) vs the cached-graph "replay prologue" (nothing - the
   plan hands the graph over);
2. **end-to-end**: repeated one-shot ``Solver.solve`` of a small matrix
   vs ``plan.execute`` on the same input, asserting bitwise identity and
   that replay is no slower.

The analytic side benefits identically: ``Solver.predict`` re-emits per
call, ``plan.breakdown()`` reuses the cached graph.
"""

import time

import numpy as np

from conftest import save_result
from repro.core import emit_svd_graph
from repro.report import format_table
from repro.sim import AnalyticExecutor

#: The paper's size grid (Figure 3/4 range that fits emission timing).
SIZES = (256, 1024, 4096, 16384, 32768)
N = 192
REPS = 50


def _time(fn, reps: int) -> float:
    best = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        for _ in range(reps):
            fn()
        best = min(best, (time.perf_counter() - t0) / reps)
    return best


def test_cached_graph_replay(benchmark, solver):
    cfg = solver.config
    rows = []
    for n in SIZES:
        reps = max(3, min(REPS, 200000 // n))
        emit_us = _time(lambda: emit_svd_graph(n, cfg), reps) * 1e6
        graph = emit_svd_graph(n, cfg)
        cache: dict = {}
        AnalyticExecutor(cfg, solver.precision, cache=cache).run(graph)
        price_us = (
            _time(
                lambda: AnalyticExecutor(
                    cfg, solver.precision, cache=cache
                ).run(graph),
                reps,
            )
            * 1e6
        )
        rows.append(
            [
                str(n),
                str(len(graph)),
                f"{emit_us:9.1f} us",
                f"{price_us:9.1f} us",
                "cached (0 us)",
            ]
        )

    # end-to-end: one-shot emits per call, the plan replays its cache
    rng = np.random.default_rng(0)
    A = rng.standard_normal((N, N)).astype(np.float32)
    plan = solver.plan((N, N))
    oneshot = solver.solve(A)
    np.testing.assert_array_equal(plan.execute(A), oneshot)

    t_oneshot = _time(lambda: solver.solve(A), 5)
    t_replay = _time(lambda: plan.execute(A), 5)
    assert t_replay <= t_oneshot * 1.05, (t_replay, t_oneshot)

    rows.append(["", "", "", "", ""])
    rows.append(
        [
            f"{N} solve",
            str(len(plan.graph)),
            f"{t_oneshot * 1e3:9.2f} ms",
            f"{t_replay * 1e3:9.2f} ms",
            f"{(t_oneshot - t_replay) / t_oneshot:+.1%} replay",
        ]
    )
    save_result(
        "graph_replay",
        format_table(
            ["n", "nodes", "emit / one-shot", "price / replay", "cached"],
            rows,
            title="LaunchGraph emission vs cached replay (h100 fp32)",
        ),
    )

    benchmark(lambda: plan.execute(A))
