"""Graph emission vs cached replay: schedule-construction overhead.

Since the stage-graph refactor every solve replays a
:class:`~repro.sim.LaunchGraph`; a one-shot call emits the graph first,
while a reused :class:`~repro.SvdPlan` caches it alongside the workspace
and launch-price table.  This bench quantifies the saving two ways:

1. **emission microbenchmark**: ``emit_svd_graph`` cost across the
   paper's size grid (emission is numerics-free, so large sizes time in
   microseconds) vs the cached-graph "replay prologue" (nothing - the
   plan hands the graph over);
2. **end-to-end**: repeated one-shot ``Solver.solve`` of a small matrix
   vs ``plan.execute`` on the same input, asserting bitwise identity and
   that replay is no slower.

The analytic side benefits identically: ``Solver.predict`` re-emits per
call, ``plan.breakdown()`` reuses the cached graph.
"""

import argparse
import time

import numpy as np

from repro.core import emit_svd_graph
from repro.report import format_table
from repro.sim import AnalyticExecutor

#: The paper's size grid (Figure 3/4 range that fits emission timing).
SIZES = (256, 1024, 4096, 16384, 32768)
QUICK_SIZES = (256, 1024)
N = 192
REPS = 50


def _time(fn, reps: int) -> float:
    best = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        for _ in range(reps):
            fn()
        best = min(best, (time.perf_counter() - t0) / reps)
    return best


def run(
    solver, sizes=SIZES, end_to_end_reps: int = 5, strict_timing: bool = True
) -> str:
    """Emission-vs-replay table + end-to-end plan comparison (as text).

    ``strict_timing=False`` (the CI smoke slice) still checks bitwise
    identity but skips the replay-no-slower wall-clock assertion, which
    is too noisy for best-of-2 samples on shared runners.
    """
    cfg = solver.config
    rows = []
    for n in sizes:
        reps = max(3, min(REPS, 200000 // n))
        emit_us = _time(lambda: emit_svd_graph(n, cfg), reps) * 1e6
        graph = emit_svd_graph(n, cfg)
        cache: dict = {}
        AnalyticExecutor(cfg, solver.precision, cache=cache).run(graph)
        price_us = (
            _time(
                lambda: AnalyticExecutor(
                    cfg, solver.precision, cache=cache
                ).run(graph),
                reps,
            )
            * 1e6
        )
        rows.append(
            [
                str(n),
                str(len(graph)),
                f"{emit_us:9.1f} us",
                f"{price_us:9.1f} us",
                "cached (0 us)",
            ]
        )

    # end-to-end: one-shot emits per call, the plan replays its cache
    rng = np.random.default_rng(0)
    A = rng.standard_normal((N, N)).astype(np.float32)
    plan = solver.plan((N, N))
    oneshot = solver.solve(A)
    np.testing.assert_array_equal(plan.execute(A), oneshot)

    t_oneshot = _time(lambda: solver.solve(A), end_to_end_reps)
    t_replay = _time(lambda: plan.execute(A), end_to_end_reps)
    if strict_timing:
        assert t_replay <= t_oneshot * 1.05, (t_replay, t_oneshot)

    rows.append(["", "", "", "", ""])
    rows.append(
        [
            f"{N} solve",
            str(len(plan.graph)),
            f"{t_oneshot * 1e3:9.2f} ms",
            f"{t_replay * 1e3:9.2f} ms",
            f"{(t_oneshot - t_replay) / t_oneshot:+.1%} replay",
        ]
    )
    return format_table(
        ["n", "nodes", "emit / one-shot", "price / replay", "cached"],
        rows,
        title="LaunchGraph emission vs cached replay (h100 fp32)",
    )


def metrics() -> dict:
    """Deterministic predicted-time metrics for the CI regression gate.

    Only *simulated* seconds qualify - the wall-clock emission timings
    this bench also reports are host-noise and would flap a 25% gate.
    """
    from conftest import get_solver

    solver = get_solver()
    out = {}
    for n in (1024, 4096, 16384):
        out[f"graph_replay/predict_total_s@{n}"] = solver.predict(n).total_s
    out["graph_replay/streams2_makespan_s@16384"] = solver.predict(
        16384, streams=2
    ).total_s
    return out


def test_cached_graph_replay(benchmark, solver):
    from conftest import save_result

    save_result("graph_replay", run(solver))

    A = np.random.default_rng(0).standard_normal((N, N)).astype(np.float32)
    plan = solver.plan((N, N))
    benchmark(lambda: plan.execute(A))


if __name__ == "__main__":
    import repro

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smoke slice: small sizes only, fewer repetitions",
    )
    args = parser.parse_args()
    shared = repro.Solver(backend="h100", precision="fp32")
    if args.quick:
        print(run(shared, sizes=QUICK_SIZES, end_to_end_reps=2,
                  strict_timing=False))
    else:
        print(run(shared))
