"""Graph emission vs bind-and-price: schedule-construction overhead.

Since the stage-graph refactor every solve replays a
:class:`~repro.sim.LaunchGraph`; since the struct-of-arrays pricing PR
the *analytic* path does not even emit nodes - ``Solver.predict`` binds
the memoized sweep structure of the shape family
(:func:`repro.core.svd.bind_svd_table`) and prices it in whole-array
NumPy expressions (:func:`repro.sim.table.price_table`).  This bench
times each phase separately across the paper's size grid:

* **emit**   - ``emit_svd_graph``: build the node list (the old per-call
  prologue, still what numeric replay consumes);
* **bind**   - ``bind_svd_table`` steady-state: a structure-memo hit;
* **price**  - vectorized ``price_table`` over the bound table;
* **scalar** - the per-node reference loop (``run_scalar``), the
  pre-vectorization pricing path and the correctness oracle;
* **sched**  - greedy 2-stream list scheduling of the emitted graph.

plus an end-to-end one-shot ``Solver.solve`` vs ``plan.execute``
comparison (bitwise identity asserted).  ``--breakdown out.json`` dumps
the per-phase rows as JSON (uploaded as a CI artifact by the bench-gate
job).

The regression gate (``check_regression.py``) pins the tentpole win as a
*ratio*: ``bindprice_emitscalar_ratio@32768`` divides the new
bind-and-price wall-clock by the old emit-and-scalar-price wall-clock on
the same host, so host speed cancels to first order.  Its committed
baseline is hand-pinned at 0.08 - with the gate's 25% tolerance the
check fails exactly when bind-and-price drops below a 10x speedup.
"""

import argparse
import json
import time

import numpy as np

from repro.core import emit_svd_graph
from repro.core.svd import bind_svd_table
from repro.report import format_table
from repro.sim import AnalyticExecutor
from repro.sim.table import price_table
from repro.sim.timeline import schedule_streams

#: The paper's size grid (Figure 3/4 range that fits emission timing).
SIZES = (256, 1024, 4096, 16384, 32768)
QUICK_SIZES = (256, 1024)
N = 192
REPS = 50

#: Size the gated speedup ratio is measured at (the tentpole criterion).
RATIO_N = 32768


def _time(fn, reps: int, trials: int = 3) -> float:
    best = float("inf")
    for _ in range(trials):
        t0 = time.perf_counter()
        for _ in range(reps):
            fn()
        best = min(best, (time.perf_counter() - t0) / reps)
    return best


def phase_rows(solver, sizes=SIZES) -> list:
    """Per-size wall-clock phase timings as JSON-friendly dict rows."""
    cfg = solver.config
    storage = solver.precision
    rows = []
    for n in sizes:
        reps = max(3, min(REPS, 200000 // n))
        emit_us = _time(lambda: emit_svd_graph(n, cfg), reps) * 1e6
        graph = emit_svd_graph(n, cfg)
        bind_svd_table(n, cfg)  # prime the structure memo (the cold miss)
        bind_us = _time(lambda: bind_svd_table(n, cfg), reps) * 1e6
        table = bind_svd_table(n, cfg)
        price_us = (
            _time(lambda: price_table(table, cfg, storage, None), reps) * 1e6
        )
        # the scalar oracle walks every launch in Python - keep its reps
        # (and trials, at large n) small so the full grid stays bounded
        scalar_reps = max(1, min(reps, 30000 // n))
        scalar_us = (
            _time(
                lambda: AnalyticExecutor(cfg, storage).run_scalar(graph),
                scalar_reps,
                trials=1 if n > 8192 else 2,
            )
            * 1e6
        )
        sgraph = emit_svd_graph(n, cfg, streams=2)
        sched_us = (
            _time(
                lambda: schedule_streams(sgraph, cfg, storage, 2),
                1,
                trials=1 if n > 8192 else 2,
            )
            * 1e6
        )
        rows.append(
            {
                "n": n,
                "nodes": len(graph),
                "emit_us": emit_us,
                "bind_us": bind_us,
                "price_us": price_us,
                "scalar_price_us": scalar_us,
                "schedule2_us": sched_us,
            }
        )
    return rows


def run(
    solver, sizes=SIZES, end_to_end_reps: int = 5, strict_timing: bool = True
) -> str:
    """Per-phase table + end-to-end plan comparison (as text).

    ``strict_timing=False`` (the CI smoke slice) still checks bitwise
    identity but skips the replay-no-slower wall-clock assertion, which
    is too noisy for best-of-2 samples on shared runners.
    """
    rows = [
        [
            str(r["n"]),
            str(r["nodes"]),
            f"{r['emit_us']:9.1f} us",
            f"{r['bind_us']:9.1f} us",
            f"{r['price_us']:9.1f} us",
            f"{r['scalar_price_us']:9.1f} us",
            f"{r['schedule2_us']:9.1f} us",
        ]
        for r in phase_rows(solver, sizes)
    ]

    # end-to-end: one-shot emits per call, the plan replays its cache
    rng = np.random.default_rng(0)
    A = rng.standard_normal((N, N)).astype(np.float32)
    plan = solver.plan((N, N))
    oneshot = solver.solve(A)
    np.testing.assert_array_equal(plan.execute(A), oneshot)

    t_oneshot = _time(lambda: solver.solve(A), end_to_end_reps)
    t_replay = _time(lambda: plan.execute(A), end_to_end_reps)
    if strict_timing:
        assert t_replay <= t_oneshot * 1.05, (t_replay, t_oneshot)

    rows.append(["", "", "", "", "", "", ""])
    rows.append(
        [
            f"{N} solve",
            str(len(plan.graph)),
            f"{t_oneshot * 1e3:9.2f} ms",
            "",
            f"{t_replay * 1e3:9.2f} ms",
            "",
            f"{(t_oneshot - t_replay) / t_oneshot:+.1%} replay",
        ]
    )
    return format_table(
        ["n", "nodes", "emit", "bind", "price", "scalar", "sched(2)"],
        rows,
        title="LaunchGraph phases: emit vs bind-and-price (h100 fp32)",
    )


def metrics() -> dict:
    """Metrics for the CI regression gate.

    Simulated predicted seconds (deterministic across machines), plus two
    tentpole guards: the dimensionless ``bindprice_emitscalar_ratio``
    (both timings share the host, so its baseline transfers) and the
    deterministic bound-structure miss count per tune candidate (proof
    the candidate loop binds instead of re-emitting).
    """
    from conftest import get_solver

    from repro.sim.table import bound_table_stats, clear_bound_tables
    from repro.tuning.planner import clear_tune_cache

    solver = get_solver()
    out = {}
    for n in (1024, 4096, 16384):
        out[f"graph_replay/predict_total_s@{n}"] = solver.predict(n).total_s
    out["graph_replay/streams2_makespan_s@16384"] = solver.predict(
        16384, streams=2
    ).total_s

    # the >=10x criterion: bind-and-price vs emit-and-scalar-price
    cfg, storage = solver.config, solver.precision
    graph = emit_svd_graph(RATIO_N, cfg)
    old_s = _time(
        lambda: (
            emit_svd_graph(RATIO_N, cfg),
            AnalyticExecutor(cfg, storage).run_scalar(graph),
        ),
        1,
        trials=2,
    )
    solver.predict(RATIO_N)  # prime: steady-state predict is a memo hit
    new_s = _time(lambda: solver.predict(RATIO_N), 3, trials=2)
    out[f"graph_replay/bindprice_emitscalar_ratio@{RATIO_N}"] = new_s / old_s

    # re-emission is gone from the candidate loop: a cold tune binds a
    # handful of structures (one per distinct execution-axis family),
    # not one per candidate
    clear_tune_cache()
    clear_bound_tables()
    plan = solver.tune(4096, batch=8)
    misses = bound_table_stats()["misses"]
    out["graph_replay/tune_bind_misses_per_candidate"] = misses / max(
        1, len(plan.candidates)
    )

    # and a warm re-tune is pure hits: with the plan memo cleared but the
    # bound structures kept, the whole candidate sweep rebinds nothing.
    # (the +1 keeps the baseline nonzero for the relative gate; a broken
    # structure memo drives the ratio to ~1, a >25% jump)
    before = bound_table_stats()
    clear_tune_cache()
    solver.tune(4096, batch=8)
    after = bound_table_stats()
    warm_miss = after["misses"] - before["misses"]
    warm_bind = warm_miss + after["hits"] - before["hits"]
    out["graph_replay/tune_warm_rebind_ratio"] = (warm_miss + 1) / (
        warm_bind + 1
    )
    return out


def test_cached_graph_replay(benchmark, solver):
    from conftest import save_result

    save_result("graph_replay", run(solver))

    A = np.random.default_rng(0).standard_normal((N, N)).astype(np.float32)
    plan = solver.plan((N, N))
    benchmark(lambda: plan.execute(A))


if __name__ == "__main__":
    import repro

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smoke slice: small sizes only, fewer repetitions",
    )
    parser.add_argument(
        "--breakdown",
        type=str,
        default=None,
        metavar="OUT.json",
        help="also dump per-phase timing rows as JSON (CI artifact)",
    )
    args = parser.parse_args()
    shared = repro.Solver(backend="h100", precision="fp32")
    sizes = QUICK_SIZES if args.quick else SIZES
    if args.quick:
        print(run(shared, sizes=sizes, end_to_end_reps=2,
                  strict_timing=False))
    else:
        print(run(shared))
    if args.breakdown:
        with open(args.breakdown, "w") as fh:
            json.dump(phase_rows(shared, sizes), fh, indent=1)
            fh.write("\n")
        print(f"wrote per-phase breakdown to {args.breakdown}")
