"""Ablation: batched execution of many small SVDs.

Sections 4.1-4.2 attribute the unified kernels' small-size losses to
launch overheads and unfillable occupancy; the related work points to
batched GPU SVD for many-small-matrix workloads.  This bench quantifies
the batching extension: the modelled advantage over looping is largest at
small sizes and fades as single problems saturate the device, while the
numerics remain identical to per-matrix solves.
"""

import numpy as np
from conftest import get_solver, save_result
from repro.report import format_seconds, format_table


def test_batched_ablation(benchmark):
    solver = get_solver("h100", "fp32")
    batch = 64
    rows = []
    gains = {}
    for n in (64, 128, 256, 512, 1024, 2048):
        seq = batch * solver.predict(n, check_capacity=False).total_s
        bat = solver.predict(n, batch=batch).total_s
        gains[n] = seq / bat
        rows.append([
            str(n),
            format_seconds(seq).strip(),
            format_seconds(bat).strip(),
            f"{gains[n]:.1f}x",
        ])
    save_result(
        "ablation_batched",
        format_table(
            ["n", f"{batch} sequential", f"{batch} batched", "speedup"],
            rows,
            title="Ablation: batched SVD vs per-matrix loop (h100 fp32)",
        ),
    )

    # batching always helps, most at small sizes
    assert all(g > 1.0 for g in gains.values())
    assert gains[64] > gains[2048]

    # numerics identical to per-matrix execution (one handle, both paths)
    rng = np.random.default_rng(0)
    As = rng.standard_normal((4, 48, 48))
    fp64 = get_solver("h100", "fp64")
    vals = fp64.solve(As)
    for i in range(4):
        np.testing.assert_array_equal(vals[i], fp64.solve(As[i]))

    benchmark(lambda: solver.predict(256, batch=batch))
