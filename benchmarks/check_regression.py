"""CI benchmark-regression gate over predicted (simulated) times.

Each ``bench_*`` module with a ``metrics()`` hook reports a small set of
named *predicted-time* metrics - pure cost-model outputs, deterministic
across machines, so a relative gate is meaningful (wall-clock timings are
deliberately excluded).  This script compares fresh metrics against the
committed baseline ``benchmarks/results/regression_baselines.json`` and
fails when any metric regresses (increases) by more than the tolerance.

Usage::

    PYTHONPATH=src python benchmarks/check_regression.py           # gate
    PYTHONPATH=src python benchmarks/check_regression.py --update  # re-baseline
    PYTHONPATH=src python benchmarks/check_regression.py --write-fresh out.json

Exit status 1 on any regression (or a baseline/metric mismatch), 0
otherwise.  Large *improvements* only warn - commit a refreshed baseline
(``--update``) in the PR that earns them.

Dimensionless *ratio* metrics (same-host wall-clock divided by same-host
wall-clock, e.g. ``graph_replay/bindprice_emitscalar_ratio@32768``) are
also admissible: host speed cancels to first order.  Their baselines may
be hand-pinned floors rather than measurements - the ratio baseline of
0.08 with the 25% tolerance fails the gate exactly when bind-and-price
drops below a 10x speedup over emit-and-scalar-price - so they routinely
print "improved"; do not ``--update`` them down to the measured value.
"""

import argparse
import importlib
import json
import sys
from pathlib import Path

#: Benchmark modules contributing metrics to the gate.
BENCH_MODULES = (
    "bench_cluster_scaling",
    "bench_graph_replay",
    "bench_hetero_fleet",
    "bench_multi_gpu_scaling",
    "bench_out_of_core",
    "bench_serving",
    "bench_workloads",
)

#: Fail when a metric grows by more than this fraction over its baseline.
DEFAULT_TOLERANCE = 0.25

BASELINE_PATH = Path(__file__).parent / "results" / "regression_baselines.json"


def collect_metrics() -> dict:
    """Fresh predicted-time metrics from every gated benchmark module."""
    sys.path.insert(0, str(Path(__file__).parent))
    out = {}
    for name in BENCH_MODULES:
        mod = importlib.import_module(name)
        for key, value in mod.metrics().items():
            if key in out:
                raise SystemExit(f"duplicate metric name {key!r}")
            out[key] = float(value)
    return out


def check(
    fresh: dict, baseline: dict, tolerance: float = DEFAULT_TOLERANCE
) -> list:
    """Return a list of failure strings (empty = gate passes)."""
    failures = []
    for key in sorted(baseline):
        if key not in fresh:
            failures.append(f"{key}: in baseline but no longer reported")
    for key in sorted(fresh):
        if key not in baseline:
            failures.append(
                f"{key}: not in baseline - rerun with --update to add it"
            )
            continue
        base, now = baseline[key], fresh[key]
        rel = (now - base) / base if base > 0 else float("inf")
        status = "ok"
        if rel > tolerance:
            failures.append(
                f"{key}: {base:.6g}s -> {now:.6g}s "
                f"(+{rel:.1%} > {tolerance:.0%} tolerance)"
            )
            status = "REGRESSION"
        elif rel < -tolerance:
            status = "improved (consider --update)"
        print(f"  {key}: {base:.6g}s -> {now:.6g}s ({rel:+.1%}) {status}")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--update", action="store_true",
        help="write the fresh metrics as the new committed baseline",
    )
    parser.add_argument(
        "--baseline", type=Path, default=BASELINE_PATH,
        help=f"baseline JSON to compare against (default {BASELINE_PATH})",
    )
    parser.add_argument(
        "--tolerance", type=float, default=DEFAULT_TOLERANCE,
        help="relative predicted-time growth that fails the gate",
    )
    parser.add_argument(
        "--write-fresh", type=Path, default=None,
        help="also dump the fresh metrics to this path (CI artifact)",
    )
    args = parser.parse_args(argv)

    fresh = collect_metrics()
    if args.write_fresh is not None:
        args.write_fresh.write_text(json.dumps(fresh, indent=1) + "\n")
    if args.update:
        args.baseline.parent.mkdir(exist_ok=True)
        args.baseline.write_text(json.dumps(fresh, indent=1) + "\n")
        print(f"wrote {len(fresh)} baseline metrics to {args.baseline}")
        return 0
    if not args.baseline.exists():
        print(f"no baseline at {args.baseline}; run with --update first")
        return 1
    baseline = json.loads(args.baseline.read_text())
    print(f"comparing {len(fresh)} metrics against {args.baseline}:")
    failures = check(fresh, baseline, args.tolerance)
    if failures:
        print("\nbenchmark regression gate FAILED:")
        for f in failures:
            print(f"  {f}")
        return 1
    print("benchmark regression gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
