"""Figure 3: runtime ratio of the unified API to MAGMA and SLATE.

Regenerates the ratio curves up to 32768 on the Figure 3 devices and
asserts the paper's headline claims: the unified function beats SLATE at
every size and passes MAGMA between 1024 and 2048.
"""

from conftest import save_result
from repro.experiments import ratios


def test_fig3_regenerates(benchmark):
    curves = benchmark(ratios.fig3_curves)
    save_result(
        "fig3_magma_slate",
        ratios.render_curves(curves, "Figure 3: unified vs MAGMA / SLATE"),
    )
    by = {(c.backend, c.library): c for c in curves}

    # SLATE: unified faster at every size on every device (paper)
    for be in ratios.FIG3_DEVICES:
        c = by[(be, "slate")]
        assert all(r > 1.0 for r in c.ratios), be

    # SLATE catastrophic on the consumer laptop (paper geomean ~280x)
    assert by[("rtx4060", "slate")].geomean > 50.0
    assert by[("rtx4060", "slate")].geomean > 10 * by[("h100", "slate")].geomean

    # MAGMA: slower than unified above ~2048, competitive below (crossover)
    for be in ("h100", "a100", "mi250"):
        c = by[(be, "magma")]
        small = c.ratios[c.sizes.index(512)]
        large = c.ratios[c.sizes.index(8192)]
        assert small < 1.2, be
        assert large > 1.0, be

    # at 32k the unified advantage over MAGMA is multiple-x (paper: up to 9.3)
    assert by[("h100", "magma")].ratios[-1] > 3.0
