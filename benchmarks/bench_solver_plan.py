"""Plan/execute ablation: per-call setup amortized by a reused SvdPlan.

The handle + plan/execute split (cuSOLVER handles, FFTW plans) exists to
amortize per-call setup: backend/precision resolution, session
construction, capacity checks, padded-workspace allocation and cost-model
launch pricing.  This bench measures that setup on the workload where it
matters most — a 64-matrix batch of small (128 x 128) solves — three ways:

1. **setup microbenchmark**: the non-numeric prologue of one solve
   (resolution + session + capacity + workspace + full launch pricing)
   vs a planned solve's prologue (dict lookups into the plan's tables);
2. **end-to-end**: `Solver.solve` per matrix in a loop vs
   `plan.execute` on the same batch, asserting the planned path is no
   slower while returning bitwise-identical values.

The rendered table reports the per-call setup saved and its share of the
total batch runtime.

Since the struct-of-arrays pricing PR the one-shot prologue no longer
re-emits and scalar-prices the launch schedule - ``predict_resolved``
binds the memoized shape-family structure and prices it in whole-array
NumPy - so the setup gap the plan amortizes shrank from ~25x to a few x
(the plan still skips session construction, capacity checks and
launch-price lookups).  The assertion below pins the plan at >=2x
cheaper setup, not the historical 5x.
"""

import time

import numpy as np

from conftest import save_result
from repro.report import format_table
from repro.sim.schedule import predict_resolved

N = 128
BATCH = 64
REPS = 200


def _time(fn, reps: int) -> float:
    best = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        for _ in range(reps):
            fn()
        best = min(best, (time.perf_counter() - t0) / reps)
    return best


def _unplanned_setup(solver) -> None:
    """The per-call prologue every legacy entry point re-runs."""
    cfg = solver.config
    storage = cfg.storage_for(np.float32)
    cfg.session(storage)
    cfg.backend.check_capacity(N, storage)
    np.zeros((N, N), dtype=storage.dtype)  # padded workspace
    # cost-model pricing of the full launch schedule (what the traced run
    # recomputes launch by launch on every call)
    predict_resolved(N, cfg, check_capacity=False)


def test_plan_amortizes_setup(benchmark, solver):
    plan = solver.plan((BATCH, N, N))

    def planned_setup():
        cfg = plan.config
        cfg.session(plan.storage, cost_cache=plan._cost_cache)
        plan._workspace.fill(0)

    unplanned_us = _time(lambda: _unplanned_setup(solver), REPS) * 1e6
    planned_us = _time(planned_setup, REPS) * 1e6

    rng = np.random.default_rng(0)
    As = rng.standard_normal((BATCH, N, N)).astype(np.float32)

    t0 = time.perf_counter()
    loop_vals = np.stack([solver.solve(As[i]) for i in range(BATCH)])
    loop_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    plan_vals = plan.execute(As)
    plan_s = time.perf_counter() - t0

    # the planned path must be bitwise identical and skip most setup
    # (the unplanned prologue is itself cheap now that analytic pricing
    # binds memoized structures instead of emitting and walking nodes)
    np.testing.assert_array_equal(loop_vals, plan_vals)
    assert planned_us < unplanned_us / 2, (planned_us, unplanned_us)

    saved_us = unplanned_us - planned_us
    save_result(
        "solver_plan",
        format_table(
            ["metric", "value"],
            [
                ["per-call setup, one-shot", f"{unplanned_us:8.1f} us"],
                ["per-call setup, planned", f"{planned_us:8.1f} us"],
                ["setup saved per call", f"{saved_us:8.1f} us  "
                 f"({saved_us / unplanned_us:.1%})"],
                [f"setup saved over {BATCH}-batch",
                 f"{saved_us * BATCH / 1e3:8.2f} ms"],
                [f"loop of {BATCH} Solver.solve", f"{loop_s * 1e3:8.1f} ms"],
                [f"plan.execute({BATCH}-batch)", f"{plan_s * 1e3:8.1f} ms"],
                ["launch shapes pre-priced", str(plan.launch_prices)],
            ],
            title=f"SvdPlan reuse on {BATCH} x {N}x{N} fp32 (h100)",
        ),
    )

    benchmark(lambda: plan.execute(As[:2]))
