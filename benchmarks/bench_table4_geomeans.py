"""Table 4: geometric means of the runtime ratios (with ranges).

Aggregates the Figure 3/4 curves exactly as the paper's Table 4 does and
asserts each entry lands in a loose band around the published value.
"""

from conftest import save_result
from repro.experiments import ratios

#: Paper Table 4 geometric means and the acceptance bands of this
#: reproduction (shape-level match; the substrate is a simulator).
PAPER_BANDS = {
    ("rtx4060", "vendor"): (1.5, 0.7, 4.0),
    ("a100", "vendor"): (0.6, 0.3, 1.2),
    ("h100", "vendor"): (0.7, 0.35, 1.2),
    ("mi250", "vendor"): (5.9, 2.0, 12.0),
    ("pvc", "vendor"): (0.5, 0.15, 1.5),
    ("rtx4060", "magma"): (2.2, 1.0, 6.0),
    ("a100", "magma"): (2.1, 0.7, 4.0),
    ("h100", "magma"): (1.5, 0.7, 3.5),
    ("mi250", "magma"): (1.0, 0.5, 3.0),
    ("rtx4060", "slate"): (280.0, 60.0, 900.0),
    ("a100", "slate"): (2.5, 1.2, 7.0),
    ("h100", "slate"): (2.8, 1.4, 8.0),
    ("mi250", "slate"): (3.4, 1.4, 8.0),
}


def test_table4_regenerates(benchmark):
    table = benchmark(ratios.table4)
    save_result("table4_geomeans", ratios.render_table4(table))

    for (device, column), (paper, lo, hi) in PAPER_BANDS.items():
        curve = table[device].get(column)
        assert curve is not None, (device, column)
        gm = curve.geomean
        assert lo <= gm <= hi, (
            f"{device}/{column}: geomean {gm:.2f} outside band "
            f"[{lo}, {hi}] (paper: {paper})"
        )
