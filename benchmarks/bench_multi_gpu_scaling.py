"""Strong scaling of the partitioned stage graph across 1-8 GPUs.

PR 3 made multi-GPU a first-class axis of the graph engine: predictions
shard the emitted LaunchGraph tile-row-wise with explicit comm nodes
(panel broadcast, boundary exchange, band gather) priced by the
backend's link model, replacing the closed-form scaling formula.  This
bench records the strong-scaling sweep the partitioner unlocks:

1. ``Solver.predict(n, ngpu=g)`` for g = 1, 2, 4, 8 at two sizes,
   reporting total time, speedup, the per-device update critical path
   and the comm component (the comm-vs-compute split the closed form
   could not attribute);
2. the ``ngpu x streams`` composition: the device-aware list scheduler
   overlaps remote update chunks with the serial panel chain, beating
   the stage-structured pricing at the same device count.

Run standalone with ``--quick`` for the CI smoke slice::

    PYTHONPATH=src python benchmarks/bench_multi_gpu_scaling.py --quick
"""

import argparse

import repro
from repro.report import format_breakdown, format_seconds, format_table

SIZES = (8192, 32768)
QUICK_SIZES = (4096,)
GPUS = (1, 2, 4, 8)


def scaling_rows(solver: "repro.Solver", n: int) -> list:
    """One strong-scaling table block for matrix order ``n``."""
    base = solver.predict(n, check_capacity=False)
    rows = []
    prev_total = None
    for g in GPUS:
        bd = solver.predict(n, ngpu=g, check_capacity=False)
        if g == 1:
            # acceptance criterion: ngpu=1 is exactly single-device
            assert bd.total_s == base.total_s, (bd.total_s, base.total_s)
            assert bd.comm_s == 0.0
        else:
            assert bd.comm_s > 0.0
        if prev_total is not None:
            assert bd.total_s < prev_total, f"n={n}: g={g} not faster"
        prev_total = bd.total_s
        rows.append(
            [
                str(n),
                str(g),
                format_seconds(bd.total_s).strip(),
                f"{base.total_s / bd.total_s:.2f}x",
                format_seconds(bd.update_s).strip(),
                format_seconds(bd.comm_s).strip(),
                f"{bd.comm_s / bd.total_s:5.1%}",
            ]
        )
    return rows


def overlap_rows(solver: "repro.Solver", n: int, g: int = 4) -> list:
    """The ngpu x streams composition at one size."""
    plain = solver.predict(n, ngpu=g, check_capacity=False)
    sched = solver.predict(n, ngpu=g, streams=2, check_capacity=False)
    assert sched.total_s < plain.total_s, "overlap must beat serial pricing"
    return [
        [
            str(n),
            f"{g} x 1",
            format_seconds(plain.total_s).strip(),
            "stage-structured pricing",
        ],
        [
            str(n),
            f"{g} x 2",
            format_seconds(sched.total_s).strip(),
            "device-aware list scheduler",
        ],
    ]


def run(quick: bool = False) -> str:
    solver = repro.Solver(backend="h100", precision="fp32")
    sizes = QUICK_SIZES if quick else SIZES
    body = []
    for n in sizes:
        body.extend(scaling_rows(solver, n))
    text = format_table(
        ["n", "gpus", "total", "speedup", "update", "comm", "comm share"],
        body,
        title="multi-GPU strong scaling, partitioned LaunchGraph "
        "(h100 fp32, NVLink)",
    )
    over = []
    for n in sizes:
        over.extend(overlap_rows(solver, n))
    text += "\n\n" + format_table(
        ["n", "gpus x streams", "total", "model"],
        over,
        title="ngpu x streams composition: overlap on per-device pools",
    )
    text += "\n\n" + format_breakdown(
        solver.predict(sizes[-1], ngpu=4, check_capacity=False),
        title=f"comm-vs-compute split at n={sizes[-1]}, 4 GPUs",
    )
    return text


def metrics() -> dict:
    """Deterministic predicted-time metrics for the CI regression gate."""
    from conftest import get_solver

    solver = get_solver()
    out = {}
    for g in (1, 2, 4):
        bd = solver.predict(8192, ngpu=g, check_capacity=False)
        out[f"multi_gpu/total_s@8192_g{g}"] = bd.total_s
    out["multi_gpu/comm_s@8192_g4"] = solver.predict(
        8192, ngpu=4, check_capacity=False
    ).comm_s
    out["multi_gpu/streams2_makespan_s@8192_g4"] = solver.predict(
        8192, ngpu=4, streams=2, check_capacity=False
    ).total_s
    return out


def test_multi_gpu_scaling(benchmark, solver):
    from conftest import save_result

    text = run(quick=False)
    save_result("multi_gpu_scaling", text)
    benchmark(lambda: solver.predict(8192, ngpu=4, check_capacity=False))


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smoke slice: one small size, no results file",
    )
    args = parser.parse_args()
    print(run(quick=args.quick))
