"""Table 1: accuracy of the unified implementation across precisions.

Runs the real numerics (reduced sizes by default; ``REPRO_FULL=1`` for the
paper grid), regenerates the table, asserts the per-precision error
magnitudes, and benchmarks one representative unified solve.
"""

from conftest import save_result
from repro.core import svdvals
from repro.experiments import table1
from repro.matrices import make_test_matrix


def test_table1_regenerates(benchmark):
    rows = table1.run()
    save_result("table1_accuracy", table1.render(rows))

    for row in rows:
        # Table 1 magnitudes: ~1e-15 / ~1e-7 / ~1e-3 per precision
        assert row.unified["fp64"] < 1e-11
        assert row.unified["fp32"] < 1e-4
        assert row.unified["fp16"] < 5e-2
        # ordering across precisions
        assert row.unified["fp64"] < row.unified["fp32"] < row.unified["fp16"]
        # unified stays comparable to the reference library
        if row.reference["fp64"] is not None:
            assert row.unified["fp64"] < 1e3 * row.reference["fp64"]

    # benchmark one representative solve (FP32, logarithmic spectrum)
    tm = make_test_matrix(96, "logarithmic", precision="fp32", seed=0)
    benchmark(lambda: svdvals(tm.A, backend="h100", precision="fp32"))
