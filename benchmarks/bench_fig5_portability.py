"""Figure 5: portability of the unified function across hardware/precision.

Regenerates the runtime curves (tuned hyperparameters per hardware and
precision) and asserts the support/capacity structure the paper plots:
FP16==FP32 speed on NVIDIA with doubled reach (131k), AMD FP16 and Metal
FP64 gaps, and capacity-limited curve ends.
"""

from conftest import save_result
from repro.experiments import fig5


def test_fig5_regenerates(benchmark):
    series = benchmark(fig5.run)
    save_result("fig5_portability", fig5.render(series))
    by = {(s.backend, s.precision): s for s in series}

    # support gaps (Figure 5 captions)
    assert not by[("mi250", "fp16")].supported
    assert not by[("m1pro", "fp64")].supported

    # H100 FP16 reaches 131072; FP32 and FP64 do not
    assert 131072 in by[("h100", "fp16")].sizes
    assert 131072 not in by[("h100", "fp32")].sizes
    assert 131072 not in by[("h100", "fp64")].sizes

    # FP16 and FP32 nearly identical on NVIDIA (upcast to FP32 pipeline)
    h16, h32 = by[("h100", "fp16")], by[("h100", "fp32")]
    for n, t16 in zip(h16.sizes, h16.seconds):
        if n in h32.sizes:
            t32 = h32.seconds[h32.sizes.index(n)]
            assert abs(t16 - t32) <= 0.15 * t32, n

    # FP64 slower than FP32 at scale on every FP64-capable device
    for be in ("h100", "mi250", "pvc"):
        s32, s64 = by[(be, "fp32")], by[(be, "fp64")]
        n = 8192
        assert s64.seconds[s64.sizes.index(n)] > s32.seconds[s32.sizes.index(n)]

    # runtime curves are increasing in n
    for s in series:
        if s.supported and len(s.seconds) > 1:
            assert all(a < b for a, b in zip(s.seconds, s.seconds[1:]))
