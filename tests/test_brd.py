"""Tests for the band -> bidiagonal bulge chasing (stage 2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from tests.conftest import rel_err, scipy_svdvals
from repro.core.brd import band_to_bidiagonal, givens
from repro.core.tiling import extract_band
from repro.errors import ShapeError


def random_band(rng, n, band):
    """Random upper-band matrix with bandwidth ``band``."""
    return extract_band(rng.standard_normal((n, n)), band)


def bidiag_dense(d, e):
    n = len(d)
    B = np.diag(d)
    if n > 1:
        B += np.diag(e, 1)
    return B


class TestGivens:
    def test_annihilation(self):
        c, s, r = givens(3.0, 4.0)
        assert -s * 3.0 + c * 4.0 == pytest.approx(0.0)
        assert c * 3.0 + s * 4.0 == pytest.approx(r)
        assert c * c + s * s == pytest.approx(1.0)

    def test_zero_g(self):
        assert givens(2.0, 0.0) == (1.0, 0.0, 2.0)

    def test_zero_f(self):
        c, s, r = givens(0.0, 5.0)
        assert (c, s, r) == (0.0, 1.0, 5.0)


class TestStructure:
    @pytest.mark.parametrize("n,band", [(16, 4), (33, 8), (64, 16), (50, 32)])
    def test_result_is_bidiagonal_equivalent(self, rng, n, band):
        A = random_band(rng, n, band)
        d, e = band_to_bidiagonal(A, band)
        assert d.shape == (n,) and e.shape == (n - 1,)
        assert rel_err(scipy_svdvals(bidiag_dense(d, e)), scipy_svdvals(A)) < 1e-12

    def test_already_bidiagonal_passthrough(self, rng):
        n = 12
        d0 = rng.standard_normal(n)
        e0 = rng.standard_normal(n - 1)
        d, e = band_to_bidiagonal(bidiag_dense(d0, e0), 1)
        np.testing.assert_array_equal(d, d0)
        np.testing.assert_array_equal(e, e0)

    def test_band_larger_than_matrix(self, rng):
        """Dense upper-triangular input (band >= n)."""
        n = 12
        A = np.triu(rng.standard_normal((n, n)))
        d, e = band_to_bidiagonal(A, n + 5)
        assert rel_err(scipy_svdvals(bidiag_dense(d, e)), scipy_svdvals(A)) < 1e-12

    def test_inplace_flag(self, rng):
        A = random_band(rng, 16, 4)
        A0 = A.copy()
        band_to_bidiagonal(A, 4, inplace=False)
        np.testing.assert_array_equal(A, A0)
        band_to_bidiagonal(A, 4, inplace=True)
        assert not np.array_equal(A, A0)

    def test_non_square_rejected(self):
        with pytest.raises(ShapeError):
            band_to_bidiagonal(np.zeros((3, 4)), 2)

    def test_tiny_matrices(self, rng):
        for n in (1, 2):
            A = np.triu(rng.standard_normal((n, n)))
            d, e = band_to_bidiagonal(A, max(1, n - 1))
            assert d.shape == (n,)
            assert e.shape == (max(0, n - 1),)


class TestNumericalCases:
    def test_zero_matrix(self):
        d, e = band_to_bidiagonal(np.zeros((10, 10)), 4)
        np.testing.assert_array_equal(d, 0.0)
        np.testing.assert_array_equal(e, 0.0)

    def test_zero_padded_band(self, rng):
        """Trailing zero rows/cols (driver padding) survive the chase."""
        n, npad, band = 20, 32, 8
        A = np.zeros((npad, npad))
        A[:n, :n] = random_band(rng, n, band)
        d, e = band_to_bidiagonal(A, band)
        sv = scipy_svdvals(bidiag_dense(d, e))
        np.testing.assert_allclose(sv[n:], 0.0, atol=1e-12)
        assert rel_err(sv[:n], scipy_svdvals(A[:n, :n])) < 1e-12

    def test_graded_band(self, rng):
        """Strongly graded entries must not destroy small singular values."""
        n, band = 24, 6
        A = random_band(rng, n, band)
        scale = np.logspace(0, -10, n)
        A = A * scale[:, None]
        d, e = band_to_bidiagonal(A, band)
        ref = scipy_svdvals(A)
        got = scipy_svdvals(bidiag_dense(d, e))
        assert rel_err(got, ref) < 1e-10

    def test_float32_input(self, rng):
        A = random_band(rng, 24, 8).astype(np.float32)
        d, e = band_to_bidiagonal(A, 8)
        assert d.dtype == np.float32
        assert rel_err(
            scipy_svdvals(bidiag_dense(d.astype(np.float64), e.astype(np.float64))),
            scipy_svdvals(A),
        ) < 1e-5

    @given(
        n=st.integers(3, 24),
        band=st.integers(2, 8),
        seed=st.integers(0, 10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_sv_preservation(self, n, band, seed):
        rng = np.random.default_rng(seed)
        A = random_band(rng, n, min(band, n - 1))
        d, e = band_to_bidiagonal(A, min(band, n - 1))
        assert rel_err(scipy_svdvals(bidiag_dense(d, e)), scipy_svdvals(A)) < 1e-11


class TestSessionCharge:
    def test_brd_cost_recorded(self, rng):
        from repro.sim import Session, Stage

        sess = Session.create("h100", "fp64")
        A = random_band(rng, 64, 32)
        band_to_bidiagonal(A, 32, session=sess)
        assert sess.tracer.stage_seconds(Stage.BRD) > 0.0
