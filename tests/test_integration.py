"""End-to-end integration tests across the whole pipeline.

These exercise the public API the way the paper's evaluation does:
generated spectra, multiple backends and precisions, and the accuracy
magnitudes of Table 1.
"""

import numpy as np
import pytest

from tests.conftest import rel_err, scipy_svdvals
from repro import svdvals
from repro.matrices import DISTRIBUTIONS, make_test_matrix


class TestTable1Magnitudes:
    """Unified accuracy per precision on the paper's three distributions."""

    @pytest.mark.parametrize("dist", sorted(DISTRIBUTIONS))
    def test_fp64(self, dist):
        tm = make_test_matrix(96, dist, precision="fp64", seed=11)
        got = svdvals(tm.A, backend="h100", precision="fp64")
        assert rel_err(got, tm.sigma) < 1e-12  # Table 1: ~1e-15..1e-14

    @pytest.mark.parametrize("dist", sorted(DISTRIBUTIONS))
    def test_fp32(self, dist):
        tm = make_test_matrix(96, dist, precision="fp32", seed=12)
        got = svdvals(tm.A, backend="h100", precision="fp32")
        assert rel_err(got, tm.sigma) < 5e-6  # Table 1: ~1e-7

    @pytest.mark.parametrize("dist", sorted(DISTRIBUTIONS))
    def test_fp16(self, dist):
        tm = make_test_matrix(64, dist, precision="fp16", seed=13)
        got = svdvals(tm.A, backend="h100", precision="fp16")
        assert rel_err(got, tm.sigma) < 3e-2  # Table 1: ~1e-3..1e-2

    def test_error_grows_slowly_with_n(self):
        """Backward stability: error ~ sqrt(n) eps, not n eps or worse."""
        errs = []
        for n in (32, 128):
            tm = make_test_matrix(n, "logarithmic", seed=21)
            got = svdvals(tm.A, backend="h100", precision="fp64")
            errs.append(rel_err(got, tm.sigma))
        assert errs[1] < errs[0] * 50


class TestCrossBackendConsistency:
    def test_same_precision_same_values_everywhere(self, rng):
        """One unified code path: FP32 numerics are backend-independent
        for backends with the same compute dtype."""
        A = rng.standard_normal((80, 80)).astype(np.float32)
        ref = svdvals(A, backend="h100", precision="fp32")
        for be in ("a100", "rtx4060", "mi250", "pvc"):
            np.testing.assert_array_equal(
                svdvals(A, backend=be, precision="fp32"), ref
            )

    def test_fp16_differs_between_upcast_and_native(self, rng):
        """NVIDIA computes FP16 in FP32; Apple natively - results differ
        in rounding but agree to FP16 accuracy."""
        A = (0.1 * rng.standard_normal((48, 48))).astype(np.float16)
        nv = svdvals(A, backend="h100", precision="fp16")
        ap = svdvals(A, backend="m1pro", precision="fp16")
        ref = scipy_svdvals(A)
        assert rel_err(nv, ref) < 2e-2
        assert rel_err(ap, ref) < 5e-2


class TestLowRankApproximationUseCase:
    """The LoRA-style workload the paper's introduction motivates."""

    def test_rank_selection_by_energy(self, rng):
        # synthetic weight matrix with rank-8 dominant structure
        n, r = 96, 8
        U = rng.standard_normal((n, r))
        V = rng.standard_normal((r, n))
        W = U @ V + 0.01 * rng.standard_normal((n, n))
        sv = svdvals(W.astype(np.float16), backend="h100", precision="fp16")
        energy = np.cumsum(sv**2) / np.sum(sv**2)
        rank = int(np.searchsorted(energy, 0.95)) + 1
        assert rank <= r + 2  # the dominant rank is recovered in FP16

    def test_spectral_norm_estimate(self, rng):
        A = rng.standard_normal((64, 64))
        got = svdvals(A, backend="mi250", precision="fp64")
        assert got[0] == pytest.approx(np.linalg.norm(A, 2), rel=1e-12)


class TestScaledSpectra:
    def test_large_scale(self, rng):
        """[0,1] interval generalizes by elementwise scaling (paper 3.2)."""
        tm = make_test_matrix(64, "arithmetic", seed=5)
        got = svdvals(1e6 * tm.A, backend="h100", precision="fp64")
        assert rel_err(got, 1e6 * tm.sigma) < 1e-12

    def test_tiny_scale(self, rng):
        tm = make_test_matrix(64, "arithmetic", seed=6)
        got = svdvals(1e-6 * tm.A, backend="h100", precision="fp64")
        assert rel_err(got, 1e-6 * tm.sigma) < 1e-12
