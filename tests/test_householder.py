"""Tests for the normalized Householder reflector math (Algorithm 3)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels.householder import apply_factor, make_reflector

EPS64 = float(np.finfo(np.float64).eps)


def reflector_matrix(col: np.ndarray, eps: float) -> np.ndarray:
    """Build the explicit H = I - tau v v^T for a column's reflector."""
    alpha = float(col[0])
    u = np.asarray(col[1:], dtype=np.float64)
    sigma2 = float(u @ u)
    x, tau, clamped = make_reflector(alpha, sigma2, eps)
    v = np.concatenate(([1.0], np.zeros_like(u) if clamped else u / x))
    return np.eye(len(col)) - tau * np.outer(v, v), x, tau


class TestMakeReflector:
    def test_annihilates_column(self, rng):
        col = rng.standard_normal(8)
        H, _, _ = reflector_matrix(col, EPS64)
        out = H @ col
        np.testing.assert_allclose(out[1:], 0.0, atol=1e-12 * np.abs(col).max())

    def test_preserves_norm(self, rng):
        col = rng.standard_normal(8)
        H, _, _ = reflector_matrix(col, EPS64)
        assert abs(np.linalg.norm(H @ col) - np.linalg.norm(col)) < 1e-12

    def test_orthogonality(self, rng):
        col = rng.standard_normal(6)
        H, _, _ = reflector_matrix(col, EPS64)
        np.testing.assert_allclose(H @ H.T, np.eye(6), atol=1e-13)

    def test_stable_root_sign(self):
        # x = alpha + sign(alpha) * sqrt(...): no cancellation
        x, _, _ = make_reflector(3.0, 4.0 * 4.0, EPS64)
        assert x == pytest.approx(3.0 + 5.0)
        x, _, _ = make_reflector(-3.0, 16.0, EPS64)
        assert x == pytest.approx(-3.0 - 5.0)

    def test_tau_hat_range(self, rng):
        for _ in range(50):
            alpha = float(rng.standard_normal())
            sigma2 = float(rng.random())
            _, tau, _ = make_reflector(alpha, sigma2, EPS64)
            assert 1.0 - 1e-12 <= tau <= 2.0 + 1e-12

    def test_small_reflector_correction(self):
        """Algorithm 3 lines 14-15: zero column -> pure sign flip."""
        x, tau, clamped = make_reflector(0.0, 0.0, EPS64)
        assert x == pytest.approx(10.0 * EPS64)
        assert tau == 2.0
        assert clamped

    def test_small_reflector_triggers_below_threshold(self):
        x, tau, clamped = make_reflector(EPS64, 0.0, EPS64)
        assert x == pytest.approx(10.0 * EPS64)
        assert tau == 2.0
        assert clamped

    def test_zero_tail_nonzero_pivot(self):
        # alpha large, no tail: H should flip sign of the pivot
        x, tau, _ = make_reflector(2.0, 0.0, EPS64)
        assert tau == pytest.approx(2.0)
        assert x == pytest.approx(4.0)
        # updated pivot = alpha - tau*(alpha + 0/x) = -alpha
        assert 2.0 - tau * (2.0 + 0.0 / x) == pytest.approx(-2.0)

    @given(
        alpha=st.floats(-1e6, 1e6, allow_nan=False),
        sigma=st.floats(0.0, 1e6, allow_nan=False),
    )
    @settings(max_examples=200, deadline=None)
    def test_property_orthogonal_tau(self, alpha, sigma):
        sigma2 = sigma * sigma
        x, tau, clamped = make_reflector(alpha, sigma2, EPS64)
        assert math.isfinite(x) and math.isfinite(tau)
        assert x != 0.0
        # tau = 2 / (v'v) with v = [1, u/x]: check within roundoff
        if not clamped:
            vtv = 1.0 + sigma2 / (x * x)
            assert tau * vtv == pytest.approx(2.0, rel=1e-10)

    @given(
        alpha=st.floats(-100, 100, allow_nan=False),
        sigma=st.floats(0, 100, allow_nan=False),
    )
    @settings(max_examples=200, deadline=None)
    def test_property_beta_magnitude(self, alpha, sigma):
        """New pivot magnitude equals the column norm (orthogonal invariance)."""
        sigma2 = sigma * sigma
        x, tau, clamped = make_reflector(alpha, sigma2, EPS64)
        if clamped:
            return
        beta = alpha - tau * (alpha + sigma2 / x)
        norm = math.sqrt(alpha * alpha + sigma2)
        assert abs(beta) == pytest.approx(norm, rel=1e-8, abs=1e-12)


class TestApplyFactor:
    def test_vectorized(self):
        rho = apply_factor(2.0, 4.0, np.array([1.0, 2.0]), np.array([4.0, 8.0]))
        np.testing.assert_allclose(rho, [4.0, 8.0])

    def test_scalar(self):
        assert apply_factor(1.0, 2.0, 3.0, 4.0) == pytest.approx(5.0)
