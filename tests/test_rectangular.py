"""Tests for rectangular / tall-and-skinny support."""

import numpy as np
import pytest

from tests.conftest import rel_err, scipy_svdvals
from repro.core import qr_reduce_tall, svdvals_rect
from repro.errors import ShapeError
from repro.sim import KernelParams, Session

EPS64 = float(np.finfo(np.float64).eps)


class TestQrReduceTall:
    @pytest.mark.parametrize("m,n,ts", [(64, 32, 32), (96, 64, 32), (128, 32, 16)])
    def test_r_preserves_singular_values(self, rng, m, n, ts):
        A = rng.standard_normal((m, n))
        R = qr_reduce_tall(A.copy(), ts, EPS64)
        assert R.shape == (n, n)
        assert np.all(np.tril(R, -1) == 0)  # triangular, tails stripped
        assert rel_err(scipy_svdvals(R), scipy_svdvals(A)) < 1e-12

    def test_r_matches_numpy_qr(self, rng):
        m, n, ts = 96, 32, 32
        A = rng.standard_normal((m, n))
        R = qr_reduce_tall(A.copy(), ts, EPS64)
        R_ref = np.linalg.qr(A, mode="r")
        np.testing.assert_allclose(np.abs(np.diag(R)), np.abs(np.diag(R_ref)),
                                   rtol=1e-10)

    def test_unpadded_rejected(self, rng):
        with pytest.raises(ShapeError):
            qr_reduce_tall(rng.standard_normal((65, 32)), 32, EPS64)

    def test_wide_rejected(self, rng):
        with pytest.raises(ShapeError):
            qr_reduce_tall(rng.standard_normal((32, 64)), 32, EPS64)

    def test_session_records_launches(self, rng):
        sess = Session.create("h100", "fp64", params=KernelParams(32, 32, 8))
        qr_reduce_tall(rng.standard_normal((128, 64)), 32, EPS64, session=sess)
        counts = sess.tracer.kernel_counts()
        assert counts["geqrt"] == 2  # one per block column
        assert counts["ftsqrt"] == 2


class TestSvdvalsRect:
    @pytest.mark.parametrize("shape", [(80, 40), (40, 80), (130, 20),
                                       (20, 130), (97, 33), (33, 97), (64, 64)])
    def test_matches_scipy(self, rng, shape):
        A = rng.standard_normal(shape)
        got = svdvals_rect(A, backend="h100", precision="fp64")
        ref = scipy_svdvals(A)
        assert got.shape == (min(shape),)
        assert rel_err(got, ref) < 1e-11

    def test_extreme_aspect_ratio(self, rng):
        A = rng.standard_normal((600, 8))
        got = svdvals_rect(A)
        assert rel_err(got, scipy_svdvals(A)) < 1e-11

    def test_single_column(self, rng):
        A = rng.standard_normal((50, 1))
        got = svdvals_rect(A)
        assert got[0] == pytest.approx(np.linalg.norm(A), rel=1e-12)

    def test_single_row(self, rng):
        A = rng.standard_normal((1, 50))
        got = svdvals_rect(A)
        assert got[0] == pytest.approx(np.linalg.norm(A), rel=1e-12)

    def test_fp32(self, rng):
        A = rng.standard_normal((96, 48)).astype(np.float32)
        got = svdvals_rect(A, precision="fp32")
        assert rel_err(got, scipy_svdvals(A)) < 5e-6

    def test_rank_deficient_tall(self, rng):
        X = rng.standard_normal((100, 3))
        A = X @ rng.standard_normal((3, 20))
        got = svdvals_rect(A)
        ref = scipy_svdvals(A)
        assert rel_err(got, ref) < 1e-11
        np.testing.assert_allclose(got[3:], 0.0, atol=1e-10 * ref[0])

    def test_empty_rejected(self):
        with pytest.raises(ShapeError):
            svdvals_rect(np.zeros((0, 5)))

    def test_info_includes_preprocessing(self, rng):
        _, info = svdvals_rect(rng.standard_normal((96, 48)),
                               return_info=True)
        assert info.simulated_seconds > 0
        # the tall-QR chain contributes panel launches beyond the square run
        _, sq = svdvals_rect(rng.standard_normal((48, 48)), return_info=True)
        assert sum(info.launch_counts.values()) > sum(sq.launch_counts.values())

    def test_transpose_invariance(self, rng):
        A = rng.standard_normal((70, 30))
        a = svdvals_rect(A)
        b = svdvals_rect(A.T)
        np.testing.assert_allclose(a, b, atol=1e-12 * a[0])
