"""Calibration tests: pin the paper's qualitative performance shapes.

These tests assert the *claims of the paper's evaluation section* against
the simulator + baseline models (loose bands - we reproduce shapes, not
the authors' testbed):

* Table 3 sign patterns for TILESIZE and COLPERBLOCK;
* Table 4 geometric-mean bands and Figure 3/4 crossovers;
* Figure 6 stage-share trends;
* Figure 5 capacity / support structure.
"""

import pytest

from repro.baselines import get_baseline
from repro.report import geomean
from repro.sim import KernelParams, predict

SIZES16 = (128, 256, 512, 1024, 2048, 4096, 8192, 16384)
SIZES32 = SIZES16 + (32768,)


def uni(n, backend, precision, params=None, **kw):
    return predict(n, backend, precision, params=params,
                   check_capacity=False, **kw).total_s


def delta_ts(n, backend, precision):
    """Percent change TILESIZE 64 -> 32 (positive: 32 faster)."""
    t64 = uni(n, backend, precision, KernelParams(64, 32, 8))
    t32 = uni(n, backend, precision, KernelParams(32, 32, 8))
    return 100.0 * (t64 - t32) / t64


def delta_cpb(n, backend, precision):
    """Percent change COLPERBLOCK 32 -> 16 (negative: 32 better)."""
    t16 = uni(n, backend, precision, KernelParams(32, 16, 8))
    t32 = uni(n, backend, precision, KernelParams(32, 32, 8))
    return 100.0 * (t16 - t32) / t16 * -1.0


class TestTable3Tilesize:
    """Paper: smaller tiles win at small sizes; larger tiles win at 32k on
    H100 (both precisions) and MI250 FP32; MI250 FP64 prefers 32 always."""

    @pytest.mark.parametrize("backend,precision", [
        ("h100", "fp32"), ("h100", "fp64"), ("mi250", "fp32"), ("mi250", "fp64"),
    ])
    def test_small_sizes_prefer_32(self, backend, precision):
        assert delta_ts(512, backend, precision) > 5.0
        assert delta_ts(2048, backend, precision) > 5.0

    @pytest.mark.parametrize("backend,precision", [
        ("h100", "fp32"), ("h100", "fp64"), ("mi250", "fp32"),
    ])
    def test_32768_prefers_64(self, backend, precision):
        assert delta_ts(32768, backend, precision) < 0.0

    def test_mi250_fp64_prefers_32_everywhere(self):
        """The 16 KB L1 cannot hold a 64^2 FP64 tile (Table 3 asymmetry)."""
        for n in (128, 512, 2048, 8192, 32768):
            assert delta_ts(n, "mi250", "fp64") > 0.0, n

    def test_advantage_decays_with_size(self):
        """The 32-tile advantage shrinks as the trailing update dominates."""
        assert delta_ts(512, "h100", "fp32") > delta_ts(8192, "h100", "fp32")


class TestTable3Colperblock:
    """Paper: shrinking COLPERBLOCK is near-free at small sizes and
    increasingly harmful at scale, worst on AMD wavefronts."""

    @pytest.mark.parametrize("backend,precision", [
        ("h100", "fp32"), ("h100", "fp64"), ("mi250", "fp32"), ("mi250", "fp64"),
    ])
    def test_negligible_at_small_sizes(self, backend, precision):
        assert abs(delta_cpb(128, backend, precision)) < 3.0

    @pytest.mark.parametrize("backend,precision", [
        ("h100", "fp32"), ("h100", "fp64"), ("mi250", "fp32"), ("mi250", "fp64"),
    ])
    def test_harmful_at_32768(self, backend, precision):
        assert delta_cpb(32768, backend, precision) < -3.0

    def test_amd_worse_than_nvidia(self):
        assert delta_cpb(32768, "mi250", "fp32") < delta_cpb(32768, "h100", "fp32")


class TestTable4Bands:
    """Geometric means within loose bands around the paper's Table 4."""

    def test_cusolver_h100(self):
        lib = get_baseline("cusolver")
        rs = [lib.predict_time(n, "h100", "fp32") / uni(n, "h100", "fp32")
              for n in SIZES16]
        assert 0.4 <= geomean(rs) <= 1.0  # paper 0.7
        assert all(r < 1.0 for r in rs)  # cuSOLVER always ahead on H100

    def test_cusolver_large_n_80_90_percent(self):
        """Paper headline: unified reaches 80-90% of cuSOLVER at 8k/16k."""
        lib = get_baseline("cusolver")
        for n in (8192, 16384):
            r = lib.predict_time(n, "h100", "fp32") / uni(n, "h100", "fp32")
            assert 0.4 <= r <= 1.0

    def test_cusolver_rtx4060_unified_wins_at_scale(self):
        lib = get_baseline("cusolver")
        rs = [lib.predict_time(n, "rtx4060", "fp32") / uni(n, "rtx4060", "fp32")
              for n in (4096, 8192, 16384)]
        assert all(r > 1.0 for r in rs)  # paper: unified faster on consumer

    def test_rocsolver_unified_always_faster(self):
        lib = get_baseline("rocsolver")
        rs = [lib.predict_time(n, "mi250", "fp32") / uni(n, "mi250", "fp32")
              for n in SIZES16]
        assert all(r > 1.0 for r in rs)  # paper: all sizes
        assert 2.5 <= geomean(rs) <= 12.0  # paper 5.9

    def test_onemkl_crossover_beyond_2048(self):
        lib = get_baseline("onemkl")
        r_small = lib.predict_time(512, "pvc", "fp32") / uni(512, "pvc", "fp32")
        r_large = lib.predict_time(16384, "pvc", "fp32") / uni(16384, "pvc", "fp32")
        assert r_small < 1.0 < r_large  # paper: crossover past 2048

    def test_magma_crossover_1k_2k(self):
        """Paper Figure 3: unified passes MAGMA between 1024 and 2048."""
        lib = get_baseline("magma")
        for be in ("h100", "a100", "mi250"):
            r512 = lib.predict_time(512, be, "fp32") / uni(512, be, "fp32")
            r4096 = lib.predict_time(4096, be, "fp32") / uni(4096, be, "fp32")
            assert r512 < 1.1, be
            assert r4096 > 1.0, be

    def test_magma_geomeans(self):
        lib = get_baseline("magma")
        for be, lo, hi in (("h100", 0.8, 3.5), ("rtx4060", 1.2, 6.0),
                           ("mi250", 0.5, 3.0)):
            rs = [lib.predict_time(n, be, "fp32") / uni(n, be, "fp32")
                  for n in SIZES32]
            assert lo <= geomean(rs) <= hi, be

    def test_slate_unified_always_faster(self):
        lib = get_baseline("slate")
        for be in ("h100", "a100", "mi250"):
            rs = [lib.predict_time(n, be, "fp32") / uni(n, be, "fp32")
                  for n in SIZES32]
            assert all(r > 1.0 for r in rs), be
            assert 1.5 <= geomean(rs) <= 8.0, be

    def test_slate_consumer_catastrophe(self):
        """Paper: geometric mean ~280x on the RTX4060 laptop."""
        lib = get_baseline("slate")
        rs = [lib.predict_time(n, "rtx4060", "fp32") / uni(n, "rtx4060", "fp32")
              for n in SIZES32]
        assert 60.0 <= geomean(rs) <= 900.0


class TestFig6Trends:
    def test_stage1_share_grows(self):
        """Paper: reduction to band gains relative weight with size."""
        small = predict(256, "h100", "fp32").stage_fractions()
        large = predict(16384, "h100", "fp32", check_capacity=False).stage_fractions()
        s1_small = small["panel"] + small["update"]
        s1_large = large["panel"] + large["update"]
        assert s1_large > s1_small

    def test_update_to_panel_ratio_grows(self):
        rs = [
            predict(n, "h100", "fp32", check_capacity=False)
            for n in (1024, 8192, 32768)
        ]
        ratios = [bd.update_s / bd.panel_s for bd in rs]
        assert ratios[0] < ratios[1] < ratios[2]

    def test_rtx4060_steeper_than_h100(self):
        """Few SMs saturate early: trailing/panel explodes 8k -> 32k."""
        def growth(be):
            a = predict(8192, be, "fp32", check_capacity=False)
            b = predict(32768, be, "fp32", check_capacity=False)
            return (b.update_s / b.panel_s) / (a.update_s / a.panel_s)

        assert growth("rtx4060") > growth("h100")


class TestFig5Structure:
    def test_fp16_equals_fp32_speed_on_nvidia(self):
        """Upcast to the FP32 pipeline: near-identical curves (sec. 4.3)."""
        t16 = uni(4096, "h100", "fp16")
        t32 = uni(4096, "h100", "fp32")
        assert t16 == pytest.approx(t32, rel=0.10)

    def test_fp16_reaches_131k_on_h100(self):
        predict(131072, "h100", "fp16")  # must not raise

    def test_fp64_slower_than_fp32(self):
        assert uni(8192, "h100", "fp64") > uni(8192, "h100", "fp32")

    def test_m1pro_slowest_hpc_fastest(self):
        """Figure 5 ordering at fixed n/precision (tiny 8-core GPU)."""
        t = {be: uni(4096, be, "fp32") for be in ("h100", "mi250", "m1pro")}
        assert t["h100"] < t["m1pro"]
        assert t["mi250"] < t["m1pro"]
