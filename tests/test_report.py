"""Tests for the report-formatting helpers."""

import pytest

from repro.report import (
    format_breakdown,
    format_ratio,
    format_seconds,
    format_table,
    geomean,
)


class TestGeomean:
    def test_simple(self):
        assert geomean([1, 100]) == pytest.approx(10.0)

    def test_single(self):
        assert geomean([7.0]) == pytest.approx(7.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            geomean([])

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])

    def test_scale_invariance(self):
        a = geomean([2.0, 8.0])
        b = geomean([4.0, 4.0])
        assert a == pytest.approx(b)


class TestFormatters:
    def test_seconds_ranges(self):
        assert "us" in format_seconds(5e-5)
        assert "ms" in format_seconds(5e-3)
        assert format_seconds(2.5).strip().endswith("s")
        assert format_seconds(float("nan")) == "n/a"

    def test_ratio_sig_figs(self):
        assert format_ratio(0.123) == "0.12"
        assert format_ratio(12.3) == "12.3"
        assert format_ratio(280.4) == "280"
        assert format_ratio(float("inf")) == "n/a"


class TestTable:
    def test_round_trip(self):
        out = format_table(["a", "bb"], [[1, 2], [33, 44]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert "33" in lines[-1] and "44" in lines[-1]

    def test_alignment_consistent(self):
        out = format_table(["x"], [["longvalue"], ["s"]])
        widths = {len(line) for line in out.splitlines()}
        assert len(widths) == 1  # all rows padded to equal width

    def test_row_width_checked(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])


class TestBreakdown:
    def test_single_device_has_no_comm_row(self):
        from repro.sim import TimeBreakdown

        bd = TimeBreakdown(n=64, panel_s=1.0, update_s=2.0, brd_s=0.5,
                           solve_s=0.5)
        out = format_breakdown(bd)
        assert "comm" not in out
        assert "total" in out and "100.0%" in out

    def test_partitioned_shows_comm_split(self):
        from repro.sim import TimeBreakdown

        bd = TimeBreakdown(n=64, panel_s=1.0, update_s=2.0, brd_s=0.5,
                           solve_s=0.5, comm_s=1.0, ngpu=4)
        out = format_breakdown(bd)
        assert "comm" in out and "(4 GPUs)" in out
        assert "20.0%" in out  # comm share of the 5 s total
