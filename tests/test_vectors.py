"""Tests for the full SVD with singular vectors (future-work extension)."""

import numpy as np
import pytest

from tests.conftest import rel_err, scipy_svdvals
from repro.core import svd_full, svdvals
from repro.errors import ShapeError
from repro.matrices import make_test_matrix
from repro.sim import KernelParams


def check_factorization(A, res, tol):
    n = A.shape[0]
    scale = max(np.abs(A).max(), 1e-300)
    assert np.linalg.norm(res.reconstruct() - A) <= tol * scale * n
    assert np.linalg.norm(res.U.T @ res.U - np.eye(n)) <= tol * n
    assert np.linalg.norm(res.Vt @ res.Vt.T - np.eye(n)) <= tol * n
    assert np.all(res.s >= 0)
    assert np.all(np.diff(res.s) <= 0)


class TestFullSVD:
    @pytest.mark.parametrize("n", [1, 3, 16, 32, 50, 96])
    def test_factorization(self, rng, n):
        A = rng.standard_normal((n, n))
        res = svd_full(A, backend="h100", precision="fp64")
        check_factorization(A, res, 1e-12)

    def test_values_match_values_only_driver(self, rng):
        A = rng.standard_normal((64, 64))
        res = svd_full(A, backend="h100", precision="fp64")
        vals = svdvals(A, backend="h100", precision="fp64")
        np.testing.assert_allclose(res.s, vals, atol=1e-11 * vals[0])

    def test_values_match_scipy(self, rng):
        A = rng.standard_normal((48, 48))
        res = svd_full(A)
        assert rel_err(res.s, scipy_svdvals(A)) < 1e-12

    def test_known_spectrum(self):
        tm = make_test_matrix(48, "logarithmic", seed=3)
        res = svd_full(tm.A)
        assert rel_err(res.s, tm.sigma) < 1e-12

    def test_subspace_recovery(self, rng):
        """Singular vectors of a planted low-rank matrix span the factors."""
        n, r = 64, 4
        U0 = np.linalg.qr(rng.standard_normal((n, r)))[0]
        V0 = np.linalg.qr(rng.standard_normal((n, r)))[0]
        A = U0 @ np.diag([10.0, 8.0, 6.0, 4.0]) @ V0.T
        res = svd_full(A)
        # leading r left vectors span col(U0)
        proj = U0 @ (U0.T @ res.U[:, :r])
        assert np.linalg.norm(proj - res.U[:, :r]) < 1e-10

    def test_fp32(self, rng):
        A = rng.standard_normal((48, 48)).astype(np.float32)
        res = svd_full(A, backend="h100", precision="fp32")
        check_factorization(A.astype(np.float64), res, 1e-4)

    def test_fp16_upcast(self, rng):
        A = (0.1 * rng.standard_normal((32, 32))).astype(np.float16)
        res = svd_full(A, backend="h100", precision="fp16")
        check_factorization(A.astype(np.float64), res, 5e-2)

    def test_rank_deficient(self, rng):
        X = rng.standard_normal((40, 5))
        A = X @ X.T
        res = svd_full(A)
        check_factorization(A, res, 1e-11)
        assert np.all(res.s[5:] <= 1e-10 * res.s[0])

    def test_identity(self):
        res = svd_full(np.eye(33))
        np.testing.assert_allclose(res.s, 1.0, atol=1e-12)
        check_factorization(np.eye(33), res, 1e-12)

    def test_zero_matrix(self):
        res = svd_full(np.zeros((20, 20)))
        np.testing.assert_allclose(res.s, 0.0)
        # factors still orthogonal
        assert np.linalg.norm(res.U.T @ res.U - np.eye(20)) < 1e-12

    def test_diagonal_with_negatives(self):
        d = np.array([3.0, -2.0, 1.0, -0.5])
        res = svd_full(np.diag(d))
        np.testing.assert_allclose(res.s, [3.0, 2.0, 1.0, 0.5], atol=1e-14)
        check_factorization(np.diag(d), res, 1e-13)

    def test_padding_path(self, rng):
        """Non-tile-multiple n exercises padded accumulators."""
        A = rng.standard_normal((45, 45))
        res = svd_full(A, params=KernelParams(16, 16, 4))
        check_factorization(A, res, 1e-12)

    def test_non_square_rejected(self, rng):
        with pytest.raises(ShapeError):
            svd_full(rng.standard_normal((4, 5)))

    def test_info(self, rng):
        res, info = svd_full(rng.standard_normal((32, 32)), return_info=True)
        assert info.simulated_seconds > 0
        # vector accumulation adds its own launches
        assert any(k.endswith("_acc") for k in info.launch_counts)

    def test_vector_time_exceeds_values_only(self, rng):
        A = rng.standard_normal((96, 96))
        _, iv = svd_full(A, return_info=True)
        _, i0 = svdvals(A, return_info=True)
        assert iv.simulated_seconds > i0.simulated_seconds
