"""Tests for the occupancy model."""

import pytest

from repro.backends.device import get_device
from repro.sim import KernelParams
from repro.sim.occupancy import (
    SATURATION_THREADS_PER_SM,
    OccupancyInfo,
    update_occupancy,
    warp_utilization,
)


class TestWarpUtilization:
    def test_full_warp(self):
        assert warp_utilization(32, 32) == 1.0
        assert warp_utilization(64, 32) == 1.0

    def test_half_warp(self):
        assert warp_utilization(16, 32) == 0.5

    def test_amd_wavefront(self):
        # 32 threads on a 64-wide wavefront waste half the lanes
        assert warp_utilization(32, 64) == 0.5
        assert warp_utilization(16, 64) == 0.25

    def test_partial_final_warp(self):
        # 48 threads = 2 warps of 32 -> 48/64
        assert warp_utilization(48, 32) == pytest.approx(0.75)


class TestUpdateOccupancy:
    def setup_method(self):
        self.h100 = get_device("h100")
        self.params = KernelParams(32, 32, 8)

    def test_small_grid_low_occupancy(self):
        occ = update_occupancy(self.h100, self.params, nblocks=4,
                               sizeof_compute=4, regs_per_thread_elems=64)
        assert occ.occupancy < 0.05
        assert occ.waves == 1

    def test_huge_grid_full_occupancy(self):
        occ = update_occupancy(self.h100, self.params, nblocks=10**6,
                               sizeof_compute=4, regs_per_thread_elems=64)
        assert occ.occupancy == 1.0
        assert occ.waves > 1

    def test_waves_scale_with_blocks(self):
        kw = dict(sizeof_compute=4, regs_per_thread_elems=64)
        o1 = update_occupancy(self.h100, self.params, 10**4, **kw)
        o2 = update_occupancy(self.h100, self.params, 2 * 10**4, **kw)
        assert o2.waves >= o1.waves

    def test_blocks_per_sm_limited_by_smem(self):
        mi250 = get_device("mi250")  # 16 KB L1
        big = KernelParams(128, 128, 1)
        occ = update_occupancy(mi250, big, 100, sizeof_compute=8,
                               regs_per_thread_elems=256)
        # shared memory per block = 2*128*8 = 2 KiB -> at most 8 blocks
        assert occ.blocks_per_sm <= 8

    def test_blocks_per_sm_at_least_one(self):
        mi250 = get_device("mi250")
        occ = update_occupancy(mi250, KernelParams(128, 128, 1), 1,
                               sizeof_compute=8, regs_per_thread_elems=10**6)
        assert occ.blocks_per_sm == 1

    def test_effective_parallel_fraction(self):
        occ = OccupancyInfo(1, 10, 1, occupancy=0.5, warp_util=0.5)
        assert occ.effective_parallel_fraction == 0.25

    def test_warp_util_amd_penalty(self):
        mi250 = get_device("mi250")
        occ = update_occupancy(mi250, self.params, 10**5,
                               sizeof_compute=4, regs_per_thread_elems=64)
        assert occ.warp_util == 0.5  # 32 threads on 64-wide wavefront

    def test_saturation_constant_sane(self):
        assert 32 <= SATURATION_THREADS_PER_SM <= 2048
