"""Tests for the experiment harness (reduced workloads)."""

import numpy as np
import pytest

from repro.experiments import ablations, common, fig5, fig6, ratios, table1, table3


class TestCommon:
    def test_grids(self):
        assert common.SIZES_VENDOR[-1] == 16384
        assert common.SIZES_HPC[-1] == 32768

    def test_table1_defaults(self, monkeypatch):
        monkeypatch.delenv("REPRO_FULL", raising=False)
        assert max(common.table1_sizes()) <= 512
        assert common.table1_runs() == 3

    def test_full_run_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FULL", "1")
        assert common.full_run()
        assert common.table1_runs() == 10
        assert 16384 in common.table1_sizes()


class TestTable1:
    def test_reduced_run(self):
        rows = table1.run(sizes=[48], runs=1)
        assert len(rows) == 1
        row = rows[0]
        # error magnitudes per precision (Table 1 orders of magnitude)
        assert row.unified["fp64"] < 1e-12
        assert 1e-9 < row.unified["fp32"] < 1e-5
        assert 1e-6 < row.unified["fp16"] < 5e-2
        # the FP16 column has no reference library (paper: first FP16 SVD)
        assert row.reference["fp16"] is None
        assert row.reference["fp64"] is not None

    def test_unified_tracks_reference(self):
        rows = table1.run(sizes=[64], runs=1)
        r = rows[0]
        # unified error within 100x of the LAPACK-backed reference
        assert r.unified["fp64"] < 100 * r.reference["fp64"]

    def test_render(self):
        rows = table1.run(sizes=[32], runs=1)
        out = table1.render(rows)
        assert "Table 1" in out and "32" in out

    def test_relative_error_helper(self):
        assert table1.relative_error(np.ones(3), np.ones(3)) == 0.0
        assert table1.relative_error(np.zeros(3), np.zeros(3)) == 0.0


class TestTable3:
    def test_cells_cover_grid(self):
        cells = table3.run(sizes=[512, 32768])
        assert len(cells) == 2 * 2 * len(table3.CONFIGS)
        studies = {c.study for c in cells}
        assert studies == {"tilesize", "colperblock"}

    def test_render(self):
        out = table3.render(table3.run(sizes=[512]), sizes=[512])
        assert "TILESIZE" in out and "COLPERBLOCK" in out


class TestRatios:
    def test_fig4_shapes(self):
        curves = ratios.fig4_curves()
        assert len(curves) == len(ratios.FIG4_PAIRS)
        for c in curves:
            assert len(c.sizes) == len(c.ratios)
            assert max(c.sizes) <= 16384
            assert all(r > 0 for r in c.ratios)

    def test_fig3_reaches_32k(self):
        curves = ratios.fig3_curves()
        assert any(32768 in c.sizes for c in curves)

    def test_table4_structure(self):
        t4 = ratios.table4()
        assert "vendor" in t4["h100"]
        assert "magma" in t4["h100"] and "slate" in t4["mi250"]
        out = ratios.render_table4(t4)
        assert "Table 4" in out

    def test_render_curves(self):
        out = ratios.render_curves(ratios.fig4_curves(), "Figure 4")
        assert "h100/cusolver" in out

    def test_curve_aggregates(self):
        c = ratios.ratio_curve("mi250", "rocsolver", sizes=(512, 1024))
        lo, hi = c.range
        assert lo <= c.geomean <= hi


class TestFig5:
    def test_support_and_capacity_structure(self):
        series = fig5.run()
        bykey = {(s.backend, s.precision): s for s in series}
        assert not bykey[("mi250", "fp16")].supported
        assert not bykey[("m1pro", "fp64")].supported
        h100_16 = bykey[("h100", "fp16")]
        assert h100_16.supported and 131072 in h100_16.sizes
        h100_32 = bykey[("h100", "fp32")]
        assert 131072 not in h100_32.sizes  # OOM (paper Figure 5)

    def test_fp16_fp32_nearly_identical_on_nvidia(self):
        series = fig5.run(devices=("h100",), sizes=(4096,))
        t = {s.precision: s.seconds[0] for s in series if s.supported}
        assert t["fp16"] == pytest.approx(t["fp32"], rel=0.1)

    def test_render(self):
        out = fig5.render(fig5.run(devices=("h100",), sizes=(1024, 2048)))
        assert "Figure 5" in out


class TestFig6:
    def test_rows_and_shares(self):
        rows = fig6.run(devices=("h100",), sizes=(512, 8192))
        assert len(rows) == 2
        for r in rows:
            assert r.panel + r.update + r.brd + r.solve == pytest.approx(1.0)

    def test_stage1_grows(self):
        rows = fig6.run(devices=("h100",), sizes=(512, 16384))
        assert rows[1].stage1 > rows[0].stage1

    def test_render(self):
        assert "Figure 6" in fig6.render(fig6.run(devices=("h100",), sizes=(512,)))


class TestAblations:
    def test_fusion_scaling(self):
        rows = ablations.run_fusion(sizes=(1024, 2048, 4096))
        for r in rows:
            assert r.launches_fused < r.launches_unfused
            assert r.speedup > 1.0
        # unfused launches quadruple per size doubling, fused double
        l_u = [r.launches_unfused for r in rows]
        assert 3.5 < l_u[1] / l_u[0] < 4.5

    def test_splitk_sweep(self):
        rows = ablations.run_splitk(n=4096, values=(1, 8))
        assert rows[0].panel_seconds > rows[1].panel_seconds  # SK=8 helps

    def test_renders(self):
        assert "Ablation" in ablations.render_fusion(ablations.run_fusion(sizes=(512,)))
        assert "SPLITK" in ablations.render_splitk(ablations.run_splitk(values=(1, 2)))
