"""Property: the analytic schedule equals the traced numeric execution.

The benchmark harness prices the paper's large sizes with
:func:`repro.sim.predict` while tests and small runs execute real numerics
through :class:`~repro.sim.session.Session`.  These tests pin that both
paths charge exactly the same launches and the same simulated time, so the
analytic results shown in the figures are faithful to what the executing
code would report.
"""

import numpy as np
import pytest

from repro.core import svdvals
from repro.sim import KernelParams, Session, Stage, predict
from repro.core.banddiag import reduce_to_band


def traced_stage1(n, backend, precision, params, fused):
    """Run the real stage-1 numerics and return the session tracer."""
    rng = np.random.default_rng(7)
    sess = Session.create(backend, precision, params=params)
    ts = params.tilesize
    npad = -(-n // ts) * ts
    A = np.zeros((npad, npad), dtype=sess.storage.dtype)
    A[:n, :n] = rng.standard_normal((n, n)).astype(sess.storage.dtype)
    compute_dtype = (
        sess.compute.dtype if sess.compute is not sess.storage else None
    )
    reduce_to_band(A, ts, sess.storage.eps, sess, fused=fused,
                   compute_dtype=compute_dtype)
    return sess.tracer


@pytest.mark.parametrize("fused", [True, False])
@pytest.mark.parametrize("n,ts", [(64, 32), (96, 32), (128, 16), (130, 32)])
def test_stage1_trace_matches_predict(n, ts, fused):
    params = KernelParams(tilesize=ts, colperblock=min(ts, 32), splitk=4)
    tracer = traced_stage1(n, "h100", "fp32", params, fused)
    bd = predict(n, "h100", "fp32", params=params, fused=fused)

    # identical launch counts per kernel
    counts = tracer.kernel_counts()
    for kernel in ("geqrt", "unmqr", "ftsqrt", "ftsmqr", "tsqrt", "tsmqr"):
        assert counts.get(kernel, 0) == bd.launches.get(kernel, 0), kernel

    # identical simulated stage-1 seconds
    traced = tracer.stage_seconds(Stage.PANEL) + tracer.stage_seconds(Stage.UPDATE)
    assert traced == pytest.approx(bd.panel_s + bd.update_s, rel=1e-12)


@pytest.mark.parametrize("backend,precision", [
    ("h100", "fp32"),
    ("h100", "fp16"),  # upcast path
    ("mi250", "fp64"),
    ("m1pro", "fp32"),
])
def test_full_driver_matches_predict(backend, precision):
    n = 96
    params = KernelParams(32, 32, 8)
    rng = np.random.default_rng(3)
    A = rng.standard_normal((n, n))
    _, info = svdvals(A, backend=backend, precision=precision,
                      params=params, return_info=True)
    bd = predict(n, backend, precision, params=params)
    assert info.simulated_seconds == pytest.approx(bd.total_s, rel=1e-12)
    assert info.launch_counts.get("brd_chase", 0) == bd.launches.get("brd_chase", 0)


def test_full_driver_matches_predict_unfused():
    n = 80
    rng = np.random.default_rng(4)
    A = rng.standard_normal((n, n))
    _, info = svdvals(A, backend="h100", precision="fp32",
                      fused=False, return_info=True)
    bd = predict(n, "h100", "fp32", fused=False)
    assert info.simulated_seconds == pytest.approx(bd.total_s, rel=1e-12)


def test_stage_attribution_matches(rng):
    n = 100
    A = rng.standard_normal((n, n))
    _, info = svdvals(A, backend="a100", precision="fp32", return_info=True)
    bd = predict(n, "a100", "fp32")
    assert info.stage_seconds[Stage.PANEL] == pytest.approx(bd.panel_s, rel=1e-12)
    assert info.stage_seconds[Stage.UPDATE] == pytest.approx(bd.update_s, rel=1e-12)
    assert info.stage_seconds[Stage.BRD] == pytest.approx(bd.brd_s, rel=1e-12)
    assert info.stage_seconds[Stage.SOLVE] == pytest.approx(bd.solve_s, rel=1e-12)
