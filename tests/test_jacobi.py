"""Tests for the one-sided Jacobi reference solver."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from tests.conftest import rel_err, scipy_svdvals
from repro.core import jacobi_svdvals, svdvals
from repro.errors import ShapeError
from repro.matrices import make_test_matrix


class TestJacobi:
    def test_random_square(self, rng):
        A = rng.standard_normal((40, 40))
        assert rel_err(jacobi_svdvals(A), scipy_svdvals(A)) < 1e-12

    def test_rectangular_both_orientations(self, rng):
        A = rng.standard_normal((60, 20))
        ref = scipy_svdvals(A)
        assert rel_err(jacobi_svdvals(A), ref) < 1e-12
        assert rel_err(jacobi_svdvals(A.T), ref) < 1e-12

    def test_diagonal(self, rng):
        d = np.abs(rng.standard_normal(20)) + 0.1
        got = jacobi_svdvals(np.diag(d))
        np.testing.assert_allclose(got, np.sort(d)[::-1], rtol=1e-13)

    def test_zero_matrix(self):
        np.testing.assert_array_equal(jacobi_svdvals(np.zeros((8, 8))),
                                      np.zeros(8))

    def test_zero_columns(self, rng):
        A = rng.standard_normal((20, 10))
        A[:, 3] = 0.0
        assert rel_err(jacobi_svdvals(A), scipy_svdvals(A)) < 1e-12

    def test_high_relative_accuracy_graded(self):
        """Jacobi's selling point: tiny singular values to high relative
        accuracy on strongly graded matrices."""
        n = 16
        D = np.diag(np.logspace(0, -10, n))
        rng = np.random.default_rng(0)
        Q = np.linalg.qr(rng.standard_normal((n, n)))[0]
        A = Q @ D  # exactly known singular values 1 .. 1e-10
        got = jacobi_svdvals(A)
        expect = np.logspace(0, -10, n)
        np.testing.assert_allclose(got, expect, rtol=1e-10)

    def test_cross_check_against_unified(self, rng):
        """Two independent algorithms (Jacobi vs two-stage QR) agree."""
        A = rng.standard_normal((48, 48))
        jv = jacobi_svdvals(A)
        uv = svdvals(A, backend="h100", precision="fp64")
        np.testing.assert_allclose(jv, uv, atol=1e-11 * jv[0])

    def test_cross_check_known_spectrum(self):
        tm = make_test_matrix(32, "quarter-circle", seed=9)
        assert rel_err(jacobi_svdvals(tm.A), tm.sigma) < 1e-12

    def test_invalid_input(self):
        with pytest.raises(ShapeError):
            jacobi_svdvals(np.zeros(5))
        with pytest.raises(ShapeError):
            jacobi_svdvals(np.zeros((0, 4)))

    @given(n=st.integers(1, 16), m=st.integers(1, 16), seed=st.integers(0, 1000))
    @settings(max_examples=30, deadline=None)
    def test_property_vs_scipy(self, n, m, seed):
        rng = np.random.default_rng(seed)
        A = rng.standard_normal((m, n))
        got = jacobi_svdvals(A)
        ref = scipy_svdvals(A)
        assert np.max(np.abs(got - ref)) <= 1e-11 * max(ref[0], 1e-300)
