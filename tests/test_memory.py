"""Tests for the DeviceMatrix device-buffer abstraction."""

import numpy as np
import pytest

from repro.backends import DeviceMatrix
from repro.errors import ShapeError, UnsupportedPrecisionError
from repro.precision import Precision


class TestFromHost:
    def test_roundtrip(self, rng):
        A = rng.standard_normal((16, 16))
        dm = DeviceMatrix.from_host(A, "h100", "fp64")
        np.testing.assert_array_equal(dm.to_host(), A)

    def test_precision_defaults_to_dtype(self, rng):
        A = rng.standard_normal((8, 8)).astype(np.float32)
        dm = DeviceMatrix.from_host(A, "h100")
        assert dm.precision is Precision.FP32

    def test_unsupported_dtype_defaults_fp64(self):
        A = np.ones((4, 4), dtype=np.int64)
        dm = DeviceMatrix.from_host(A, "h100")
        assert dm.precision is Precision.FP64

    def test_conversion_rounds(self, rng):
        A = rng.standard_normal((8, 8))
        dm = DeviceMatrix.from_host(A, "h100", "fp16")
        assert dm.data.dtype == np.float16

    def test_non_2d_raises(self):
        with pytest.raises(ShapeError):
            DeviceMatrix.from_host(np.ones(5), "h100")

    def test_backend_precision_rules_apply(self, rng):
        A = rng.standard_normal((8, 8))
        with pytest.raises(UnsupportedPrecisionError):
            DeviceMatrix.from_host(A, "mi250", "fp16")

    def test_copy_semantics(self, rng):
        A = rng.standard_normal((8, 8))
        dm = DeviceMatrix.from_host(A, "h100", "fp64")
        A[0, 0] = 999.0
        assert dm.data[0, 0] != 999.0


class TestLazyTranspose:
    def test_zero_copy(self, rng):
        A = rng.standard_normal((8, 8))
        dm = DeviceMatrix.from_host(A, "h100", "fp64")
        assert dm.T.data.base is dm.data or dm.T.data.base is dm.data.base

    def test_transpose_values(self, rng):
        A = rng.standard_normal((8, 8))
        dm = DeviceMatrix.from_host(A, "h100", "fp64")
        np.testing.assert_array_equal(dm.T.data, A.T)

    def test_writes_through_view(self, rng):
        A = rng.standard_normal((4, 4))
        dm = DeviceMatrix.from_host(A, "h100", "fp64")
        dm.T.data[0, 1] = 42.0
        assert dm.data[1, 0] == 42.0


class TestComputeDtype:
    def test_fp16_on_nvidia_is_fp32(self, rng):
        dm = DeviceMatrix.from_host(np.ones((4, 4)), "h100", "fp16")
        assert dm.compute_dtype == np.float32

    def test_load_compute_is_view_when_native(self, rng):
        A = rng.standard_normal((4, 4)).astype(np.float32)
        dm = DeviceMatrix.from_host(A, "h100", "fp32")
        assert dm.load_compute() is dm.data

    def test_load_compute_upcasts_fp16(self):
        dm = DeviceMatrix.from_host(np.ones((4, 4)), "h100", "fp16")
        up = dm.load_compute()
        assert up.dtype == np.float32
        assert up is not dm.data

    def test_store_compute_rounds_through_storage(self):
        dm = DeviceMatrix.from_host(np.zeros((2, 2)), "h100", "fp16")
        vals = np.full((2, 2), 1.0002441, dtype=np.float32)
        dm.store_compute(vals)
        assert dm.data.dtype == np.float16
        # 1.0002441 is not representable in FP16: it rounds to exactly 1.0
        assert float(dm.to_host()[0, 0]) == 1.0

    def test_store_shape_mismatch_raises(self):
        dm = DeviceMatrix.from_host(np.zeros((2, 2)), "h100", "fp32")
        with pytest.raises(ShapeError):
            dm.store_compute(np.zeros((3, 3), dtype=np.float32))

    def test_nbytes(self):
        dm = DeviceMatrix.from_host(np.zeros((8, 8)), "h100", "fp16")
        assert dm.nbytes() == 8 * 8 * 2
