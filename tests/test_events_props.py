"""Property tests for the discrete-event scheduler (repro.sim.events).

The engine's invariants, pinned with hypothesis across problem sizes,
stream counts and cluster topologies:

* the makespan is bounded below by the dependency-only critical path
  and above by the no-overlap serial sum;
* when contention is impossible (one device, at least as many streams
  as the graph is wide), the event makespan equals the greedy list
  scheduler's **exactly** - greedy is the fast approximation, the event
  simulation is the oracle;
* simulation is deterministic: same graph, same result, including the
  full critical-chain decomposition;
* the critical-chain decomposition sums to the makespan (the chain is
  an exact account of what the wall clock followed).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Solver
from repro.core.batched import emit_batched_graph
from repro.core.svd import emit_svd_graph
from repro.sim.events import simulate_events
from repro.sim.partition import partition_graph
from repro.sim.timeline import schedule_streams

_SOLVER = Solver(backend="h100", precision="fp32")
_CONFIG = _SOLVER.config
_STORAGE = _CONFIG.require_precision("test")

sizes = st.integers(min_value=96, max_value=1024)
streams_axis = st.integers(min_value=1, max_value=4)
nodes_axis = st.integers(min_value=2, max_value=4)
gpus_axis = st.integers(min_value=1, max_value=2)


@settings(max_examples=20, deadline=None)
@given(n=sizes, streams=streams_axis)
def test_makespan_bounds_single_device(n, streams):
    graph = emit_svd_graph(n, _CONFIG, streams=streams)
    ev = simulate_events(graph, _CONFIG, _STORAGE, streams=streams)
    assert ev.critical_path_s <= ev.makespan_s * (1 + 1e-12)
    assert ev.makespan_s <= ev.serial_s * (1 + 1e-12)
    assert ev.contention_s >= 0.0


@settings(max_examples=15, deadline=None)
@given(n=sizes, streams=streams_axis, nodes=nodes_axis, gpus=gpus_axis)
def test_makespan_bounds_cluster(n, streams, nodes, gpus):
    graph = partition_graph(
        emit_svd_graph(n, _CONFIG, streams=streams), gpus,
        nodes=nodes, fabric=_CONFIG.fabric_spec(),
    )
    ev = simulate_events(graph, _CONFIG, _STORAGE, streams=streams)
    assert ev.critical_path_s <= ev.makespan_s * (1 + 1e-12)
    assert ev.makespan_s <= ev.serial_s * (1 + 1e-12)
    assert ev.comm_inter_s > 0.0


@settings(max_examples=15, deadline=None)
@given(n=sizes, emit_streams=streams_axis)
def test_equals_greedy_when_contention_impossible(n, emit_streams):
    """With one device and more stream servers than launches, no task
    ever waits on either side: the two schedulers agree bit for bit."""
    graph = emit_svd_graph(n, _CONFIG, streams=emit_streams)
    ample = len(graph) + 1
    greedy = schedule_streams(graph, _CONFIG, _STORAGE, ample)
    ev = simulate_events(graph, _CONFIG, _STORAGE, streams=ample)
    assert ev.makespan_s == greedy.total_s
    assert ev.contention_s == 0.0
    assert ev.queue_s == 0.0


@settings(max_examples=10, deadline=None)
@given(n=sizes)
def test_serial_chain_matches_greedy(n):
    graph = emit_svd_graph(n, _CONFIG, streams=1)
    greedy = schedule_streams(graph, _CONFIG, _STORAGE, 1)
    ev = simulate_events(graph, _CONFIG, _STORAGE, streams=1)
    assert abs(ev.makespan_s - greedy.total_s) <= 1e-9 * greedy.total_s


@settings(max_examples=10, deadline=None)
@given(
    n=st.integers(min_value=96, max_value=512),
    batch=st.integers(min_value=2, max_value=24),
    nodes=nodes_axis,
)
def test_deterministic_and_chain_exact(n, batch, nodes):
    graph = partition_graph(
        emit_batched_graph(n, batch, _CONFIG, streams=1), 2,
        nodes=nodes, fabric=_CONFIG.fabric_spec(),
    )
    a = simulate_events(graph, _CONFIG, _STORAGE, streams=1)
    b = simulate_events(graph, _CONFIG, _STORAGE, streams=1)
    assert a.makespan_s == b.makespan_s
    assert a.chain_seconds == b.chain_seconds
    assert a.resource_busy_s == b.resource_busy_s
    assert sum(a.chain_seconds.values()) <= a.makespan_s * (1 + 1e-9)
    assert sum(a.chain_seconds.values()) >= a.makespan_s * (1 - 1e-9)
