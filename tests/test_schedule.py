"""Tests for the closed-form schedule model."""

import pytest

from repro.errors import CapacityError, ShapeError
from repro.sim import KernelParams, predict, stage1_launch_count


class TestLaunchCount:
    def test_single_tile(self):
        assert stage1_launch_count(1, fused=True) == 1
        assert stage1_launch_count(1, fused=False) == 1

    def test_two_tiles(self):
        # k=0: RQ (geqrt+unmqr+ftsqrt+ftsmqr) + LQ (geqrt+unmqr) + final geqrt
        assert stage1_launch_count(2, fused=True) == 7
        assert stage1_launch_count(2, fused=False) == 7  # r=1: identical

    def test_fused_linear_unfused_quadratic(self):
        """Section 3.2's scaling claim."""
        f = [stage1_launch_count(nbt, fused=True) for nbt in (16, 32, 64)]
        u = [stage1_launch_count(nbt, fused=False) for nbt in (16, 32, 64)]
        # fused grows ~2x per doubling, unfused ~4x
        assert 1.8 < f[1] / f[0] < 2.2
        assert 1.8 < f[2] / f[1] < 2.2
        assert 3.5 < u[1] / u[0] < 4.5
        assert 3.5 < u[2] / u[1] < 4.5

    def test_fused_never_more_launches(self):
        for nbt in (1, 2, 3, 5, 8, 13):
            assert stage1_launch_count(nbt, True) <= stage1_launch_count(nbt, False)

    def test_invalid_tiles(self):
        with pytest.raises(ShapeError):
            stage1_launch_count(0)


class TestPredict:
    def test_breakdown_positive(self):
        bd = predict(1024, "h100", "fp32")
        assert bd.panel_s > 0
        assert bd.update_s > 0
        assert bd.brd_s > 0
        assert bd.solve_s > 0
        assert bd.total_s == pytest.approx(
            bd.panel_s + bd.update_s + bd.brd_s + bd.solve_s
        )

    def test_monotone_in_n(self):
        ts = [predict(n, "h100", "fp32").total_s for n in (256, 512, 1024, 2048)]
        assert all(a < b for a, b in zip(ts, ts[1:]))

    def test_fused_faster(self):
        f = predict(2048, "h100", "fp32", fused=True).total_s
        u = predict(2048, "h100", "fp32", fused=False).total_s
        assert f < u

    def test_launch_dict_matches_closed_form(self):
        p = KernelParams()
        for n in (96, 512, 1000):
            nbt = -(-n // p.tilesize)
            bd = predict(n, "h100", "fp32", params=p)
            stage1 = sum(
                v
                for k, v in bd.launches.items()
                if k not in ("brd_chase", "bdsqr_cpu")
            )
            assert stage1 == stage1_launch_count(nbt, fused=True)

    def test_stage_fractions_sum_to_one(self):
        fr = predict(4096, "mi250", "fp64").stage_fractions()
        assert sum(fr.values()) == pytest.approx(1.0)

    def test_capacity_enforced(self):
        with pytest.raises(CapacityError):
            predict(131072, "h100", "fp32")
        predict(131072, "h100", "fp16")  # FP16 fits (paper sec. 4.3)

    def test_capacity_check_optional(self):
        predict(131072, "h100", "fp32", check_capacity=False)

    def test_bad_n(self):
        with pytest.raises(ShapeError):
            predict(0, "h100", "fp32")

    def test_flops_scale(self):
        """Total flops track the (8/3) n^3 two-sided reduction."""
        bd = predict(4096, "h100", "fp32")
        expect = (8.0 / 3.0) * 4096**3
        assert 0.3 * expect < bd.flops < 3.0 * expect

    def test_unsupported_precision_propagates(self):
        from repro.errors import UnsupportedPrecisionError

        with pytest.raises(UnsupportedPrecisionError):
            predict(1024, "mi250", "fp16")

    def test_stage1_property(self):
        bd = predict(512, "h100", "fp32")
        assert bd.stage1_s == pytest.approx(bd.panel_s + bd.update_s)

    def test_fp16_capacity_double_reach(self):
        """H100 FP16 supports sizes FP32 cannot hold (Figure 5)."""
        predict(131072, "h100", "fp16")
        with pytest.raises(CapacityError):
            predict(131072, "h100", "fp32")
