"""The unified Topology API: validation, introspection, solver wiring.

The heterogeneous-fleets PR made ``repro.Topology`` the one value that
names a device fleet; every acceptor (``Solver.predict``,
``Solver.tune``, serving admission, ``partition_graph``) takes
``topology=`` and rejects mixed spellings with an error naming the
conflicting legacy axes.  These tests pin the spec itself plus the
wiring contracts: uniform topologies of the handle's own device route
through the legacy code paths (byte-identical results), heterogeneous
fleets take the cost-weighted event-simulated path, and the placement
search never returns a plan slower than the homogeneous default.
"""

import asyncio

import numpy as np
import pytest

from repro import Solver, Topology
from repro.errors import CapacityError, InvalidParamsError
from repro.report import format_breakdown
from repro.serve.admission import AdmissionController
from repro.sim.topology import conflicting_axes, require_no_conflicts
from repro.tuning.planner import shape_class


@pytest.fixture
def solver():
    return Solver(backend="h100", precision="fp32")


HETERO = Topology(devices=("h100", "h100", "a100", "a100"))


class TestTopologySpec:
    def test_canonicalizes_aliases(self):
        t = Topology(devices=("nvidia-h100", "a100"))
        assert t.devices == ("h100", "a100")

    def test_uniform_constructor(self):
        t = Topology.uniform("h100", 4, nodes=2)
        assert t.devices == ("h100",) * 4
        assert t.ngpu == 4 and t.per_node == 2 and t.nodes == 2
        assert t.is_uniform and t.device == "h100"

    def test_mixed_fleet_introspection(self):
        assert not HETERO.is_uniform
        assert HETERO.counts() == (("h100", 2), ("a100", 2))
        assert len(HETERO.specs()) == 4
        assert HETERO.node_of(3) == 0
        with pytest.raises(InvalidParamsError, match="uniform"):
            HETERO.device

    def test_node_placement(self):
        t = Topology(devices=("h100", "h100", "a100", "a100"), nodes=2)
        assert [t.node_of(r) for r in range(4)] == [0, 0, 1, 1]
        with pytest.raises(InvalidParamsError, match="rank"):
            t.node_of(4)

    def test_hashable_by_value(self):
        a = Topology(devices=("h100", "a100"))
        b = Topology(devices=("nvidia-h100", "a100"))
        assert a == b and hash(a) == hash(b)
        assert a != Topology(devices=("h100", "a100"), link_gbs=50.0)

    def test_validation(self):
        with pytest.raises(InvalidParamsError, match="bare"):
            Topology(devices="h100")
        with pytest.raises(InvalidParamsError, match="at least one"):
            Topology(devices=())
        with pytest.raises(InvalidParamsError, match="split evenly"):
            Topology(devices=("h100",) * 3, nodes=2)
        with pytest.raises(InvalidParamsError, match="nodes"):
            Topology(devices=("h100",), nodes=0)
        with pytest.raises(InvalidParamsError, match="link_gbs"):
            Topology(devices=("h100",), link_gbs=-1.0)
        with pytest.raises(InvalidParamsError, match="nodes >= 2"):
            Topology(devices=("h100",), fabric_gbs=100.0)
        with pytest.raises(InvalidParamsError, match="ngpu"):
            Topology.uniform("h100", 0)

    def test_repr_compact(self):
        assert repr(HETERO) == "Topology(2 x h100 + 2 x a100, nodes=1)"

    def test_conflict_helpers(self):
        assert conflicting_axes(None, ngpu=4) == ()
        assert conflicting_axes(HETERO) == ()
        assert conflicting_axes(HETERO, ngpu=4, link_gbs=10.0) == (
            "ngpu", "link_gbs",
        )
        require_no_conflicts(HETERO)  # no legacy axes: fine
        with pytest.raises(InvalidParamsError, match="fabric_gbs, nodes"):
            require_no_conflicts(HETERO, nodes=2, fabric_gbs=100.0)


class TestSolverTopologyRouting:
    def test_uniform_matches_legacy_spelling(self, solver):
        assert (
            solver.predict(4096, topology=Topology.uniform("h100", 4)).total_s
            == solver.predict(4096, ngpu=4).total_s
        )
        # streams compose identically too
        assert (
            solver.predict(
                4096, streams=2, topology=Topology.uniform("h100", 4)
            ).total_s
            == solver.predict(4096, streams=2, ngpu=4).total_s
        )

    def test_single_rank_uniform_is_single_device(self, solver):
        t = Topology.uniform("h100", 1)
        assert (
            solver.predict(2048, topology=t).total_s
            == solver.predict(2048).total_s
        )

    def test_hetero_returns_event_schedule_with_device_busy(self, solver):
        es = solver.predict(2048, topology=HETERO)
        busy = dict(es.device_busy())
        assert set(busy) == {
            "dev0:h100", "dev1:h100", "dev2:a100", "dev3:a100",
        }
        assert all(v >= 0.0 for v in busy.values())
        bd = es.breakdown()
        assert bd.device_busy_s == es.device_busy()
        util = bd.device_utilization()
        assert util and all(0.0 <= u <= 1.0 for u in util.values())

    def test_format_breakdown_shows_per_device_utilization(self, solver):
        text = format_breakdown(solver.predict(2048, topology=HETERO).breakdown())
        for label in ("util dev0:h100", "util dev3:a100"):
            assert label in text

    def test_uniform_other_device_takes_fleet_path(self, solver):
        # a uniform fleet of a *different* device than the handle's
        # backend cannot reuse the legacy path: it is priced as a fleet
        es = solver.predict(2048, topology=Topology.uniform("a100", 2))
        assert dict(es.device_busy())  # event-simulated, per-device busy

    def test_conflicting_axes_rejected(self, solver):
        for kwargs in (
            dict(ngpu=2), dict(nodes=2), dict(link_gbs=100.0),
            dict(nodes=2, fabric_gbs=50.0),
        ):
            with pytest.raises(InvalidParamsError, match="topology="):
                solver.predict(1024, topology=HETERO, **kwargs)

    def test_hetero_batched_prediction(self, solver):
        es = solver.predict(512, batch=8, topology=HETERO)
        assert es.total_s > 0
        assert dict(es.device_busy())
        with pytest.raises(InvalidParamsError, match="compose"):
            solver.predict(512, batch=8, topology=HETERO, out_of_core=True)

    def test_fleet_capacity_check(self):
        # 50000^2 fp32 over two 8 GiB consumer cards cannot hold its
        # weighted shards in-core
        s = Solver(backend="rtx4060", precision="fp32")
        with pytest.raises(CapacityError):
            s.predict(60000, topology=Topology(devices=("rtx4060", "a100")))
        assert s.predict(
            60000, topology=Topology(devices=("rtx4060", "a100")),
            check_capacity=False,
        ).total_s > 0

    def test_memoized_fleet_pricing_is_deterministic(self, solver):
        a = solver.predict(1024, topology=HETERO)
        b = solver.predict(1024, topology=HETERO)
        assert a.makespan_s == b.makespan_s
        assert a.resource_busy_s == b.resource_busy_s


class TestTunePlacement:
    def test_tune_with_topology_never_slower_than_default(self, solver):
        plan = solver.tune(2048, budget=25, topology=HETERO)
        assert plan.speedup >= 1.0
        kwargs = plan.best.predict_kwargs()
        result = solver.predict(2048, **kwargs)
        assert result.total_s == pytest.approx(plan.best.predicted_s)

    def test_placement_candidates_cover_subsets(self):
        from repro.tuning.planner import _placement_candidates

        cands = _placement_candidates(HETERO)
        assert HETERO in cands
        assert Topology.uniform("h100", 1) in cands
        assert Topology.uniform("h100", 2) in cands
        assert Topology.uniform("a100", 2) in cands
        assert len(cands) == len(set(cands))  # deduped

    def test_candidate_kwargs_spell_topology_not_ngpu(self):
        from repro.tuning.planner import TuneCandidate
        from repro import REFERENCE_PARAMS

        cand = TuneCandidate(
            params=REFERENCE_PARAMS, streams=2, predicted_s=1.0,
            ngpu=4, topology=HETERO,
        )
        kwargs = cand.predict_kwargs()
        assert kwargs["topology"] is HETERO
        assert "ngpu" not in kwargs and "nodes" not in kwargs

    def test_tune_conflicts_with_nodes(self, solver):
        with pytest.raises(InvalidParamsError, match="topology="):
            solver.tune(1024, topology=HETERO, nodes=2)


class TestAdmissionTopology:
    def test_conflicts_with_nodes(self, solver):
        with pytest.raises(InvalidParamsError, match="topology="):
            AdmissionController(solver.config, topology=HETERO, nodes=2)

    def test_capacity_scales_with_fleet_ranks(self, solver):
        cls = shape_class(1024, solver.config)
        one = AdmissionController(solver.config)
        fleet = AdmissionController(solver.config, topology=HETERO)
        assert fleet.capacity_for(cls) == 4 * one.capacity_for(cls)

    def test_fleet_overflow_rejected_not_spilled(self, solver):
        cls = shape_class(1024, solver.config)
        ac = AdmissionController(
            solver.config,
            mem_budget_bytes=ac_budget(cls, solver), topology=HETERO,
        )
        assert ac.price(cls, 1).out_of_core is False
        with pytest.raises(CapacityError, match="fleet"):
            ac.price(cls, 500)

    def test_uniform_topology_prices_like_legacy(self, solver):
        cls = shape_class(1024, solver.config)
        legacy = AdmissionController(solver.config).price(cls, 4)
        topo = AdmissionController(
            solver.config, topology=Topology.uniform("h100", 1)
        ).price(cls, 4)
        assert topo.predicted_s == legacy.predicted_s

    def test_served_fleet_results_stay_bitwise(self, solver):
        rng = np.random.default_rng(5)
        mats = [rng.standard_normal((64, 64)) for _ in range(3)]

        async def run():
            async with solver.serve(max_batch=4, topology=HETERO) as svc:
                futs = [await svc.submit(A) for A in mats]
                return [await f for f in futs]

        for A, vals in zip(mats, asyncio.run(run())):
            np.testing.assert_array_equal(vals, solver.solve(A))


def ac_budget(cls, solver):
    """A budget fitting ~1.5 problems per rank of ``cls``."""
    storage = solver.config.require_precision("test")
    return cls.npad * cls.npad * storage.sizeof * 1.25 * 1.5
