"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import os

import numpy as np
import pytest

import scipy.linalg as sla

from hypothesis import settings

# The weekly scheduled CI run exercises the property tests much harder
# than the per-PR gate; select with HYPOTHESIS_PROFILE=ci (see ci.yml).
settings.register_profile("default", settings())
settings.register_profile("ci", max_examples=300, deadline=None)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))


def pytest_configure(config):
    """Run ``async def`` tests automatically where pytest-asyncio exists.

    The serving tests drive coroutines through ``asyncio.run`` inside
    plain test functions, so they pass with or without the plugin; this
    just keeps any future native-async tests runnable in CI (which
    installs pytest-asyncio via requirements-ci.txt) without decorating.
    """
    if config.pluginmanager.hasplugin("asyncio"):
        config.option.asyncio_mode = "auto"


@pytest.fixture
def rng() -> np.random.Generator:
    """Seeded generator - deterministic tests."""
    return np.random.default_rng(12345)


def scipy_svdvals(A: np.ndarray) -> np.ndarray:
    """Float64 LAPACK singular values (the accuracy oracle)."""
    return np.asarray(sla.svdvals(np.asarray(A, dtype=np.float64)))


def rel_err(computed: np.ndarray, reference: np.ndarray) -> float:
    """Relative Frobenius error between sorted singular-value vectors."""
    a = np.sort(np.asarray(computed, dtype=np.float64))[::-1]
    b = np.sort(np.asarray(reference, dtype=np.float64))[::-1]
    denom = max(np.linalg.norm(b), 1e-300)
    return float(np.linalg.norm(a - b) / denom)
