"""Hypothesis property tests across the full unified pipeline."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from tests.conftest import rel_err, scipy_svdvals
from repro.core import svdvals, svdvals_rect
from repro.sim import KernelParams, predict


@given(
    n=st.integers(2, 48),
    ts=st.sampled_from([8, 16, 32]),
    seed=st.integers(0, 10_000),
)
@settings(max_examples=25, deadline=None)
def test_unified_matches_lapack_any_tiling(n, ts, seed):
    """Correctness must hold for every (size, tile) combination, including
    padding paths where n is not a tile multiple."""
    rng = np.random.default_rng(seed)
    A = rng.standard_normal((n, n))
    got = svdvals(A, backend="h100", precision="fp64",
                  params=KernelParams(ts, min(ts, 32), 4))
    assert rel_err(got, scipy_svdvals(A)) < 1e-11


@given(
    n=st.integers(2, 40),
    seed=st.integers(0, 10_000),
    log_scale=st.integers(-20, 20),
)
@settings(max_examples=25, deadline=None)
def test_scale_equivariance(n, seed, log_scale):
    """svdvals(c * A) == c * svdvals(A): exact for power-of-two scales."""
    rng = np.random.default_rng(seed)
    A = rng.standard_normal((n, n))
    c = 2.0**log_scale
    base = svdvals(A, backend="h100", precision="fp64")
    scaled = svdvals(c * A, backend="h100", precision="fp64")
    np.testing.assert_allclose(scaled, c * base, rtol=1e-9, atol=1e-300)


@given(
    m=st.integers(1, 40),
    n=st.integers(1, 40),
    seed=st.integers(0, 1000),
)
@settings(max_examples=20, deadline=None)
def test_rectangular_any_shape(m, n, seed):
    rng = np.random.default_rng(seed)
    A = rng.standard_normal((m, n))
    got = svdvals_rect(A, backend="h100", precision="fp64")
    ref = scipy_svdvals(A)
    assert got.shape == (min(m, n),)
    assert np.max(np.abs(got - ref)) <= 1e-10 * max(ref[0], 1.0)


@given(
    n=st.integers(2, 32),
    seed=st.integers(0, 1000),
)
@settings(max_examples=20, deadline=None)
def test_orthogonal_invariance(n, seed):
    """Singular values are invariant under orthogonal transforms."""
    rng = np.random.default_rng(seed)
    A = rng.standard_normal((n, n))
    Q = np.linalg.qr(rng.standard_normal((n, n)))[0]
    a = svdvals(A, backend="h100", precision="fp64")
    b = svdvals(Q @ A, backend="h100", precision="fp64")
    np.testing.assert_allclose(a, b, atol=1e-11 * max(a[0], 1.0))


@given(
    n=st.sampled_from([128, 512, 2048, 8192]),
    backend=st.sampled_from(["h100", "a100", "rtx4060", "mi250", "pvc"]),
    ts=st.sampled_from([16, 32, 64]),
    cpb=st.sampled_from([8, 16, 32]),
    sk=st.sampled_from([1, 4, 8]),
)
@settings(max_examples=40, deadline=None)
def test_cost_model_total_positive_finite(n, backend, ts, cpb, sk):
    """The cost model must be well-defined over the whole parameter box."""
    bd = predict(n, backend, "fp32", params=KernelParams(ts, min(cpb, ts), sk),
                 check_capacity=False)
    assert np.isfinite(bd.total_s)
    assert bd.total_s > 0
    assert bd.panel_s >= 0 and bd.update_s >= 0
    assert bd.launch_total > 0


@given(
    n=st.integers(2, 32),
    seed=st.integers(0, 500),
)
@settings(max_examples=15, deadline=None)
def test_fp16_error_bounded(n, seed):
    """FP16 results stay within a few hundred half-eps of the truth."""
    rng = np.random.default_rng(seed)
    A = rng.standard_normal((n, n)).astype(np.float16).astype(np.float64)
    got = svdvals(A, backend="h100", precision="fp16")
    ref = scipy_svdvals(A)
    eps16 = float(np.finfo(np.float16).eps)
    assert rel_err(got, ref) < 300 * eps16 * max(1.0, np.sqrt(n))
