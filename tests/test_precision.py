"""Tests for the precision abstraction."""

import numpy as np
import pytest

from repro.errors import UnsupportedPrecisionError
from repro.precision import Precision, resolve_precision


class TestPrecisionProperties:
    def test_dtypes(self):
        assert Precision.FP16.dtype == np.float16
        assert Precision.FP32.dtype == np.float32
        assert Precision.FP64.dtype == np.float64

    def test_sizeof(self):
        assert Precision.FP16.sizeof == 2
        assert Precision.FP32.sizeof == 4
        assert Precision.FP64.sizeof == 8

    def test_eps_matches_numpy(self):
        for prec in Precision:
            assert prec.eps == float(np.finfo(prec.dtype).eps)

    def test_eps_ordering(self):
        assert Precision.FP16.eps > Precision.FP32.eps > Precision.FP64.eps

    def test_bits(self):
        assert [p.bits for p in Precision] == [16, 32, 64]

    def test_tiny_and_fmax_are_positive(self):
        for prec in Precision:
            assert prec.tiny > 0
            assert prec.fmax > prec.tiny

    def test_name_lower(self):
        assert Precision.FP32.name_lower == "fp32"


class TestAtLeast:
    def test_upcast(self):
        assert Precision.FP16.at_least(Precision.FP32) is Precision.FP32

    def test_no_downcast(self):
        assert Precision.FP64.at_least(Precision.FP32) is Precision.FP64

    def test_identity(self):
        assert Precision.FP32.at_least(Precision.FP32) is Precision.FP32


class TestResolve:
    @pytest.mark.parametrize(
        "alias,expected",
        [
            ("fp16", Precision.FP16),
            ("half", Precision.FP16),
            ("Float16", Precision.FP16),
            ("FP32", Precision.FP32),
            ("single", Precision.FP32),
            ("double", Precision.FP64),
            ("float64", Precision.FP64),
        ],
    )
    def test_string_aliases(self, alias, expected):
        assert resolve_precision(alias) is expected

    def test_precision_passthrough(self):
        assert resolve_precision(Precision.FP16) is Precision.FP16

    @pytest.mark.parametrize(
        "dtype,expected",
        [
            (np.float16, Precision.FP16),
            (np.float32, Precision.FP32),
            (np.float64, Precision.FP64),
            (np.dtype("f4"), Precision.FP32),
        ],
    )
    def test_numpy_dtypes(self, dtype, expected):
        assert resolve_precision(dtype) is expected

    def test_unknown_string_raises(self):
        with pytest.raises(UnsupportedPrecisionError):
            resolve_precision("fp8")

    def test_unsupported_dtype_raises(self):
        with pytest.raises(UnsupportedPrecisionError):
            resolve_precision(np.int32)

    def test_garbage_raises(self):
        with pytest.raises(UnsupportedPrecisionError):
            resolve_precision(object())
