"""Tests for the bidiagonal singular value solvers (stage 3)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from tests.conftest import rel_err, scipy_svdvals
from repro.core.bidiag import (
    bisect,
    golub_kahan,
    singular_2x2,
    svdvals_bidiag,
)


def bidiag_dense(d, e):
    n = len(d)
    B = np.diag(np.asarray(d, dtype=np.float64))
    if n > 1:
        B += np.diag(np.asarray(e, dtype=np.float64), 1)
    return B


def reference(d, e):
    return scipy_svdvals(bidiag_dense(d, e))


SOLVERS = [golub_kahan, bisect]


@pytest.mark.parametrize("solver", SOLVERS)
class TestSolverBasics:
    def test_random(self, rng, solver):
        n = 40
        d, e = rng.standard_normal(n), rng.standard_normal(n - 1)
        got = solver(d, e)
        assert rel_err(got, reference(d, e)) < 1e-12

    def test_descending_nonnegative(self, rng, solver):
        d, e = rng.standard_normal(30), rng.standard_normal(29)
        got = solver(d, e)
        assert np.all(got >= 0)
        assert np.all(np.diff(got) <= 0)

    def test_diagonal_matrix(self, solver, rng):
        d = rng.standard_normal(20)
        got = solver(d, np.zeros(19))
        np.testing.assert_allclose(got, np.sort(np.abs(d))[::-1], atol=1e-14)

    def test_single_element(self, solver):
        np.testing.assert_allclose(solver(np.array([-3.0]), np.zeros(0)), [3.0])

    def test_zero_matrix(self, solver):
        got = solver(np.zeros(10), np.zeros(9))
        np.testing.assert_array_equal(got, np.zeros(10))

    def test_zero_diagonal_entries(self, solver, rng):
        d = rng.standard_normal(16)
        e = rng.standard_normal(15)
        d[[3, 8]] = 0.0
        got = solver(d, e)
        assert rel_err(got, reference(d, e)) < 1e-11

    def test_split_blocks(self, solver, rng):
        """Interior zero superdiagonals split the problem."""
        d = rng.standard_normal(20)
        e = rng.standard_normal(19)
        e[[4, 11]] = 0.0
        got = solver(d, e)
        assert rel_err(got, reference(d, e)) < 1e-12

    def test_graded(self, solver):
        n = 24
        d = np.logspace(0, -12, n)
        e = np.logspace(-1, -13, n - 1)
        got = solver(d, e)
        # absolute accuracy relative to sigma_max
        assert np.max(np.abs(got - reference(d, e))) < 1e-13

    def test_pairwise_close_values(self, solver):
        """Clustered singular values must all be found."""
        d = np.ones(12)
        e = np.full(11, 1e-8)
        got = solver(d, e)
        assert rel_err(got, reference(d, e)) < 1e-12

    def test_negative_entries(self, solver, rng):
        d = -np.abs(rng.standard_normal(15))
        e = -np.abs(rng.standard_normal(14))
        assert rel_err(solver(d, e), reference(d, e)) < 1e-12

    def test_length_mismatch(self, solver):
        with pytest.raises(ValueError):
            solver(np.ones(5), np.ones(5))

    def test_empty(self, solver):
        assert solver(np.zeros(0), np.zeros(0)).shape == (0,)


class TestGolubKahanSpecifics:
    def test_2x2_closed_form(self):
        smin, smax = singular_2x2(3.0, 4.0, 5.0)
        ref = np.linalg.svd(np.array([[3.0, 4.0], [0.0, 5.0]]), compute_uv=False)
        assert smax == pytest.approx(ref[0], rel=1e-14)
        assert smin == pytest.approx(ref[1], rel=1e-14)

    def test_2x2_zero_cases(self):
        assert singular_2x2(0.0, 0.0, 0.0) == (0.0, 0.0)
        smin, smax = singular_2x2(0.0, 3.0, 4.0)
        assert smin == 0.0
        assert smax == pytest.approx(5.0)

    def test_2x2_large_g(self):
        smin, smax = singular_2x2(1.0, 1e8, 1.0)
        ref = np.linalg.svd(np.array([[1.0, 1e8], [0.0, 1.0]]), compute_uv=False)
        assert smax == pytest.approx(ref[0], rel=1e-12)
        assert smin == pytest.approx(ref[1], rel=1e-8)

    def test_large_matrix(self, rng):
        n = 300
        d, e = rng.standard_normal(n), rng.standard_normal(n - 1)
        assert rel_err(golub_kahan(d, e), reference(d, e)) < 1e-11

    def test_inputs_not_mutated(self, rng):
        d = rng.standard_normal(10)
        e = rng.standard_normal(9)
        d0, e0 = d.copy(), e.copy()
        golub_kahan(d, e)
        np.testing.assert_array_equal(d, d0)
        np.testing.assert_array_equal(e, e0)


class TestBisectSpecifics:
    def test_matches_gk(self, rng):
        n = 64
        d, e = rng.standard_normal(n), rng.standard_normal(n - 1)
        np.testing.assert_allclose(
            bisect(d, e), golub_kahan(d, e), atol=1e-10 * np.abs(d).max()
        )

    def test_large_matrix(self, rng):
        n = 600
        d, e = rng.standard_normal(n), rng.standard_normal(n - 1)
        got = bisect(d, e)
        assert np.max(np.abs(got - reference(d, e))) < 1e-10 * got[0]

    def test_scaled_spectrum(self, rng):
        d = 1e6 * rng.standard_normal(20)
        e = 1e6 * rng.standard_normal(19)
        assert rel_err(bisect(d, e), reference(d, e)) < 1e-12


class TestDispatcher:
    def test_auto_small_uses_gk(self, rng):
        d, e = rng.standard_normal(10), rng.standard_normal(9)
        np.testing.assert_array_equal(
            svdvals_bidiag(d, e, "auto"), golub_kahan(d, e)
        )

    def test_explicit_methods(self, rng):
        d, e = rng.standard_normal(10), rng.standard_normal(9)
        for method in ("gk", "bisect", "lapack"):
            got = svdvals_bidiag(d, e, method)
            assert rel_err(got, reference(d, e)) < 1e-10

    def test_unknown_method(self, rng):
        with pytest.raises(ValueError):
            svdvals_bidiag(np.ones(3), np.ones(2), "magic")


class TestProperties:
    @given(
        n=st.integers(1, 40),
        seed=st.integers(0, 10_000),
        scale=st.floats(1e-8, 1e8),
    )
    @settings(max_examples=60, deadline=None)
    def test_gk_property(self, n, seed, scale):
        rng = np.random.default_rng(seed)
        d = scale * rng.standard_normal(n)
        e = scale * rng.standard_normal(max(0, n - 1))
        got = golub_kahan(d, e)
        ref = reference(d, e)
        assert np.max(np.abs(got - ref)) <= 1e-11 * max(ref[0], 1e-300)

    @given(n=st.integers(1, 40), seed=st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_bisect_property(self, n, seed):
        rng = np.random.default_rng(seed)
        d = rng.standard_normal(n)
        e = rng.standard_normal(max(0, n - 1))
        got = bisect(d, e)
        ref = reference(d, e)
        assert np.max(np.abs(got - ref)) <= 1e-10 * max(ref[0], 1e-300)

    @given(n=st.integers(2, 30), seed=st.integers(0, 5000))
    @settings(max_examples=30, deadline=None)
    def test_frobenius_invariant(self, n, seed):
        """sum(sigma^2) == ||B||_F^2 (exact invariant of the SVD)."""
        rng = np.random.default_rng(seed)
        d = rng.standard_normal(n)
        e = rng.standard_normal(n - 1)
        got = golub_kahan(d, e)
        fro2 = float(d @ d + e @ e)
        assert np.sum(got**2) == pytest.approx(fro2, rel=1e-10)
