"""Tests for kernel hyperparameter validation (paper section 3.3)."""

import pytest

from repro.errors import InvalidParamsError
from repro.sim import REFERENCE_PARAMS, KernelParams, param_grid


class TestValidation:
    def test_reference_config(self):
        assert REFERENCE_PARAMS.astuple() == (32, 32, 8)

    def test_defaults_are_reference(self):
        assert KernelParams().astuple() == (32, 32, 8)

    @pytest.mark.parametrize("ts", [4, 8, 16, 32, 64, 128])
    def test_paper_tilesize_range_accepted(self, ts):
        KernelParams(tilesize=ts, colperblock=min(ts, 32), splitk=1)

    @pytest.mark.parametrize("ts", [2, 3, 256])
    def test_tilesize_out_of_range(self, ts):
        with pytest.raises(InvalidParamsError):
            KernelParams(tilesize=ts, colperblock=1, splitk=1)

    def test_colperblock_must_divide_tilesize(self):
        with pytest.raises(InvalidParamsError):
            KernelParams(tilesize=32, colperblock=24, splitk=1)

    def test_colperblock_cannot_exceed_tilesize(self):
        with pytest.raises(InvalidParamsError):
            KernelParams(tilesize=16, colperblock=32, splitk=1)

    def test_splitk_block_limit(self):
        # SPLITK <= min(TILESIZE, 1024 / TILESIZE)
        assert KernelParams.max_splitk(128) == 8
        assert KernelParams.max_splitk(32) == 32
        assert KernelParams.max_splitk(4) == 4
        with pytest.raises(InvalidParamsError):
            KernelParams(tilesize=128, colperblock=32, splitk=16)

    def test_splitk_positive(self):
        with pytest.raises(InvalidParamsError):
            KernelParams(tilesize=32, colperblock=32, splitk=0)

    def test_panel_threads(self):
        p = KernelParams(32, 32, 8)
        assert p.panel_threads == 256
        assert p.update_threads == 32

    def test_with_revalidates(self):
        p = KernelParams(32, 32, 8)
        assert p.with_(tilesize=64).tilesize == 64
        with pytest.raises(InvalidParamsError):
            p.with_(colperblock=24)

    def test_frozen(self):
        with pytest.raises(Exception):
            KernelParams().tilesize = 64  # type: ignore[misc]


class TestGrid:
    def test_grid_nonempty_and_valid(self):
        grid = list(param_grid())
        assert len(grid) > 20
        for p in grid:
            assert p.colperblock <= p.tilesize
            assert p.splitk <= KernelParams.max_splitk(p.tilesize)

    def test_grid_skips_invalid(self):
        # colperblock 128 with tilesize 8 would be invalid: silently skipped
        grid = list(param_grid(tilesizes=(8,), colperblocks=(128,), splitks=(1,)))
        assert grid == []

    def test_grid_respects_axes(self):
        grid = list(param_grid(tilesizes=(16,), colperblocks=(8, 16), splitks=(2,)))
        assert {p.astuple() for p in grid} == {(16, 8, 2), (16, 16, 2)}
