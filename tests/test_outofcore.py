"""The out-of-core graph rewriter: windows, transfer nodes, composition.

PR 4 replaced the closed-form out-of-core model with an explicit graph
path: emit -> (partition ->) rewrite -> price.  These tests pin the
acceptance criteria: the rewrite is a structural no-op in-core (``io_s``
nonzero only past capacity), ``Solver.predict(n, out_of_core=True)``
prices the rewritten LaunchGraph (launch counts from the graph, transfer
time in ``io_s``), it composes with ``streams=`` and ``ngpu=``, numeric
replay of a rewritten graph is bitwise identical to the monolithic
driver while never exceeding the declared window budget, and the graph
pricing agrees with the legacy closed form on its modeled regime.
"""

import copy

import numpy as np
import pytest

from repro import Solver, WindowOverflowError
from repro.core import emit_svd_graph
from repro.core.svd import svdvals_resolved
from repro.errors import CapacityError, InvalidParamsError
from repro.sim import (
    AnalyticExecutor,
    LinkSpec,
    Stage,
    StreamSchedule,
    partition_graph,
    rewrite_out_of_core,
    schedule_streams,
    window_capacity_tiles,
)
from repro.sim.graph import COMM_KINDS, TRANSFER_KINDS
from repro.sim.outofcore import WindowTracker, _node_tiles, host_link
from repro.sim.scaling import out_of_core_closed_form_resolved

LINK = LinkSpec("test-link", 100.0, 2.0)


@pytest.fixture
def solver():
    return Solver(backend="h100", precision="fp32")


def tile_budget(tiles: int, ts: int = 32, sizeof: int = 4) -> float:
    """Budget in bytes whose window capacity is exactly ``tiles``."""
    return tiles * ts * ts * sizeof * 1.25


class TestRewriteStructure:
    def test_in_core_is_structural_noop(self, solver):
        graph = emit_svd_graph(1024, solver.config)
        assert rewrite_out_of_core(graph, solver.config, solver.precision) is graph
        assert not graph.out_of_core
        # and the solver path reproduces the in-core prediction exactly
        a = solver.predict(4096)
        b = solver.predict(4096, out_of_core=True)
        assert a.total_s == b.total_s
        assert b.io_s == 0.0 and a.launches == b.launches

    def test_transfer_nodes_and_capacity_recorded(self, solver):
        graph = emit_svd_graph(512, solver.config)
        oc = rewrite_out_of_core(
            graph, solver.config, solver.precision, tile_budget(64)
        )
        assert oc.out_of_core and oc.oc_capacity_tiles == 64
        counts = oc.launch_counts()
        assert counts["h2d_tile"] > 0 and counts["d2h_tile"] > 0
        # the compute launch set is preserved (updates may be chunked)
        mono = graph.launch_counts()
        assert counts["geqrt"] == mono["geqrt"]
        assert counts["ftsqrt"] == mono["ftsqrt"]
        assert counts["ftsmqr"] >= mono["ftsmqr"]
        for node in oc.nodes:
            if node.kind in TRANSFER_KINDS:
                assert node.stage == Stage.TRANSFER
                assert node.key[0] == "comm"

    def test_deps_stay_topological(self, solver):
        for tiles in (46, 64, 200):
            oc = rewrite_out_of_core(
                emit_svd_graph(512, solver.config), solver.config,
                solver.precision, tile_budget(tiles),
            )
            for i, node in enumerate(oc.nodes):
                assert all(d < i for d in node.deps)

    def test_every_load_is_written_back(self, solver):
        """h2d and d2h traffic balance: the window drains every sweep."""
        oc = rewrite_out_of_core(
            emit_svd_graph(512, solver.config), solver.config,
            solver.precision, tile_budget(48),
        )
        h2d = sum(
            n.key[1] for n in oc.nodes
            if n.kind == "h2d_tile" and n.meta[0] != "band"
        )
        d2h = sum(n.key[1] for n in oc.nodes if n.kind == "d2h_tile")
        assert h2d == d2h

    def test_prefetch_depends_only_on_eviction(self, solver):
        """A window load never waits for the compute of other windows,
        so prefetch of window k+1 overlaps the update of window k."""
        oc = rewrite_out_of_core(
            emit_svd_graph(512, solver.config), solver.config,
            solver.precision, tile_budget(64),
        )
        kinds = [n.kind for n in oc.nodes]
        for i, node in enumerate(oc.nodes):
            if node.kind == "h2d_tile" and node.meta[0] == "win":
                assert all(
                    kinds[d] in TRANSFER_KINDS for d in node.deps
                ), f"window load {i} gated on compute"

    def test_rejects_bad_inputs(self, solver):
        cfg = solver.config
        with pytest.raises(ValueError, match="counted"):
            rewrite_out_of_core(
                emit_svd_graph(128, cfg.with_(fused=False), counted=True),
                cfg, solver.precision, tile_budget(64),
            )
        from repro.core import emit_tallqr_graph

        with pytest.raises(ValueError, match="square"):
            rewrite_out_of_core(
                emit_tallqr_graph(256, 64, cfg), cfg, solver.precision,
                tile_budget(64),
            )
        oc = rewrite_out_of_core(
            emit_svd_graph(128, cfg), cfg, solver.precision, tile_budget(10)
        )
        with pytest.raises(ValueError, match="already"):
            rewrite_out_of_core(oc, cfg, solver.precision, tile_budget(10))

    def test_rewriters_compose_in_fixed_order(self, solver):
        """partition_graph refuses an already-rewritten graph: the
        documented composition order is partition first, then rewrite."""
        cfg = solver.config
        oc = rewrite_out_of_core(
            emit_svd_graph(128, cfg), cfg, solver.precision, tile_budget(10)
        )
        with pytest.raises(ValueError, match="fixed order"):
            partition_graph(oc, 2, LINK)
        # the sanctioned order works and keeps device assignments
        pg = partition_graph(emit_svd_graph(128, cfg), 2, LINK)
        poc = rewrite_out_of_core(pg, cfg, solver.precision, tile_budget(10))
        assert poc.ngpu == 2 and poc.out_of_core
        assert {n.device for n in poc.nodes} == {0, 1}

    def test_budget_below_minimum_raises(self, solver):
        with pytest.raises(CapacityError, match="at least"):
            rewrite_out_of_core(
                emit_svd_graph(512, solver.config), solver.config,
                solver.precision, tile_budget(8),
            )
        with pytest.raises(CapacityError, match="positive"):
            rewrite_out_of_core(
                emit_svd_graph(512, solver.config), solver.config,
                solver.precision, -1.0,
            )

    def test_window_capacity_tiles(self):
        assert window_capacity_tiles(tile_budget(17), 32, 4) == 17
        assert host_link(Solver().config).bandwidth_gbs == 25.0


class TestOutOfCorePricing:
    def test_io_only_past_capacity(self, solver):
        cap = solver.backend.max_n("fp32")
        below = solver.predict(cap // 2, out_of_core=True)
        assert below.io_s == 0.0
        above = solver.predict(int(cap * 1.25), out_of_core=True)
        assert above.io_s > 0.0
        assert above.launches["h2d_tile"] > 0

    def test_launch_counts_come_from_rewritten_graph(self, solver):
        cfg = solver.config
        oc = rewrite_out_of_core(
            emit_svd_graph(512, cfg), cfg, solver.precision, tile_budget(48)
        )
        bd = AnalyticExecutor(cfg, solver.precision).run(oc)
        assert bd.launches == oc.launch_counts()
        assert bd.io_s > 0
        assert bd.total_s == pytest.approx(
            bd.panel_s + bd.update_s + bd.brd_s + bd.solve_s + bd.io_s
        )
        assert bd.stage_fractions()[Stage.TRANSFER] > 0

    def test_predict_matches_rewritten_price(self, solver):
        """ngpu=1, streams=1 predict == pricing the rewritten graph."""
        n = 16384
        bd = solver.predict(n, out_of_core=True, oc_budget_gb=0.5)
        cfg = solver.config
        oc = rewrite_out_of_core(
            emit_svd_graph(n, cfg), cfg, solver.precision, 0.5 * 2**30
        )
        manual = AnalyticExecutor(cfg, solver.precision).run(oc)
        assert bd.total_s == manual.total_s
        assert bd.io_s == manual.io_s
        assert bd.launches == manual.launches

    def test_smaller_budget_more_io(self, solver):
        n = 8192
        big = solver.predict(n, out_of_core=True, oc_budget_gb=0.2)
        small = solver.predict(n, out_of_core=True, oc_budget_gb=0.05)
        assert small.io_s >= big.io_s
        assert small.launches["h2d_tile"] > big.launches["h2d_tile"]

    def test_compute_stages_track_in_core(self, solver):
        """Out-of-core moves the transfer cost to io_s; compute stages
        stay close to the in-core pricing (chunking adds only the
        per-chunk pivot-row traffic)."""
        n = 8192
        ic = solver.predict(n)
        oc = solver.predict(n, out_of_core=True, oc_budget_gb=0.2)
        assert oc.panel_s == ic.panel_s
        assert oc.brd_s == ic.brd_s and oc.solve_s == ic.solve_s
        assert oc.update_s == pytest.approx(ic.update_s, rel=0.10)

    def test_closed_form_oracle_agreement(self, solver):
        """The graph pricing must agree with the legacy closed form on
        its modeled regime (large transfer-dominated sizes)."""
        n = int(solver.backend.max_n("fp32") * 1.3)
        new = solver.predict(n, out_of_core=True)
        old = out_of_core_closed_form_resolved(n, solver.config)
        assert new.total_s == pytest.approx(old.total_s, rel=0.15)
        assert new.io_s == pytest.approx(old.update_s, rel=0.15)
        assert new.panel_s == old.panel_s


class TestCompositionMatrix:
    """The out_of_core x streams x ngpu sweep of the predict front door."""

    @pytest.mark.parametrize("ngpu", [1, 2, 4])
    @pytest.mark.parametrize("streams", [1, 2])
    def test_sweep(self, solver, ngpu, streams):
        n, budget_gb = 8192, 0.05
        result = solver.predict(
            n, out_of_core=True, ngpu=ngpu, streams=streams,
            oc_budget_gb=budget_gb,
        )
        serial = solver.predict(
            n, out_of_core=True, ngpu=ngpu, oc_budget_gb=budget_gb
        )
        if streams == 1:
            assert result.io_s > 0
            assert result.ngpu == ngpu
            assert (result.comm_s > 0) == (ngpu > 1)
            assert result.launches["h2d_tile"] > 0
        else:
            assert isinstance(result, StreamSchedule)
            assert result.io_s > 0
            # transfers get one host-link lane per device
            comm_lanes = ngpu if ngpu > 1 else 0
            assert len(result.stream_busy_s) == ngpu * streams + comm_lanes + ngpu
            # overlap can only improve on the stage-structured pricing
            assert result.total_s < serial.total_s

    @pytest.mark.parametrize("ngpu", [1, 2])
    @pytest.mark.parametrize("streams", [1, 2])
    def test_sweep_in_core_no_io(self, solver, ngpu, streams):
        """Below capacity the whole sweep reports zero io."""
        result = solver.predict(4096, out_of_core=True, ngpu=ngpu,
                                streams=streams)
        baseline = solver.predict(4096, ngpu=ngpu, streams=streams)
        assert result.io_s == 0.0
        assert result.total_s == baseline.total_s

    def test_ngpu_shards_rewrite_against_own_budget(self, solver):
        """Each device's shard streams through its own window."""
        bd = solver.predict(16384, out_of_core=True, ngpu=2,
                            oc_budget_gb=0.1)
        assert bd.ngpu == 2 and bd.io_s > 0 and bd.comm_s > 0
        # sharding first can bring shards back in core: more devices,
        # less io per device, until the rewrite is a no-op again
        cfg = solver.config
        pg = partition_graph(emit_svd_graph(16384, cfg), 2, LINK)
        poc = rewrite_out_of_core(pg, cfg, solver.precision, 0.1 * 2**30)
        for dev in (0, 1):
            assert any(
                n.kind == "h2d_tile" and n.device == dev for n in poc.nodes
            )

    def test_transfer_lane_discipline(self, solver):
        cfg = solver.config
        oc = rewrite_out_of_core(
            emit_svd_graph(2048, cfg, streams=2), cfg, solver.precision,
            tile_budget(300),
        )
        schedule_streams(oc, cfg, solver.precision, 2)
        for node in oc.nodes:
            if node.stage == Stage.TRANSFER:
                assert node.stream == 2  # the single device's host lane
            elif node.stage != Stage.COMM:
                assert node.stream in (0, 1)

    def test_oc_budget_requires_out_of_core(self, solver):
        with pytest.raises(InvalidParamsError, match="oc_budget_gb"):
            solver.predict(128, oc_budget_gb=1.0)
        with pytest.raises(InvalidParamsError, match="positive"):
            solver.predict(128, out_of_core=True, oc_budget_gb=-2.0)


class TestReplayBitwise:
    @pytest.mark.parametrize(
        "backend,precision",
        [("h100", "fp32"), ("h100", "fp16"), ("mi250", "fp64")],
    )
    @pytest.mark.parametrize("fused", [True, False])
    def test_bitwise_identical(self, backend, precision, fused):
        s = Solver(backend=backend, precision=precision, fused=fused)
        cfg = s.config
        A = np.random.default_rng(3).standard_normal((130, 130))
        oneshot = s.solve(A)
        sizeof = s.precision.sizeof
        for tiles in (13, 20, 64):
            oc = rewrite_out_of_core(
                emit_svd_graph(130, cfg), cfg, s.precision,
                tile_budget(tiles, sizeof=sizeof),
            )
            np.testing.assert_array_equal(
                svdvals_resolved(A, cfg, graph=oc), oneshot
            )

    def test_partitioned_then_rewritten_bitwise(self, solver):
        cfg = solver.config
        A = np.random.default_rng(5).standard_normal((160, 160))
        oneshot = solver.solve(A)
        pg = partition_graph(emit_svd_graph(160, cfg), 3, LINK)
        poc = rewrite_out_of_core(pg, cfg, solver.precision, tile_budget(16))
        np.testing.assert_array_equal(
            svdvals_resolved(A, cfg, graph=poc), oneshot
        )

    def test_traced_run_attributes_transfer(self, solver):
        cfg = solver.config
        oc = rewrite_out_of_core(
            emit_svd_graph(96, cfg), cfg, solver.precision, tile_budget(8)
        )
        A = np.random.default_rng(4).standard_normal((96, 96))
        _, info = svdvals_resolved(A, cfg, graph=oc, return_info=True)
        assert info.stage_seconds[Stage.TRANSFER] > 0
        assert info.launch_counts == oc.launch_counts()


class TestWindowEnforcement:
    def _rewritten(self, solver, n=96, tiles=8):
        cfg = solver.config
        return rewrite_out_of_core(
            emit_svd_graph(n, cfg), cfg, solver.precision, tile_budget(tiles)
        )

    def test_replay_never_exceeds_budget(self, solver):
        """The tracker walks the whole replay without faulting: the
        transfer schedule keeps residency within the declared window."""
        oc = self._rewritten(solver)
        tracker = WindowTracker(oc)
        peak = 0
        for node in oc.nodes:
            if node.kind in TRANSFER_KINDS:
                tracker.on_transfer(node)
            else:
                tracker.require(node)
            peak = max(peak, tracker._res[0].resident_tiles)
        assert 0 < peak <= oc.oc_capacity_tiles

    def test_missing_load_faults(self, solver):
        oc = self._rewritten(solver)
        A = np.random.default_rng(4).standard_normal((96, 96))
        bad = copy.deepcopy(oc)
        for i, node in enumerate(bad.nodes):
            if node.kind == "h2d_tile" and node.meta[0] == "win":
                del bad.nodes[i]
                break
        with pytest.raises(WindowOverflowError, match="not resident"):
            svdvals_resolved(A, solver.config, graph=bad)

    def test_underdeclared_capacity_faults(self, solver):
        oc = self._rewritten(solver)
        A = np.random.default_rng(4).standard_normal((96, 96))
        tight = copy.deepcopy(oc)
        tight.oc_capacity_tiles = 4
        with pytest.raises(WindowOverflowError, match="overflow"):
            svdvals_resolved(A, solver.config, graph=tight)

    def test_missing_band_load_faults(self, solver):
        oc = self._rewritten(solver)
        A = np.random.default_rng(4).standard_normal((96, 96))
        bad = copy.deepcopy(oc)
        bad.nodes = [
            n for n in bad.nodes
            if not (n.kind == "h2d_tile" and n.meta[0] == "band")
        ]
        with pytest.raises(WindowOverflowError, match="band"):
            svdvals_resolved(A, solver.config, graph=bad)

    def test_node_tiles_cover_both_orientations(self, solver):
        """LQ-sweep launches touch transposed tiles; the tile decoder
        must swap coordinates or residency checks would be vacuous."""
        graph = emit_svd_graph(128, solver.config)
        rq = lq = None
        for node in graph.nodes:
            if node.kind == "ftsmqr":
                if node.meta[0] and lq is None:
                    lq = _node_tiles(node, graph.ts)
                elif not node.meta[0] and rq is None:
                    rq = _node_tiles(node, graph.ts)
        assert rq and lq
        assert {t for t in rq} != {t for t in lq}
        # RQ sweep 0 touches column tiles (l, 0); LQ sweep 0 row tiles (0, l)
        assert any(c == 0 and r > 0 for r, c in rq)
        assert any(r == 0 and c > 1 for r, c in lq)

    def test_comm_nodes_have_no_window_footprint(self, solver):
        cfg = solver.config
        pg = partition_graph(emit_svd_graph(128, cfg), 2, LINK)
        for node in pg.nodes:
            if node.kind in COMM_KINDS:
                assert _node_tiles(node, pg.ts) == set()


class TestStreamsComposition:
    def test_overlap_beats_serial_pricing(self, solver):
        n = 16384
        serial = solver.predict(n, out_of_core=True, oc_budget_gb=0.5)
        sched = solver.predict(n, out_of_core=True, streams=2,
                               oc_budget_gb=0.5)
        assert isinstance(sched, StreamSchedule)
        assert sched.total_s < serial.total_s
        assert sched.io_s > 0

    def test_multi_stream_rewrite_loads_each_window_once(self, solver):
        """The lookahead graph's column chunks re-scan the streamed rows;
        the rewriter emits windows window-major so io does not scale
        with the stream count."""
        cfg = solver.config
        budget = tile_budget(300)
        one = rewrite_out_of_core(
            emit_svd_graph(2048, cfg), cfg, solver.precision, budget
        )
        two = rewrite_out_of_core(
            emit_svd_graph(2048, cfg, streams=2), cfg, solver.precision,
            budget,
        )

        def io_elems(g):
            return sum(
                n.key[1] for n in g.nodes if n.kind in TRANSFER_KINDS
            )

        assert io_elems(two) == io_elems(one)
