"""Tests for the Table 2 device registry."""

import pytest

from repro.backends.device import (
    DeviceSpec,
    Vendor,
    get_device,
    list_devices,
    register_device,
)
from repro.errors import UnsupportedBackendError


class TestRegistry:
    def test_six_paper_devices(self):
        names = {d.name for d in list_devices()}
        assert {"h100", "a100", "rtx4060", "mi250", "m1pro", "pvc"} <= names

    def test_lookup_by_name_and_alias(self):
        assert get_device("h100").name == "h100"
        assert get_device("nvidia-h100").name == "h100"
        assert get_device("metal").name == "m1pro"
        assert get_device("MI250").vendor == Vendor.AMD

    def test_unknown_device_raises(self):
        with pytest.raises(UnsupportedBackendError):
            get_device("tpu-v5")

    def test_duplicate_name_rejected(self):
        with pytest.raises(ValueError):
            register_device(
                DeviceSpec(
                    name="h100",
                    vendor=Vendor.AMD,  # different spec, same name
                    sm_count=1,
                    l1_kb=1,
                    l2_mb=1,
                    mem_gb=1,
                    bandwidth_gbs=1,
                    peak_fp32_tflops=1,
                    boost_mhz=1,
                )
            )


class TestTable2Values:
    """Spot checks against the transcribed Table 2."""

    def test_h100(self):
        d = get_device("h100")
        assert d.sm_count == 132
        assert d.l1_kb == 256
        assert d.mem_gb == 80
        assert d.bandwidth_gbs == 3360
        assert d.peak_fp32_tflops == 67.0
        assert d.boost_mhz == 1980
        assert d.warp_size == 32

    def test_mi250(self):
        d = get_device("mi250")
        assert d.sm_count == 208
        assert d.l1_kb == 16
        assert d.mem_gb == 128
        assert d.warp_size == 64  # AMD wavefront

    def test_rtx4060_is_consumer(self):
        assert not get_device("rtx4060").is_hpc
        assert get_device("h100").is_hpc

    def test_m1pro_estimates_flagged(self):
        assert get_device("m1pro").estimated
        assert not get_device("h100").estimated


class TestDerived:
    def test_peak_flops_fp64_ratio(self):
        d = get_device("h100")
        assert d.peak_flops(8) == pytest.approx(d.peak_flops_fp32 * 0.5)
        assert d.peak_flops(4) == d.peak_flops_fp32
        assert d.peak_flops(2) == d.peak_flops_fp32  # FP16 at FP32 rate

    def test_effective_bandwidth_below_peak(self):
        d = get_device("mi250")
        assert d.effective_bandwidth < d.bandwidth_bytes
        assert get_device("h100").effective_bandwidth == get_device(
            "h100"
        ).bandwidth_bytes

    def test_max_square_n_scaling(self):
        d = get_device("h100")
        # FP16 doubles the largest resident size vs FP32 (paper sec. 4.3)
        assert d.max_square_n(2) == pytest.approx(
            d.max_square_n(4) * 2**0.5, rel=0.01
        )

    def test_h100_fp16_reaches_131k(self):
        # paper: FP16 enables GPU-resident sizes up to 131k x 131k
        assert get_device("h100").max_square_n(2) >= 131072

    def test_rtx4060_fp32_caps_near_32k(self):
        # paper: "RTX4060 is limited to 32k due to memory size"
        cap = get_device("rtx4060").max_square_n(4)
        assert 32768 <= cap < 65536

    def test_launch_overhead_seconds(self):
        d = get_device("h100")
        assert d.launch_overhead_s == pytest.approx(d.launch_overhead_us * 1e-6)
