"""Tests for the out-of-core and multi-GPU prediction models."""

import pytest

from repro.errors import ShapeError, UnsupportedPrecisionError
from repro.sim import predict, predict_multi_gpu, predict_out_of_core


class TestOutOfCore:
    def test_in_core_passthrough(self):
        """When the matrix fits, the model reduces to the in-core one."""
        a = predict_out_of_core(8192, "h100", "fp32")
        b = predict(8192, "h100", "fp32")
        assert a.total_s == pytest.approx(b.total_s)
        assert a.io_s == 0.0
        assert "h2d_tile" not in a.launches

    def test_enables_beyond_capacity(self):
        """Sizes that raise CapacityError in-core become predictable."""
        from repro.errors import CapacityError

        with pytest.raises(CapacityError):
            predict(200000, "h100", "fp32")
        bd = predict_out_of_core(200000, "h100", "fp32")
        assert bd.total_s > 0
        assert bd.launches["h2d_tile"] > 0
        assert bd.launches["d2h_tile"] > 0
        assert bd.io_s > 0

    def test_host_link_dominates(self):
        """Out-of-core time is bounded below by PCIe streaming."""
        n = 200000
        bd = predict_out_of_core(n, "h100", "fp32")
        ic = predict(n, "h100", "fp32", check_capacity=False)
        assert bd.io_s > ic.total_s  # host streaming dwarfs the compute
        assert bd.total_s > ic.total_s
        assert bd.bytes > ic.bytes

    def test_monotone_in_n(self):
        t1 = predict_out_of_core(150000, "h100", "fp32").total_s
        t2 = predict_out_of_core(200000, "h100", "fp32").total_s
        assert t2 > t1

    def test_bad_inputs(self):
        with pytest.raises(ShapeError):
            predict_out_of_core(0, "h100", "fp32")
        with pytest.raises(UnsupportedPrecisionError):
            predict_out_of_core(1000, "mi250", "fp16")


class TestMultiGpu:
    def test_single_gpu_passthrough(self):
        a = predict_multi_gpu(16384, "h100", "fp32", 1)
        b = predict(16384, "h100", "fp32")
        assert a.total_s == pytest.approx(b.total_s)

    def test_speedup_positive_and_bounded(self):
        t1 = predict_multi_gpu(32768, "h100", "fp32", 1).total_s
        t4 = predict_multi_gpu(32768, "h100", "fp32", 4).total_s
        assert t4 < t1
        assert t1 / t4 < 4.0  # no superlinear speedup

    def test_amdahl_saturation(self):
        """The serial panel chain caps the speedup (paper future work
        motivation for the Dagger integration)."""
        times = [
            predict_multi_gpu(32768, "h100", "fp32", g).total_s
            for g in (1, 2, 4, 8, 16)
        ]
        speedups = [times[0] / t for t in times]
        assert all(a <= b + 1e-12 for a, b in zip(speedups, speedups[1:]))
        gains = [b / a for a, b in zip(speedups, speedups[1:])]
        assert gains[-1] < gains[0]  # diminishing returns
        # panel share of the parallel run grows
        bd = predict_multi_gpu(32768, "h100", "fp32", 16)
        assert bd.panel_s == predict(32768, "h100", "fp32",
                                     check_capacity=False).panel_s

    def test_communication_term_counts(self):
        # the graph path makes every comm explicit: broadcast, boundary
        # exchange, and the stage-2 band gather
        bd = predict_multi_gpu(8192, "h100", "fp32", 4)
        assert bd.launches["panel_bcast"] > 0
        assert bd.launches["boundary_x"] > 0
        assert bd.launches["band_gather"] == 1
        assert bd.comm_s > 0

    def test_small_matrix_barely_helped(self):
        """Small problems are panel/solve bound: multi-GPU adds little."""
        t1 = predict_multi_gpu(1024, "h100", "fp32", 1).total_s
        t8 = predict_multi_gpu(1024, "h100", "fp32", 8).total_s
        assert t8 > 0.5 * t1

    def test_invalid_gpu_count(self):
        with pytest.raises(ShapeError):
            predict_multi_gpu(1024, "h100", "fp32", 0)
