"""Every registered workload passes the one conformance matrix.

The matrix lives in ``tests/conformance.py`` and is registry-driven: a
future emitter registers one :class:`repro.core.workloads.WorkloadSpec`
and inherits the whole battery - bitwise numeric replay, oracle
agreement, traced-vs-analytic launch counts, binder/table equality and
the greedy-vs-events scheduler invariant across the composition axes
its graph kind supports.
"""

import numpy as np
import pytest

from conformance import (
    Row,
    analytic_rows,
    check_analytic,
    check_numeric,
    check_row,
    check_tables,
    conformance_matrix,
    matrix_size,
    numeric_rows,
    table_rows,
)
from repro.core.workloads import (
    WORKLOADS,
    WorkloadSpec,
    register_workload,
)
from repro.errors import InvalidParamsError


@pytest.mark.parametrize("row", numeric_rows(), ids=str)
def test_numeric_conformance(row):
    """Bitwise replay + NumPy oracle + launch-count equality."""
    check_numeric(row)


@pytest.mark.parametrize("row", analytic_rows(), ids=str)
def test_analytic_conformance(row):
    """Scheduler oracle invariant + deterministic predict route."""
    check_analytic(row)


@pytest.mark.parametrize("row", table_rows(), ids=str)
def test_bound_tables_conformance(row):
    """Shape-parametric binders equal emitted tables node for node."""
    check_tables(row)


class TestMatrixShape:
    """The matrix itself: coverage, sizes, registry contract."""

    def test_every_workload_has_numeric_rows(self):
        covered = {row.workload for row in numeric_rows()}
        assert covered == set(WORKLOADS)

    def test_every_workload_has_analytic_rows(self):
        covered = {row.workload for row in analytic_rows()}
        assert covered == set(WORKLOADS)

    def test_new_workloads_are_registered(self):
        # the PR's two new emitters ride the same matrix as the seed's
        assert {"svd", "tallqr", "batched", "lowrank", "eigh"} <= set(
            WORKLOADS
        )

    def test_matrix_size_accounting(self):
        size = matrix_size()
        assert size["workloads"] == len(WORKLOADS)
        assert size["total"] == (
            size["numeric"] + size["analytic"] + size["tables"]
        )
        assert size["total"] == len(conformance_matrix())
        # backends x precisions per workload
        assert size["numeric"] == 4 * len(WORKLOADS)

    def test_supported_axes_expand_the_matrix(self):
        per = {}
        for row in analytic_rows():
            per[row.workload] = per.get(row.workload, 0) + 1
        # a workload with no composition axes gets exactly the base row;
        # fully-composable workloads sweep streams/placement/ooc/fleet
        assert per["tallqr"] == 1
        assert per["svd"] > 5
        assert per["lowrank"] == per["svd"]
        assert per["eigh"] == per["svd"]

    def test_check_row_dispatch(self):
        check_row(Row(workload="svd"), "tables")
        with pytest.raises(ValueError):
            check_row(Row(workload="svd"), "nope")


class TestRegistry:
    """register_workload: one line adds a workload to the matrix."""

    def test_duplicate_registration_rejected(self):
        with pytest.raises(InvalidParamsError) as excinfo:
            register_workload(WORKLOADS["svd"])
        assert "already registered" in str(excinfo.value)

    def test_non_spec_rejected(self):
        with pytest.raises(InvalidParamsError):
            register_workload("svd")

    def test_one_line_registration_joins_the_matrix(self):
        base = WORKLOADS["svd"]
        spec = WorkloadSpec(
            name="svd-alias",
            emit=base.emit,
            make_input=base.make_input,
            run=base.run,
            run_info=base.run_info,
            reference=base.reference,
            check=base.check,
            analytic_counts=base.analytic_counts,
            bind=base.bind,
            emit_table=base.emit_table,
            predict_kwargs=base.predict_kwargs,
            supports=base.supports,
        )
        register_workload(spec)
        try:
            assert "svd-alias" in {r.workload for r in numeric_rows()}
            assert "svd-alias" in {r.workload for r in analytic_rows()}
            assert "svd-alias" in {r.workload for r in table_rows()}
            # and it passes a spot-checked battery row immediately
            check_tables(Row(workload="svd-alias"))
        finally:
            del WORKLOADS["svd-alias"]

    def test_specs_are_frozen(self):
        with pytest.raises(AttributeError):
            WORKLOADS["svd"].name = "other"

    def test_lowrank_notes_mark_the_replay_caveat(self):
        assert "analytic-only" in WORKLOADS["lowrank"].notes

    def test_oracle_values_match_reference_shapes(self):
        for name, spec in WORKLOADS.items():
            A = spec.make_input(16, 7)
            ref = np.asarray(spec.reference(A))
            assert ref.size > 0, name
