"""Public-API snapshot: future PRs cannot silently drop exports.

The checked-in lists below are the supported public surface of the three
user-facing namespaces.  A failure here means an export was added or
removed: if intentional, update the snapshot *in the same PR* and mention
the surface change in CHANGES.md.
"""

import repro
import repro.core
import repro.sim

REPRO_ALL = [
    "Backend",
    "CapacityError",
    "ConvergenceError",
    "DeviceMatrix",
    "DeviceSpec",
    "InvalidParamsError",
    "KernelParams",
    "Precision",
    "REFERENCE_PARAMS",
    "ReproError",
    "SVDInfo",
    "SVDResult",
    "ServiceStats",
    "ShapeError",
    "ShedError",
    "SolveConfig",
    "Solver",
    "SvdPlan",
    "SvdService",
    "Topology",
    "UnsupportedBackendError",
    "UnsupportedPrecisionError",
    "WindowOverflowError",
    "__version__",
    "jacobi_svdvals",
    "list_backends",
    "predict",
    "predict_batched",
    "predict_multi_gpu",
    "predict_out_of_core",
    "resolve_backend",
    "resolve_precision",
    "svd_full",
    "svdvals",
    "svdvals_batched",
    "svdvals_rect",
]

CORE_ALL = [
    "SVDInfo",
    "SVDResult",
    "WORKLOADS",
    "WorkloadSpec",
    "band_to_bidiagonal",
    "band_width",
    "bind_batched_table",
    "bind_eigh_table",
    "bind_lowrank_table",
    "bind_svd_table",
    "bisect",
    "eigh_tridiagonal",
    "emit_band_reduction",
    "emit_batched_graph",
    "emit_brd_chase",
    "emit_eigh_graph",
    "emit_lowrank_graph",
    "emit_svd_graph",
    "emit_tallqr_graph",
    "extract_band",
    "getsmqrt",
    "givens",
    "golub_kahan",
    "is_upper_band",
    "jacobi_svdvals",
    "lowrank_reference",
    "ntiles",
    "pad_to_tiles",
    "predict_batched",
    "qr_reduce_tall",
    "reduce_to_band",
    "register_workload",
    "singular_2x2",
    "sketch_width",
    "svd_full",
    "svdvals",
    "svdvals_batched",
    "svdvals_bidiag",
    "svdvals_rect",
    "tile",
]

SIM_ALL = [
    "AnalyticExecutor",
    "CostCoefficients",
    "DEFAULT_COEFFS",
    "DEFAULT_INTER_LINK",
    "EventSchedule",
    "FabricSpec",
    "KernelParams",
    "LaunchCost",
    "LaunchGraph",
    "LaunchNode",
    "LaunchRecord",
    "LinkSpec",
    "NodeTable",
    "NumericExecutor",
    "OccupancyInfo",
    "REFERENCE_PARAMS",
    "Session",
    "Stage",
    "StreamSchedule",
    "TimeBreakdown",
    "Topology",
    "Tracer",
    "bidiag_solve_cost",
    "bound_table_stats",
    "brd_cost",
    "check_shard_capacity",
    "clear_bound_tables",
    "comm_cost",
    "dump_json",
    "fleet_weights",
    "kernel_summary",
    "panel_cost",
    "param_grid",
    "partition_graph",
    "predict",
    "predict_multi_gpu",
    "predict_out_of_core",
    "price_partitioned",
    "price_table",
    "render_timeline",
    "rewrite_out_of_core",
    "schedule_streams",
    "shard_rows",
    "shard_rows_weighted",
    "simulate_events",
    "stage1_launch_count",
    "timeline_rows",
    "update_cost",
    "update_occupancy",
    "warp_utilization",
    "window_capacity_tiles",
]


class TestApiSnapshot:
    def test_repro_all(self):
        assert sorted(repro.__all__) == REPRO_ALL

    def test_core_all(self):
        assert sorted(repro.core.__all__) == CORE_ALL

    def test_sim_all(self):
        assert sorted(repro.sim.__all__) == SIM_ALL

    def test_no_dangling_exports(self):
        for mod in (repro, repro.core, repro.sim):
            for name in mod.__all__:
                assert hasattr(mod, name), f"{mod.__name__}.{name}"

    def test_snapshots_sorted_and_unique(self):
        for snap in (REPRO_ALL, CORE_ALL, SIM_ALL):
            assert snap == sorted(set(snap))
