"""Tests for the TSQRT / TSMQR tile-pair kernels."""

import numpy as np
import pytest

from repro.kernels import geqrt, tsmqr, tsqrt

EPS64 = float(np.finfo(np.float64).eps)


def structured_q(V: np.ndarray, tau: np.ndarray) -> np.ndarray:
    """Explicit Q of a TSQRT factorization of the stacked (2ts, ts) pair.

    Reflector k is ``v = [e_k ; V[:, k]]`` over the stacked rows.
    """
    ts = V.shape[0]
    Q = np.eye(2 * ts)
    for k in range(ts):
        v = np.zeros(2 * ts)
        v[k] = 1.0
        v[ts:] = V[:, k]
        H = np.eye(2 * ts) - tau[k] * np.outer(v, v)
        Q = Q @ H
    return Q


def factor_pair(rng, ts):
    """GEQRT a top tile, then TSQRT a random below tile against it."""
    top = rng.standard_normal((ts, ts))
    below = rng.standard_normal((ts, ts))
    R = top.copy()
    tau_g = np.zeros(ts)
    geqrt(R, tau_g, EPS64)
    R_tri = np.triu(R).copy()
    stacked = np.vstack([R_tri, below])
    Rw = R_tri.copy()
    B = below.copy()
    tau = np.zeros(ts)
    tsqrt(Rw, B, tau, EPS64)
    return stacked, Rw, B, tau


class TestTsqrt:
    @pytest.mark.parametrize("ts", [2, 4, 8, 16, 32])
    def test_reconstruction(self, rng, ts):
        stacked, Rw, B, tau = factor_pair(rng, ts)
        Q = structured_q(B, tau)
        rebuilt = Q @ np.vstack([np.triu(Rw), np.zeros((ts, ts))])
        np.testing.assert_allclose(rebuilt, stacked, atol=1e-11 * ts)

    def test_below_tile_annihilated(self, rng):
        ts = 8
        stacked, Rw, B, tau = factor_pair(rng, ts)
        Q = structured_q(B, tau)
        # Q^T [R; B] must be [R'; 0]
        out = Q.T @ stacked
        np.testing.assert_allclose(out[ts:], 0.0, atol=1e-11)
        np.testing.assert_allclose(np.tril(out[:ts], -1), 0.0, atol=1e-11)

    def test_q_orthogonal(self, rng):
        ts = 8
        _, _, B, tau = factor_pair(rng, ts)
        Q = structured_q(B, tau)
        np.testing.assert_allclose(Q.T @ Q, np.eye(2 * ts), atol=1e-12)

    def test_singular_values_preserved(self, rng):
        ts = 8
        stacked, Rw, B, tau = factor_pair(rng, ts)
        sv_in = np.linalg.svd(stacked, compute_uv=False)
        sv_out = np.linalg.svd(np.triu(Rw), compute_uv=False)
        np.testing.assert_allclose(sv_in, sv_out, atol=1e-11)

    def test_zero_below_tile(self, rng):
        ts = 8
        R0 = np.triu(rng.standard_normal((ts, ts)))
        Rw = R0.copy()
        B = np.zeros((ts, ts))
        tau = np.zeros(ts)
        tsqrt(Rw, B, tau, EPS64)
        # reflectors are sign flips; |R| unchanged
        np.testing.assert_allclose(np.abs(np.triu(Rw)), np.abs(R0), atol=1e-12)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            tsqrt(np.zeros((4, 4)), np.zeros((4, 5)), np.zeros(4), 1e-16)

    def test_fp16_storage_path(self, rng):
        ts = 8
        R = np.triu(rng.standard_normal((ts, ts))).astype(np.float16)
        B = rng.standard_normal((ts, ts)).astype(np.float16)
        tau = np.zeros(ts, dtype=np.float32)
        tsqrt(R, B, tau, float(np.finfo(np.float16).eps),
              compute_dtype=np.float32)
        assert R.dtype == np.float16 and B.dtype == np.float16
        assert np.isfinite(R.astype(np.float64)).all()


class TestTsmqr:
    def test_matches_explicit_q(self, rng):
        ts, m = 8, 24
        _, _, B, tau = factor_pair(rng, ts)
        Q = structured_q(B, tau)
        Y = rng.standard_normal((ts, m))
        X = rng.standard_normal((ts, m))
        stacked = np.vstack([Y, X])
        Y1, X1 = Y.copy(), X.copy()
        tsmqr(B, tau, Y1, X1)
        expect = Q.T @ stacked
        np.testing.assert_allclose(Y1, expect[:ts], atol=1e-12)
        np.testing.assert_allclose(X1, expect[ts:], atol=1e-12)

    def test_preserves_stacked_norms(self, rng):
        ts, m = 8, 16
        _, _, B, tau = factor_pair(rng, ts)
        Y = rng.standard_normal((ts, m))
        X = rng.standard_normal((ts, m))
        norms = np.linalg.norm(np.vstack([Y, X]), axis=0)
        tsmqr(B, tau, Y, X)
        np.testing.assert_allclose(
            np.linalg.norm(np.vstack([Y, X]), axis=0), norms, rtol=1e-12
        )

    def test_zero_width_noop(self, rng):
        ts = 4
        _, _, B, tau = factor_pair(rng, ts)
        tsmqr(B, tau, np.zeros((ts, 0)), np.zeros((ts, 0)))

    def test_shape_mismatch(self, rng):
        ts = 4
        _, _, B, tau = factor_pair(rng, ts)
        with pytest.raises(ValueError):
            tsmqr(B, tau, np.zeros((ts, 3)), np.zeros((ts, 4)))

    def test_skips_zero_tau(self, rng):
        ts, m = 4, 6
        V = rng.standard_normal((ts, ts))
        tau = np.zeros(ts)  # all reflectors trivial
        Y = rng.standard_normal((ts, m))
        X = rng.standard_normal((ts, m))
        Y1, X1 = Y.copy(), X.copy()
        tsmqr(V, tau, Y1, X1)
        np.testing.assert_array_equal(Y1, Y)
        np.testing.assert_array_equal(X1, X)
