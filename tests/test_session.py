"""Tests for the Session launch API (the KernelAbstractions analogue)."""

import pytest

from repro.errors import UnsupportedPrecisionError
from repro.precision import Precision
from repro.sim import KernelParams, Session, Stage


class TestCreate:
    def test_resolves_spellings(self):
        sess = Session.create("H100", "single")
        assert sess.backend.name == "nvidia-h100"
        assert sess.storage is Precision.FP32
        assert sess.compute is Precision.FP32

    def test_fp16_upcast_binding(self):
        sess = Session.create("h100", "fp16")
        assert sess.storage is Precision.FP16
        assert sess.compute is Precision.FP32

    def test_fp16_native_on_apple(self):
        sess = Session.create("m1pro", "fp16")
        assert sess.compute is Precision.FP16

    def test_default_params(self):
        assert Session.create("h100", "fp32").params == KernelParams()

    def test_rejects_unsupported(self):
        with pytest.raises(UnsupportedPrecisionError):
            Session.create("mi250", "fp16")

    def test_keep_records_flag(self):
        sess = Session.create("h100", "fp32", keep_records=False)
        sess.launch_panel("geqrt")
        assert sess.tracer.records == []
        assert sess.simulated_seconds > 0


class TestLaunches:
    def setup_method(self):
        self.sess = Session.create("h100", "fp32")

    def test_panel_launch_records_stage(self):
        self.sess.launch_panel("geqrt", 1, 1)
        rec = self.sess.tracer.records[-1]
        assert rec.stage == Stage.PANEL
        assert rec.block == self.sess.params.panel_threads
        assert rec.overhead_s == self.sess.backend.device.launch_overhead_s

    def test_update_launch_grid(self):
        self.sess.launch_update("unmqr", width_cols=100, nrows=1,
                                has_top_row=False)
        rec = self.sess.tracer.records[-1]
        assert rec.stage == Stage.UPDATE
        assert rec.grid == -(-100 // self.sess.params.colperblock)

    def test_update_zero_width_noop(self):
        self.sess.launch_update("unmqr", width_cols=0)
        assert self.sess.tracer.launch_count() == 0

    def test_brd_launch_counts(self):
        self.sess.launch_brd(1024, 32)
        from repro.sim.costmodel import brd_launch_count

        assert self.sess.tracer.launch_count("brd_chase") == brd_launch_count(
            1024, 32
        )

    def test_brd_trivial_band_noop(self):
        self.sess.launch_brd(1024, 1)
        assert self.sess.tracer.launch_count() == 0

    def test_solve_launch(self):
        self.sess.launch_solve(512)
        rec = self.sess.tracer.records[-1]
        assert rec.stage == Stage.SOLVE
        assert rec.overhead_s == 0.0  # CPU call: no GPU launch overhead

    def test_transfer_launch(self):
        self.sess.launch_transfer(1e9, "h2d")
        rec = self.sess.tracer.records[-1]
        assert rec.stage == Stage.TRANSFER
        assert rec.cost.bytes == 1e9

    def test_simulated_seconds_accumulates(self):
        t0 = self.sess.simulated_seconds
        self.sess.launch_panel("geqrt")
        self.sess.launch_update("unmqr", 64)
        assert self.sess.simulated_seconds > t0
