"""Tests for the simulated comparator libraries."""

import pytest

from tests.conftest import rel_err, scipy_svdvals
from repro.baselines import (
    BaselineLibrary,
    get_baseline,
    svd_flops,
    vendor_baseline_for,
)
from repro.errors import (
    CapacityError,
    UnsupportedBackendError,
    UnsupportedPrecisionError,
)

ALL = ["cusolver", "rocsolver", "onemkl", "magma", "slate", "lapack"]


class TestRegistry:
    def test_all_libraries_available(self):
        for name in ALL:
            assert isinstance(get_baseline(name), BaselineLibrary)

    def test_unknown(self):
        with pytest.raises(KeyError):
            get_baseline("cublas")

    def test_vendor_mapping(self):
        assert vendor_baseline_for("nvidia").name == "cusolver"
        assert vendor_baseline_for("amd").name == "rocsolver"
        assert vendor_baseline_for("intel").name == "onemkl"
        with pytest.raises(KeyError):
            vendor_baseline_for("apple")  # paper: MPS has no SVD

    def test_svd_flops(self):
        assert svd_flops(100) == pytest.approx((8 / 3) * 1e6)


class TestConstraints:
    def test_vendor_restrictions(self):
        with pytest.raises(UnsupportedBackendError):
            get_baseline("cusolver").predict_time(512, "mi250", "fp32")
        with pytest.raises(UnsupportedBackendError):
            get_baseline("rocsolver").predict_time(512, "h100", "fp32")
        with pytest.raises(UnsupportedBackendError):
            get_baseline("onemkl").predict_time(512, "h100", "fp32")

    def test_addressing_limit_16384(self):
        """Paper section 4.1: vendor solvers stop at 16k."""
        for name, be in (("cusolver", "h100"), ("rocsolver", "mi250")):
            lib = get_baseline(name)
            lib.predict_time(16384, be, "fp32")
            with pytest.raises(CapacityError):
                lib.predict_time(16385, be, "fp32")

    def test_no_library_supports_fp16(self):
        """The paper's unified kernels are the first FP16 GPU SVD."""
        for name in ALL:
            lib = get_baseline(name)
            assert not lib.supports(512, "h100", "fp16")

    def test_fp16_raises(self):
        with pytest.raises(UnsupportedPrecisionError):
            get_baseline("cusolver").predict_time(512, "h100", "fp16")

    def test_supports_helper(self):
        assert get_baseline("magma").supports(512, "h100", "fp32")
        assert not get_baseline("magma").supports(512, "m1pro", "fp32")

    def test_device_capacity_still_applies(self):
        with pytest.raises(CapacityError):
            get_baseline("magma").predict_time(60000, "rtx4060", "fp64")


class TestTimingModels:
    @pytest.mark.parametrize(
        "name,backend",
        [
            ("cusolver", "h100"),
            ("rocsolver", "mi250"),
            ("onemkl", "pvc"),
            ("magma", "h100"),
            ("slate", "mi250"),
            ("lapack", "h100"),
        ],
    )
    def test_positive_and_monotone(self, name, backend):
        lib = get_baseline(name)
        ts = [lib.predict_time(n, backend, "fp32") for n in (256, 1024, 4096)]
        assert all(t > 0 for t in ts)
        assert ts[0] < ts[1] < ts[2]

    def test_fp64_slower_than_fp32_at_scale(self):
        lib = get_baseline("magma")
        assert lib.predict_time(8192, "h100", "fp64") > lib.predict_time(
            8192, "h100", "fp32"
        )

    def test_slate_consumer_penalty(self):
        lib = get_baseline("slate")
        t_hpc = lib.predict_time(2048, "a100", "fp32")
        t_laptop = lib.predict_time(2048, "rtx4060", "fp32")
        assert t_laptop > 20 * t_hpc


class TestNumericOracle:
    def test_accuracy_fp64(self, rng):
        A = rng.standard_normal((48, 48))
        got = get_baseline("cusolver").svdvals(A, "fp64")
        assert rel_err(got, scipy_svdvals(A)) < 1e-13

    def test_fp32_rounding_applied(self, rng):
        A = rng.standard_normal((48, 48))
        got = get_baseline("cusolver").svdvals(A, "fp32")
        # computed through float32: error ~1e-7, definitely not 1e-13
        err = rel_err(got, scipy_svdvals(A))
        assert 1e-9 < err < 1e-5

    def test_fp16_oracle_rejected(self, rng):
        with pytest.raises(UnsupportedPrecisionError):
            get_baseline("cusolver").svdvals(rng.standard_normal((8, 8)), "fp16")
