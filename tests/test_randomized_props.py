"""Property tests for the randomized low-rank workload.

Three families of invariants pin :mod:`repro.core.randomized`:

* **estimate quality**: randomized singular values are descending,
  non-negative and bounded above by the exact truncated values (the
  sketch projects onto a subspace); matrices of exact rank at most the
  sketch width are recovered to storage accuracy (HMT exactness), and
  with a decaying spectrum the relative reconstruction error stays
  bounded;
* **sketch determinism**: :func:`repro.matrices.generator.gaussian_sketch`
  is bitwise reproducible per ``(seed, shape, precision)``, independent
  of backend, and distinct across seeds - so the whole driver is
  bitwise reproducible per seed;
* **guard messages**: the ``rank`` / ``oversample`` axes fail fast with
  messages that name the offending axis and value, from both the
  numeric driver and the prediction front door.
"""

import numpy as np
import pytest

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Solver
from repro.core.randomized import (
    check_rank,
    lowrank_reference,
    sketch_width,
    svd_lowrank_resolved,
)
from repro.config import SolveConfig
from repro.errors import InvalidParamsError
from repro.matrices.generator import gaussian_sketch
from repro.precision import resolve_precision


def _config(backend="h100", precision="fp64", **kw):
    return Solver(backend=backend, precision=precision, **kw).config


def _decaying_matrix(m, n, seed, decay=0.5, rank=None):
    """Orthogonal factors with a geometric spectrum (exact-rank option)."""
    rng = np.random.default_rng(seed)
    k = min(m, n)
    U, _ = np.linalg.qr(rng.standard_normal((m, k)))
    V, _ = np.linalg.qr(rng.standard_normal((n, k)))
    s = decay ** np.arange(k, dtype=np.float64)
    if rank is not None:
        s[rank:] = 0.0
    return (U * s) @ V.T


class TestEstimateQuality:
    """Sorted, non-negative, projection-bounded, exact on low rank."""

    @given(
        n=st.integers(8, 40),
        extra=st.integers(0, 24),
        rank=st.integers(1, 8),
        seed=st.integers(0, 2**32 - 1),
    )
    @settings(max_examples=25, deadline=None)
    def test_sorted_nonnegative_and_bounded(self, n, extra, rank, seed):
        rank = min(rank, n)
        A = _decaying_matrix(n + extra, n, seed, decay=0.8)
        got = svd_lowrank_resolved(A, rank, _config(), seed=seed)
        assert got.shape == (rank,)
        assert np.all(got >= 0.0)
        assert np.all(np.diff(got) <= 0.0)
        ref = lowrank_reference(A, rank)
        assert np.all(got <= ref + 1e-10 * ref[0])

    @given(
        n=st.integers(8, 40),
        extra=st.integers(0, 24),
        true_rank=st.integers(1, 6),
        seed=st.integers(0, 2**32 - 1),
    )
    @settings(max_examples=25, deadline=None)
    def test_exact_rank_recovered_exactly(self, n, extra, true_rank, seed):
        # when rank(A) <= sketch width, the range finder captures the
        # whole column space and the estimates match LAPACK to roundoff
        true_rank = min(true_rank, n)
        A = _decaying_matrix(n + extra, n, seed, decay=0.7, rank=true_rank)
        got = svd_lowrank_resolved(A, true_rank, _config(), seed=seed)
        ref = lowrank_reference(A, true_rank)
        np.testing.assert_allclose(got, ref, rtol=1e-9, atol=1e-12)

    @given(
        n=st.integers(12, 40),
        rank=st.integers(2, 8),
        seed=st.integers(0, 2**32 - 1),
    )
    @settings(max_examples=20, deadline=None)
    def test_reconstruction_error_bounded(self, n, rank, seed):
        # a sharply decaying spectrum concentrates energy in the leading
        # subspace, so the randomized estimates carry nearly all of it:
        # the captured-energy ratio stays close to the exact truncation's
        rank = min(rank, n)
        A = _decaying_matrix(2 * n, n, seed, decay=0.4)
        got = svd_lowrank_resolved(A, rank, _config(), seed=seed)
        ref = lowrank_reference(A, rank)
        total = float(np.linalg.norm(A)) ** 2
        captured = float(np.sum(got**2)) / total
        exact = float(np.sum(ref**2)) / total
        assert captured <= exact * (1.0 + 1e-10)
        assert captured >= exact * 0.9

    def test_wide_input_matches_transpose(self):
        A = _decaying_matrix(24, 48, seed=3, decay=0.6)
        config = _config()
        wide = svd_lowrank_resolved(A, 5, config, seed=11)
        tall = svd_lowrank_resolved(A.T, 5, config, seed=11)
        assert np.array_equal(wide, tall)

    def test_oversample_axis_widens_the_sketch(self):
        n = 32
        lo = _config(oversample=2)
        hi = _config(oversample=12)
        assert sketch_width(4, n, n, lo) == 6
        assert sketch_width(4, n, n, hi) == 16
        assert sketch_width(30, n, n, hi) == n  # clamped to the matrix


class TestSketchDeterminism:
    """Bitwise reproducible per (seed, shape, precision), seed-distinct."""

    @given(
        n=st.integers(1, 64),
        width=st.integers(1, 16),
        seed=st.integers(0, 2**32 - 1),
        precision=st.sampled_from(["fp32", "fp64"]),
    )
    @settings(max_examples=30, deadline=None)
    def test_fixed_seed_is_bitwise_stable(self, n, width, seed, precision):
        prec = resolve_precision(precision)
        a = gaussian_sketch(n, width, seed=seed, precision=prec)
        b = gaussian_sketch(n, width, seed=seed, precision=prec)
        assert a.dtype == prec.dtype
        assert np.array_equal(a, b)

    @given(
        n=st.integers(2, 64),
        width=st.integers(1, 16),
        seed=st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=20, deadline=None)
    def test_different_seeds_differ(self, n, width, seed):
        a = gaussian_sketch(n, width, seed=seed)
        b = gaussian_sketch(n, width, seed=seed + 1)
        assert not np.array_equal(a, b)

    @pytest.mark.parametrize("precision", ["fp32", "fp64"])
    def test_backend_independent_driver(self, precision):
        # the sketch depends on (seed, shape, precision) only, so two
        # backends sharing a precision draw the same sample and the
        # whole driver pipeline stays seed-reproducible on each
        A = _decaying_matrix(48, 32, seed=9, decay=0.6)
        for backend in ("h100", "mi250"):
            cfg = _config(backend=backend, precision=precision)
            one = svd_lowrank_resolved(A, 6, cfg, seed=42)
            two = svd_lowrank_resolved(A, 6, cfg, seed=42)
            assert np.array_equal(one, two)
        prec = resolve_precision(precision)
        assert np.array_equal(
            gaussian_sketch(32, 14, seed=42, precision=prec),
            gaussian_sketch(32, 14, seed=42, precision=prec),
        )

    def test_half_precision_sketch_rounds_from_float64(self):
        prec = resolve_precision("fp16")
        full = gaussian_sketch(16, 4, seed=5)
        half = gaussian_sketch(16, 4, seed=5, precision=prec)
        assert half.dtype == prec.dtype
        np.testing.assert_array_equal(
            half, full.astype(prec.dtype)
        )


class TestGuardMessages:
    """rank / oversample guards name the offending axis and value."""

    def test_rank_too_small_names_the_axis(self):
        with pytest.raises(InvalidParamsError) as excinfo:
            check_rank(0, 8, 8)
        assert "rank must be at least 1, got rank=0" in str(excinfo.value)

    def test_rank_too_large_names_the_axis(self):
        with pytest.raises(InvalidParamsError) as excinfo:
            check_rank(9, 12, 8)
        msg = str(excinfo.value)
        assert "rank=9" in msg and "min(m, n)=8" in msg

    def test_driver_guard_rank_exceeds_input(self):
        A = np.eye(8)
        with pytest.raises(InvalidParamsError) as excinfo:
            svd_lowrank_resolved(A, 9, _config())
        assert "rank=9 exceeds min(m, n)=8" in str(excinfo.value)

    def test_predict_guard_rank_too_small(self):
        with pytest.raises(InvalidParamsError) as excinfo:
            Solver(precision="fp64").predict(64, rank=0)
        assert "rank must be at least 1, got rank=0" in str(excinfo.value)

    def test_predict_guard_rank_exceeds_n(self):
        with pytest.raises(InvalidParamsError) as excinfo:
            Solver(precision="fp64").predict(64, rank=65)
        msg = str(excinfo.value)
        assert "rank=65" in msg and "min(m, n)=64" in msg

    def test_predict_guard_rank_with_eigh(self):
        with pytest.raises(InvalidParamsError) as excinfo:
            Solver(precision="fp64").predict(64, rank=4, workload="eigh")
        assert "rank=4" in str(excinfo.value)

    def test_predict_guard_lowrank_without_rank(self):
        with pytest.raises(InvalidParamsError) as excinfo:
            Solver(precision="fp64").predict(64, workload="lowrank")
        assert "requires rank=" in str(excinfo.value)

    def test_oversample_guard_names_the_axis(self):
        with pytest.raises(InvalidParamsError) as excinfo:
            SolveConfig.resolve(
                backend="h100", precision="fp64", oversample=0
            )
        assert "oversample must be positive, got oversample=0" in str(
            excinfo.value
        )

    def test_sketch_shape_guard(self):
        with pytest.raises(ValueError) as excinfo:
            gaussian_sketch(0, 4)
        assert "sketch shape must be positive" in str(excinfo.value)
