"""Tests for the batched SVD extension."""

import numpy as np
import pytest

from tests.conftest import rel_err, scipy_svdvals
from repro.core import predict_batched, svdvals, svdvals_batched
from repro.errors import CapacityError, ShapeError


class TestNumerics:
    def test_matches_per_matrix_results(self, rng):
        As = rng.standard_normal((5, 40, 40))
        vals = svdvals_batched(As, backend="h100", precision="fp64")
        assert vals.shape == (5, 40)
        for i in range(5):
            np.testing.assert_array_equal(vals[i], svdvals(As[i]))

    def test_accepts_sequences(self, rng):
        mats = [rng.standard_normal((16, 16)) for _ in range(3)]
        vals = svdvals_batched(mats)
        for i, a in enumerate(mats):
            assert rel_err(vals[i], scipy_svdvals(a)) < 1e-12

    def test_fp32(self, rng):
        As = rng.standard_normal((3, 32, 32)).astype(np.float32)
        vals = svdvals_batched(As, precision="fp32")
        for i in range(3):
            assert rel_err(vals[i], scipy_svdvals(As[i])) < 5e-6

    def test_shape_validation(self, rng):
        with pytest.raises(ShapeError):
            svdvals_batched(rng.standard_normal((4, 4)))  # 2-D
        with pytest.raises(ShapeError):
            svdvals_batched([])
        with pytest.raises(ShapeError):
            svdvals_batched([np.zeros((4, 4)), np.zeros((5, 5))])

    def test_info_is_batched_breakdown(self, rng):
        As = rng.standard_normal((3, 32, 32))
        _, bd = svdvals_batched(As, return_info=True)
        assert bd.total_s > 0
        assert any(k.endswith("_b") for k in bd.launches)


class TestBatchedModel:
    def test_batching_beats_sequential_small(self):
        """The point of batching: amortized launches + occupancy for the
        small sizes where the paper's kernels lose to tuned libraries."""
        n, batch = 128, 64
        from repro.sim import predict

        seq = batch * predict(n, "h100", "fp32", check_capacity=False).total_s
        bat = predict_batched(n, batch, "h100", "fp32").total_s
        assert bat < seq / 3

    def test_batched_advantage_shrinks_with_size(self):
        from repro.sim import predict

        def gain(n):
            seq = 8 * predict(n, "h100", "fp32", check_capacity=False).total_s
            return seq / predict_batched(n, 8, "h100", "fp32").total_s

        assert gain(128) > gain(2048)

    def test_flops_scale_with_batch(self):
        b1 = predict_batched(256, 1, "h100", "fp32")
        b8 = predict_batched(256, 8, "h100", "fp32")
        assert b8.flops == pytest.approx(8 * b1.flops, rel=1e-6)
        assert b8.total_s < 8 * b1.total_s

    def test_launch_count_independent_of_batch(self):
        b1 = predict_batched(256, 1, "h100", "fp32")
        b64 = predict_batched(256, 64, "h100", "fp32")
        assert b1.launch_total == b64.launch_total

    def test_capacity_guard(self):
        with pytest.raises(CapacityError):
            predict_batched(8192, 100000, "h100", "fp32")

    def test_bad_inputs(self):
        with pytest.raises(ShapeError):
            predict_batched(0, 4, "h100", "fp32")
        with pytest.raises(ShapeError):
            predict_batched(64, 0, "h100", "fp32")

    def test_panel_rounds_beyond_sm_count(self):
        """More concurrent panel bodies than SMs serialize into rounds."""
        small = predict_batched(64, 100, "h100", "fp32").panel_s
        large = predict_batched(64, 400, "h100", "fp32").panel_s
        assert large > small * 2
