"""End-to-end tests for the unified ``svdvals`` driver."""

import numpy as np
import pytest

from tests.conftest import rel_err, scipy_svdvals
from repro.core import svdvals
from repro.errors import (
    CapacityError,
    ShapeError,
    UnsupportedPrecisionError,
)
from repro.sim import KernelParams, Stage


class TestCorrectness:
    @pytest.mark.parametrize("n", [1, 2, 5, 31, 32, 33, 64, 100])
    def test_matches_scipy_fp64(self, rng, n):
        A = rng.standard_normal((n, n))
        got = svdvals(A, backend="h100", precision="fp64")
        assert got.shape == (n,)
        assert rel_err(got, scipy_svdvals(A)) < 1e-12

    def test_fp32_accuracy(self, rng):
        A = rng.standard_normal((96, 96)).astype(np.float32)
        got = svdvals(A, backend="h100", precision="fp32")
        assert rel_err(got, scipy_svdvals(A)) < 5e-6

    def test_fp16_accuracy(self, rng):
        A = (0.1 * rng.standard_normal((64, 64))).astype(np.float16)
        got = svdvals(A, backend="h100", precision="fp16")
        assert rel_err(got, scipy_svdvals(A)) < 3e-2

    def test_descending_nonnegative(self, rng):
        got = svdvals(rng.standard_normal((50, 50)), backend="h100")
        assert np.all(got >= 0)
        assert np.all(np.diff(got) <= 0)

    def test_precision_from_dtype(self, rng):
        A = rng.standard_normal((40, 40)).astype(np.float32)
        _, info = svdvals(A, backend="h100", return_info=True)
        assert info.precision == "fp32"

    def test_integer_input_defaults_fp64(self):
        A = np.arange(16, dtype=np.int64).reshape(4, 4)
        _, info = svdvals(A, backend="h100", return_info=True)
        assert info.precision == "fp64"

    @pytest.mark.parametrize("stage3", ["gk", "bisect", "lapack", "auto"])
    def test_stage3_methods_agree(self, rng, stage3):
        A = rng.standard_normal((48, 48))
        got = svdvals(A, backend="h100", stage3=stage3)
        assert rel_err(got, scipy_svdvals(A)) < 1e-11

    def test_custom_tilesize(self, rng):
        A = rng.standard_normal((64, 64))
        got = svdvals(
            A, backend="h100", params=KernelParams(16, 16, 4)
        )
        assert rel_err(got, scipy_svdvals(A)) < 1e-12

    def test_rank_deficient(self, rng):
        X = rng.standard_normal((48, 5))
        A = X @ X.T  # rank 5
        got = svdvals(A, backend="h100")
        ref = scipy_svdvals(A)
        assert rel_err(got, ref) < 1e-11
        np.testing.assert_allclose(got[5:], 0.0, atol=1e-10 * ref[0])

    def test_identity(self):
        got = svdvals(np.eye(48), backend="h100")
        np.testing.assert_allclose(got, 1.0, atol=1e-12)

    def test_diagonal_matrix(self, rng):
        d = np.abs(rng.standard_normal(40)) + 0.1
        got = svdvals(np.diag(d), backend="h100")
        np.testing.assert_allclose(got, np.sort(d)[::-1], atol=1e-12)

    def test_symmetric_matrix(self, rng):
        A = rng.standard_normal((40, 40))
        A = A + A.T
        assert rel_err(svdvals(A, backend="h100"), scipy_svdvals(A)) < 1e-12


class TestBackendsAndPrecision:
    @pytest.mark.parametrize("backend", ["h100", "a100", "rtx4060", "mi250", "m1pro", "pvc"])
    def test_all_backends_same_numerics_fp32(self, rng, backend):
        """Portability: identical unified code on every device."""
        A = rng.standard_normal((48, 48)).astype(np.float32)
        got = svdvals(A, backend=backend, precision="fp32")
        assert rel_err(got, scipy_svdvals(A)) < 5e-6

    def test_amd_fp16_rejected(self, rng):
        with pytest.raises(UnsupportedPrecisionError):
            svdvals(rng.standard_normal((8, 8)), backend="mi250", precision="fp16")

    def test_metal_fp64_rejected(self, rng):
        with pytest.raises(UnsupportedPrecisionError):
            svdvals(rng.standard_normal((8, 8)), backend="m1pro", precision="fp64")

    def test_capacity_rejected(self, rng):
        # 8 GB RTX4060 cannot hold a 40000^2 FP64 matrix - rejected before
        # any allocation happens
        from repro.backends import resolve_backend

        with pytest.raises(CapacityError):
            resolve_backend("rtx4060").check_capacity(40000, "fp64")

    def test_fp16_apple_native_compute(self, rng):
        A = (0.1 * rng.standard_normal((32, 32))).astype(np.float16)
        got = svdvals(A, backend="m1pro", precision="fp16")
        assert rel_err(got, scipy_svdvals(A)) < 5e-2


class TestShapes:
    def test_non_square_rejected(self, rng):
        with pytest.raises(ShapeError):
            svdvals(rng.standard_normal((4, 5)))

    def test_empty_rejected(self):
        with pytest.raises(ShapeError):
            svdvals(np.zeros((0, 0)))

    def test_1d_rejected(self):
        with pytest.raises(ShapeError):
            svdvals(np.zeros(5))

    def test_input_not_mutated(self, rng):
        A = rng.standard_normal((40, 40))
        A0 = A.copy()
        svdvals(A, backend="h100")
        np.testing.assert_array_equal(A, A0)


class TestInfo:
    def test_info_fields(self, rng):
        A = rng.standard_normal((64, 64))
        vals, info = svdvals(A, backend="mi250", precision="fp64",
                             return_info=True)
        assert info.n == 64
        assert info.backend == "amd-mi250"
        assert info.precision == "fp64"
        assert info.fused
        assert info.simulated_seconds > 0
        assert set(info.stage_seconds) <= {
            Stage.PANEL, Stage.UPDATE, Stage.BRD, Stage.SOLVE, Stage.TRANSFER
        }
        assert info.launch_counts["bdsqr_cpu"] == 1
        assert info.flops > 0 and info.bytes > 0

    def test_stage_fractions_sum_to_one(self, rng):
        _, info = svdvals(rng.standard_normal((64, 64)), backend="h100",
                          return_info=True)
        assert sum(info.stage_fractions().values()) == pytest.approx(1.0)

    def test_stage1_seconds(self, rng):
        _, info = svdvals(rng.standard_normal((64, 64)), backend="h100",
                          return_info=True)
        assert info.stage1_seconds == pytest.approx(
            info.stage_seconds[Stage.PANEL] + info.stage_seconds[Stage.UPDATE]
        )

    def test_fused_flag_affects_time_not_values(self, rng):
        A = rng.standard_normal((96, 96))
        v1, i1 = svdvals(A, backend="h100", fused=True, return_info=True)
        v2, i2 = svdvals(A, backend="h100", fused=False, return_info=True)
        np.testing.assert_array_equal(v1, v2)
        assert i2.simulated_seconds > i1.simulated_seconds
        assert sum(i2.launch_counts.values()) > sum(i1.launch_counts.values())
