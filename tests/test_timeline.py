"""Tests for the timeline export utilities and the tracer itself."""

import json

import numpy as np
import pytest

from repro.core.banddiag import reduce_to_band
from repro.sim import (
    KernelParams,
    Session,
    Stage,
    Tracer,
    dump_json,
    kernel_summary,
    render_timeline,
    timeline_rows,
)
from repro.sim.costmodel import LaunchCost
from repro.sim.tracing import LaunchRecord

EPS = float(np.finfo(np.float64).eps)


def traced_session(rng, n=96, ts=32):
    sess = Session.create("h100", "fp64", params=KernelParams(ts, 32, 8))
    A = rng.standard_normal((n, n))
    reduce_to_band(A, ts, EPS, sess)
    return sess


class TestTracer:
    def test_record_and_totals(self):
        tr = Tracer()
        tr.record(LaunchRecord("k1", Stage.PANEL, LaunchCost(1.0, flops=10), 0.5))
        tr.record(LaunchRecord("k2", Stage.UPDATE, LaunchCost(2.0, bytes=4), 0.5))
        assert tr.total_seconds == pytest.approx(4.0)
        assert tr.stage_seconds(Stage.PANEL) == pytest.approx(1.5)
        assert tr.stage_seconds(Stage.PANEL, include_overhead=False) == 1.0
        assert tr.total_flops == 10
        assert tr.total_bytes == 4
        assert tr.launch_count() == 2
        assert tr.launch_count("k1") == 1

    def test_reset(self):
        tr = Tracer()
        tr.record(LaunchRecord("k", Stage.BRD, LaunchCost(1.0), 0.0))
        tr.reset()
        assert tr.total_seconds == 0.0
        assert tr.records == []

    def test_keep_records_off(self):
        tr = Tracer(keep_records=False)
        tr.record(LaunchRecord("k", Stage.BRD, LaunchCost(1.0), 0.0))
        assert tr.records == []
        assert tr.total_seconds == 1.0  # totals still accumulate

    def test_stage_breakdown_only_active(self):
        tr = Tracer()
        tr.record(LaunchRecord("k", Stage.SOLVE, LaunchCost(1.0), 0.0))
        assert set(tr.stage_breakdown()) == {Stage.SOLVE}


class TestTimelineExport:
    def test_rows_cumulative_clock(self, rng):
        sess = traced_session(rng)
        rows = timeline_rows(sess.tracer)
        assert len(rows) == sess.tracer.launch_count()
        clocks = [r["clock_s"] for r in rows]
        assert all(a < b for a, b in zip(clocks, clocks[1:]))
        assert clocks[-1] == pytest.approx(sess.tracer.total_seconds)

    def test_render_contains_kernels(self, rng):
        sess = traced_session(rng)
        out = render_timeline(sess.tracer)
        assert "geqrt" in out and "ftsmqr" in out
        assert "simulated timeline" in out

    def test_render_limit(self, rng):
        sess = traced_session(rng)
        out = render_timeline(sess.tracer, limit=2)
        assert "more launches" in out

    def test_kernel_summary_shares(self, rng):
        sess = traced_session(rng)
        summary = kernel_summary(sess.tracer)
        assert sum(r["share"] for r in summary) == pytest.approx(1.0)
        # sorted by time, descending
        secs = [r["seconds"] for r in summary]
        assert secs == sorted(secs, reverse=True)
        assert {r["kernel"] for r in summary} == set(
            sess.tracer.kernel_counts()
        )

    def test_json_roundtrip(self, rng):
        sess = traced_session(rng)
        blob = json.loads(dump_json(sess.tracer))
        assert blob["total_seconds"] == pytest.approx(sess.tracer.total_seconds)
        assert len(blob["launches"]) == sess.tracer.launch_count()
        assert set(blob["stage_seconds"]) <= set(Stage.ALL)
