"""Tests for the brute-force hyperparameter search."""

import pytest

from repro.sim import KernelParams, predict
from repro.tuning import autotune, clear_autotune_cache, grid_search


class TestGridSearch:
    def test_best_is_minimum(self):
        res = grid_search(2048, "h100", "fp32")
        times = dict(res.table)
        assert res.best_seconds == min(times.values())
        assert times[res.best] == res.best_seconds

    def test_best_beats_reference(self):
        """Tuning can only help (the reference config is in the grid)."""
        res = grid_search(8192, "mi250", "fp64")
        ref = predict(8192, "mi250", "fp64", params=KernelParams(),
                      check_capacity=False).total_s
        assert res.best_seconds <= ref

    def test_table_sorted(self):
        res = grid_search(1024, "h100", "fp32")
        times = [t for _, t in res.table]
        assert times == sorted(times)

    def test_top_k(self):
        res = grid_search(1024, "h100", "fp32")
        assert len(res.top(3)) == 3
        assert res.top(3)[0][0] == res.best

    def test_custom_grid(self):
        grid = [KernelParams(16, 16, 2), KernelParams(32, 32, 4)]
        res = grid_search(512, "pvc", "fp32", grid=grid)
        assert res.best in grid

    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError):
            grid_search(512, "h100", "fp32", grid=[])

    def test_optimum_differs_across_sizes(self):
        """The paper's point: per-size tuning matters."""
        small = grid_search(256, "h100", "fp32").best
        large = grid_search(32768, "h100", "fp32").best
        assert small != large

    def test_mi250_fp64_avoids_large_tiles(self):
        """L1 spill keeps MI250 FP64 away from TILESIZE >= 64."""
        best = grid_search(32768, "mi250", "fp64").best
        assert best.tilesize < 64


class TestAutotune:
    def setup_method(self):
        clear_autotune_cache()

    def test_returns_valid_params(self):
        p = autotune(4096, "h100", "fp32")
        assert isinstance(p, KernelParams)

    def test_cached(self):
        p1 = autotune(4096, "h100", "fp32")
        p2 = autotune(4096, "h100", "fp32")
        assert p1 is p2

    def test_bucketing_by_power_of_two(self):
        # same bucket -> same cached entry
        p1 = autotune(3000, "h100", "fp32")
        p2 = autotune(4000, "h100", "fp32")
        assert p1 is p2

    def test_distinct_per_backend(self):
        p_h = autotune(32768, "h100", "fp64")
        p_m = autotune(32768, "mi250", "fp64")
        # MI250 FP64 must not pick spilling tiles; H100 prefers larger ones
        assert p_m.tilesize <= p_h.tilesize

    def test_matches_grid_search(self):
        clear_autotune_cache()
        assert autotune(2048, "pvc", "fp32") == grid_search(2048, "pvc", "fp32").best
