"""The unified Solver handle: construction, dispatch, plans, delegation."""

import numpy as np
import pytest

import repro
from repro import Solver, SolveConfig
from repro.errors import (
    InvalidParamsError,
    ShapeError,
    UnsupportedBackendError,
    UnsupportedPrecisionError,
)
from repro.precision import Precision
from repro.sim import KernelParams


@pytest.fixture
def rng():
    return np.random.default_rng(7)


@pytest.fixture
def solver():
    return Solver(backend="h100", precision="fp32")


class TestConstruction:
    def test_resolves_everything_up_front(self, solver):
        assert solver.backend.name == "nvidia-h100"
        assert solver.precision is Precision.FP32
        assert solver.params == KernelParams()
        assert isinstance(solver.config, SolveConfig)

    def test_unknown_backend_fails_at_construction(self):
        with pytest.raises(UnsupportedBackendError):
            Solver(backend="tpu9000")

    def test_unsupported_pair_fails_at_construction(self):
        # paper Figure 5 gaps: AMD FP16, Apple FP64
        with pytest.raises(UnsupportedPrecisionError):
            Solver(backend="mi250", precision="fp16")
        with pytest.raises(UnsupportedPrecisionError):
            Solver(backend="m1pro", precision="fp64")

    def test_bad_stage3_fails_at_construction(self):
        with pytest.raises(InvalidParamsError):
            Solver(stage3="qr_iteration")

    def test_bad_params_type_rejected(self):
        with pytest.raises(InvalidParamsError):
            Solver(params=(32, 32, 8))

    def test_config_is_frozen(self, solver):
        with pytest.raises(Exception):
            solver.config.fused = False

    def test_with_derives_revalidated_handle(self, solver):
        derived = solver.with_(fused=False, backend="mi250")
        assert derived.config.fused is False
        assert derived.backend.name == "amd-mi250"
        # original untouched
        assert solver.config.fused is True
        with pytest.raises(UnsupportedPrecisionError):
            solver.with_(backend="mi250", precision="fp16")

    def test_from_config_roundtrip(self, solver):
        again = Solver.from_config(solver.config)
        assert again.config is solver.config
        with pytest.raises(InvalidParamsError):
            Solver.from_config({"backend": "h100"})


class TestShapeDispatch:
    def test_square_matches_legacy(self, rng, solver):
        A = rng.standard_normal((64, 64)).astype(np.float32)
        np.testing.assert_array_equal(
            solver.solve(A), repro.svdvals(A, backend="h100", precision="fp32")
        )

    def test_rect_matches_legacy(self, rng, solver):
        for shape in ((80, 40), (40, 80)):
            A = rng.standard_normal(shape).astype(np.float32)
            got = solver.solve(A)
            assert got.shape == (40,)
            np.testing.assert_array_equal(
                got, repro.svdvals_rect(A, backend="h100", precision="fp32")
            )

    def test_batched_matches_legacy(self, rng, solver):
        As = rng.standard_normal((3, 32, 32)).astype(np.float32)
        got = solver.solve(As)
        assert got.shape == (3, 32)
        np.testing.assert_array_equal(
            got, repro.svdvals_batched(As, backend="h100", precision="fp32")
        )

    def test_svdvals_is_solve_alias(self, rng, solver):
        A = rng.standard_normal((48, 48)).astype(np.float32)
        np.testing.assert_array_equal(solver.svdvals(A), solver.solve(A))

    def test_svd_full_vectors(self, rng):
        A = np.asarray(np.random.default_rng(2).standard_normal((40, 40)))
        res = Solver(backend="h100").svd(A)
        assert np.linalg.norm(res.reconstruct() - A) < 1e-10

    def test_bad_ndim_rejected(self, solver):
        with pytest.raises(ShapeError):
            solver.solve(np.zeros(5))
        with pytest.raises(ShapeError):
            solver.solve(np.zeros((2, 2, 2, 2)))

    def test_return_info(self, rng, solver):
        A = rng.standard_normal((40, 40)).astype(np.float32)
        vals, info = solver.solve(A, return_info=True)
        assert info.simulated_seconds > 0
        assert info.backend == "nvidia-h100"

    def test_precision_inference_when_unset(self, rng):
        auto = Solver(backend="h100")  # precision inferred per input
        A16 = (0.1 * rng.standard_normal((32, 32))).astype(np.float16)
        _, info = auto.solve(A16, return_info=True)
        assert info.precision == "fp16"
        _, info = auto.solve(A16.astype(np.float64), return_info=True)
        assert info.precision == "fp64"


class TestEmptyShapeConsistency:
    """Every numeric entry point rejects empty inputs the same way."""

    def test_all_paths_raise_empty_matrix(self, solver):
        for bad in (np.zeros((0, 0)), np.zeros((0, 5)), np.zeros((5, 0))):
            with pytest.raises(ShapeError, match="empty matrix"):
                solver.solve(bad)
        with pytest.raises(ShapeError, match="empty matrix"):
            solver.solve(np.zeros((2, 0, 0)))
        with pytest.raises(ShapeError, match="empty matrix"):
            solver.svd(np.zeros((0, 0)))

    def test_legacy_shims_match(self):
        with pytest.raises(ShapeError, match="empty matrix"):
            repro.svdvals(np.zeros((0, 0)))
        with pytest.raises(ShapeError, match="empty matrix"):
            repro.svdvals_rect(np.zeros((0, 5)))
        with pytest.raises(ShapeError, match="empty matrix"):
            repro.svdvals_batched(np.zeros((2, 0, 0)))
        with pytest.raises(ShapeError, match="empty batch"):
            repro.svdvals_batched([])
        with pytest.raises(ShapeError, match="empty matrix"):
            repro.svd_full(np.zeros((0, 0)))
        with pytest.raises(ShapeError, match="empty matrix"):
            repro.jacobi_svdvals(np.zeros((0, 5)))


class TestPredictFrontDoor:
    def test_single_gpu(self, solver):
        bd = solver.predict(4096)
        assert bd.total_s == pytest.approx(
            repro.predict(4096, "h100", "fp32").total_s
        )

    def test_batched(self, solver):
        bd = solver.predict(128, batch=64)
        assert bd.total_s == pytest.approx(
            repro.predict_batched(128, 64, "h100", "fp32").total_s
        )

    def test_multi_gpu(self, solver):
        # the legacy shim's historical default link is 100 GB/s; the
        # handle front door defaults to the backend's own link (NVLink)
        bd = solver.predict(8192, ngpu=4, link_gbs=100.0)
        assert bd.total_s == pytest.approx(
            repro.predict_multi_gpu(8192, "h100", "fp32", 4).total_s
        )
        assert bd.comm_s > 0
        nvlink = solver.predict(8192, ngpu=4)
        assert nvlink.comm_s < bd.comm_s  # 450 GB/s NVLink beats 100 GB/s

    def test_out_of_core(self, solver):
        n = 2 * solver.backend.max_n("fp32")
        bd = solver.predict(n, out_of_core=True)
        assert bd.total_s == pytest.approx(
            repro.predict_out_of_core(n, "h100", "fp32").total_s
        )
        assert bd.io_s > 0

    def test_batch_composes_with_every_axis(self, solver):
        # the batch x {ngpu, streams, out_of_core} mutual-exclusion guard
        # is gone: batched prediction runs the same emit -> partition ->
        # rewrite -> price pipeline as every other axis
        sharded = solver.predict(128, batch=8, ngpu=2)
        assert sharded.ngpu == 2 and sharded.comm_s > 0
        incore = solver.predict(128, batch=8, out_of_core=True)
        assert incore.io_s == 0.0  # fits: rewrite is the identity
        sched = solver.predict(128, batch=8, streams=2)
        assert sched.streams == 2
        full = solver.predict(128, batch=8, ngpu=2, streams=2,
                              out_of_core=True)
        assert full.ngpu == 2

    def test_out_of_core_composes(self, solver):
        # since the graph rewriter landed, out_of_core composes with
        # both ngpu= and streams= (see tests/test_outofcore.py)
        bd = solver.predict(256, ngpu=2, out_of_core=True)
        assert bd.ngpu == 2

    def test_requires_explicit_precision(self):
        with pytest.raises(InvalidParamsError, match="precision"):
            Solver(backend="h100").predict(128)


class TestPlan:
    def test_square_plan_bitwise_identical(self, rng, solver):
        A = rng.standard_normal((96, 96)).astype(np.float32)
        plan = solver.plan((96, 96))
        oneshot = solver.solve(A)
        for _ in range(3):  # reuse must not drift
            np.testing.assert_array_equal(plan.execute(A), oneshot)

    def test_plan_info_matches_oneshot(self, rng, solver):
        A = rng.standard_normal((96, 96)).astype(np.float32)
        plan = solver.plan(96)
        _, info1 = solver.solve(A, return_info=True)
        _, info2 = plan.execute(A, return_info=True)
        assert info2.simulated_seconds == pytest.approx(info1.simulated_seconds)
        assert info2.launch_counts == info1.launch_counts

    def test_batched_plan(self, rng, solver):
        As = rng.standard_normal((5, 32, 32)).astype(np.float32)
        plan = solver.plan((5, 32, 32))
        np.testing.assert_array_equal(plan.execute(As), solver.solve(As))
        # a batched plan accepts any batch count of the planned order
        np.testing.assert_array_equal(
            plan.execute(As[:2]), solver.solve(As[:2])
        )

    def test_rect_plan(self, rng, solver):
        A = rng.standard_normal((80, 40)).astype(np.float32)
        plan = solver.plan((80, 40))
        np.testing.assert_array_equal(plan.execute(A), solver.solve(A))
        # transpose-invariant: the wide view runs the same plan
        np.testing.assert_array_equal(plan.execute(A.T), solver.solve(A.T))

    def test_plan_precomputes_schedule_metadata(self, solver):
        plan = solver.plan((96, 96))
        assert plan.npad == 96 and plan.nbt == 3
        assert plan.launch_prices > 0
        before = plan.launch_prices
        A = np.random.default_rng(0).standard_normal((96, 96)).astype(np.float32)
        plan.execute(A)
        # the prefilled table already covered the whole traced schedule
        assert plan.launch_prices == before
        assert plan.breakdown().total_s > 0

    def test_prefill_covers_schedule_every_kind(self, rng, solver):
        """Guard against prefill drifting from the real launch schedule."""
        for shape, make in (
            ((96, 96), lambda: rng.standard_normal((96, 96))),
            ((80, 48), lambda: rng.standard_normal((80, 48))),
            ((3, 64, 64), lambda: rng.standard_normal((3, 64, 64))),
        ):
            plan = solver.plan(shape)
            before = plan.launch_prices
            plan.execute(make().astype(np.float32))
            assert plan.launch_prices == before, (
                f"{plan.kind} plan priced new launch shapes at execute time"
            )
        # unfused schedules prefill their own (smaller) key set
        unfused = solver.with_(fused=False).plan((96, 96))
        before = unfused.launch_prices
        unfused.execute(rng.standard_normal((96, 96)).astype(np.float32))
        assert unfused.launch_prices == before

    def test_rect_plan_breakdown_includes_preprocessing(self, solver):
        """A tall plan's prediction must price the tall-QR chain too."""
        tall = solver.plan((512, 64)).breakdown()
        square = solver.plan((64, 64)).breakdown()
        assert tall.total_s > square.total_s
        assert tall.flops > 2 * square.flops  # 512x64 chain dominates 64^3
        # matches the rectangular driver's merged return_info accounting
        A = np.random.default_rng(1).standard_normal((512, 64)).astype(
            np.float32
        )
        _, info = solver.solve(A, return_info=True)
        assert tall.total_s == pytest.approx(info.simulated_seconds)
        assert tall.flops == pytest.approx(info.flops)

    def test_wrong_shape_rejected(self, solver):
        plan = solver.plan((64, 64))
        with pytest.raises(ShapeError):
            plan.execute(np.zeros((32, 32), dtype=np.float32))
        with pytest.raises(ShapeError):
            solver.plan((0, 4))
        with pytest.raises(ShapeError):
            solver.plan((2, 8, 4))

    def test_plan_requires_explicit_precision(self):
        with pytest.raises(InvalidParamsError, match="precision"):
            Solver(backend="h100").plan((64, 64))


class TestLegacyShimsDelegate:
    """Every legacy entry point routes through the one Solver code path."""

    def _spy(self, monkeypatch, name):
        calls = []
        original = getattr(Solver, name)

        def wrapper(self, *args, **kwargs):
            calls.append(name)
            return original(self, *args, **kwargs)

        monkeypatch.setattr(Solver, name, wrapper)
        return calls

    def test_svdvals_delegates(self, monkeypatch, rng):
        calls = self._spy(monkeypatch, "_solve_square")
        repro.svdvals(rng.standard_normal((32, 32)))
        assert calls == ["_solve_square"]

    def test_svdvals_rect_delegates(self, monkeypatch, rng):
        calls = self._spy(monkeypatch, "_solve_rect")
        repro.svdvals_rect(rng.standard_normal((48, 24)))
        assert calls == ["_solve_rect"]

    def test_svdvals_batched_delegates(self, monkeypatch, rng):
        calls = self._spy(monkeypatch, "_solve_batched")
        repro.svdvals_batched(rng.standard_normal((2, 16, 16)))
        assert calls == ["_solve_batched"]

    def test_svd_full_delegates(self, monkeypatch, rng):
        calls = self._spy(monkeypatch, "svd")
        repro.svd_full(rng.standard_normal((24, 24)))
        assert calls == ["svd"]

    def test_predict_family_delegates(self, monkeypatch):
        calls = self._spy(monkeypatch, "predict")
        repro.predict(1024, "h100", "fp32")
        repro.predict_batched(128, 8, "h100", "fp32")
        repro.predict_multi_gpu(1024, "h100", "fp32", 2)
        repro.predict_out_of_core(1024, "h100", "fp32")
        assert calls == ["predict"] * 4


class TestPrecisionFromDtype:
    """The one shared dtype -> Precision inference (satellite)."""

    def test_float_dtypes(self):
        assert Precision.from_dtype(np.float16) is Precision.FP16
        assert Precision.from_dtype(np.dtype(np.float32)) is Precision.FP32
        assert Precision.from_dtype(np.float64) is Precision.FP64

    def test_fallback(self):
        assert Precision.from_dtype(np.int64) is Precision.FP64
        assert Precision.from_dtype(object()) is Precision.FP64
        assert Precision.from_dtype(np.int32, Precision.FP32) is Precision.FP32

    def test_drivers_share_it(self, monkeypatch, rng):
        seen = []
        original = Precision.from_dtype.__func__

        def spy(cls, dtype, default=None):
            seen.append(np.dtype(dtype) if dtype is not None else None)
            return original(cls, dtype, default)

        monkeypatch.setattr(
            Precision, "from_dtype", classmethod(spy)
        )
        A = rng.standard_normal((16, 16)).astype(np.float32)
        repro.svdvals(A)
        repro.svdvals_rect(rng.standard_normal((20, 10)).astype(np.float32))
        repro.svdvals_batched(A[None])
        repro.svd_full(A)
        assert len(seen) >= 4
