"""The stage-graph execution engine: one LaunchGraph, two executors.

Replaces (and strengthens) the old ``test_schedule_consistency``: since
the drivers and the analytic predictor consume the *same* emitted
:class:`~repro.sim.LaunchGraph`, the property is no longer "two hand-kept
walks agree approximately" but "the analytic executor charges the traced
numeric run's launches *identically*" - per-kernel counts with ``==``,
per-stage simulated seconds with float equality, totals to 1e-12.
"""

import numpy as np
import pytest

import repro
from repro import Solver
from repro.core import emit_batched_graph, emit_svd_graph, emit_tallqr_graph
from repro.core.svd import svdvals_resolved
from repro.errors import InvalidParamsError, ShapeError
from repro.sim import (
    AnalyticExecutor,
    KernelParams,
    NumericExecutor,
    Stage,
    schedule_streams,
    stage1_launch_count,
)
from repro.sim.costmodel import brd_launch_count

SIZES = [(64, 32), (96, 32), (128, 16), (130, 32)]
BACKENDS = [
    ("h100", "fp32"),
    ("h100", "fp16"),  # upcast path
    ("mi250", "fp64"),
    ("m1pro", "fp32"),
]


def make_solver(backend, precision, ts, fused):
    params = KernelParams(tilesize=ts, colperblock=min(ts, 32), splitk=4)
    return Solver(backend=backend, precision=precision, params=params,
                  fused=fused)


class TestAnalyticMatchesTraced:
    """Property sweep: sizes x backends x precisions x fusion modes."""

    @pytest.mark.parametrize("backend,precision", BACKENDS)
    @pytest.mark.parametrize("fused", [True, False])
    @pytest.mark.parametrize("n,ts", SIZES)
    def test_identical_launches_and_time(self, backend, precision, n, ts, fused):
        solver = make_solver(backend, precision, ts, fused)
        A = np.random.default_rng(7).standard_normal((n, n))
        _, info = solver.solve(A, return_info=True)
        bd = solver.predict(n)

        # identical launches: every kernel, exact counts
        assert info.launch_counts == bd.launches
        # identical simulated time: per-stage float equality (both sides
        # accumulate the same costs in the same node order)
        assert info.stage_seconds.get(Stage.PANEL, 0.0) == bd.panel_s
        assert info.stage_seconds.get(Stage.UPDATE, 0.0) == bd.update_s
        assert info.stage_seconds.get(Stage.BRD, 0.0) == bd.brd_s
        assert info.stage_seconds.get(Stage.SOLVE, 0.0) == bd.solve_s
        assert info.simulated_seconds == pytest.approx(bd.total_s, rel=1e-12)
        # counted analytic graphs accumulate flops/bytes in per-kernel
        # runs rather than interleaved launch order: same terms, so only
        # float-association differs
        assert info.flops == pytest.approx(bd.flops, rel=1e-12)
        assert info.bytes == pytest.approx(bd.bytes, rel=1e-12)

    def test_rect_driver_matches_plan_breakdown(self):
        solver = Solver(backend="h100", precision="fp32")
        A = np.random.default_rng(3).standard_normal((160, 64)).astype(
            np.float32
        )
        _, info = solver.solve(A, return_info=True)
        bd = solver.plan((160, 64)).breakdown()
        assert info.launch_counts == bd.launches
        assert info.simulated_seconds == pytest.approx(bd.total_s, rel=1e-12)


class TestGraphStructure:
    def test_node_count_matches_closed_form(self):
        solver = Solver(backend="h100", precision="fp32")
        cfg = solver.config
        for n in (64, 96, 130, 1000):
            for fused in (True, False):
                graph = emit_svd_graph(n, cfg.with_(fused=fused))
                nbrd = brd_launch_count(graph.npad, graph.ts, cfg.coeffs)
                assert len(graph) == (
                    stage1_launch_count(graph.nbt, fused) + nbrd + 1
                )

    def test_deps_are_topological(self):
        cfg = Solver(backend="h100", precision="fp32").config
        for streams in (1, 2, 4):
            graph = emit_svd_graph(256, cfg, streams=streams)
            for i, node in enumerate(graph.nodes):
                assert all(d < i for d in node.deps)

    def test_launch_counts_match_analytic(self):
        solver = Solver(backend="a100", precision="fp32")
        graph = emit_svd_graph(200, solver.config)
        assert graph.launch_counts() == solver.predict(200).launches

    def test_tallqr_and_batched_emitters(self):
        cfg = Solver(backend="h100", precision="fp32").config
        tall = emit_tallqr_graph(256, 64, cfg)
        assert tall.kind == "tallqr" and tall.mpad == 256
        assert set(tall.launch_counts()) == {
            "geqrt", "unmqr", "ftsqrt", "ftsmqr"
        }
        bat = emit_batched_graph(64, 8, cfg)
        assert bat.kind == "batched" and bat.batch == 8
        bd = repro.predict_batched(64, 8, "h100", "fp32")
        assert bat.launch_counts() == bd.launches

    def test_counted_unfused_graph_equivalent_and_small(self):
        """Counted emission keeps unfused pricing O(tiles) without
        changing the launch set or the charged time."""
        solver = Solver(backend="h100", precision="fp32", fused=False)
        cfg, storage = solver.config, solver.precision
        full = emit_svd_graph(512, cfg)
        folded = emit_svd_graph(512, cfg, counted=True)
        assert len(folded) < len(full)
        assert folded.launch_counts() == full.launch_counts()
        bd_full = AnalyticExecutor(cfg, storage).run(full)
        bd_folded = AnalyticExecutor(cfg, storage).run(folded)
        assert bd_folded.launches == bd_full.launches
        assert bd_folded.panel_s == bd_full.panel_s
        assert bd_folded.update_s == bd_full.update_s
        assert bd_folded.flops == pytest.approx(bd_full.flops, rel=1e-12)

    def test_bad_n_rejected(self):
        cfg = Solver(backend="h100", precision="fp32").config
        with pytest.raises(ShapeError):
            emit_svd_graph(0, cfg)


class TestGraphReplayBitwise:
    """A cached graph replays to bitwise-identical singular values."""

    def test_square_replay(self):
        solver = Solver(backend="h100", precision="fp32")
        cfg = solver.config
        A = np.random.default_rng(0).standard_normal((96, 96)).astype(
            np.float32
        )
        oneshot = solver.solve(A)
        graph = emit_svd_graph(96, cfg)
        for _ in range(3):
            np.testing.assert_array_equal(
                svdvals_resolved(A, cfg, graph=graph), oneshot
            )

    def test_replay_across_fusion_modes(self):
        A = np.random.default_rng(1).standard_normal((80, 80)).astype(
            np.float32
        )
        f = Solver(backend="h100", precision="fp32", fused=True)
        u = Solver(backend="h100", precision="fp32", fused=False)
        # fusion changes launches, not numerics; both graph replays agree
        np.testing.assert_array_equal(
            f.plan((80, 80)).execute(A), u.plan((80, 80)).execute(A)
        )

    def test_mismatched_graph_rejected(self):
        cfg = Solver(backend="h100", precision="fp32").config
        A = np.zeros((64, 64), dtype=np.float32)
        with pytest.raises(ShapeError, match="graph"):
            svdvals_resolved(A, cfg, graph=emit_svd_graph(96, cfg))

    def test_batched_replay_shares_one_graph(self):
        solver = Solver(backend="h100", precision="fp32")
        As = np.random.default_rng(2).standard_normal((4, 48, 48)).astype(
            np.float32
        )
        plan = solver.plan((4, 48, 48))
        singles = np.stack([solver.solve(a) for a in As])
        np.testing.assert_array_equal(plan.execute(As), singles)


class TestMultiStream:
    def test_streams_one_equals_serial_total(self):
        solver = Solver(backend="h100", precision="fp32")
        cfg, storage = solver.config, solver.precision
        graph = emit_svd_graph(512, cfg)
        sched = schedule_streams(graph, cfg, storage, 1)
        assert sched.makespan_s == pytest.approx(sched.serial_s)
        assert sched.makespan_s == pytest.approx(
            solver.predict(512).total_s, rel=1e-12
        )

    def test_two_streams_strictly_faster_when_updates_dominate(self):
        """Acceptance criterion: overlap must pay off at update-bound sizes."""
        solver = Solver(backend="h100", precision="fp32")
        serial = solver.predict(32768)
        # trailing updates dominate at this size (Figure 6, large n)
        assert serial.update_s > 0.5 * serial.total_s
        overlapped = solver.predict(32768, streams=2)
        assert overlapped.total_s < serial.total_s
        assert overlapped.speedup > 1.0
        assert overlapped.streams == 2
        # overlap also pays off at smaller, panel-bound sizes
        assert solver.predict(2048, streams=2).total_s < solver.predict(2048).total_s

    def test_more_streams_never_slower(self):
        solver = Solver(backend="mi250", precision="fp64")
        t2 = solver.predict(4096, streams=2).total_s
        t4 = solver.predict(4096, streams=4).total_s
        assert t4 <= t2 * (1 + 1e-12)

    def test_stream_graph_has_split_launches(self):
        cfg = Solver(backend="h100", precision="fp32").config
        mono = emit_svd_graph(512, cfg)
        split = emit_svd_graph(512, cfg, streams=2)
        assert len(split) > len(mono)
        assert split.streams == 2

    def test_numeric_executor_rejects_stream_graphs(self):
        cfg = Solver(backend="h100", precision="fp32").config
        graph = emit_svd_graph(64, cfg, streams=2)
        W = np.zeros((64, 64), dtype=np.float32)
        with pytest.raises(ValueError, match="analytic-only"):
            NumericExecutor(W, 64, 1e-7).run(graph)

    def test_streams_composes_with_ngpu_and_batch(self):
        solver = Solver(backend="h100", precision="fp32")
        # the historical guard rejected ngpu x streams; they now compose
        # into the device-aware scheduler (see tests/test_partition.py)
        sched = solver.predict(256, ngpu=2, streams=2)
        assert sched.ngpu == 2 and sched.streams == 2
        # and since the graph-native batching PR, batch= composes too:
        # the batch splits into concurrent chains the scheduler overlaps
        bsched = solver.predict(128, batch=4, streams=2)
        assert bsched.streams == 2
        assert bsched.makespan_s < bsched.serial_s

    def test_invalid_stream_count(self):
        solver = Solver(backend="h100", precision="fp32")
        with pytest.raises(InvalidParamsError):
            solver.predict(128, streams=0)

    def test_stream_assignment_recorded_on_nodes(self):
        solver = Solver(backend="h100", precision="fp32")
        graph = emit_svd_graph(256, solver.config, streams=2)
        assert all(node.stream is None for node in graph.nodes)
        schedule_streams(graph, solver.config, solver.precision, 2)
        assert all(node.stream in (0, 1) for node in graph.nodes)
        assert {node.stream for node in graph.nodes} == {0, 1}

    def test_stream_busy_conservation(self):
        """Every launch's time lands on exactly one stream."""
        solver = Solver(backend="h100", precision="fp32")
        sched = solver.predict(1024, streams=3)
        assert sum(sched.stream_busy_s) == pytest.approx(sched.serial_s)
        assert max(sched.stream_busy_s) <= sched.makespan_s * (1 + 1e-12)


class TestJacobiThroughSolver:
    """Satellite: method="jacobi" routes through the one handle."""

    def test_matches_standalone(self):
        A = np.random.default_rng(5).standard_normal((24, 16))
        np.testing.assert_array_equal(
            Solver(method="jacobi").solve(A), repro.jacobi_svdvals(A)
        )

    def test_shim_delegates(self, monkeypatch):
        calls = []
        original = Solver.solve

        def spy(self, *a, **k):
            calls.append(self.config.method)
            return original(self, *a, **k)

        monkeypatch.setattr(Solver, "solve", spy)
        repro.jacobi_svdvals(np.eye(8))
        assert calls == ["jacobi"]

    def test_jacobi_kwargs_forwarded(self):
        A = np.random.default_rng(6).standard_normal((12, 12))
        from repro.errors import ConvergenceError

        with pytest.raises(ConvergenceError):
            repro.jacobi_svdvals(A, max_sweeps=1)
        with pytest.raises(ConvergenceError):
            Solver(method="jacobi", jacobi_max_sweeps=1).solve(A)

    def test_batched_stack(self):
        As = np.random.default_rng(8).standard_normal((3, 10, 10))
        got = Solver(method="jacobi").solve(As)
        assert got.shape == (3, 10)
        np.testing.assert_array_equal(got[1], repro.jacobi_svdvals(As[1]))

    def test_unknown_method_rejected(self):
        with pytest.raises(InvalidParamsError, match="method"):
            Solver(method="divide_and_conquer")

    def test_no_info_no_predict_no_plan(self):
        solver = Solver(method="jacobi")
        with pytest.raises(InvalidParamsError):
            solver.solve(np.eye(8), return_info=True)
        with pytest.raises(InvalidParamsError):
            solver.predict(64)
        with pytest.raises(InvalidParamsError):
            solver.plan((64, 64))
        with pytest.raises(InvalidParamsError):
            solver.svd(np.eye(8))

    def test_shape_errors_preserved(self):
        with pytest.raises(ShapeError):
            repro.jacobi_svdvals(np.zeros(5))
        with pytest.raises(ShapeError, match="empty matrix"):
            repro.jacobi_svdvals(np.zeros((0, 4)))
