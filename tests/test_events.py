"""Discrete-event scheduler: pinned agreement, contention, cluster routing.

The event engine (:mod:`repro.sim.events`) is the oracle the greedy list
scheduler is held against: on contention-free graphs the two must agree
*exactly* (same duration vector, same dependency structure, no queueing
on either side), and only genuine resource oversubscription may separate
them.  These tests pin that invariant, exercise the two-tier cluster
partition it exists for, and audit the validation surface of every
``nodes=`` entry point.
"""

import numpy as np
import pytest

import repro
from repro.config import SolveConfig
from repro.core import emit_batched_graph, emit_svd_graph
from repro.errors import CapacityError, InvalidParamsError, ShapeError
from repro.serve.admission import AdmissionController
from repro.sim import (
    DEFAULT_INTER_LINK,
    EventSchedule,
    FabricSpec,
    TimeBreakdown,
    partition_graph,
    price_partitioned,
    simulate_events,
)
from repro.sim.graph import COMM_INTER_KINDS
from repro.sim.partition import check_shard_capacity, price_partitioned_scalar
from repro.sim.timeline import schedule_streams
from repro.tuning.planner import shape_class


@pytest.fixture(scope="module")
def solver():
    return repro.Solver(backend="h100", precision="fp32")


@pytest.fixture(scope="module")
def config(solver):
    return solver.config


@pytest.fixture(scope="module")
def storage(config):
    return config.require_precision("test")


def cluster_graph(config, n=1024, nodes=2, ngpu=2, streams=1):
    graph = emit_svd_graph(n, config, streams=streams)
    return partition_graph(
        graph, ngpu, nodes=nodes, fabric=config.fabric_spec()
    )


# --------------------------------------------------------------------- #
# pinned agreement: greedy list scheduler == event simulation when no
# resource is ever oversubscribed
# --------------------------------------------------------------------- #
class TestPinnedAgreement:
    def test_ample_streams_exact(self, config, storage):
        """With more streams than width, neither scheduler queues: the
        event makespan equals the greedy makespan bit for bit."""
        graph = emit_svd_graph(768, config, streams=4)
        greedy = schedule_streams(graph, config, storage, 64)
        events = simulate_events(graph, config, storage, streams=64)
        assert events.makespan_s == greedy.total_s

    def test_single_stream_chain(self, config, storage):
        """streams=1 serializes both schedulers onto one device lane;
        only float re-association may separate them."""
        graph = emit_svd_graph(512, config, streams=1)
        greedy = schedule_streams(graph, config, storage, 1)
        events = simulate_events(graph, config, storage, streams=1)
        assert events.makespan_s == pytest.approx(greedy.total_s, rel=1e-12)

    def test_serial_and_critical_bounds(self, config, storage):
        graph = emit_svd_graph(640, config, streams=2)
        events = simulate_events(graph, config, storage, streams=2)
        assert events.critical_path_s <= events.makespan_s * (1 + 1e-12)
        assert events.makespan_s <= events.serial_s * (1 + 1e-12)

    def test_chain_decomposition_sums_to_makespan(self, config, storage):
        graph = cluster_graph(config, n=1024, nodes=2, ngpu=2)
        events = simulate_events(graph, config, storage, streams=1)
        assert sum(events.chain_seconds.values()) == pytest.approx(
            events.makespan_s, rel=1e-9
        )

    def test_deterministic(self, config, storage):
        graph = cluster_graph(config, n=768, nodes=2, ngpu=2)
        a = simulate_events(graph, config, storage, streams=2)
        b = simulate_events(graph, config, storage, streams=2)
        assert a.makespan_s == b.makespan_s
        assert a.chain_seconds == b.chain_seconds
        assert a.resource_busy_s == b.resource_busy_s


# --------------------------------------------------------------------- #
# contention: what the greedy scheduler cannot express
# --------------------------------------------------------------------- #
class TestContention:
    def test_oversubscribed_fabric_queues(self, config, storage):
        """Per-source cluster gathers all land on the destination node's
        one fabric lane, so some of them must wait."""
        graph = emit_batched_graph(256, 32, config, streams=1)
        part = partition_graph(
            graph, 2, nodes=4, fabric=config.fabric_spec()
        )
        events = simulate_events(part, config, storage, streams=1)
        assert events.contention_s > 0.0

    def test_extra_fabric_lanes_relieve_queueing(self, config, storage):
        graph = emit_batched_graph(256, 32, config, streams=1)
        part = partition_graph(
            graph, 2, nodes=4, fabric=config.fabric_spec()
        )
        one = simulate_events(part, config, storage, streams=1)
        many = simulate_events(
            part, config, storage, streams=1, fabric_lanes=8
        )
        assert many.contention_s < one.contention_s
        assert many.makespan_s <= one.makespan_s

    def test_contention_share_bounded(self, config, storage):
        graph = cluster_graph(config, n=1024, nodes=2, ngpu=2)
        events = simulate_events(graph, config, storage, streams=1)
        assert 0.0 <= events.contention_share < 1.0


# --------------------------------------------------------------------- #
# the two-tier cluster partition
# --------------------------------------------------------------------- #
class TestClusterPartition:
    def test_inter_tier_nodes_emitted(self, config):
        graph = cluster_graph(config, n=1024, nodes=2, ngpu=2)
        kinds = {node.kind for node in graph.nodes}
        assert "panel_bcast" in kinds and "panel_bcast_inter" in kinds
        assert "boundary_x" in kinds and "boundary_x_inter" in kinds
        assert graph.nnodes == 2 and graph.ngpu == 4

    def test_single_node_partition_unchanged(self, config):
        """nodes=1 must reproduce the historical partition exactly."""
        base = emit_svd_graph(1024, config, streams=1)
        link = config.link_spec()
        old = partition_graph(base, 4, link)
        new = partition_graph(base, 4, link, nodes=1)
        assert old.nodes == new.nodes
        assert new.nnodes == 1
        assert not any(k in COMM_INTER_KINDS for k in
                       (node.kind for node in new.nodes))

    def test_scalar_table_tier_split_identical(self, config, storage):
        graph = cluster_graph(config, n=1024, nodes=2, ngpu=2)
        scalar = price_partitioned_scalar(graph, config, storage)
        table = price_partitioned(graph, config, storage)
        assert scalar.comm_intra_s == table.comm_intra_s
        assert scalar.comm_inter_s == table.comm_inter_s
        assert scalar.comm_s == table.comm_s
        assert table.comm_inter_s > 0.0
        assert table.comm_intra_s + table.comm_inter_s == pytest.approx(
            table.comm_s
        )

    def test_batched_cluster_gathers_queue_on_destination(self, config):
        graph = emit_batched_graph(256, 16, config, streams=1)
        part = partition_graph(
            graph, 2, nodes=2, fabric=config.fabric_spec()
        )
        gathers = [n for n in part.nodes if n.kind.startswith("batch_gather")]
        assert all(n.device == 0 for n in gathers)
        assert any(n.kind == "batch_gather_inter" for n in gathers)

    def test_partition_validation(self, config):
        base = emit_svd_graph(512, config, streams=1)
        with pytest.raises(ShapeError):
            partition_graph(base, 2, config.link_spec(), nodes=0)
        with pytest.raises(ValueError, match="FabricSpec"):
            partition_graph(base, 2, config.link_spec(), nodes=2)

    def test_shard_capacity_message_names_topology(self, config):
        with pytest.raises(CapacityError, match=r"2 nodes x 2 devices"):
            check_shard_capacity(300_000, config, 2, nodes=2)


# --------------------------------------------------------------------- #
# fabric resolution
# --------------------------------------------------------------------- #
class TestFabricSpec:
    def test_default_composition(self, config):
        fabric = config.fabric_spec()
        assert fabric.intra == config.link_spec()
        assert fabric.inter == DEFAULT_INTER_LINK

    def test_overrides(self, config):
        fabric = config.fabric_spec(link_gbs=123.0, fabric_gbs=7.0)
        assert fabric.intra.bandwidth_gbs == 123.0
        assert fabric.inter.bandwidth_gbs == 7.0

    def test_config_axis_wins(self, config):
        custom = FabricSpec(
            intra=config.link_spec().with_(bandwidth_gbs=200.0),
            inter=DEFAULT_INTER_LINK.with_(bandwidth_gbs=25.0),
        )
        cfg = config.with_(fabric=custom)
        assert cfg.fabric_spec() == custom

    def test_invalid_fabric_rejected(self, config):
        with pytest.raises(InvalidParamsError, match="fabric"):
            config.with_(fabric="not-a-fabric")

    def test_invalid_override_rejected(self, config):
        with pytest.raises(InvalidParamsError, match="fabric_gbs"):
            config.fabric_spec(fabric_gbs=-1.0)


# --------------------------------------------------------------------- #
# Solver.predict routing and the validation audit
# --------------------------------------------------------------------- #
class TestPredictRouting:
    def test_cluster_square_returns_event_schedule(self, solver):
        result = solver.predict(2048, ngpu=2, nodes=2)
        assert isinstance(result, EventSchedule)
        assert result.nnodes == 2 and result.ngpu == 4
        assert result.comm_inter_s > 0.0

    def test_cluster_batched_returns_event_schedule(self, solver):
        result = solver.predict(256, batch=32, ngpu=2, nodes=2)
        assert isinstance(result, EventSchedule)
        assert result.comm_inter_s > 0.0

    def test_nodes_one_preserves_types(self, solver):
        assert isinstance(solver.predict(1024, ngpu=2, nodes=1),
                          TimeBreakdown)
        assert isinstance(solver.predict(1024, nodes=1), TimeBreakdown)

    def test_breakdown_reports_tiers_and_queue(self, solver):
        result = solver.predict(2048, ngpu=2, nodes=2)
        bd = result.breakdown()
        assert isinstance(bd, TimeBreakdown)
        assert bd.total_s == pytest.approx(result.makespan_s, rel=1e-9)
        fractions = bd.stage_fractions()
        assert "comm_intra" in fractions and "comm_inter" in fractions

    def test_slower_fabric_slower_prediction(self, solver):
        fast = solver.predict(2048, ngpu=2, nodes=2)
        slow = solver.predict(2048, ngpu=2, nodes=2, fabric_gbs=2.0)
        assert slow.total_s > fast.total_s

    @pytest.mark.parametrize(
        "kwargs, fragment",
        [
            (dict(ngpu=0), "ngpu must be a positive device count, got 0"),
            (dict(nodes=0), "nodes must be a positive node count, got 0"),
            (dict(nodes=-3), "nodes must be a positive node count, got -3"),
            (
                dict(streams=0),
                "streams must be a positive stream count, got 0",
            ),
            (dict(fabric_gbs=10.0), "requires nodes >= 2"),
            (
                dict(nodes=2, out_of_core=True),
                "out_of_core=True with nodes=2",
            ),
            (dict(oc_budget_gb=1.0), "requires out_of_core=True"),
        ],
    )
    def test_guard_messages_name_offending_axis(
        self, solver, kwargs, fragment
    ):
        """Every rejection names the axis value actually passed."""
        with pytest.raises(InvalidParamsError) as err:
            solver.predict(1024, **kwargs)
        assert fragment in str(err.value)

    def test_batched_guards_match_square(self, solver):
        with pytest.raises(InvalidParamsError, match="nodes=2"):
            solver.predict(256, batch=8, nodes=2, out_of_core=True)

    def test_simulate_topology_cross_check(self, config, storage):
        graph = cluster_graph(config, n=512, nodes=2, ngpu=2)
        with pytest.raises(InvalidParamsError, match="nodes=4"):
            simulate_events(graph, config, storage, nodes=4)
        with pytest.raises(InvalidParamsError, match="ngpu=3"):
            simulate_events(graph, config, storage, ngpu=3)
        ok = simulate_events(graph, config, storage, nodes=2, ngpu=2)
        assert ok.nnodes == 2

    def test_memoized_structure_reused(self, solver):
        a = solver.predict(1536, ngpu=2, nodes=2)
        b = solver.predict(1536, ngpu=2, nodes=2)
        assert a.makespan_s == b.makespan_s


# --------------------------------------------------------------------- #
# tune: the opt-in nodes axis
# --------------------------------------------------------------------- #
class TestTuneNodes:
    def test_nodes_axis_searched(self, solver):
        plan = solver.tune(1024, budget=40, nodes=(1, 2))
        multi = [c for c in plan.candidates if c.nodes > 1]
        assert multi
        assert multi[0].predict_kwargs()["nodes"] == 2

    def test_default_search_single_node(self, solver):
        plan = solver.tune(1024, budget=24)
        assert all(c.nodes == 1 for c in plan.candidates)
        assert "nodes" not in plan.best.predict_kwargs()

    def test_invalid_nodes_rejected(self, solver):
        with pytest.raises(InvalidParamsError, match="nodes"):
            solver.tune(1024, nodes=(0,))


# --------------------------------------------------------------------- #
# serving admission over a cluster
# --------------------------------------------------------------------- #
class TestAdmissionNodes:
    def test_price_uses_cluster_oracle(self, config):
        ctrl = AdmissionController(config, nodes=2)
        cls = shape_class(512, config)
        priced = ctrl.price(cls, 8)
        assert priced.predicted_s > 0.0
        assert not priced.out_of_core

    def test_capacity_scales_with_nodes(self, config):
        cls = shape_class(512, config)
        budget = 512 * 512 * 4 * 1.25 * 2  # two problems per node
        one = AdmissionController(config, mem_budget_bytes=budget)
        two = AdmissionController(config, mem_budget_bytes=budget, nodes=2)
        assert two.capacity_for(cls) == 2 * one.capacity_for(cls)

    def test_overflow_rejected_not_spilled(self, config):
        cls = shape_class(512, config)
        budget = 512 * 512 * 4 * 1.25 * 2
        ctrl = AdmissionController(config, mem_budget_bytes=budget, nodes=2)
        with pytest.raises(CapacityError, match="does not compose"):
            ctrl.price(cls, 50)

    def test_invalid_nodes_rejected(self, config):
        with pytest.raises(InvalidParamsError, match="positive node count"):
            AdmissionController(config, nodes=0)


# --------------------------------------------------------------------- #
# numeric replay of cluster graphs
# --------------------------------------------------------------------- #
class TestClusterReplay:
    def test_cluster_graph_replays_bitwise(self, solver, config):
        """Cluster comm nodes are numeric no-ops: replaying the
        partitioned graph is bitwise identical to the one-shot solve."""
        from repro.core.svd import svdvals_resolved

        rng = np.random.default_rng(7)
        n = 130
        A = rng.standard_normal((n, n))
        oneshot = solver.solve(A)
        part = partition_graph(
            emit_svd_graph(n, config), 2, nodes=2,
            fabric=config.fabric_spec(),
        )
        np.testing.assert_array_equal(
            svdvals_resolved(A, config, graph=part), oneshot
        )
