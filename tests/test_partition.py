"""The multi-GPU graph partitioner: sharding, comm nodes, pricing.

PR 3 replaced the closed-form multi-GPU scaling model with an explicit
graph path: emit -> partition -> price.  These tests pin the acceptance
criteria: ``ngpu=1`` is a structural no-op, launch counts come from the
partitioned graph, comm time is its own component, partitioned numeric
replay is bitwise identical to the single-device run, and the new
pricing agrees with the legacy closed form on its modeled regime.
"""

import numpy as np
import pytest

import repro
from repro import Solver, Topology
from repro.core import emit_svd_graph
from repro.core.svd import svdvals_resolved
from repro.errors import CapacityError, InvalidParamsError, ShapeError
from repro.sim import (
    LinkSpec,
    Stage,
    StreamSchedule,
    check_shard_capacity,
    comm_cost,
    fleet_weights,
    partition_graph,
    price_partitioned,
    schedule_streams,
    shard_rows,
    shard_rows_weighted,
    simulate_events,
)
from repro.sim.partition import fleet_scale
from repro.sim.graph import COMM_KINDS
from repro.sim.scaling import multi_gpu_closed_form_resolved

LINK = LinkSpec("test-link", 100.0, 2.0)


@pytest.fixture
def solver():
    return Solver(backend="h100", precision="fp32")


class TestShardRows:
    def test_covers_range_contiguously(self):
        for lo, hi, g in ((0, 10, 3), (2, 17, 4), (5, 6, 8), (1, 100, 7)):
            chunks = shard_rows(lo, hi, g)
            assert chunks[0][0] == lo and chunks[-1][1] == hi
            for (a, b), (c, d) in zip(chunks, chunks[1:]):
                assert b == c  # contiguous
            assert all(b > a for a, b in chunks)  # non-empty
            assert len(chunks) == min(g, hi - lo)

    def test_balanced(self):
        chunks = shard_rows(0, 10, 3)
        sizes = [b - a for a, b in chunks]
        assert max(sizes) - min(sizes) <= 1

    def test_empty_range(self):
        assert shard_rows(5, 5, 4) == []


class TestWeightedSharding:
    def test_equal_weights_reproduce_shard_rows(self):
        for lo, hi, g in ((0, 10, 3), (2, 17, 4), (1, 100, 7)):
            assert shard_rows_weighted(lo, hi, (1.0,) * g) == \
                shard_rows(lo, hi, g)

    def test_surplus_devices_get_explicit_empty_chunks(self):
        chunks = shard_rows_weighted(3, 5, (1.0, 1.0, 1.0, 1.0))
        assert len(chunks) == 4
        assert chunks == [(3, 4), (4, 5), (5, 5), (5, 5)]

    def test_rejects_bad_weights(self):
        with pytest.raises(ShapeError):
            shard_rows_weighted(0, 4, ())
        with pytest.raises(ShapeError):
            shard_rows_weighted(0, 4, (1.0, -1.0))

    def test_fleet_weights_order_match_devices(self, solver):
        topo = Topology(devices=("h100", "a100", "h100"))
        w = fleet_weights(topo, solver.config)
        assert len(w) == 3 and w[0] == w[2] and w[0] > w[1]
        scale = fleet_scale(topo, solver.config)
        assert scale[0] == pytest.approx(1.0)  # handle's own device
        assert scale[1] > 1.0  # a100 update rows run slower


class TestTopologyPartition:
    def test_uniform_topology_byte_identical_graph(self, solver):
        cfg = solver.config
        legacy = partition_graph(
            emit_svd_graph(512, cfg), 4, cfg.link_spec()
        )
        topo = partition_graph(
            emit_svd_graph(512, cfg),
            topology=Topology.uniform("h100", 4), config=cfg,
        )
        assert topo.nodes == legacy.nodes
        assert topo.ngpu == legacy.ngpu

    def test_uniform_topology_identical_prediction(self, solver):
        top = Topology.uniform("h100", 4)
        assert (
            solver.predict(4096, topology=top).total_s
            == solver.predict(4096, ngpu=4).total_s
        )
        clustered = solver.predict(
            8192, topology=Topology.uniform("h100", 4, nodes=2)
        )
        legacy = solver.predict(8192, ngpu=2, nodes=2)
        assert clustered.makespan_s == legacy.makespan_s
        assert clustered.launches == legacy.launches

    def test_hetero_uses_every_weighted_device(self, solver):
        cfg = solver.config
        topo = Topology(devices=("h100", "h100", "a100", "a100"))
        pg = partition_graph(
            emit_svd_graph(512, cfg), topology=topo, config=cfg
        )
        assert {n.device for n in pg.nodes} == {0, 1, 2, 3}
        np.testing.assert_array_equal(
            svdvals_resolved(
                np.random.default_rng(7).standard_normal((512, 512)), cfg,
                graph=pg,
            ),
            solver.solve(
                np.random.default_rng(7).standard_normal((512, 512))
            ),
        )

    def test_surplus_ranks_trimmed_from_comm_plan(self, solver):
        """Regression: a mixed fleet with more ranks than tile rows must
        not broadcast panels to devices that hold no shard."""
        cfg = solver.config
        topo = Topology(
            devices=("h100", "h100", "h100", "a100", "a100", "a100")
        )
        pg = partition_graph(
            emit_svd_graph(64, cfg), topology=topo, config=cfg
        )
        used = {n.device for n in pg.nodes}
        assert used < set(range(6))  # some ranks hold nothing
        legacy = partition_graph(
            emit_svd_graph(64, cfg), 6, cfg.link_spec()
        )
        assert (
            pg.launch_counts().get("panel_bcast", 0)
            <= legacy.launch_counts()["panel_bcast"]
        )
        A = np.random.default_rng(11).standard_normal((64, 64))
        np.testing.assert_array_equal(
            svdvals_resolved(A, cfg, graph=pg), solver.solve(A)
        )

    def test_weighted_beats_uniform_sharding_on_mixed_fleet(self, solver):
        """The PR's acceptance criterion: cost-weighted shards finish
        strictly earlier than uniform shards on an H100+A100 fleet."""
        cfg = solver.config
        topo = Topology(devices=("h100", "h100", "h100", "a100"))
        scale = fleet_scale(topo, cfg)
        weighted = simulate_events(
            partition_graph(
                emit_svd_graph(2048, cfg), topology=topo, config=cfg
            ),
            cfg, solver.precision, device_scale=scale,
        )
        uniform = simulate_events(
            partition_graph(
                emit_svd_graph(2048, cfg), topology=topo, config=cfg,
                weights=(1.0,) * 4,
            ),
            cfg, solver.precision, device_scale=scale,
        )
        assert weighted.makespan_s < uniform.makespan_s

    def test_topology_conflicts_with_legacy_axes(self, solver):
        topo = Topology.uniform("h100", 2)
        with pytest.raises(InvalidParamsError, match="ngpu"):
            solver.predict(256, topology=topo, ngpu=2)
        with pytest.raises(InvalidParamsError, match="link_gbs"):
            solver.predict(256, topology=topo, link_gbs=50.0)
        with pytest.raises(InvalidParamsError, match="ngpu"):
            partition_graph(
                emit_svd_graph(128, solver.config), 2,
                topology=topo, config=solver.config,
            )


class TestLinkModel:
    def test_comm_cost_terms(self):
        one = comm_cost(LINK, 1e9, hops=1)
        assert one.seconds == pytest.approx(2e-6 + 1e9 / 1e11)
        two = comm_cost(LINK, 1e9, hops=2)
        assert two.seconds == pytest.approx(2 * one.seconds)
        assert comm_cost(LINK, 0.0).seconds == pytest.approx(LINK.latency_s)

    def test_backend_default_links(self):
        # datacenter NVIDIA parts carry NVLink, AMD Infinity Fabric,
        # consumer cards PCIe
        assert repro.resolve_backend("h100").link.name == "nvlink4"
        assert repro.resolve_backend("mi250").link.name == "infinity-fabric"
        assert repro.resolve_backend("rtx4060").link.name.startswith("pcie")

    def test_handle_link_axis_and_override(self, solver):
        slow = Solver(
            backend="h100", precision="fp32",
            link=LinkSpec("pcie", 10.0, 10.0),
        )
        fast = solver.predict(8192, ngpu=4)
        throttled = slow.predict(8192, ngpu=4)
        assert throttled.comm_s > fast.comm_s
        # per-call link_gbs overrides the bandwidth (latency unchanged)
        assert (
            slow.predict(8192, ngpu=4, link_gbs=450.0).comm_s
            < throttled.comm_s
        )
        with pytest.raises(InvalidParamsError, match="link"):
            Solver(link="nvlink")
        with pytest.raises(InvalidParamsError, match="link_gbs"):
            solver.predict(128, ngpu=2, link_gbs=-5.0)


class TestPartitionStructure:
    def test_ngpu_one_is_structural_noop(self, solver):
        graph = emit_svd_graph(256, solver.config)
        assert partition_graph(graph, 1) is graph
        assert graph.ngpu == 1
        assert not any(n.kind in COMM_KINDS for n in graph.nodes)
        # and the solver path reproduces single-device pricing exactly
        a = solver.predict(4096)
        b = solver.predict(4096, ngpu=1)
        assert a.total_s == b.total_s
        assert a.launches == b.launches and b.comm_s == 0.0

    def test_devices_and_comm_nodes_assigned(self, solver):
        graph = partition_graph(
            emit_svd_graph(512, solver.config), 4, LINK
        )
        assert graph.ngpu == 4
        assert all(n.device is not None for n in graph.nodes)
        assert {n.device for n in graph.nodes} == {0, 1, 2, 3}
        counts = graph.launch_counts()
        assert counts["panel_bcast"] > 0
        assert counts["boundary_x"] > 0
        assert counts["band_gather"] == 1
        # stage 2/3 stay on device 0
        for n in graph.nodes:
            if n.kind in ("brd_chase", "bdsqr_cpu"):
                assert n.device == 0

    def test_deps_stay_topological(self, solver):
        for g in (2, 3, 8):
            graph = partition_graph(
                emit_svd_graph(256, solver.config), g, LINK
            )
            for i, node in enumerate(graph.nodes):
                assert all(d < i for d in node.deps)

    def test_update_launches_shard_by_rows(self, solver):
        mono = emit_svd_graph(512, solver.config)
        part = partition_graph(mono, 4, LINK)
        assert part.launch_counts()["ftsmqr"] > mono.launch_counts()["ftsmqr"]
        # each sharded chunk covers a sub-range of its sweep's rows
        for n in part.nodes:
            if n.kind == "ftsmqr":
                lo, hi = n.meta[3]
                assert hi > lo and n.key[2] == hi - lo

    def test_ngpu_exceeding_tile_rows(self, solver):
        # 128/32 = 4 tile rows; 64 devices must still partition cleanly
        graph = partition_graph(
            emit_svd_graph(128, solver.config), 64, LINK
        )
        assert graph.ngpu == 64
        for n in graph.nodes:
            if n.kind == "ftsmqr":
                lo, hi = n.meta[3]
                assert hi - lo == 1  # never more chunks than rows
        bd = price_partitioned(graph, solver.config, solver.precision)
        assert bd.total_s > 0
        # beyond-rows devices cannot help: same update time as g = rows
        few = price_partitioned(
            partition_graph(emit_svd_graph(128, solver.config), 4, LINK),
            solver.config, solver.precision,
        )
        assert bd.update_s == pytest.approx(few.update_s)

    def test_rejects_bad_inputs(self, solver):
        graph = emit_svd_graph(128, solver.config)
        with pytest.raises(ShapeError):
            partition_graph(graph, 0, LINK)
        with pytest.raises(ValueError, match="LinkSpec"):
            partition_graph(graph, 2)
        with pytest.raises(ValueError, match="counted"):
            partition_graph(
                emit_svd_graph(128, solver.config.with_(fused=False),
                               counted=True),
                2, LINK,
            )
        from repro.core import emit_tallqr_graph

        with pytest.raises(ValueError, match="square"):
            partition_graph(
                emit_tallqr_graph(256, 64, solver.config), 2, LINK
            )


class TestShardCapacity:
    def test_shard_exceeding_device_memory_raises(self):
        # 60000^2 fp32 exceeds the 8 GiB RTX4060 even split over 2
        # devices, but fits across 16
        s = Solver(backend="rtx4060", precision="fp32")
        with pytest.raises(CapacityError, match="sharded over 2 devices"):
            s.predict(60000, ngpu=2)
        assert s.predict(60000, ngpu=16).total_s > 0
        with pytest.raises(CapacityError):
            check_shard_capacity(60000, s.config, 2)

    def test_check_capacity_false_prices_anyway(self):
        s = Solver(backend="rtx4060", precision="fp32")
        assert s.predict(60000, ngpu=2, check_capacity=False).total_s > 0

    def test_multi_gpu_extends_capacity(self, solver):
        n = solver.backend.max_n("fp32") + 1000
        with pytest.raises(CapacityError):
            solver.predict(n)
        assert solver.predict(n, ngpu=8).total_s > 0

    def test_single_device_delegates(self, solver):
        with pytest.raises(CapacityError):
            check_shard_capacity(10**6, solver.config, 1)


class TestPartitionedPricing:
    def test_launch_counts_come_from_partitioned_graph(self, solver):
        graph = partition_graph(
            emit_svd_graph(1024, solver.config), 4, LINK
        )
        bd = price_partitioned(graph, solver.config, solver.precision)
        assert bd.launches == graph.launch_counts()
        assert bd.ngpu == 4

    def test_comm_is_own_component(self, solver):
        bd = solver.predict(8192, ngpu=4)
        assert bd.comm_s > 0
        assert bd.total_s == pytest.approx(
            bd.panel_s + bd.update_s + bd.brd_s + bd.solve_s + bd.comm_s
        )
        assert bd.stage_fractions()[Stage.COMM] > 0

    def test_serial_stages_match_single_device_exactly(self, solver):
        single = solver.predict(8192)
        multi = solver.predict(8192, ngpu=8)
        assert multi.panel_s == single.panel_s
        assert multi.brd_s == single.brd_s
        assert multi.solve_s == single.solve_s

    def test_consistency_with_closed_form(self, solver):
        """The graph pricing must agree with the legacy closed form on
        its modeled regime (large update-dominated sizes, moderate g)."""
        for g in (2, 4, 8):
            new = solver.predict(32768, ngpu=g, link_gbs=100.0)
            old = multi_gpu_closed_form_resolved(
                32768, solver.config, g, link_gbs=100.0
            )
            assert new.total_s == pytest.approx(old.total_s, rel=0.15)
            assert new.update_s == pytest.approx(old.update_s, rel=0.20)
            assert new.panel_s == old.panel_s

    def test_update_scales_and_comm_grows(self, solver):
        bds = [solver.predict(16384, ngpu=g) for g in (1, 2, 4, 8)]
        for a, b in zip(bds, bds[1:]):
            assert b.update_s < a.update_s
            assert b.total_s < a.total_s
            assert b.comm_s >= a.comm_s


class TestPartitionedReplayBitwise:
    @pytest.mark.parametrize(
        "backend,precision",
        [("h100", "fp32"), ("h100", "fp16"), ("mi250", "fp64")],
    )
    @pytest.mark.parametrize("fused", [True, False])
    def test_bitwise_identical(self, backend, precision, fused):
        s = Solver(backend=backend, precision=precision, fused=fused)
        cfg = s.config
        A = np.random.default_rng(3).standard_normal((130, 130))
        oneshot = s.solve(A)
        for g in (2, 3, 64):
            pg = partition_graph(
                emit_svd_graph(130, cfg), g, cfg.backend.link
            )
            np.testing.assert_array_equal(
                svdvals_resolved(A, cfg, graph=pg), oneshot
            )

    def test_traced_partitioned_run_attributes_comm(self, solver):
        cfg = solver.config
        pg = partition_graph(emit_svd_graph(96, cfg), 4, LINK)
        A = np.random.default_rng(4).standard_normal((96, 96))
        _, info = svdvals_resolved(A, cfg, graph=pg, return_info=True)
        assert info.stage_seconds[Stage.COMM] > 0
        assert info.launch_counts == pg.launch_counts()


class TestDeviceAwareScheduler:
    def test_ngpu_streams_compose(self, solver):
        sched = solver.predict(4096, ngpu=4, streams=2)
        assert isinstance(sched, StreamSchedule)
        assert sched.ngpu == 4 and sched.streams == 2
        assert sched.comm_s > 0
        # 4 devices x 2 streams + 4 link lanes
        assert len(sched.stream_busy_s) == 4 * 2 + 4

    def test_compute_stays_in_device_pool(self, solver):
        graph = partition_graph(
            emit_svd_graph(512, solver.config), 2, LINK
        )
        schedule_streams(graph, solver.config, solver.precision, 2)
        for node in graph.nodes:
            dev = node.device
            if node.stage == Stage.COMM:
                assert node.stream == 2 * 2 + dev  # the device's link lane
            else:
                assert 2 * dev <= node.stream < 2 * (dev + 1)

    def test_overlap_beats_serial_partitioned_pricing(self, solver):
        # the list scheduler overlaps remote updates with the panel
        # chain, so it can only improve on the stage-structured pricing
        bd = solver.predict(16384, ngpu=4)
        sched = solver.predict(16384, ngpu=4, streams=2)
        assert sched.total_s < bd.total_s
        assert sched.total_s < solver.predict(16384).total_s

    def test_busy_conservation_across_lanes(self, solver):
        sched = solver.predict(2048, ngpu=2, streams=2)
        assert sum(sched.stream_busy_s) == pytest.approx(sched.serial_s)
        assert max(sched.stream_busy_s) <= sched.makespan_s * (1 + 1e-12)


class TestPredictModeValidation:
    def test_batch_composes_with_every_axis(self, solver):
        """The historical batch mutual-exclusion guard is gone."""
        for kwargs in (
            dict(batch=4, ngpu=2),
            dict(batch=4, streams=2),
            dict(batch=4, out_of_core=True),
            dict(batch=4, ngpu=2, streams=2, out_of_core=True),
        ):
            result = solver.predict(128, **kwargs)
            assert result.total_s > 0

    def test_method_guard_fires_before_axis_validation(self):
        """A Jacobi handle is told about its real problem first.

        The axis-value validation used to fire before the method guard,
        so ``Solver(method='jacobi').predict(n, streams=0)`` blamed the
        stream count instead of the method.
        """
        jacobi = Solver(backend="h100", precision="fp32", method="jacobi")
        for kwargs in (
            dict(),
            dict(streams=0),
            dict(ngpu=0),
            dict(oc_budget_gb=1.0),  # invalid without out_of_core
            dict(oc_budget_gb=-1.0, out_of_core=True),
        ):
            with pytest.raises(
                InvalidParamsError, match="two-stage QR"
            ) as err:
                jacobi.predict(128, **kwargs)
            msg = str(err.value)
            assert "streams" not in msg
            assert "oc_budget_gb" not in msg

    def test_axis_validation_messages_for_qr_handles(self, solver):
        """QR handles still get the precise per-axis messages."""
        with pytest.raises(InvalidParamsError, match="streams must be"):
            solver.predict(128, streams=0)
        with pytest.raises(InvalidParamsError, match="ngpu must be"):
            solver.predict(128, ngpu=0)
        with pytest.raises(
            InvalidParamsError, match="requires out_of_core=True"
        ):
            solver.predict(128, oc_budget_gb=1.0)
        with pytest.raises(
            InvalidParamsError, match="oc_budget_gb must be"
        ):
            solver.predict(128, out_of_core=True, oc_budget_gb=-2.0)

    def test_invalid_counts(self, solver):
        with pytest.raises(InvalidParamsError, match="ngpu"):
            solver.predict(128, ngpu=0)
        with pytest.raises(InvalidParamsError, match="streams"):
            solver.predict(128, streams=0)
