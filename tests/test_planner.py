"""Tests for the analytic execution planner behind ``Solver.tune``."""

import numpy as np
import pytest

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Solver
from repro.errors import InvalidParamsError
from repro.tuning import TuneCandidate, TunePlan, clear_tune_cache
from repro.tuning.planner import _TUNE_CACHE


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_tune_cache()
    yield
    clear_tune_cache()


@pytest.fixture
def solver():
    return Solver(backend="h100", precision="fp32")


class TestTunePlan:
    def test_returns_ranked_plan(self, solver):
        plan = solver.tune(1024, budget=24)
        assert isinstance(plan, TunePlan)
        assert plan.evaluations <= 24
        times = [c.predicted_s for c in plan.candidates]
        assert times == sorted(times)
        assert plan.best is plan.candidates[0]

    @pytest.mark.parametrize(
        "backend,precision,n",
        [
            ("h100", "fp32", 512),
            ("h100", "fp16", 2048),
            ("mi250", "fp64", 1024),
            ("pvc", "fp32", 4096),
        ],
    )
    def test_never_slower_than_untuned_default(self, backend, precision, n):
        """Acceptance criterion: tuning can only help, on the whole grid."""
        solver = Solver(backend=backend, precision=precision)
        plan = solver.tune(n, budget=32)
        untuned = solver.predict(n).total_s
        assert plan.default.predicted_s == pytest.approx(untuned)
        assert plan.best.predicted_s <= plan.default.predicted_s
        assert plan.speedup >= 1.0

    def test_apply_constructs_winning_solver(self, solver):
        plan = solver.tune(2048, budget=24)
        tuned = plan.apply()
        assert isinstance(tuned, Solver)
        assert tuned.params == plan.best.params
        # re-predicting with the plan's kwargs reproduces the plan's time
        again = tuned.predict(2048, **plan.best.predict_kwargs())
        assert again.total_s == pytest.approx(plan.best.predicted_s)

    def test_batched_tuning(self, solver):
        plan = solver.tune(128, batch=64, objective="throughput", budget=24)
        assert plan.batch == 64
        assert plan.best.predicted_s <= plan.default.predicted_s
        assert plan.throughput() == pytest.approx(
            64 / plan.best.predicted_s
        )
        assert plan.throughput() >= plan.throughput(plan.default)

    def test_out_of_core_fallback(self):
        """Beyond-capacity problems tune through the streaming path."""
        solver = Solver(backend="rtx4060", precision="fp32")
        n = 2 * solver.backend.max_n("fp32")
        from repro.tuning.planner import tune_resolved

        plan = tune_resolved(
            n, solver.config, budget=4, ngpus=(1, 2), streams=(1,)
        )
        assert plan.default.out_of_core
        assert plan.best.predicted_s <= plan.default.predicted_s
        kwargs = plan.best.predict_kwargs()
        assert kwargs.get("out_of_core") is True

    def test_infeasible_problem_raises_capacity_error(self, solver):
        """Regression: an unrunnable problem reports CapacityError, not
        a bare assertion failure."""
        from repro.errors import CapacityError

        with pytest.raises(CapacityError, match="even out-of-core"):
            solver.tune(200000, batch=2, budget=4)

    def test_refinement_stage_runs_at_default_budget(self, solver):
        """Regression: the coarse grid must not consume the whole budget
        - a quarter is reserved so refinement actually engages."""
        from repro.tuning.planner import _coarse_params

        plan = solver.tune(1024)  # default budget
        coarse = set(_coarse_params(solver.config.params))
        refined = [c for c in plan.candidates if c.params not in coarse]
        assert refined, "no refinement-stage candidate was evaluated"

    def test_budget_caps_evaluations(self, solver):
        small = solver.tune(512, budget=5)
        assert small.evaluations <= 5
        clear_tune_cache()
        large = solver.tune(512, budget=40)
        assert large.evaluations > small.evaluations
        assert large.best.predicted_s <= small.best.predicted_s

    def test_objective_validation(self, solver):
        with pytest.raises(InvalidParamsError, match="objective"):
            solver.tune(256, objective="carbon")
        with pytest.raises(InvalidParamsError, match="requires batch"):
            solver.tune(256, objective="throughput")
        with pytest.raises(InvalidParamsError, match="budget"):
            solver.tune(256, budget=0)
        with pytest.raises(InvalidParamsError, match="batch"):
            solver.tune(256, batch=0)

    def test_requires_qr_and_precision(self):
        with pytest.raises(InvalidParamsError, match="method='qr'"):
            Solver(method="jacobi").tune(256)
        with pytest.raises(InvalidParamsError, match="precision"):
            Solver(backend="h100").tune(256)

    def test_candidate_predict_kwargs_in_core(self):
        cand = TuneCandidate(params=Solver().params, streams=2, ngpu=4)
        assert cand.predict_kwargs() == {"streams": 2, "ngpu": 4}


class TestTuneCache:
    def test_hit_same_shape(self, solver):
        p1 = solver.tune(512, budget=12)
        p2 = solver.tune(512, budget=12)
        assert p1 is p2
        assert len(_TUNE_CACHE) == 1

    def test_miss_across_shapes(self, solver):
        p1 = solver.tune(512, budget=12)
        p2 = solver.tune(1024, budget=12)
        p3 = solver.tune(512, batch=8, budget=12)
        assert p1 is not p2 and p1 is not p3
        assert len(_TUNE_CACHE) == 3

    def test_miss_across_devices(self):
        p_h = Solver(backend="h100", precision="fp32").tune(512, budget=12)
        p_m = Solver(backend="mi250", precision="fp32").tune(512, budget=12)
        assert p_h is not p_m
        assert p_h.backend != p_m.backend

    def test_miss_across_precisions(self):
        p32 = Solver(backend="h100", precision="fp32").tune(512, budget=12)
        p16 = Solver(backend="h100", precision="fp16").tune(512, budget=12)
        assert p32 is not p16
        assert len(_TUNE_CACHE) == 2

    def test_clear_cache(self, solver):
        p1 = solver.tune(512, budget=12)
        clear_tune_cache()
        assert len(_TUNE_CACHE) == 0
        p2 = solver.tune(512, budget=12)
        assert p1 is not p2

    def test_miss_across_cost_coefficients(self, solver):
        """Regression: the memo key covers every prediction-changing
        axis of the config, not just (backend, precision)."""
        from dataclasses import replace

        from repro.sim import DEFAULT_COEFFS

        p1 = solver.tune(512, budget=12)
        slow = Solver(
            backend="h100", precision="fp32",
            coeffs=replace(
                DEFAULT_COEFFS,
                panel_cycles_per_elem=10
                * DEFAULT_COEFFS.panel_cycles_per_elem,
            ),
        )
        p2 = slow.tune(512, budget=12)
        assert p1 is not p2
        assert p2.default.predicted_s > p1.default.predicted_s
        # a plan's time stays reproducible through its own solver
        again = p2.apply().predict(512, **p2.best.predict_kwargs())
        assert again.total_s == pytest.approx(p2.best.predicted_s)

    def test_clear_does_not_change_results(self, solver):
        p1 = solver.tune(512, budget=12)
        clear_tune_cache()
        p2 = solver.tune(512, budget=12)
        assert [
            (c.params, c.streams, c.ngpu, c.predicted_s)
            for c in p1.candidates
        ] == [
            (c.params, c.streams, c.ngpu, c.predicted_s)
            for c in p2.candidates
        ]


class TestShapeClassCache:
    """The memo keys by padded tile geometry, not the exact n."""

    def test_shape_class_resolution(self, solver):
        from repro.tuning import ShapeClass, shape_class

        cls = shape_class(250, solver.config)
        assert cls == ShapeClass(npad=256, nbt=8, tilesize=32)
        assert shape_class(256, solver.config) == cls
        assert shape_class(224, solver.config) != cls
        assert 250 in cls and 256 in cls and 224 not in cls

    def test_two_shapes_one_class_share_an_entry(self, solver):
        from repro.tuning import tune_cache_stats

        p1 = solver.tune(250, budget=12)
        p2 = solver.tune(256, budget=12)  # ntiles(250,32) == ntiles(256,32)
        assert p1 is p2
        assert len(_TUNE_CACHE) == 1
        stats = tune_cache_stats()
        assert stats == {"hits": 1, "misses": 1, "entries": 1}

    def test_distinct_classes_still_miss(self, solver):
        solver.tune(224, budget=12)
        solver.tune(256, budget=12)
        from repro.tuning import tune_cache_stats

        assert tune_cache_stats() == {"hits": 0, "misses": 2, "entries": 2}

    def test_clear_resets_counters(self, solver):
        from repro.tuning import tune_cache_stats

        solver.tune(512, budget=12)
        solver.tune(512, budget=12)
        clear_tune_cache()
        assert tune_cache_stats() == {"hits": 0, "misses": 0, "entries": 0}

    def test_class_follows_the_handle_tilesize(self):
        from repro.sim import KernelParams
        from repro.tuning import shape_class

        s64 = Solver(backend="h100", precision="fp32",
                     params=KernelParams(64, 64, 8))
        cls = shape_class(250, s64.config)
        assert cls.tilesize == 64 and cls.npad == 256 and cls.nbt == 4


class TestDeterminism:
    @given(
        n=st.sampled_from([256, 512, 1024]),
        batch=st.sampled_from([None, 8, 64]),
        budget=st.integers(min_value=1, max_value=20),
    )
    @settings(deadline=None, max_examples=15)
    def test_ranked_plan_deterministic(self, n, batch, budget):
        """Same inputs -> identical ranked plan, cache cleared or not."""
        solver = Solver(backend="h100", precision="fp32")
        clear_tune_cache()
        p1 = solver.tune(n, batch=batch, budget=budget)
        clear_tune_cache()
        p2 = solver.tune(n, batch=batch, budget=budget)
        assert p1.evaluations == p2.evaluations
        assert [
            (c.params, c.streams, c.ngpu, c.out_of_core, c.predicted_s)
            for c in p1.candidates
        ] == [
            (c.params, c.streams, c.ngpu, c.out_of_core, c.predicted_s)
            for c in p2.candidates
        ]

    def test_plan_total_never_negative(self, solver):
        plan = solver.tune(256, budget=16)
        assert all(c.predicted_s > 0 for c in plan.candidates)
        assert np.isfinite([c.predicted_s for c in plan.candidates]).all()
