"""Tests for the tile-grid helpers."""

import numpy as np
import pytest

from repro.core.tiling import (
    band_width,
    extract_band,
    is_upper_band,
    ntiles,
    pad_to_tiles,
    tile,
)
from repro.errors import ShapeError


class TestNtiles:
    def test_exact(self):
        assert ntiles(128, 32) == 4

    def test_ceil(self):
        assert ntiles(129, 32) == 5
        assert ntiles(1, 32) == 1

    def test_invalid(self):
        with pytest.raises(ShapeError):
            ntiles(0, 32)


class TestPad:
    def test_no_pad_needed(self, rng):
        A = rng.standard_normal((64, 64))
        P, n = pad_to_tiles(A, 32)
        assert P.shape == (64, 64) and n == 64
        assert P is not A  # always a copy

    def test_pad_to_next_multiple(self, rng):
        A = rng.standard_normal((65, 65)).astype(np.float32)
        P, n = pad_to_tiles(A, 32)
        assert P.shape == (96, 96) and n == 65
        assert P.dtype == np.float32
        np.testing.assert_array_equal(P[:65, :65], A)
        assert np.all(P[65:, :] == 0) and np.all(P[:, 65:] == 0)

    def test_padding_preserves_singular_values(self, rng):
        A = rng.standard_normal((20, 20))
        P, _ = pad_to_tiles(A, 16)
        sv_a = np.linalg.svd(A, compute_uv=False)
        sv_p = np.linalg.svd(P, compute_uv=False)
        np.testing.assert_allclose(sv_p[:20], sv_a, atol=1e-12)
        np.testing.assert_allclose(sv_p[20:], 0.0, atol=1e-12)

    def test_non_square_rejected(self):
        with pytest.raises(ShapeError):
            pad_to_tiles(np.zeros((3, 4)), 2)


class TestTileView:
    def test_view_not_copy(self, rng):
        A = rng.standard_normal((64, 64))
        t = tile(A, 1, 0, 32)
        t[0, 0] = 42.0
        assert A[32, 0] == 42.0

    def test_indices(self, rng):
        A = np.arange(16.0).reshape(4, 4)
        np.testing.assert_array_equal(tile(A, 0, 1, 2), A[0:2, 2:4])

    def test_transposed_grid(self, rng):
        A = rng.standard_normal((64, 64))
        np.testing.assert_array_equal(tile(A.T, 1, 0, 32), A[0:32, 32:64].T)


class TestBandHelpers:
    def test_band_width_diagonal(self):
        assert band_width(np.eye(5)) == (0, 0)

    def test_band_width_bidiagonal(self):
        A = np.eye(5) + np.diag(np.ones(4), 1)
        assert band_width(A) == (0, 1)

    def test_band_width_full(self):
        assert band_width(np.ones((4, 4))) == (3, 3)

    def test_band_width_tolerance(self):
        A = np.eye(4)
        A[3, 0] = 1e-12
        assert band_width(A, tol=1e-10) == (0, 0)
        assert band_width(A)[0] == 3

    def test_is_upper_band(self):
        A = np.triu(np.ones((6, 6))) - np.triu(np.ones((6, 6)), 3)
        assert is_upper_band(A, 2, 0.0)
        assert not is_upper_band(A, 1, 0.0)

    def test_extract_band(self, rng):
        A = rng.standard_normal((8, 8))
        B = extract_band(A, 2)
        assert is_upper_band(B, 2, 0.0)
        for k in range(3):
            np.testing.assert_array_equal(np.diagonal(B, k), np.diagonal(A, k))
        assert np.all(np.tril(B, -1) == 0)
