"""Property-based invariants for the serving queue/batcher/admission.

The batcher is exercised as a pure state machine (synthetic clocks, no
asyncio, no numerics), so hypothesis can drive thousands of schedules:

* conservation - every submitted request pops exactly once (none lost,
  none duplicated);
* batch discipline - no batch exceeds ``max_batch`` and every batch is
  shape-class-homogeneous;
* ordering - FIFO within a shape class at equal priority, higher
  priority first;
* shedding - a shed request always receives a
  :class:`~repro.errors.CapacityError`-derived exception, never a hang.
"""

from typing import List, Tuple

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Solver
from repro.errors import CapacityError, ShedError
from repro.serve import AdmissionController, Batch, DynamicBatcher, SvdRequest
from repro.tuning import shape_class

CONFIG = Solver(backend="h100", precision="fp32").config
# one admission controller for the whole module: pricing is memoized per
# (class, count) and deterministic, so examples cannot interfere
ADMISSION = AdmissionController(CONFIG)

#: Problem sizes spanning three shape classes at tilesize 32.
SIZES = (16, 32, 60, 64, 100, 128)


def make_requests(
    specs: List[Tuple[int, int, int]]
) -> List[SvdRequest]:
    """Build requests from (size-index, priority, gap-ticks) triples."""
    out = []
    t = 0.0
    for seq, (size_i, priority, gap) in enumerate(specs, start=1):
        t += gap * 0.25
        n = SIZES[size_i]
        out.append(SvdRequest(
            seq=seq, n=n, cls=shape_class(n, CONFIG), t_submit=t,
            priority=priority,
        ))
    return out


request_specs = st.lists(
    st.tuples(
        st.integers(0, len(SIZES) - 1),  # size index
        st.integers(0, 2),               # priority
        st.integers(0, 4),               # inter-arrival ticks
    ),
    min_size=0, max_size=40,
)


@given(specs=request_specs, max_batch=st.integers(1, 6))
@settings(deadline=None)
def test_no_request_lost_or_duplicated(specs, max_batch):
    batcher = DynamicBatcher(max_batch=max_batch, max_wait_s=1.0)
    reqs = make_requests(specs)
    popped = []
    for i, req in enumerate(reqs):
        batcher.add(req)
        if i % 3 == 2:
            popped += batcher.pop_ready(req.t_submit)
    popped += batcher.pop_ready(float("inf"), force=True)
    assert len(batcher) == 0
    seqs = sorted(r.seq for b in popped for r in b.requests)
    assert seqs == [r.seq for r in reqs]


@given(specs=request_specs, max_batch=st.integers(1, 6))
@settings(deadline=None)
def test_batches_bounded_and_homogeneous(specs, max_batch):
    batcher = DynamicBatcher(max_batch=max_batch, max_wait_s=0.5)
    batches = []
    for req in make_requests(specs):
        batcher.add(req)
        batches += batcher.pop_ready(req.t_submit)
    batches += batcher.pop_ready(float("inf"), force=True)
    for batch in batches:
        assert 1 <= batch.size <= max_batch
        assert {r.cls for r in batch.requests} == {batch.cls}


@given(specs=request_specs, max_batch=st.integers(1, 6))
@settings(deadline=None)
def test_fifo_within_class_at_equal_priority(specs, max_batch):
    batcher = DynamicBatcher(max_batch=max_batch, max_wait_s=0.5)
    batches = []
    for req in make_requests(specs):
        batcher.add(req)
        batches += batcher.pop_ready(req.t_submit)
    batches += batcher.pop_ready(float("inf"), force=True)
    seen = {}
    for batch in batches:
        for r in batch.requests:
            key = (batch.cls, r.priority)
            assert seen.get(key, 0) < r.seq, (
                "FIFO violated within a shape class at equal priority"
            )
            seen[key] = r.seq


@given(specs=request_specs)
@settings(deadline=None)
def test_priority_orders_within_a_batch(specs):
    batcher = DynamicBatcher(max_batch=8, max_wait_s=0.5)
    batches = []
    for req in make_requests(specs):
        batcher.add(req)
        batches += batcher.pop_ready(req.t_submit)
    batches += batcher.pop_ready(float("inf"), force=True)
    for batch in batches:
        prios = [r.priority for r in batch.requests]
        assert prios == sorted(prios, reverse=True)


@given(
    specs=request_specs,
    slo_ticks=st.lists(
        st.one_of(st.none(), st.integers(0, 8)), min_size=40, max_size=40
    ),
    now_ticks=st.integers(0, 50),
)
@settings(deadline=None, max_examples=40)
def test_admission_partitions_and_shed_gets_capacity_error(
    specs, slo_ticks, now_ticks
):
    """admit() splits a batch exactly; every shed carries a ShedError."""
    reqs = make_requests(specs)
    for req, ticks in zip(reqs, slo_ticks):
        # dataclass is mutable; give some requests tight/loose SLOs
        req.slo_s = None if ticks is None else ticks * 1e-4
    batcher = DynamicBatcher(max_batch=8, max_wait_s=0.5)
    for req in reqs:
        batcher.add(req)
    now = now_ticks * 0.25
    for batch in batcher.pop_ready(float("inf"), force=True):
        decision = ADMISSION.admit(batch, now)
        admitted_ids = {id(r) for r in decision.admitted}
        shed_ids = {id(r) for r, _ in decision.shed}
        assert admitted_ids | shed_ids == {id(r) for r in batch.requests}
        assert not (admitted_ids & shed_ids)
        for _, err in decision.shed:
            assert isinstance(err, ShedError)
            assert isinstance(err, CapacityError)
        for r in decision.admitted:
            # every admitted request is predicted to meet its SLO
            if r.slo_s is not None:
                assert (now - r.t_submit) + decision.predicted_s <= r.slo_s
