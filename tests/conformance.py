"""Workload conformance harness: one matrix proves every emitter.

Every workload registered in :mod:`repro.core.workloads` runs the same
parametrized composition matrix - backends x precisions x streams x
ngpu x nodes x out_of_core x topology, filtered per workload by its
``supports`` flags - asserting, per row:

* **numeric rows**: bitwise replay identity (the resolved driver run
  twice returns identical bits, with and without tracing), oracle
  agreement with the NumPy/LAPACK reference at the precision's
  threshold, and traced-vs-analytic launch-count equality (the tracer's
  kernel counts equal the emitted graph's, exactly);
* **analytic rows**: the greedy-scheduler-vs-event-simulator oracle
  invariant - on a single contention-free device with ample streams the
  discrete-event makespan equals the greedy total *exactly* (zero
  contention, zero queueing); partitioned/fleet rows assert determinism
  and the serial-schedule upper bound instead - plus a bitwise-repeatable
  :meth:`repro.Solver.predict` route for every workload that has one;
* **table rows**: the shape-parametric binder equals the emitted
  graph's table node for node.

A future emitter joins the whole battery by calling
``register_workload`` once; ``tests/test_workload_conformance.py``
parametrizes over :func:`conformance_matrix` and the CI job summary
prints :func:`matrix_size`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import SolveConfig
from repro.core.workloads import WORKLOADS
from repro.sim.events import simulate_events
from repro.sim.outofcore import rewrite_out_of_core
from repro.sim.partition import fleet_weights, partition_graph
from repro.sim.timeline import schedule_streams
from repro.sim.topology import Topology
from repro.solver import Solver

#: Numeric rows run the full resolved drivers; the grid stays tight.
BACKENDS = ("h100", "mi250")
PRECISIONS = ("fp64", "fp32")
#: Square order of the conformance problems: 2.5 tiles at the default
#: tilesize, so every graph has multiple sweeps without slowing CI.
NUMERIC_N = 80
ANALYTIC_N = 96
_SEED = 20250808
#: Fraction of the in-core footprint granted as the out-of-core budget:
#: small enough to force the rewrite on every workload, large enough to
#: hold the minimum streaming window.
_OOC_FRACTION = 0.5


@dataclass(frozen=True)
class Row:
    """One conformance matrix cell."""

    workload: str
    backend: str = "h100"
    precision: str = "fp64"
    streams: int = 1
    ngpu: int = 1
    nodes: int = 1
    out_of_core: bool = False
    hetero: bool = False

    def __str__(self) -> str:
        tags = [self.workload, self.backend, self.precision,
                f"s{self.streams}", f"g{self.ngpu}", f"n{self.nodes}"]
        if self.out_of_core:
            tags.append("ooc")
        if self.hetero:
            tags.append("fleet")
        return "-".join(tags)


def numeric_rows() -> list:
    """Every workload's numeric replay across backends x precisions."""
    return [
        Row(workload=name, backend=b, precision=p)
        for name in sorted(WORKLOADS)
        for b in BACKENDS
        for p in PRECISIONS
    ]


def analytic_rows() -> list:
    """Per-workload composition rows filtered by the spec's supports."""
    rows = []
    for name in sorted(WORKLOADS):
        spec = WORKLOADS[name]
        streams_axis = (1, 3) if "streams" in spec.supports else (1,)
        placements = [(1, 1)]
        if "ngpu" in spec.supports:
            placements.append((2, 1))
        if "nodes" in spec.supports:
            placements.append((2, 2))
        ooc_axis = (
            (False, True) if "out_of_core" in spec.supports else (False,)
        )
        for streams in streams_axis:
            for ngpu, nodes in placements:
                for ooc in ooc_axis:
                    if ooc and nodes > 1:
                        continue  # axes that do not compose (yet)
                    rows.append(Row(
                        workload=name, streams=streams, ngpu=ngpu,
                        nodes=nodes, out_of_core=ooc,
                    ))
        if "topology" in spec.supports:
            rows.append(Row(workload=name, ngpu=4, hetero=True))
    return rows


def table_rows() -> list:
    """One binder-equality row per workload that ships a binder."""
    return [
        Row(workload=name)
        for name in sorted(WORKLOADS)
        if WORKLOADS[name].bind is not None
    ]


def conformance_matrix() -> list:
    """The full matrix the parametrized test sweeps."""
    return numeric_rows() + analytic_rows() + table_rows()


def matrix_size() -> dict:
    """Row counts per battery (printed in the CI job summary)."""
    return {
        "workloads": len(WORKLOADS),
        "numeric": len(numeric_rows()),
        "analytic": len(analytic_rows()),
        "tables": len(table_rows()),
        "total": len(conformance_matrix()),
    }


# --------------------------------------------------------------------- #
# per-row checks
# --------------------------------------------------------------------- #
def _config_for(row: Row) -> SolveConfig:
    return SolveConfig.resolve(backend=row.backend, precision=row.precision)


def check_numeric(row: Row) -> None:
    """Bitwise replay + oracle agreement + traced-count equality."""
    spec = WORKLOADS[row.workload]
    config = _config_for(row)
    A = spec.make_input(NUMERIC_N, _SEED)

    first = np.asarray(spec.run(A, config))
    again = np.asarray(spec.run(A, config))
    assert np.array_equal(first, again), "replay is not bitwise stable"

    traced, info = spec.run_info(A, config)
    assert np.array_equal(first, np.asarray(traced)), (
        "tracing changed the numerics"
    )
    spec.check(first, A, row.precision)

    counts = spec.analytic_counts(NUMERIC_N, config)
    # SVDInfo spells the dict launch_counts, TimeBreakdown launches
    traced_counts = getattr(info, "launch_counts", None)
    if traced_counts is None:
        traced_counts = info.launches
    assert traced_counts == counts, (
        f"traced launches {traced_counts} != analytic {counts}"
    )


def _in_core_bytes(graph, storage) -> float:
    """Approximate resident footprint of the graph's working set."""
    per_problem = float(graph.mpad or graph.npad) * float(graph.npad)
    problems = graph.batch if graph.kind == "batched" else 1
    return per_problem * (problems or 1) * storage.sizeof


#: Square order of the square-kind out-of-core rows: the rewriter's
#: minimum window (pinned panel + pivot + streamed row) must fit under
#: each device shard's footprint, which needs a taller tile grid than
#: the default conformance order provides.
OOC_SQUARE_N = 256


def compose_graph(row: Row, config: SolveConfig):
    """emit -> partition -> rewrite for one analytic row."""
    spec = WORKLOADS[row.workload]
    storage = config.require_precision("conformance")
    graph = spec.emit(ANALYTIC_N, config, streams=row.streams)
    if row.out_of_core and graph.kind == "square":
        graph = spec.emit(OOC_SQUARE_N, config, streams=row.streams)
    if row.hetero:
        half = row.ngpu // 2
        topo = Topology(
            devices=("h100",) * half + ("a100",) * (row.ngpu - half)
        )
        graph = partition_graph(
            graph, topology=topo, config=config,
            weights=fleet_weights(topo, config),
        )
    elif row.nodes > 1:
        graph = partition_graph(
            graph, row.ngpu, nodes=row.nodes,
            fabric=config.fabric_spec(),
        )
    elif row.ngpu > 1:
        graph = partition_graph(graph, row.ngpu, config.link_spec())
    if row.out_of_core:
        ts = config.params.tilesize
        if graph.kind == "batched":
            # grant exactly three resident problems (the rewriter's
            # working factor included): enough for every chain in the
            # matrix's streams axis, fewer than any device's sub-batch
            budget = 3.01 * float(graph.npad) ** 2 * storage.sizeof * 1.25
        elif graph.kind == "square":
            # three tile rows: above the pinned-panel minimum, below
            # every device shard's resident footprint
            budget = 3 * graph.nbt * ts * ts * storage.sizeof * 1.25 * 1.01
        else:
            budget = _OOC_FRACTION * _in_core_bytes(graph, storage)
        graph = rewrite_out_of_core(graph, config, storage, budget)
        assert graph.out_of_core, (
            "out-of-core budget did not force the rewrite"
        )
    return graph


def check_scheduler_oracle(row: Row) -> None:
    """Greedy-vs-events invariant on the row's composed graph.

    Contention-free form (single device): with ample streams the event
    simulator and the greedy critical-path scheduler agree *exactly* -
    same makespan, zero contention, zero queueing.  Partitioned and
    fleet graphs see genuine link contention, so those rows assert
    determinism and the serial-schedule upper bound instead.
    """
    config = _config_for(row)
    storage = config.require_precision("conformance")
    graph = compose_graph(row, config)
    single_device = row.ngpu == 1 and row.nodes == 1 and not row.hetero
    if single_device and not row.out_of_core:
        ample = len(graph) + 1
        greedy = schedule_streams(graph, config, storage, ample)
        ev = simulate_events(graph, config, storage, streams=ample)
        assert ev.makespan_s == greedy.total_s, (
            f"event makespan {ev.makespan_s!r} != greedy total "
            f"{greedy.total_s!r} on a contention-free device"
        )
        assert ev.contention_s == 0.0
        assert ev.queue_s == 0.0
    else:
        # rewritten transfers run on a dedicated host-link lane and
        # partitioned graphs contend on real links, so these rows pin
        # determinism and the simulator's own scheduling bounds instead
        ev = simulate_events(graph, config, storage, streams=row.streams)
        again = simulate_events(graph, config, storage, streams=row.streams)
        assert ev.makespan_s == again.makespan_s, "simulation not deterministic"
        assert ev.makespan_s > 0.0
        assert ev.critical_path_s <= ev.makespan_s * (1.0 + 1e-12)
        assert ev.makespan_s <= ev.serial_s * (1.0 + 1e-12)


def check_predict_route(row: Row) -> None:
    """The Solver.predict front door is deterministic for this row."""
    spec = WORKLOADS[row.workload]
    if spec.predict_kwargs is None:
        return
    solver = Solver(backend=row.backend, precision=row.precision)
    kwargs = dict(spec.predict_kwargs(ANALYTIC_N))
    if row.hetero:
        half = row.ngpu // 2
        kwargs["topology"] = Topology(
            devices=("h100",) * half + ("a100",) * (row.ngpu - half)
        )
    else:
        kwargs.update(ngpu=row.ngpu, nodes=row.nodes)
    kwargs.update(streams=row.streams, out_of_core=row.out_of_core)
    first = solver.predict(ANALYTIC_N, **kwargs)
    again = solver.predict(ANALYTIC_N, **kwargs)
    value = _headline_seconds(first)
    assert value > 0.0
    assert value == _headline_seconds(again), "predict is not deterministic"


def _headline_seconds(result) -> float:
    for attr in ("makespan_s", "total_s"):
        if hasattr(result, attr):
            return float(getattr(result, attr))
    return float(result.total_seconds())


def check_analytic(row: Row) -> None:
    """The full analytic battery for one composition row."""
    check_scheduler_oracle(row)
    check_predict_route(row)


def check_tables(row: Row) -> None:
    """Shape-parametric binder == emitted graph's table, node for node."""
    spec = WORKLOADS[row.workload]
    config = _config_for(row)
    bound = spec.bind(ANALYTIC_N, config)
    emitted = spec.emit_table(ANALYTIC_N, config)
    for name in ("kind", "n", "npad", "ts", "nbt", "ngpu", "out_of_core",
                 "kinds"):
        assert getattr(bound, name) == getattr(emitted, name), name
    assert len(bound) == len(emitted)
    for col in ("stage_id", "counts", "primary", "device", "sweep"):
        assert np.array_equal(
            getattr(bound, col), getattr(emitted, col)
        ), col
    bk, ek = bound.key_tuples(), emitted.key_tuples()
    for i in range(len(bound)):
        assert bound.kinds[bound.kind_id[i]] == emitted.kinds[
            emitted.kind_id[i]
        ], f"node {i} kind"
        assert bk[bound.key_id[i]] == ek[emitted.key_id[i]], f"node {i} key"


def check_row(row: Row, battery: str) -> None:
    """Dispatch one matrix row to its battery's checks."""
    if battery == "numeric":
        check_numeric(row)
    elif battery == "analytic":
        check_analytic(row)
    elif battery == "tables":
        check_tables(row)
    else:  # pragma: no cover - harness misuse
        raise ValueError(f"unknown battery {battery!r}")
