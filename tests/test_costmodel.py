"""Tests for the per-launch cost model."""

import pytest

from repro.backends.device import get_device
from repro.precision import Precision
from repro.sim import KernelParams
from repro.sim.costmodel import (
    DEFAULT_COEFFS,
    CostCoefficients,
    LaunchCost,
    bidiag_solve_cost,
    brd_cost,
    panel_cost,
    transfer_cost,
    update_cost,
)

H100 = get_device("h100")
MI250 = get_device("mi250")
FP32 = Precision.FP32
FP64 = Precision.FP64
P = KernelParams(32, 32, 8)


class TestLaunchCost:
    def test_add(self):
        a = LaunchCost(1.0, flops=2.0, bytes=3.0)
        b = LaunchCost(0.5, flops=1.0, bytes=1.0)
        c = a + b
        assert c.seconds == 1.5
        assert c.flops == 3.0
        assert c.bytes == 4.0


class TestPanelCost:
    def test_positive(self):
        c = panel_cost(H100, P, FP32, FP32)
        assert c.seconds > 0
        assert c.flops > 0

    def test_fused_scales_with_bodies(self):
        c1 = panel_cost(H100, P, FP32, FP32, nbodies=1, body_tiles=2)
        c8 = panel_cost(H100, P, FP32, FP32, nbodies=8, body_tiles=2)
        assert c8.compute_seconds == pytest.approx(8 * c1.compute_seconds)

    def test_tsqrt_costs_more_than_geqrt(self):
        geqrt = panel_cost(H100, P, FP32, FP32, body_tiles=1)
        tsqrt = panel_cost(H100, P, FP32, FP32, body_tiles=2)
        assert tsqrt.seconds > geqrt.seconds

    def test_splitk_speeds_up_panel(self):
        slow = panel_cost(H100, KernelParams(32, 32, 1), FP32, FP32)
        fast = panel_cost(H100, KernelParams(32, 32, 8), FP32, FP32)
        assert fast.seconds < slow.seconds

    def test_l1_spill_mi250_fp64_ts64(self):
        """The Table 3 mechanism: 64^2 FP64 tile overflows MI250's 16 KB L1."""
        p64 = KernelParams(64, 32, 8)
        clean = panel_cost(MI250, KernelParams(32, 32, 8), FP64, FP64)
        spilled = panel_cost(MI250, p64, FP64, FP64)
        # per-iteration cost more than doubles beyond the 2x work scaling
        assert spilled.compute_seconds > 4.0 * clean.compute_seconds

    def test_no_spill_on_h100(self):
        base = CostCoefficients()
        no_spill = base.with_(panel_spill_exponent=0.0)
        a = panel_cost(H100, KernelParams(64, 32, 8), FP64, FP64, coeffs=base)
        b = panel_cost(H100, KernelParams(64, 32, 8), FP64, FP64, coeffs=no_spill)
        assert a.seconds == pytest.approx(b.seconds)  # 32 KB < 256 KB L1

    def test_clock_scaling(self):
        fast = panel_cost(H100, P, FP32, FP32)
        slow = panel_cost(MI250, P, FP32, FP32)  # lower clock
        assert slow.compute_seconds > fast.compute_seconds


class TestUpdateCost:
    def test_positive_and_scales_with_width(self):
        c1 = update_cost(H100, P, FP32, FP32, width_cols=1024)
        c4 = update_cost(H100, P, FP32, FP32, width_cols=4096)
        assert 0 < c1.seconds < c4.seconds
        assert c4.flops == pytest.approx(4 * c1.flops)

    def test_fused_rows_save_top_row_traffic(self):
        """Figure 2: fused kernel loads Y once instead of once per row."""
        r = 8
        fused = update_cost(H100, P, FP32, FP32, 4096, nrows=r, has_top_row=True)
        unfused_bytes = r * update_cost(
            H100, P, FP32, FP32, 4096, nrows=1, has_top_row=True
        ).bytes
        assert fused.bytes < unfused_bytes

    def test_flops_identical_fused_unfused(self):
        r = 8
        fused = update_cost(H100, P, FP32, FP32, 4096, nrows=r)
        single = update_cost(H100, P, FP32, FP32, 4096, nrows=1)
        assert fused.flops == pytest.approx(r * single.flops)

    def test_divergence_penalty_on_amd(self):
        """COLPERBLOCK below the wavefront hurts more on MI250."""
        cpb32 = update_cost(MI250, KernelParams(32, 32, 8), FP32, FP32, 65536)
        cpb16 = update_cost(MI250, KernelParams(32, 16, 8), FP32, FP32, 65536)
        assert cpb16.seconds > cpb32.seconds

    def test_register_spill_penalty_large_tile_fp64(self):
        base = update_cost(
            H100, KernelParams(128, 32, 8), FP64, FP64, 65536
        )
        no_spill = update_cost(
            H100,
            KernelParams(128, 32, 8),
            FP64,
            FP64,
            65536,
            coeffs=DEFAULT_COEFFS.with_(update_spill_penalty=0.0),
        )
        # 2*128*8 = 2 KiB private > 1 KiB budget -> slower with penalty on
        assert base.compute_seconds > no_spill.compute_seconds

    def test_storage_precision_drives_bytes(self):
        fp16 = update_cost(H100, P, Precision.FP16, FP32, 4096)
        fp32 = update_cost(H100, P, FP32, FP32, 4096)
        assert fp16.bytes == pytest.approx(fp32.bytes / 2)


class TestBrdCost:
    def test_scales_with_band(self):
        c32 = brd_cost(H100, 4096, 32, FP32, FP32)
        c64 = brd_cost(H100, 4096, 64, FP32, FP32)
        assert c64.seconds > c32.seconds
        assert c64.flops == pytest.approx(2 * c32.flops)

    def test_trivial_band_free(self):
        assert brd_cost(H100, 4096, 1, FP32, FP32).seconds == 0.0
        assert brd_cost(H100, 1, 32, FP32, FP32).seconds == 0.0

    def test_pipeline_saturation(self):
        """Per-n^2 latency falls as sweeps overlap at large sizes."""
        t_small = brd_cost(H100, 512, 32, FP32, FP32).seconds / 512**2
        t_large = brd_cost(H100, 32768, 32, FP32, FP32).seconds / 32768**2
        assert t_large < t_small


class TestSolveAndTransfer:
    def test_solve_scales_quadratically(self):
        t1 = bidiag_solve_cost(H100, 4096, FP32).compute_seconds
        t2 = bidiag_solve_cost(H100, 8192, FP32).compute_seconds
        assert t2 == pytest.approx(4 * t1)

    def test_solve_has_fixed_overhead(self):
        t = bidiag_solve_cost(H100, 2, FP32).seconds
        assert t >= DEFAULT_COEFFS.cpu_call_overhead_s

    def test_transfer(self):
        c = transfer_cost(25e9)  # one second at 25 GB/s
        assert c.seconds == pytest.approx(1.0)


class TestCoefficients:
    def test_with_replaces(self):
        c = DEFAULT_COEFFS.with_(cpu_gflops=123.0)
        assert c.cpu_gflops == 123.0
        assert DEFAULT_COEFFS.cpu_gflops != 123.0

    def test_frozen(self):
        with pytest.raises(Exception):
            DEFAULT_COEFFS.cpu_gflops = 1.0  # type: ignore[misc]
