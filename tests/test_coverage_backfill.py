"""Coverage backfill for the timeline, occupancy and replay modules.

Targets the branches the original suites left dark: the tracer's
overhead-exclusive stage accounting, occupancy saturation/clamping edges,
the trace-generator guard messages, and - above all - the ON/OFF
modulated :func:`repro.serve.replay.bursty_trace` generator, which had no
tests at all.  Together with the virtual-clock shed / spill paths of
:func:`repro.serve.replay.simulate_service`, these pin every reachable
statement of the three modules.
"""

import numpy as np
import pytest

from repro import Solver
from repro.backends import get_device
from repro.errors import InvalidParamsError
from repro.serve.replay import bursty_trace, poisson_trace, simulate_service
from repro.sim.costmodel import LaunchCost
from repro.sim.occupancy import (
    SATURATION_THREADS_PER_SM,
    update_occupancy,
    warp_utilization,
)
from repro.sim.params import KernelParams
from repro.sim.tracing import LaunchRecord, Stage, Tracer


def _rec(kernel="geqrt", stage=Stage.PANEL, seconds=1.0, overhead=0.5,
         flops=10.0, nbytes=20.0):
    return LaunchRecord(
        kernel=kernel, stage=stage,
        cost=LaunchCost(seconds=seconds, flops=flops, bytes=nbytes),
        overhead_s=overhead,
    )


class TestTracerAccounting:
    """Overhead attribution and the aggregate views."""

    def test_record_seconds_property(self):
        rec = _rec(seconds=2.0, overhead=0.25)
        assert rec.seconds == 2.25

    def test_stage_seconds_excluding_overhead(self):
        tr = Tracer()
        tr.record(_rec(seconds=2.0, overhead=0.5))
        assert tr.stage_seconds(Stage.PANEL) == 2.5
        assert tr.stage_seconds(Stage.PANEL, include_overhead=False) == 2.0

    def test_unknown_stage_is_zero(self):
        tr = Tracer()
        tr.record(_rec())
        assert tr.stage_seconds(Stage.COMM) == 0.0
        assert tr.stage_seconds(Stage.COMM, include_overhead=False) == 0.0

    def test_total_seconds_sums_overheads(self):
        tr = Tracer()
        tr.record(_rec(stage=Stage.PANEL, seconds=1.0, overhead=0.5))
        tr.record(_rec(stage=Stage.UPDATE, seconds=2.0, overhead=0.25))
        assert tr.total_seconds == pytest.approx(3.75)

    def test_launch_count_filters_by_kernel(self):
        tr = Tracer()
        tr.record(_rec(kernel="geqrt"))
        tr.record(_rec(kernel="tsqrt"))
        tr.record(_rec(kernel="tsqrt"))
        assert tr.launch_count() == 3
        assert tr.launch_count("tsqrt") == 2
        assert tr.launch_count("unmqr") == 0

    def test_flops_and_bytes_accumulate(self):
        tr = Tracer()
        tr.record(_rec(flops=10.0, nbytes=20.0))
        tr.record(_rec(flops=5.0, nbytes=7.0))
        assert tr.total_flops == 15.0
        assert tr.total_bytes == 27.0

    def test_reset_clears_every_tally(self):
        tr = Tracer()
        tr.record(_rec())
        tr.reset()
        assert tr.records == []
        assert tr.total_seconds == 0.0
        assert tr.total_flops == 0.0
        assert tr.total_bytes == 0.0
        assert tr.launch_count() == 0
        assert tr.stage_breakdown() == {}

    def test_keep_records_false_still_aggregates(self):
        tr = Tracer(keep_records=False)
        tr.record(_rec(seconds=1.0, overhead=0.5))
        assert tr.records == []
        assert tr.total_seconds == 1.5
        assert tr.kernel_counts() == {"geqrt": 1}


class TestOccupancyEdges:
    """Limit selection, clamping and the derived utilization factors."""

    def test_warp_utilization_exact_multiple(self):
        assert warp_utilization(64, 32) == 1.0

    def test_warp_utilization_partial_warp(self):
        assert warp_utilization(48, 32) == 0.75

    def test_occupancy_clamped_at_one(self):
        spec = get_device("h100")
        info = update_occupancy(spec, KernelParams(), 10**6, 8, 32)
        assert info.occupancy == 1.0
        assert info.waves >= 1

    def test_single_block_occupancy_fraction(self):
        spec = get_device("h100")
        params = KernelParams()
        info = update_occupancy(spec, params, 1, 8, 32)
        expected = params.colperblock / (
            spec.sm_count * SATURATION_THREADS_PER_SM
        )
        assert info.occupancy == pytest.approx(expected)
        assert info.waves == 1

    def test_register_pressure_lowers_blocks_per_sm(self):
        spec = get_device("h100")
        light = update_occupancy(spec, KernelParams(), 4096, 4, 32)
        heavy = update_occupancy(spec, KernelParams(), 4096, 8, 4096)
        assert heavy.blocks_per_sm <= light.blocks_per_sm
        assert heavy.blocks_per_sm >= 1

    def test_effective_parallel_fraction_product(self):
        spec = get_device("mi250")
        info = update_occupancy(spec, KernelParams(), 512, 8, 32)
        assert info.effective_parallel_fraction == pytest.approx(
            info.occupancy * info.warp_util
        )


class TestTraceGuards:
    """Both generators fail fast with messages naming the bad value."""

    def test_poisson_negative_count(self):
        with pytest.raises(InvalidParamsError) as excinfo:
            poisson_trace(-1, 100.0)
        assert "need a non-negative count, got -1" in str(excinfo.value)

    def test_poisson_nonpositive_rate(self):
        with pytest.raises(InvalidParamsError) as excinfo:
            poisson_trace(10, 0.0)
        assert "need a positive rate, got 0.0" in str(excinfo.value)

    def test_bursty_negative_count(self):
        with pytest.raises(InvalidParamsError) as excinfo:
            bursty_trace(-2, 100.0)
        assert "need a non-negative count, got -2" in str(excinfo.value)

    def test_bursty_nonpositive_on_rate(self):
        with pytest.raises(InvalidParamsError) as excinfo:
            bursty_trace(10, -5.0)
        assert "need a positive ON rate, got -5.0" in str(excinfo.value)

    @pytest.mark.parametrize("on_s,off_s", [(0.0, 0.1), (0.1, 0.0)])
    def test_bursty_nonpositive_periods(self, on_s, off_s):
        with pytest.raises(InvalidParamsError) as excinfo:
            bursty_trace(10, 100.0, mean_on_s=on_s, mean_off_s=off_s)
        assert "need positive mean ON/OFF durations" in str(excinfo.value)


class TestBurstyTrace:
    """The ON/OFF modulated generator: shape, determinism, burstiness."""

    def test_count_sizes_and_ordering(self):
        trace = bursty_trace(64, 2000.0, ns=(96, 128), seed=7)
        assert len(trace) == 64
        assert all(r.n in (96, 128) for r in trace)
        ts = [r.t for r in trace]
        assert ts == sorted(ts)
        assert all(t > 0 for t in ts)

    def test_seeded_determinism(self):
        a = bursty_trace(50, 1500.0, ns=(128,), seed=11)
        b = bursty_trace(50, 1500.0, ns=(128,), seed=11)
        assert a == b
        c = bursty_trace(50, 1500.0, ns=(128,), seed=12)
        assert a != c

    def test_slo_and_zero_count(self):
        assert bursty_trace(0, 100.0) == []
        trace = bursty_trace(5, 1000.0, slo_s=0.25, seed=1)
        assert all(r.slo_s == 0.25 for r in trace)

    def test_off_periods_create_bursts(self):
        # silent OFF periods force the peak arrival rate well above the
        # mean: the largest inter-arrival gap spans at least one OFF
        # period while the median gap tracks the ON rate
        trace = bursty_trace(
            400, 5000.0, mean_on_s=0.01, mean_off_s=0.05, seed=3
        )
        gaps = np.diff([r.t for r in trace])
        assert float(np.max(gaps)) > 10 * float(np.median(gaps))

    def test_nonzero_off_rate_keeps_arriving(self):
        # with rate_off_hz > 0 the OFF periods still emit (slowly), so
        # the trace mixes both regimes instead of hard silences
        trace = bursty_trace(
            200, 4000.0, rate_off_hz=200.0, mean_on_s=0.01,
            mean_off_s=0.05, seed=9,
        )
        assert len(trace) == 200
        ts = [r.t for r in trace]
        assert ts == sorted(ts)


class TestSimulateServiceEdges:
    """Virtual-clock branches: empty traces, shedding, spilled batches."""

    def test_empty_trace(self):
        stats = simulate_service([], Solver(precision="fp32"))
        assert stats.submitted == 0
        assert stats.completed == 0
        assert stats.batches == 0

    def test_hopeless_slo_sheds_everything(self):
        solver = Solver(precision="fp32")
        trace = poisson_trace(20, 500.0, ns=(256,), slo_s=1e-12, seed=2)
        stats = simulate_service(trace, solver, max_batch=4)
        assert stats.shed == 20
        assert stats.completed == 0

    def test_tight_budget_spills_batches(self):
        solver = Solver(precision="fp32")
        trace = poisson_trace(24, 2000.0, ns=(256,), seed=5)
        roomy = simulate_service(trace, solver, max_batch=8)
        tight = simulate_service(
            trace, solver, max_batch=8, mem_budget_gb=0.002
        )
        assert roomy.spilled_batches == 0
        assert tight.spilled_batches > 0
        assert tight.completed == roomy.completed == 24

    def test_bursty_trace_replays_deterministically(self):
        solver = Solver(precision="fp32")
        trace = bursty_trace(
            60, 3000.0, ns=(128, 160), mean_on_s=0.01, mean_off_s=0.03,
            slo_s=0.5, seed=4,
        )
        s1 = simulate_service(trace, solver, max_batch=6)
        s2 = simulate_service(trace, solver, max_batch=6)
        assert s1 == s2
        assert s1.submitted == 60
        assert s1.completed + s1.shed == 60
