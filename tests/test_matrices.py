"""Tests for the random test-matrix substrate."""

import numpy as np
import pytest

from tests.conftest import rel_err, scipy_svdvals
from repro.matrices import (
    DISTRIBUTIONS,
    arithmetic_sigma,
    get_distribution,
    haar_orthogonal,
    logarithmic_sigma,
    make_test_matrix,
    quarter_circle_sigma,
)


class TestDistributions:
    @pytest.mark.parametrize("name", sorted(DISTRIBUTIONS))
    def test_in_unit_interval_descending(self, name):
        s = DISTRIBUTIONS[name](50)
        assert s.shape == (50,)
        assert np.all(s > 0) and np.all(s <= 1.0)
        assert np.all(np.diff(s) <= 0)

    def test_arithmetic_even_spacing(self):
        s = arithmetic_sigma(10)
        np.testing.assert_allclose(np.diff(s), -0.1)
        assert s[0] == 1.0

    def test_logarithmic_geometric_spacing(self):
        s = logarithmic_sigma(11, decades=4.0)
        ratios = s[1:] / s[:-1]
        np.testing.assert_allclose(ratios, ratios[0])
        assert s[0] == pytest.approx(1.0)
        assert s[-1] == pytest.approx(1e-4)

    def test_quarter_circle_quantiles(self):
        """Quantiles must reproduce the quarter-circle CDF."""
        n = 2000
        s = quarter_circle_sigma(n)
        # the density is (4/pi) sqrt(1-x^2): mass below 0.5 is F(0.5)
        frac_below_half = np.mean(s < 0.5)
        expected = (2 / np.pi) * (0.5 * np.sqrt(0.75) + np.arcsin(0.5))
        assert frac_below_half == pytest.approx(expected, abs=2e-3)

    def test_single_value(self):
        for name in DISTRIBUTIONS:
            assert DISTRIBUTIONS[name](1).shape == (1,)

    def test_get_distribution_aliases(self):
        assert get_distribution("quarter_circle") is quarter_circle_sigma
        with pytest.raises(KeyError):
            get_distribution("uniform")

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            arithmetic_sigma(0)


class TestHaar:
    def test_orthogonal(self, rng):
        Q = haar_orthogonal(30, rng)
        np.testing.assert_allclose(Q @ Q.T, np.eye(30), atol=1e-12)

    def test_determinant_pm_one(self, rng):
        Q = haar_orthogonal(10, rng)
        assert abs(abs(np.linalg.det(Q)) - 1.0) < 1e-12

    def test_distribution_not_biased(self):
        """Sign correction: mean diagonal element should be ~0, not positive."""
        vals = []
        for seed in range(200):
            Q = haar_orthogonal(4, np.random.default_rng(seed))
            vals.append(np.trace(Q))
        assert abs(np.mean(vals)) < 0.3  # uncorrected QR gives ~+2.7


class TestMakeTestMatrix:
    def test_exact_singular_values(self):
        tm = make_test_matrix(40, "arithmetic", seed=3)
        assert rel_err(scipy_svdvals(tm.A), tm.sigma) < 1e-13

    def test_logarithmic_fp32(self):
        tm = make_test_matrix(32, "logarithmic", precision="fp32", seed=1)
        assert tm.A.dtype == np.float32
        assert rel_err(scipy_svdvals(tm.A), tm.sigma) < 1e-6

    def test_seed_reproducible(self):
        a = make_test_matrix(16, "quarter-circle", seed=7).A
        b = make_test_matrix(16, "quarter-circle", seed=7).A
        np.testing.assert_array_equal(a, b)
        c = make_test_matrix(16, "quarter-circle", seed=8).A
        assert not np.array_equal(a, c)

    def test_custom_sigma(self):
        sigma = np.array([4.0, 2.0, 1.0, 0.5])
        tm = make_test_matrix(4, sigma=sigma, seed=0)
        assert tm.distribution == "custom"
        assert rel_err(scipy_svdvals(tm.A), sigma) < 1e-13

    def test_sigma_shape_checked(self):
        with pytest.raises(ValueError):
            make_test_matrix(4, sigma=np.ones(3))

    def test_sigma_attribute_sorted(self):
        tm = make_test_matrix(8, sigma=np.array([1, 3, 2, 5, 4, 8, 7, 6.0]))
        assert np.all(np.diff(tm.sigma) <= 0)
