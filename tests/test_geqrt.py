"""Tests for the GEQRT tile kernel (Algorithm 3)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.kernels import geqrt, unmqr

EPS = {d: float(np.finfo(d).eps) for d in (np.float16, np.float32, np.float64)}


def explicit_q(V: np.ndarray, tau: np.ndarray) -> np.ndarray:
    """Rebuild Q = H_1 H_2 ... from the stored reflectors."""
    ts = V.shape[0]
    Q = np.eye(ts)
    for k in range(ts - 1):
        v = np.zeros(ts)
        v[k] = 1.0
        v[k + 1 :] = V[k + 1 :, k]
        H = np.eye(ts) - tau[k] * np.outer(v, v)
        Q = Q @ H
    return Q


class TestGeqrtCorrectness:
    @pytest.mark.parametrize("ts", [2, 4, 8, 16, 32])
    def test_reconstruction(self, rng, ts):
        A = rng.standard_normal((ts, ts))
        W = A.copy()
        tau = np.zeros(ts)
        geqrt(W, tau, EPS[np.float64])
        R = np.triu(W)
        Q = explicit_q(W, tau)
        np.testing.assert_allclose(Q @ R, A, atol=1e-12 * ts)

    def test_r_matches_numpy_up_to_signs(self, rng):
        ts = 16
        A = rng.standard_normal((ts, ts))
        W = A.copy()
        tau = np.zeros(ts)
        geqrt(W, tau, EPS[np.float64])
        R_ref = np.linalg.qr(A, mode="r")
        np.testing.assert_allclose(
            np.abs(np.diagonal(np.triu(W))),
            np.abs(np.diagonal(R_ref)),
            rtol=1e-10,
        )

    def test_q_orthogonal(self, rng):
        ts = 12
        W = rng.standard_normal((ts, ts))
        tau = np.zeros(ts)
        geqrt(W, tau, EPS[np.float64])
        Q = explicit_q(W, tau)
        np.testing.assert_allclose(Q.T @ Q, np.eye(ts), atol=1e-12)

    def test_last_tau_zero(self, rng):
        ts = 8
        W = rng.standard_normal((ts, ts))
        tau = np.zeros(ts)
        geqrt(W, tau, EPS[np.float64])
        assert tau[ts - 1] == 0.0

    def test_zero_tile(self):
        """Padding tiles are exactly zero: the eps-correction path."""
        ts = 8
        W = np.zeros((ts, ts))
        tau = np.zeros(ts)
        geqrt(W, tau, EPS[np.float64])
        np.testing.assert_array_equal(np.triu(W), np.zeros((ts, ts)))

    def test_zero_column_inside_tile(self, rng):
        ts = 8
        A = rng.standard_normal((ts, ts))
        A[:, 3] = 0.0
        W = A.copy()
        tau = np.zeros(ts)
        geqrt(W, tau, EPS[np.float64])
        Q = explicit_q(W, tau)
        np.testing.assert_allclose(Q @ np.triu(W), A, atol=1e-12)

    def test_works_on_transposed_view(self, rng):
        """LQ sweeps pass lazy-transpose views; strides must not matter."""
        ts = 8
        A = rng.standard_normal((ts, ts))
        W1 = A.T.copy()
        W2 = np.ascontiguousarray(A.T)
        base = A.copy()
        view = base.T  # non-contiguous view
        tau_v = np.zeros(ts)
        tau_c = np.zeros(ts)
        geqrt(view, tau_v, EPS[np.float64])
        geqrt(W2, tau_c, EPS[np.float64])
        np.testing.assert_allclose(np.asarray(view), W2, atol=1e-14)
        np.testing.assert_allclose(tau_v, tau_c, atol=1e-14)

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            geqrt(np.zeros((4, 5)), np.zeros(4), 1e-16)

    def test_fp16_upcast_path(self, rng):
        ts = 8
        A = rng.standard_normal((ts, ts)).astype(np.float16)
        W = A.copy()
        tau = np.zeros(ts, dtype=np.float16)
        geqrt(W, tau, EPS[np.float16], compute_dtype=np.float32)
        assert W.dtype == np.float16
        # result approximates the float64 factorization
        W64 = A.astype(np.float64)
        tau64 = np.zeros(ts)
        geqrt(W64, tau64, EPS[np.float64])
        np.testing.assert_allclose(
            np.abs(np.diagonal(W).astype(np.float64)),
            np.abs(np.diagonal(W64)),
            rtol=0.05,
            atol=0.02,
        )

    @given(
        hnp.arrays(
            np.float64,
            (8, 8),
            elements=st.floats(-100, 100, allow_nan=False, width=64),
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_property_reconstruction(self, A):
        W = A.copy()
        tau = np.zeros(8)
        geqrt(W, tau, EPS[np.float64])
        Q = explicit_q(W, tau)
        scale = max(1.0, np.abs(A).max())
        np.testing.assert_allclose(Q @ np.triu(W), A, atol=1e-10 * scale)


class TestGeqrtUnmqrConsistency:
    def test_unmqr_applies_qt(self, rng):
        """UNMQR(X) must equal Q^T X from the explicit factors."""
        ts, m = 12, 20
        A = rng.standard_normal((ts, ts))
        X = rng.standard_normal((ts, m))
        W = A.copy()
        tau = np.zeros(ts)
        geqrt(W, tau, EPS[np.float64])
        Q = explicit_q(W, tau)
        X1 = X.copy()
        unmqr(W, tau, X1)
        np.testing.assert_allclose(X1, Q.T @ X, atol=1e-12)

    def test_unmqr_empty_width_noop(self, rng):
        ts = 8
        W = rng.standard_normal((ts, ts))
        tau = np.zeros(ts)
        geqrt(W, tau, EPS[np.float64])
        X = np.zeros((ts, 0))
        unmqr(W, tau, X)  # must not raise

    def test_unmqr_row_mismatch(self):
        with pytest.raises(ValueError):
            unmqr(np.zeros((4, 4)), np.zeros(4), np.zeros((5, 3)))
