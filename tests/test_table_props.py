"""Property tests for the struct-of-arrays pricing layer (repro.sim.table).

The layer's invariant (see ARCHITECTURE.md): **the scalar node loop is
the oracle, the array path is the implementation**.  These tests pin it
with hypothesis across the composition matrix - backends x precisions x
fused x streams x ngpu x out_of_core x batch:

* vectorized table pricing is *float-identical* (``==``, not allclose)
  to pricing every node through ``price_node``;
* bound shape-parametric tables (:func:`repro.core.svd.bind_svd_table`,
  :func:`repro.core.batched.bind_batched_table`) are node-for-node equal
  to the tables of directly-emitted graphs.
"""

import numpy as np

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro import Solver
from repro.core.batched import bind_batched_table, emit_batched_graph
from repro.core.svd import bind_svd_table, emit_svd_graph
from repro.errors import UnsupportedPrecisionError
from repro.sim.graph import AnalyticExecutor, node_overhead_s, price_node
from repro.sim.outofcore import rewrite_out_of_core
from repro.sim.partition import (
    partition_graph,
    price_partitioned,
    price_partitioned_scalar,
)
from repro.sim.table import clear_bound_tables, price_table, stream_costs


def resolved(backend, precision):
    """(config, storage) for a pair, rejecting the paper's support gaps."""
    try:
        config = Solver(backend=backend, precision=precision).config
    except UnsupportedPrecisionError:
        assume(False)
    return config, config.require_precision("test")


def assert_breakdowns_identical(a, b):
    """Every float field equal bit for bit, launches equal exactly."""
    for attr in (
        "panel_s", "update_s", "brd_s", "solve_s", "comm_s", "io_s",
        "total_s", "flops", "bytes",
    ):
        assert getattr(a, attr) == getattr(b, attr), attr
    assert a.launches == b.launches


def assert_tables_equal(bound, emitted):
    """Node-for-node equality up to key/kind *numbering* (names/tuples).

    The bound builders lay out key ids in closed form while
    ``NodeTable.from_graph`` numbers them first-seen (and may dedupe
    colliding update widths across chains), so ids are compared through
    the tuples and names they denote - the representation pricing
    consumes.
    """
    for name in ("kind", "n", "npad", "ts", "nbt", "ngpu", "out_of_core",
                 "kinds"):
        assert getattr(bound, name) == getattr(emitted, name), name
    assert len(bound) == len(emitted)
    for col in ("stage_id", "counts", "primary", "device", "sweep"):
        assert np.array_equal(getattr(bound, col), getattr(emitted, col)), col
    bk, ek = bound.key_tuples(), emitted.key_tuples()
    for i in range(len(bound)):
        assert bound.kinds[bound.kind_id[i]] == emitted.kinds[
            emitted.kind_id[i]
        ], f"node {i} kind"
        assert bk[bound.key_id[i]] == ek[emitted.key_id[i]], f"node {i} key"


BACKENDS = ("h100", "rtx4060", "mi250", "m1pro")
PRECISIONS = ("fp16", "fp32", "fp64")


class TestVectorizedPricingIsTheScalarOracle:
    """price_table == per-node price_node loop, float for float."""

    @given(
        backend=st.sampled_from(BACKENDS),
        precision=st.sampled_from(PRECISIONS),
        fused=st.booleans(),
        counted=st.booleans(),
        n=st.integers(1, 700),
    )
    @settings(max_examples=40, deadline=None)
    def test_square_serial(self, backend, precision, fused, counted, n):
        config, storage = resolved(backend, precision)
        config = config.with_(fused=fused)
        graph = emit_svd_graph(n, config, counted=counted)
        table_bd = AnalyticExecutor(config, storage).run(graph)
        scalar_bd = AnalyticExecutor(config, storage).run_scalar(graph)
        assert_breakdowns_identical(table_bd, scalar_bd)

    @given(
        backend=st.sampled_from(BACKENDS),
        precision=st.sampled_from(PRECISIONS),
        n=st.integers(1, 300),
        batch=st.integers(1, 24),
        streams=st.integers(1, 4),
    )
    @settings(max_examples=30, deadline=None)
    def test_batched_serial(self, backend, precision, n, batch, streams):
        config, storage = resolved(backend, precision)
        graph = emit_batched_graph(n, batch, config, streams=streams)
        table_bd = AnalyticExecutor(config, storage).run(graph)
        scalar_bd = AnalyticExecutor(config, storage).run_scalar(graph)
        assert_breakdowns_identical(table_bd, scalar_bd)

    @given(
        precision=st.sampled_from(PRECISIONS),
        n=st.integers(64, 600),
        ngpu=st.integers(2, 4),
        out_of_core=st.booleans(),
        batched=st.booleans(),
    )
    @settings(max_examples=25, deadline=None)
    def test_partitioned(self, precision, n, ngpu, out_of_core, batched):
        config, storage = resolved("h100", precision)
        if batched:
            graph = emit_batched_graph(n, 6, config)
        else:
            graph = emit_svd_graph(n, config)
        graph = partition_graph(graph, ngpu, config.link_spec(None))
        if out_of_core:
            # the smallest budget the rewriter accepts, so transfer nodes
            # appear whenever the per-device shard exceeds it
            if batched:
                per_prob = graph.npad**2 * storage.sizeof * 1.25
                budget = 1.35 * per_prob
            else:
                ts, nbt, npad = graph.ts, graph.nbt, graph.npad
                band_tiles = -(-(npad * (ts + 1)) // ts**2)
                cap = 3 * nbt + band_tiles + 4
                budget = (cap + 0.5) * ts * ts * storage.sizeof * 1.25
            graph = rewrite_out_of_core(
                graph, config, storage, budget_bytes=budget
            )
        table_bd = price_partitioned(graph, config, storage)
        scalar_bd = price_partitioned_scalar(graph, config, storage)
        assert_breakdowns_identical(table_bd, scalar_bd)
        assert table_bd.ngpu == scalar_bd.ngpu

    @given(
        precision=st.sampled_from(PRECISIONS),
        n=st.integers(32, 500),
        streams=st.integers(2, 4),
        out_of_core=st.booleans(),
    )
    @settings(max_examples=25, deadline=None)
    def test_stream_costs(self, precision, n, streams, out_of_core):
        """The scheduler's array pricing == the per-node scalar loop."""
        config, storage = resolved("h100", precision)
        graph = emit_svd_graph(n, config, streams=streams)
        if out_of_core:
            budget = 8 * graph.ts * graph.npad * storage.sizeof
            graph = rewrite_out_of_core(
                graph, config, storage, budget_bytes=budget
            )
        durs, stage_seconds, launches, serial_s = stream_costs(
            graph.table(), config, storage, None
        )
        spec = config.backend.device
        compute = config.backend.compute_precision(storage)
        ref_durs: list = []
        ref_stages: dict = {}
        ref_launches: dict = {}
        cache: dict = {}
        for node in graph.nodes:
            cost = price_node(node, config, storage, compute, cache)
            dur = cost.seconds + node_overhead_s(node, spec)
            ref_durs.append(dur)
            ref_stages[node.stage] = ref_stages.get(node.stage, 0.0) + dur
            ref_launches[node.kind] = ref_launches.get(node.kind, 0) + 1
        assert durs.tolist() == ref_durs
        assert stage_seconds == ref_stages
        assert launches == ref_launches
        assert serial_s == sum(ref_durs)


class TestBoundTablesMatchEmittedGraphs:
    """Shape-parametric binding == direct emission, node for node."""

    @given(
        backend=st.sampled_from(BACKENDS),
        precision=st.sampled_from(PRECISIONS),
        fused=st.booleans(),
        n=st.integers(1, 900),
    )
    @settings(max_examples=40, deadline=None)
    def test_square(self, backend, precision, fused, n):
        config, storage = resolved(backend, precision)
        config = config.with_(fused=fused)
        clear_bound_tables()
        bound = bind_svd_table(n, config)
        emitted = emit_svd_graph(n, config, counted=True).table()
        assert_tables_equal(bound, emitted)
        assert_breakdowns_identical(
            price_table(bound, config, storage, None),
            price_table(emitted, config, storage, None),
        )

    @given(
        backend=st.sampled_from(BACKENDS),
        precision=st.sampled_from(PRECISIONS),
        n=st.integers(1, 400),
        batch=st.integers(1, 24),
        streams=st.integers(1, 5),
    )
    @settings(max_examples=40, deadline=None)
    def test_batched(self, backend, precision, n, batch, streams):
        config, storage = resolved(backend, precision)
        clear_bound_tables()
        bound = bind_batched_table(n, batch, config, streams=streams)
        emitted = emit_batched_graph(n, batch, config, streams=streams).table()
        assert_tables_equal(bound, emitted)
        assert_breakdowns_identical(
            price_table(bound, config, storage, None),
            price_table(emitted, config, storage, None),
        )


class TestCacheOverlaySemantics:
    """A shared LaunchCost cache behaves identically on both paths."""

    @given(
        n=st.integers(16, 400),
        precision=st.sampled_from(PRECISIONS),
    )
    @settings(max_examples=15, deadline=None)
    def test_cache_filled_identically(self, n, precision):
        config, storage = resolved("h100", precision)
        graph = emit_svd_graph(n, config)
        c_table: dict = {}
        c_scalar: dict = {}
        bd_t = AnalyticExecutor(config, storage, cache=c_table).run(graph)
        bd_s = AnalyticExecutor(config, storage, cache=c_scalar).run_scalar(
            graph
        )
        assert_breakdowns_identical(bd_t, bd_s)
        assert set(c_table) == set(c_scalar)
        for key, cost in c_scalar.items():
            assert c_table[key] == cost, key
        # replay through the warm cache: still identical
        bd_t2 = AnalyticExecutor(config, storage, cache=c_table).run(graph)
        assert_breakdowns_identical(bd_t2, bd_s)
