"""Tests for the serving layer (repro.serve): bitwise identity, admission.

Async paths are driven through ``asyncio.run`` inside plain test
functions so the suite passes with or without pytest-asyncio installed.
"""

import asyncio

import numpy as np
import pytest

import repro

from repro import ShedError, Solver
from repro.errors import CapacityError, InvalidParamsError, ShapeError
from repro.serve import (
    AdmissionController,
    Batch,
    BatchRunner,
    ServiceStats,
    SvdRequest,
    simulate_service,
    poisson_trace,
)
from repro.tuning import shape_class


def serve_all(solver, mats, slos=None, **kwargs):
    """Submit every matrix, await every result, return (results, stats)."""

    async def go():
        async with solver.serve(**kwargs) as svc:
            futs = []
            for i, A in enumerate(mats):
                slo = slos[i] if slos is not None else None
                futs.append(await svc.submit(A, slo_s=slo))
            results = []
            for f in futs:
                try:
                    results.append(await f)
                except ShedError as err:
                    results.append(err)
            return results, svc.stats()

    return asyncio.run(go())


class TestBitwiseIdentity:
    """Served values == synchronous Solver.solve, bit for bit."""

    @pytest.mark.parametrize(
        "backend,precision",
        [
            ("h100", "fp32"),
            ("h100", "fp64"),
            ("h100", "fp16"),
            ("mi250", "fp32"),
            ("m1pro", "fp32"),
        ],
    )
    def test_across_backends_and_precisions(self, backend, precision, rng):
        solver = Solver(backend=backend, precision=precision)
        mats = [rng.standard_normal((n, n)) for n in (64, 60, 48, 64)]
        results, stats = serve_all(
            solver, mats, max_batch=4, max_wait_s=0.01
        )
        for A, served in zip(mats, results):
            ref = solver.solve(A)
            assert served.dtype == ref.dtype
            assert np.array_equal(served, ref)
        assert stats.completed == len(mats)

    def test_heterogeneous_shapes_share_one_batch(self, rng):
        """Different n in one shape class run as ONE batched graph."""
        solver = Solver(backend="h100", precision="fp32")
        ns = (97, 100, 120, 128)
        cls = {shape_class(n, solver.config) for n in ns}
        assert len(cls) == 1  # all pad to npad=128 at ts=32
        mats = [rng.standard_normal((n, n)) for n in ns]
        results, stats = serve_all(
            solver, mats, max_batch=4, max_wait_s=0.05
        )
        assert stats.batches == 1
        assert stats.mean_batch_size == 4.0
        for A, served in zip(mats, results):
            assert np.array_equal(served, solver.solve(A))

    def test_rescaled_inputs_stay_bitwise(self, rng):
        """The rescale factor comes from the original matrix, not npad."""
        solver = Solver(backend="h100", precision="fp16")
        # fp16 overflow range: forces a non-unit rescale factor
        mats = [
            rng.standard_normal((60, 60)) * 300.0,
            rng.standard_normal((64, 64)) * 1e-6,
        ]
        results, _ = serve_all(solver, mats, max_batch=2, max_wait_s=0.05)
        for A, served in zip(mats, results):
            assert np.array_equal(served, solver.solve(A))

    def test_spilled_batch_stays_bitwise(self, rng):
        """An out-of-core spilled batch returns identical values."""
        solver = Solver(backend="h100", precision="fp64")
        # budget holds 3 of the 6 padded 64x64 fp64 working sets
        budget_gb = 3 * 64 * 64 * 8 * 1.25 / 2**30
        mats = [rng.standard_normal((64, 64)) for _ in range(5)]
        mats.append(rng.standard_normal((60, 60)))
        results, stats = serve_all(
            solver, mats, max_batch=8, max_wait_s=0.02,
            mem_budget_gb=budget_gb,
        )
        assert stats.spilled_batches >= 1
        for A, served in zip(mats, results):
            assert np.array_equal(served, solver.solve(A))

    def test_tuned_streams_stay_bitwise(self, rng):
        """tune=True may pick streams > 1; numerics must not change."""
        solver = Solver(backend="h100", precision="fp32")
        mats = [rng.standard_normal((64, 64)) for _ in range(6)]
        results, _ = serve_all(
            solver, mats, max_batch=6, max_wait_s=0.02, tune=True
        )
        for A, served in zip(mats, results):
            assert np.array_equal(served, solver.solve(A))


class TestSubmitValidation:
    def test_rejects_bad_inputs(self, rng):
        solver = Solver(backend="h100", precision="fp32")

        async def go():
            async with solver.serve() as svc:
                with pytest.raises(ShapeError):
                    await svc.submit(rng.standard_normal((4, 5)))
                with pytest.raises(ShapeError):
                    await svc.submit(np.zeros((0, 0)))
                bad = np.full((8, 8), np.nan)
                with pytest.raises(ShapeError):
                    await svc.submit(bad)
                with pytest.raises(InvalidParamsError):
                    await svc.submit(rng.standard_normal((8, 8)), slo_s=0.0)

        asyncio.run(go())

    def test_requires_explicit_precision_and_qr(self):
        with pytest.raises(Exception, match="precision"):
            Solver(backend="h100").serve()
        with pytest.raises(InvalidParamsError, match="method='qr'"):
            Solver(backend="h100", precision="fp32",
                   method="jacobi").serve()

    def test_submit_outside_context_raises(self, rng):
        solver = Solver(backend="h100", precision="fp32")
        svc = solver.serve()

        async def go():
            with pytest.raises(RuntimeError, match="not running"):
                await svc.submit(rng.standard_normal((8, 8)))

        asyncio.run(go())


class TestBackpressure:
    def test_submit_blocks_at_max_depth(self, rng):
        """The (max_depth+1)-th submit waits until a slot frees."""
        solver = Solver(backend="h100", precision="fp32")

        async def go():
            async with solver.serve(
                max_batch=2, max_wait_s=0.005, max_depth=2
            ) as svc:
                a = await svc.submit(rng.standard_normal((32, 32)))
                b = await svc.submit(rng.standard_normal((32, 32)))
                third = asyncio.ensure_future(
                    svc.submit(rng.standard_normal((32, 32)))
                )
                await asyncio.sleep(0)
                # both depth slots are held -> the third submit is parked
                assert not third.done()
                ra, rb = await a, await b
                fut = await third  # slots freed; submit completes now
                rc = await fut
                return ra, rb, rc

        ra, rb, rc = asyncio.run(go())
        assert all(len(r) > 0 for r in (ra, rb, rc))


class TestShedding:
    def test_impossible_slo_sheds_with_context(self, rng):
        solver = Solver(backend="h100", precision="fp32")
        mats = [rng.standard_normal((64, 64))]
        results, stats = serve_all(
            solver, mats, slos=[1e-9], max_batch=2, max_wait_s=0.002
        )
        (err,) = results
        assert isinstance(err, ShedError)
        assert isinstance(err, CapacityError)  # catchable as the base
        assert err.slo_s == 1e-9
        assert err.predicted_s is not None and err.predicted_s > 0
        assert stats.shed == 1 and stats.completed == 0

    def test_feasible_slo_is_served(self, rng):
        solver = Solver(backend="h100", precision="fp32")
        mats = [rng.standard_normal((48, 48))]
        results, stats = serve_all(
            solver, mats, slos=[30.0], max_batch=2, max_wait_s=0.002
        )
        assert np.array_equal(results[0], solver.solve(mats[0]))
        assert stats.shed == 0 and stats.slo_met == 1


class TestServiceStats:
    def test_accounting_is_consistent(self, rng):
        solver = Solver(backend="h100", precision="fp32")
        mats = [rng.standard_normal((64, 64)) for _ in range(5)]
        _, stats = serve_all(solver, mats, max_batch=2, max_wait_s=0.01)
        assert isinstance(stats, ServiceStats)
        assert stats.submitted == 5
        assert stats.completed + stats.shed == 5
        assert stats.batches >= 3  # 5 requests at max_batch=2
        assert stats.mean_batch_size <= 2.0
        assert 0.0 < stats.occupancy <= 1.0
        assert stats.p99_latency_s >= stats.p50_latency_s > 0.0
        # admission predicted == executed-graph price (same oracle)
        assert stats.replayed_s == pytest.approx(stats.predicted_s)
        # the second same-(class,count) batch hits both memo layers
        assert stats.graph_cache_hits >= 1
        assert stats.price_cache_hits >= 1
        assert "goodput" in stats.summary()


class TestAdmissionController:
    def test_spill_decision_prices_out_of_core(self):
        config = Solver(backend="h100", precision="fp64").config
        ctrl = AdmissionController(
            config, mem_budget_bytes=3 * 64 * 64 * 8 * 1.25
        )
        cls = shape_class(64, config)
        assert ctrl.capacity_for(cls) == 3
        in_core = ctrl.price(cls, 3)
        spilled = ctrl.price(cls, 6)
        assert not in_core.out_of_core
        assert spilled.out_of_core
        assert spilled.predicted_s > in_core.predicted_s

    def test_shedding_shrinks_then_admits_the_rest(self):
        """EDF shedding: hopeless requests go, feasible ones still run."""
        config = Solver(backend="h100", precision="fp32").config
        ctrl = AdmissionController(config)
        cls = shape_class(64, config)
        doomed = SvdRequest(seq=1, n=64, cls=cls, t_submit=0.0, slo_s=1e-12)
        fine = SvdRequest(seq=2, n=64, cls=cls, t_submit=0.0, slo_s=60.0)
        decision = ctrl.admit(Batch(cls=cls, requests=[doomed, fine]), now=0.0)
        assert decision.admitted == [fine]
        assert [r for r, _ in decision.shed] == [doomed]
        assert decision.predicted_s > 0

    def test_price_memo_hits(self):
        config = Solver(backend="h100", precision="fp32").config
        ctrl = AdmissionController(config)
        cls = shape_class(100, config)
        first = ctrl.price(cls, 4)
        second = ctrl.price(cls, 4)
        assert first is second
        assert ctrl.price_hits == 1 and ctrl.price_misses == 1

    def test_shed_cascade_rebinds_instead_of_reemitting(self, monkeypatch):
        """Call-count pin: a shed cascade never re-emits launch nodes.

        Shedding shrinks the batch and re-prices it, so one admit runs
        the oracle once per round.  Every round must be a bound-table
        rebind of the shared chain skeleton - zero emit_batched_graph
        calls, one skeleton build, one table bind per distinct count -
        and a repeat admit of the surviving count must be a pure price
        memo hit (no new binds at all).
        """
        from repro.core import batched as batched_mod
        from repro.sim.table import bound_table_stats, clear_bound_tables

        config = Solver(backend="h100", precision="fp32").config
        ctrl = AdmissionController(config)
        cls = shape_class(64, config)

        emits = []
        monkeypatch.setattr(
            batched_mod,
            "emit_batched_graph",
            lambda *a, **k: emits.append(a) or (_ for _ in ()).throw(
                AssertionError("admission pricing emitted a node list")
            ),
        )
        clear_bound_tables()
        # 8 hopeless requests shed in round one; 4 generous ones admit
        # after the round-two re-price of the shrunken batch
        reqs = [
            SvdRequest(seq=i, n=64, cls=cls, t_submit=0.0,
                       slo_s=1e-12 if i < 8 else 60.0)
            for i in range(12)
        ]
        decision = ctrl.admit(Batch(cls=cls, requests=reqs), now=0.0)
        assert len(decision.shed) == 8 and len(decision.admitted) == 4
        assert not emits
        assert ctrl.reprice_rounds == 2  # priced at 12, re-priced at 4
        stats = bound_table_stats()
        # one bound table per distinct count plus one shared skeleton
        assert stats["misses"] == 3
        assert ctrl.price_misses == 2

        # steady state: the same counts admit without binding anything
        again = ctrl.admit(Batch(cls=cls, requests=list(reqs)), now=0.0)
        assert len(again.admitted) == 4
        assert ctrl.reprice_rounds == 2  # both rounds were memo hits
        after = bound_table_stats()
        assert after["misses"] == stats["misses"]
        assert ctrl.price_hits >= 2


class TestBatchRunner:
    def test_graph_memo_counts(self, rng):
        config = Solver(backend="h100", precision="fp32").config
        runner = BatchRunner(config)
        cls = shape_class(64, config)
        reqs = [
            SvdRequest(seq=i, n=64, cls=cls, t_submit=0.0,
                       A=rng.standard_normal((64, 64)))
            for i in range(3)
        ]
        v1, _ = runner.run(reqs)
        v2, _ = runner.run(reqs)
        assert runner.graph_misses == 1 and runner.graph_hits == 1
        for a, b in zip(v1, v2):
            assert np.array_equal(a, b)


class TestSimulator:
    def test_conservation_and_determinism(self):
        solver = Solver(backend="h100", precision="fp32")
        trace = poisson_trace(200, 1500.0, ns=(120, 128), slo_s=0.05, seed=3)
        s1 = simulate_service(trace, solver, max_batch=8, max_wait_s=0.004)
        s2 = simulate_service(trace, solver, max_batch=8, max_wait_s=0.004)
        assert s1 == s2  # frozen dataclass: field-for-field determinism
        assert s1.completed + s1.shed == 200
        assert s1.batches > 0
        assert s1.replayed_s == s1.predicted_s

    def test_batching_beats_serial_goodput(self):
        """The acceptance-criterion inequality, pinned as a unit test."""
        solver = Solver(backend="h100", precision="fp32")
        trace = poisson_trace(
            600, 4000.0, ns=(120, 128, 250, 256), slo_s=0.05, seed=7
        )
        batched = simulate_service(
            trace, solver, max_batch=16, max_wait_s=0.005
        )
        serial = simulate_service(trace, solver, max_batch=1, max_wait_s=0.0)
        assert batched.goodput_rps > serial.goodput_rps
