"""Tests for graph-native batched execution: the full composition matrix.

The batched axis now runs the same emit -> (partition ->) (rewrite ->)
price pipeline as every other axis.  These tests pin

* the structure of the replayable batched graph (problem-subset meta,
  chains, round-robin device shards, the single ``batch_gather`` comm
  node, problem-window transfers),
* bitwise numeric replay of batched graphs - plain, multi-chain,
  sharded, and out-of-core - against per-matrix square solves,
* the enforced problem-window budget (``WindowOverflowError`` faults),
* the closed-form oracle: the graph path must stay within 15% of the
  legacy serial-chain pricing (it is float-identical today), and
* composition through ``Solver.predict``.
"""

import numpy as np
import pytest

import repro
from repro import Solver
from repro.core.batched import (
    batched_closed_form_resolved,
    emit_batched_graph,
    replay_batched_graph,
)
from repro.errors import CapacityError, ShapeError, WindowOverflowError
from repro.sim.graph import problem_range, rekey_batched
from repro.sim.outofcore import rewrite_out_of_core
from repro.sim.partition import partition_graph


@pytest.fixture
def solver():
    return Solver(backend="h100", precision="fp32")


def per_problem_bytes(graph, storage):
    return graph.npad * graph.npad * storage.sizeof * 1.25


class TestBatchedEmitter:
    def test_replayable_meta_carries_problem_subsets(self, solver):
        graph = emit_batched_graph(96, 5, solver.config)
        assert graph.kind == "batched" and graph.batch == 5
        for node in graph.nodes:
            probs = problem_range(node.meta[0])
            assert list(probs) == [0, 1, 2, 3, 4]

    def test_single_chain_is_serial(self, solver):
        graph = emit_batched_graph(96, 4, solver.config)
        for i, node in enumerate(graph.nodes):
            assert node.deps == (() if i == 0 else (i - 1,))

    def test_streams_split_batch_into_round_robin_chains(self, solver):
        graph = emit_batched_graph(96, 5, solver.config, streams=2)
        assert graph.streams == 2
        subsets = {node.meta[0] for node in graph.nodes}
        assert {tuple(problem_range(p)) for p in subsets} == {
            (0, 2, 4), (1, 3),
        }

    def test_chains_capped_by_batch(self, solver):
        graph = emit_batched_graph(64, 2, solver.config, streams=8)
        assert graph.streams == 2

    def test_launch_counts_independent_of_batch(self, solver):
        g1 = emit_batched_graph(256, 1, solver.config)
        g64 = emit_batched_graph(256, 64, solver.config)
        assert g1.launch_counts().keys() == g64.launch_counts().keys()
        assert len(g1) == len(g64)

    def test_bad_inputs(self, solver):
        with pytest.raises(ShapeError):
            emit_batched_graph(0, 4, solver.config)
        with pytest.raises(ShapeError):
            emit_batched_graph(64, 0, solver.config)

    def test_rekey_batched(self):
        assert rekey_batched(("panel_b", 8, 1, 1), 8, 3) == ("panel_b", 3, 1, 1)
        assert rekey_batched(("update", 8 * 96, 2, True), 8, 3) == (
            "update", 3 * 96, 2, True,
        )
        assert rekey_batched(("solve_b", 8, 64), 8, 1) == ("solve_b", 1, 64)
        with pytest.raises(ValueError):
            rekey_batched(("panel", 1, 1), 8, 3)


class TestBatchedPartition:
    def test_round_robin_device_shards(self, solver):
        graph = emit_batched_graph(96, 5, solver.config)
        pg = partition_graph(graph, 2, solver.config.link_spec())
        assert pg.ngpu == 2
        by_dev = {}
        for node in pg.nodes:
            if node.kind == "batch_gather":
                continue
            by_dev.setdefault(node.device, set()).update(
                problem_range(node.meta[0])
            )
        assert by_dev == {0: {0, 2, 4}, 1: {1, 3}}

    def test_single_gather_comm_node(self, solver):
        graph = emit_batched_graph(96, 6, solver.config)
        pg = partition_graph(graph, 3, solver.config.link_spec())
        comms = [n for n in pg.nodes if n.kind == "batch_gather"]
        assert len(comms) == 1
        # the gather moves the non-root problems' values (n per problem)
        assert comms[0].key[1] == 4 * 96
        assert comms[0].device == 0

    def test_no_cross_device_deps(self, solver):
        graph = emit_batched_graph(96, 4, solver.config)
        pg = partition_graph(graph, 2, solver.config.link_spec())
        for node in pg.nodes:
            if node.kind == "batch_gather":
                continue
            for d in node.deps:
                assert pg.nodes[d].device == node.device

    def test_more_devices_than_problems(self, solver):
        graph = emit_batched_graph(64, 2, solver.config)
        pg = partition_graph(graph, 4, solver.config.link_spec())
        devices = {n.device for n in pg.nodes}
        assert devices == {0, 1}  # surplus devices receive no nodes

    def test_sharding_speeds_up_prediction(self, solver):
        b1 = solver.predict(128, batch=64)
        b4 = solver.predict(128, batch=64, ngpu=4)
        assert b4.ngpu == 4
        assert b4.comm_s > 0
        assert b4.total_s < b1.total_s

    def test_multi_gpu_extends_batch_capacity(self, solver):
        n, batch = 8192, 400
        with pytest.raises(CapacityError):
            solver.predict(n, batch=batch)
        bd = solver.predict(n, batch=batch, ngpu=8)
        assert bd.total_s > 0


class TestBatchedOutOfCore:
    def test_in_core_is_identity(self, solver):
        graph = emit_batched_graph(96, 4, solver.config)
        assert rewrite_out_of_core(
            graph, solver.config, solver.precision
        ) is graph

    def test_windows_and_transfers(self, solver):
        cfg, storage = solver.config, solver.precision
        graph = emit_batched_graph(96, 6, cfg)
        budget = 4.2 * per_problem_bytes(graph, storage)
        og = rewrite_out_of_core(graph, cfg, storage, budget_bytes=budget)
        assert og.out_of_core and og.oc_capacity_problems == 4
        # 6 problems through double-buffered windows of 2 -> 3 windows
        h2d = [n for n in og.nodes if n.kind == "h2d_tile"]
        d2h = [n for n in og.nodes if n.kind == "d2h_tile"]
        assert len(h2d) == len(d2h) == 3
        # a load depends only on the eviction that frees its buffer
        assert h2d[0].deps == () and h2d[1].deps == ()
        assert og.nodes[h2d[2].deps[0]].kind == "d2h_tile"

    def test_io_priced_only_past_capacity(self, solver):
        small = solver.predict(128, batch=4, out_of_core=True)
        assert small.io_s == 0.0
        big = solver.predict(
            128, batch=64, out_of_core=True, oc_budget_gb=0.001
        )
        assert big.io_s > 0
        assert big.launches.get("h2d_tile", 0) > 0

    def test_budget_too_small_for_one_problem(self, solver):
        cfg, storage = solver.config, solver.precision
        graph = emit_batched_graph(256, 8, cfg)
        with pytest.raises(CapacityError, match="resident problem"):
            rewrite_out_of_core(
                graph, cfg, storage,
                budget_bytes=0.5 * per_problem_bytes(graph, storage),
            )

    def test_composes_with_ngpu_and_streams(self, solver):
        sched = solver.predict(
            128, batch=32, ngpu=2, streams=2, out_of_core=True,
            oc_budget_gb=0.001,
        )
        assert sched.ngpu == 2
        assert sched.io_s > 0
        # overlapped execution beats the serial sum of the same launches
        assert sched.makespan_s < sched.serial_s

    def test_ordering_invariant_partition_rejects_rewritten(self, solver):
        cfg, storage = solver.config, solver.precision
        graph = emit_batched_graph(96, 6, cfg)
        og = rewrite_out_of_core(
            graph, cfg, storage,
            budget_bytes=2.2 * per_problem_bytes(graph, storage),
        )
        with pytest.raises(ValueError, match="fixed order"):
            partition_graph(og, 2, cfg.link_spec())


class TestBatchedReplay:
    def stack(self, rng, batch=5, n=40, dtype=np.float32):
        return rng.standard_normal((batch, n, n)).astype(dtype)

    def reference(self, solver, As):
        return np.stack([solver.solve(a) for a in As])

    def test_plain_replay_bitwise(self, rng, solver):
        As = self.stack(rng)
        graph = emit_batched_graph(40, 5, solver.config)
        np.testing.assert_array_equal(
            replay_batched_graph(As, graph, solver.config),
            self.reference(solver, As),
        )

    def test_multi_chain_replay_bitwise(self, rng, solver):
        As = self.stack(rng)
        graph = emit_batched_graph(40, 5, solver.config, streams=3)
        np.testing.assert_array_equal(
            replay_batched_graph(As, graph, solver.config),
            self.reference(solver, As),
        )

    def test_sharded_replay_bitwise(self, rng, solver):
        As = self.stack(rng, batch=6)
        graph = partition_graph(
            emit_batched_graph(40, 6, solver.config), 3,
            solver.config.link_spec(),
        )
        np.testing.assert_array_equal(
            replay_batched_graph(As, graph, solver.config),
            self.reference(solver, As),
        )

    @pytest.mark.parametrize(
        "backend,precision,dtype",
        [
            ("h100", "fp32", np.float32),
            ("mi250", "fp64", np.float64),
            ("h100", "fp16", np.float16),
        ],
    )
    def test_sharded_out_of_core_replay_bitwise(
        self, rng, backend, precision, dtype
    ):
        s = Solver(backend=backend, precision=precision)
        As = self.stack(rng, batch=6, dtype=dtype)
        cfg, storage = s.config, s.precision
        graph = partition_graph(
            emit_batched_graph(40, 6, cfg), 2, cfg.link_spec()
        )
        og = rewrite_out_of_core(
            graph, cfg, storage,
            budget_bytes=2.2 * per_problem_bytes(graph, storage),
        )
        assert og.out_of_core
        np.testing.assert_array_equal(
            replay_batched_graph(As, og, cfg), self.reference(s, As)
        )

    def test_uneven_shards_fitting_device_still_loads(self, rng, solver):
        """Regression: when one device must stream but another's
        sub-batch fits, the fitting device still loads its problems
        (one whole window) - otherwise replay faults on non-resident
        problems."""
        As = self.stack(rng, batch=5)
        cfg, storage = solver.config, solver.precision
        graph = partition_graph(
            emit_batched_graph(40, 5, cfg), 2, cfg.link_spec()
        )
        # pcap = 2: device 0 holds 3 problems (streams), device 1 holds
        # 2 (fits exactly)
        og = rewrite_out_of_core(
            graph, cfg, storage,
            budget_bytes=2.2 * per_problem_bytes(graph, storage),
        )
        dev1_h2d = [
            n for n in og.nodes
            if n.kind == "h2d_tile" and n.device == 1
        ]
        assert len(dev1_h2d) == 1  # the fitting device loads once
        np.testing.assert_array_equal(
            replay_batched_graph(As, og, cfg), self.reference(solver, As)
        )

    def test_window_budget_enforced(self, rng, solver):
        """Shrinking the declared capacity after the rewrite faults."""
        As = self.stack(rng, batch=6)
        cfg, storage = solver.config, solver.precision
        graph = emit_batched_graph(40, 6, cfg)
        og = rewrite_out_of_core(
            graph, cfg, storage,
            budget_bytes=4.2 * per_problem_bytes(graph, storage),
        )
        og.oc_capacity_problems = 1  # declared window no longer fits loads
        with pytest.raises(WindowOverflowError):
            replay_batched_graph(As, og, cfg)

    def test_graph_mismatch_rejected(self, rng, solver):
        As = self.stack(rng, batch=4)
        graph = emit_batched_graph(40, 5, solver.config)
        with pytest.raises(ShapeError, match="batch"):
            replay_batched_graph(As, graph, solver.config)
        square = repro.core.emit_svd_graph(40, solver.config)
        with pytest.raises(ShapeError, match="batched"):
            replay_batched_graph(
                self.stack(rng, batch=5), square, solver.config
            )


class TestClosedFormOracle:
    @pytest.mark.parametrize("n,batch", [(64, 16), (128, 64), (512, 8)])
    def test_graph_path_within_15_percent(self, solver, n, batch):
        graph = solver.predict(n, batch=batch)
        oracle = batched_closed_form_resolved(n, batch, solver.config)
        assert graph.total_s == pytest.approx(oracle.total_s, rel=0.15)

    def test_identical_today(self, solver):
        """The default single-device path is float-identical, not just
        within tolerance - launches included."""
        graph = solver.predict(128, batch=64)
        oracle = batched_closed_form_resolved(128, 64, solver.config)
        assert graph.total_s == oracle.total_s
        assert graph.launches == oracle.launches
        assert graph.flops == oracle.flops

    def test_oracle_validates_inputs(self, solver):
        with pytest.raises(ShapeError):
            batched_closed_form_resolved(0, 4, solver.config)
        with pytest.raises(ShapeError):
            batched_closed_form_resolved(64, 0, solver.config)
