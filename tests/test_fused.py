"""Tests for the fused FTSQRT/FTSMQR kernels (Figure 2).

The defining property: fused kernels execute exactly the same operations
in the same order as the unfused sequence, so results are bit-identical.
"""

import numpy as np
import pytest

from repro.kernels import ftsmqr, ftsqrt, geqrt, tsmqr, tsqrt

EPS64 = float(np.finfo(np.float64).eps)


def make_panel(rng, ts, nrows, m):
    top = rng.standard_normal((ts, ts))
    R = top.copy()
    tau_g = np.zeros(ts)
    geqrt(R, tau_g, EPS64)
    R = np.triu(R).copy()
    below = [rng.standard_normal((ts, ts)) for _ in range(nrows)]
    Y = rng.standard_normal((ts, m))
    Xs = [rng.standard_normal((ts, m)) for _ in range(nrows)]
    return R, below, Y, Xs


class TestFtsqrtEquivalence:
    @pytest.mark.parametrize("nrows", [1, 2, 4])
    def test_bit_identical_to_sequential(self, rng, nrows):
        ts = 8
        R, below, _, _ = make_panel(rng, ts, nrows, 4)

        Rf = R.copy()
        Bf = [b.copy() for b in below]
        tf = [np.zeros(ts) for _ in range(nrows)]
        ftsqrt(Rf, Bf, tf, EPS64)

        Ru = R.copy()
        Bu = [b.copy() for b in below]
        tu = [np.zeros(ts) for _ in range(nrows)]
        for B, tau in zip(Bu, tu):
            tsqrt(Ru, B, tau, EPS64)

        np.testing.assert_array_equal(Rf, Ru)
        for a, b in zip(Bf, Bu):
            np.testing.assert_array_equal(a, b)
        for a, b in zip(tf, tu):
            np.testing.assert_array_equal(a, b)

    def test_empty_panel_noop(self, rng):
        R = np.triu(rng.standard_normal((4, 4)))
        R0 = R.copy()
        ftsqrt(R, [], [], EPS64)
        np.testing.assert_array_equal(R, R0)

    def test_mismatched_taus(self, rng):
        R = np.triu(rng.standard_normal((4, 4)))
        with pytest.raises(ValueError):
            ftsqrt(R, [np.zeros((4, 4))], [], EPS64)


class TestFtsmqrEquivalence:
    @pytest.mark.parametrize("nrows", [1, 3])
    def test_bit_identical_to_sequential(self, rng, nrows):
        ts, m = 8, 12
        R, below, Y, Xs = make_panel(rng, ts, nrows, m)
        Bf = [b.copy() for b in below]
        taus = [np.zeros(ts) for _ in range(nrows)]
        ftsqrt(R.copy(), Bf, taus, EPS64)

        Yf, Xf = Y.copy(), [x.copy() for x in Xs]
        ftsmqr(Bf, taus, Yf, Xf)

        Yu, Xu = Y.copy(), [x.copy() for x in Xs]
        for V, tau, X in zip(Bf, taus, Xu):
            tsmqr(V, tau, Yu, X)

        np.testing.assert_array_equal(Yf, Yu)
        for a, b in zip(Xf, Xu):
            np.testing.assert_array_equal(a, b)

    def test_length_mismatch(self, rng):
        with pytest.raises(ValueError):
            ftsmqr([np.zeros((4, 4))], [], np.zeros((4, 2)), [np.zeros((4, 2))])

    def test_fp16_storage_roundtrip(self, rng):
        ts, m, nrows = 4, 6, 2
        R = np.triu(rng.standard_normal((ts, ts))).astype(np.float16)
        below = [rng.standard_normal((ts, ts)).astype(np.float16) for _ in range(nrows)]
        taus = [np.zeros(ts, dtype=np.float32) for _ in range(nrows)]
        ftsqrt(R, below, taus, float(np.finfo(np.float16).eps),
               compute_dtype=np.float32)
        Y = rng.standard_normal((ts, m)).astype(np.float16)
        Xs = [rng.standard_normal((ts, m)).astype(np.float16) for _ in range(nrows)]
        ftsmqr(below, taus, Y, Xs, compute_dtype=np.float32)
        assert Y.dtype == np.float16
        assert all(np.isfinite(x.astype(np.float64)).all() for x in Xs)
