"""Tests for backend behaviour rules (support matrix, upcast, capacity)."""

import numpy as np
import pytest

from repro.backends import Backend, list_backends, resolve_backend
from repro.errors import (
    CapacityError,
    UnsupportedBackendError,
    UnsupportedPrecisionError,
)
from repro.precision import Precision


class TestResolve:
    def test_from_string(self):
        be = resolve_backend("h100")
        assert isinstance(be, Backend)
        assert be.name == "nvidia-h100"

    def test_from_backend_passthrough(self):
        be = resolve_backend("mi250")
        assert resolve_backend(be) is be

    def test_from_device_spec(self):
        from repro.backends.device import get_device

        assert resolve_backend(get_device("pvc")).vendor == "intel"

    def test_garbage_raises(self):
        with pytest.raises(UnsupportedBackendError):
            resolve_backend(123)

    def test_list_backends_covers_table2(self):
        assert len(list_backends()) >= 6


class TestSupportMatrix:
    """The paper's Figure 5 support gaps."""

    def test_nvidia_supports_all(self):
        be = resolve_backend("h100")
        for p in Precision:
            assert be.supports(p)

    def test_amd_rejects_fp16(self):
        be = resolve_backend("mi250")
        assert not be.supports("fp16")
        with pytest.raises(UnsupportedPrecisionError, match="AMD"):
            be.check_precision("fp16")

    def test_apple_rejects_fp64(self):
        be = resolve_backend("m1pro")
        assert not be.supports("fp64")
        with pytest.raises(UnsupportedPrecisionError, match="Metal"):
            be.check_precision("fp64")

    def test_apple_supports_fp16(self):
        assert resolve_backend("m1pro").supports("fp16")

    def test_intel_supports_fp32_fp64(self):
        be = resolve_backend("pvc")
        assert be.supports("fp32") and be.supports("fp64")
        assert not be.supports("fp16")

    def test_supports_garbage_false(self):
        assert not resolve_backend("h100").supports("fp8")


class TestComputePrecision:
    """Section 4.3: FP16 upcast rules."""

    def test_nvidia_fp16_computes_fp32(self):
        be = resolve_backend("h100")
        assert be.compute_precision("fp16") is Precision.FP32

    def test_apple_fp16_native(self):
        assert resolve_backend("m1pro").compute_precision("fp16") is Precision.FP16

    def test_native_precisions_unchanged(self):
        for name in ("h100", "mi250", "pvc"):
            be = resolve_backend(name)
            assert be.compute_precision("fp32") is Precision.FP32

    def test_unsupported_raises(self):
        with pytest.raises(UnsupportedPrecisionError):
            resolve_backend("mi250").compute_precision("fp16")


class TestCapacity:
    def test_within_capacity_ok(self):
        resolve_backend("h100").check_capacity(1024, "fp32")

    def test_rtx4060_rejects_65k_fp32(self):
        with pytest.raises(CapacityError):
            resolve_backend("rtx4060").check_capacity(65536, "fp32")

    def test_h100_accepts_131k_fp16_only(self):
        be = resolve_backend("h100")
        be.check_capacity(131072, "fp16")
        with pytest.raises(CapacityError):
            be.check_capacity(131072, "fp32")

    def test_max_n_consistent_with_check(self):
        be = resolve_backend("m1pro")
        cap = be.max_n("fp32")
        be.check_capacity(cap, "fp32")
        with pytest.raises(CapacityError):
            be.check_capacity(cap + 1, "fp32")


class TestAsarray:
    def test_converts_dtype(self):
        be = resolve_backend("h100")
        a = np.ones((4, 4))
        out = be.asarray(a, "fp16")
        assert out.dtype == np.float16
        assert out.flags["C_CONTIGUOUS"]
