"""Tests for input validation and the automatic rescaling extension."""

import numpy as np
import pytest

from tests.conftest import rel_err, scipy_svdvals
from repro.core import svdvals
from repro.core.svd import _rescale_factor
from repro.errors import ShapeError
from repro.precision import Precision


class TestCheckFinite:
    def test_nan_rejected(self, rng):
        A = rng.standard_normal((8, 8))
        A[2, 3] = np.nan
        with pytest.raises(ShapeError, match="NaN or Inf"):
            svdvals(A)

    def test_inf_rejected(self, rng):
        A = rng.standard_normal((8, 8))
        A[0, 0] = np.inf
        with pytest.raises(ShapeError):
            svdvals(A)

    def test_opt_out(self, rng):
        A = rng.standard_normal((8, 8))
        out = svdvals(A, check_finite=False)
        assert np.all(np.isfinite(out))


class TestRescaleFactor:
    def test_no_scaling_in_safe_range(self, rng):
        A = rng.standard_normal((16, 16))
        assert _rescale_factor(A, Precision.FP64) == 1.0
        assert _rescale_factor(A, Precision.FP16) == 1.0

    def test_power_of_two(self):
        A = np.full((8, 8), 1e30)
        s = _rescale_factor(A, Precision.FP32)
        assert s < 1.0
        assert np.log2(s) == int(np.log2(s))  # exact power of two

    def test_upscale_tiny(self):
        A = np.full((8, 8), 1e-30)
        s = _rescale_factor(A, Precision.FP32)
        assert s > 1.0

    def test_zero_matrix_untouched(self):
        assert _rescale_factor(np.zeros((4, 4)), Precision.FP16) == 1.0

    def test_fp16_threshold_much_lower(self):
        A = np.full((8, 8), 1e4)
        assert _rescale_factor(A, Precision.FP16) < 1.0
        assert _rescale_factor(A, Precision.FP32) == 1.0


class TestRescaledSolves:
    def test_fp16_overflow_avoided(self, rng):
        """Values above FP16's 65504 max would become Inf unscaled."""
        A = (5.0e4 * rng.standard_normal((32, 32))).astype(np.float64)
        ref = scipy_svdvals(A)
        got = svdvals(A, backend="h100", precision="fp16", rescale=True)
        assert np.all(np.isfinite(got))
        assert rel_err(got, ref) < 5e-2
        # without rescaling the FP16 cast destroys the spectrum (overflow
        # to Inf either corrupts the result or breaks solver convergence)
        from repro.errors import ReproError

        try:
            raw = svdvals(A, backend="h100", precision="fp16", rescale=False)
            assert rel_err(raw, ref) > rel_err(got, ref)
        except ReproError:
            pass  # solver rejecting the Inf-polluted problem is acceptable

    def test_fp32_huge_scale(self, rng):
        A = 1e25 * rng.standard_normal((32, 32))
        got = svdvals(A, backend="h100", precision="fp32")
        assert rel_err(got, scipy_svdvals(A)) < 1e-5

    def test_tiny_scale_upscaled(self, rng):
        A = 1e-30 * rng.standard_normal((32, 32))
        got = svdvals(A, backend="h100", precision="fp32")
        assert rel_err(got, scipy_svdvals(A)) < 1e-5

    def test_results_scaled_back_exactly(self, rng):
        """Power-of-two scaling is exact: scaled and unscaled runs agree
        bit-for-bit after the back-scale when no rounding boundary is hit."""
        A = rng.standard_normal((32, 32))
        a = svdvals(A, rescale=True)
        b = svdvals(A, rescale=False)
        np.testing.assert_array_equal(a, b)  # safe range: no-op

    def test_fp64_extreme_still_fine(self, rng):
        A = 1e150 * rng.standard_normal((24, 24))
        got = svdvals(A, precision="fp64")
        assert rel_err(got, scipy_svdvals(A)) < 1e-12
