"""Public-API surface checks: everything advertised works as documented."""

import numpy as np
import pytest

import repro


class TestExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__.count(".") == 2

    def test_core_namespace(self):
        from repro import core

        for name in core.__all__:
            assert hasattr(core, name), name

    def test_sim_namespace(self):
        from repro import sim

        for name in sim.__all__:
            assert hasattr(sim, name), name

    def test_docstrings_everywhere(self):
        """Every public module and exported callable is documented."""
        import inspect

        from repro import backends, baselines, core, matrices, sim, tuning

        for mod in (repro, backends, baselines, core, matrices, sim, tuning):
            assert inspect.getdoc(mod), mod.__name__
            for name in getattr(mod, "__all__", []):
                if name.endswith("Like"):
                    continue  # typing aliases cannot carry docstrings
                obj = getattr(mod, name)
                if callable(obj) or inspect.isclass(obj):
                    assert inspect.getdoc(obj), f"{mod.__name__}.{name}"


class TestReadmeQuickstart:
    """The README quickstart must keep working verbatim."""

    def test_quickstart_flow(self):
        A = np.random.default_rng(0).standard_normal((96, 96)).astype(
            np.float32
        )
        sv = repro.svdvals(A, backend="h100", precision="fp32")
        assert sv.shape == (96,)
        sv, info = repro.svdvals(
            A, backend="mi250", precision="fp64", return_info=True
        )
        assert info.simulated_seconds > 0
        with pytest.raises(repro.UnsupportedPrecisionError):
            repro.svdvals(A, backend="mi250", precision="fp16")
        with pytest.raises(repro.UnsupportedPrecisionError):
            repro.svdvals(A, backend="m1pro", precision="fp64")
        bd = repro.predict(32768, "h100", "fp32")
        assert bd.total_s > 0
        assert sum(bd.stage_fractions().values()) == pytest.approx(1.0)

    def test_device_matrix_flow(self):
        A = np.random.default_rng(1).standard_normal((32, 32))
        dm = repro.DeviceMatrix.from_host(A, "h100", "fp16")
        assert dm.T.data.shape == (32, 32)
        assert dm.compute_dtype == np.float32

    def test_extension_flow(self):
        rng = np.random.default_rng(2)
        A = rng.standard_normal((40, 40))
        res = repro.svd_full(A)
        assert np.linalg.norm(res.reconstruct() - A) < 1e-10
        rect = repro.svdvals_rect(rng.standard_normal((60, 20)))
        assert rect.shape == (20,)
        batch = repro.svdvals_batched(rng.standard_normal((2, 16, 16)))
        assert batch.shape == (2, 16)
        jac = repro.jacobi_svdvals(A)
        np.testing.assert_allclose(jac, res.s, atol=1e-10 * res.s[0])
