"""Tests for the experiments CLI entry point."""

from repro.experiments.__main__ import main


class TestCli:
    def test_help(self, capsys):
        assert main(["--help"]) == 0
        assert "usage:" in capsys.readouterr().out

    def test_no_args_usage_error(self, capsys):
        assert main([]) == 2

    def test_unknown_experiment(self, capsys):
        assert main(["tableX"]) == 2
        assert "unknown experiment" in capsys.readouterr().out

    def test_runs_fig6(self, capsys):
        assert main(["fig6"]) == 0
        out = capsys.readouterr().out
        assert "Figure 6" in out

    def test_runs_ablations(self, capsys):
        assert main(["ablations"]) == 0
        out = capsys.readouterr().out
        assert "Ablation" in out and "SPLITK" in out

    def test_case_insensitive(self, capsys):
        assert main(["FIG6"]) == 0
