"""Property tests for heterogeneous-fleet sharding and replay.

The cost-weighted sharder (:func:`repro.sim.shard_rows_weighted`) and
the fleet partitioner, pinned with hypothesis:

* weighted shards are an exact partition of ``[lo, hi)``: contiguous,
  non-overlapping, one (possibly empty) chunk per device;
* proportionality-plus-rounding: every shard is within one row of its
  ideal quota ``rows * w_d / W`` (largest-remainder apportionment);
* concordance: within one allocation a faster device never receives
  fewer rows than a slower one;
* equal weights reproduce :func:`repro.sim.shard_rows` exactly, so the
  uniform fleet degenerates to today's behavior;
* numeric replay of a weighted-shard graph is **bitwise identical** to
  the monolithic driver across backends x precisions, including the
  streams and out-of-core composed variants - comm hops are numeric
  no-ops and the sharded row chunks replay in ascending order.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Solver, Topology
from repro.core.svd import emit_svd_graph, svdvals_resolved
from repro.sim import partition_graph, shard_rows, shard_rows_weighted
from repro.sim.outofcore import rewrite_out_of_core

ranges = st.tuples(
    st.integers(min_value=0, max_value=50),
    st.integers(min_value=0, max_value=200),
).map(lambda t: (t[0], t[0] + t[1]))
weight_lists = st.lists(
    st.floats(min_value=0.05, max_value=50.0,
              allow_nan=False, allow_infinity=False),
    min_size=1, max_size=12,
)


@settings(max_examples=200, deadline=None)
@given(rng=ranges, weights=weight_lists)
def test_weighted_shards_partition_exactly(rng, weights):
    lo, hi = rng
    chunks = shard_rows_weighted(lo, hi, weights)
    assert len(chunks) == len(weights)
    cursor = lo
    for a, b in chunks:
        assert a == cursor and b >= a
        cursor = b
    assert cursor == hi


@settings(max_examples=200, deadline=None)
@given(rng=ranges, weights=weight_lists)
def test_proportionality_within_one_row(rng, weights):
    lo, hi = rng
    total = sum(weights)
    chunks = shard_rows_weighted(lo, hi, weights)
    for (a, b), w in zip(chunks, weights):
        quota = (hi - lo) * w / total
        assert abs((b - a) - quota) < 1.0


@settings(max_examples=200, deadline=None)
@given(rng=ranges, weights=weight_lists)
def test_faster_devices_never_get_fewer_rows(rng, weights):
    lo, hi = rng
    sizes = [b - a for a, b in shard_rows_weighted(lo, hi, weights)]
    for i, wi in enumerate(weights):
        for j, wj in enumerate(weights):
            if wi > wj:
                assert sizes[i] >= sizes[j]


@settings(max_examples=100, deadline=None)
@given(rng=ranges, nparts=st.integers(min_value=1, max_value=12))
def test_equal_weights_reproduce_uniform_sharding(rng, nparts):
    lo, hi = rng
    weighted = shard_rows_weighted(lo, hi, (1.0,) * nparts)
    uniform = shard_rows(lo, hi, nparts)
    # shard_rows drops empty chunks; the weighted sharder keeps them
    assert [c for c in weighted if c[1] > c[0]] == uniform


FLEETS = {
    "fp32": ("h100", "a100", "rtx4060"),
    "fp16": ("h100", "a100"),
    "fp64": ("mi250", "a100", "pvc"),
}
BACKENDS = {"fp32": "h100", "fp16": "h100", "fp64": "mi250"}


class TestHeteroReplayBitwise:
    @pytest.mark.parametrize("precision", ["fp32", "fp16", "fp64"])
    def test_weighted_graph_replays_bitwise(self, precision):
        s = Solver(backend=BACKENDS[precision], precision=precision)
        cfg = s.config
        topo = Topology(devices=FLEETS[precision])
        A = np.random.default_rng(17).standard_normal((130, 130))
        oneshot = s.solve(A)
        pg = partition_graph(
            emit_svd_graph(130, cfg), topology=topo, config=cfg
        )
        np.testing.assert_array_equal(
            svdvals_resolved(A, cfg, graph=pg), oneshot
        )

    @pytest.mark.parametrize("streams", [2, 4])
    def test_streams_axis_never_perturbs_numerics(self, streams):
        # streams is a scheduling-only axis: the numeric driver always
        # replays the streams=1 graph, so a streams-priced fleet must
        # solve bitwise identical to the default handle
        s = Solver(backend="h100", precision="fp32")
        cfg = s.config
        topo = Topology(devices=("h100", "h100", "a100"))
        assert s.predict(192, streams=streams, topology=topo).total_s > 0
        A = np.random.default_rng(23).standard_normal((192, 192))
        pg = partition_graph(
            emit_svd_graph(192, cfg), topology=topo, config=cfg
        )
        np.testing.assert_array_equal(
            svdvals_resolved(A, cfg, graph=pg), s.solve(A)
        )

    def test_out_of_core_composed_replay(self):
        s = Solver(backend="h100", precision="fp32")
        cfg = s.config
        storage = cfg.require_precision("test")
        topo = Topology(devices=("h100", "a100"))
        A = np.random.default_rng(29).standard_normal((192, 192))
        pg = partition_graph(
            emit_svd_graph(192, cfg), topology=topo, config=cfg
        )
        ooc = rewrite_out_of_core(
            pg, cfg, storage, budget_bytes=6 * 64 * 64 * storage.sizeof
        )
        np.testing.assert_array_equal(
            svdvals_resolved(A, cfg, graph=ooc), s.solve(A)
        )

    @settings(max_examples=10, deadline=None)
    @given(
        n=st.integers(min_value=96, max_value=320),
        h100s=st.integers(min_value=1, max_value=3),
        a100s=st.integers(min_value=1, max_value=3),
    )
    def test_arbitrary_fleet_shapes_replay_bitwise(self, n, h100s, a100s):
        s = Solver(backend="h100", precision="fp32")
        cfg = s.config
        topo = Topology(devices=("h100",) * h100s + ("a100",) * a100s)
        A = np.random.default_rng(n).standard_normal((n, n))
        pg = partition_graph(
            emit_svd_graph(n, cfg), topology=topo, config=cfg
        )
        np.testing.assert_array_equal(
            svdvals_resolved(A, cfg, graph=pg), s.solve(A)
        )
