"""Tests for the exception hierarchy."""

import pytest

from repro.errors import (
    CapacityError,
    ConvergenceError,
    InvalidParamsError,
    ReproError,
    ShapeError,
    ShedError,
    UnsupportedBackendError,
    UnsupportedPrecisionError,
)


def test_all_derive_from_repro_error():
    for exc in (
        UnsupportedPrecisionError,
        UnsupportedBackendError,
        CapacityError,
        InvalidParamsError,
        ConvergenceError,
        ShapeError,
        ShedError,
    ):
        assert issubclass(exc, ReproError)
        assert issubclass(exc, Exception)


def test_catchable_as_base():
    with pytest.raises(ReproError):
        raise CapacityError("boom")


class TestShedError:
    """ShedError keeps the admission context a bare CapacityError loses."""

    def test_is_a_capacity_error(self):
        err = ShedError("shed", predicted_s=0.25, slo_s=0.1)
        assert isinstance(err, CapacityError)
        assert isinstance(err, ReproError)

    def test_carries_prediction_and_slo(self):
        err = ShedError("shed", predicted_s=0.25, slo_s=0.1)
        assert err.predicted_s == 0.25
        assert err.slo_s == 0.1

    def test_context_defaults_to_none(self):
        err = ShedError("capacity shed")
        assert err.predicted_s is None
        assert err.slo_s is None

    def test_service_message_names_prediction_and_slo(self):
        """The admission-built message states both sides of the verdict."""
        from repro.serve import AdmissionController, Batch, SvdRequest
        from repro import Solver
        from repro.tuning import shape_class

        config = Solver(backend="h100", precision="fp32").config
        ctrl = AdmissionController(config)
        cls = shape_class(64, config)
        req = SvdRequest(seq=1, n=64, cls=cls, t_submit=0.0, slo_s=1e-9)
        decision = ctrl.admit(Batch(cls=cls, requests=[req]), now=0.0)
        assert not decision.admitted
        ((shed_req, err),) = decision.shed
        assert shed_req is req
        msg = str(err)
        assert "shed" in msg
        assert "SLO" in msg and "1e-09" in msg
        assert "predicted" in msg
        assert f"{err.predicted_s:.6g}" in msg
        assert err.slo_s == 1e-9

    def test_capacity_shed_chains_the_cause(self):
        """Infeasible-even-out-of-core sheds keep the CapacityError cause."""
        from repro.serve import AdmissionController, Batch, SvdRequest
        from repro import Solver
        from repro.tuning import shape_class

        config = Solver(backend="h100", precision="fp64").config
        # budget below one 64x64 fp64 working set: nothing can ever run
        ctrl = AdmissionController(config, mem_budget_bytes=1024.0)
        cls = shape_class(64, config)
        req = SvdRequest(seq=1, n=64, cls=cls, t_submit=0.0)
        decision = ctrl.admit(Batch(cls=cls, requests=[req]), now=0.0)
        assert not decision.admitted
        ((_, err),) = decision.shed
        assert isinstance(err, ShedError)
        assert err.predicted_s is None
        assert isinstance(err.__cause__, CapacityError)
        assert "out-of-core" in str(err)


def test_library_raises_only_repro_errors_for_bad_config():
    import numpy as np

    from repro.core import svdvals

    bad_calls = [
        lambda: svdvals(np.zeros((4, 5))),
        lambda: svdvals(np.zeros((4, 4)), backend="nope"),
        lambda: svdvals(np.zeros((4, 4)), backend="mi250", precision="fp16"),
    ]
    for call in bad_calls:
        with pytest.raises(ReproError):
            call()
