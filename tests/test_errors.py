"""Tests for the exception hierarchy."""

import pytest

from repro.errors import (
    CapacityError,
    ConvergenceError,
    InvalidParamsError,
    ReproError,
    ShapeError,
    UnsupportedBackendError,
    UnsupportedPrecisionError,
)


def test_all_derive_from_repro_error():
    for exc in (
        UnsupportedPrecisionError,
        UnsupportedBackendError,
        CapacityError,
        InvalidParamsError,
        ConvergenceError,
        ShapeError,
    ):
        assert issubclass(exc, ReproError)
        assert issubclass(exc, Exception)


def test_catchable_as_base():
    with pytest.raises(ReproError):
        raise CapacityError("boom")


def test_library_raises_only_repro_errors_for_bad_config():
    import numpy as np

    from repro.core import svdvals

    bad_calls = [
        lambda: svdvals(np.zeros((4, 5))),
        lambda: svdvals(np.zeros((4, 4)), backend="nope"),
        lambda: svdvals(np.zeros((4, 4)), backend="mi250", precision="fp16"),
    ]
    for call in bad_calls:
        with pytest.raises(ReproError):
            call()
