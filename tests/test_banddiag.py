"""Tests for the stage-1 reduction to band form (Algorithm 1/2)."""

import numpy as np
import pytest

from tests.conftest import rel_err, scipy_svdvals
from repro.core.banddiag import getsmqrt, reduce_to_band
from repro.core.tiling import band_width, extract_band
from repro.sim import KernelParams, Session

EPS64 = float(np.finfo(np.float64).eps)


def run_stage1(A, ts, fused=True, session=None):
    W = A.copy()
    reduce_to_band(W, ts, EPS64, session=session, fused=fused)
    return W


class TestBandStructure:
    @pytest.mark.parametrize("n,ts", [(32, 16), (64, 16), (96, 32), (128, 32)])
    def test_upper_band_achieved(self, rng, n, ts):
        A = rng.standard_normal((n, n))
        W = run_stage1(A, ts)
        band = extract_band(W, ts)
        scale = np.abs(A).max() * n
        lower, upper = band_width(band, tol=1e-12 * scale)
        assert lower == 0
        assert upper <= ts

    def test_band_is_genuinely_band_not_triangular(self, rng):
        """The out-of-band storage holds reflector tails, not matrix data:
        taking only diagonals 0..ts must preserve the spectrum, while a
        narrower band must lose it (i.e. the band really is width ts)."""
        n, ts = 96, 32
        A = rng.standard_normal((n, n))
        W = run_stage1(A, ts)
        ref = scipy_svdvals(A)
        assert rel_err(scipy_svdvals(extract_band(W, ts)), ref) < 1e-12
        # the diagonal alone is NOT the spectrum: stage 2 still has work
        assert rel_err(scipy_svdvals(extract_band(W, 0)), ref) > 1e-3

    def test_out_of_band_storage_is_reflectors(self, rng):
        """Both the below-diagonal tiles (RQ tails) and the beyond-band
        tiles (LQ tails) hold nonzero reflector storage after stage 1,
        exactly like in-place LAPACK-style implementations."""
        n, ts = 96, 32
        W = run_stage1(rng.standard_normal((n, n)), ts)
        assert np.abs(W[ts:, :ts]).max() > 0.0  # RQ tails
        assert np.abs(W[:ts, 2 * ts :]).max() > 0.0  # LQ tails


class TestSingularValuePreservation:
    @pytest.mark.parametrize("n,ts", [(48, 16), (96, 32)])
    def test_band_svs_match_input(self, rng, n, ts):
        A = rng.standard_normal((n, n))
        W = run_stage1(A, ts)
        band = extract_band(W, ts)
        assert rel_err(scipy_svdvals(band), scipy_svdvals(A)) < 1e-13

    def test_fused_equals_unfused_exactly(self, rng):
        n, ts = 96, 32
        A = rng.standard_normal((n, n))
        np.testing.assert_array_equal(
            run_stage1(A, ts, fused=True), run_stage1(A, ts, fused=False)
        )

    def test_single_tile_matrix(self, rng):
        n = 32
        A = rng.standard_normal((n, n))
        W = run_stage1(A, 32)
        # single tile: plain QR; R carries the singular values
        assert rel_err(scipy_svdvals(np.triu(W)), scipy_svdvals(A)) < 1e-13

    def test_padded_zero_tiles(self, rng):
        """Zero padding region must stay exactly zero through stage 1."""
        n, npad, ts = 40, 64, 32
        W = np.zeros((npad, npad))
        W[:n, :n] = rng.standard_normal((n, n))
        A = W.copy()
        reduce_to_band(W, ts, EPS64)
        band = extract_band(W, ts)
        assert rel_err(
            scipy_svdvals(band)[:n], scipy_svdvals(A[:n, :n])
        ) < 1e-13

    def test_identity_stays_triangular(self):
        W = run_stage1(np.eye(64), 32)
        band = extract_band(W, 32)
        np.testing.assert_allclose(
            np.sort(np.abs(np.diagonal(band))), np.ones(64), atol=1e-12
        )


class TestSessionIntegration:
    def test_launch_sequence_recorded(self, rng):
        n, ts = 96, 32
        sess = Session.create("h100", "fp64", params=KernelParams(ts, 32, 8))
        A = rng.standard_normal((n, n))
        run_stage1(A, ts, session=sess)
        counts = sess.tracer.kernel_counts()
        # N = 3 tiles: 2 sweeps x (RQ + LQ geqrt) + final geqrt
        assert counts["geqrt"] == 5
        # RQ panels at k=0,1 plus LQ panel at k=0
        assert counts["ftsqrt"] == 3
        assert counts["ftsmqr"] == 3
        assert counts["unmqr"] == 4

    def test_invalid_tile_multiple(self, rng):
        with pytest.raises(ValueError):
            reduce_to_band(rng.standard_normal((33, 33)), 32, EPS64)

    def test_getsmqrt_noop_beyond_grid(self, rng):
        A = rng.standard_normal((32, 32))
        A0 = A.copy()
        getsmqrt(A, 5, 32, EPS64)  # row0 out of grid: no-op
        np.testing.assert_array_equal(A, A0)
