"""Low-rank image compression driven by the unified singular values.

A classic SVD application (the paper cites signal/image processing): build
a synthetic test image, compute its spectrum with the unified API, choose
truncation ranks from the energy profile, and report the compression-
error trade-off.  The reconstruction uses this library's own ``svd_full`` extension (the
paper lists singular vectors as future work), so both the rank decision
and the compressed reconstruction come from the reproduced system.

Usage::

    python examples/image_compression.py
"""

import numpy as np

import repro
from repro.report import format_table


def synthetic_image(n: int = 256) -> np.ndarray:
    """Piecewise-smooth 'photo': gradients, disks and stripes."""
    y, x = np.mgrid[0:n, 0:n] / n
    img = 0.6 * x + 0.3 * y  # illumination gradient
    img += 0.4 * ((x - 0.3) ** 2 + (y - 0.4) ** 2 < 0.04)  # disk
    img += 0.25 * ((x - 0.7) ** 2 + (y - 0.7) ** 2 < 0.02)  # smaller disk
    img += 0.15 * np.sin(14 * np.pi * x) * (y > 0.6)  # texture stripes
    rng = np.random.default_rng(0)
    img += 0.01 * rng.standard_normal((n, n))  # sensor noise
    return img.astype(np.float32)


def main() -> None:
    img = synthetic_image()
    n = img.shape[0]

    sv, info = repro.svdvals(img, backend="rtx4060", precision="fp32",
                             return_info=True)
    print(f"{n}x{n} image, simulated RTX4060 time "
          f"{info.simulated_seconds * 1e3:.2f} ms")

    total_energy = float(np.sum(sv**2))
    # full factors for the reconstructions (our svd_full extension)
    res = repro.svd_full(img, backend="rtx4060", precision="fp32")
    body = []
    for target in (0.90, 0.99, 0.999, 0.9999):
        k = int(np.searchsorted(np.cumsum(sv**2) / total_energy, target)) + 1
        # predicted relative Frobenius error from the tail of the spectrum
        predicted = float(np.sqrt(np.sum(sv[k:] ** 2) / total_energy))
        # verify with an actual truncated reconstruction
        approx = (res.U[:, :k] * res.s[:k]) @ res.Vt[:k]
        measured = float(
            np.linalg.norm(img - approx) / np.linalg.norm(img)
        )
        ratio = (2 * n * k + k) / (n * n)
        body.append([
            f"{target:.2%}", str(k), f"{predicted:.2e}", f"{measured:.2e}",
            f"{100 * ratio:.1f}%",
        ])
    print(format_table(
        ["energy kept", "rank", "predicted err", "measured err", "storage"],
        body,
        title="rank selection from the unified spectrum",
    ))
    print("predicted error (from singular values alone) matches the "
          "measured truncation error - the values-only solver suffices "
          "for rank selection.")


if __name__ == "__main__":
    main()
