"""Capacity planning with the scaling models (paper future work).

The paper's conclusion plans out-of-core execution and multi-GPU scaling;
this example uses the reproduction's analytic extensions to answer the
questions a user would actually ask before buying hardware:

1. How large a problem fits each device per precision — and what does it
   cost to go *beyond* device memory with host streaming?
2. How many GPUs are worth using at a given size (Amdahl saturation from
   the serial panel chain)?
3. When is batching many small problems better than looping?

Every study prices its whole sweep through one :class:`repro.Solver`
handle — ``predict`` is the single front door for the in-core, batched,
multi-GPU and out-of-core models.

Usage::

    python examples/capacity_planning.py
"""

import repro
from repro.report import format_breakdown, format_seconds, format_table

H100 = repro.Solver(backend="h100", precision="fp32")


def capacity_table() -> None:
    body = []
    for name in ("h100", "rtx4060", "mi250", "m1pro", "pvc"):
        be = repro.resolve_backend(name)
        row = [name, f"{be.device.mem_gb:g} GiB"]
        for prec in ("fp16", "fp32", "fp64"):
            row.append(str(be.max_n(prec)) if be.supports(prec) else "-")
        body.append(row)
    print(format_table(
        ["device", "memory", "max n fp16", "max n fp32", "max n fp64"],
        body, title="largest resident square matrix per device/precision",
    ))


def out_of_core_cliff() -> None:
    cap = H100.backend.max_n("fp32")
    body = []
    for n in (cap // 2, cap, int(cap * 1.5), cap * 2):
        bd = H100.predict(n, out_of_core=True)
        mode = "in-core" if n <= cap else "streamed"
        body.append([
            str(n), mode, format_seconds(bd.total_s).strip(),
            format_seconds(bd.io_s).strip(),
        ])
    print()
    print(format_table(
        ["n", "mode", "predicted time", "host io"],
        body,
        title=f"H100 FP32 out-of-core cliff (capacity n={cap}): past it, "
        "the launch graph is rewritten to stream tile panels through a "
        "bounded device window",
    ))


def io_comm_compute_split() -> None:
    """Where does the time go when every scaling axis is in play?

    ``format_breakdown`` renders the io-vs-comm-vs-compute split of one
    prediction: ``out_of_core=True`` adds the ``transfer`` row (explicit
    h2d/d2h tile traffic over the host link), ``ngpu=`` the ``comm`` row
    (explicit device-to-device broadcast/exchange/gather) - all priced
    from the same rewritten LaunchGraph.
    """
    n = 32768
    print()
    print(format_breakdown(
        H100.predict(n, out_of_core=True, oc_budget_gb=1.0),
        title=f"n={n} on one 1 GiB-window device: io vs compute",
    ))
    print()
    print(format_breakdown(
        H100.predict(n, out_of_core=True, ngpu=2, oc_budget_gb=1.0),
        title=f"n={n} across 2 such devices: io vs comm vs compute",
    ))


def multi_gpu_scaling() -> None:
    body = []
    for n in (8192, 32768):
        t1 = H100.predict(n, check_capacity=False).total_s
        row = [str(n)]
        comm = 0.0
        for g in (1, 2, 4, 8, 16):
            bd = H100.predict(n, ngpu=g, check_capacity=False)
            row.append(f"{t1 / bd.total_s:.2f}x")
            comm = bd.comm_s
        row.append(format_seconds(comm).strip())
        body.append(row)
    print()
    print(format_table(
        ["n", "1 GPU", "2 GPUs", "4 GPUs", "8 GPUs", "16 GPUs",
         "comm @ 16"],
        body,
        title="multi-GPU speedup (H100 FP32, NVLink): predictions are the "
        "partitioned LaunchGraph - the serial panel chain caps scaling "
        "and broadcast/boundary comm is priced explicitly",
    ))


def batching_study() -> None:
    body = []
    for n in (64, 128, 256, 1024):
        batch = 64
        seq = batch * H100.predict(n, check_capacity=False).total_s
        bat = H100.predict(n, batch=batch).total_s
        body.append([
            str(n), format_seconds(seq).strip(), format_seconds(bat).strip(),
            f"{seq / bat:.1f}x",
        ])
    print()
    print(format_table(
        ["n", "64 sequential", "64 batched", "speedup"],
        body, title="batched SVD: the answer to the paper's small-size gap",
    ))


if __name__ == "__main__":
    capacity_table()
    out_of_core_cliff()
    io_comm_compute_split()
    multi_gpu_scaling()
    batching_study()
