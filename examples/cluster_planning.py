"""Cluster planning: size a two-tier topology before buying it.

A narrated walkthrough of the discrete-event cluster layer.  For one
problem size it

1. sweeps node counts and reads where strong scaling stops paying,
2. decomposes the winner's makespan along the critical chain (stage
   work, per-tier comm, FIFO queueing on the shared fabric NIC),
3. shows the fabric-bandwidth sensitivity (`fabric_gbs=`) and the
   lane/contention tradeoff the greedy scheduler cannot see,
4. cross-checks the oracle invariant: with contention impossible, the
   event simulator agrees exactly with the greedy list scheduler.

Everything is analytic - no numerics run.  Usage::

    PYTHONPATH=src python examples/cluster_planning.py [n]
"""

import sys

import repro
from repro.core import emit_svd_graph
from repro.sim import partition_graph, schedule_streams, simulate_events

GPUS_PER_NODE = 2


def main(n: int = 12288) -> None:
    solver = repro.Solver(backend="h100", precision="fp32")
    config = solver.config

    # ---- 1. strong-scaling sweep over node counts -------------------- #
    print(f"strong scaling, n={n}, {GPUS_PER_NODE} GPUs/node:")
    baseline = solver.predict(n, check_capacity=False).total_s
    times = {}
    for nodes in (1, 2, 4, 8):
        pred = solver.predict(
            n, ngpu=GPUS_PER_NODE, nodes=nodes, check_capacity=False
        )
        times[nodes] = pred.total_s
        ranks = nodes * GPUS_PER_NODE
        eff = baseline / pred.total_s / ranks
        print(
            f"  {nodes} node(s) x {GPUS_PER_NODE} = {ranks} ranks: "
            f"{pred.total_s * 1e3:8.1f} ms   "
            f"speedup {baseline / pred.total_s:4.1f}x   "
            f"parallel efficiency {eff:5.1%}"
        )

    # ---- 2. where does the time of the winner go? -------------------- #
    best_nodes = min(times, key=times.get)
    ev = solver.predict(
        n, ngpu=GPUS_PER_NODE, nodes=max(best_nodes, 2), check_capacity=False
    )
    print(f"\ncritical chain at {ev.nnodes} nodes (sums to the makespan):")
    for part, seconds in sorted(
        ev.chain_seconds.items(), key=lambda kv: -kv[1]
    ):
        print(f"  {part:12s} {seconds * 1e3:8.2f} ms")
    chain = sum(ev.chain_seconds.values())
    assert abs(chain - ev.makespan_s) <= 1e-9 * ev.makespan_s

    # ---- 3. fabric sensitivity and lane contention ------------------- #
    print("\nfabric bandwidth sensitivity (4 nodes):")
    for gbs in (100.0, 50.0, 25.0):
        pred = solver.predict(
            n, ngpu=GPUS_PER_NODE, nodes=4, fabric_gbs=gbs,
            check_capacity=False,
        )
        print(
            f"  {gbs:5.0f} GB/s: {pred.total_s * 1e3:8.1f} ms "
            f"(inter-node comm {pred.comm_inter_s * 1e3:6.1f} ms)"
        )

    graph = partition_graph(
        emit_svd_graph(n, config), GPUS_PER_NODE, nodes=4,
        fabric=config.fabric_spec(),
    )
    print("\nfabric lanes vs FIFO queueing (4 nodes):")
    for lanes in (1, 2, 8):
        ev = simulate_events(graph, config, streams=1, fabric_lanes=lanes)
        print(
            f"  {lanes} lane(s): contention {ev.contention_s * 1e6:8.1f} us "
            f"({ev.contention_share:6.2%} of the makespan)"
        )

    # ---- 4. the oracle invariant ------------------------------------- #
    # Contention-free case: one node, ample streams.  The greedy list
    # scheduler and the event simulator must agree exactly.
    single = partition_graph(
        emit_svd_graph(n, config), GPUS_PER_NODE,
        config.link_spec(),
    )
    ample = len(single) + 1
    greedy = schedule_streams(single, config, config.require_precision(), ample)
    oracle = simulate_events(single, config, streams=ample)
    assert oracle.makespan_s == greedy.total_s
    assert oracle.contention_s == 0.0
    print(
        f"\noracle check: greedy {greedy.total_s * 1e3:.3f} ms == "
        f"events {oracle.makespan_s * 1e3:.3f} ms (exact, zero contention)"
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 12288)
