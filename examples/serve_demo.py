"""SVD-as-a-service demo: dynamic batching with planner-driven admission.

``Solver.serve()`` wraps the solver in an async service: requests are
queued, grouped by *shape class* (padded tile geometry x backend x
precision), priced analytically by the planner *before* dispatch, and
executed as one batched launch graph per group.  This demo

1. submits a mixed-shape workload (four sizes, two shape classes)
   concurrently through ``async with solver.serve(...)``,
2. checks every served result is bitwise identical to a synchronous
   ``solver.solve`` call,
3. submits one request with an impossible SLO and shows the admission
   controller shedding it with a priced :class:`repro.ShedError`,
4. prints the :class:`repro.ServiceStats` snapshot.

Usage::

    PYTHONPATH=src python examples/serve_demo.py
"""

import asyncio

import numpy as np

import repro


async def main() -> None:
    """Serve a mixed-shape workload and report the service snapshot."""
    solver = repro.Solver(backend="h100", precision="fp32")
    rng = np.random.default_rng(42)

    # four sizes, two shape classes at tilesize 32:
    # 120/128 -> npad 128, 250/256 -> npad 256
    sizes = [120, 128, 250, 256, 128, 250, 120, 256]
    mats = [rng.standard_normal((n, n)) for n in sizes]

    async with solver.serve(max_batch=8, max_wait_s=0.01) as svc:
        futures = [await svc.submit(A, slo_s=5.0) for A in mats]
        served = [await f for f in futures]

        # an SLO no batch can meet: admission sheds it, priced
        try:
            fut = await svc.submit(mats[0], slo_s=1e-9)
            await fut
        except repro.ShedError as err:
            print(f"shed as expected: predicted {err.predicted_s:.2e}s "
                  f"against an SLO of {err.slo_s:.0e}s")

        stats = svc.stats()

    for A, values in zip(mats, served):
        assert np.array_equal(values, solver.solve(A)), (
            "served result must be bitwise identical to solver.solve"
        )
    print(f"{len(mats)} requests across {stats.batches} batched graphs, "
          "all bitwise identical to synchronous solves")
    print()
    print(stats.summary())


if __name__ == "__main__":
    asyncio.run(main())
