"""Batched throughput: tune, then run a 64-problem batch on 2 devices.

The batched axis is graph-native: ``Solver.predict(n, batch=b, ngpu=g,
streams=s, out_of_core=...)`` runs the same emit -> partition -> rewrite
-> price pipeline as every other axis, and ``Solver.tune`` searches that
whole space analytically.  This example

1. tunes a 64-problem FP32 batch for a 2-device H100 box,
2. compares the winner against the untuned default and the legacy
   closed-form batched model (the consistency oracle),
3. replays the tuned *sharded* batched graph numerically and checks it
   is bitwise identical to solving every matrix alone.

Usage::

    python examples/batched_throughput.py [n] [batch]
"""

import sys

import numpy as np

import repro
from repro.core.batched import (
    batched_closed_form_resolved,
    emit_batched_graph,
    replay_batched_graph,
)
from repro.sim.partition import partition_graph
from repro.tuning.planner import tune_resolved

NGPU = 2


def main(n: int = 128, batch: int = 64) -> None:
    solver = repro.Solver(backend="h100", precision="fp32")

    # ---- tune: search params x streams x ngpu analytically ----------- #
    plan = tune_resolved(
        n, solver.config, batch=batch, objective="throughput",
        budget=48, ngpus=(1, NGPU), streams=(1, 2, 4),
    )
    best = plan.best
    closed_form = batched_closed_form_resolved(n, batch, solver.config)

    print(f"workload:            {batch} x ({n} x {n}) FP32 on "
          f"{plan.backend}")
    print(f"oracle evaluations:  {plan.evaluations}")
    print(f"closed-form model:   {closed_form.total_s * 1e3:8.3f} ms "
          "(legacy serial chain)")
    print(f"untuned default:     {plan.default.predicted_s * 1e3:8.3f} ms")
    print(f"tuned winner:        {best.predicted_s * 1e3:8.3f} ms "
          f"({plan.speedup:.2f}x, {plan.throughput():,.0f} problems/s)")
    print(f"winning config:      {best.params}, streams={best.streams}, "
          f"ngpu={best.ngpu}, out_of_core={best.out_of_core}")
    print("top 3:")
    for cand in plan.top(3):
        print(f"  {cand.predicted_s * 1e3:8.3f} ms  {cand.params} "
              f"streams={cand.streams} ngpu={cand.ngpu}")

    # ---- run: replay the tuned sharded graph, check bitwise ---------- #
    tuned = plan.apply()
    rng = np.random.default_rng(0)
    As = rng.standard_normal((batch, n, n)).astype(np.float32)

    graph = emit_batched_graph(n, batch, tuned.config, streams=best.streams)
    if best.ngpu > 1:
        graph = partition_graph(graph, best.ngpu, tuned.config.link_spec())
    values = replay_batched_graph(As, graph, tuned.config)

    singles = np.stack([tuned.solve(a) for a in As])
    assert np.array_equal(values, singles), "sharded replay must be bitwise"
    print(f"numerics:            {best.ngpu}-device sharded replay bitwise-"
          f"identical to {batch} single solves")
    ref = np.linalg.svd(As[0].astype(np.float64), compute_uv=False)
    err = np.linalg.norm(values[0] - ref) / np.linalg.norm(ref)
    print(f"accuracy:            {err:.2e} relative error vs LAPACK FP64")


if __name__ == "__main__":
    main(
        int(sys.argv[1]) if len(sys.argv) > 1 else 128,
        int(sys.argv[2]) if len(sys.argv) > 2 else 64,
    )
