"""Execute the README's ``python`` code blocks (the CI smoke check).

The README's 60-second quickstart is the repo's front door; this runner
extracts every fenced ``python`` block and executes it, so the docs
cannot silently rot.  Run from the repository root::

    PYTHONPATH=src python examples/run_readme_quickstart.py
"""

import pathlib
import re
import sys


def main() -> int:
    readme = pathlib.Path(__file__).resolve().parent.parent / "README.md"
    blocks = re.findall(r"```python\n(.*?)```", readme.read_text(), re.S)
    if not blocks:
        print("ERROR: README.md has no ```python quickstart block")
        return 1
    for i, block in enumerate(blocks, 1):
        print(f"-- executing README block {i} ({len(block.splitlines())} lines)")
        exec(compile(block, f"README.md[block {i}]", "exec"), {})
    print(f"README quickstart OK ({len(blocks)} block(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
