"""Execute the README's ``python`` code blocks (the CI smoke check).

The README's 60-second quickstart is the repo's front door; this runner
executes every fenced ``python`` block so the docs cannot silently rot.
It is a thin shim over the generalized harness
(``examples/run_doc_blocks.py``), which the CI ``docs`` job also runs
over the ``docs/`` tree.  Run from the repository root::

    PYTHONPATH=src python examples/run_readme_quickstart.py
"""

import pathlib
import sys


def main() -> int:
    here = pathlib.Path(__file__).resolve().parent
    sys.path.insert(0, str(here))
    from run_doc_blocks import main as run_doc_blocks_main

    return run_doc_blocks_main([str(here.parent / "README.md")])


if __name__ == "__main__":
    sys.exit(main())
