"""LoRA-style rank selection with FP16 singular values.

The paper motivates portable, half-precision SVD with large-language-model
workloads: low-rank adaptation (LoRA) needs the spectrum of weight
matrices that are stored in FP16.  This example builds a synthetic
transformer-like weight matrix with a known low-rank update, computes its
singular values in FP16 through the unified API (the paper's headline
capability - no GPU library offered FP16 SVD before), and selects the
adapter rank from the spectral energy.

Usage::

    python examples/lora_rank_selection.py
"""

import numpy as np

import repro


def synthetic_weight(n: int, rank: int, rng) -> np.ndarray:
    """Base weights + a planted low-rank 'fine-tuning' update."""
    base = rng.standard_normal((n, n)) / np.sqrt(n)  # ~unit spectral norm
    U = rng.standard_normal((n, rank)) / np.sqrt(n)
    V = rng.standard_normal((rank, n))
    return base * 0.05 + (U * 3.0) @ V  # update dominates the spectrum


def select_rank(sv: np.ndarray, energy: float = 0.90) -> int:
    """Smallest rank capturing the requested share of spectral energy."""
    cum = np.cumsum(sv**2) / np.sum(sv**2)
    return int(np.searchsorted(cum, energy)) + 1


def main() -> None:
    rng = np.random.default_rng(42)
    n, planted_rank = 384, 12
    W = synthetic_weight(n, planted_rank, rng).astype(np.float16)
    print(f"weight matrix: {n} x {n} FP16 "
          f"({W.nbytes / 1024:.0f} KiB vs {W.nbytes * 2 / 1024:.0f} KiB FP32)")

    sv, info = repro.svdvals(
        W, backend="h100", precision="fp16", return_info=True
    )
    rank = select_rank(sv)
    print(f"planted update rank:  {planted_rank}")
    print(f"selected LoRA rank:   {rank}  (90% spectral energy)")
    print(f"spectral gap:         sv[{planted_rank - 1}]={sv[planted_rank - 1]:.3f} "
          f"-> sv[{planted_rank}]={sv[planted_rank]:.3f}")
    print(f"simulated H100 time:  {info.simulated_seconds * 1e3:.2f} ms (FP16)")

    # FP16 halves the memory: the paper reports H100-resident problems up
    # to 131072^2 in FP16 vs 92681^2 in FP32
    be = repro.resolve_backend("h100")
    print(f"max resident n:       fp16 {be.max_n('fp16')}, "
          f"fp32 {be.max_n('fp32')}, fp64 {be.max_n('fp64')}")

    # compare against an FP32 run: same rank decision, larger footprint
    sv32 = repro.svdvals(W.astype(np.float32), backend="h100", precision="fp32")
    assert select_rank(sv32) == rank
    print("FP32 run selects the same rank - FP16 is sufficient here.")


if __name__ == "__main__":
    main()
