"""Execute every fenced ``python`` block of the given markdown files.

The executable-docs harness behind the CI ``docs`` job: any markdown
file whose examples should not rot lists itself here.  Blocks within one
file share a namespace (so a document can build up state step by step);
files are independent.  A block that raises fails the run with the file
and block number.  Run from the repository root::

    PYTHONPATH=src python examples/run_doc_blocks.py README.md docs/*.md

With no arguments the runner covers README.md plus every ``docs/*.md``.
"""

import pathlib
import re
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent

#: Fenced block opener: ```python (the README/docs convention).
BLOCK_RE = re.compile(r"```python\n(.*?)```", re.S)


def run_file(path: pathlib.Path) -> int:
    """Execute a file's python blocks in one shared namespace."""
    blocks = BLOCK_RE.findall(path.read_text())
    if not blocks:
        print(f"ERROR: {path} has no ```python block")
        raise SystemExit(1)
    namespace = {}
    for i, block in enumerate(blocks, 1):
        lines = len(block.splitlines())
        print(f"-- {path.name}: executing block {i} ({lines} lines)")
        exec(compile(block, f"{path}[block {i}]", "exec"), namespace)
    return len(blocks)


def main(argv=None) -> int:
    args = sys.argv[1:] if argv is None else argv
    if args:
        paths = [pathlib.Path(a) for a in args]
    else:
        paths = [ROOT / "README.md"] + sorted((ROOT / "docs").glob("*.md"))
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(f"ERROR: no such file(s): {', '.join(map(str, missing))}")
        return 1
    total = 0
    for path in paths:
        total += run_file(path)
    print(f"docs OK ({total} block(s) across {len(paths)} file(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
