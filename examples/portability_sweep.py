"""Portability sweep: one code path, every backend and precision.

Reproduces the experience behind the paper's Figure 5: the same unified
function runs on every simulated device and precision (with the paper's
support gaps surfacing as clean errors), while the analytic model prices
the full size range up to each device's memory capacity.

Usage::

    python examples/portability_sweep.py
"""

import numpy as np

import repro
from repro.errors import UnsupportedPrecisionError
from repro.report import format_seconds, format_table
from repro.sim import predict
from repro.tuning import autotune


def numeric_check() -> None:
    """Run the real numerics on every supported (backend, precision)."""
    rng = np.random.default_rng(1)
    A64 = rng.standard_normal((128, 128))
    ref = np.linalg.svd(A64, compute_uv=False)
    print("numeric portability check (n=128):")
    for be in repro.list_backends():
        for prec in ("fp16", "fp32", "fp64"):
            try:
                sv = repro.svdvals(A64, backend=be, precision=prec)
                err = np.linalg.norm(sv - ref) / np.linalg.norm(ref)
                print(f"  {be.name:14s} {prec}: rel err {err:.1e}")
            except UnsupportedPrecisionError as exc:
                print(f"  {be.name:14s} {prec}: unsupported ({exc})")


def predicted_curves() -> None:
    """Figure 5-style table with tuned hyperparameters per configuration."""
    devices = ("h100", "mi250", "m1pro", "pvc")
    precisions = ("fp16", "fp32", "fp64")
    sizes = [2**k for k in range(9, 18)]  # 512 .. 131072
    headers = ["n"] + [f"{d}/{p}" for d in devices for p in precisions]
    body = []
    for n in sizes:
        row = [str(n)]
        for d in devices:
            be = repro.resolve_backend(d)
            for p in precisions:
                if not be.supports(p):
                    row.append("-")
                    continue
                if n > be.max_n(p):
                    row.append("OOM")
                    continue
                params = autotune(n, be, p)
                t = predict(n, be, p, params=params).total_s
                row.append(format_seconds(t).strip())
        body.append(row)
    print()
    print(format_table(headers, body,
                       title="predicted unified runtime (tuned params)"))


if __name__ == "__main__":
    numeric_check()
    predicted_curves()
