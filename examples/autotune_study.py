"""Hyperparameter tuning study (paper section 3.3).

Performance portability in the paper comes from re-tuning TILESIZE /
COLPERBLOCK / SPLITK per hardware and precision instead of rewriting
kernels.  This example runs the brute-force search on several
(device, precision, size) triples, prints the winners, and demonstrates
the headline Table 3 effect: the optimal TILESIZE flips between small and
large matrices, and the MI250's 16 KB L1 bans 64x64 FP64 tiles outright.

Usage::

    python examples/autotune_study.py
"""

import repro
from repro.report import format_seconds, format_table
from repro.sim import KernelParams, predict
from repro.tuning import grid_search


def main() -> None:
    configs = [
        ("h100", "fp32", 512),
        ("h100", "fp32", 32768),
        ("h100", "fp64", 32768),
        ("mi250", "fp32", 32768),
        ("mi250", "fp64", 32768),
        ("m1pro", "fp16", 8192),
        ("pvc", "fp32", 16384),
    ]
    body = []
    for backend, precision, n in configs:
        res = grid_search(n, backend, precision)
        ref = predict(n, backend, precision, params=KernelParams(),
                      check_capacity=False).total_s
        gain = 100.0 * (ref - res.best_seconds) / ref
        body.append([
            backend, precision, str(n), str(res.best),
            format_seconds(res.best_seconds).strip(), f"{gain:+.1f}%",
        ])
    print(format_table(
        ["device", "precision", "n", "best params", "time", "vs reference"],
        body,
        title="brute-force hyperparameter search (reference: TS=32,CPB=32,SK=8)",
    ))

    # show the Table 3 trade-off explicitly on one configuration
    print("\nTILESIZE sweep, H100 FP32 (per-size optimum shifts):")
    for n in (512, 8192, 32768):
        times = {
            ts: predict(n, "h100", "fp32",
                        params=KernelParams(ts, min(ts, 32), 8),
                        check_capacity=False).total_s
            for ts in (16, 32, 64, 128)
        }
        best = min(times, key=times.get)
        row = "  ".join(f"TS={ts}: {format_seconds(t).strip()}"
                        for ts, t in times.items())
        print(f"  n={n:6d}  {row}   -> best TS={best}")

    top = grid_search(32768, "mi250", "fp64").top(5)
    print("\nMI250 FP64 @ 32768, top-5 (the 16KB L1 spill keeps the winner at TS=32):")
    for params, t in top:
        print(f"  {params}  {format_seconds(t).strip()}")


if __name__ == "__main__":
    main()
