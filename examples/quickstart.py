"""Quickstart: compute singular values with the unified Solver handle.

Constructs one :class:`repro.Solver` (backend, precision and
hyperparameters resolved up front), runs the paper's two-stage QR singular
value computation on a simulated H100, compares against NumPy, and shows
the simulated execution report (per-stage timing, kernel launches) that
drives the paper's figures.

Usage::

    python examples/quickstart.py [n]
"""

import sys

import numpy as np

import repro


def main(n: int = 256) -> None:
    rng = np.random.default_rng(0)
    A = rng.standard_normal((n, n)).astype(np.float32)

    # one handle, constructed once: every axis validated up front
    solver = repro.Solver(backend="h100", precision="fp32")
    values, info = solver.solve(A, return_info=True)

    ref = np.linalg.svd(A.astype(np.float64), compute_uv=False)
    err = np.linalg.norm(values - ref) / np.linalg.norm(ref)

    print(f"matrix:               {n} x {n} FP32 on {info.backend}")
    print(f"largest singular val: {values[0]:.6f}")
    print(f"smallest:             {values[-1]:.3e}")
    print(f"relative error:       {err:.2e}  (vs LAPACK FP64)")
    print(f"simulated GPU time:   {info.simulated_seconds * 1e3:.3f} ms")
    print(f"hyperparameters:      {info.params}")
    print("stage breakdown:")
    for stage, seconds in sorted(info.stage_seconds.items()):
        share = seconds / info.simulated_seconds
        print(f"  {stage:8s} {seconds * 1e3:8.3f} ms  ({share:5.1%})")
    print(f"kernel launches:      {info.launch_counts}")

    # the same handle solves any supported shape: rectangular inputs run
    # the tall-QR preprocessing, 3-D stacks the batched driver
    rect = solver.solve(A[:, : n // 2])
    print(f"rectangular:          {n} x {n // 2} -> {rect.shape[0]} values")

    # repeated same-shape solves: plan once, execute many (identical values)
    plan = solver.plan((n, n))
    assert np.array_equal(plan.execute(A), values)
    print(f"plan:                 {plan.launch_prices} launch shapes pre-priced")

    # the same line runs on every simulated backend
    for backend in ("mi250", "m1pro", "pvc"):
        v = repro.Solver(backend=backend, precision="fp32").solve(A)
        assert np.allclose(v, values)
        print(f"portable: identical result on {backend}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 256)
