"""Precision abstraction: the unified API's data-type axis.

The paper's unified function is generic over the input element type ``T``
(FP16 / FP32 / FP64); Julia's type inference specializes the kernels at
compile time.  In this reproduction the same axis is carried explicitly by
:class:`Precision`, which knows

* the NumPy storage dtype,
* machine epsilon (used by the kernels' small-reflector correction,
  Algorithm 3 lines 14-15, and by accuracy tests),
* the element size driving the cost model (cache-line occupancy, register
  pressure, memory-capacity limits), and
* how to resolve user-friendly spellings (``"fp32"``, ``np.float32``, ...).

Backends separately decide the *compute* dtype: e.g. NVIDIA GPUs have no
scalar FP16 units, so FP16 inputs are upcast to FP32 during computation and
stored back in FP16 (paper section 4.3).  See
:meth:`repro.backends.Backend.compute_precision`.
"""

from __future__ import annotations

import enum
from typing import Optional, Union

import numpy as np

from .errors import UnsupportedPrecisionError

__all__ = ["Precision", "PrecisionLike", "resolve_precision"]


class Precision(enum.Enum):
    """Floating-point input precisions supported by the unified API."""

    FP16 = "fp16"
    FP32 = "fp32"
    FP64 = "fp64"

    # ------------------------------------------------------------------ #
    # dtype mapping
    # ------------------------------------------------------------------ #
    @property
    def dtype(self) -> np.dtype:
        """NumPy storage dtype for this precision."""
        return _DTYPES[self]

    @property
    def sizeof(self) -> int:
        """Element size in bytes (drives cost model and capacity checks)."""
        return self.dtype.itemsize

    @property
    def eps(self) -> float:
        """Machine epsilon of this precision (as a Python float)."""
        return float(np.finfo(self.dtype).eps)

    @property
    def tiny(self) -> float:
        """Smallest positive normal number of this precision."""
        return float(np.finfo(self.dtype).tiny)

    @property
    def fmax(self) -> float:
        """Largest finite number of this precision."""
        return float(np.finfo(self.dtype).max)

    @property
    def name_lower(self) -> str:
        """Canonical lower-case name (``"fp16"`` / ``"fp32"`` / ``"fp64"``)."""
        return self.value

    # ------------------------------------------------------------------ #
    # ordering helpers
    # ------------------------------------------------------------------ #
    @property
    def bits(self) -> int:
        """Number of bits per element."""
        return self.sizeof * 8

    # ------------------------------------------------------------------ #
    # dtype inference
    # ------------------------------------------------------------------ #
    @classmethod
    def from_dtype(
        cls, dtype, default: Optional["Precision"] = None
    ) -> "Precision":
        """Infer the storage precision from a NumPy dtype.

        This is the single place the drivers' ``precision=None`` inference
        lives: ``float16/float32/float64`` map to their precisions, any
        other dtype (integers, bools, ...) falls back to ``default``
        (:attr:`Precision.FP64` when not given), matching the unified
        driver's historical behaviour.
        """
        if default is None:
            default = cls.FP64
        try:
            dt = np.dtype(dtype)
        except TypeError:
            return default
        for prec, pdt in _DTYPES.items():
            if dt == pdt:
                return prec
        return default

    def at_least(self, other: "Precision") -> "Precision":
        """Return the wider of ``self`` and ``other``.

        Used for upcast rules: a backend that computes FP16 inputs in FP32
        asks for ``Precision.FP16.at_least(Precision.FP32)``.
        """
        return self if self.bits >= other.bits else other

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        """Qualified member name (``Precision.FP32``)."""
        return f"Precision.{self.name}"


_DTYPES = {
    Precision.FP16: np.dtype(np.float16),
    Precision.FP32: np.dtype(np.float32),
    Precision.FP64: np.dtype(np.float64),
}

#: Anything accepted where a precision is expected.
PrecisionLike = Union[Precision, str, np.dtype, type]

_ALIASES = {
    "fp16": Precision.FP16,
    "half": Precision.FP16,
    "float16": Precision.FP16,
    "fp32": Precision.FP32,
    "single": Precision.FP32,
    "float32": Precision.FP32,
    "fp64": Precision.FP64,
    "double": Precision.FP64,
    "float64": Precision.FP64,
}


def resolve_precision(value: PrecisionLike) -> Precision:
    """Resolve a user-supplied precision spelling to a :class:`Precision`.

    Accepts :class:`Precision` members, strings (``"fp32"``, ``"single"``,
    ``"float32"``, ...), NumPy dtypes and NumPy scalar types.

    Raises
    ------
    UnsupportedPrecisionError
        If the value does not name one of FP16/FP32/FP64.
    """
    if isinstance(value, Precision):
        return value
    if isinstance(value, str):
        key = value.strip().lower()
        if key in _ALIASES:
            return _ALIASES[key]
        raise UnsupportedPrecisionError(f"unknown precision name: {value!r}")
    try:
        dt = np.dtype(value)
    except TypeError as exc:  # not dtype-like at all
        raise UnsupportedPrecisionError(
            f"cannot interpret {value!r} as a precision"
        ) from exc
    for prec, pdt in _DTYPES.items():
        if dt == pdt:
            return prec
    raise UnsupportedPrecisionError(
        f"dtype {dt} is not one of the supported precisions "
        f"(float16, float32, float64)"
    )
