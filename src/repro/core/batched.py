"""Batched singular values: many small matrices in one pass.

The paper's kernels are "optimized for large matrix sizes" and lose to
tuned libraries below 256 because tiny problems cannot occupy a large GPU
(sections 4.1-4.2); its related work cites batched GPU SVD (W-cycle) as
the established answer for many-small-matrix workloads.  This module adds
that capability on the simulated device:

* numerically, each matrix runs the same unified pipeline;
* in the cost model, the batch executes as *batched launches*: one grid
  covers all problems at each schedule step, so occupancy is driven by
  ``batch x per-problem work`` and the per-launch overhead is paid once
  per step instead of once per matrix - exactly why batching wins for
  small sizes.

:func:`predict_batched` exposes the model; :func:`svdvals_batched` runs
the numerics and charges the batched schedule.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from ..backends.backend import BackendLike
from ..config import SolveConfig
from ..errors import CapacityError, ShapeError
from ..precision import PrecisionLike
from ..sim.costmodel import (
    DEFAULT_COEFFS,
    CostCoefficients,
    bidiag_solve_cost,
    brd_cost,
    brd_launch_count,
    panel_cost,
    update_cost,
)
from ..sim.params import KernelParams
from ..sim.schedule import TimeBreakdown
from ..sim.tracing import Stage
from .svd import svdvals_resolved
from .tiling import ntiles

__all__ = ["predict_batched", "svdvals_batched"]


def predict_batched_resolved(
    n: int, batch: int, config: SolveConfig
) -> TimeBreakdown:
    """Batched-prediction implementation against a resolved config.

    The single shared code path behind :meth:`repro.Solver.predict` with
    ``batch=`` and the legacy :func:`predict_batched` shim.
    """
    be = config.backend
    storage = config.require_precision("batched prediction")
    compute = be.compute_precision(storage)
    params = config.params
    coeffs = config.coeffs
    if n < 1 or batch < 1:
        raise ShapeError(f"need positive n and batch, got n={n}, batch={batch}")
    spec = be.device
    total_elems = batch * n * n
    if total_elems * storage.sizeof * 1.25 > spec.mem_bytes:
        raise CapacityError(
            f"batch of {batch} {n}x{n} {storage.name} matrices exceeds "
            f"{spec.mem_gb} GiB device memory"
        )

    ts = params.tilesize
    nbt = max(1, math.ceil(n / ts))
    npad = nbt * ts
    overhead = spec.launch_overhead_s
    bd = TimeBreakdown(n=n)
    launches = {}

    def add(kind: str, stage: str, cost, count: int = 1) -> None:
        launches[kind] = launches.get(kind, 0) + count
        seconds = count * (cost.seconds + overhead)
        if stage == Stage.PANEL:
            bd.panel_s += seconds
        elif stage == Stage.UPDATE:
            bd.update_s += seconds
        elif stage == Stage.BRD:
            bd.brd_s += seconds
        else:
            bd.solve_s += seconds
        bd.flops += count * cost.flops
        bd.bytes += count * cost.bytes

    # batched panel: `batch` independent single-block bodies per launch run
    # concurrently on different SMs; the serial chain length is ONE body,
    # but the launch must fit the device (ceil(batch / SMs) rounds)
    def batched_panel(nbodies: int, body_tiles: int):
        one = panel_cost(spec, params, storage, compute, nbodies, body_tiles,
                         coeffs)
        rounds = max(1, math.ceil(batch / spec.sm_count))
        return type(one)(
            seconds=one.seconds * rounds,
            flops=one.flops * batch,
            bytes=one.bytes * batch,
            compute_seconds=one.compute_seconds * rounds,
            memory_seconds=one.memory_seconds * batch,
        )

    for k in range(nbt - 1):
        w = nbt - 1 - k
        width = w * ts * batch  # all problems' trailing columns in one grid
        r = w
        r2 = w - 1
        add("geqrt_b", Stage.PANEL, batched_panel(1, 1))
        add("unmqr_b", Stage.UPDATE,
            update_cost(spec, params, storage, compute, width, 1, False, coeffs))
        if r > 0:
            add("ftsqrt_b", Stage.PANEL, batched_panel(r, 2))
            add("ftsmqr_b", Stage.UPDATE,
                update_cost(spec, params, storage, compute, width, r, True, coeffs))
        add("geqrt_b", Stage.PANEL, batched_panel(1, 1))
        add("unmqr_b", Stage.UPDATE,
            update_cost(spec, params, storage, compute, width, 1, False, coeffs))
        if r2 > 0:
            add("ftsqrt_b", Stage.PANEL, batched_panel(r2, 2))
            add("ftsmqr_b", Stage.UPDATE,
                update_cost(spec, params, storage, compute, width, r2, True, coeffs))
    add("geqrt_b", Stage.PANEL, batched_panel(1, 1))

    brd = brd_cost(spec, npad, ts, storage, compute, coeffs)
    nbrd = brd_launch_count(npad, ts, coeffs)
    if nbrd:
        launches["brd_chase_b"] = nbrd
        # flops/bytes scale with the batch; the serial chase latency does
        # not (independent problems chase concurrently)
        bd.brd_s += max(
            brd.compute_seconds * batch, brd.memory_seconds * batch,
            brd.seconds,
        ) + nbrd * overhead
        bd.flops += brd.flops * batch
        bd.bytes += brd.bytes * batch
    solve = bidiag_solve_cost(spec, n, storage, coeffs)
    launches["bdsqr_cpu_b"] = 1
    bd.solve_s += solve.compute_seconds * batch + coeffs.cpu_call_overhead_s
    bd.flops += solve.flops * batch
    bd.launches = launches
    return bd


def predict_batched(
    n: int,
    batch: int,
    backend: BackendLike,
    precision: PrecisionLike,
    params: Optional[KernelParams] = None,
    coeffs: CostCoefficients = DEFAULT_COEFFS,
) -> TimeBreakdown:
    """Predict the simulated runtime of ``batch`` SVDs of order ``n``.

    The schedule is the single-matrix schedule with every launch widened
    ``batch``-fold: panel kernels run ``batch`` independent thread blocks
    per step (they parallelize perfectly across problems), update kernels
    process ``batch x width`` columns, and the stage-2/3 work scales
    linearly while sharing launch overheads.  Thin shim over
    :class:`repro.Solver`.
    """
    from ..solver import Solver

    solver = Solver(
        backend=backend, precision=precision, params=params, coeffs=coeffs
    )
    return solver.predict(n, batch=batch)


def svdvals_batched_resolved(
    As: Union[np.ndarray, Sequence[np.ndarray]],
    config: SolveConfig,
    return_info: bool = False,
    workspace: Optional[np.ndarray] = None,
    cost_cache: Optional[dict] = None,
) -> Union[np.ndarray, Tuple[np.ndarray, TimeBreakdown]]:
    """Batched-driver implementation against a resolved config.

    The single shared code path behind :meth:`repro.Solver.solve` for 3-D
    inputs and the legacy :func:`svdvals_batched` shim.  ``workspace`` and
    ``cost_cache`` come from a reused :class:`repro.SvdPlan`; when absent,
    one padded buffer and one launch-price memo are still allocated *once
    per batch* so every matrix after the first skips that setup.
    """
    if isinstance(As, np.ndarray):
        if As.ndim != 3:
            raise ShapeError(f"expected (batch, n, n) array, got {As.shape}")
        mats: List[np.ndarray] = [As[i] for i in range(As.shape[0])]
    else:
        mats = [np.asarray(a) for a in As]
    if not mats:
        raise ShapeError("empty batch")
    n = mats[0].shape[0]
    if n == 0:
        raise ShapeError("empty matrix")
    for a in mats:
        if a.shape != (n, n):
            raise ShapeError("all batch matrices must be square and equal-size")

    # resolve the precision once for the whole batch (from the first
    # matrix's dtype when the handle did not pin one)
    storage = config.storage_for(mats[0].dtype)
    batch_config = (
        config if config.precision is not None
        else config.with_(precision=storage)
    )
    if cost_cache is None:
        cost_cache = {}
    if workspace is None:
        ts = batch_config.params.tilesize
        npad = ntiles(n, ts) * ts
        workspace = np.zeros((npad, npad), dtype=storage.dtype)

    out = np.empty((len(mats), n), dtype=np.float64)
    for i, a in enumerate(mats):
        out[i] = svdvals_resolved(
            a, batch_config, workspace=workspace, cost_cache=cost_cache
        )
    if not return_info:
        return out
    bd = predict_batched_resolved(n, len(mats), batch_config)
    return out, bd


def svdvals_batched(
    As: Union[np.ndarray, Sequence[np.ndarray]],
    backend: BackendLike = "h100",
    precision: Optional[PrecisionLike] = None,
    params: Optional[KernelParams] = None,
    return_info: bool = False,
) -> Union[np.ndarray, Tuple[np.ndarray, TimeBreakdown]]:
    """Singular values of a batch of equal-size square matrices.

    Accepts a 3-D array ``(batch, n, n)`` or a sequence of ``(n, n)``
    arrays; returns a ``(batch, n)`` array of descending singular values
    (and the batched-cost :class:`TimeBreakdown` with ``return_info``).
    Thin shim over :class:`repro.Solver`.
    """
    from ..solver import Solver

    solver = Solver(backend=backend, precision=precision, params=params)
    return solver._solve_batched(As, return_info=return_info)
