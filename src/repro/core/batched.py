"""Batched singular values: many small matrices in one pass.

The paper's kernels are "optimized for large matrix sizes" and lose to
tuned libraries below 256 because tiny problems cannot occupy a large GPU
(sections 4.1-4.2); its related work cites batched GPU SVD (W-cycle) as
the established answer for many-small-matrix workloads.  This module adds
that capability on the simulated device:

* numerically, each matrix runs the same unified pipeline;
* in the cost model, the batch executes as *batched launches*: one grid
  covers all problems at each schedule step, so occupancy is driven by
  ``batch x per-problem work`` and the per-launch overhead is paid once
  per step instead of once per matrix - exactly why batching wins for
  small sizes.

:func:`predict_batched` exposes the model; :func:`svdvals_batched` runs
the numerics and charges the batched schedule.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from ..backends.backend import BackendLike
from ..config import SolveConfig
from ..errors import CapacityError, ShapeError
from ..precision import PrecisionLike
from ..sim.costmodel import DEFAULT_COEFFS, CostCoefficients, brd_launch_count
from ..sim.graph import AnalyticExecutor, LaunchGraph, LaunchNode
from ..sim.params import KernelParams
from ..sim.schedule import TimeBreakdown
from ..sim.tracing import Stage
from .svd import emit_svd_graph, svdvals_resolved
from .tiling import ntiles

__all__ = ["emit_batched_graph", "predict_batched", "svdvals_batched"]


def emit_batched_graph(n: int, batch: int, config: SolveConfig) -> LaunchGraph:
    """Emit the batched launch graph: one grid covers all problems per step.

    Batched panel launches (``panel_b`` cost family) run ``batch``
    independent single-chain bodies concurrently across SMs; batched
    update launches process ``batch x width`` columns in one grid; the
    stage-2 chase and CPU solve scale their work ``batch``-fold while
    sharing launch overheads (``brd_b`` / ``solve_b`` families).  The
    batch executes launch-by-launch, so dependencies form a serial chain.
    """
    ts = config.params.tilesize
    nbt = ntiles(n, ts)
    npad = nbt * ts
    nodes: List[LaunchNode] = []

    def add(kind, stage, key, primary=True) -> None:
        deps = (len(nodes) - 1,) if nodes else ()
        nodes.append(LaunchNode(kind, stage, key, deps=deps, primary=primary))

    for k in range(nbt - 1):
        w = nbt - 1 - k
        width = w * ts * batch  # all problems' trailing columns in one grid
        for r in (w, w - 1):  # RQ sweep, then LQ sweep
            add("geqrt_b", Stage.PANEL, ("panel_b", batch, 1, 1))
            add("unmqr_b", Stage.UPDATE, ("update", width, 1, False))
            if r > 0:
                add("ftsqrt_b", Stage.PANEL, ("panel_b", batch, r, 2))
                add("ftsmqr_b", Stage.UPDATE, ("update", width, r, True))
    add("geqrt_b", Stage.PANEL, ("panel_b", batch, 1, 1))

    nbrd = brd_launch_count(npad, ts, config.coeffs)
    for i in range(nbrd):
        add(
            "brd_chase_b", Stage.BRD, ("brd_b", batch, npad, ts),
            primary=(i == 0),
        )
    add("bdsqr_cpu_b", Stage.SOLVE, ("solve_b", batch, n))
    return LaunchGraph(
        nodes=nodes, kind="batched", n=n, npad=npad, ts=ts, nbt=nbt,
        fused=True, batch=batch,
    )


def predict_batched_resolved(
    n: int, batch: int, config: SolveConfig
) -> TimeBreakdown:
    """Batched-prediction implementation against a resolved config.

    The single shared code path behind :meth:`repro.Solver.predict` with
    ``batch=`` and the legacy :func:`predict_batched` shim: emit the
    batched launch graph and price it analytically.
    """
    be = config.backend
    storage = config.require_precision("batched prediction")
    if n < 1 or batch < 1:
        raise ShapeError(f"need positive n and batch, got n={n}, batch={batch}")
    spec = be.device
    total_elems = batch * n * n
    if total_elems * storage.sizeof * 1.25 > spec.mem_bytes:
        raise CapacityError(
            f"batch of {batch} {n}x{n} {storage.name} matrices exceeds "
            f"{spec.mem_gb} GiB device memory"
        )
    graph = emit_batched_graph(n, batch, config)
    return AnalyticExecutor(config, storage).run(graph)


def predict_batched(
    n: int,
    batch: int,
    backend: BackendLike,
    precision: PrecisionLike,
    params: Optional[KernelParams] = None,
    coeffs: CostCoefficients = DEFAULT_COEFFS,
) -> TimeBreakdown:
    """Predict the simulated runtime of ``batch`` SVDs of order ``n``.

    The schedule is the single-matrix schedule with every launch widened
    ``batch``-fold: panel kernels run ``batch`` independent thread blocks
    per step (they parallelize perfectly across problems), update kernels
    process ``batch x width`` columns, and the stage-2/3 work scales
    linearly while sharing launch overheads.  Thin shim over
    :class:`repro.Solver`.
    """
    from ..solver import Solver

    solver = Solver(
        backend=backend, precision=precision, params=params, coeffs=coeffs
    )
    return solver.predict(n, batch=batch)


def svdvals_batched_resolved(
    As: Union[np.ndarray, Sequence[np.ndarray]],
    config: SolveConfig,
    return_info: bool = False,
    workspace: Optional[np.ndarray] = None,
    cost_cache: Optional[dict] = None,
    graph: Optional[LaunchGraph] = None,
) -> Union[np.ndarray, Tuple[np.ndarray, TimeBreakdown]]:
    """Batched-driver implementation against a resolved config.

    The single shared code path behind :meth:`repro.Solver.solve` for 3-D
    inputs and the legacy :func:`svdvals_batched` shim.  ``workspace``,
    ``cost_cache`` and ``graph`` (the per-matrix square launch graph) come
    from a reused :class:`repro.SvdPlan`; when absent, one padded buffer,
    one launch-price memo and one emitted graph are still allocated *once
    per batch* so every matrix after the first skips that setup.
    """
    if isinstance(As, np.ndarray):
        if As.ndim != 3:
            raise ShapeError(f"expected (batch, n, n) array, got {As.shape}")
        mats: List[np.ndarray] = [As[i] for i in range(As.shape[0])]
    else:
        mats = [np.asarray(a) for a in As]
    if not mats:
        raise ShapeError("empty batch")
    n = mats[0].shape[0]
    if n == 0:
        raise ShapeError("empty matrix")
    for a in mats:
        if a.shape != (n, n):
            raise ShapeError("all batch matrices must be square and equal-size")

    # resolve the precision once for the whole batch (from the first
    # matrix's dtype when the handle did not pin one)
    storage = config.storage_for(mats[0].dtype)
    batch_config = (
        config if config.precision is not None
        else config.with_(precision=storage)
    )
    if cost_cache is None:
        cost_cache = {}
    if workspace is None:
        ts = batch_config.params.tilesize
        npad = ntiles(n, ts) * ts
        workspace = np.zeros((npad, npad), dtype=storage.dtype)
    if graph is None:
        graph = emit_svd_graph(n, batch_config)

    out = np.empty((len(mats), n), dtype=np.float64)
    for i, a in enumerate(mats):
        out[i] = svdvals_resolved(
            a, batch_config, workspace=workspace, cost_cache=cost_cache,
            graph=graph,
        )
    if not return_info:
        return out
    bd = predict_batched_resolved(n, len(mats), batch_config)
    return out, bd


def svdvals_batched(
    As: Union[np.ndarray, Sequence[np.ndarray]],
    backend: BackendLike = "h100",
    precision: Optional[PrecisionLike] = None,
    params: Optional[KernelParams] = None,
    return_info: bool = False,
) -> Union[np.ndarray, Tuple[np.ndarray, TimeBreakdown]]:
    """Singular values of a batch of equal-size square matrices.

    Accepts a 3-D array ``(batch, n, n)`` or a sequence of ``(n, n)``
    arrays; returns a ``(batch, n)`` array of descending singular values
    (and the batched-cost :class:`TimeBreakdown` with ``return_info``).
    Thin shim over :class:`repro.Solver`.
    """
    from ..solver import Solver

    solver = Solver(backend=backend, precision=precision, params=params)
    return solver._solve_batched(As, return_info=return_info)
