"""Batched singular values: many small matrices in one pass.

The paper's kernels are "optimized for large matrix sizes" and lose to
tuned libraries below 256 because tiny problems cannot occupy a large GPU
(sections 4.1-4.2); its related work cites batched GPU SVD (W-cycle) as
the established answer for many-small-matrix workloads.  This module adds
that capability on the simulated device:

* numerically, each matrix runs the same unified pipeline;
* in the cost model, the batch executes as *batched launches*: one grid
  covers all problems at each schedule step, so occupancy is driven by
  ``batch x per-problem work`` and the per-launch overhead is paid once
  per step instead of once per matrix - exactly why batching wins for
  small sizes.

Since the graph-native batching PR, ``batch=`` is a first-class axis of
the stage-graph engine rather than a closed-form detour:
:func:`emit_batched_graph` emits a *replayable* batched
:class:`~repro.sim.graph.LaunchGraph` whose nodes carry both the batched
cost keys and the per-problem tile coordinates (``meta[0]`` is the
problem subset, ``meta[1:]`` the square node's meta), so the graph flows
through the same rewriter stack as every other axis:
``streams=k`` splits the batch into ``k`` round-robin chains that the
list scheduler overlaps, :func:`repro.sim.partition.partition_graph`
shards the batch round-robin across devices (comm only for the result
gather), and :func:`repro.sim.outofcore.rewrite_out_of_core` streams
whole problems through a bounded device window shared by every in-flight
problem.  :func:`predict_batched_resolved` is the emit -> (partition ->)
(rewrite ->) price pipeline behind ``Solver.predict(n, batch=b, ...)``;
the pre-composition pricing survives as
:func:`batched_closed_form_resolved`, the consistency oracle the tests
pin the graph path against.  :func:`replay_batched_graph` replays any
replayable batched graph (sharded or out-of-core) numerically, bitwise
identical to solving each matrix alone.
"""

from __future__ import annotations

import math

from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..backends.backend import BackendLike
from ..config import SolveConfig
from ..errors import CapacityError, InvalidParamsError, ShapeError
from ..precision import PrecisionLike
from ..sim.costmodel import (
    DEFAULT_COEFFS,
    CostCoefficients,
    bidiag_solve_cost,
    brd_cost,
    brd_launch_count,
    panel_cost,
    update_cost,
)
from ..sim.graph import (
    AnalyticExecutor,
    LaunchGraph,
    LaunchNode,
    NumericExecutor,
)
from ..sim.params import KernelParams
from ..sim.schedule import TimeBreakdown
from ..sim.table import (
    FAMILIES,
    NodeTable,
    bound_structure,
    price_table,
)
from ..sim.tracing import Stage
from .svd import _rescale_factor, emit_svd_graph, svdvals_resolved
from .tiling import ntiles

__all__ = [
    "batched_closed_form_resolved",
    "bind_batched_table",
    "emit_batched_graph",
    "predict_batched",
    "replay_batched_graph",
    "svdvals_batched",
]

_FAM = {name: i for i, name in enumerate(FAMILIES)}
_SID = {stage: i for i, stage in enumerate(Stage.ALL)}


def emit_batched_graph(
    n: int, batch: int, config: SolveConfig, streams: int = 1
) -> LaunchGraph:
    """Emit the batched launch graph: one grid covers all problems per step.

    Batched panel launches (``panel_b`` cost family) run their problems'
    independent single-chain bodies concurrently across SMs; batched
    update launches process ``problems x width`` columns in one grid; the
    stage-2 chase and CPU solve scale their work batch-fold while sharing
    launch overheads (``brd_b`` / ``solve_b`` families).  With
    ``streams=1`` the whole batch executes launch-by-launch, so
    dependencies form one serial chain and launch counts are independent
    of the batch size; ``streams=k`` splits the batch into ``k``
    round-robin *chains* (chain ``j`` owns problems ``j, j+k, ...``) that
    carry no cross-chain dependencies, so the list scheduler overlaps
    them across streams.

    Every node's ``meta`` is ``(problem subset, *square meta)`` - the
    same tile coordinates the square emitter records - which is what
    makes batched graphs replayable (:func:`replay_batched_graph`),
    partitionable (round-robin over devices) and rewritable out-of-core
    (whole problems streamed through the window).
    """
    if n < 1 or batch < 1:
        raise ShapeError(f"need positive n and batch, got n={n}, batch={batch}")
    if streams < 1:
        raise ShapeError(f"need at least one stream, got {streams}")
    ts = config.params.tilesize
    nbt = ntiles(n, ts)
    npad = nbt * ts
    nchains = min(streams, batch)
    nbrd = brd_launch_count(npad, ts, config.coeffs)
    nodes: List[LaunchNode] = []

    for j in range(nchains):
        probs = ("b", j, batch, nchains)
        bcount = len(range(j, batch, nchains))
        prev: Optional[int] = None

        def add(kind, stage, key, meta, primary=True) -> None:
            nonlocal prev
            deps = (prev,) if prev is not None else ()
            nodes.append(
                LaunchNode(kind, stage, key, meta, deps, primary=primary)
            )
            prev = len(nodes) - 1

        for k in range(nbt - 1):
            w = nbt - 1 - k
            width = w * ts * bcount  # this chain's trailing columns
            for lq in (False, True):
                row0 = k + 1 if lq else k
                r = nbt - row0 - 1  # w on the RQ sweep, w - 1 on the LQ
                sweep = 2 * k + (1 if lq else 0)
                add(
                    "geqrt_b", Stage.PANEL, ("panel_b", bcount, 1, 1),
                    (probs, lq, row0, k, sweep),
                )
                add(
                    "unmqr_b", Stage.UPDATE, ("update", width, 1, False),
                    (probs, lq, row0, k, k + 1, 0, w * ts, sweep),
                )
                if r > 0:
                    below = (row0 + 1, nbt)
                    add(
                        "ftsqrt_b", Stage.PANEL, ("panel_b", bcount, r, 2),
                        (probs, lq, row0, k, below, sweep),
                    )
                    add(
                        "ftsmqr_b", Stage.UPDATE, ("update", width, r, True),
                        (probs, lq, row0, k, below, k + 1, 0, w * ts, sweep),
                    )
        add(
            "geqrt_b", Stage.PANEL, ("panel_b", bcount, 1, 1),
            (probs, False, nbt - 1, nbt - 1, 2 * (nbt - 1)),
        )
        for i in range(nbrd):
            add(
                "brd_chase_b", Stage.BRD, ("brd_b", bcount, npad, ts),
                (probs,), primary=(i == 0),
            )
        add("bdsqr_cpu_b", Stage.SOLVE, ("solve_b", bcount, n), (probs,))

    return LaunchGraph(
        nodes=nodes, kind="batched", n=n, npad=npad, ts=ts, nbt=nbt,
        fused=True, streams=nchains, batch=batch,
    )


def bind_batched_table(
    n: int, batch: int, config: SolveConfig, streams: int = 1
) -> NodeTable:
    """Bind the batched sweep structure to ``(n, batch)`` as a node table.

    Shape-parametric emission for the batched family: the round-robin
    chain structure of :func:`emit_batched_graph` is assembled directly
    as the struct-of-arrays :class:`~repro.sim.table.NodeTable` - one
    key block per distinct chain size, closed-form index arrays over the
    sweep count - and memoized process-wide per
    ``(config, n, batch, chains)`` through
    :func:`~repro.sim.table.bound_structure`.  Node for node equal to
    ``emit_batched_graph(n, batch, config, streams).table()`` (pinned by
    ``tests/test_table_props.py``); this is what single-device batched
    prediction and admission pricing consume instead of re-emitting.

    Binding is two-level: the count-invariant chain *skeleton* (node
    columns, kind/stage/key layout) is built once per
    ``(config, n, chains, remainder)`` and each concrete ``batch`` only
    recomputes the key operand rows - so the admission controller's shed
    loop re-prices a shrinking batch incrementally instead of re-emitting
    per round.
    """
    if n < 1 or batch < 1:
        raise ShapeError(f"need positive n and batch, got n={n}, batch={batch}")
    if streams < 1:
        raise ShapeError(f"need at least one stream, got {streams}")
    nchains = min(streams, batch)
    return bound_structure(
        ("bat_table", config, n, batch, nchains),
        lambda: _bind_batched_count(n, batch, nchains, config),
    )


def _batched_key_ops(
    bcount: int, n: int, npad: int, ts: int, nbt: int,
    widths: np.ndarray, k: np.ndarray, r: np.ndarray,
) -> List[Tuple[float, float, float, float]]:
    """Operand rows of one chain-size key block (families are invariant).

    Layout per block: the chain's GEQRT_B key, per-k UNMQR_B widths,
    per-r FTSQRT_B panels, per-sweep FTSMQR_B updates, then the chain's
    stage-2/3 keys - the only place the problem count enters the table.
    """
    ops = [(float(bcount), 1.0, 1.0, 0.0)]
    ops += [(float(w * bcount), 1.0, 0.0, 0.0) for w in widths.tolist()]
    ops += [(float(bcount), float(rr), 2.0, 0.0) for rr in range(1, nbt)]
    ops += [
        (float(w * bcount), float(rr), 1.0, 0.0)
        for w, rr in zip(widths[k].tolist(), r.tolist())
    ]
    ops += [
        (float(bcount), float(npad), float(ts), 0.0),
        (float(bcount), float(n), 0.0, 0.0),
    ]
    return ops


def _bind_batched_count(
    n: int, batch: int, nchains: int, config: SolveConfig
) -> NodeTable:
    """Bind the memoized chain skeleton to a concrete problem count.

    ``batch`` distributes round-robin as ``rem`` chains of ``q + 1``
    problems and the rest of ``q``; every count with the same
    ``(nchains, rem)`` shares one skeleton's column arrays, so binding a
    new count is O(unique keys), not O(nodes).
    """
    q, rem = divmod(batch, nchains)
    skel = bound_structure(
        ("bat_skel", config, n, nchains, rem),
        lambda: _build_batched_table(n, nchains + rem, nchains, config),
    )
    ts = config.params.tilesize
    nbt = ntiles(n, ts)
    npad = nbt * ts
    F = max(2 * (nbt - 1) - 1, 0)
    s = np.arange(F, dtype=np.int64)
    k = s >> 1
    r = nbt - 1 - k - (s & 1)
    widths = np.arange(nbt - 1, 0, -1, dtype=np.int64) * ts
    ops: List[Tuple[float, float, float, float]] = []
    for b in ([q + 1] * min(rem, 1) + [q]) if rem else [q]:
        ops += _batched_key_ops(b, n, npad, ts, nbt, widths, k, r)
    return NodeTable(
        kind="batched",
        n=n,
        npad=npad,
        ts=ts,
        nbt=nbt,
        ngpu=1,
        out_of_core=False,
        kinds=skel.kinds,
        kind_id=skel.kind_id,
        stage_id=skel.stage_id,
        key_id=skel.key_id,
        counts=skel.counts,
        primary=skel.primary,
        device=skel.device,
        sweep=skel.sweep,
        fam=skel.fam,
        ops=np.asarray(ops, dtype=np.float64).reshape(len(ops), 4),
    )


def _build_batched_table(
    n: int, batch: int, nchains: int, config: SolveConfig
) -> NodeTable:
    """Assemble a batched table from scratch (the skeleton builder)."""
    ts = config.params.tilesize
    nbt = ntiles(n, ts)
    npad = nbt * ts
    nbrd = brd_launch_count(npad, ts, config.coeffs)
    PANEL, UPDATE = _SID[Stage.PANEL], _SID[Stage.UPDATE]
    BRD, SOLVE = _SID[Stage.BRD], _SID[Stage.SOLVE]

    S = 2 * (nbt - 1)  # sweeps; the last one has no rows below the pivot
    F = max(S - 1, 0)  # sweeps emitting a full panel/update pair
    s = np.arange(F, dtype=np.int64)
    k = s >> 1
    r = nbt - 1 - k - (s & 1)  # rows below the pivot, per sweep
    widths = np.arange(nbt - 1, 0, -1, dtype=np.int64) * ts  # k ascending

    kinds: Tuple[str, ...] = (
        ("geqrt_b",)
        if nbt == 1
        else ("geqrt_b", "unmqr_b", "ftsqrt_b", "ftsmqr_b")
    )
    brd_kind = len(kinds)
    solve_kind = brd_kind + (1 if nbrd else 0)
    if nbrd:
        kinds = kinds + ("brd_chase_b",)
    kinds = kinds + ("bdsqr_cpu_b",)

    # chains of the same size share one key block and one node-column
    # block (chain j owns problems j, j+nchains, ...; at most two sizes)
    fam: List[int] = []
    ops: List[Tuple[float, float, float, float]] = []
    blocks: Dict[int, Tuple[np.ndarray, ...]] = {}
    segs: List[Tuple[np.ndarray, ...]] = []
    for j in range(nchains):
        bcount = len(range(j, batch, nchains))
        block = blocks.get(bcount)
        if block is None:
            # key block: the chain's GEQRT_B key, per-k UNMQR_B widths,
            # per-r FTSQRT_B panels, per-sweep FTSMQR_B updates, then the
            # chain's stage-2/3 keys
            base = len(fam)
            fam.append(_FAM["panel_b"])
            ops.append((float(bcount), 1.0, 1.0, 0.0))
            fam += [_FAM["update"]] * (nbt - 1)
            ops += [(float(w * bcount), 1.0, 0.0, 0.0) for w in widths.tolist()]
            fam += [_FAM["panel_b"]] * (nbt - 1)
            ops += [
                (float(bcount), float(rr), 2.0, 0.0) for rr in range(1, nbt)
            ]
            fam += [_FAM["update"]] * F
            ops += [
                (float(w * bcount), float(rr), 1.0, 0.0)
                for w, rr in zip(widths[k].tolist(), r.tolist())
            ]
            brd_id = base + 2 * nbt - 1 + F
            fam += [_FAM["brd_b"], _FAM["solve_b"]]
            ops += [
                (float(bcount), float(npad), float(ts), 0.0),
                (float(bcount), float(n), 0.0, 0.0),
            ]

            # node columns: F full sweeps of four launches, the below-less
            # tail sweep, the final diagonal GEQRT_B, stage-2 chain, solve
            chain_segs: List[Tuple[np.ndarray, ...]] = []
            if nbt > 1:
                neg = np.full(F, -1, dtype=np.int64)
                chain_segs.append(
                    (
                        np.tile(np.arange(4, dtype=np.int64), F),
                        np.tile(
                            np.array(
                                [PANEL, UPDATE, PANEL, UPDATE], np.int64
                            ),
                            F,
                        ),
                        np.stack(
                            [
                                np.full(F, base, np.int64),
                                base + 1 + k,
                                base + nbt - 1 + r,
                                base + 2 * nbt - 1 + s,
                            ],
                            axis=1,
                        ).ravel(),
                        np.stack([neg, s, neg, s], axis=1).ravel(),
                        np.ones(4 * F, np.int64),
                        np.ones(4 * F, bool),
                    )
                )
                chain_segs.append(
                    (  # tail sweep (s = S-1): GEQRT_B + UNMQR_B
                        np.array([0, 1], np.int64),
                        np.array([PANEL, UPDATE], np.int64),
                        np.array([base, base + nbt - 1], np.int64),
                        np.array([-1, S - 1], np.int64),
                        np.ones(2, np.int64),
                        np.ones(2, bool),
                    )
                )
            primary_tail = np.ones(nbrd + 2, bool)
            primary_tail[2:-1] = False  # chase cost rides on launch one
            chain_segs.append(
                (
                    np.r_[0, [brd_kind] * nbrd, solve_kind].astype(np.int64),
                    np.r_[PANEL, [BRD] * nbrd, SOLVE].astype(np.int64),
                    np.r_[base, [brd_id] * nbrd, brd_id + 1].astype(np.int64),
                    np.full(nbrd + 2, -1, dtype=np.int64),
                    np.ones(nbrd + 2, np.int64),
                    primary_tail,
                )
            )
            block = tuple(
                np.concatenate([seg[i] for seg in chain_segs])
                for i in range(6)
            )
            blocks[bcount] = block
        segs.append(block)
    kind_id, stage_id, key_id, sweep, counts, primary = (
        np.concatenate([seg[i] for seg in segs]) for i in range(6)
    )
    return NodeTable(
        kind="batched",
        n=n,
        npad=npad,
        ts=ts,
        nbt=nbt,
        ngpu=1,
        out_of_core=False,
        kinds=kinds,
        kind_id=kind_id,
        stage_id=stage_id,
        key_id=key_id,
        counts=counts,
        primary=primary,
        device=np.zeros(kind_id.size, dtype=np.int64),
        sweep=sweep,
        fam=np.asarray(fam, dtype=np.int64),
        ops=np.asarray(ops, dtype=np.float64).reshape(len(fam), 4),
    )


def check_batched_capacity(
    n: int, batch: int, config: SolveConfig, ngpu: int = 1
) -> None:
    """Raise :class:`CapacityError` if a device's sub-batch exceeds memory.

    Each device of a round-robin batch shard holds ``ceil(batch / g)``
    matrices, with the same 1.25 working-set factor the single-matrix
    capacity model uses.
    """
    storage = config.require_precision("batched prediction")
    spec = config.backend.device
    per_dev = math.ceil(batch / max(1, ngpu))
    if per_dev * n * n * storage.sizeof * 1.25 > spec.mem_bytes:
        where = (
            f"{spec.mem_gb} GiB device memory"
            if ngpu == 1
            else f"{spec.mem_gb} GiB per device across {ngpu} devices"
        )
        raise CapacityError(
            f"batch of {batch} {n}x{n} {storage.name} matrices exceeds "
            f"{where} (use more devices, out_of_core=True, or a smaller "
            f"batch)"
        )


def predict_batched_resolved(
    n: int,
    batch: int,
    config: SolveConfig,
    ngpu: int = 1,
    nodes: int = 1,
    streams: int = 1,
    out_of_core: bool = False,
    link_gbs: Optional[float] = None,
    fabric_gbs: Optional[float] = None,
    budget_bytes: Optional[float] = None,
    check_capacity: bool = True,
):
    """Batched-prediction implementation against a resolved config.

    The single shared code path behind :meth:`repro.Solver.predict` with
    ``batch=`` and the legacy :func:`predict_batched` shim - and since
    the graph-native batching PR the full composition pipeline: emit the
    batched launch graph (``streams`` chains), shard the batch round-robin
    across ``ngpu`` devices with an explicit ``batch_gather`` comm node,
    rewrite each device's chains against its memory budget
    (``out_of_core=True``: whole problems stream through the window,
    sharing the budget across in-flight problems), and price the result -
    analytically for ``streams == 1``, through the device-aware list
    scheduler otherwise (returning a
    :class:`~repro.sim.timeline.StreamSchedule`).

    ``nodes >= 2`` shards the batch round-robin across all
    ``nodes * ngpu`` device ranks instead, with per-source gather comm
    nodes priced at the tier they cross, and runs the discrete-event
    simulator (:func:`repro.sim.events.simulate_events`) so concurrent
    inter-node gathers queue on the destination's fabric lane (returns
    an :class:`~repro.sim.events.EventSchedule`); it does not compose
    with ``out_of_core``.

    The plain single-device path (``ngpu=1, streams=1``, in-core) never
    materializes nodes at all: it binds the shape-parametric structure
    (:func:`bind_batched_table`) and prices the table.  Composed graphs
    are memoized per axes through the same bound-structure memo, so
    repeated predictions (``Solver.tune`` candidates, admission pricing)
    re-emit nothing.
    """
    storage = config.require_precision("batched prediction")
    if n < 1 or batch < 1:
        raise ShapeError(f"need positive n and batch, got n={n}, batch={batch}")
    if nodes < 1:
        raise InvalidParamsError(
            f"nodes must be a positive node count, got {nodes}"
        )
    if out_of_core and nodes > 1:
        raise InvalidParamsError(
            f"out_of_core streaming and multi-node execution do not "
            f"compose yet; got out_of_core=True with nodes={nodes} "
            f"(drop one of the two axes)"
        )
    if check_capacity and not out_of_core:
        check_batched_capacity(n, batch, config, nodes * ngpu)

    if nodes > 1:
        from ..sim.events import simulate_events
        from ..sim.partition import partition_graph

        fabric = config.fabric_spec(link_gbs, fabric_gbs)

        def _compose_cluster() -> LaunchGraph:
            graph = emit_batched_graph(n, batch, config, streams=streams)
            return partition_graph(graph, ngpu, nodes=nodes, fabric=fabric)

        graph = bound_structure(
            (
                "bat_cluster_graph", config, n, batch,
                min(streams, batch), nodes, ngpu, fabric,
            ),
            _compose_cluster,
        )
        return simulate_events(graph, config, storage, streams=streams)

    if ngpu == 1 and streams == 1 and not out_of_core:
        return price_table(
            bind_batched_table(n, batch, config), config, storage, None
        )

    # lazy: the rewriters live in repro.sim, which core already imports,
    # but partition/outofcore import this module's graph kinds
    from ..sim.outofcore import rewrite_out_of_core
    from ..sim.partition import partition_graph, price_partitioned
    from ..sim.timeline import schedule_streams

    link = config.link_spec(link_gbs) if ngpu > 1 else None

    def _compose() -> LaunchGraph:
        graph = emit_batched_graph(n, batch, config, streams=streams)
        if ngpu > 1:
            graph = partition_graph(graph, ngpu, link)
        if out_of_core:
            graph = rewrite_out_of_core(
                graph, config, storage, budget_bytes=budget_bytes
            )
        return graph

    graph = bound_structure(
        (
            "bat_graph", config, n, batch, min(streams, batch), ngpu, link,
            out_of_core, budget_bytes,
        ),
        _compose,
    )
    if streams > 1:
        return schedule_streams(graph, config, storage, streams)
    if ngpu > 1:
        return price_partitioned(graph, config, storage)
    return AnalyticExecutor(config, storage).run(graph)


def batched_closed_form_resolved(
    n: int, batch: int, config: SolveConfig
) -> TimeBreakdown:
    """Legacy closed-form batched model (kept as a consistency oracle).

    This is the pre-composition pricing: one serial chain of aggregate
    batched launches on one device, summed step by step - no partitioning,
    no streaming, no transfers.  The graph path
    (:func:`emit_batched_graph` + analytic pricing) replaced it;
    ``tests/test_batched_compose.py`` pins the two models against each
    other within tolerance, so the graph-native pricing cannot silently
    drift from the physics this formula encodes.
    """
    storage = config.require_precision("batched prediction")
    if n < 1 or batch < 1:
        raise ShapeError(f"need positive n and batch, got n={n}, batch={batch}")
    spec = config.backend.device
    params, coeffs = config.params, config.coeffs
    compute = config.backend.compute_precision(storage)
    ts = params.tilesize
    nbt = ntiles(n, ts)
    npad = nbt * ts
    over = spec.launch_overhead_s
    rounds = max(1, math.ceil(batch / spec.sm_count))

    panel_s = update_s = 0.0
    flops = nbytes = 0.0
    launches = {"geqrt_b": 0, "unmqr_b": 0, "ftsqrt_b": 0, "ftsmqr_b": 0}

    def charge_panel(nbodies: int, body_tiles: int) -> float:
        nonlocal flops, nbytes
        one = panel_cost(
            spec, params, storage, compute, nbodies, body_tiles, coeffs
        )
        flops += one.flops * batch
        nbytes += one.bytes * batch
        return one.seconds * rounds + over

    def charge_update(width: int, nrows: int, top: bool) -> float:
        nonlocal flops, nbytes
        cost = update_cost(
            spec, params, storage, compute, width, nrows, top, coeffs
        )
        flops += cost.flops
        nbytes += cost.bytes
        return cost.seconds + over

    for k in range(nbt - 1):
        w = nbt - 1 - k
        width = w * ts * batch
        for r in (w, w - 1):  # RQ sweep, then LQ sweep
            panel_s += charge_panel(1, 1)
            update_s += charge_update(width, 1, False)
            launches["geqrt_b"] += 1
            launches["unmqr_b"] += 1
            if r > 0:
                panel_s += charge_panel(r, 2)
                update_s += charge_update(width, r, True)
                launches["ftsqrt_b"] += 1
                launches["ftsmqr_b"] += 1
    panel_s += charge_panel(1, 1)
    launches["geqrt_b"] += 1

    one_brd = brd_cost(spec, npad, ts, storage, compute, coeffs)
    nbrd = brd_launch_count(npad, ts, coeffs)
    brd_s = (
        max(
            one_brd.compute_seconds * batch,
            one_brd.memory_seconds * batch,
            one_brd.seconds,
        )
        + nbrd * over
    )
    flops += one_brd.flops * batch
    nbytes += one_brd.bytes * batch
    launches["brd_chase_b"] = nbrd

    one_solve = bidiag_solve_cost(spec, n, storage, coeffs)
    solve_s = one_solve.compute_seconds * batch + coeffs.cpu_call_overhead_s
    flops += one_solve.flops * batch
    launches["bdsqr_cpu_b"] = 1

    return TimeBreakdown(
        n=n, panel_s=panel_s, update_s=update_s, brd_s=brd_s,
        solve_s=solve_s, launches=launches, flops=flops, bytes=nbytes,
    )


def predict_batched(
    n: int,
    batch: int,
    backend: BackendLike,
    precision: PrecisionLike,
    params: Optional[KernelParams] = None,
    coeffs: CostCoefficients = DEFAULT_COEFFS,
) -> TimeBreakdown:
    """Predict the simulated runtime of ``batch`` SVDs of order ``n``.

    The schedule is the single-matrix schedule with every launch widened
    ``batch``-fold: panel kernels run ``batch`` independent thread blocks
    per step (they parallelize perfectly across problems), update kernels
    process ``batch x width`` columns, and the stage-2/3 work scales
    linearly while sharing launch overheads.  Thin shim over
    :class:`repro.Solver`; compose with ``ngpu`` / ``streams`` /
    ``out_of_core`` through :meth:`repro.Solver.predict` directly.
    """
    from ..solver import Solver

    solver = Solver(
        backend=backend, precision=precision, params=params, coeffs=coeffs
    )
    return solver.predict(n, batch=batch)


def replay_batched_graph(
    As: Union[np.ndarray, Sequence[np.ndarray]],
    graph: LaunchGraph,
    config: SolveConfig,
) -> np.ndarray:
    """Numerically replay a replayable batched launch graph.

    Accepts any batched graph in replayable form - straight from
    :func:`emit_batched_graph` (any ``streams``), sharded by
    :func:`repro.sim.partition.partition_graph`, and/or rewritten by
    :func:`repro.sim.outofcore.rewrite_out_of_core` - and executes it
    through the :class:`~repro.sim.graph.NumericExecutor` on a 3-D
    workspace stack.  Each problem runs the exact kernel sequence of the
    square driver, so the returned ``(batch, n)`` values are bitwise
    identical to solving every matrix alone (out-of-core graphs replay
    under the enforced problem-window budget).
    """
    if isinstance(As, np.ndarray):
        if As.ndim != 3:
            raise ShapeError(f"expected (batch, n, n) array, got {As.shape}")
        mats: List[np.ndarray] = [As[i] for i in range(As.shape[0])]
    else:
        mats = [np.asarray(a) for a in As]
    if not mats:
        raise ShapeError("empty batch")
    n = mats[0].shape[0]
    if n == 0:
        raise ShapeError("empty matrix")
    for a in mats:
        if a.shape != (n, n):
            raise ShapeError("all batch matrices must be square and equal-size")
    if graph.kind != "batched" or graph.counted:
        raise ShapeError(
            f"replay_batched_graph needs a replayable batched graph, got "
            f"kind={graph.kind!r} (counted={graph.counted})"
        )
    if graph.n != n or graph.batch != len(mats):
        raise ShapeError(
            f"graph was emitted for batch={graph.batch} n={graph.n}, got "
            f"batch={len(mats)} n={n}"
        )

    storage = config.storage_for(mats[0].dtype)
    if graph.ts != config.params.tilesize:
        raise ShapeError(
            f"graph tilesize {graph.ts} does not match config tilesize "
            f"{config.params.tilesize}"
        )
    if config.check_finite and any(
        not np.all(np.isfinite(a)) for a in mats
    ):
        raise ShapeError("input matrix contains NaN or Inf entries")
    compute = config.backend.compute_precision(storage)
    compute_dtype = compute.dtype if compute is not storage else None

    npad = graph.npad
    W = np.zeros((len(mats), npad, npad), dtype=storage.dtype)
    scales = []
    for p, a in enumerate(mats):
        scale = _rescale_factor(a, storage) if config.rescale else 1.0
        scales.append(scale)
        W[p, :n, :n] = a if scale == 1.0 else a * scale

    ex = NumericExecutor(
        W, graph.ts, storage.eps, session=None, compute_dtype=compute_dtype,
        storage=storage, stage3=config.stage3,
    )
    ex.run(graph)

    out = np.empty((len(mats), n), dtype=np.float64)
    for p, scale in enumerate(scales):
        vals = ex.values_by_problem[p][:n].copy()
        if scale != 1.0:
            vals /= scale
        out[p] = vals
    return out


def svdvals_batched_resolved(
    As: Union[np.ndarray, Sequence[np.ndarray]],
    config: SolveConfig,
    return_info: bool = False,
    workspace: Optional[np.ndarray] = None,
    cost_cache: Optional[dict] = None,
    graph: Optional[LaunchGraph] = None,
) -> Union[np.ndarray, Tuple[np.ndarray, TimeBreakdown]]:
    """Batched-driver implementation against a resolved config.

    The single shared code path behind :meth:`repro.Solver.solve` for 3-D
    inputs and the legacy :func:`svdvals_batched` shim.  ``workspace``,
    ``cost_cache`` and ``graph`` (the per-matrix square launch graph) come
    from a reused :class:`repro.SvdPlan`; when absent, one padded buffer,
    one launch-price memo and one emitted graph are still allocated *once
    per batch* so every matrix after the first skips that setup.
    """
    if isinstance(As, np.ndarray):
        if As.ndim != 3:
            raise ShapeError(f"expected (batch, n, n) array, got {As.shape}")
        mats: List[np.ndarray] = [As[i] for i in range(As.shape[0])]
    else:
        mats = [np.asarray(a) for a in As]
    if not mats:
        raise ShapeError("empty batch")
    n = mats[0].shape[0]
    if n == 0:
        raise ShapeError("empty matrix")
    for a in mats:
        if a.shape != (n, n):
            raise ShapeError("all batch matrices must be square and equal-size")

    # resolve the precision once for the whole batch (from the first
    # matrix's dtype when the handle did not pin one)
    storage = config.storage_for(mats[0].dtype)
    batch_config = (
        config if config.precision is not None
        else config.with_(precision=storage)
    )
    if cost_cache is None:
        cost_cache = {}
    if workspace is None:
        ts = batch_config.params.tilesize
        npad = ntiles(n, ts) * ts
        workspace = np.zeros((npad, npad), dtype=storage.dtype)
    if graph is None:
        graph = emit_svd_graph(n, batch_config)

    out = np.empty((len(mats), n), dtype=np.float64)
    for i, a in enumerate(mats):
        out[i] = svdvals_resolved(
            a, batch_config, workspace=workspace, cost_cache=cost_cache,
            graph=graph,
        )
    if not return_info:
        return out
    bd = predict_batched_resolved(n, len(mats), batch_config)
    return out, bd


def svdvals_batched(
    As: Union[np.ndarray, Sequence[np.ndarray]],
    backend: BackendLike = "h100",
    precision: Optional[PrecisionLike] = None,
    params: Optional[KernelParams] = None,
    return_info: bool = False,
) -> Union[np.ndarray, Tuple[np.ndarray, TimeBreakdown]]:
    """Singular values of a batch of equal-size square matrices.

    Accepts a 3-D array ``(batch, n, n)`` or a sequence of ``(n, n)``
    arrays; returns a ``(batch, n)`` array of descending singular values
    (and the batched-cost :class:`TimeBreakdown` with ``return_info``).
    Thin shim over :class:`repro.Solver`.
    """
    from ..solver import Solver

    solver = Solver(backend=backend, precision=precision, params=params)
    return solver._solve_batched(As, return_info=return_info)
