"""Rectangular and tall-and-skinny input support (paper future work).

The paper's solver targets square matrices; "support for non-square
matrices and specialized algorithms for tall and skinny matrices" is
listed as further work.  This module implements the classical approach on
the same kernel set:

* ``m > n`` (tall): reduce to an ``n x n`` triangular factor with a tiled
  **TSQR panel chain** - one GEQRT on the top tile followed by fused TSQRT
  over the remaining tile rows, i.e. exactly the stage-1 panel kernels
  applied to a single block column (with trailing updates across the
  ``n``-wide row panels) - then run the square pipeline on ``R``;
* ``m < n`` (wide): singular values are transpose-invariant, so the tall
  path runs on the lazy transpose.

For extreme aspect ratios this *is* the specialized tall-and-skinny
algorithm: the panel chain costs ``O(m n^2)`` and the square solve
``O(n^3)``.
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

import numpy as np

from ..backends.backend import BackendLike
from ..config import SolveConfig
from ..errors import ShapeError
from ..precision import PrecisionLike
from ..sim.costmodel import DEFAULT_COEFFS, CostCoefficients
from ..sim.graph import LaunchGraph, LaunchNode, NumericExecutor
from ..sim.params import KernelParams
from ..sim.session import Session
from ..sim.tracing import Stage
from .svd import SVDInfo, svdvals_resolved
from .tiling import ntiles

__all__ = ["emit_tallqr_graph", "qr_reduce_tall", "svdvals_rect"]


def _emit_tallqr_nodes(mt: int, nt: int, ts: int) -> List[LaunchNode]:
    """Launch nodes of the tall-QR chain over an ``mt x nt`` tile grid."""
    npad = nt * ts
    nodes: List[LaunchNode] = []

    def add(kind, stage, key, meta, deps) -> int:
        nodes.append(LaunchNode(kind, stage, key, meta, tuple(deps)))
        return len(nodes) - 1

    prev_updates: List[int] = []
    for k in range(nt):
        g = add(
            "geqrt", Stage.PANEL, ("panel", 1, 1), (False, k, k, k),
            prev_updates,
        )
        width = npad - (k + 1) * ts
        updates: List[int] = []
        if width > 0:
            updates.append(
                add(
                    "unmqr", Stage.UPDATE, ("update", width, 1, False),
                    (False, k, k, k + 1, 0, width, k), [g],
                )
            )
        below = (k + 1, mt)  # tile-row range (start, stop)
        r = mt - k - 1
        if r > 0:
            fq = add(
                "ftsqrt", Stage.PANEL, ("panel", r, 2),
                (False, k, k, below, k), [g],
            )
            if width > 0:
                updates.append(
                    add(
                        "ftsmqr", Stage.UPDATE,
                        ("update", width, r, True),
                        (False, k, k, below, k + 1, 0, width, k),
                        [fq, updates[0]],
                    )
                )
            else:
                updates.append(fq)
        prev_updates = updates or [g]
    return nodes


def emit_tallqr_graph(m: int, n: int, config: SolveConfig) -> LaunchGraph:
    """Emit the tall-QR preprocessing graph for an ``m x n`` panel chain.

    One node per launch of :func:`qr_reduce_tall` over the padded
    ``(mpad, npad)`` tile grid: per block column, GEQRT + UNMQR + one
    fused TSQRT/TSMQR pass down the remaining tile rows (the chain always
    uses the fused kernels).
    """
    ts = config.params.tilesize
    mt, nt = ntiles(m, ts), ntiles(n, ts)
    return LaunchGraph(
        nodes=_emit_tallqr_nodes(mt, nt, ts), kind="tallqr", n=n,
        npad=nt * ts, ts=ts, nbt=nt, mpad=mt * ts,
    )


def qr_reduce_tall(
    A: np.ndarray,
    ts: int,
    eps: float,
    session: Optional[Session] = None,
    compute_dtype=None,
    graph: Optional[LaunchGraph] = None,
) -> np.ndarray:
    """Reduce a tall ``m x n`` matrix (``m >= n``) to its ``n x n`` R factor.

    Tiled blocked QR: for each block column ``k``, GEQRT the diagonal tile,
    UNMQR the tile row, then one fused TSQRT/TSMQR pass down the remaining
    tile rows - the stage-1 RQ sweep generalized to a rectangular grid.
    ``A`` must be padded to tile multiples in both dimensions; the launch
    sequence comes from :func:`emit_tallqr_graph` (or a plan-cached
    ``graph``).

    Returns the upper-triangular ``n x n`` R factor (a copy; the reflector
    tails stored below the diagonal in ``A`` are stripped).
    """
    m, n = A.shape
    if m % ts or n % ts:
        raise ShapeError(f"padded shape required, got {A.shape} for ts={ts}")
    if m < n:
        raise ShapeError("qr_reduce_tall expects m >= n")
    if graph is None:
        nodes = _emit_tallqr_nodes(m // ts, n // ts, ts)
    else:
        if graph.kind != "tallqr" or graph.mpad != m or graph.npad != n or (
            graph.ts != ts
        ):
            raise ShapeError(
                f"tall-QR graph ({graph.kind}, mpad={graph.mpad}, "
                f"npad={graph.npad}, ts={graph.ts}) does not match the "
                f"requested chain ({m}, {n}) with ts={ts}"
            )
        nodes = graph.nodes
    NumericExecutor(
        A, ts, eps, session=session, compute_dtype=compute_dtype
    ).run(nodes)
    return np.triu(A[:n, :n])


def svdvals_rect_resolved(
    A: np.ndarray,
    config: SolveConfig,
    return_info: bool = False,
    workspace: Optional[np.ndarray] = None,
    cost_cache: Optional[dict] = None,
    square_workspace: Optional[np.ndarray] = None,
    prep_graph: Optional[LaunchGraph] = None,
    square_graph: Optional[LaunchGraph] = None,
) -> Union[np.ndarray, Tuple[np.ndarray, SVDInfo]]:
    """Rectangular-driver implementation against a resolved config.

    The single shared code path behind :meth:`repro.Solver.solve` for 2-D
    non-square inputs and the legacy :func:`svdvals_rect` shim.
    ``workspace`` (a zeroable ``(mpad, npad)`` buffer), ``square_workspace``
    (the ``(npad, npad)`` buffer for the R-factor solve), ``cost_cache``
    and the two pre-emitted launch graphs come from a reused
    :class:`repro.SvdPlan`.
    """
    A = np.asarray(A)
    if A.ndim != 2:
        raise ShapeError(f"expected a 2-D matrix, got shape {A.shape}")
    if min(A.shape) == 0:
        raise ShapeError("empty matrix")
    m, n = A.shape
    if m == n:
        return svdvals_resolved(
            A, config, return_info=return_info, graph=square_graph
        )
    if m < n:
        # singular values are transpose-invariant: zero-copy view
        return svdvals_rect_resolved(
            A.T, config, return_info=return_info,
            workspace=workspace, cost_cache=cost_cache,
            square_workspace=square_workspace,
            prep_graph=prep_graph, square_graph=square_graph,
        )

    be = config.backend
    storage = config.storage_for(A.dtype)
    session = config.session(storage, cost_cache=cost_cache)
    be.check_capacity(int(np.sqrt(m * n)) + 1, storage)
    ts = session.params.tilesize

    mpad = ntiles(m, ts) * ts
    npad = ntiles(n, ts) * ts
    if workspace is None:
        W = np.zeros((mpad, npad), dtype=storage.dtype)
    else:
        if workspace.shape != (mpad, npad) or workspace.dtype != storage.dtype:
            raise ShapeError(
                f"workspace {workspace.shape}/{workspace.dtype} does not "
                f"match padded problem ({mpad}, {npad})/{storage.dtype}"
            )
        W = workspace
        W.fill(0)
    W[:m, :n] = np.asarray(A, dtype=storage.dtype)
    compute_dtype = (
        session.compute.dtype if session.compute is not session.storage else None
    )
    R = qr_reduce_tall(
        W, ts, storage.eps, session, compute_dtype, graph=prep_graph
    )

    # pin the inferred precision so the square solve of R cannot re-infer
    square_config = (
        config if config.precision is not None
        else config.with_(precision=storage)
    )
    out = svdvals_resolved(
        R[:n, :n], square_config, return_info=return_info,
        workspace=square_workspace, cost_cache=cost_cache,
        graph=square_graph,
    )
    if not return_info:
        return out[:n] if out.shape[0] > n else out
    vals, info = out
    # merge the preprocessing launches into the report
    pre = session.tracer
    info.simulated_seconds += pre.total_seconds
    for stage, seconds in pre.stage_breakdown().items():
        info.stage_seconds[stage] = info.stage_seconds.get(stage, 0.0) + seconds
    for kernel, count in pre.kernel_counts().items():
        info.launch_counts[kernel] = info.launch_counts.get(kernel, 0) + count
    info.flops += pre.total_flops
    info.bytes += pre.total_bytes
    return vals, info


def svdvals_rect(
    A: np.ndarray,
    backend: BackendLike = "h100",
    precision: Optional[PrecisionLike] = None,
    params: Optional[KernelParams] = None,
    return_info: bool = False,
    coeffs: CostCoefficients = DEFAULT_COEFFS,
) -> Union[np.ndarray, Tuple[np.ndarray, SVDInfo]]:
    """Singular values of an arbitrary ``m x n`` real matrix.

    Returns ``min(m, n)`` values in descending order.  Square inputs fall
    through to the standard driver; rectangular inputs run the tall-QR
    preprocessing (on the lazy transpose when ``m < n``) before the square
    pipeline.  Thin shim over :class:`repro.Solver`.
    """
    from ..solver import Solver

    solver = Solver(
        backend=backend, precision=precision, params=params, coeffs=coeffs
    )
    return solver._solve_rect(A, return_info=return_info)
