"""The unified singular-value driver (the paper's public entry point).

:func:`svdvals` is the reproduction of the paper's single, hardware- and
precision-agnostic function: one code path serves every simulated backend
and every supported precision, specialized only through the backend's
behaviour rules and the kernel hyperparameters.

Pipeline (two-stage QR reduction, section 3 of the paper):

1. dense -> band (tiled Householder QR, :mod:`repro.core.banddiag`);
2. band -> bidiagonal (Givens bulge chasing, :mod:`repro.core.brd`);
3. bidiagonal -> singular values (CPU solver, :mod:`repro.core.bidiag`).

Every kernel launch is priced by the simulator; :class:`SVDInfo` reports
the per-stage simulated times that Figure 6 of the paper plots.
"""

from __future__ import annotations

import math

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple, Union

import numpy as np

from ..backends.backend import BackendLike
from ..config import SolveConfig
from ..errors import ShapeError
from ..precision import Precision, PrecisionLike
from ..sim.costmodel import DEFAULT_COEFFS, CostCoefficients
from ..sim.params import KernelParams
from ..sim.tracing import Stage
from .banddiag import reduce_to_band
from .bidiag import svdvals_bidiag
from .brd import band_to_bidiagonal
from .tiling import extract_band, ntiles, pad_to_tiles

__all__ = ["SVDInfo", "svdvals"]


@dataclass
class SVDInfo:
    """Execution report of one unified ``svdvals`` run."""

    n: int
    backend: str
    precision: str
    params: KernelParams
    fused: bool
    simulated_seconds: float
    stage_seconds: Dict[str, float] = field(default_factory=dict)
    launch_counts: Dict[str, int] = field(default_factory=dict)
    flops: float = 0.0
    bytes: float = 0.0

    @property
    def stage1_seconds(self) -> float:
        """Reduction to band form (panel + trailing update)."""
        return self.stage_seconds.get(Stage.PANEL, 0.0) + self.stage_seconds.get(
            Stage.UPDATE, 0.0
        )

    def stage_fractions(self) -> Dict[str, float]:
        """Each stage's share of the simulated runtime (Figure 6)."""
        total = self.simulated_seconds
        if total <= 0.0:
            return {}
        return {k: v / total for k, v in self.stage_seconds.items()}


def _rescale_factor(A: np.ndarray, storage: Precision) -> float:
    """Power-of-two factor bringing ``A`` into the precision's safe range.

    The paper (section 3.2) restricts its accuracy study to spectra in
    ``[0, 1]`` and names "default rescaling for matrices with singular
    values outside the target precision range" as future work; this
    implements that rescaling in the LAPACK ``gesvd`` style: scale down
    when the magnitude risks overflow in intermediate squares, up when it
    risks underflow.  Powers of two keep the scaling exact.
    """
    anorm = float(np.max(np.abs(A))) if A.size else 0.0
    if anorm == 0.0 or not math.isfinite(anorm):
        return 1.0
    n = max(A.shape)
    hi = math.sqrt(storage.fmax) / max(n, 1)
    if anorm > hi:
        return 2.0 ** math.floor(math.log2(hi / anorm))
    # the kernels' small-reflector guard is an *absolute* 10-eps threshold
    # (Algorithm 3 line 14), so magnitudes far below one must be scaled up
    # toward O(1), not merely above the underflow boundary
    if anorm < math.sqrt(storage.eps):
        return 2.0 ** round(-math.log2(anorm))
    return 1.0


def svdvals_resolved(
    A: np.ndarray,
    config: SolveConfig,
    return_info: bool = False,
    workspace: Optional[np.ndarray] = None,
    cost_cache: Optional[dict] = None,
) -> Union[np.ndarray, Tuple[np.ndarray, SVDInfo]]:
    """Square-driver implementation against a resolved :class:`SolveConfig`.

    This is the single shared code path behind :meth:`repro.Solver.solve`
    and the legacy :func:`svdvals` shim.  ``workspace`` (a zeroable padded
    buffer in storage precision) and ``cost_cache`` (a launch-price memo)
    are supplied by a reused :class:`repro.SvdPlan` to skip the per-call
    setup; results are bitwise identical either way.
    """
    A = np.asarray(A)
    if A.ndim != 2 or A.shape[0] != A.shape[1]:
        raise ShapeError(
            f"unified svdvals expects a square matrix, got shape {A.shape} "
            "(use repro.svdvals_rect for rectangular inputs)"
        )
    n = A.shape[0]
    if n == 0:
        raise ShapeError("empty matrix")
    if config.check_finite and not np.all(np.isfinite(A)):
        raise ShapeError("input matrix contains NaN or Inf entries")

    be = config.backend
    storage = config.storage_for(A.dtype)
    session = config.session(storage, cost_cache=cost_cache)
    be.check_capacity(n, storage)
    kp = session.params
    ts = kp.tilesize

    # optional exact power-of-two rescaling into the precision's safe range
    scale = _rescale_factor(A, storage) if config.rescale else 1.0
    src = A if scale == 1.0 else A * scale

    # upload in storage precision and zero-pad to full tiles
    if workspace is None:
        W, _ = pad_to_tiles(np.asarray(src, dtype=storage.dtype), ts)
    else:
        npad_want = ntiles(n, ts) * ts
        if workspace.shape != (npad_want, npad_want) or (
            workspace.dtype != storage.dtype
        ):
            raise ShapeError(
                f"workspace {workspace.shape}/{workspace.dtype} does not "
                f"match padded problem ({npad_want}, {npad_want})/"
                f"{storage.dtype}"
            )
        W = workspace
        W.fill(0)
        W[:n, :n] = src
    npad = W.shape[0]

    compute_dtype = (
        session.compute.dtype if session.compute is not storage else None
    )
    eps = storage.eps

    # ---- stage 1: dense -> band ----------------------------------------- #
    reduce_to_band(
        W, ts, eps, session, fused=config.fused, compute_dtype=compute_dtype
    )

    # ---- stage 2: band -> bidiagonal ------------------------------------ #
    band = extract_band(W, ts)
    work_dtype = compute_dtype if compute_dtype is not None else storage.dtype
    band_c = band.astype(work_dtype, copy=False)
    d, e = band_to_bidiagonal(band_c, ts, session=session, inplace=True)
    # round through storage precision, as a device-resident result would be
    d = d.astype(storage.dtype).astype(np.float64)
    e = e.astype(storage.dtype).astype(np.float64)

    # ---- stage 3: bidiagonal -> singular values (CPU) -------------------- #
    session.launch_solve(n)
    vals = svdvals_bidiag(d, e, method=config.stage3)

    # zero padding contributed exactly (npad - n) zero singular values
    vals = vals[:n].copy()
    if scale != 1.0:
        vals /= scale

    if not return_info:
        return vals
    tracer = session.tracer
    info = SVDInfo(
        n=n,
        backend=be.name,
        precision=storage.name_lower,
        params=kp,
        fused=config.fused,
        simulated_seconds=tracer.total_seconds,
        stage_seconds=tracer.stage_breakdown(),
        launch_counts=tracer.kernel_counts(),
        flops=tracer.total_flops,
        bytes=tracer.total_bytes,
    )
    return vals, info


def svdvals(
    A: np.ndarray,
    backend: BackendLike = "h100",
    precision: Optional[PrecisionLike] = None,
    params: Optional[KernelParams] = None,
    fused: bool = True,
    stage3: str = "auto",
    return_info: bool = False,
    coeffs: CostCoefficients = DEFAULT_COEFFS,
    check_finite: bool = True,
    rescale: bool = True,
) -> Union[np.ndarray, Tuple[np.ndarray, SVDInfo]]:
    """Compute all singular values of a square matrix on a simulated GPU.

    This is a thin shim over :class:`repro.Solver` (the recommended
    surface): it builds a one-shot handle and runs the square driver.

    Parameters
    ----------
    A:
        Square input matrix (any real dtype; converted to ``precision``).
    backend:
        Target device name (``"h100"``, ``"mi250"``, ``"m1pro"``, ...) or a
        resolved :class:`~repro.backends.Backend`.
    precision:
        Input precision (``"fp16"`` / ``"fp32"`` / ``"fp64"``).  Defaults
        to the dtype of ``A`` when supported, else FP64.  Unsupported
        backend/precision pairs raise
        :class:`~repro.errors.UnsupportedPrecisionError` exactly where the
        paper reports gaps (AMD FP16, Apple FP64).
    params:
        Kernel hyperparameters (TILESIZE / COLPERBLOCK / SPLITK); defaults
        to the paper's reference configuration.
    fused:
        Use the fused FTSQRT/FTSMQR kernels (Figure 2).  Numerics are
        identical either way; launch counts and simulated time differ.
    stage3:
        Bidiagonal solver: ``"auto"``, ``"gk"``, ``"bisect"`` or
        ``"lapack"``.
    return_info:
        Also return an :class:`SVDInfo` with simulated per-stage timing.
    coeffs:
        Cost-model coefficients (exposed for calibration studies).
    check_finite:
        Reject inputs containing NaN or Inf (on by default; disable for
        hot paths that guarantee finiteness).
    rescale:
        Pre-scale the matrix by an exact power of two when its magnitude
        would overflow/underflow the storage precision (essential for
        FP16, whose largest finite value is 65504) and scale the results
        back.  See the paper's section 3.2 future-work note.

    Returns
    -------
    Singular values in descending order (float64), optionally with the
    execution report.
    """
    from ..solver import Solver

    solver = Solver(
        backend=backend,
        precision=precision,
        params=params,
        coeffs=coeffs,
        stage3=stage3,
        fused=fused,
        check_finite=check_finite,
        rescale=rescale,
    )
    return solver._solve_square(A, return_info=return_info)
