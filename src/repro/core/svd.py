"""The unified singular-value driver (the paper's public entry point).

:func:`svdvals` is the reproduction of the paper's single, hardware- and
precision-agnostic function: one code path serves every simulated backend
and every supported precision, specialized only through the backend's
behaviour rules and the kernel hyperparameters.

Pipeline (two-stage QR reduction, section 3 of the paper):

1. dense -> band (tiled Householder QR, :mod:`repro.core.banddiag`);
2. band -> bidiagonal (Givens bulge chasing, :mod:`repro.core.brd`);
3. bidiagonal -> singular values (CPU solver, :mod:`repro.core.bidiag`).

Every kernel launch is priced by the simulator; :class:`SVDInfo` reports
the per-stage simulated times that Figure 6 of the paper plots.
"""

from __future__ import annotations

import math

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple, Union

import numpy as np

from ..backends.backend import BackendLike
from ..config import SolveConfig
from ..errors import ShapeError
from ..precision import Precision, PrecisionLike
from ..sim.costmodel import DEFAULT_COEFFS, CostCoefficients, brd_launch_count
from ..sim.graph import LaunchGraph, LaunchNode, NumericExecutor
from ..sim.params import KernelParams
from ..sim.table import FAMILIES, NodeTable, bound_structure
from ..sim.tracing import Stage
from .banddiag import emit_band_reduction
from .brd import emit_brd_chase
from .tiling import ntiles, pad_to_tiles

__all__ = ["SVDInfo", "bind_svd_table", "emit_svd_graph", "svdvals"]

_FAM = {name: i for i, name in enumerate(FAMILIES)}
_SID = {stage: i for i, stage in enumerate(Stage.ALL)}


@dataclass
class SVDInfo:
    """Execution report of one unified ``svdvals`` run."""

    n: int
    backend: str
    precision: str
    params: KernelParams
    fused: bool
    simulated_seconds: float
    stage_seconds: Dict[str, float] = field(default_factory=dict)
    launch_counts: Dict[str, int] = field(default_factory=dict)
    flops: float = 0.0
    bytes: float = 0.0

    @property
    def stage1_seconds(self) -> float:
        """Reduction to band form (panel + trailing update)."""
        return self.stage_seconds.get(Stage.PANEL, 0.0) + self.stage_seconds.get(
            Stage.UPDATE, 0.0
        )

    def stage_fractions(self) -> Dict[str, float]:
        """Each stage's share of the simulated runtime (Figure 6)."""
        total = self.simulated_seconds
        if total <= 0.0:
            return {}
        return {k: v / total for k, v in self.stage_seconds.items()}


def _rescale_factor(A: np.ndarray, storage: Precision) -> float:
    """Power-of-two factor bringing ``A`` into the precision's safe range.

    The paper (section 3.2) restricts its accuracy study to spectra in
    ``[0, 1]`` and names "default rescaling for matrices with singular
    values outside the target precision range" as future work; this
    implements that rescaling in the LAPACK ``gesvd`` style: scale down
    when the magnitude risks overflow in intermediate squares, up when it
    risks underflow.  Powers of two keep the scaling exact.
    """
    anorm = float(np.max(np.abs(A))) if A.size else 0.0
    if anorm == 0.0 or not math.isfinite(anorm):
        return 1.0
    n = max(A.shape)
    hi = math.sqrt(storage.fmax) / max(n, 1)
    if anorm > hi:
        return 2.0 ** math.floor(math.log2(hi / anorm))
    # the kernels' small-reflector guard is an *absolute* 10-eps threshold
    # (Algorithm 3 line 14), so magnitudes far below one must be scaled up
    # toward O(1), not merely above the underflow boundary
    if anorm < math.sqrt(storage.eps):
        return 2.0 ** round(-math.log2(anorm))
    return 1.0


def emit_svd_graph(
    n: int, config: SolveConfig, streams: int = 1, counted: bool = False
) -> LaunchGraph:
    """Emit the full three-stage launch graph for an ``n x n`` solve.

    The one declarative encoding of the solver's schedule: stage-1 sweeps
    from :func:`~repro.core.banddiag.emit_band_reduction`, the stage-2
    chase from :func:`~repro.core.brd.emit_brd_chase`, and the stage-3 CPU
    solve.  The same graph is replayed numerically by
    :class:`~repro.sim.graph.NumericExecutor` and priced by
    :class:`~repro.sim.graph.AnalyticExecutor`; ``streams > 1`` emits the
    lookahead (analytic-only) variant whose update launches are split for
    multi-stream overlap, and ``counted=True`` folds the unfused
    TSQRT/TSMQR runs into counted nodes (analytic-only, O(tiles) nodes
    for the quadratic unfused launch schedule).

    The emitted graph is also the input of
    :func:`repro.sim.partition.partition_graph`, which shards it across
    devices using the per-kind ``meta`` tile coordinates - counted
    graphs drop that metadata and therefore cannot be partitioned.
    """
    if n < 1:
        raise ShapeError(f"matrix order must be positive, got {n}")
    ts = config.params.tilesize
    nbt = ntiles(n, ts)
    npad = nbt * ts
    nodes = emit_band_reduction(
        nbt, ts, fused=config.fused, streams=streams, counted=counted
    )
    tail = len(nodes) - 1
    brd_nodes = emit_brd_chase(
        npad, ts, config.coeffs, deps=(tail,), start=len(nodes)
    )
    nodes.extend(brd_nodes)
    nodes.append(
        LaunchNode(
            "bdsqr_cpu", Stage.SOLVE, ("solve", n),
            deps=(len(nodes) - 1,),
        )
    )
    return LaunchGraph(
        nodes=nodes, kind="square", n=n, npad=npad, ts=ts, nbt=nbt,
        fused=config.fused, streams=streams, counted=counted,
    )


def bind_svd_table(n: int, config: SolveConfig) -> NodeTable:
    """Bind the square sweep structure to ``(n, config)`` as a node table.

    Shape-parametric emission: instead of materializing per-tile
    :class:`~repro.sim.graph.LaunchNode` objects, the sweep structure of
    the shape family is assembled directly as the struct-of-arrays
    :class:`~repro.sim.table.NodeTable` - closed-form index arrays over
    the sweep count - and memoized process-wide per ``(config, n)``
    through :func:`~repro.sim.table.bound_structure`.  Node for node
    equal to ``emit_svd_graph(n, config, counted=True).table()`` (pinned
    by ``tests/test_table_props.py``): the analytic-only form whose
    unfused TSQRT/TSMQR runs are folded into counted rows.  This is what
    ``Solver.predict`` / ``Solver.tune`` price instead of re-emitting.
    """
    return bound_structure(
        ("svd_table", config, n), lambda: _build_svd_table(n, config)
    )


def _build_svd_table(n: int, config: SolveConfig) -> NodeTable:
    """Assemble the bound square table (see :func:`bind_svd_table`)."""
    if n < 1:
        raise ShapeError(f"matrix order must be positive, got {n}")
    ts = config.params.tilesize
    nbt = ntiles(n, ts)
    npad = nbt * ts
    fused = config.fused
    nbrd = brd_launch_count(npad, ts, config.coeffs)
    PANEL, UPDATE = _SID[Stage.PANEL], _SID[Stage.UPDATE]
    BRD, SOLVE = _SID[Stage.BRD], _SID[Stage.SOLVE]

    # unique-key columns: the shared GEQRT panel key, per-k UNMQR widths,
    # then fused per-r panels and per-sweep updates (or the single folded
    # TSQRT key and per-k folded TSMQR keys), then the stage-2/3 keys
    widths = np.arange(nbt - 1, 0, -1, dtype=np.float64) * ts  # k ascending
    fam = [_FAM["panel"]] + [_FAM["update"]] * (nbt - 1)
    ops = [(1.0, 1.0, 0.0, 0.0)]
    ops += [(w, 1.0, 0.0, 0.0) for w in widths.tolist()]
    S = 2 * (nbt - 1)  # sweeps; the last one has no rows below the pivot
    F = max(S - 1, 0)  # sweeps emitting a full panel/update pair
    s = np.arange(F, dtype=np.int64)
    k = s >> 1
    r = nbt - 1 - k - (s & 1)  # rows below the pivot, per sweep
    if fused:
        fam += [_FAM["panel"]] * (nbt - 1) + [_FAM["update"]] * F
        ops += [(float(rr), 2.0, 0.0, 0.0) for rr in range(1, nbt)]
        ops += [
            (float(w), float(rr), 1.0, 0.0)
            for w, rr in zip(widths[k].tolist(), r.tolist())
        ]
        panel2_id = (nbt - 1) + r  # FTSQRT key per sweep
        update2_id = (2 * nbt - 1) + s  # FTSMQR key per sweep
        brd_id = 2 * nbt - 1 + F
    else:
        fam += [_FAM["panel"]] + [_FAM["update"]] * (nbt - 1)
        ops += [(1.0, 2.0, 0.0, 0.0)]
        ops += [(w, 1.0, 1.0, 0.0) for w in widths.tolist()]
        panel2_id = np.full(F, nbt, dtype=np.int64)  # one folded TSQRT key
        update2_id = nbt + 1 + k  # folded TSMQR key per k
        brd_id = 2 * nbt
    fam += [_FAM["brd"], _FAM["solve"]]
    ops += [(float(npad), float(ts), 0.0, 0.0), (float(n), 0.0, 0.0, 0.0)]

    # node columns, assembled per segment: F full sweeps of four
    # launches, the below-less tail sweep (GEQRT + UNMQR), the final
    # diagonal GEQRT, the stage-2 chain, the CPU solve
    sweep_kinds = (
        ("geqrt", "unmqr", "ftsqrt", "ftsmqr")
        if fused
        else ("geqrt", "unmqr", "tsqrt", "tsmqr")
    )
    if nbt == 1:
        # a single tile emits no sweeps; only the final GEQRT + stage 2/3
        # below, and the sweep kinds never appear
        kinds: Tuple[str, ...] = ("geqrt",)
        segs = []
    else:
        kinds = sweep_kinds
        neg = np.full(F, -1, dtype=np.int64)
        counts4 = np.ones((F, 4), dtype=np.int64)
        if not fused:  # folded TSQRT/TSMQR runs carry their launch count
            counts4[:, 2] = r
            counts4[:, 3] = r
        segs = [
            (
                np.tile(np.arange(4, dtype=np.int64), F),
                np.tile(
                    np.array([PANEL, UPDATE, PANEL, UPDATE], np.int64), F
                ),
                np.stack(
                    [np.zeros(F, np.int64), 1 + k, panel2_id, update2_id],
                    axis=1,
                ).ravel(),
                # folded TSMQR nodes carry no meta, hence no sweep tag
                np.stack([neg, s, neg, s if fused else neg], axis=1).ravel(),
                counts4.ravel(),
                np.ones(4 * F, bool),
            ),
            (  # tail sweep (s = S-1): GEQRT + UNMQR of width ts
                np.array([0, 1], np.int64),
                np.array([PANEL, UPDATE], np.int64),
                np.array([0, nbt - 1], np.int64),
                np.array([-1, S - 1], np.int64),
                np.ones(2, np.int64),
                np.ones(2, bool),
            ),
        ]
    brd_kind = len(kinds)
    solve_kind = brd_kind + (1 if nbrd else 0)
    if nbrd:
        kinds = kinds + ("brd_chase",)
    kinds = kinds + ("bdsqr_cpu",)
    primary_tail = np.ones(nbrd + 2, bool)
    primary_tail[2:-1] = False  # chase cost rides on the first launch
    segs.append(
        (
            np.r_[0, [brd_kind] * nbrd, solve_kind].astype(np.int64),
            np.r_[PANEL, [BRD] * nbrd, SOLVE].astype(np.int64),
            np.r_[0, [brd_id] * nbrd, brd_id + 1].astype(np.int64),
            np.full(nbrd + 2, -1, dtype=np.int64),
            np.ones(nbrd + 2, np.int64),
            primary_tail,
        )
    )
    kind_id, stage_id, key_id, sweep, counts, primary = (
        np.concatenate([seg[i] for seg in segs]) for i in range(6)
    )
    return NodeTable(
        kind="square",
        n=n,
        npad=npad,
        ts=ts,
        nbt=nbt,
        ngpu=1,
        out_of_core=False,
        kinds=kinds,
        kind_id=kind_id,
        stage_id=stage_id,
        key_id=key_id,
        counts=counts,
        primary=primary,
        device=np.zeros(kind_id.size, dtype=np.int64),
        sweep=sweep,
        fam=np.asarray(fam, dtype=np.int64),
        ops=np.asarray(ops, dtype=np.float64).reshape(len(fam), 4),
    )


def svdvals_resolved(
    A: np.ndarray,
    config: SolveConfig,
    return_info: bool = False,
    workspace: Optional[np.ndarray] = None,
    cost_cache: Optional[dict] = None,
    graph: Optional[LaunchGraph] = None,
) -> Union[np.ndarray, Tuple[np.ndarray, SVDInfo]]:
    """Square-driver implementation against a resolved :class:`SolveConfig`.

    This is the single shared code path behind :meth:`repro.Solver.solve`
    and the legacy :func:`svdvals` shim.  ``workspace`` (a zeroable padded
    buffer in storage precision), ``cost_cache`` (a launch-price memo) and
    ``graph`` (the pre-emitted :class:`~repro.sim.graph.LaunchGraph`) are
    supplied by a reused :class:`repro.SvdPlan` to skip the per-call
    setup; results are bitwise identical either way.
    """
    A = np.asarray(A)
    if A.ndim != 2 or A.shape[0] != A.shape[1]:
        raise ShapeError(
            f"unified svdvals expects a square matrix, got shape {A.shape} "
            "(use repro.svdvals_rect for rectangular inputs)"
        )
    n = A.shape[0]
    if n == 0:
        raise ShapeError("empty matrix")
    if config.check_finite and not np.all(np.isfinite(A)):
        raise ShapeError("input matrix contains NaN or Inf entries")

    be = config.backend
    storage = config.storage_for(A.dtype)
    session = config.session(storage, cost_cache=cost_cache)
    be.check_capacity(n, storage)
    kp = session.params
    ts = kp.tilesize

    # optional exact power-of-two rescaling into the precision's safe range
    scale = _rescale_factor(A, storage) if config.rescale else 1.0
    src = A if scale == 1.0 else A * scale

    # upload in storage precision and zero-pad to full tiles
    if workspace is None:
        W, _ = pad_to_tiles(np.asarray(src, dtype=storage.dtype), ts)
    else:
        npad_want = ntiles(n, ts) * ts
        if workspace.shape != (npad_want, npad_want) or (
            workspace.dtype != storage.dtype
        ):
            raise ShapeError(
                f"workspace {workspace.shape}/{workspace.dtype} does not "
                f"match padded problem ({npad_want}, {npad_want})/"
                f"{storage.dtype}"
            )
        W = workspace
        W.fill(0)
        W[:n, :n] = src
    npad = W.shape[0]

    compute_dtype = (
        session.compute.dtype if session.compute is not storage else None
    )

    # replay the launch graph: stage 1 (dense -> band), stage 2 (band ->
    # bidiagonal chase) and stage 3 (CPU solve) all live in one IR
    if graph is None:
        graph = emit_svd_graph(n, config)
    elif (
        graph.kind != "square" or graph.streams != 1 or graph.counted
        or graph.n != n or graph.ts != ts or graph.fused != config.fused
    ):
        raise ShapeError(
            f"launch graph ({graph.kind}, n={graph.n}, ts={graph.ts}, "
            f"fused={graph.fused}, streams={graph.streams}, "
            f"counted={graph.counted}) does not match the replayable "
            f"square solve (n={n}, ts={ts}, fused={config.fused})"
        )
    ex = NumericExecutor(
        W, ts, storage.eps, session=session, compute_dtype=compute_dtype,
        storage=storage, stage3=config.stage3,
    )
    ex.run(graph)

    # zero padding contributed exactly (npad - n) zero singular values
    vals = ex.values[:n].copy()
    if scale != 1.0:
        vals /= scale

    if not return_info:
        return vals
    tracer = session.tracer
    info = SVDInfo(
        n=n,
        backend=be.name,
        precision=storage.name_lower,
        params=kp,
        fused=config.fused,
        simulated_seconds=tracer.total_seconds,
        stage_seconds=tracer.stage_breakdown(),
        launch_counts=tracer.kernel_counts(),
        flops=tracer.total_flops,
        bytes=tracer.total_bytes,
    )
    return vals, info


def svdvals(
    A: np.ndarray,
    backend: BackendLike = "h100",
    precision: Optional[PrecisionLike] = None,
    params: Optional[KernelParams] = None,
    fused: bool = True,
    stage3: str = "auto",
    return_info: bool = False,
    coeffs: CostCoefficients = DEFAULT_COEFFS,
    check_finite: bool = True,
    rescale: bool = True,
) -> Union[np.ndarray, Tuple[np.ndarray, SVDInfo]]:
    """Compute all singular values of a square matrix on a simulated GPU.

    This is a thin shim over :class:`repro.Solver` (the recommended
    surface): it builds a one-shot handle and runs the square driver.

    Parameters
    ----------
    A:
        Square input matrix (any real dtype; converted to ``precision``).
    backend:
        Target device name (``"h100"``, ``"mi250"``, ``"m1pro"``, ...) or a
        resolved :class:`~repro.backends.Backend`.
    precision:
        Input precision (``"fp16"`` / ``"fp32"`` / ``"fp64"``).  Defaults
        to the dtype of ``A`` when supported, else FP64.  Unsupported
        backend/precision pairs raise
        :class:`~repro.errors.UnsupportedPrecisionError` exactly where the
        paper reports gaps (AMD FP16, Apple FP64).
    params:
        Kernel hyperparameters (TILESIZE / COLPERBLOCK / SPLITK); defaults
        to the paper's reference configuration.
    fused:
        Use the fused FTSQRT/FTSMQR kernels (Figure 2).  Numerics are
        identical either way; launch counts and simulated time differ.
    stage3:
        Bidiagonal solver: ``"auto"``, ``"gk"``, ``"bisect"`` or
        ``"lapack"``.
    return_info:
        Also return an :class:`SVDInfo` with simulated per-stage timing.
    coeffs:
        Cost-model coefficients (exposed for calibration studies).
    check_finite:
        Reject inputs containing NaN or Inf (on by default; disable for
        hot paths that guarantee finiteness).
    rescale:
        Pre-scale the matrix by an exact power of two when its magnitude
        would overflow/underflow the storage precision (essential for
        FP16, whose largest finite value is 65504) and scale the results
        back.  See the paper's section 3.2 future-work note.

    Returns
    -------
    Singular values in descending order (float64), optionally with the
    execution report.
    """
    from ..solver import Solver

    solver = Solver(
        backend=backend,
        precision=precision,
        params=params,
        coeffs=coeffs,
        stage3=stage3,
        fused=fused,
        check_finite=check_finite,
        rescale=rescale,
    )
    return solver._solve_square(A, return_info=return_info)
