"""Workload registry: every emitter on the shared IR, one conformance row.

The reproduction's emitters (square SVD, tall-QR, batched, randomized
low-rank, symmetric eigensolver) all target the same
:class:`~repro.sim.graph.LaunchGraph` IR, so every workload can be proven
against the same battery: bitwise numeric replay, traced-vs-analytic
launch-count equality, greedy-scheduler-vs-event-simulator invariants,
and oracle agreement with the NumPy/LAPACK reference.  This module makes
that battery *registry-driven*: each workload registers one frozen
:class:`WorkloadSpec` describing how to emit its graph, run its numeric
driver, compute its reference values and which composition axes its
graph kind supports - and the conformance harness
(``tests/conformance.py``) sweeps every registered spec through one
parametrized matrix.  A future emitter joins the matrix with a single
:func:`register_workload` call.

Every spec callable is parametrized by the square order ``n`` alone;
specs fix their own secondary shape axes (aspect ratio, batch count,
rank), so the harness sweeps one size axis uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Optional

import numpy as np

from ..config import SolveConfig
from ..errors import InvalidParamsError
from .batched import (
    bind_batched_table,
    emit_batched_graph,
    svdvals_batched_resolved,
)
from .eigh import bind_eigh_table, eigh_resolved, emit_eigh_graph
from .randomized import (
    bind_lowrank_table,
    emit_lowrank_graph,
    lowrank_reference,
    svd_lowrank_resolved,
)
from .rectangular import emit_tallqr_graph, svdvals_rect_resolved
from .svd import bind_svd_table, emit_svd_graph, svdvals_resolved

__all__ = [
    "CONFORMANCE_BATCH",
    "CONFORMANCE_RANK",
    "ORACLE_TOL",
    "WORKLOADS",
    "WorkloadSpec",
    "register_workload",
]

#: Relative accuracy each storage precision is pinned to against the
#: float64 oracle - the paper's Table 1 regimes, matching the thresholds
#: the integration tests use.
ORACLE_TOL = {"fp64": 1e-12, "fp32": 5e-6, "fp16": 3e-2}

#: Problems per stack in the batched workload's conformance rows: large
#: enough that every device's round-robin sub-batch still exceeds the
#: out-of-core window in the matrix's ``streams x ngpu`` compositions.
CONFORMANCE_BATCH = 8
#: Requested values in the low-rank workload's conformance rows
#: (clamped to ``n`` for tiny sizes).
CONFORMANCE_RANK = 6
#: Rows-to-columns ratio of the rectangular workloads' inputs.
_ASPECT = 2


@dataclass(frozen=True)
class WorkloadSpec:
    """One registered workload: emitter + driver + oracle + capabilities.

    ``supports`` lists the composition axes the workload's graph kind
    actually routes through (``"streams"``, ``"ngpu"``, ``"nodes"``,
    ``"topology"``, ``"out_of_core"``, ``"predict"``); the conformance
    harness filters its matrix by these flags, so a spec never claims an
    axis its graph cannot take.
    """

    #: Registry key and display name.
    name: str
    #: ``emit(n, config, streams=1) -> LaunchGraph`` - the analytic IR.
    emit: Callable
    #: ``make_input(n, seed) -> float64 ndarray`` for the numeric driver.
    make_input: Callable
    #: ``run(A, config) -> values`` via the resolved driver (bitwise
    #: replay path - run twice, get identical bits).
    run: Callable
    #: ``run_info(A, config) -> (values, SVDInfo)`` - the traced variant.
    run_info: Callable
    #: ``reference(A) -> float64 oracle values`` (NumPy/LAPACK).
    reference: Callable
    #: ``check(values, A, precision_name)`` - oracle agreement for this
    #: workload; raises AssertionError on violation.
    check: Callable
    #: ``analytic_counts(n, config) -> {kernel: count}`` the traced run
    #: of ``make_input(n, .)`` must reproduce exactly.
    analytic_counts: Callable
    #: ``bind(n, config) -> NodeTable`` shape-parametric binder, and the
    #: ``emit_table(n, config) -> NodeTable`` it must equal node for
    #: node; ``None`` for workloads without a binder.
    bind: Optional[Callable] = None
    emit_table: Optional[Callable] = None
    #: ``predict_kwargs(n) -> dict`` extra :meth:`repro.Solver.predict`
    #: arguments selecting this workload; ``None`` when the workload has
    #: no prediction route.
    predict_kwargs: Optional[Callable] = None
    supports: FrozenSet[str] = field(default_factory=frozenset)
    notes: str = ""


WORKLOADS: Dict[str, WorkloadSpec] = {}


def register_workload(spec: WorkloadSpec) -> WorkloadSpec:
    """Register ``spec`` under its name (one line per future workload)."""
    if not isinstance(spec, WorkloadSpec):
        raise InvalidParamsError(
            f"register_workload expects a WorkloadSpec, "
            f"got {type(spec).__name__}"
        )
    if spec.name in WORKLOADS:
        raise InvalidParamsError(
            f"workload {spec.name!r} is already registered"
        )
    WORKLOADS[spec.name] = spec
    return spec


# --------------------------------------------------------------------- #
# shared input makers and oracle checks
# --------------------------------------------------------------------- #
def _square_input(n: int, seed: int) -> np.ndarray:
    return np.random.default_rng(seed).standard_normal((n, n))


def _symmetric_input(n: int, seed: int) -> np.ndarray:
    A = _square_input(n, seed)
    return (A + A.T) / 2.0


def _tall_input(n: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.standard_normal((_ASPECT * n, n))


def _stacked_input(n: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.standard_normal((CONFORMANCE_BATCH, n, n))


def _lr_rank(n: int) -> int:
    return min(CONFORMANCE_RANK, n)


def _check_close(values: np.ndarray, A: np.ndarray, precision: str,
                 reference: Callable) -> None:
    """Relative Frobenius agreement with the oracle, per precision."""
    ref = np.asarray(reference(A), dtype=np.float64)
    got = np.asarray(values, dtype=np.float64)
    assert got.shape == ref.shape, (got.shape, ref.shape)
    denom = max(float(np.linalg.norm(ref)), 1e-300)
    err = float(np.linalg.norm(got - ref)) / denom
    assert err < ORACLE_TOL[precision], (
        f"oracle deviation {err:.3e} exceeds the {precision} "
        f"threshold {ORACLE_TOL[precision]:.0e}"
    )


def _check_lowrank(values: np.ndarray, A: np.ndarray, precision: str) -> None:
    """Projection bound: randomized values never exceed the exact ones.

    The sketch projects onto a subspace, so each randomized estimate is
    bounded above by the corresponding exact truncated singular value
    (up to the storage precision's rounding); the estimates are also
    descending and non-negative by construction.  The sharper
    probabilistic *lower* bounds live in the Hypothesis suite
    (``tests/test_randomized_props.py``), which controls the spectrum.
    """
    got = np.asarray(values, dtype=np.float64)
    ref = lowrank_reference(A, got.size)
    assert np.all(got >= 0.0), "negative singular value estimate"
    assert np.all(np.diff(got) <= 0.0), "estimates not descending"
    slack = ORACLE_TOL[precision] * max(float(ref[0]), 1e-300)
    assert np.all(got <= ref + slack), (
        f"randomized estimates exceed the exact truncated values by more "
        f"than the {precision} slack: {np.max(got - ref):.3e}"
    )


# --------------------------------------------------------------------- #
# the registered workloads
# --------------------------------------------------------------------- #
register_workload(WorkloadSpec(
    name="svd",
    emit=lambda n, config, streams=1: emit_svd_graph(
        n, config, streams=streams
    ),
    make_input=_square_input,
    run=lambda A, config: svdvals_resolved(A, config),
    run_info=lambda A, config: svdvals_resolved(A, config, return_info=True),
    reference=lambda A: np.linalg.svd(
        np.asarray(A, dtype=np.float64), compute_uv=False
    ),
    check=lambda values, A, precision: _check_close(
        values, A, precision,
        lambda M: np.linalg.svd(
            np.asarray(M, dtype=np.float64), compute_uv=False
        ),
    ),
    analytic_counts=lambda n, config: emit_svd_graph(
        n, config
    ).launch_counts(),
    bind=bind_svd_table,
    emit_table=lambda n, config: emit_svd_graph(
        n, config, counted=True
    ).table(),
    predict_kwargs=lambda n: {},
    supports=frozenset(
        {"streams", "ngpu", "nodes", "topology", "out_of_core", "predict"}
    ),
    notes="the paper's square two-stage pipeline",
))


def _tallqr_counts(n: int, config: SolveConfig) -> Dict[str, int]:
    # the rectangular driver runs the tall-QR chain then the square
    # pipeline on the R factor; its trace merges both graphs' launches
    counts = emit_tallqr_graph(_ASPECT * n, n, config).launch_counts()
    for kernel, c in emit_svd_graph(n, config).launch_counts().items():
        counts[kernel] = counts.get(kernel, 0) + c
    return counts


register_workload(WorkloadSpec(
    name="tallqr",
    emit=lambda n, config, streams=1: emit_tallqr_graph(
        _ASPECT * n, n, config
    ),
    make_input=_tall_input,
    run=lambda A, config: svdvals_rect_resolved(A, config),
    run_info=lambda A, config: svdvals_rect_resolved(
        A, config, return_info=True
    ),
    reference=lambda A: np.linalg.svd(
        np.asarray(A, dtype=np.float64), compute_uv=False
    ),
    check=lambda values, A, precision: _check_close(
        values, A, precision,
        lambda M: np.linalg.svd(
            np.asarray(M, dtype=np.float64), compute_uv=False
        ),
    ),
    analytic_counts=_tallqr_counts,
    supports=frozenset(),
    notes="preprocessing chain; the emitted graph covers the tall "
          "reduction only (kind 'tallqr' neither partitions nor "
          "rewrites out-of-core)",
))

register_workload(WorkloadSpec(
    name="batched",
    emit=lambda n, config, streams=1: emit_batched_graph(
        n, CONFORMANCE_BATCH, config, streams=streams
    ),
    make_input=_stacked_input,
    run=lambda A, config: svdvals_batched_resolved(A, config),
    run_info=lambda A, config: svdvals_batched_resolved(
        A, config, return_info=True
    ),
    reference=lambda A: np.stack([
        np.linalg.svd(np.asarray(a, dtype=np.float64), compute_uv=False)
        for a in A
    ]),
    check=lambda values, A, precision: _check_close(
        values, A, precision,
        lambda M: np.stack([
            np.linalg.svd(np.asarray(a, dtype=np.float64), compute_uv=False)
            for a in M
        ]),
    ),
    analytic_counts=lambda n, config: emit_batched_graph(
        n, CONFORMANCE_BATCH, config
    ).launch_counts(),
    bind=lambda n, config: bind_batched_table(n, CONFORMANCE_BATCH, config),
    emit_table=lambda n, config: emit_batched_graph(
        n, CONFORMANCE_BATCH, config
    ).table(),
    predict_kwargs=lambda n: {"batch": CONFORMANCE_BATCH},
    supports=frozenset(
        {"streams", "ngpu", "nodes", "topology", "out_of_core", "predict"}
    ),
    notes="one grid covers all problems per schedule step",
))

register_workload(WorkloadSpec(
    name="lowrank",
    emit=lambda n, config, streams=1: emit_lowrank_graph(
        _ASPECT * n, n, _lr_rank(n), config, streams=streams
    ),
    make_input=_tall_input,
    run=lambda A, config: svd_lowrank_resolved(
        A, _lr_rank(A.shape[1]), config
    ),
    run_info=lambda A, config: svd_lowrank_resolved(
        A, _lr_rank(A.shape[1]), config, return_info=True
    ),
    reference=lambda A: lowrank_reference(A, _lr_rank(A.shape[1])),
    check=_check_lowrank,
    analytic_counts=lambda n, config: emit_lowrank_graph(
        _ASPECT * n, n, _lr_rank(n), config
    ).launch_counts(),
    bind=lambda n, config: bind_lowrank_table(
        _ASPECT * n, n, _lr_rank(n), config
    ),
    emit_table=lambda n, config: emit_lowrank_graph(
        _ASPECT * n, n, _lr_rank(n), config, counted=True
    ).table(),
    predict_kwargs=lambda n: {"rank": _lr_rank(n)},
    supports=frozenset(
        {"streams", "ngpu", "nodes", "topology", "out_of_core", "predict"}
    ),
    notes="composed graph is analytic-only; numeric replay runs the "
          "composed driver (sketch GEMM + tall-QR + TRSM + square "
          "pipeline), each sub-graph replayed bitwise",
))

register_workload(WorkloadSpec(
    name="eigh",
    emit=lambda n, config, streams=1: emit_eigh_graph(
        n, config, streams=streams
    ),
    make_input=_symmetric_input,
    run=lambda A, config: eigh_resolved(A, config),
    run_info=lambda A, config: eigh_resolved(A, config, return_info=True),
    reference=lambda A: np.sort(
        np.linalg.eigvalsh(np.asarray(A, dtype=np.float64))
    )[::-1],
    check=lambda values, A, precision: _check_close(
        values, A, precision,
        lambda M: np.sort(
            np.linalg.eigvalsh(np.asarray(M, dtype=np.float64))
        )[::-1],
    ),
    analytic_counts=lambda n, config: emit_eigh_graph(
        n, config
    ).launch_counts(),
    bind=bind_eigh_table,
    emit_table=lambda n, config: emit_eigh_graph(
        n, config, counted=True
    ).table(),
    predict_kwargs=lambda n: {"workload": "eigh"},
    supports=frozenset(
        {"streams", "ngpu", "nodes", "topology", "out_of_core", "predict"}
    ),
    notes="square graph with the steig_cpu tail; every square-graph "
          "axis composes unchanged",
))
