"""Stage 2: band -> bidiagonal reduction by Givens bulge chasing.

The paper performs this memory-bound stage on the GPU with cache-efficient
tile kernels (Haidar et al.) and a communication-avoiding schedule (Ballard
et al.).  This reproduction implements the numerically equivalent classical
algorithm: for each row, annihilate the out-of-bidiagonal band entries with
right Givens rotations and chase the resulting bulges down the band with
alternating left/right rotations, each applied to short vectorized windows.

The routine works in place on a dense array holding an upper-band matrix
(nonzeros on diagonals ``0..band``) and returns the main diagonal and
superdiagonal of the bidiagonal result.  Orthogonal equivalence guarantees
the singular values are preserved - the property tests pin this against
SciPy on random band matrices.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

import numpy as np

from ..errors import ShapeError
from ..sim.costmodel import brd_launch_count
from ..sim.graph import LaunchNode
from ..sim.session import Session
from ..sim.tracing import Stage

__all__ = ["band_to_bidiagonal", "emit_brd_chase", "givens"]


def emit_brd_chase(
    n: int, band: int, coeffs, deps: Tuple[int, ...] = (), start: int = 0
) -> List[LaunchNode]:
    """Emit the stage-2 bulge-chasing launch nodes for an ``n x n`` band.

    The chase issues :func:`~repro.sim.costmodel.brd_launch_count` fused
    kernel launches; the aggregate stage cost rides on the first (primary)
    node and the remaining launches charge only their overhead, exactly
    like :meth:`repro.sim.session.Session.launch_brd` records them.
    ``deps`` anchors the first launch on the tail of stage 1, ``start`` is
    the global index these nodes begin at (the chase is a serial chain, so
    launch ``i`` depends on launch ``i - 1``).
    """
    nbrd = brd_launch_count(n, band, coeffs)
    nodes: List[LaunchNode] = []
    for i in range(nbrd):
        nodes.append(
            LaunchNode(
                "brd_chase",
                Stage.BRD,
                ("brd", n, band),
                deps=tuple(deps) if i == 0 else (start + i - 1,),
                primary=(i == 0),
            )
        )
    return nodes


def givens(f: float, g: float) -> Tuple[float, float, float]:
    """LAPACK ``lartg``-style rotation: ``c f + s g = r``, ``-s f + c g = 0``.

    Returns ``(c, s, r)`` with ``c^2 + s^2 = 1``, computed without spurious
    overflow for moderate inputs.
    """
    if g == 0.0:
        return 1.0, 0.0, f
    if f == 0.0:
        return 0.0, 1.0, g
    r = math.hypot(f, g)
    if abs(f) > abs(g):
        # keep the sign convention of f to limit sign churn along the band
        r = math.copysign(r, f)
    return f / r, g / r, r


def _rot_cols(A: np.ndarray, j1: int, j2: int, r0: int, r1: int, c: float, s: float) -> None:
    """Apply a right rotation to columns ``j1, j2`` over rows ``r0..r1``."""
    a = A[r0 : r1 + 1, j1].copy()
    b = A[r0 : r1 + 1, j2]
    A[r0 : r1 + 1, j1] = c * a + s * b
    A[r0 : r1 + 1, j2] = -s * a + c * b


def _rot_rows(A: np.ndarray, i1: int, i2: int, c0: int, c1: int, c: float, s: float) -> None:
    """Apply a left rotation to rows ``i1, i2`` over columns ``c0..c1``."""
    a = A[i1, c0 : c1 + 1].copy()
    b = A[i2, c0 : c1 + 1]
    A[i1, c0 : c1 + 1] = c * a + s * b
    A[i2, c0 : c1 + 1] = -s * a + c * b


def band_to_bidiagonal(
    A: np.ndarray,
    band: int,
    session: Optional[Session] = None,
    inplace: bool = False,
) -> Tuple[np.ndarray, np.ndarray]:
    """Reduce an upper-band matrix to upper bidiagonal form.

    Parameters
    ----------
    A:
        ``(n, n)`` array whose nonzeros lie on diagonals ``0..band``.
        Below-band content is ignored (treated as zero), so stage-1 output
        with resident reflector tails can be passed through
        :func:`repro.core.tiling.extract_band` first.
    band:
        Upper bandwidth of the input (``TILESIZE`` after stage 1).
    session:
        Simulator session; charged with the aggregate stage-2 cost.
    inplace:
        Mutate ``A`` instead of a copy (the copy is in ``A``'s dtype).

    Returns
    -------
    (d, e):
        Main diagonal (length ``n``) and superdiagonal (length ``n-1``) of
        the bidiagonal matrix, in ``A``'s dtype.
    """
    n = A.shape[0]
    if A.ndim != 2 or A.shape[1] != n:
        raise ShapeError(f"expected a square matrix, got {A.shape}")
    if session is not None:
        session.launch_brd(n, band)
    if band <= 1 or n <= 2:
        d = np.ascontiguousarray(np.diagonal(A)).copy()
        e = np.ascontiguousarray(np.diagonal(A, 1)).copy() if n > 1 else np.zeros(0, A.dtype)
        return d, e

    W = A if inplace else np.array(A, copy=True)

    for i in range(n - 1):
        hi = min(i + band, n - 1)
        # annihilate row i entries (i, hi) .. (i, i+2), innermost last
        for j in range(hi, i + 1, -1):
            f = float(W[i, j - 1])
            g = float(W[i, j])
            if g == 0.0:
                continue
            c, s, _ = givens(f, g)
            # rows that can be nonzero in columns j-1, j: the band plus the
            # current in-flight bulge live in rows i..j
            _rot_cols(W, j - 1, j, i, min(n - 1, j), c, s)
            W[i, j] = 0.0
            # chase the below-diagonal bulge created at (j, j-1)
            p = j
            while p < n:
                f = float(W[p - 1, p - 1])
                g = float(W[p, p - 1])
                if g != 0.0:
                    c, s, _ = givens(f, g)
                    cend = min(n - 1, p + band)
                    _rot_rows(W, p - 1, p, p - 1, cend, c, s)
                    W[p, p - 1] = 0.0
                # the left rotation filled (p-1, p+band) beyond the band
                q = p + band
                if q > n - 1:
                    break
                f = float(W[p - 1, q - 1])
                g = float(W[p - 1, q])
                if g != 0.0:
                    c, s, _ = givens(f, g)
                    _rot_cols(W, q - 1, q, p - 1, min(n - 1, q), c, s)
                    W[p - 1, q] = 0.0
                p = q

    d = np.ascontiguousarray(np.diagonal(W)).copy()
    e = np.ascontiguousarray(np.diagonal(W, 1)).copy()
    return d, e
