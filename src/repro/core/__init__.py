"""Two-stage QR singular value computation (the paper's core contribution)."""

from .banddiag import getsmqrt, reduce_to_band
from .batched import predict_batched, svdvals_batched
from .jacobi import jacobi_svdvals
from .rectangular import qr_reduce_tall, svdvals_rect
from .vectors import SVDResult, svd_full
from .bidiag import bisect, golub_kahan, singular_2x2, svdvals_bidiag
from .brd import band_to_bidiagonal, givens
from .svd import SVDInfo, svdvals
from .tiling import band_width, extract_band, is_upper_band, ntiles, pad_to_tiles, tile

__all__ = [
    "SVDInfo",
    "SVDResult",
    "predict_batched",
    "svdvals_batched",
    "jacobi_svdvals",
    "qr_reduce_tall",
    "svd_full",
    "svdvals_rect",
    "band_to_bidiagonal",
    "band_width",
    "bisect",
    "extract_band",
    "getsmqrt",
    "givens",
    "golub_kahan",
    "is_upper_band",
    "ntiles",
    "pad_to_tiles",
    "reduce_to_band",
    "singular_2x2",
    "svdvals",
    "svdvals_bidiag",
    "tile",
]
