"""Two-stage QR singular value computation (the paper's core contribution).

Since the stage-graph refactor the drivers are *graph emitters*: each
problem shape maps to one :class:`~repro.sim.graph.LaunchGraph`
(``emit_svd_graph`` / ``emit_tallqr_graph`` / ``emit_batched_graph``) that
the numeric and analytic executors both consume.
"""

from .banddiag import emit_band_reduction, getsmqrt, reduce_to_band
from .eigh import bind_eigh_table, eigh_tridiagonal, emit_eigh_graph
from .randomized import (
    bind_lowrank_table,
    emit_lowrank_graph,
    lowrank_reference,
    sketch_width,
)
from .workloads import WORKLOADS, WorkloadSpec, register_workload
from .batched import (
    bind_batched_table,
    emit_batched_graph,
    predict_batched,
    svdvals_batched,
)
from .jacobi import jacobi_svdvals
from .rectangular import emit_tallqr_graph, qr_reduce_tall, svdvals_rect
from .vectors import SVDResult, svd_full
from .bidiag import bisect, golub_kahan, singular_2x2, svdvals_bidiag
from .brd import band_to_bidiagonal, emit_brd_chase, givens
from .svd import SVDInfo, bind_svd_table, emit_svd_graph, svdvals
from .tiling import band_width, extract_band, is_upper_band, ntiles, pad_to_tiles, tile

__all__ = [
    "SVDInfo",
    "SVDResult",
    "WORKLOADS",
    "WorkloadSpec",
    "bind_batched_table",
    "bind_eigh_table",
    "bind_lowrank_table",
    "bind_svd_table",
    "eigh_tridiagonal",
    "emit_band_reduction",
    "emit_batched_graph",
    "emit_brd_chase",
    "emit_eigh_graph",
    "emit_lowrank_graph",
    "emit_svd_graph",
    "emit_tallqr_graph",
    "lowrank_reference",
    "register_workload",
    "sketch_width",
    "predict_batched",
    "svdvals_batched",
    "jacobi_svdvals",
    "qr_reduce_tall",
    "svd_full",
    "svdvals_rect",
    "band_to_bidiagonal",
    "band_width",
    "bisect",
    "extract_band",
    "getsmqrt",
    "givens",
    "golub_kahan",
    "is_upper_band",
    "ntiles",
    "pad_to_tiles",
    "reduce_to_band",
    "singular_2x2",
    "svdvals",
    "svdvals_bidiag",
    "tile",
]
