"""Stage 1: reduction of a dense square matrix to upper band form.

This is Algorithm 1/2 of the paper.  For each diagonal tile ``k``:

* an **RQ sweep** makes tile ``(k, k)`` upper triangular (GEQRT), applies
  the reflectors to the tile row (UNMQR), then annihilates every tile below
  the diagonal jointly with the triangle (TSQRT) while updating the paired
  tile rows (TSMQR);
* an **LQ sweep** applies the transposed algorithm to the tile right of the
  diagonal, reusing the *same* kernels on a lazy-transpose view - NumPy's
  strided ``A.T`` plays the role of Julia's lazy transpose: index-level
  transposition with no data movement.

With ``fused=True`` the TSQRT/TSMQR sequences along a panel run inside
single FTSQRT/FTSMQR launches (Figure 2), changing launch counts and memory
traffic but executing numerically identical operations in the same order.

The result is an upper band matrix of bandwidth ``TILESIZE``: the diagonal
tiles are upper triangular and the superdiagonal tiles lower triangular.
Below-band storage holds the reflector tails and is ignored downstream.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..kernels import ftsmqr, ftsqrt, geqrt, tsmqr, tsqrt, unmqr
from ..sim.session import Session
from .tiling import ntiles, tile

__all__ = ["getsmqrt", "reduce_to_band"]


def getsmqrt(
    B: np.ndarray,
    k: int,
    ts: int,
    eps: float,
    session: Optional[Session] = None,
    lq: bool = False,
    fused: bool = True,
    compute_dtype: Optional[np.dtype] = None,
) -> None:
    """One panel factorization + trailing update (paper's ``GETSMQRT``).

    Parameters
    ----------
    B:
        Full (padded) matrix view - pass ``A`` for the RQ sweep and the
        lazy transpose ``A.T`` for the LQ sweep.
    k:
        Sweep index (0-based diagonal tile).
    ts:
        Tile size (TILESIZE).
    eps:
        Machine epsilon of the input precision.
    session:
        Simulator session; when given, every kernel launch is priced and
        traced.  ``None`` runs numerics only.
    lq:
        False: pivot tile is ``(k, k)`` (RQ sweep).  True: pivot tile is
        ``(k+1, k)`` of the transposed view (LQ sweep), i.e. ``(k, k+1)``
        of the original matrix.
    fused:
        Use the fused FTSQRT/FTSMQR kernels (default) or the classic
        row-by-row TSQRT/TSMQR launches.
    compute_dtype:
        Arithmetic dtype when it differs from storage (FP16 upcast).
    """
    npad = B.shape[0]
    nbt = ntiles(npad, ts)
    row0 = k + 1 if lq else k
    if row0 >= nbt:
        return

    diag = tile(B, row0, k, ts)
    tau0 = np.zeros(ts, dtype=compute_dtype or B.dtype)

    # ---- GEQRT on the pivot tile ---------------------------------------- #
    geqrt(diag, tau0, eps, compute_dtype)
    if session is not None:
        session.launch_panel("geqrt", nbodies=1, body_tiles=1)

    # ---- UNMQR on the pivot tile row ------------------------------------ #
    c0 = (k + 1) * ts
    width = npad - c0
    if width > 0:
        row_view = B[row0 * ts : (row0 + 1) * ts, c0:]
        unmqr(diag, tau0, row_view, compute_dtype)
        if session is not None:
            session.launch_update("unmqr", width, nrows=1, has_top_row=False)

    # ---- panel: TSQRT/TSMQR over below rows ------------------------------ #
    below = list(range(row0 + 1, nbt))
    if not below:
        return
    taus = [np.zeros(ts, dtype=compute_dtype or B.dtype) for _ in below]
    Bs = [tile(B, l, k, ts) for l in below]

    if fused:
        ftsqrt(diag, Bs, taus, eps, compute_dtype)
        if session is not None:
            session.launch_panel("ftsqrt", nbodies=len(below), body_tiles=2)
        if width > 0:
            Y = B[row0 * ts : (row0 + 1) * ts, c0:]
            Xs = [B[l * ts : (l + 1) * ts, c0:] for l in below]
            ftsmqr(Bs, taus, Y, Xs, compute_dtype)
            if session is not None:
                session.launch_update(
                    "ftsmqr", width, nrows=len(below), has_top_row=True
                )
    else:
        Y = B[row0 * ts : (row0 + 1) * ts, c0:]
        for l, Bl, taul in zip(below, Bs, taus):
            tsqrt(diag, Bl, taul, eps, compute_dtype)
            if session is not None:
                session.launch_panel("tsqrt", nbodies=1, body_tiles=2)
            if width > 0:
                X = B[l * ts : (l + 1) * ts, c0:]
                tsmqr(Bl, taul, Y, X, compute_dtype)
                if session is not None:
                    session.launch_update(
                        "tsmqr", width, nrows=1, has_top_row=True
                    )


def reduce_to_band(
    A: np.ndarray,
    ts: int,
    eps: float,
    session: Optional[Session] = None,
    fused: bool = True,
    compute_dtype: Optional[np.dtype] = None,
) -> None:
    """Reduce a padded square matrix to upper band form in place.

    This is the paper's ``banddiag!`` (Algorithm 2): alternate RQ and LQ
    sweeps over the diagonal tiles, the LQ sweep running the same code on
    the lazy transpose, then a final GEQRT on the last diagonal tile.
    """
    npad = A.shape[0]
    if npad % ts != 0:
        raise ValueError(f"matrix order {npad} is not a multiple of TILESIZE {ts}")
    nbt = npad // ts

    for k in range(nbt - 1):
        getsmqrt(A, k, ts, eps, session, lq=False, fused=fused,
                 compute_dtype=compute_dtype)
        getsmqrt(A.T, k, ts, eps, session, lq=True, fused=fused,
                 compute_dtype=compute_dtype)

    # final diagonal tile: GEQRT only (Algorithm 2 line 6)
    tau = np.zeros(ts, dtype=compute_dtype or A.dtype)
    geqrt(tile(A, nbt - 1, nbt - 1, ts), tau, eps, compute_dtype)
    if session is not None:
        session.launch_panel("geqrt", nbodies=1, body_tiles=1)
