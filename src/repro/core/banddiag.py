"""Stage 1: reduction of a dense square matrix to upper band form.

This is Algorithm 1/2 of the paper.  For each diagonal tile ``k``:

* an **RQ sweep** makes tile ``(k, k)`` upper triangular (GEQRT), applies
  the reflectors to the tile row (UNMQR), then annihilates every tile below
  the diagonal jointly with the triangle (TSQRT) while updating the paired
  tile rows (TSMQR);
* an **LQ sweep** applies the transposed algorithm to the tile right of the
  diagonal, reusing the *same* kernels on a lazy-transpose view - NumPy's
  strided ``A.T`` plays the role of Julia's lazy transpose: index-level
  transposition with no data movement.

With ``fused=True`` the TSQRT/TSMQR sequences along a panel run inside
single FTSQRT/FTSMQR launches (Figure 2), changing launch counts and memory
traffic but executing numerically identical operations in the same order.

The result is an upper band matrix of bandwidth ``TILESIZE``: the diagonal
tiles are upper triangular and the superdiagonal tiles lower triangular.
Below-band storage holds the reflector tails and is ignored downstream.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..kernels import ftsmqr, ftsqrt, geqrt, tsmqr, tsqrt, unmqr
from ..sim.graph import LaunchNode, NumericExecutor
from ..sim.session import Session
from ..sim.tracing import Stage
from .tiling import ntiles, tile

__all__ = ["emit_band_reduction", "getsmqrt", "reduce_to_band"]


def _chunk_width(width: int, ts: int, streams: int) -> List[Tuple[int, int]]:
    """Column chunks ``(offset, width)`` of one trailing-update launch.

    Single-stream graphs keep the historical monolithic launch.  With
    ``streams > 1`` the launch models lookahead execution: a head chunk
    of one tile column is split off - the stand-in for the prioritized
    tile-level work that produces the next panel chain's operands - and
    the remainder is divided across the extra streams.
    """
    if streams <= 1 or width <= ts:
        return [(0, width)]
    rem_tiles = (width - ts) // ts
    parts = max(1, min(streams - 1, rem_tiles))
    chunks = [(0, ts)]
    base, extra = divmod(rem_tiles, parts)
    off = ts
    for i in range(parts):
        w = (base + (1 if i < extra else 0)) * ts
        if w == 0:
            continue
        chunks.append((off, w))
        off += w
    return chunks


def emit_band_reduction(
    nbt: int, ts: int, fused: bool = True, streams: int = 1,
    counted: bool = False,
) -> List[LaunchNode]:
    """Emit the stage-1 launch nodes for an ``nbt x nbt`` tile grid.

    This is the declarative form of :func:`reduce_to_band` (Algorithm 2):
    alternating RQ/LQ sweeps of GEQRT + UNMQR + (F)TSQRT/(F)TSMQR plus the
    final diagonal GEQRT, in the exact order the numeric loop runs them.
    Dependencies encode, per sweep, panel -> update ordering and the
    previous sweep's updates feeding the next pivot; with ``streams > 1``
    updates are split into head/remainder chunks (see :mod:`repro.sim.graph`)
    so only the head chunk gates the next panel chain.

    ``counted=True`` folds each unfused TSQRT/TSMQR run into one node with
    ``count=r`` (the launch set and charged time are unchanged) so the
    analytic predictor stays O(tiles) on the quadratic unfused schedule;
    counted graphs are not replayable numerically.

    Every node's ``meta`` ends with its sweep index and carries the tile
    coordinates the multi-GPU partitioner shards by (see
    :mod:`repro.sim.partition`); changing a meta layout here requires
    updating the partitioner's per-kind parsing in lock-step.
    """
    nodes: List[LaunchNode] = []

    def add(kind, stage, key, meta, deps, count=1) -> int:
        nodes.append(LaunchNode(kind, stage, key, meta, tuple(deps),
                                count=count))
        return len(nodes) - 1

    prev_heads: List[int] = []  # prior-sweep updates feeding the next panel
    prev_rems: List[int] = []  # prior-sweep remainder chunks (lookahead)
    for k in range(nbt - 1):
        for lq in (False, True):
            row0 = k + 1 if lq else k
            below = (row0 + 1, nbt)  # tile-row range (start, stop)
            r = nbt - row0 - 1
            width = (nbt - 1 - k) * ts
            sweep = 2 * k + (1 if lq else 0)
            chunks = _chunk_width(width, ts, streams)

            g = add(
                "geqrt", Stage.PANEL, ("panel", 1, 1),
                (lq, row0, k, sweep), prev_heads,
            )
            u_ids = [
                add(
                    "unmqr", Stage.UPDATE, ("update", cw, 1, False),
                    (lq, row0, k, k + 1, off, cw, sweep),
                    [g] + prev_rems,
                )
                for off, cw in chunks
            ]
            if r > 0:
                if fused:
                    fq = add(
                        "ftsqrt", Stage.PANEL, ("panel", r, 2),
                        (lq, row0, k, below, sweep), [g],
                    )
                    fm_ids = [
                        add(
                            "ftsmqr", Stage.UPDATE, ("update", cw, r, True),
                            (lq, row0, k, below, k + 1, off, cw, sweep),
                            [fq, u_ids[ci]],
                        )
                        for ci, (off, cw) in enumerate(chunks)
                    ]
                    heads, rems = [fm_ids[0]], fm_ids[1:] + u_ids[1:]
                elif counted and streams == 1:
                    tq = add(
                        "tsqrt", Stage.PANEL, ("panel", 1, 2), (), [g],
                        count=r,
                    )
                    tm = add(
                        "tsmqr", Stage.UPDATE, ("update", width, 1, True),
                        (), [tq, u_ids[0]], count=r,
                    )
                    heads, rems = [tm], []
                else:
                    prev_tq = g
                    prev_tm = list(u_ids)  # per-chunk Y-serialization pred
                    for l in range(*below):
                        tq = add(
                            "tsqrt", Stage.PANEL, ("panel", 1, 2),
                            (lq, row0, k, l, sweep), [prev_tq],
                        )
                        prev_tm = [
                            add(
                                "tsmqr", Stage.UPDATE,
                                ("update", cw, 1, True),
                                (lq, row0, k, l, k + 1, off, cw, sweep),
                                [tq, prev_tm[ci]],
                            )
                            for ci, (off, cw) in enumerate(chunks)
                        ]
                        prev_tq = tq
                    heads, rems = [prev_tm[0]], prev_tm[1:]
            else:
                heads, rems = [u_ids[0]], u_ids[1:]
            prev_heads, prev_rems = heads, rems

    # final diagonal tile: GEQRT only (Algorithm 2 line 6)
    add(
        "geqrt", Stage.PANEL, ("panel", 1, 1),
        (False, nbt - 1, nbt - 1, 2 * (nbt - 1)),
        prev_heads + prev_rems,
    )
    return nodes


def getsmqrt(
    B: np.ndarray,
    k: int,
    ts: int,
    eps: float,
    session: Optional[Session] = None,
    lq: bool = False,
    fused: bool = True,
    compute_dtype: Optional[np.dtype] = None,
) -> None:
    """One panel factorization + trailing update (paper's ``GETSMQRT``).

    Parameters
    ----------
    B:
        Full (padded) matrix view - pass ``A`` for the RQ sweep and the
        lazy transpose ``A.T`` for the LQ sweep.
    k:
        Sweep index (0-based diagonal tile).
    ts:
        Tile size (TILESIZE).
    eps:
        Machine epsilon of the input precision.
    session:
        Simulator session; when given, every kernel launch is priced and
        traced.  ``None`` runs numerics only.
    lq:
        False: pivot tile is ``(k, k)`` (RQ sweep).  True: pivot tile is
        ``(k+1, k)`` of the transposed view (LQ sweep), i.e. ``(k, k+1)``
        of the original matrix.
    fused:
        Use the fused FTSQRT/FTSMQR kernels (default) or the classic
        row-by-row TSQRT/TSMQR launches.
    compute_dtype:
        Arithmetic dtype when it differs from storage (FP16 upcast).
    """
    npad = B.shape[0]
    nbt = ntiles(npad, ts)
    row0 = k + 1 if lq else k
    if row0 >= nbt:
        return

    diag = tile(B, row0, k, ts)
    tau0 = np.zeros(ts, dtype=compute_dtype or B.dtype)

    # ---- GEQRT on the pivot tile ---------------------------------------- #
    geqrt(diag, tau0, eps, compute_dtype)
    if session is not None:
        session.launch_panel("geqrt", nbodies=1, body_tiles=1)

    # ---- UNMQR on the pivot tile row ------------------------------------ #
    c0 = (k + 1) * ts
    width = npad - c0
    if width > 0:
        row_view = B[row0 * ts : (row0 + 1) * ts, c0:]
        unmqr(diag, tau0, row_view, compute_dtype)
        if session is not None:
            session.launch_update("unmqr", width, nrows=1, has_top_row=False)

    # ---- panel: TSQRT/TSMQR over below rows ------------------------------ #
    below = list(range(row0 + 1, nbt))
    if not below:
        return
    taus = [np.zeros(ts, dtype=compute_dtype or B.dtype) for _ in below]
    Bs = [tile(B, l, k, ts) for l in below]

    if fused:
        ftsqrt(diag, Bs, taus, eps, compute_dtype)
        if session is not None:
            session.launch_panel("ftsqrt", nbodies=len(below), body_tiles=2)
        if width > 0:
            Y = B[row0 * ts : (row0 + 1) * ts, c0:]
            Xs = [B[l * ts : (l + 1) * ts, c0:] for l in below]
            ftsmqr(Bs, taus, Y, Xs, compute_dtype)
            if session is not None:
                session.launch_update(
                    "ftsmqr", width, nrows=len(below), has_top_row=True
                )
    else:
        Y = B[row0 * ts : (row0 + 1) * ts, c0:]
        for l, Bl, taul in zip(below, Bs, taus):
            tsqrt(diag, Bl, taul, eps, compute_dtype)
            if session is not None:
                session.launch_panel("tsqrt", nbodies=1, body_tiles=2)
            if width > 0:
                X = B[l * ts : (l + 1) * ts, c0:]
                tsmqr(Bl, taul, Y, X, compute_dtype)
                if session is not None:
                    session.launch_update(
                        "tsmqr", width, nrows=1, has_top_row=True
                    )


def reduce_to_band(
    A: np.ndarray,
    ts: int,
    eps: float,
    session: Optional[Session] = None,
    fused: bool = True,
    compute_dtype: Optional[np.dtype] = None,
) -> None:
    """Reduce a padded square matrix to upper band form in place.

    This is the paper's ``banddiag!`` (Algorithm 2): alternate RQ and LQ
    sweeps over the diagonal tiles, the LQ sweep running the same code on
    the lazy transpose, then a final GEQRT on the last diagonal tile.
    The sweep structure is emitted once by :func:`emit_band_reduction`
    and replayed by the :class:`~repro.sim.graph.NumericExecutor`.
    """
    npad = A.shape[0]
    if npad % ts != 0:
        raise ValueError(f"matrix order {npad} is not a multiple of TILESIZE {ts}")
    nbt = npad // ts
    nodes = emit_band_reduction(nbt, ts, fused=fused)
    NumericExecutor(
        A, ts, eps, session=session, compute_dtype=compute_dtype
    ).run(nodes)
