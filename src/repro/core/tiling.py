"""Tile-grid helpers for the stage-1 reduction.

The stage-1 algorithm views the matrix as an ``N x N`` grid of
``TILESIZE x TILESIZE`` tiles.  This module provides zero-copy tile views,
padding of arbitrary sizes to full tiles (zero padding appends exactly-zero
singular values, which the driver strips again), and structure predicates
used by the tests (band width, triangularity).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..errors import ShapeError

__all__ = [
    "ntiles",
    "pad_to_tiles",
    "tile",
    "band_width",
    "is_upper_band",
    "extract_band",
]


def ntiles(n: int, ts: int) -> int:
    """Number of tiles per side for an ``n x n`` matrix (ceil division)."""
    if n < 1:
        raise ShapeError(f"matrix order must be positive, got {n}")
    return -(-n // ts)


def pad_to_tiles(A: np.ndarray, ts: int) -> Tuple[np.ndarray, int]:
    """Zero-pad a square matrix to a multiple of the tile size.

    Returns ``(padded_copy, n_original)``.  Padding with zero rows/columns
    appends exactly-zero singular values: orthogonal transforms generated
    from zero columns are sign flips (the Algorithm 3 small-reflector
    correction), so the padding region stays zero through stage 1.
    """
    if A.ndim != 2 or A.shape[0] != A.shape[1]:
        raise ShapeError(f"expected a square matrix, got shape {A.shape}")
    n = A.shape[0]
    npad = ntiles(n, ts) * ts
    if npad == n:
        return np.array(A, copy=True, order="C"), n
    out = np.zeros((npad, npad), dtype=A.dtype)
    out[:n, :n] = A
    return out, n


def tile(A: np.ndarray, i: int, j: int, ts: int) -> np.ndarray:
    """Zero-copy view of tile ``(i, j)`` of the tile grid."""
    return A[i * ts : (i + 1) * ts, j * ts : (j + 1) * ts]


def band_width(A: np.ndarray, tol: float = 0.0) -> Tuple[int, int]:
    """Measured (lower, upper) bandwidths: largest ``|i-j|`` with
    ``|A[i,j]| > tol`` below/above the diagonal.  Returns ``(0, 0)`` for a
    diagonal matrix."""
    n = A.shape[0]
    lower = upper = 0
    idx = np.argwhere(np.abs(A) > tol)
    if idx.size:
        diff = idx[:, 1] - idx[:, 0]
        upper = int(max(0, diff.max()))
        lower = int(max(0, (-diff).max()))
    return lower, upper


def is_upper_band(A: np.ndarray, band: int, tol: float) -> bool:
    """True if ``A`` is zero (to ``tol``) outside diagonals ``0..band``."""
    lower, upper = band_width(A, tol)
    return lower == 0 and upper <= band


def extract_band(A: np.ndarray, band: int) -> np.ndarray:
    """Copy of ``A`` keeping only diagonals ``0..band`` (upper band).

    Stage 1 leaves Householder reflector tails in the below-band tiles
    (they are never zeroed explicitly, exactly like real implementations
    that reuse the buffer as reflector storage); the band extraction is
    what hands a clean band matrix to stage 2.
    """
    n = A.shape[0]
    out = np.zeros_like(A)
    for k in range(0, band + 1):
        idx = np.arange(n - k)
        out[idx, idx + k] = A[idx, idx + k]
    return out
