"""Full SVD: singular vectors (the paper's first listed future work).

The paper computes values only and plans "to extend the implementation to
compute singular vectors, enabling full-rank SVD functionality".  This
module implements that extension on the same kernel set:

* **Stage 1** transformations are accumulated with the *existing* UNMQR /
  TSMQR kernels applied to the accumulator's lazy transpose: the reduction
  computes ``B = Q1^T A Q2`` sweep by sweep, and the accumulators update as
  ``U <- U Q1`` = ``(Q1^T U^T)^T`` — one more instance of the paper's
  transpose trick, no new kernels;
* **Stage 2** Givens rotations are mirrored into the accumulators;
* **Stage 3** runs the Golub-Kahan QR iteration with rotation accumulation
  (the vector-bearing variant of :mod:`repro.core.bidiag`).

The result satisfies ``A = U @ diag(s) @ Vt`` with orthogonal factors.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..errors import ConvergenceError, ShapeError
from ..sim.session import Session
from ..kernels import ftsmqr, ftsqrt, geqrt, unmqr
from .bidiag import _rotg, singular_2x2
from .tiling import extract_band, ntiles, pad_to_tiles, tile

__all__ = ["svd_full", "SVDResult"]


@dataclass
class SVDResult:
    """Full SVD factors: ``A ~= U @ diag(s) @ Vt``."""

    U: np.ndarray
    s: np.ndarray
    Vt: np.ndarray

    def reconstruct(self) -> np.ndarray:
        """Rebuild the matrix from the factors."""
        return (self.U * self.s) @ self.Vt


# --------------------------------------------------------------------- #
# stage 1 with accumulation
# --------------------------------------------------------------------- #
def _getsmqrt_acc(
    B: np.ndarray,
    acc_t: np.ndarray,
    k: int,
    ts: int,
    eps: float,
    lq: bool,
    session: Optional[Session],
) -> None:
    """One GETSMQRT sweep, mirroring every update into ``acc_t``.

    ``acc_t`` is the transposed accumulator (``U^T`` for RQ sweeps on
    ``A``, ``V^T`` for LQ sweeps on ``A^T``): the left-applied reflectors
    of the sweep are applied to its *full row width*.
    """
    npad = B.shape[0]
    nbt = ntiles(npad, ts)
    row0 = k + 1 if lq else k
    if row0 >= nbt:
        return

    diag = tile(B, row0, k, ts)
    tau0 = np.zeros(ts, dtype=B.dtype)
    geqrt(diag, tau0, eps)
    if session is not None:
        session.launch_panel("geqrt", 1, 1)

    c0 = (k + 1) * ts
    width = npad - c0
    if width > 0:
        unmqr(diag, tau0, B[row0 * ts : (row0 + 1) * ts, c0:])
        if session is not None:
            session.launch_update("unmqr", width, 1, False)
    # accumulate: the same reflectors hit the accumulator's full width
    unmqr(diag, tau0, acc_t[row0 * ts : (row0 + 1) * ts, :])
    if session is not None:
        session.launch_update("unmqr_acc", npad, 1, False)

    below = list(range(row0 + 1, nbt))
    if not below:
        return
    taus = [np.zeros(ts, dtype=B.dtype) for _ in below]
    Bs = [tile(B, l, k, ts) for l in below]
    ftsqrt(diag, Bs, taus, eps)
    if session is not None:
        session.launch_panel("ftsqrt", len(below), 2)
    if width > 0:
        Y = B[row0 * ts : (row0 + 1) * ts, c0:]
        Xs = [B[l * ts : (l + 1) * ts, c0:] for l in below]
        ftsmqr(Bs, taus, Y, Xs)
        if session is not None:
            session.launch_update("ftsmqr", width, len(below), True)
    Ya = acc_t[row0 * ts : (row0 + 1) * ts, :]
    Xsa = [acc_t[l * ts : (l + 1) * ts, :] for l in below]
    ftsmqr(Bs, taus, Ya, Xsa)
    if session is not None:
        session.launch_update("ftsmqr_acc", npad, len(below), True)


def _reduce_to_band_acc(
    A: np.ndarray,
    Ut: np.ndarray,
    Vt: np.ndarray,
    ts: int,
    eps: float,
    session: Optional[Session],
) -> None:
    """Stage 1 with U/V accumulation (in place on all three arrays)."""
    npad = A.shape[0]
    nbt = npad // ts
    for k in range(nbt - 1):
        _getsmqrt_acc(A, Ut, k, ts, eps, lq=False, session=session)
        _getsmqrt_acc(A.T, Vt, k, ts, eps, lq=True, session=session)
    tau = np.zeros(ts, dtype=A.dtype)
    diag = tile(A, nbt - 1, nbt - 1, ts)
    geqrt(diag, tau, eps)
    if session is not None:
        session.launch_panel("geqrt", 1, 1)
    unmqr(diag, tau, Ut[(nbt - 1) * ts :, :])
    if session is not None:
        session.launch_update("unmqr_acc", npad, 1, False)


# --------------------------------------------------------------------- #
# stage 2 with accumulation
# --------------------------------------------------------------------- #
def _rot_cols_acc(M, j1, j2, c, s):
    a = M[:, j1].copy()
    b = M[:, j2]
    M[:, j1] = c * a + s * b
    M[:, j2] = -s * a + c * b


def _band_to_bidiagonal_acc(
    W: np.ndarray,
    U: np.ndarray,
    V: np.ndarray,
    band: int,
    session: Optional[Session],
) -> Tuple[np.ndarray, np.ndarray]:
    """Bulge chasing with accumulation (left rotations -> U, right -> V)."""
    from .brd import givens

    n = W.shape[0]
    if session is not None:
        session.launch_brd(n, band)
    if band <= 1 or n <= 2:
        d = np.ascontiguousarray(np.diagonal(W)).copy()
        e = (
            np.ascontiguousarray(np.diagonal(W, 1)).copy()
            if n > 1
            else np.zeros(0, W.dtype)
        )
        return d, e

    for i in range(n - 1):
        hi = min(i + band, n - 1)
        for j in range(hi, i + 1, -1):
            g = float(W[i, j])
            if g != 0.0:
                c, s, _ = givens(float(W[i, j - 1]), g)
                r0, r1 = i, min(n - 1, j)
                a = W[r0 : r1 + 1, j - 1].copy()
                b = W[r0 : r1 + 1, j]
                W[r0 : r1 + 1, j - 1] = c * a + s * b
                W[r0 : r1 + 1, j] = -s * a + c * b
                W[i, j] = 0.0
                _rot_cols_acc(V, j - 1, j, c, s)
            p = j
            while p < n:
                g = float(W[p, p - 1])
                if g != 0.0:
                    c, s, _ = givens(float(W[p - 1, p - 1]), g)
                    cend = min(n - 1, p + band)
                    a = W[p - 1, p - 1 : cend + 1].copy()
                    b = W[p, p - 1 : cend + 1]
                    W[p - 1, p - 1 : cend + 1] = c * a + s * b
                    W[p, p - 1 : cend + 1] = -s * a + c * b
                    W[p, p - 1] = 0.0
                    _rot_cols_acc(U, p - 1, p, c, s)
                q = p + band
                if q > n - 1:
                    break
                g = float(W[p - 1, q])
                if g != 0.0:
                    c, s, _ = givens(float(W[p - 1, q - 1]), g)
                    a = W[p - 1 : min(n - 1, q) + 1, q - 1].copy()
                    b = W[p - 1 : min(n - 1, q) + 1, q]
                    W[p - 1 : min(n - 1, q) + 1, q - 1] = c * a + s * b
                    W[p - 1 : min(n - 1, q) + 1, q] = -s * a + c * b
                    W[p - 1, q] = 0.0
                    _rot_cols_acc(V, q - 1, q, c, s)
                p = q
    d = np.ascontiguousarray(np.diagonal(W)).copy()
    e = np.ascontiguousarray(np.diagonal(W, 1)).copy()
    return d, e


# --------------------------------------------------------------------- #
# stage 3 with accumulation
# --------------------------------------------------------------------- #
def _gk_vectors(d, e, U, V, maxiter_factor: int = 30) -> np.ndarray:
    """Golub-Kahan QR iteration accumulating rotations into U and V."""
    n = d.shape[0]
    if n == 1:
        if d[0] < 0:
            d[0] = -d[0]
            U[:, 0] = -U[:, 0]
        return d
    eps = float(np.finfo(np.float64).eps)
    sigma_max = max(np.abs(d).max(), np.abs(e).max() if n > 1 else 0.0)
    if sigma_max == 0.0:
        return np.zeros(n)
    tol = 20.0 * eps
    floor = eps * sigma_max

    def small(i):
        return abs(e[i]) <= tol * (abs(d[i]) + abs(d[i + 1])) or abs(e[i]) <= floor

    maxit = maxiter_factor * n * n
    iters = 0
    hi = n - 1
    while hi > 0:
        iters += 1
        if iters > maxit:
            raise ConvergenceError("vector-bearing QR iteration stalled")
        if small(hi - 1):
            e[hi - 1] = 0.0
            hi -= 1
            continue
        lo = hi - 1
        while lo > 0 and not small(lo - 1):
            lo -= 1

        block_max = max(np.abs(d[lo : hi + 1]).max(), np.abs(e[lo:hi]).max())
        dk_small = np.abs(d[lo : hi + 1]) <= tol * block_max
        if dk_small.any():
            k = lo + int(np.argmax(dk_small))
            d[k] = 0.0
            if k < hi:  # chase e[k] rightward with left rotations
                f = e[k]
                e[k] = 0.0
                for j in range(k + 1, hi + 1):
                    c, s, r = _rotg(d[j], f)
                    d[j] = r
                    # rows (j, k) mix: U columns j, k
                    _rot_cols_acc(U, j, k, c, s)
                    if j < hi:
                        f = -s * e[j]
                        e[j] = c * e[j]
            if k > lo:  # chase e[k-1] upward with right rotations
                g = e[k - 1]
                e[k - 1] = 0.0
                for j in range(k - 1, lo - 1, -1):
                    c, s, r = _rotg(d[j], g)
                    d[j] = r
                    _rot_cols_acc(V, j, k, c, s)
                    if j > lo:
                        g = -s * e[j - 1]
                        e[j - 1] = c * e[j - 1]
            continue

        # implicit-shift sweep with accumulation
        shift, _ = singular_2x2(d[hi - 1], e[hi - 1], d[hi])
        sll = abs(d[lo])
        if sll > 0.0 and (shift / sll) ** 2 <= eps:
            shift = 0.0
        if shift == 0.0:
            f = d[lo]
            g = e[lo]
        else:
            f = (abs(d[lo]) - shift) * (
                math.copysign(1.0, d[lo]) + shift / d[lo]
            )
            g = e[lo]
        for k in range(lo, hi):
            c, s, r = _rotg(f, g)
            _rot_cols_acc(V, k, k + 1, c, s)
            if k > lo:
                e[k - 1] = r
            f = c * d[k] + s * e[k]
            e[k] = c * e[k] - s * d[k]
            g = s * d[k + 1]
            d[k + 1] = c * d[k + 1]
            c, s, r = _rotg(f, g)
            _rot_cols_acc(U, k, k + 1, c, s)
            d[k] = r
            f = c * e[k] + s * d[k + 1]
            d[k + 1] = c * d[k + 1] - s * e[k]
            if k < hi - 1:
                g = s * e[k + 1]
                e[k + 1] = c * e[k + 1]
        e[hi - 1] = f
    return d


def _complete_basis(Q: np.ndarray, keep: np.ndarray) -> np.ndarray:
    """Replace the columns ``~keep`` of ``Q`` by an orthonormal completion.

    The kept columns (singular vectors of nonzero singular values) are
    preserved exactly; the remaining columns are rebuilt as an orthonormal
    basis of their orthogonal complement via QR of the projected identity.
    """
    n = Q.shape[0]
    kept = Q[:, keep]
    k = kept.shape[1]
    if k == n:
        return Q
    # orthonormal complement: QR of [kept | I] spans R^n; columns k..n-1
    # are orthogonal to the kept block
    full, _ = np.linalg.qr(np.concatenate([kept, np.eye(n)], axis=1))
    out = Q.copy()
    out[:, ~keep] = full[:, k:n]
    return out


# --------------------------------------------------------------------- #
# driver
# --------------------------------------------------------------------- #
def svd_full_resolved(A: np.ndarray, config, return_info: bool = False):
    """Full-SVD implementation against a resolved :class:`SolveConfig`.

    The single shared code path behind :meth:`repro.Solver.svd` and the
    legacy :func:`svd_full` shim.
    """
    from .svd import SVDInfo

    A = np.asarray(A)
    if A.ndim != 2 or A.shape[0] != A.shape[1]:
        raise ShapeError(f"svd_full expects a square matrix, got {A.shape}")
    n = A.shape[0]
    if n == 0:
        raise ShapeError("empty matrix")
    if config.check_finite and not np.all(np.isfinite(A)):
        raise ShapeError("input matrix contains NaN or Inf entries")

    be = config.backend
    storage = config.storage_for(A.dtype)
    session = config.session(storage)
    be.check_capacity(n, storage)
    ts = session.params.tilesize

    # vectors are accumulated in compute precision for stability
    work_dtype = session.compute.dtype
    W, _ = pad_to_tiles(np.asarray(A, dtype=storage.dtype).astype(work_dtype), ts)
    npad = W.shape[0]
    Ut = np.eye(npad, dtype=work_dtype)
    Vt = np.eye(npad, dtype=work_dtype)

    _reduce_to_band_acc(W, Ut, Vt, ts, storage.eps, session)

    band = extract_band(W, ts)
    d, e = _band_to_bidiagonal_acc(
        band, Ut.T, Vt.T, ts, session=None
    )
    session.launch_brd(npad, ts)

    d64 = d.astype(np.float64)
    e64 = e.astype(np.float64)
    U = Ut.T.astype(np.float64)
    V = Vt.T.astype(np.float64)
    session.launch_solve(n)
    s = _gk_vectors(d64, e64, U, V)

    # fix signs, sort descending, strip padding
    neg = s < 0
    s[neg] = -s[neg]
    U[:, neg] = -U[:, neg]
    order = np.argsort(s)[::-1][:n]
    s_out = s[order].copy()
    U_out = np.ascontiguousarray(U[:n, order])
    V_out = np.ascontiguousarray(V[:n, order])
    # zero singular values of a padded problem may point into the padding
    # subspace; after the row truncation those columns are no longer unit
    # vectors.  Replace them with an orthonormal completion (any basis of
    # the zero-sigma space is a valid set of singular vectors).
    tol = max(n, npad) * np.finfo(np.float64).eps * max(s_out[0], 1.0)
    dead = s_out <= tol
    if dead.any():
        U_out = _complete_basis(U_out, ~dead)
        V_out = _complete_basis(V_out, ~dead)
    result = SVDResult(U=U_out, s=s_out, Vt=np.ascontiguousarray(V_out.T))
    if not return_info:
        return result
    tracer = session.tracer
    info = SVDInfo(
        n=n,
        backend=be.name,
        precision=storage.name_lower,
        params=session.params,
        fused=True,
        simulated_seconds=tracer.total_seconds,
        stage_seconds=tracer.stage_breakdown(),
        launch_counts=tracer.kernel_counts(),
        flops=tracer.total_flops,
        bytes=tracer.total_bytes,
    )
    return result, info


def svd_full(
    A: np.ndarray,
    backend="h100",
    precision=None,
    params=None,
    return_info: bool = False,
):
    """Full SVD ``A = U diag(s) Vt`` on the simulated GPU.

    Implements the paper's future-work extension with the same three-stage
    pipeline, accumulating the orthogonal transformations of every stage.
    Vector accumulation runs in the backend's compute precision.

    Returns an :class:`SVDResult` (and the driver's ``SVDInfo`` when
    ``return_info=True``).  Singular values are sorted in descending order
    with columns of ``U`` / rows of ``Vt`` permuted to match.  Thin shim
    over :class:`repro.Solver`.
    """
    from ..solver import Solver

    solver = Solver(backend=backend, precision=precision, params=params)
    return solver.svd(A, return_info=return_info)
