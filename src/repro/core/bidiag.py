"""Stage 3: singular values of a real upper-bidiagonal matrix.

The paper hands this final, cheapest stage to a high-quality CPU library
(LAPACK divide & conquer).  This reproduction implements the solvers from
scratch and keeps SciPy only as an optional oracle:

* :func:`golub_kahan` - implicit-shift QR iteration in the style of LAPACK
  ``bdsqr``, with Demmel-Kahan zero-shift sweeps for accuracy near zero,
  2x2 closed forms, splitting, deflation and zero-diagonal handling;
* :func:`bisect` - bisection on Sturm counts of the Golub-Kahan tridiagonal
  ``TGK = [[0, B^T], [B, 0]]`` permuted to a zero-diagonal tridiagonal with
  offdiagonals ``d1, e1, d2, e2, ...``; the counts for all ``n`` targets
  advance in lock-step as one vectorized recurrence;
* :func:`svdvals_bidiag` - the dispatcher (``method="auto"`` picks QR
  iteration for small blocks and bisection for large ones).

All solvers return singular values sorted in descending order as float64.
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import ConvergenceError

__all__ = ["golub_kahan", "bisect", "svdvals_bidiag", "singular_2x2"]

_EPS = float(np.finfo(np.float64).eps)


def _rotg(f: float, g: float):
    """Givens rotation ``(c, s, r)`` with ``c f + s g = r``."""
    if g == 0.0:
        return 1.0, 0.0, f
    if f == 0.0:
        return 0.0, 1.0, g
    r = math.hypot(f, g)
    return f / r, g / r, r


def singular_2x2(f: float, g: float, h: float):
    """Singular values of ``[[f, g], [0, h]]`` (LAPACK ``las2``).

    Returns ``(ssmin, ssmax)`` computed without squaring-induced overflow
    or underflow for moderate inputs.
    """
    fa, ga, ha = abs(f), abs(g), abs(h)
    fhmn, fhmx = min(fa, ha), max(fa, ha)
    if fhmn == 0.0:
        if fhmx == 0.0:
            return 0.0, ga
        big = max(fhmx, ga)
        small = min(fhmx, ga)
        return 0.0, big * math.sqrt(1.0 + (small / big) ** 2)
    if ga < fhmx:
        as_ = 1.0 + fhmn / fhmx
        at = (fhmx - fhmn) / fhmx
        au = (ga / fhmx) ** 2
        c = 2.0 / (math.sqrt(as_ * as_ + au) + math.sqrt(at * at + au))
        ssmin = fhmn * c
        ssmax = fhmx / c
    else:
        au = fhmx / ga
        if au == 0.0:
            ssmin = (fhmn * fhmx) / ga
            ssmax = ga
        else:
            as_ = 1.0 + fhmn / fhmx
            at = (fhmx - fhmn) / fhmx
            c = 1.0 / (
                math.sqrt(1.0 + (as_ * au) ** 2) + math.sqrt(1.0 + (at * au) ** 2)
            )
            ssmin = 2.0 * (fhmn * c) * au
            ssmax = ga / (2.0 * c)
    return ssmin, ssmax


# --------------------------------------------------------------------- #
# Golub-Kahan QR iteration
# --------------------------------------------------------------------- #
def _shifted_sweep(d, e, lo: int, hi: int, shift: float) -> None:
    """One forward implicit-shift QR sweep on block ``[lo, hi]``."""
    f = (abs(d[lo]) - shift) * (math.copysign(1.0, d[lo]) + shift / d[lo])
    g = e[lo]
    for k in range(lo, hi):
        c, s, r = _rotg(f, g)
        if k > lo:
            e[k - 1] = r
        f = c * d[k] + s * e[k]
        e[k] = c * e[k] - s * d[k]
        g = s * d[k + 1]
        d[k + 1] = c * d[k + 1]
        c, s, r = _rotg(f, g)
        d[k] = r
        f = c * e[k] + s * d[k + 1]
        d[k + 1] = c * d[k + 1] - s * e[k]
        if k < hi - 1:
            g = s * e[k + 1]
            e[k + 1] = c * e[k + 1]
    e[hi - 1] = f


def _zero_shift_sweep(d, e, lo: int, hi: int) -> None:
    """One forward Demmel-Kahan zero-shift sweep on block ``[lo, hi]``."""
    cs, oldcs, oldsn = 1.0, 1.0, 0.0
    for k in range(lo, hi):
        c, sn, r = _rotg(d[k] * cs, e[k])
        cs = c
        if k > lo:
            e[k - 1] = oldsn * r
        oldcs, oldsn, d[k] = _rotg(oldcs * r, d[k + 1] * sn)
    h = d[hi] * cs
    d[hi] = h * oldcs
    e[hi - 1] = h * oldsn


def _kill_row(d, e, k: int, hi: int) -> None:
    """Zero out row ``k`` when ``d[k] == 0`` (chase ``e[k]`` rightward)."""
    f = e[k]
    e[k] = 0.0
    for j in range(k + 1, hi + 1):
        c, s, r = _rotg(d[j], f)
        d[j] = r
        if j < hi:
            f = -s * e[j]
            e[j] = c * e[j]


def _kill_col(d, e, k: int, lo: int) -> None:
    """Zero out column ``k`` when ``d[k] == 0`` (chase ``e[k-1]`` upward)."""
    g = e[k - 1]
    e[k - 1] = 0.0
    for j in range(k - 1, lo - 1, -1):
        c, s, r = _rotg(d[j], g)
        d[j] = r
        if j > lo:
            g = -s * e[j - 1]
            e[j - 1] = c * e[j - 1]


def golub_kahan(
    d: np.ndarray,
    e: np.ndarray,
    maxiter_factor: int = 30,
) -> np.ndarray:
    """Singular values of ``bidiag(d, e)`` by implicit-shift QR iteration.

    Parameters
    ----------
    d, e:
        Main diagonal (``n``) and superdiagonal (``n-1``); not modified.
    maxiter_factor:
        Iteration budget is ``maxiter_factor * n^2`` sweeps before
        :class:`~repro.errors.ConvergenceError` is raised.

    Returns
    -------
    Singular values in descending order (float64).
    """
    d = np.asarray(d, dtype=np.float64).copy()
    e = np.asarray(e, dtype=np.float64).copy()
    n = d.shape[0]
    if e.shape[0] != max(0, n - 1):
        raise ValueError(f"superdiagonal length {e.shape[0]} != n-1 = {n - 1}")
    if n == 0:
        return np.zeros(0)
    if n == 1:
        return np.abs(d)

    sigma_max = max(np.abs(d).max(), np.abs(e).max() if n > 1 else 0.0)
    if sigma_max == 0.0:
        return np.zeros(n)
    tol = 20.0 * _EPS
    floor = _EPS * sigma_max

    def offdiag_small(i: int) -> bool:
        return abs(e[i]) <= tol * (abs(d[i]) + abs(d[i + 1])) or abs(e[i]) <= floor

    maxit = maxiter_factor * n * n
    iters = 0
    hi = n - 1
    while hi > 0:
        iters += 1
        if iters > maxit:
            raise ConvergenceError(
                f"bidiagonal QR iteration failed to converge after {maxit} sweeps"
            )
        if offdiag_small(hi - 1):
            e[hi - 1] = 0.0
            hi -= 1
            continue
        lo = hi - 1
        while lo > 0 and not offdiag_small(lo - 1):
            lo -= 1

        # zero / negligible diagonal entries split the block
        block_max = max(np.abs(d[lo : hi + 1]).max(), np.abs(e[lo:hi]).max())
        dk_small = np.abs(d[lo : hi + 1]) <= tol * block_max
        if dk_small.any():
            k = lo + int(np.argmax(dk_small))
            d[k] = 0.0
            if k < hi:
                _kill_row(d, e, k, hi)
            if k > lo:
                _kill_col(d, e, k, lo)
            continue

        if hi == lo + 1:  # 2x2 block: closed form
            ssmin, ssmax = singular_2x2(d[lo], e[lo], d[hi])
            d[lo], d[hi] = ssmax, ssmin
            e[lo] = 0.0
            hi = lo
            continue

        ssmin, _ = singular_2x2(d[hi - 1], e[hi - 1], d[hi])
        sll = abs(d[lo])
        if sll > 0.0 and (ssmin / sll) ** 2 <= _EPS:
            _zero_shift_sweep(d, e, lo, hi)
        else:
            _shifted_sweep(d, e, lo, hi, ssmin)

    out = np.abs(d)
    out.sort()
    return out[::-1].copy()


# --------------------------------------------------------------------- #
# Sturm-count bisection on the Golub-Kahan tridiagonal
# --------------------------------------------------------------------- #
def _sturm_counts(a2: np.ndarray, xs: np.ndarray) -> np.ndarray:
    """Eigenvalues of the zero-diagonal TGK tridiagonal below each ``x``.

    ``a2`` holds the squared offdiagonals ``[d1^2, e1^2, d2^2, ...]``
    (length ``2n-1``); ``xs`` is a vector of positive shifts.  Uses the
    LDL^T pivot recurrence ``q <- -x - a^2 / q`` and counts negative
    pivots, advancing all shifts in lock-step (vectorized across ``xs``).
    """
    xs = np.asarray(xs, dtype=np.float64)
    tiny = np.finfo(np.float64).tiny
    q = -xs.copy()
    count = (q < 0.0).astype(np.int64)
    for a in a2:
        q = np.where(q == 0.0, -tiny, q)
        q = -xs - a / q
        count += q < 0.0
    return count


def bisect(
    d: np.ndarray,
    e: np.ndarray,
    maxiter: int = 90,
    rel_tol: float = 4.0 * _EPS,
) -> np.ndarray:
    """Singular values of ``bidiag(d, e)`` by vectorized Sturm bisection.

    All ``n`` values converge simultaneously: each bisection round performs
    one batched Sturm-count pass over the ``2n-1`` offdiagonals of the
    Golub-Kahan tridiagonal.  Accuracy is absolute at ``O(eps * sigma_max)``
    (like the normal-equations bound), which matches the paper's reported
    relative-Frobenius accuracy regime.
    """
    d = np.asarray(d, dtype=np.float64)
    e = np.asarray(e, dtype=np.float64)
    n = d.shape[0]
    if n == 0:
        return np.zeros(0)
    if e.shape[0] != n - 1:
        raise ValueError(f"superdiagonal length {e.shape[0]} != n-1 = {n - 1}")
    if n == 1:
        return np.abs(d)

    a = np.empty(2 * n - 1, dtype=np.float64)
    a[0::2] = d
    a[1::2] = e
    aa = np.abs(a)
    if aa.max() == 0.0:
        return np.zeros(n)
    # Gershgorin bound for the zero-diagonal tridiagonal
    left = np.concatenate(([0.0], aa))
    right = np.concatenate((aa, [0.0]))
    ub = float((left + right).max()) * (1.0 + 16.0 * _EPS) + np.finfo(np.float64).tiny

    a2 = a * a
    targets = np.arange(n)  # want the k-th smallest singular value
    lo = np.zeros(n)
    hi = np.full(n, ub)
    for _ in range(maxiter):
        mid = 0.5 * (lo + hi)
        cnt = _sturm_counts(a2, mid) - n  # number of sigma < mid
        too_high = cnt > targets
        hi = np.where(too_high, mid, hi)
        lo = np.where(too_high, lo, mid)
        if np.all(hi - lo <= rel_tol * np.maximum(hi, ub * _EPS)):
            break
    out = 0.5 * (lo + hi)
    out.sort()
    return out[::-1].copy()


# --------------------------------------------------------------------- #
# dispatcher
# --------------------------------------------------------------------- #
#: Block size above which ``auto`` switches from QR iteration to bisection.
AUTO_BISECT_THRESHOLD = 512


def svdvals_bidiag(
    d: np.ndarray,
    e: np.ndarray,
    method: str = "auto",
) -> np.ndarray:
    """Singular values of the upper bidiagonal matrix ``bidiag(d, e)``.

    ``method`` is one of ``"auto"``, ``"gk"`` (Golub-Kahan QR iteration),
    ``"bisect"`` or ``"lapack"`` (SciPy oracle, used by baselines/tests).
    """
    n = np.asarray(d).shape[0]
    if method == "auto":
        method = "gk" if n <= AUTO_BISECT_THRESHOLD else "bisect"
    if method == "gk":
        return golub_kahan(d, e)
    if method == "bisect":
        return bisect(d, e)
    if method == "lapack":
        return _lapack_bidiag(d, e)
    raise ValueError(f"unknown bidiagonal solver {method!r}")


def _lapack_bidiag(d: np.ndarray, e: np.ndarray) -> np.ndarray:
    """SciPy/LAPACK oracle: divide & conquer on the bidiagonal matrix."""
    import scipy.linalg as sla

    d = np.asarray(d, dtype=np.float64)
    e = np.asarray(e, dtype=np.float64)
    n = d.shape[0]
    if n == 0:
        return np.zeros(0)
    try:  # pragma: no cover - depends on SciPy build
        dbdsdc = sla.lapack.get_lapack_funcs("bdsdc", dtype=np.float64)
        dd, ee, _, _, _, _, info = dbdsdc(d, np.concatenate((e, [0.0])), compq=0)
        if info == 0:
            out = np.abs(np.asarray(dd, dtype=np.float64))
            out.sort()
            return out[::-1].copy()
    except Exception:
        pass
    B = np.diag(d)
    if n > 1:
        B += np.diag(e, 1)
    return np.asarray(sla.svdvals(B), dtype=np.float64)
