"""Symmetric eigensolver on the shared launch-graph IR.

The paper's pipeline reduces a dense matrix to bidiagonal form and solves
for singular values; a symmetric eigenproblem rides the *same* two-stage
reduction because for a symmetric positive definite matrix the singular
values **are** the eigenvalues.  The driver therefore shifts the input by
an exact power of two ``c`` with ``c >= 2 * ||A||`` so that
``M = A + c I`` is positive definite and well conditioned
(``lambda(M) in [c/2, 3c/2]``), runs the unmodified dense -> band ->
bidiagonal reduction on ``M``, and finishes with a tridiagonal solve on
the Gram matrix ``T = B^T B`` (Sturm-count bisection) instead of the
bidiagonal SVD.  Eigenvalues of ``A`` are recovered exactly as
``sigma(M) - c`` - the shift is a power of two, so no rounding is
reintroduced.

Everything upstream of the final node is byte-for-byte the SVD pipeline:
:func:`emit_eigh_graph` is :func:`~repro.core.svd.emit_svd_graph` with the
tail ``bdsqr_cpu`` launch swapped for ``steig_cpu``, and
:func:`bind_eigh_table` patches the bound SVD table the same way.  The
workload composes with every graph axis (streams, multi-GPU partition,
out-of-core rewrite) for free.
"""

from __future__ import annotations

import math

from dataclasses import replace
from typing import Optional, Tuple, Union

import numpy as np

from ..config import SolveConfig
from ..errors import ShapeError
from ..sim.graph import LaunchGraph, LaunchNode, NumericExecutor
from ..sim.table import NodeTable, bound_structure
from ..sim.tracing import Stage
from .svd import SVDInfo, _rescale_factor, bind_svd_table, emit_svd_graph
from .tiling import pad_to_tiles

__all__ = [
    "bind_eigh_table",
    "eigh_tridiagonal",
    "emit_eigh_graph",
    "shift_for",
    "steig_values",
]


def eigh_tridiagonal(alpha: np.ndarray, beta: np.ndarray) -> np.ndarray:
    """Eigenvalues of a symmetric tridiagonal matrix, ascending.

    Sturm-count bisection on the shifted LDL^T recurrence
    ``q_i = (alpha_i - x) - beta_{i-1}^2 / q_{i-1}``: the number of
    negative ``q_i`` counts the eigenvalues below ``x`` (Sturm sequence
    property), so each eigenvalue is located independently by bisection
    inside the Gershgorin interval.  All ``n`` bisections advance together
    (one vectorized count per iteration), converging to roughly machine
    precision relative to the spectral bound.

    ``alpha`` is the diagonal (length ``n``), ``beta`` the off-diagonal
    (length ``n - 1``).
    """
    alpha = np.asarray(alpha, dtype=np.float64)
    beta = np.asarray(beta, dtype=np.float64)
    n = alpha.size
    if beta.shape != (max(n - 1, 0),):
        raise ShapeError(
            f"off-diagonal must have length n - 1 = {n - 1}, got "
            f"{beta.shape}"
        )
    if n == 0:
        return np.empty(0, dtype=np.float64)
    if n == 1:
        return alpha.copy()
    beta2 = beta * beta
    tiny = np.finfo(np.float64).tiny

    def count_below(x: np.ndarray) -> np.ndarray:
        q = alpha[0] - x
        c = (q < 0.0).astype(np.int64)
        for i in range(1, n):
            denom = np.where(np.abs(q) < tiny, np.copysign(tiny, q + tiny), q)
            q = (alpha[i] - x) - beta2[i - 1] / denom
            c += q < 0.0
        return c

    radius = np.zeros(n, dtype=np.float64)
    radius[:-1] += np.abs(beta)
    radius[1:] += np.abs(beta)
    bound = max(float(np.max(np.abs(alpha) + radius)), tiny)
    lo = np.full(n, float(np.min(alpha - radius)) - tiny, dtype=np.float64)
    hi = np.full(n, float(np.max(alpha + radius)) + tiny, dtype=np.float64)
    tol = 2.0 * np.finfo(np.float64).eps * bound
    # Gershgorin width halves per iteration; cap well past fp64 exhaustion
    for _ in range(128):
        if float(np.max(hi - lo)) <= tol:
            break
        mid = 0.5 * (lo + hi)
        c = count_below(mid)
        k = np.arange(n)
        above = c > k  # more than k eigenvalues below mid -> lambda_k < mid
        hi = np.where(above, mid, hi)
        lo = np.where(above, lo, mid)
    return 0.5 * (lo + hi)


def steig_values(d: np.ndarray, e: np.ndarray) -> np.ndarray:
    """Singular values of an upper bidiagonal ``B`` via its Gram matrix.

    The ``steig_cpu`` tail of the eigensolver pipeline: forms the
    symmetric tridiagonal ``T = B^T B`` (diagonal ``d_i^2 + e_{i-1}^2``,
    off-diagonal ``d_i e_i``) and returns ``sqrt`` of its eigenvalues in
    descending order.  For the shifted eigensolver input the pipeline
    guarantees ``sigma(B) >= c/2``, far from the underflow region where
    forming the Gram matrix would lose accuracy.
    """
    d = np.asarray(d, dtype=np.float64)
    e = np.asarray(e, dtype=np.float64)
    n = d.size
    alpha = d * d
    if n > 1:
        alpha = alpha.copy()
        alpha[1:] += e[: n - 1] * e[: n - 1]
        beta = d[: n - 1] * e[: n - 1]
    else:
        beta = np.empty(0, dtype=np.float64)
    mu = eigh_tridiagonal(alpha, beta)
    return np.sqrt(np.clip(mu, 0.0, None))[::-1].copy()


def emit_eigh_graph(
    n: int, config: SolveConfig, streams: int = 1, counted: bool = False
) -> LaunchGraph:
    """Emit the symmetric-eigensolver launch graph for an ``n x n`` solve.

    Identical to :func:`~repro.core.svd.emit_svd_graph` - the same
    stage-1 sweeps and stage-2 chase, priced and partitioned by the same
    machinery - except the final node runs the ``steig_cpu`` tridiagonal
    finish instead of ``bdsqr_cpu``.  The graph kind stays ``"square"``,
    so the multi-GPU partitioner, the out-of-core rewriter and the stream
    scheduler all compose without knowing the workload changed.
    """
    graph = emit_svd_graph(n, config, streams=streams, counted=counted)
    tail = graph.nodes[-1]
    if tail.kind != "bdsqr_cpu":  # pragma: no cover - emitter invariant
        raise ValueError(f"unexpected SVD tail node {tail.kind!r}")
    graph.nodes[-1] = LaunchNode(
        "steig_cpu", Stage.SOLVE, tail.key, tail.meta, tail.deps,
        primary=tail.primary, count=tail.count,
    )
    return graph


def _patch_table(table: NodeTable) -> NodeTable:
    """Swap the SVD table's ``bdsqr_cpu`` tail for ``steig_cpu``."""
    kinds = tuple(
        "steig_cpu" if k == "bdsqr_cpu" else k for k in table.kinds
    )
    return replace(table, kinds=kinds)


def bind_eigh_table(n: int, config: SolveConfig) -> NodeTable:
    """Bind the eigensolver sweep structure to ``(n, config)`` as a table.

    The eigensolver's launch schedule differs from the SVD's only in the
    name of the final CPU launch (the ``("solve", n)`` cost key is
    shared), so the bound table is the memoized SVD table with the kind
    string patched - node for node equal to
    ``emit_eigh_graph(n, config, counted=True).table()``.
    """
    return bound_structure(
        ("eigh_table", config, n),
        lambda: _patch_table(bind_svd_table(n, config)),
    )


def shift_for(A: np.ndarray) -> float:
    """Exact power-of-two shift making ``A + c I`` positive definite.

    ``c`` is the smallest power of two at least twice the Gershgorin
    bound ``||A||_inf`` (which dominates the spectral radius), so
    ``lambda(A + c I)`` lies in ``[c/2, 3c/2]``: strictly positive and
    within one binade, i.e. well conditioned for the singular-value
    pipeline.  The zero matrix gets ``c = 1``.
    """
    rho = float(np.max(np.sum(np.abs(np.asarray(A, dtype=np.float64)), axis=1)))
    if rho == 0.0 or not math.isfinite(rho):
        return 1.0
    return 2.0 ** math.ceil(math.log2(2.0 * rho))


def eigh_resolved(
    A: np.ndarray,
    config: SolveConfig,
    return_info: bool = False,
    cost_cache: Optional[dict] = None,
    graph: Optional[LaunchGraph] = None,
) -> Union[np.ndarray, Tuple[np.ndarray, SVDInfo]]:
    """Eigenvalues of a symmetric matrix against a resolved config.

    The shared code path behind :meth:`repro.Solver.eigh`: validates
    symmetry, applies the exact power-of-two shift (:func:`shift_for`),
    replays the eigensolver graph on ``M = A + c I`` and returns
    ``sigma(M) - c`` in descending order.  ``cost_cache`` and ``graph``
    allow a caller to amortize setup across repeated solves, mirroring
    :func:`~repro.core.svd.svdvals_resolved`.
    """
    A = np.asarray(A)
    if A.ndim != 2 or A.shape[0] != A.shape[1]:
        raise ShapeError(
            f"eigh expects a square symmetric matrix, got shape {A.shape}"
        )
    n = A.shape[0]
    if n == 0:
        raise ShapeError("empty matrix")
    if config.check_finite and not np.all(np.isfinite(A)):
        raise ShapeError("input matrix contains NaN or Inf entries")
    A64 = np.asarray(A, dtype=np.float64)
    scale_ref = float(np.max(np.abs(A64))) if A64.size else 0.0
    if not np.allclose(
        A64, A64.T, rtol=0.0, atol=64.0 * np.finfo(np.float64).eps * scale_ref
    ):
        raise ShapeError(
            "eigh expects a symmetric matrix; symmetrize the input "
            "(A + A.T) / 2 first"
        )

    be = config.backend
    storage = config.storage_for(A.dtype)
    session = config.session(storage, cost_cache=cost_cache)
    be.check_capacity(n, storage)
    ts = session.params.tilesize

    c = shift_for(A64)
    M = A64 + c * np.eye(n)
    scale = _rescale_factor(M, storage) if config.rescale else 1.0
    if scale != 1.0:
        M = M * scale

    W, _ = pad_to_tiles(np.asarray(M, dtype=storage.dtype), ts)
    compute_dtype = (
        session.compute.dtype if session.compute is not storage else None
    )
    if graph is None:
        graph = emit_eigh_graph(n, config)
    elif (
        graph.kind != "square" or graph.streams != 1 or graph.counted
        or graph.n != n or graph.ts != ts or graph.fused != config.fused
        or graph.nodes[-1].kind != "steig_cpu"
    ):
        raise ShapeError(
            f"launch graph ({graph.kind}, n={graph.n}, ts={graph.ts}, "
            f"fused={graph.fused}, streams={graph.streams}, "
            f"counted={graph.counted}) does not match the replayable "
            f"eigensolve (n={n}, ts={ts}, fused={config.fused})"
        )
    ex = NumericExecutor(
        W, ts, storage.eps, session=session, compute_dtype=compute_dtype,
        storage=storage, stage3=config.stage3,
    )
    ex.run(graph)

    # sigma(M) >= c/2 > 0, so the padding's zero singular values sort
    # strictly after the n true values
    vals = ex.values[:n].copy()
    if scale != 1.0:
        vals /= scale
    vals -= c

    if not return_info:
        return vals
    tracer = session.tracer
    info = SVDInfo(
        n=n,
        backend=be.name,
        precision=storage.name_lower,
        params=session.params,
        fused=config.fused,
        simulated_seconds=tracer.total_seconds,
        stage_seconds=tracer.stage_breakdown(),
        launch_counts=tracer.kernel_counts(),
        flops=tracer.total_flops,
        bytes=tracer.total_bytes,
    )
    return vals, info
