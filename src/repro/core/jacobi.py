"""One-sided Jacobi singular values: the classical alternative algorithm.

Section 3 of the paper lists Jacobi-based methods as one of the three
standard approaches to dense SVD (alongside divide & conquer and the
QR-based method it implements).  This module provides a from-scratch
one-sided Jacobi solver, used as

* an *independent numerical cross-check* for the two-stage pipeline (the
  two algorithms share no code, so agreement is strong evidence), and
* a high-relative-accuracy reference: one-sided Jacobi computes small
  singular values to high relative accuracy, which QR-based methods only
  achieve in the absolute sense.

Algorithm: repeatedly sweep over all column pairs ``(p, q)``, applying the
right Givens rotation that orthogonalizes the two columns (diagonalizing
the 2x2 Gram block), until every pair is numerically orthogonal.  The
singular values are the final column norms.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from ..errors import ConvergenceError, ShapeError

__all__ = ["jacobi_svdvals"]


def jacobi_svdvals_resolved(A: np.ndarray, config) -> np.ndarray:
    """Jacobi-driver implementation against a resolved config.

    The code path behind :meth:`repro.Solver.solve` when the handle was
    constructed with ``method="jacobi"``; the algorithm has no
    backend/precision axes, so only ``jacobi_tol`` and
    ``jacobi_max_sweeps`` apply.
    """
    return _jacobi_svdvals_impl(
        A, tol=config.jacobi_tol, max_sweeps=config.jacobi_max_sweeps
    )


def jacobi_svdvals(
    A: np.ndarray,
    tol: Optional[float] = None,
    max_sweeps: int = 60,
) -> np.ndarray:
    """Singular values of a real matrix by one-sided Jacobi iteration.

    Thin shim over :class:`repro.Solver` with ``method="jacobi"``.

    Parameters
    ----------
    A:
        ``m x n`` real matrix with ``m >= n`` preferred (transposed
        internally otherwise).
    tol:
        Pair-orthogonality threshold relative to the column norms;
        defaults to ``m * eps``.
    max_sweeps:
        Sweep budget before :class:`~repro.errors.ConvergenceError`.

    Returns
    -------
    ``min(m, n)`` singular values in descending order (float64).
    """
    from ..solver import Solver

    solver = Solver(method="jacobi", jacobi_tol=tol, jacobi_max_sweeps=max_sweeps)
    return solver.solve(A)


def _jacobi_svdvals_impl(
    A: np.ndarray,
    tol: Optional[float] = None,
    max_sweeps: int = 60,
) -> np.ndarray:
    """The one-sided Jacobi iteration itself (no configuration axes)."""
    A = np.asarray(A, dtype=np.float64)
    if A.ndim != 2:
        raise ShapeError(f"expected a 2-D matrix, got shape {A.shape}")
    if A.size == 0:
        raise ShapeError("empty matrix")
    if A.shape[0] < A.shape[1]:
        A = A.T
    W = np.array(A, copy=True, order="F")  # columns contiguous
    m, n = W.shape
    if tol is None:
        tol = m * float(np.finfo(np.float64).eps)

    for _ in range(max_sweeps):
        rotated = False
        # cache column square norms, updated incrementally per rotation
        norms2 = np.einsum("ij,ij->j", W, W)
        for p in range(n - 1):
            for q in range(p + 1, n):
                app = norms2[p]
                aqq = norms2[q]
                if app == 0.0 and aqq == 0.0:
                    continue
                apq = float(W[:, p] @ W[:, q])
                if abs(apq) <= tol * math.sqrt(app * aqq):
                    continue
                rotated = True
                # Jacobi rotation diagonalizing [[app, apq], [apq, aqq]]
                zeta = (aqq - app) / (2.0 * apq)
                t = math.copysign(1.0, zeta) / (
                    abs(zeta) + math.sqrt(1.0 + zeta * zeta)
                )
                c = 1.0 / math.sqrt(1.0 + t * t)
                s = c * t
                wp = W[:, p].copy()
                W[:, p] = c * wp - s * W[:, q]
                W[:, q] = s * wp + c * W[:, q]
                norms2[p] = app - t * apq
                norms2[q] = aqq + t * apq
        if not rotated:
            out = np.sqrt(np.einsum("ij,ij->j", W, W))
            out.sort()
            return out[::-1].copy()
    raise ConvergenceError(
        f"one-sided Jacobi did not converge in {max_sweeps} sweeps"
    )
