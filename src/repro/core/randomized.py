"""Randomized low-rank SVD on the shared launch-graph IR.

Halko-Martinsson-Tropp randomized range finding, composed entirely from
kernels the reproduction already prices: a seeded Gaussian sketch
compresses the ``m x n`` input to ``l = rank + oversample`` columns, the
existing tall-QR chain orthogonalizes the sample, and the existing square
pipeline finishes on an ``l x l`` triangular factor.  The tiled tall-QR
discards its reflector tails after the reduction (only ``R`` survives),
so the classical ``B = Q^T A`` projection is rewritten into the two-pass
form that needs no ``Q``:

1. ``Y = A @ Omega``                    (GEMM, ``m x l`` sample)
2. ``Y = Q R1``                          (tall-QR chain; keeps ``R1``)
3. ``Z = A^T @ Y``                      (GEMM, ``n x l``)
4. ``T = Z R1^{-1} = A^T Q``            (TRSM against ``R1``)
5. ``T = Q2 R2``                         (tall-QR chain; keeps ``R2``)
6. ``sigma(R2) = sigma(T) = sigma(Q^T A)``  (square pipeline at ``l``)

The first ``rank`` values of step 6 are the randomized singular-value
estimates.  Every step is a traced launch (``launch_gemm`` /
``launch_trsm`` / the tall-QR and square-pipeline kernels), and
:func:`emit_lowrank_graph` emits the same schedule declaratively so the
analytic pricers, the multi-GPU partitioner, the out-of-core rewriter and
the event simulator all see the workload through the one shared IR.  The
composed graph is analytic-only: numeric execution runs through
:func:`svd_lowrank_resolved`, which replays the tall-QR and square
sub-graphs bitwise.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

from ..config import SolveConfig
from ..errors import InvalidParamsError, ShapeError
from ..matrices.generator import gaussian_sketch
from ..sim.graph import LaunchGraph, LaunchNode
from ..sim.table import NodeTable, bound_structure
from ..sim.tracing import Stage
from .rectangular import _emit_tallqr_nodes, qr_reduce_tall
from .svd import SVDInfo, emit_svd_graph, svdvals_resolved
from .tiling import ntiles

__all__ = [
    "bind_lowrank_table",
    "emit_lowrank_graph",
    "lowrank_reference",
    "sketch_width",
]

#: Sweep tags of the sketch GEMMs and the TRSM, far above any tile-sweep
#: index so the partitioned pricer's per-sweep device grouping never
#: aliases them with the tall-QR or square-pipeline sweeps.
_SWEEP_GEMM1 = 1 << 30
_SWEEP_GEMM2 = (1 << 30) + 1
_SWEEP_TRSM = (1 << 30) + 2


def check_rank(rank: int, m: int, n: int) -> None:
    """Validate the ``rank`` axis of a low-rank solve, naming it on error."""
    if rank < 1:
        raise InvalidParamsError(f"rank must be at least 1, got rank={rank}")
    if rank > min(m, n):
        raise InvalidParamsError(
            f"rank={rank} exceeds min(m, n)={min(m, n)} for a "
            f"{m}x{n} input; request at most min(m, n) values"
        )


def sketch_width(rank: int, m: int, n: int, config: SolveConfig) -> int:
    """Sample width ``l = min(m, n, rank + oversample)`` of a solve."""
    check_rank(rank, m, n)
    return min(m, n, rank + config.oversample)


def lowrank_reference(A: np.ndarray, rank: int) -> np.ndarray:
    """Exact truncated singular values (the NumPy reference oracle).

    The first ``rank`` values of ``np.linalg.svd`` - the quantity the
    randomized estimates approach as ``oversample`` grows, and the lower
    bound they can never exceed (the sketch projects onto a subspace).
    """
    A = np.asarray(A, dtype=np.float64)
    check_rank(rank, *A.shape)
    return np.linalg.svd(A, compute_uv=False)[:rank]


def emit_lowrank_graph(
    m: int,
    n: int,
    rank: int,
    config: SolveConfig,
    streams: int = 1,
    counted: bool = False,
) -> LaunchGraph:
    """Emit the randomized-SVD launch graph for an ``m x n``, rank-``r`` solve.

    Sketch GEMM -> tall-QR chain -> projection GEMM -> TRSM -> tall-QR
    chain -> square pipeline at the sample width ``l``, one node per
    launch of :func:`svd_lowrank_resolved`, in its replay order.
    ``streams`` / ``counted`` forward to the embedded square pipeline
    (both analytic-only, like the square graph variants they produce).
    The graph kind is ``"lowrank"``; it prices, partitions
    (:func:`~repro.sim.partition.partition_graph` shards the two GEMMs
    row-wise with explicit ``sketch_gather`` comm) and rewrites
    out-of-core (the GEMMs stream the host-resident ``A`` through the
    device window), but numeric replay runs through the composed driver,
    not :class:`~repro.sim.graph.NumericExecutor`.
    """
    if m < 1 or n < 1:
        raise ShapeError(f"matrix shape must be positive, got ({m}, {n})")
    l = sketch_width(rank, m, n, config)
    ts = config.params.tilesize
    mt, nt, lt = ntiles(m, ts), ntiles(n, ts), ntiles(l, ts)
    nodes = []

    def add(node: LaunchNode) -> int:
        nodes.append(node)
        return len(nodes) - 1

    def splice(sub, root_deps: Tuple[int, ...]) -> int:
        """Append a sub-graph's nodes, rooting its sources on ``root_deps``."""
        off = len(nodes)
        for node in sub:
            deps = (
                tuple(d + off for d in node.deps) if node.deps else root_deps
            )
            add(
                LaunchNode(
                    node.kind, node.stage, node.key, node.meta, deps,
                    primary=node.primary, count=node.count,
                )
            )
        return len(nodes) - 1

    # Y = A @ Omega: the m-row axis (key slot 1) streams / shards over A
    g1 = add(
        LaunchNode(
            "gemm", Stage.UPDATE, ("gemm", m, n, l),
            ("Arows", 1, _SWEEP_GEMM1),
        )
    )
    tail1 = splice(_emit_tallqr_nodes(mt, lt, ts), (g1,))
    # Z = A^T @ Y: the shared k axis (key slot 2) streams / shards over A
    g2 = add(
        LaunchNode(
            "gemm", Stage.UPDATE, ("gemm", n, m, l),
            ("Arows", 2, _SWEEP_GEMM2), (g1,),
        )
    )
    tr = add(
        LaunchNode(
            "trsm", Stage.UPDATE, ("trsm", n, l), ("trsm", _SWEEP_TRSM),
            (g2, tail1),
        )
    )
    tail2 = splice(_emit_tallqr_nodes(nt, lt, ts), (tr,))
    splice(
        emit_svd_graph(l, config, streams=streams, counted=counted).nodes,
        (tail2,),
    )
    return LaunchGraph(
        nodes=nodes, kind="lowrank", n=n, npad=nt * ts, ts=ts, nbt=nt,
        fused=config.fused, streams=streams, mpad=mt * ts, counted=counted,
    )


def bind_lowrank_table(
    m: int, n: int, rank: int, config: SolveConfig
) -> NodeTable:
    """Bind the low-rank schedule to ``(m, n, rank, config)`` as a table.

    Memoized process-wide like the other binders; node for node equal to
    ``emit_lowrank_graph(m, n, rank, config, counted=True).table()``.
    """
    return bound_structure(
        ("lowrank_table", config, m, n, rank),
        lambda: emit_lowrank_graph(m, n, rank, config, counted=True).table(),
    )


def svd_lowrank_resolved(
    A: np.ndarray,
    rank: int,
    config: SolveConfig,
    seed: int = 0,
    return_info: bool = False,
    cost_cache: Optional[dict] = None,
) -> Union[np.ndarray, Tuple[np.ndarray, SVDInfo]]:
    """Randomized top-``rank`` singular values against a resolved config.

    The shared code path behind :meth:`repro.Solver.svd_lowrank`: the
    composed driver replaying the sketch GEMM, tall-QR, projection,
    TRSM and square-pipeline stages of :func:`emit_lowrank_graph` in
    order, every launch traced.  ``seed`` keys the Gaussian sketch
    (bitwise reproducible per ``(seed, shape, precision)``); wide inputs
    run on the lazy transpose (singular values are transpose-invariant).
    The TRSM-priced solve against ``R1`` runs in float64 on the CPU
    through a storage-precision-thresholded pseudo-inverse (rank
    deficiency in the sample must truncate, not amplify), with the
    result rounded once to storage precision, matching the stage-3
    convention of the square pipeline.
    """
    A = np.asarray(A)
    if A.ndim != 2:
        raise ShapeError(f"expected a 2-D matrix, got shape {A.shape}")
    if min(A.shape) == 0:
        raise ShapeError("empty matrix")
    if A.shape[0] < A.shape[1]:
        return svd_lowrank_resolved(
            A.T, rank, config, seed=seed, return_info=return_info,
            cost_cache=cost_cache,
        )
    m, n = A.shape
    check_rank(rank, m, n)
    if config.check_finite and not np.all(np.isfinite(A)):
        raise ShapeError("input matrix contains NaN or Inf entries")

    be = config.backend
    storage = config.storage_for(A.dtype)
    session = config.session(storage, cost_cache=cost_cache)
    be.check_capacity(int(np.sqrt(m * n)) + 1, storage)
    ts = session.params.tilesize
    l = sketch_width(rank, m, n, config)
    lpad = ntiles(l, ts) * ts
    compute_dtype = (
        session.compute.dtype if session.compute is not storage else None
    )

    As = np.asarray(A, dtype=storage.dtype)
    Omega = gaussian_sketch(n, l, seed=seed, precision=storage)
    Y = np.asarray(As @ Omega, dtype=storage.dtype)
    session.launch_gemm(m, n, l)

    Wy = np.zeros((ntiles(m, ts) * ts, lpad), dtype=storage.dtype)
    Wy[:m, :l] = Y
    R1 = qr_reduce_tall(Wy, ts, storage.eps, session, compute_dtype)[:l, :l]

    Z = np.asarray(As.T @ Y, dtype=storage.dtype)
    session.launch_gemm(n, m, l)

    # T = Z R1^+ (= A^T Q): the float64 CPU solve runs through the
    # pseudo-inverse so a rank-deficient sample (Y loses columns when
    # rank(A) < l) zeroes its null directions instead of amplifying
    # them; the cutoff sits at the *storage* precision's noise floor
    rcond = max(m, n) * float(storage.eps)
    T = (
        Z.astype(np.float64) @ np.linalg.pinv(R1.astype(np.float64), rcond)
    ).astype(storage.dtype)
    session.launch_trsm(n, l)

    Wt = np.zeros((ntiles(n, ts) * ts, lpad), dtype=storage.dtype)
    Wt[:n, :l] = T
    R2 = qr_reduce_tall(Wt, ts, storage.eps, session, compute_dtype)[:l, :l]

    # pin the inferred precision so the square solve of R2 cannot re-infer
    square_config = (
        config if config.precision is not None
        else config.with_(precision=storage)
    )
    out = svdvals_resolved(
        R2, square_config, return_info=return_info, cost_cache=cost_cache
    )
    if not return_info:
        return out[:rank]
    vals, info = out
    pre = session.tracer
    info.simulated_seconds += pre.total_seconds
    for stage, seconds in pre.stage_breakdown().items():
        info.stage_seconds[stage] = (
            info.stage_seconds.get(stage, 0.0) + seconds
        )
    for kernel, count in pre.kernel_counts().items():
        info.launch_counts[kernel] = info.launch_counts.get(kernel, 0) + count
    info.flops += pre.total_flops
    info.bytes += pre.total_bytes
    return vals[:rank], info
