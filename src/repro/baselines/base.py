"""Baseline-library interface.

The paper benchmarks against five external solvers (cuSOLVER, rocSOLVER,
oneMKL, MAGMA, SLATE).  None of them can run here (proprietary binaries,
vendor GPUs), so each baseline is reproduced as

* an **analytic performance model** built from the library's documented
  architecture (GPU-resident two-stage, hybrid one-stage ``gebrd``,
  tile-scheduled runtime, ...) against the same Table 2 device specs the
  unified implementation is priced on, and
* a **numeric oracle** (LAPACK via SciPy, cast to the requested storage
  precision) used where the paper compares accuracy (Table 1's cuSOLVER
  column).

Vendor constraints from the paper are enforced: cuSOLVER / rocSOLVER stop
at 16384 (the 64-bit addressing gap cited in section 4.1), each library
only supports its vendors, and none supports FP16 (the paper's unified
kernels are the first).
"""

from __future__ import annotations

import abc
from typing import Optional, Tuple

import numpy as np

from ..backends.backend import Backend, BackendLike, resolve_backend
from ..errors import CapacityError, UnsupportedBackendError, UnsupportedPrecisionError
from ..precision import Precision, PrecisionLike, resolve_precision

__all__ = ["BaselineLibrary", "svd_flops"]


def svd_flops(n: int) -> float:
    """Floating-point operations of a two-sided reduction to condensed
    form for singular values only: ``(8/3) n^3``."""
    return (8.0 / 3.0) * float(n) ** 3


class BaselineLibrary(abc.ABC):
    """One simulated comparator library."""

    #: Short name used in reports (e.g. ``"cusolver"``).
    name: str = "baseline"
    #: Vendors the real library supports (empty = all).
    vendors: Tuple[str, ...] = ()
    #: Largest supported matrix order (None = unbounded); cuSOLVER and
    #: rocSOLVER cap at 16384 per the paper's 64-bit addressing note.
    max_n: Optional[int] = None
    #: Storage precisions the real library implements.
    precisions: Tuple[Precision, ...] = (Precision.FP32, Precision.FP64)

    # ------------------------------------------------------------------ #
    def check(self, n: int, backend: BackendLike, precision: PrecisionLike) -> Tuple[Backend, Precision]:
        """Validate a (size, device, precision) request for this library."""
        be = resolve_backend(backend)
        prec = resolve_precision(precision)
        if self.vendors and be.vendor not in self.vendors:
            raise UnsupportedBackendError(
                f"{self.name} does not support vendor {be.vendor!r}"
            )
        if prec not in self.precisions:
            raise UnsupportedPrecisionError(
                f"{self.name} does not implement {prec.name} "
                "(the paper's unified kernels are the first GPU FP16 SVD)"
            )
        if self.max_n is not None and n > self.max_n:
            raise CapacityError(
                f"{self.name} supports n <= {self.max_n} "
                "(64-bit addressing limitation cited in the paper)"
            )
        be.check_capacity(n, prec)
        return be, prec

    def supports(self, n: int, backend: BackendLike, precision: PrecisionLike) -> bool:
        """True when :meth:`check` would pass."""
        try:
            self.check(n, backend, precision)
            return True
        except Exception:
            return False

    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def predict_time(
        self, n: int, backend: BackendLike, precision: PrecisionLike
    ) -> float:
        """Modelled runtime in seconds for all singular values of ``n x n``."""

    def svdvals(self, A: np.ndarray, precision: PrecisionLike = Precision.FP64) -> np.ndarray:
        """Numeric oracle: LAPACK singular values at the storage precision.

        The input is rounded through the storage dtype and the solve runs
        in the matching LAPACK precision (FP32 inputs use ``sgesdd``-level
        arithmetic), which is how the real libraries behave.
        """
        import scipy.linalg as sla

        prec = resolve_precision(precision)
        if prec not in self.precisions:
            raise UnsupportedPrecisionError(
                f"{self.name} does not implement {prec.name}"
            )
        work = np.asarray(A, dtype=prec.dtype)
        vals = sla.svdvals(work)
        return np.asarray(vals, dtype=np.float64)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        """Tagged baseline name."""
        return f"<baseline {self.name}>"
