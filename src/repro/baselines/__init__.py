"""Simulated comparator libraries (paper sections 4.1 / Figures 3-4)."""

from typing import Dict

from .base import BaselineLibrary, svd_flops
from .hpc import Magma, Slate
from .lapack_cpu import LapackCPU
from .vendor import CuSolver, OneMKL, RocSolver

_LIBRARIES: Dict[str, BaselineLibrary] = {
    lib.name: lib
    for lib in (CuSolver(), RocSolver(), OneMKL(), Magma(), Slate(), LapackCPU())
}


def get_baseline(name: str) -> BaselineLibrary:
    """Look up a baseline library by name (``"cusolver"``, ``"magma"``, ...)."""
    key = name.strip().lower()
    if key not in _LIBRARIES:
        raise KeyError(
            f"unknown baseline {name!r}; available: {', '.join(sorted(_LIBRARIES))}"
        )
    return _LIBRARIES[key]


def vendor_baseline_for(vendor: str) -> BaselineLibrary:
    """The vendor-native solver for a vendor string (Figure 4 pairing)."""
    mapping = {"nvidia": "cusolver", "amd": "rocsolver", "intel": "onemkl"}
    if vendor not in mapping:
        raise KeyError(f"no vendor library for {vendor!r} (Apple has none)")
    return get_baseline(mapping[vendor])


__all__ = [
    "BaselineLibrary",
    "CuSolver",
    "LapackCPU",
    "Magma",
    "OneMKL",
    "RocSolver",
    "Slate",
    "get_baseline",
    "svd_flops",
    "vendor_baseline_for",
]
