"""Vendor-library performance models: cuSOLVER, rocSOLVER, oneMKL.

Each model is an architecture sketch of the real library priced on the
Table 2 device specs:

* **cuSOLVER** (``cusolverDnXgesvd``): GPU-resident and highly tuned, with
  a compute path that saturates only near its design size and a blocked
  reduction whose memory traffic (~``0.17 n^3 sizeof``) becomes the binder
  on bandwidth-poor devices.  On the 24-SM, 272 GB/s RTX4060 that traffic
  is what lets the unified kernels win (paper Figure 4), while on H100 and
  A100 cuSOLVER stays 10-50% ahead.
* **rocSOLVER** (``rocsolver_Xgesvd``): one-stage Householder
  bidiagonalization (``gebrd``) dominated by BLAS2 trailing updates -
  bandwidth bound with ``~0.5 n^3 sizeof`` traffic - plus large fixed
  setup costs.  This is why the paper's two-stage unified kernels beat it
  at *every* size on MI250 (geometric mean 5.9x).
* **oneMKL** (``oneapi::mkl::lapack::gesvd``): a strong CPU path serves
  small sizes (it beats the under-occupied unified kernels there), while
  the GPU path's one-stage reduction is bandwidth-bound at scale - the
  paper's crossover beyond 2048 on Ponte Vecchio.

Both NVIDIA and AMD vendor solvers stop at 16384 (64-bit addressing gaps
cited in section 4.1).
"""

from __future__ import annotations

from ..backends.backend import BackendLike
from ..backends.device import Vendor
from ..precision import PrecisionLike
from .base import BaselineLibrary, svd_flops

__all__ = ["CuSolver", "RocSolver", "OneMKL"]


class CuSolver(BaselineLibrary):
    """NVIDIA cuSOLVER ``gesvd`` (singular values only) model."""

    name = "cusolver"
    vendors = (Vendor.NVIDIA,)
    max_n = 16384

    #: Achieved fraction of peak FLOPS at the design size.
    peak_eff = 0.5
    #: Saturation size on the reference (H100-class) part; smaller devices
    #: saturate proportionally earlier.  Ramp exponent below.
    n_sat_ref = 16384.0
    peak_ref_tflops = 67.0
    ramp_exp = 1.4
    #: Blocked-reduction memory traffic per element^3 (bytes/flop-ish).
    traffic = 0.17
    #: Fixed setup cost: datacenter driver vs consumer (WDDM-class) stack.
    t0_hpc = 2.0e-4
    t0_consumer = 5.0e-4

    def predict_time(self, n: int, backend: BackendLike, precision: PrecisionLike) -> float:
        """Modeled cuSOLVER ``gesvd`` time for ``n x n``."""
        be, prec = self.check(n, backend, precision)
        spec = be.device
        n_sat = self.n_sat_ref * (
            spec.peak_fp32_tflops / self.peak_ref_tflops
        ) ** 0.5
        ramp = min(1.0, (n / n_sat) ** self.ramp_exp)
        eff = self.peak_eff * max(ramp, 1e-4)
        t_compute = svd_flops(n) / (spec.peak_flops(prec.sizeof) * eff)
        t_mem = self.traffic * float(n) ** 3 * prec.sizeof / spec.bandwidth_bytes
        t0 = self.t0_hpc if spec.is_hpc else self.t0_consumer
        return t0 + max(t_compute, t_mem)


class RocSolver(BaselineLibrary):
    """AMD rocSOLVER ``gesvd`` model (one-stage ``gebrd``)."""

    name = "rocsolver"
    vendors = (Vendor.AMD,)
    max_n = 16384

    #: Fraction of the one-stage reduction streaming the trailing matrix.
    blas2_fraction = 0.5
    #: Achieved bandwidth fraction of those BLAS2 sweeps.
    mem_eff = 0.28
    #: Achieved compute efficiency of the BLAS3-ish remainder.
    peak_eff = 0.30
    #: Setup cost (workspace + many small kernels at every panel step).
    t0 = 8.0e-3

    def predict_time(self, n: int, backend: BackendLike, precision: PrecisionLike) -> float:
        """Modeled rocSOLVER ``gesvd`` time for ``n x n``."""
        be, prec = self.check(n, backend, precision)
        spec = be.device
        flops = svd_flops(n)
        t_blas2 = (
            self.blas2_fraction
            * float(n) ** 3
            * prec.sizeof
            / (spec.effective_bandwidth * self.mem_eff)
        )
        t_blas3 = (
            (1.0 - self.blas2_fraction)
            * flops
            / (spec.peak_flops(prec.sizeof) * self.peak_eff)
        )
        return self.t0 + t_blas2 + t_blas3


class OneMKL(BaselineLibrary):
    """Intel oneMKL ``gesvd`` model (hybrid CPU/GPU via DPC++)."""

    name = "onemkl"
    vendors = (Vendor.INTEL,)
    max_n = None

    #: Host LAPACK throughput for the small-size CPU path (GFLOPS).
    cpu_gflops = 60.0
    #: One-stage reduction: bandwidth-bound trailing updates.
    mem_eff = 0.30
    blas2_fraction = 0.5
    peak_eff = 0.35
    t0_cpu = 1.0e-4
    t0_gpu = 1.0e-3

    def predict_time(self, n: int, backend: BackendLike, precision: PrecisionLike) -> float:
        """Modeled oneMKL ``gesvd`` offload time for ``n x n``."""
        be, prec = self.check(n, backend, precision)
        spec = be.device
        flops = svd_flops(n)
        t_cpu = self.t0_cpu + flops / (self.cpu_gflops * 1e9)
        t_blas2 = (
            self.blas2_fraction
            * float(n) ** 3
            * prec.sizeof
            / (spec.effective_bandwidth * self.mem_eff)
        )
        t_blas3 = flops * (1.0 - self.blas2_fraction) / (
            spec.peak_flops(prec.sizeof) * self.peak_eff
        )
        t_gpu = self.t0_gpu + t_blas2 + t_blas3
        # the library dispatches whichever path it deems faster
        return min(t_cpu, t_gpu)
