"""HPC-library performance models: MAGMA and SLATE.

* **MAGMA** (``testing_Xgesvd``, 1 GPU, no vectors): hybrid CPU-GPU
  one-stage bidiagonalization - panels factorized on the CPU while the GPU
  applies trailing updates, with PCIe panel traffic each step.  Strong at
  small sizes (CPU panels beat an under-occupied GPU), but the
  bandwidth-bound BLAS2 half and the host panel chain dominate at scale -
  the paper's Figure 3 crossover near 1024-2048 and multi-x unified wins
  at 32k.
* **SLATE** (``svd`` tester, target/origin = device): tile-based
  ScaLAPACK successor whose per-tile runtime scheduling and CPU-resident
  panel chain price in at every tile step; designed for multi-node HPC
  systems, it degrades sharply on consumer hardware (the paper measures a
  geometric-mean 280x deficit on the RTX4060 laptop).
"""

from __future__ import annotations

from ..backends.backend import BackendLike
from ..backends.device import Vendor
from ..precision import PrecisionLike
from .base import BaselineLibrary, svd_flops

__all__ = ["Magma", "Slate"]


class Magma(BaselineLibrary):
    """MAGMA hybrid ``gesvd`` (singular values only) model."""

    name = "magma"
    vendors = (Vendor.NVIDIA, Vendor.AMD, Vendor.INTEL)
    max_n = None

    t0 = 2.0e-4  # workspace setup + CPU/GPU handshake
    cpu_gflops = 55.0  # host panel factorization rate
    panel_nb = 128  # MAGMA's bidiagonalization block size
    blas2_fraction = 0.5  # one-stage gebrd: half the flops are BLAS2
    mem_eff = 0.60
    peak_eff = 0.45
    pcie_gbs = 25.0

    def predict_time(self, n: int, backend: BackendLike, precision: PrecisionLike) -> float:
        """Modeled MAGMA one-stage ``gesdd`` time for ``n x n``."""
        be, prec = self.check(n, backend, precision)
        spec = be.device
        flops = svd_flops(n)
        # CPU panels: ~ 2 n^2 nb flops in total
        t_panel = 2.0 * float(n) ** 2 * self.panel_nb / (self.cpu_gflops * 1e9)
        # PCIe: each panel round-trips, ~ 2 n^2 elements in total
        t_pcie = 2.0 * float(n) ** 2 * prec.sizeof / (self.pcie_gbs * 1e9)
        t_blas2 = (
            self.blas2_fraction
            * float(n) ** 3
            * prec.sizeof
            / (spec.effective_bandwidth * self.mem_eff)
        )
        t_blas3 = flops * (1.0 - self.blas2_fraction) / (
            spec.peak_flops(prec.sizeof) * self.peak_eff
        )
        return self.t0 + t_panel + t_pcie + t_blas2 + t_blas3


class Slate(BaselineLibrary):
    """SLATE ``svd`` (two-stage, device target) model."""

    name = "slate"
    vendors = (Vendor.NVIDIA, Vendor.AMD, Vendor.INTEL)
    max_n = None

    t0 = 5.0e-3  # runtime/context setup
    tile_nb = 256  # SLATE default tile size
    sched_overhead_s = 3.0e-5  # per-tile-task scheduling cost
    cpu_gflops = 55.0
    peak_eff = 0.18  # generic batched kernels, no architecture tuning
    mem_eff = 0.45
    #: multiplicative penalty on non-HPC systems (single consumer GPU +
    #: laptop CPU: the configuration the paper measures as ~280x slower)
    consumer_penalty = 120.0

    def predict_time(self, n: int, backend: BackendLike, precision: PrecisionLike) -> float:
        """Modeled SLATE tiled-SVD time for ``n x n``."""
        be, prec = self.check(n, backend, precision)
        spec = be.device
        ntiles = max(1, -(-n // self.tile_nb))
        flops = svd_flops(n)
        # every (k, tile) pair of the two-stage reduction is a scheduled task
        t_sched = 2.0 * ntiles * ntiles * self.sched_overhead_s
        # CPU panel chain of the first stage
        t_panel = 2.0 * float(n) ** 2 * self.tile_nb / (self.cpu_gflops * 1e9)
        t_compute = flops / (spec.peak_flops(prec.sizeof) * self.peak_eff)
        t_mem = 8.0 * float(n) ** 2 * prec.sizeof / (
            spec.effective_bandwidth * self.mem_eff
        )
        t = self.t0 + t_sched + t_panel + t_compute + t_mem
        if not spec.is_hpc:
            t *= self.consumer_penalty
        return t
