"""CPU LAPACK baseline (reference numerics and a host-only timing model).

Used as the accuracy oracle throughout the test suite and as the "CPU
library" the paper's stage 3 delegates to.  The timing model is a simple
host-throughput estimate - the paper does not benchmark CPU LAPACK, but
examples use this baseline to illustrate why GPU offload matters.
"""

from __future__ import annotations

from ..backends.backend import BackendLike
from ..precision import Precision, PrecisionLike
from .base import BaselineLibrary, svd_flops

__all__ = ["LapackCPU"]


class LapackCPU(BaselineLibrary):
    """Host LAPACK ``gesdd`` (singular values only)."""

    name = "lapack"
    vendors = ()  # host library: any system
    max_n = None
    precisions = (Precision.FP32, Precision.FP64)

    cpu_gflops = 55.0
    t0 = 5.0e-5

    def predict_time(self, n: int, backend: BackendLike, precision: PrecisionLike) -> float:
        """Modeled reference-LAPACK CPU ``gesvd`` time for ``n x n``."""
        self.check(n, backend, precision)
        return self.t0 + svd_flops(n) / (self.cpu_gflops * 1e9)
