"""Analytic execution planner: tune every axis, not just the kernels.

The paper's performance-portability mechanism (section 3.3) is
*re-tuning*: the one unified code path is specialized per hardware and
precision by searching hyperparameters against measurements.
:mod:`repro.tuning.search` reproduces that search for the kernel
hyperparameters alone; this module extends it to the full execution
space the stage-graph engine exposes - kernel parameters x ``streams`` x
``ngpu`` x out-of-core window budget - following the
analytic-prediction-as-planner approach of performance-prediction
frameworks (PPT): because the launch graph is priced without numerics,
the entire composition matrix can be *searched*, not just priced.

:func:`tune_resolved` (behind :meth:`repro.Solver.tune`) runs a staged
search:

1. **coarse stage** - a subsampled hyperparameter grid crossed with the
   execution axes, every candidate priced by the analytic oracle
   (:class:`~repro.sim.graph.AnalyticExecutor` /
   :func:`~repro.sim.timeline.schedule_streams` through
   :meth:`repro.Solver.predict`);
2. **refinement stage** - the leaders' hyperparameter neighborhoods
   (tilesize halved/doubled, colperblock divisors, splitk steps) are
   explored at their winning execution axes.

The handle's own configuration is always evaluated first, so the ranked
:class:`TunePlan` can never be analytically slower than the untuned
default.  Plans are memoized per (device, precision, shape *class*) in a
module cache - the key uses :func:`shape_class` (padded tile geometry)
rather than the exact ``n``, since every ``n`` padding to the same
``npad`` emits the identical launch graph - alongside the
kernel-parameter autotune cache
(:func:`clear_tune_cache` drops it); candidates that exceed device
memory in-core fall back to ``out_of_core=True`` automatically, which is
when the window-budget axis joins the search.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.tiling import ntiles
from ..errors import CapacityError, InvalidParamsError
from ..sim.params import KernelParams

__all__ = [
    "ShapeClass",
    "TuneCandidate",
    "TunePlan",
    "clear_tune_cache",
    "shape_class",
    "tune_cache_stats",
    "tune_resolved",
]

#: Objectives the planner can rank by.
OBJECTIVES = ("time", "throughput")

#: Default device counts explored by the coarse stage.
DEFAULT_NGPUS = (1, 2, 4, 8)

#: Default node counts explored by the coarse stage.  Single-node only:
#: the cluster axis routes candidates through the discrete-event
#: simulator (much slower than table pricing), so multi-node search is
#: opt-in via ``Solver.tune(n, nodes=(1, 2, ...))``.
DEFAULT_NODES = (1,)

#: Default stream counts explored by the coarse stage.
DEFAULT_STREAMS = (1, 2, 4)

#: Out-of-core window budgets explored (as fractions of device memory;
#: ``None`` = the backend's full device memory) when a candidate must
#: run out-of-core.
OC_BUDGET_FRACTIONS = (None, 0.5)

#: Coarse-stage hyperparameter axes (subsampled from the paper's grid).
_COARSE_TILESIZES = (16, 32, 64)
_COARSE_SPLITKS = (4, 8)


@dataclass(frozen=True)
class ShapeClass:
    """The padded tile geometry a problem size resolves to.

    The tile engine zero-pads every ``n x n`` problem to
    ``npad = ntiles(n, tilesize) * tilesize``, so every ``n`` in
    ``(npad - tilesize, npad]`` emits the *identical* launch graph: same
    kernel sequence, same analytic price, same tuning landscape.  The
    shape class is therefore the natural memo key for tune/plan caches
    (heterogeneous traffic collapses onto few classes) and the grouping
    key for the serving batcher (:mod:`repro.serve.batcher`), where
    requests in one class can share a batched graph bitwise-safely.
    """

    npad: int
    nbt: int
    tilesize: int

    def __contains__(self, n: int) -> bool:
        """Whether problem size ``n`` pads to this class."""
        return self.npad - self.tilesize < n <= self.npad


def shape_class(n: int, config) -> ShapeClass:
    """Resolve a problem size to its padded tile geometry class."""
    ts = config.params.tilesize
    nbt = ntiles(n, ts)
    return ShapeClass(npad=nbt * ts, nbt=nbt, tilesize=ts)


@dataclass(frozen=True)
class TuneCandidate:
    """One fully-specified point of the execution search space.

    ``predicted_s`` is the analytic end-to-end time of this
    configuration; ``out_of_core`` / ``oc_budget_gb`` record whether the
    oracle had to stream the problem (chosen automatically when the
    in-core footprint exceeds device memory).
    """

    params: KernelParams
    streams: int = 1
    ngpu: int = 1
    nodes: int = 1
    out_of_core: bool = False
    oc_budget_gb: Optional[float] = None
    predicted_s: float = 0.0
    #: The fleet placement of this candidate (None = uniform fleet of the
    #: handle's backend, spelled through the legacy ngpu/nodes axes).
    topology: Optional[object] = None

    def predict_kwargs(self) -> Dict[str, object]:
        """The :meth:`repro.Solver.predict` arguments of this candidate."""
        if self.topology is not None:
            # the topology spelling replaces every legacy fleet axis
            kwargs = {"streams": self.streams, "topology": self.topology}
        else:
            kwargs = {"streams": self.streams, "ngpu": self.ngpu}
            if self.nodes > 1:
                kwargs["nodes"] = self.nodes
        if self.out_of_core:
            kwargs["out_of_core"] = True
            if self.oc_budget_gb is not None:
                kwargs["oc_budget_gb"] = self.oc_budget_gb
        return kwargs


@dataclass
class TunePlan:
    """Ranked outcome of one :meth:`repro.Solver.tune` search.

    ``candidates`` holds every evaluated configuration, fastest first;
    ``default`` is the handle's own configuration (always evaluated), so
    ``speedup`` isolates what tuning bought.  :meth:`apply` constructs
    the winning :class:`~repro.Solver`.
    """

    n: int
    batch: Optional[int]
    backend: str
    precision: str
    objective: str
    candidates: Tuple[TuneCandidate, ...]
    default: TuneCandidate
    evaluations: int
    _config: object = field(repr=False, default=None)

    @property
    def best(self) -> TuneCandidate:
        """The top-ranked candidate."""
        return self.candidates[0]

    @property
    def speedup(self) -> float:
        """Analytic speedup of the winner over the untuned default."""
        if self.best.predicted_s <= 0:
            return 1.0
        return self.default.predicted_s / self.best.predicted_s

    def throughput(self, candidate: Optional[TuneCandidate] = None) -> float:
        """Problems per second of a candidate (the winner by default)."""
        cand = candidate if candidate is not None else self.best
        problems = self.batch if self.batch is not None else 1
        return problems / cand.predicted_s if cand.predicted_s > 0 else 0.0

    def apply(self) -> "object":
        """Construct the winning :class:`~repro.Solver`.

        The returned handle carries the best candidate's kernel
        hyperparameters; pair it with ``plan.best.predict_kwargs()`` (or
        the matching ``streams`` / ``ngpu`` runtime setup) to realize
        the planned execution.
        """
        from ..solver import Solver

        return Solver.from_config(self._config.with_(params=self.best.params))

    def top(self, k: int = 5) -> List[TuneCandidate]:
        """The ``k`` best-ranked candidates."""
        return list(self.candidates[:k])


_TUNE_CACHE: Dict[Tuple, TunePlan] = {}
_TUNE_CACHE_HITS = 0
_TUNE_CACHE_MISSES = 0


def clear_tune_cache() -> None:
    """Drop memoized :class:`TunePlan` results and reset the counters."""
    global _TUNE_CACHE_HITS, _TUNE_CACHE_MISSES
    _TUNE_CACHE.clear()
    _TUNE_CACHE_HITS = 0
    _TUNE_CACHE_MISSES = 0


def tune_cache_stats() -> Dict[str, int]:
    """Hit/miss counters of the shape-class plan memo.

    Two distinct problem sizes in one :class:`ShapeClass` share a memo
    entry, so the second ``tune`` of heterogeneous traffic shows up here
    as a hit rather than a cold search (asserted by the cache tests and
    surfaced per-service by :class:`repro.serve.ServiceStats`).
    """
    return {
        "hits": _TUNE_CACHE_HITS,
        "misses": _TUNE_CACHE_MISSES,
        "entries": len(_TUNE_CACHE),
    }


def _coarse_params(base: KernelParams) -> List[KernelParams]:
    """The coarse-stage hyperparameter candidates (base config included)."""
    out = [base]
    for ts in _COARSE_TILESIZES:
        for cpb in (ts // 2, ts):
            for sk in _COARSE_SPLITKS:
                try:
                    p = KernelParams(ts, cpb, sk)
                except InvalidParamsError:
                    continue
                if p not in out:
                    out.append(p)
    return out


def _placement_candidates(topology) -> List[object]:
    """The fleet placements the coarse stage explores.

    Given a fleet, the placement axis covers: the full cost-weighted
    fleet itself, and for every device type present a *uniform*
    single-node subset at each power-of-two count up to (and including)
    that type's availability - the "should I even use the slow devices?"
    question, answered with :meth:`repro.Solver.predict` as the only
    cost oracle.  Bandwidth overrides carry over: the full fleet keeps
    its nodes/fabric, subsets inherit the intra-node ``link_gbs``.
    """
    from ..sim.topology import Topology

    out: List[object] = [topology]
    for dev, count in topology.counts():
        sizes = set()
        c = 1
        while c <= count:
            sizes.add(c)
            c *= 2
        sizes.add(count)
        for size in sorted(sizes):
            cand = Topology(
                devices=(dev,) * size, link_gbs=topology.link_gbs
            )
            if cand not in out:
                out.append(cand)
    return out


def _neighbor_params(p: KernelParams) -> List[KernelParams]:
    """The refinement neighborhood of one hyperparameter triple."""
    out: List[KernelParams] = []
    for ts in (p.tilesize // 2, p.tilesize, p.tilesize * 2):
        for cpb in (ts // 4, ts // 2, ts):
            for sk in (p.splitk // 2, p.splitk, p.splitk * 2):
                try:
                    q = KernelParams(ts, cpb, sk)
                except InvalidParamsError:
                    continue
                if q not in out:
                    out.append(q)
    return out


def tune_resolved(
    n: int,
    config,
    batch: Optional[int] = None,
    objective: str = "time",
    budget: int = 96,
    ngpus: Sequence[int] = DEFAULT_NGPUS,
    streams: Sequence[int] = DEFAULT_STREAMS,
    nodes: Optional[Sequence[int]] = None,
    topology=None,
) -> TunePlan:
    """Staged analytic search against a resolved :class:`SolveConfig`.

    The single shared code path behind :meth:`repro.Solver.tune`.
    ``budget`` caps oracle evaluations (each one prices a launch graph;
    no numerics run); a quarter of it is reserved for the refinement
    stage so a large coarse grid cannot starve it.  Results are memoized
    per (resolved config, shape, axes) - the frozen
    :class:`~repro.SolveConfig` hashes by value, so any axis that
    changes predictions (coefficients, link, stage3, ...) splits the
    cache entry; :func:`clear_tune_cache` drops the memo.  ``nodes``
    opts the search into the cluster axis (default
    :data:`DEFAULT_NODES`, i.e. single-node only): multi-node
    candidates are priced through the discrete-event simulator and
    never fall back to out-of-core streaming.  Raises
    :class:`~repro.errors.CapacityError` when the problem cannot run on
    the backend even out-of-core.

    ``topology`` (a :class:`repro.Topology`) adds the **placement
    axis**: besides the homogeneous grid above, the coarse stage prices
    every placement of :func:`_placement_candidates` (the full
    cost-weighted fleet plus uniform per-device-type subsets) at each
    stream count, and refinement keeps the leaders' placements.  The
    homogeneous default stays the first evaluation, so the winner is
    pinned never analytically slower than it.
    """
    from ..solver import Solver

    storage = config.require_precision("tune")
    if objective not in OBJECTIVES:
        raise InvalidParamsError(
            f"unknown objective {objective!r}; expected one of {OBJECTIVES}"
        )
    if objective == "throughput" and batch is None:
        raise InvalidParamsError(
            "objective='throughput' ranks problems per second and "
            "requires batch="
        )
    if batch is not None and batch < 1:
        raise InvalidParamsError(
            f"batch must be a positive problem count, got {batch}"
        )
    if budget < 1:
        raise InvalidParamsError(
            f"budget must allow at least one evaluation, got {budget}"
        )
    ngpus = tuple(ngpus)
    streams = tuple(streams)
    nodes = DEFAULT_NODES if nodes is None else tuple(nodes)
    if not nodes or any(nd < 1 for nd in nodes):
        raise InvalidParamsError(
            f"nodes must be a non-empty sequence of positive node "
            f"counts, got {nodes}"
        )
    # the frozen SolveConfig hashes by value, so *every* axis that can
    # change a prediction (coeffs, link, stage3, fused, params, ...)
    # participates in the memo key - two solvers share a cached plan
    # only when their predictions are genuinely interchangeable.  The
    # shape participates as its padded tile geometry class rather than
    # the exact n: every n padding to the same npad emits the identical
    # launch graph, so heterogeneous traffic reuses one plan per class
    global _TUNE_CACHE_HITS, _TUNE_CACHE_MISSES
    cls = shape_class(n, config)
    cache_key = (
        config, cls, batch, objective, budget, ngpus, streams, nodes,
        topology,
    )
    hit = _TUNE_CACHE.get(cache_key)
    if hit is not None:
        _TUNE_CACHE_HITS += 1
        return hit
    _TUNE_CACHE_MISSES += 1

    mem_gb = config.backend.device.mem_bytes / 2**30
    evaluated: Dict[Tuple, TuneCandidate] = {}

    def evaluate(
        params: KernelParams, s: int, g: int, nd: int = 1,
        oc_fraction: Optional[float] = None, topo=None,
    ) -> Optional[TuneCandidate]:
        """Price one candidate; in-core first, out-of-core fallback."""
        key = (params, s, g, nd, oc_fraction, topo)
        if key in evaluated:
            return evaluated[key]
        if len(evaluated) >= budget:
            return None
        solver = Solver.from_config(config.with_(params=params))
        if topo is not None:
            kwargs: Dict[str, object] = {"streams": s, "topology": topo}
            g, nd = topo.ngpu, topo.nodes
        else:
            kwargs = {"streams": s, "ngpu": g}
            if nd > 1:
                kwargs["nodes"] = nd
        if batch is not None:
            kwargs["batch"] = batch
        oc_budget_gb = None if oc_fraction is None else mem_gb * oc_fraction
        try:
            if oc_fraction is None:
                result = solver.predict(n, **kwargs)
                cand = TuneCandidate(
                    params=params, streams=s, ngpu=g, nodes=nd,
                    predicted_s=result.total_s, topology=topo,
                )
            else:
                raise CapacityError("explicit out-of-core candidate")
        except CapacityError:
            if nd > 1 or topo is not None:
                # multi-node and fleet candidates do not join the
                # out-of-core budget search; an overflowing placement is
                # simply not runnable at this size
                return None
            try:
                result = solver.predict(
                    n, out_of_core=True, oc_budget_gb=oc_budget_gb, **kwargs
                )
            except CapacityError:
                return None  # not runnable even out-of-core
            cand = TuneCandidate(
                params=params, streams=s, ngpu=g, out_of_core=True,
                oc_budget_gb=oc_budget_gb, predicted_s=result.total_s,
            )
        evaluated[key] = cand
        return cand

    # the untuned default always goes first: the ranked winner can only
    # ever match or beat it
    default = evaluate(config.params, 1, 1)
    if default is None:
        raise CapacityError(
            f"n={n}" + (f", batch={batch}" if batch is not None else "")
            + f" cannot run on {config.backend.name} ({storage.name_lower})"
            " even out-of-core: one problem exceeds the streaming window"
        )

    # coarse stage: subsampled hyperparameters x execution axes.  A
    # quarter of the budget is reserved for the refinement stage, so a
    # coarse grid larger than the budget cannot starve it.
    coarse_cap = max(1, budget - budget // 4)
    exec_axes: List[Tuple] = [
        (s, g, nd, None) for nd in nodes for g in ngpus for s in streams
    ]
    if topology is not None:
        # the placement axis: the full weighted fleet plus uniform
        # per-device-type subsets, each crossed with the stream counts
        exec_axes += [
            (s, 1, 1, topo)
            for topo in _placement_candidates(topology)
            for s in streams
        ]
    for params in _coarse_params(config.params):
        for s, g, nd, topo in exec_axes:
            if len(evaluated) >= coarse_cap:
                break
            cand = evaluate(params, s, g, nd, topo=topo)
            if cand is not None and cand.out_of_core:
                # the window budget becomes a search axis only when the
                # candidate actually streams
                for frac in OC_BUDGET_FRACTIONS:
                    if frac is not None:
                        evaluate(params, s, g, nd, oc_fraction=frac)
        if len(evaluated) >= coarse_cap:
            break

    # refinement stage: the leaders' hyperparameter neighborhoods at
    # their winning execution axes (including their fleet placement)
    leaders = sorted(evaluated.values(), key=lambda c: c.predicted_s)[:3]
    for leader in leaders:
        for params in _neighbor_params(leader.params):
            evaluate(
                params, leader.streams, leader.ngpu, leader.nodes,
                oc_fraction=(
                    None if leader.oc_budget_gb is None
                    else leader.oc_budget_gb / mem_gb
                ) if leader.out_of_core else None,
                topo=leader.topology,
            )

    ranked = tuple(sorted(evaluated.values(), key=lambda c: c.predicted_s))
    plan = TunePlan(
        n=n,
        batch=batch,
        backend=config.backend.name,
        precision=storage.name_lower,
        objective=objective,
        candidates=ranked,
        default=default,
        evaluations=len(evaluated),
        _config=config,
    )
    _TUNE_CACHE[cache_key] = plan
    return plan
