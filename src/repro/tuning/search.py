"""Brute-force hyperparameter search (paper section 3.3).

The paper tunes TILESIZE / COLPERBLOCK / SPLITK per (architecture,
precision) by exhaustive search; this module reproduces that search against
the simulator's cost model.  Constraints follow the paper: the resident
tile must fit the L1 budget for the panel kernel to behave
(``TILESIZE^2 * sizeof`` vs L1), COLPERBLOCK is bounded by register space,
and ``SPLITK <= min(TILESIZE, 1024/TILESIZE)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from ..backends.backend import BackendLike, resolve_backend
from ..precision import PrecisionLike, resolve_precision
from ..sim.costmodel import DEFAULT_COEFFS, CostCoefficients
from ..sim.params import KernelParams, param_grid
from ..sim.schedule import predict

__all__ = ["SearchResult", "grid_search", "autotune", "clear_autotune_cache"]


@dataclass(frozen=True)
class SearchResult:
    """Outcome of one hyperparameter search."""

    best: KernelParams
    best_seconds: float
    table: Tuple[Tuple[KernelParams, float], ...]  # sorted by time

    def top(self, k: int = 5) -> List[Tuple[KernelParams, float]]:
        """The ``k`` fastest configurations."""
        return list(self.table[:k])


def grid_search(
    n: int,
    backend: BackendLike,
    precision: PrecisionLike,
    grid: Optional[Iterable[KernelParams]] = None,
    fused: bool = True,
    coeffs: CostCoefficients = DEFAULT_COEFFS,
) -> SearchResult:
    """Exhaustively price every candidate configuration at size ``n``.

    Uses the analytic schedule model, so the paper's full search space
    evaluates in well under a second even at 32k.
    """
    be = resolve_backend(backend)
    prec = be.check_precision(resolve_precision(precision))
    candidates = list(grid) if grid is not None else list(param_grid())
    if not candidates:
        raise ValueError("empty search grid")
    scored = []
    for p in candidates:
        t = predict(
            n, be, prec, params=p, fused=fused, coeffs=coeffs,
            check_capacity=False,
        ).total_s
        scored.append((p, t))
    scored.sort(key=lambda item: item[1])
    return SearchResult(
        best=scored[0][0], best_seconds=scored[0][1], table=tuple(scored)
    )


_AUTOTUNE_CACHE: Dict[Tuple[str, str, int, bool], KernelParams] = {}


def autotune(
    n: int,
    backend: BackendLike,
    precision: PrecisionLike,
    fused: bool = True,
    coeffs: CostCoefficients = DEFAULT_COEFFS,
) -> KernelParams:
    """Best configuration for (size, backend, precision), memoized.

    Sizes are bucketed by power of two, matching how the paper selects
    "the optimal hyperparameter combination ... for each hardware and data
    type" per size (Figure 5 note).
    """
    be = resolve_backend(backend)
    prec = be.check_precision(resolve_precision(precision))
    bucket = max(1, n).bit_length()
    key = (be.name, prec.value, bucket, fused)
    if key not in _AUTOTUNE_CACHE:
        _AUTOTUNE_CACHE[key] = grid_search(
            n, be, prec, fused=fused, coeffs=coeffs
        ).best
    return _AUTOTUNE_CACHE[key]


def clear_autotune_cache() -> None:
    """Drop memoized tuning results (used by calibration tests)."""
    _AUTOTUNE_CACHE.clear()
