"""Hyperparameter tuning: the paper's performance-portability mechanism.

Two layers:

* :mod:`repro.tuning.search` - the paper's brute-force kernel
  hyperparameter search (:func:`grid_search` / :func:`autotune`), which
  prices TILESIZE / COLPERBLOCK / SPLITK combinations per (hardware,
  precision) against the analytic cost model;
* :mod:`repro.tuning.planner` - the execution planner behind
  :meth:`repro.Solver.tune`, which extends that search to every axis of
  the stage-graph engine (kernel parameters x ``streams`` x ``ngpu`` x
  out-of-core window budget) and returns a ranked :class:`TunePlan`.
"""

from .planner import (
    ShapeClass,
    TuneCandidate,
    TunePlan,
    clear_tune_cache,
    shape_class,
    tune_cache_stats,
    tune_resolved,
)
from .search import SearchResult, autotune, clear_autotune_cache, grid_search

__all__ = [
    "SearchResult",
    "ShapeClass",
    "TuneCandidate",
    "TunePlan",
    "autotune",
    "clear_autotune_cache",
    "clear_tune_cache",
    "grid_search",
    "shape_class",
    "tune_cache_stats",
    "tune_resolved",
]
