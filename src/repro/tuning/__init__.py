"""Hyperparameter tuning: the paper's performance-portability mechanism."""

from .search import SearchResult, autotune, clear_autotune_cache, grid_search

__all__ = ["SearchResult", "autotune", "clear_autotune_cache", "grid_search"]
