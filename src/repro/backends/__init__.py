"""Hardware abstraction layer: simulated GPU devices and vendor backends.

This package plays the role GPUArrays.jl + KernelAbstractions.jl play in the
paper: a single kernel source targets every registered device, and all
vendor-specific behaviour (precision support, FP16 upcast rules, memory
capacity, warp width, cache sizes) is data, not code.
"""

from .backend import Backend, BackendLike, list_backends, resolve_backend
from .device import DeviceSpec, Vendor, get_device, list_devices, register_device
from .memory import DeviceMatrix

__all__ = [
    "Backend",
    "BackendLike",
    "DeviceMatrix",
    "DeviceSpec",
    "Vendor",
    "get_device",
    "list_devices",
    "list_backends",
    "register_device",
    "resolve_backend",
]
