"""Device-resident matrix abstraction (the GPUArrays analogue).

:class:`DeviceMatrix` wraps a NumPy array that plays the role of GPU global
memory.  It enforces three semantics the paper relies on:

* **storage vs compute dtype** — data lives in the storage precision
  (possibly FP16) while kernels run in the backend's compute precision;
  conversions happen at load/store boundaries, exactly like the paper's
  "upcast during computation, downcast at storage time" description;
* **capacity** — allocation checks the simulated device memory budget;
* **lazy transpose** — :meth:`DeviceMatrix.T` returns a zero-copy strided
  view, matching Julia's lazy transpose used to express LQ sweeps through
  the QR kernels without data movement.

:class:`TileResidency` is the out-of-core counterpart: it models the
bounded device window of a host-resident problem.  The rewritten launch
graphs of :mod:`repro.sim.outofcore` move tiles through the window via
explicit ``h2d_tile`` / ``d2h_tile`` nodes; during numeric replay the
tracker mirrors those transfers and *faults*
(:class:`~repro.errors.WindowOverflowError`) when a load overflows the
declared capacity or a kernel touches a non-resident tile — so
out-of-core correctness is enforced numerically, not just priced.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Set, Tuple

import numpy as np

from ..errors import ShapeError, WindowOverflowError
from ..precision import Precision, PrecisionLike, resolve_precision
from .backend import Backend, BackendLike, resolve_backend

__all__ = ["DeviceMatrix", "TileResidency"]


class TileResidency:
    """Bounded device window of one device of an out-of-core replay.

    Tracks which ``(tile_row, tile_col)`` tiles of the padded matrix are
    resident in (simulated) device memory, plus the stage-2 band buffer.
    ``capacity_tiles`` is the window budget the graph rewriter planned
    against; every violation is a rewriter bug and raises
    :class:`~repro.errors.WindowOverflowError` rather than silently
    touching host-resident data.
    """

    __slots__ = ("capacity_tiles", "device", "resident", "_band_tiles")

    def __init__(self, capacity_tiles: int, device: int = 0) -> None:
        if capacity_tiles < 1:
            raise WindowOverflowError(
                f"device window needs a positive tile capacity, "
                f"got {capacity_tiles}"
            )
        self.capacity_tiles = int(capacity_tiles)
        self.device = device
        self.resident: Set[Tuple[int, int]] = set()
        self._band_tiles = 0  # tile-equivalents held by the band buffer

    # ------------------------------------------------------------------ #
    @property
    def resident_tiles(self) -> int:
        """Tiles currently held in the window (incl. the band buffer)."""
        return len(self.resident) + self._band_tiles

    def load(self, tiles: Iterable[Tuple[int, int]]) -> None:
        """Mark tiles resident (an ``h2d_tile`` landing); fault on overflow."""
        self.resident.update(tiles)
        self._check_capacity()

    def evict(self, tiles: Iterable[Tuple[int, int]]) -> None:
        """Drop tiles from the window (a ``d2h_tile`` write-back)."""
        for t in tiles:
            # evicting a non-resident tile is a rewriter bookkeeping bug
            if t not in self.resident:
                raise WindowOverflowError(
                    f"device {self.device}: d2h_tile evicts non-resident "
                    f"tile {t}"
                )
            self.resident.discard(t)

    def load_band(self, band_tiles: int) -> None:
        """Mark the stage-2 band buffer resident (tile-equivalents)."""
        self._band_tiles = int(band_tiles)
        self._check_capacity()

    def require(self, tiles: Iterable[Tuple[int, int]], kind: str) -> None:
        """Fault unless every touched tile is resident."""
        for t in tiles:
            if t not in self.resident:
                raise WindowOverflowError(
                    f"device {self.device}: {kind} touches tile {t} which "
                    f"is not resident in the out-of-core window "
                    f"({len(self.resident)}/{self.capacity_tiles} tiles)"
                )

    def require_band(self, kind: str) -> None:
        """Fault unless the band buffer was loaded."""
        if self._band_tiles == 0:
            raise WindowOverflowError(
                f"device {self.device}: {kind} needs the band buffer "
                "resident but no band h2d_tile was replayed"
            )

    def _check_capacity(self) -> None:
        if self.resident_tiles > self.capacity_tiles:
            raise WindowOverflowError(
                f"device {self.device}: out-of-core window overflow - "
                f"{self.resident_tiles} tiles resident, capacity "
                f"{self.capacity_tiles}"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        """Residency summary (resident / capacity tiles)."""
        return (
            f"TileResidency(device={self.device}, "
            f"resident={self.resident_tiles}/{self.capacity_tiles})"
        )


@dataclass
class DeviceMatrix:
    """A square matrix resident in simulated device memory.

    Parameters
    ----------
    data:
        The device buffer (NumPy array in the *storage* dtype).  Use
        :meth:`from_host` to construct with capacity checks and dtype
        conversion.
    backend:
        Owning backend.
    precision:
        Storage precision of ``data``.
    """

    data: np.ndarray
    backend: Backend
    precision: Precision

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_host(
        cls,
        a: np.ndarray,
        backend: BackendLike,
        precision: Optional[PrecisionLike] = None,
    ) -> "DeviceMatrix":
        """Upload a host array, converting to the storage precision.

        ``precision`` defaults to the array's own dtype when that is one of
        FP16/FP32/FP64, otherwise FP64.
        """
        be = resolve_backend(backend)
        if a.ndim != 2:
            raise ShapeError(f"expected a 2-D matrix, got shape {a.shape}")
        if precision is None:
            prec = Precision.from_dtype(a.dtype)
        else:
            prec = resolve_precision(precision)
        prec = be.check_precision(prec)
        be.check_capacity(max(a.shape), prec)
        buf = np.array(a, dtype=prec.dtype, copy=True, order="C")
        return cls(data=buf, backend=be, precision=prec)

    # ------------------------------------------------------------------ #
    # views and shape
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> tuple:
        """Matrix shape."""
        return self.data.shape

    @property
    def n(self) -> int:
        """Matrix order (square matrices)."""
        return self.data.shape[0]

    @property
    def T(self) -> "DeviceMatrix":
        """Lazy transpose: a zero-copy strided view of the same buffer."""
        return DeviceMatrix(self.data.T, self.backend, self.precision)

    @property
    def compute_dtype(self) -> np.dtype:
        """Dtype kernels run in on this backend for this storage precision."""
        return self.backend.compute_precision(self.precision).dtype

    # ------------------------------------------------------------------ #
    # transfers
    # ------------------------------------------------------------------ #
    def to_host(self, dtype: Optional[np.dtype] = None) -> np.ndarray:
        """Download to host memory (copy), optionally converting dtype."""
        out = np.array(self.data, copy=True)
        if dtype is not None:
            out = out.astype(dtype)
        return out

    def load_compute(self) -> np.ndarray:
        """Read the buffer in compute precision.

        When storage and compute dtypes coincide this is a *view* (no
        copy); otherwise it is an upcast copy, mirroring the load-time
        conversion a real FP16-on-FP32-ALUs kernel performs.
        """
        cdt = self.compute_dtype
        if self.data.dtype == cdt:
            return self.data
        return self.data.astype(cdt)

    def store_compute(self, values: np.ndarray) -> None:
        """Write compute-precision values back through the storage dtype."""
        if values.shape != self.data.shape:
            raise ShapeError(
                f"store shape {values.shape} != buffer shape {self.data.shape}"
            )
        self.data[...] = values.astype(self.data.dtype)

    def nbytes(self) -> int:
        """Storage footprint in bytes."""
        return self.data.nbytes

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        """Shape/precision/backend summary of the device matrix."""
        return (
            f"DeviceMatrix(n={self.n}, precision={self.precision.name}, "
            f"backend={self.backend.name})"
        )
