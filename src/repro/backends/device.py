"""Simulated GPU device specifications (paper Table 2).

Each :class:`DeviceSpec` carries the hardware parameters the paper's
evaluation hinges on: streaming-multiprocessor count, L1/L2 cache sizes,
memory capacity and bandwidth, peak FP32 throughput, boost clock and
warp/wavefront width.  These numbers are transcribed from Table 2 of the
paper; fields Apple does not publish (bandwidth, peak FLOPS for the M1 Pro)
use documented public estimates and are flagged with ``estimated=True``.

The registry exposes the six benchmark devices under short names::

    h100, a100, rtx4060, mi250, m1pro, pvc

plus vendor aliases (``"nvidia-h100"`` etc.).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..errors import UnsupportedBackendError

__all__ = ["Vendor", "DeviceSpec", "register_device", "get_device", "list_devices"]


class Vendor:
    """Vendor name constants (plain strings to keep configs serializable)."""

    NVIDIA = "nvidia"
    AMD = "amd"
    APPLE = "apple"
    INTEL = "intel"

    ALL = (NVIDIA, AMD, APPLE, INTEL)


@dataclass(frozen=True)
class DeviceSpec:
    """Static description of one simulated GPU (one Table 2 row).

    Attributes
    ----------
    name:
        Canonical short name, e.g. ``"h100"``.
    vendor:
        One of :class:`Vendor`.
    sm_count:
        Number of streaming multiprocessors / compute units / Xe cores
        ("GPU Multiprocessors" column).
    l1_kb:
        L1 / shared-memory capacity per SM in KiB.
    l2_mb:
        L2 cache in MiB (device total).
    mem_gb:
        Device memory capacity in GiB; bounds the largest resident matrix.
    bandwidth_gbs:
        Peak memory bandwidth in GB/s.
    peak_fp32_tflops:
        Peak single-precision throughput in TFLOPS.
    boost_mhz:
        Boost clock in MHz; the panel-factorization latency model scales
        with the inverse clock because that kernel runs one thread block.
    warp_size:
        SIMT execution width (32 for NVIDIA/Apple/Intel, 64 for AMD
        wavefronts) - drives the COLPERBLOCK divergence model.
    fp64_ratio:
        FP64 throughput as a fraction of FP32 (0.5 on HPC parts, much
        smaller on consumer parts).
    mem_efficiency:
        Fraction of peak bandwidth streaming kernels actually achieve on
        this memory subsystem (the paper attributes AMD's stronger
        COLPERBLOCK sensitivity to "memory subsystem design").
    launch_overhead_us:
        Fixed host-side cost per kernel launch in microseconds.  The fusion
        optimization (Figure 2) exists to amortize exactly this term.
    link_name / link_gbs / link_latency_us:
        Peer-to-peer interconnect of a multi-device node built from this
        part (NVLink / Infinity Fabric / Xe Link / PCIe): per-direction
        bandwidth in GB/s and one-hop latency in microseconds.  These
        price the explicit ``comm`` nodes of a partitioned launch graph
        (see :mod:`repro.sim.partition`).
    max_threads_per_sm / max_blocks_per_sm / registers_per_sm_kb:
        Occupancy limits used by :mod:`repro.sim.occupancy`.
    is_hpc:
        True for datacenter parts (H100/A100/MI250/PVC); some baseline
        libraries are tuned for these and behave differently on consumer
        hardware (paper sections 4.1).
    estimated:
        True when public specs were incomplete (Apple M1 Pro) and values
        are documented estimates rather than Table 2 transcriptions.
    """

    name: str
    vendor: str
    sm_count: int
    l1_kb: int
    l2_mb: float
    mem_gb: float
    bandwidth_gbs: float
    peak_fp32_tflops: float
    boost_mhz: int
    warp_size: int = 32
    fp64_ratio: float = 0.5
    launch_overhead_us: float = 4.0
    mem_efficiency: float = 1.0
    link_name: str = "pcie4"
    link_gbs: float = 25.0
    link_latency_us: float = 8.0
    max_threads_per_sm: int = 2048
    max_blocks_per_sm: int = 32
    registers_per_sm_kb: int = 256
    is_hpc: bool = True
    estimated: bool = False
    aliases: tuple = field(default=())

    # ------------------------------------------------------------------ #
    # derived quantities
    # ------------------------------------------------------------------ #
    @property
    def mem_bytes(self) -> int:
        """Usable device memory in bytes (95% of capacity: allocator slack)."""
        return int(self.mem_gb * (1024**3) * 0.95)

    @property
    def bandwidth_bytes(self) -> float:
        """Memory bandwidth in bytes/second."""
        return self.bandwidth_gbs * 1e9

    @property
    def effective_bandwidth(self) -> float:
        """Achievable streaming bandwidth in bytes/second."""
        return self.bandwidth_bytes * self.mem_efficiency

    @property
    def peak_flops_fp32(self) -> float:
        """Peak FP32 FLOPS (not TFLOPS)."""
        return self.peak_fp32_tflops * 1e12

    def peak_flops(self, sizeof: int) -> float:
        """Peak FLOPS for an element size in bytes.

        FP16 executes at FP32 rate: the paper's kernels do not use tensor
        cores, and backends without scalar FP16 upcast to FP32 (section
        4.3), so scalar FP16 never exceeds the FP32 pipeline.
        """
        if sizeof >= 8:
            return self.peak_flops_fp32 * self.fp64_ratio
        return self.peak_flops_fp32

    @property
    def clock_hz(self) -> float:
        """Boost clock in Hz."""
        return self.boost_mhz * 1e6

    @property
    def l1_bytes(self) -> int:
        """L1/shared-memory bytes per SM."""
        return self.l1_kb * 1024

    @property
    def launch_overhead_s(self) -> float:
        """Per-launch overhead in seconds."""
        return self.launch_overhead_us * 1e-6

    def max_square_n(self, sizeof: int, working_factor: float = 1.25) -> int:
        """Largest square matrix order resident in device memory.

        ``working_factor`` accounts for the tau workspace and padding; with
        1.25 the model reproduces the paper's capacity observations (H100
        FP16 reaches 131k; the 8 GB RTX4060 tops out near 32k FP32... see
        Figure 5 and the Figure 3 caption).
        """
        import math

        return int(math.isqrt(int(self.mem_bytes / (sizeof * working_factor))))


_REGISTRY: Dict[str, DeviceSpec] = {}
_CANONICAL: List[str] = []


def register_device(spec: DeviceSpec) -> DeviceSpec:
    """Add a device to the registry (idempotent for identical specs)."""
    keys = [spec.name, f"{spec.vendor}-{spec.name}", *spec.aliases]
    for key in keys:
        k = key.lower()
        if k in _REGISTRY and _REGISTRY[k] != spec:
            raise ValueError(f"device name collision: {key}")
        _REGISTRY[k] = spec
    if spec.name not in _CANONICAL:
        _CANONICAL.append(spec.name)
    return spec


def get_device(name: str) -> DeviceSpec:
    """Look up a registered device by (case-insensitive) name or alias."""
    key = name.strip().lower()
    if key not in _REGISTRY:
        raise UnsupportedBackendError(
            f"unknown device {name!r}; available: {', '.join(sorted(_CANONICAL))}"
        )
    return _REGISTRY[key]


def list_devices() -> List[DeviceSpec]:
    """All registered devices in registration (Table 2) order."""
    return [_REGISTRY[name] for name in _CANONICAL]


# ---------------------------------------------------------------------- #
# Table 2 transcription
# ---------------------------------------------------------------------- #

H100 = register_device(
    DeviceSpec(
        name="h100",
        vendor=Vendor.NVIDIA,
        sm_count=132,
        l1_kb=256,
        l2_mb=50,
        mem_gb=80,
        bandwidth_gbs=3360,
        peak_fp32_tflops=67.0,
        boost_mhz=1980,
        warp_size=32,
        fp64_ratio=0.5,
        launch_overhead_us=3.0,
        link_name="nvlink4",
        link_gbs=450.0,
        link_latency_us=2.0,
        is_hpc=True,
        aliases=("nvidia_h100",),
    )
)

A100 = register_device(
    DeviceSpec(
        name="a100",
        vendor=Vendor.NVIDIA,
        sm_count=108,
        l1_kb=192,
        l2_mb=80,
        mem_gb=80,
        bandwidth_gbs=1940,
        peak_fp32_tflops=19.5,
        boost_mhz=1410,
        warp_size=32,
        fp64_ratio=0.5,
        launch_overhead_us=3.5,
        link_name="nvlink3",
        link_gbs=300.0,
        link_latency_us=2.5,
        is_hpc=True,
        aliases=("nvidia_a100",),
    )
)

RTX4060 = register_device(
    DeviceSpec(
        name="rtx4060",
        vendor=Vendor.NVIDIA,
        sm_count=24,
        l1_kb=128,
        l2_mb=96,
        mem_gb=8,
        bandwidth_gbs=272,
        peak_fp32_tflops=15.1,
        boost_mhz=2125,
        warp_size=32,
        fp64_ratio=1.0 / 32.0,
        launch_overhead_us=4.0,
        link_name="pcie4-x8",
        link_gbs=16.0,
        link_latency_us=10.0,
        max_threads_per_sm=1536,
        is_hpc=False,
        aliases=("nvidia_rtx4060", "4060"),
    )
)

MI250 = register_device(
    DeviceSpec(
        name="mi250",
        vendor=Vendor.AMD,
        sm_count=208,
        l1_kb=16,
        l2_mb=16,
        mem_gb=128,
        bandwidth_gbs=3280,
        peak_fp32_tflops=45.3,
        boost_mhz=1700,
        warp_size=64,
        fp64_ratio=1.0,  # CDNA2 matrix-free vector FP64 runs at FP32 rate
        launch_overhead_us=5.0,
        mem_efficiency=0.55,  # dual-GCD HBM2e: lower achieved fraction
        link_name="infinity-fabric",
        link_gbs=250.0,
        link_latency_us=2.5,
        registers_per_sm_kb=512,
        is_hpc=True,
        aliases=("amd_mi250",),
    )
)

M1PRO = register_device(
    DeviceSpec(
        name="m1pro",
        vendor=Vendor.APPLE,
        sm_count=8,  # Table 2 "GPU Multiprocessors" value
        l1_kb=64,  # estimate: Apple does not publish L1 per core
        l2_mb=24,  # estimate
        mem_gb=16,
        bandwidth_gbs=200,  # estimate: M1 Pro unified memory
        peak_fp32_tflops=4.6,  # estimate
        boost_mhz=1296,
        warp_size=32,
        fp64_ratio=0.0,  # Metal has no FP64 (Figure 5 note)
        launch_overhead_us=8.0,
        link_name="unified",  # estimate: shared-memory interconnect
        link_gbs=200.0,
        link_latency_us=1.0,
        is_hpc=False,
        estimated=True,
        aliases=("m1", "apple_m1", "apple_m1pro", "metal"),
    )
)

PVC = register_device(
    DeviceSpec(
        name="pvc",
        vendor=Vendor.INTEL,
        sm_count=1024,  # Table 2 value (Xe vector engines)
        l1_kb=64,
        l2_mb=408,
        mem_gb=64,
        bandwidth_gbs=3280,
        peak_fp32_tflops=52.4,
        boost_mhz=1600,
        warp_size=32,
        fp64_ratio=1.0,
        launch_overhead_us=25.0,  # SYCL queue submission cost
        link_name="xe-link",
        link_gbs=160.0,
        link_latency_us=3.0,
        is_hpc=True,
        aliases=("ponte_vecchio", "intel_pvc", "intel_max"),
    )
)
