"""Backend abstraction: the KernelAbstractions/GPUArrays analogue.

A :class:`Backend` binds a :class:`~repro.backends.device.DeviceSpec` to the
vendor-specific *behavioural* rules the paper reports:

* which input precisions are supported at all (Figure 5: the Julia AMD GPU
  stack cannot run FP16, Apple Metal has no FP64);
* which dtype computation actually happens in (section 4.3: NVIDIA GPUs have
  no scalar FP16 ALUs, so FP16 inputs are upcast to FP32 for computation and
  downcast at storage time — which is why the H100 FP16 and FP32 curves
  coincide while FP16 doubles the maximum resident matrix size);
* how large a matrix fits in device memory (the RTX4060's 8 GB caps it at
  32k; H100 FP16 reaches 131k).

Exactly one kernel implementation exists in :mod:`repro.kernels`; backends
never duplicate algorithm code.  This mirrors the paper's central claim: the
unified function is specialized per device only through these parameters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple, Union

import numpy as np

from ..errors import CapacityError, UnsupportedBackendError, UnsupportedPrecisionError
from ..precision import Precision, PrecisionLike, resolve_precision
from .device import DeviceSpec, Vendor, get_device, list_devices

__all__ = ["Backend", "BackendLike", "resolve_backend", "list_backends"]


@dataclass(frozen=True)
class Backend:
    """A simulated GPU backend (device spec + vendor behaviour rules)."""

    device: DeviceSpec

    # ------------------------------------------------------------------ #
    # precision support matrix
    # ------------------------------------------------------------------ #
    def supported_precisions(self) -> Tuple[Precision, ...]:
        """Precisions this backend accepts, per the paper's Figure 5 notes."""
        vendor = self.device.vendor
        if vendor == Vendor.NVIDIA:
            return (Precision.FP16, Precision.FP32, Precision.FP64)
        if vendor == Vendor.AMD:
            # "Julia AMD GPU currently does not support conversion at
            # calculation time for FP16" (Figure 5 caption).
            return (Precision.FP32, Precision.FP64)
        if vendor == Vendor.APPLE:
            # "Apple Metal does not support FP64" (Figure 5 caption).
            return (Precision.FP16, Precision.FP32)
        if vendor == Vendor.INTEL:
            # Paper shows FP32 results; oneAPI also exposes FP64 units.
            return (Precision.FP32, Precision.FP64)
        raise UnsupportedBackendError(f"unknown vendor {vendor!r}")

    def supports(self, precision: PrecisionLike) -> bool:
        """True if ``precision`` can be used on this backend."""
        try:
            prec = resolve_precision(precision)
        except UnsupportedPrecisionError:
            return False
        return prec in self.supported_precisions()

    def check_precision(self, precision: PrecisionLike) -> Precision:
        """Resolve and validate a precision for this backend.

        Raises
        ------
        UnsupportedPrecisionError
            With a vendor-specific message matching the paper's notes.
        """
        prec = resolve_precision(precision)
        if prec in self.supported_precisions():
            return prec
        vendor = self.device.vendor
        detail = {
            (Vendor.AMD, Precision.FP16): (
                "AMD backend does not support FP16 "
                "(no conversion at calculation time; see paper Figure 5)"
            ),
            (Vendor.APPLE, Precision.FP64): (
                "Apple Metal does not support FP64 (see paper Figure 5)"
            ),
        }.get((vendor, prec), f"{self.name} does not support {prec.name}")
        raise UnsupportedPrecisionError(detail)

    def compute_precision(self, precision: PrecisionLike) -> Precision:
        """Dtype arithmetic actually runs in for a given storage precision.

        NVIDIA and Intel GPUs lack scalar-FP16 pipelines: FP16 is stored in
        half precision but computed in FP32 (paper section 4.3).  Apple
        GPUs execute scalar FP16 natively.
        """
        prec = self.check_precision(precision)
        if prec is Precision.FP16 and self.device.vendor in (
            Vendor.NVIDIA,
            Vendor.INTEL,
        ):
            return Precision.FP32
        return prec

    # ------------------------------------------------------------------ #
    # memory capacity
    # ------------------------------------------------------------------ #
    def max_n(self, precision: PrecisionLike) -> int:
        """Largest square matrix order resident in this device's memory."""
        prec = self.check_precision(precision)
        return self.device.max_square_n(prec.sizeof)

    def check_capacity(self, n: int, precision: PrecisionLike) -> None:
        """Raise :class:`CapacityError` if an ``n x n`` matrix cannot fit."""
        prec = self.check_precision(precision)
        limit = self.max_n(prec)
        if n > limit:
            raise CapacityError(
                f"{n}x{n} {prec.name} matrix needs "
                f"{n * n * prec.sizeof / 2**30:.1f} GiB working set; "
                f"{self.name} ({self.device.mem_gb} GiB) supports n <= {limit}"
            )

    # ------------------------------------------------------------------ #
    # conveniences
    # ------------------------------------------------------------------ #
    @property
    def name(self) -> str:
        """Human-readable backend name, e.g. ``"nvidia-h100"``."""
        return f"{self.device.vendor}-{self.device.name}"

    @property
    def vendor(self) -> str:
        """Vendor string (see :class:`repro.backends.device.Vendor`)."""
        return self.device.vendor

    @property
    def link(self):
        """Default peer interconnect of a multi-device node of this part.

        Returns the :class:`~repro.sim.costmodel.LinkSpec` built from the
        device's link fields (NVLink for datacenter NVIDIA parts, Infinity
        Fabric on AMD, Xe Link on Intel, PCIe on consumer cards).  The
        multi-GPU partitioner prices every ``comm`` node against this
        unless the caller overrides the bandwidth (``link_gbs=``).
        """
        from ..sim.costmodel import LinkSpec  # avoid import cycle

        spec = self.device
        return LinkSpec(
            name=spec.link_name,
            bandwidth_gbs=spec.link_gbs,
            latency_us=spec.link_latency_us,
        )

    def asarray(self, a: np.ndarray, precision: PrecisionLike) -> np.ndarray:
        """Convert host data to this backend's storage dtype (a 'transfer')."""
        prec = self.check_precision(precision)
        return np.ascontiguousarray(a, dtype=prec.dtype)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        """Backend tagged by its registry name."""
        return f"Backend({self.name})"


#: Anything accepted where a backend is expected.
BackendLike = Union[Backend, DeviceSpec, str]


def resolve_backend(value: BackendLike) -> Backend:
    """Resolve a backend from a name, device spec, or Backend instance."""
    if isinstance(value, Backend):
        return value
    if isinstance(value, DeviceSpec):
        return Backend(value)
    if isinstance(value, str):
        return Backend(get_device(value))
    raise UnsupportedBackendError(f"cannot interpret {value!r} as a backend")


def list_backends() -> Tuple[Backend, ...]:
    """One backend per registered device, in Table 2 order."""
    return tuple(Backend(spec) for spec in list_devices())
