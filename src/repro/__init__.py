"""repro: portable unified (simulated-)GPU singular value computation.

Python reproduction of *"Performant Unified GPU Kernels for Portable
Singular Value Computation Across Hardware and Precision"* (Ringoot,
Alomairy, Churavy, Edelman - ICPP 2025).

Quickstart
----------
Construct a :class:`Solver` once — backend, precision and hyperparameters
are resolved and validated up front — then reuse the handle for every
solve, prediction, and plan:

>>> import numpy as np, repro
>>> solver = repro.Solver(backend="h100", precision="fp32")
>>> A = np.random.default_rng(0).standard_normal((256, 256))
>>> sv = solver.solve(A)            # square: two-stage QR driver
>>> sv.shape
(256,)

:meth:`Solver.solve` dispatches on shape — ``(m, n)`` rectangular inputs
run the tall-QR preprocessing and ``(batch, n, n)`` stacks the batched
driver — while :meth:`Solver.svd` returns full singular vectors and
:meth:`Solver.predict` prices arbitrary sizes analytically (single-GPU,
``batch=b`` - the batched launch graph, one grid covering all problems
per step - multi-stream lookahead overlap with ``streams=k``,
``ngpu=g`` - the launch graph sharded across devices with explicit comm
nodes - ``nodes=m`` - cluster execution over a two-tier ``m x g``
fabric, priced by the discrete-event simulator
(:func:`repro.sim.simulate_events`) so queueing and link contention are
modeled - or ``out_of_core=True`` - the graph rewritten to stream
through a bounded device window with explicit host-link transfer
nodes).  Every axis **composes**: ``predict(n, batch=b, ngpu=g,
streams=k, out_of_core=True)`` runs one emit → partition → rewrite →
price pipeline.  :meth:`Solver.tune` searches that whole space
analytically — kernel hyperparameters × ``streams`` × ``ngpu`` ×
window budget, plus the ``nodes`` cluster axis on request — and
returns a ranked :class:`repro.tuning.TunePlan` whose winner is never
analytically slower than the untuned default.
``method="jacobi"`` runs the one-sided Jacobi cross-check through the
same handle.

Every driver is backed by one **stage-graph execution engine** (see
``ARCHITECTURE.md``): the problem shape is emitted once as a declarative
:class:`repro.sim.LaunchGraph` of kernel launches, which the
:class:`repro.sim.NumericExecutor` replays in NumPy and the
:class:`repro.sim.AnalyticExecutor` prices without touching data — so the
numbers :meth:`Solver.predict` reports charge, by construction, exactly
the launches a real solve performs.  For repeated same-shape solves,
:meth:`Solver.plan` returns a reusable :class:`SvdPlan` that caches the
emitted graph, the padded workspace and the launch-price table, so
:meth:`~SvdPlan.execute` replays with zero schedule-construction cost:

>>> plan = solver.plan((128, 128))
>>> sv128 = plan.execute(A[:128, :128])

For request traffic rather than library calls, :meth:`Solver.serve`
wraps the handle in an async :class:`repro.serve.SvdService`: submitted
matrices are grouped by shape class, priced by the analytic oracle
*before* dispatch (EDF ordering, SLO shedding via :class:`ShedError`,
out-of-core spilling) and executed through the batched graph replay —
bitwise identical to synchronous solves.

Pass ``return_info=True`` to any solve for the simulated per-stage timing
report.  The historical free functions (:func:`svdvals`,
:func:`svdvals_rect`, :func:`svdvals_batched`, :func:`svd_full`,
:func:`predict`, :func:`jacobi_svdvals`, ...) remain available as thin
shims over a one-shot ``Solver`` — no migration required, but new code
should hold a handle.
"""

from .backends import Backend, DeviceMatrix, DeviceSpec, list_backends, resolve_backend
from .config import SolveConfig
from .core import (
    SVDInfo,
    SVDResult,
    jacobi_svdvals,
    predict_batched,
    svd_full,
    svdvals,
    svdvals_batched,
    svdvals_rect,
)
from .errors import (
    CapacityError,
    ConvergenceError,
    InvalidParamsError,
    ReproError,
    ShapeError,
    ShedError,
    UnsupportedBackendError,
    UnsupportedPrecisionError,
    WindowOverflowError,
)
from .precision import Precision, resolve_precision
from .sim import (
    REFERENCE_PARAMS,
    KernelParams,
    Topology,
    predict,
    predict_multi_gpu,
    predict_out_of_core,
)
from .solver import Solver, SvdPlan
from .serve import ServiceStats, SvdService

__version__ = "1.10.0"

__all__ = [
    # unified handle surface (the recommended API)
    "Solver",
    "SvdPlan",
    "SolveConfig",
    # serving layer
    "ServiceStats",
    "SvdService",
    # configuration axes
    "Backend",
    "DeviceMatrix",
    "DeviceSpec",
    "KernelParams",
    "Precision",
    "REFERENCE_PARAMS",
    "Topology",
    "list_backends",
    "resolve_backend",
    "resolve_precision",
    # result types
    "SVDInfo",
    "SVDResult",
    # errors
    "CapacityError",
    "ConvergenceError",
    "InvalidParamsError",
    "ReproError",
    "ShapeError",
    "ShedError",
    "UnsupportedBackendError",
    "UnsupportedPrecisionError",
    "WindowOverflowError",
    # legacy one-shot shims (delegate to Solver)
    "jacobi_svdvals",
    "predict",
    "predict_batched",
    "predict_multi_gpu",
    "predict_out_of_core",
    "svd_full",
    "svdvals",
    "svdvals_batched",
    "svdvals_rect",
    "__version__",
]
