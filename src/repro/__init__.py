"""repro: portable unified (simulated-)GPU singular value computation.

Python reproduction of *"Performant Unified GPU Kernels for Portable
Singular Value Computation Across Hardware and Precision"* (Ringoot,
Alomairy, Churavy, Edelman - ICPP 2025).

Quickstart
----------
>>> import numpy as np, repro
>>> A = np.random.default_rng(0).standard_normal((256, 256))
>>> sv = repro.svdvals(A, backend="h100", precision="fp32")
>>> sv.shape
(256,)

The unified :func:`svdvals` runs the paper's two-stage QR reduction with
numerically real tile kernels on a simulated GPU; pass
``return_info=True`` for simulated per-stage timing, or use
:func:`repro.sim.predict` to price arbitrary sizes analytically.
"""

from .backends import Backend, DeviceMatrix, DeviceSpec, list_backends, resolve_backend
from .core import (
    SVDInfo,
    SVDResult,
    jacobi_svdvals,
    predict_batched,
    svd_full,
    svdvals,
    svdvals_batched,
    svdvals_rect,
)
from .errors import (
    CapacityError,
    ConvergenceError,
    InvalidParamsError,
    ReproError,
    ShapeError,
    UnsupportedBackendError,
    UnsupportedPrecisionError,
)
from .precision import Precision, resolve_precision
from .sim import (
    REFERENCE_PARAMS,
    KernelParams,
    predict,
    predict_multi_gpu,
    predict_out_of_core,
)

__version__ = "1.0.0"

__all__ = [
    "Backend",
    "CapacityError",
    "ConvergenceError",
    "DeviceMatrix",
    "DeviceSpec",
    "InvalidParamsError",
    "KernelParams",
    "Precision",
    "REFERENCE_PARAMS",
    "ReproError",
    "SVDInfo",
    "SVDResult",
    "ShapeError",
    "UnsupportedBackendError",
    "UnsupportedPrecisionError",
    "__version__",
    "list_backends",
    "predict",
    "predict_multi_gpu",
    "predict_out_of_core",
    "jacobi_svdvals",
    "svd_full",
    "svdvals_rect",
    "svdvals_batched",
    "predict_batched",
    "resolve_backend",
    "resolve_precision",
    "svdvals",
]
