"""SVD-as-a-service: async queueing, dynamic batching, priced admission.

The serving layer sits atop the planner (see ARCHITECTURE.md): requests
enter an asyncio queue with bounded depth
(:class:`~repro.serve.SvdService`), a dynamic batcher groups them by
shape class (padded tile geometry x backend x precision), and an
admission controller prices every candidate batch with the analytic
oracle *before* it dispatches - enabling EDF ordering over predicted
completion, SLO-based shedding (:class:`~repro.errors.ShedError`) and
out-of-core spilling instead of rejection.  Execution reuses the
graph-native batched replay, so served results are bitwise identical to
synchronous :meth:`repro.Solver.solve` calls.

:mod:`repro.serve.replay` adds seeded traffic generators and a
virtual-clock simulator of the same policy stack for deterministic
benchmarking.
"""

from .admission import AdmissionController, AdmissionDecision
from .batcher import Batch, BatchRunner, DynamicBatcher, SvdRequest
from .metrics import MetricsCollector, ServiceStats
from .queue import SvdService
from .replay import TraceRequest, bursty_trace, poisson_trace, simulate_service

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "Batch",
    "BatchRunner",
    "DynamicBatcher",
    "MetricsCollector",
    "ServiceStats",
    "SvdRequest",
    "SvdService",
    "TraceRequest",
    "bursty_trace",
    "poisson_trace",
    "simulate_service",
]
