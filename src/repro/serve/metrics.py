"""Per-request and per-batch serving accounting.

:class:`MetricsCollector` is the mutable tally the service and the
trace simulator write into; :class:`ServiceStats` is its immutable
snapshot - the one user-facing report of a serving run.  Everything is
plain arithmetic over recorded events, shared verbatim between the live
asyncio service (wall-clock times) and the virtual-clock simulator
(deterministic predicted times), which is what makes the serving
benchmark reproducible enough to regression-gate.

``predicted_s`` vs ``replayed_s``: admission prices a batch *before*
dispatch, the runner prices the *executed* graph after.  Both come from
the same analytic oracle, so they agree unless the executed graph
deviates from the admitted plan - a persistent gap flags a planner bug,
and the tests pin the two together.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

__all__ = ["MetricsCollector", "ServiceStats"]


@dataclass(frozen=True)
class ServiceStats:
    """Immutable snapshot of a serving run's accounting."""

    #: Requests accepted into the queue.
    submitted: int
    #: Requests that returned singular values.
    completed: int
    #: Requests shed by admission control (each saw a ``ShedError``).
    shed: int
    #: Batches dispatched to the device.
    batches: int
    #: Dispatched batches that ran out-of-core (spilled past the budget).
    spilled_batches: int
    #: Mean requests per dispatched batch.
    mean_batch_size: float
    #: ``mean_batch_size / max_batch`` - how full batches ran.
    occupancy: float
    #: Mean seconds a completed request spent queued before dispatch.
    mean_queue_wait_s: float
    #: Median submit-to-result latency of completed requests.
    p50_latency_s: float
    #: 99th-percentile submit-to-result latency of completed requests.
    p99_latency_s: float
    #: Total admission-predicted service seconds across batches.
    predicted_s: float
    #: Total analytic seconds of the executed graphs.
    replayed_s: float
    #: Completed requests that met their SLO (no-SLO requests count).
    slo_met: int
    #: SLO-meeting completions per second of the run's span.
    goodput_rps: float
    #: Batched-graph memo hits/misses (the serving plan cache).
    graph_cache_hits: int
    graph_cache_misses: int
    #: Admission price memo hits/misses (per shape class x count).
    price_cache_hits: int
    price_cache_misses: int

    def summary(self) -> str:
        """Multi-line human-readable report (used by the demo/benchmark)."""
        lines = [
            f"requests   submitted={self.submitted} "
            f"completed={self.completed} shed={self.shed} "
            f"slo_met={self.slo_met}",
            f"batches    dispatched={self.batches} "
            f"spilled={self.spilled_batches} "
            f"mean_size={self.mean_batch_size:.2f} "
            f"occupancy={self.occupancy:.0%}",
            f"latency    p50={self.p50_latency_s * 1e3:.3f} ms  "
            f"p99={self.p99_latency_s * 1e3:.3f} ms  "
            f"mean_wait={self.mean_queue_wait_s * 1e3:.3f} ms",
            f"throughput goodput={self.goodput_rps:.1f} req/s  "
            f"predicted={self.predicted_s * 1e3:.3f} ms  "
            f"replayed={self.replayed_s * 1e3:.3f} ms",
            f"caches     graph={self.graph_cache_hits}h/"
            f"{self.graph_cache_misses}m  "
            f"price={self.price_cache_hits}h/{self.price_cache_misses}m",
        ]
        return "\n".join(lines)


class MetricsCollector:
    """Mutable event tally behind :class:`ServiceStats`."""

    def __init__(self) -> None:
        """Start all counters at zero."""
        self.submitted = 0
        self.completed = 0
        self.shed = 0
        self.batches = 0
        self.spilled_batches = 0
        self.batch_sizes: List[int] = []
        self.queue_waits: List[float] = []
        self.latencies: List[float] = []
        self.predicted_s = 0.0
        self.replayed_s = 0.0
        self.slo_met = 0
        self.t_first_submit: Optional[float] = None
        self.t_last_done: Optional[float] = None

    def record_submit(self, now: float) -> None:
        """One request accepted into the queue at ``now``."""
        self.submitted += 1
        if self.t_first_submit is None or now < self.t_first_submit:
            self.t_first_submit = now

    def record_shed(self) -> None:
        """One request shed by admission control."""
        self.shed += 1

    def record_batch(
        self, size: int, predicted_s: float, replayed_s: float,
        out_of_core: bool,
    ) -> None:
        """One batch dispatched to the device."""
        self.batches += 1
        self.batch_sizes.append(size)
        self.predicted_s += predicted_s
        self.replayed_s += replayed_s
        if out_of_core:
            self.spilled_batches += 1

    def record_done(
        self, wait_s: float, latency_s: float, ok: bool, now: float
    ) -> None:
        """One request completed (``ok`` = within its SLO, or no SLO)."""
        self.completed += 1
        self.queue_waits.append(wait_s)
        self.latencies.append(latency_s)
        if ok:
            self.slo_met += 1
        if self.t_last_done is None or now > self.t_last_done:
            self.t_last_done = now

    def snapshot(
        self, max_batch: int, cache_stats: Optional[Dict[str, int]] = None
    ) -> ServiceStats:
        """Freeze the tally into a :class:`ServiceStats`."""
        caches = {
            "graph_cache_hits": 0, "graph_cache_misses": 0,
            "price_cache_hits": 0, "price_cache_misses": 0,
        }
        if cache_stats:
            caches.update(cache_stats)
        mean_size = (
            float(np.mean(self.batch_sizes)) if self.batch_sizes else 0.0
        )
        elapsed = 0.0
        if self.t_first_submit is not None and self.t_last_done is not None:
            elapsed = self.t_last_done - self.t_first_submit
        return ServiceStats(
            submitted=self.submitted,
            completed=self.completed,
            shed=self.shed,
            batches=self.batches,
            spilled_batches=self.spilled_batches,
            mean_batch_size=mean_size,
            occupancy=mean_size / max_batch if max_batch > 0 else 0.0,
            mean_queue_wait_s=(
                float(np.mean(self.queue_waits)) if self.queue_waits else 0.0
            ),
            p50_latency_s=(
                float(np.percentile(self.latencies, 50))
                if self.latencies else 0.0
            ),
            p99_latency_s=(
                float(np.percentile(self.latencies, 99))
                if self.latencies else 0.0
            ),
            predicted_s=self.predicted_s,
            replayed_s=self.replayed_s,
            slo_met=self.slo_met,
            goodput_rps=self.slo_met / elapsed if elapsed > 0 else 0.0,
            **caches,
        )
