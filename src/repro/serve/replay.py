"""Deterministic traffic replay: seeded traces, virtual-clock serving.

Two pieces, both numerics-free:

* trace generators - :func:`poisson_trace` (memoryless arrivals) and
  :func:`bursty_trace` (ON/OFF modulated Poisson), seeded through
  :func:`numpy.random.default_rng` so a trace is a pure function of its
  arguments;
* :func:`simulate_service` - a discrete-event simulation of the serving
  pipeline (batcher -> admission -> device) on a *virtual* clock where
  batch service time equals the admission oracle's prediction.  It
  reuses the real :class:`~repro.serve.batcher.DynamicBatcher`,
  :class:`~repro.serve.admission.AdmissionController` and
  :class:`~repro.serve.metrics.MetricsCollector` - only the asyncio
  plumbing and the numeric replay are replaced - so the policy being
  measured is the policy that serves.

Because every quantity is analytic, the resulting
:class:`~repro.serve.ServiceStats` is bit-for-bit reproducible across
machines: that is what lets the serving benchmark commit latency
baselines to the CI regression gate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..errors import InvalidParamsError
from ..tuning.planner import shape_class
from .admission import AdmissionController
from .batcher import DynamicBatcher, SvdRequest
from .metrics import MetricsCollector, ServiceStats

__all__ = [
    "TraceRequest",
    "bursty_trace",
    "poisson_trace",
    "simulate_service",
]


@dataclass(frozen=True)
class TraceRequest:
    """One arrival of a synthetic trace (time, problem size, SLO)."""

    t: float
    n: int
    slo_s: Optional[float] = None
    priority: int = 0


def poisson_trace(
    num: int,
    rate_hz: float,
    ns: Sequence[int] = (128,),
    slo_s: Optional[float] = None,
    seed: int = 0,
) -> List[TraceRequest]:
    """``num`` Poisson arrivals at ``rate_hz``, sizes drawn from ``ns``."""
    if num < 0:
        raise InvalidParamsError(f"need a non-negative count, got {num}")
    if rate_hz <= 0:
        raise InvalidParamsError(f"need a positive rate, got {rate_hz}")
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(1.0 / rate_hz, size=num)
    times = np.cumsum(gaps)
    sizes = rng.choice(np.asarray(list(ns)), size=num)
    return [
        TraceRequest(t=float(t), n=int(n), slo_s=slo_s)
        for t, n in zip(times, sizes)
    ]


def bursty_trace(
    num: int,
    rate_on_hz: float,
    ns: Sequence[int] = (128,),
    mean_on_s: float = 0.05,
    mean_off_s: float = 0.05,
    rate_off_hz: float = 0.0,
    slo_s: Optional[float] = None,
    seed: int = 0,
) -> List[TraceRequest]:
    """ON/OFF modulated Poisson arrivals (bursts, then silence).

    The source alternates exponentially-distributed ON periods (arrival
    rate ``rate_on_hz``) and OFF periods (rate ``rate_off_hz``, usually
    0); sizes are drawn from ``ns``.  Peak rate therefore exceeds the
    mean rate by roughly ``(mean_on_s + mean_off_s) / mean_on_s`` - the
    workload that separates a latency-bounded batcher from a naive one.
    """
    if num < 0:
        raise InvalidParamsError(f"need a non-negative count, got {num}")
    if rate_on_hz <= 0:
        raise InvalidParamsError(f"need a positive ON rate, got {rate_on_hz}")
    if mean_on_s <= 0 or mean_off_s <= 0:
        raise InvalidParamsError("need positive mean ON/OFF durations")
    rng = np.random.default_rng(seed)
    out: List[TraceRequest] = []
    t = 0.0
    on = True
    period_end = float(rng.exponential(mean_on_s))
    while len(out) < num:
        rate = rate_on_hz if on else rate_off_hz
        if rate <= 0:
            t = period_end
        else:
            t += float(rng.exponential(1.0 / rate))
            if t < period_end:
                n = int(rng.choice(np.asarray(list(ns))))
                out.append(TraceRequest(t=t, n=n, slo_s=slo_s))
                continue
            t = period_end
        on = not on
        period_end = t + float(
            rng.exponential(mean_on_s if on else mean_off_s)
        )
    return out


def simulate_service(
    trace: Sequence[TraceRequest],
    solver,
    max_batch: int = 16,
    max_wait_s: float = 0.002,
    mem_budget_gb: Optional[float] = None,
) -> ServiceStats:
    """Replay a trace through the serving policy on a virtual clock.

    One simulated device serves batches back to back; a batch's service
    time is its admission-predicted seconds (``replayed_s`` therefore
    equals ``predicted_s`` here by construction).  Arrivals, batching
    deadlines, EDF ordering, SLO shedding and out-of-core spills all
    follow the live service's code paths, so the returned
    :class:`~repro.serve.ServiceStats` measures the real policy -
    deterministically.
    """
    config = solver.config
    batcher = DynamicBatcher(max_batch, max_wait_s)
    admission = AdmissionController(
        config,
        mem_budget_bytes=(
            mem_budget_gb * 2**30 if mem_budget_gb is not None else None
        ),
    )
    metrics = MetricsCollector()

    arrivals = sorted(trace, key=lambda r: r.t)
    i = 0
    seq = 0
    t_free = 0.0
    while i < len(arrivals) or len(batcher):
        ready_t = batcher.next_deadline()
        if ready_t is None:
            # queue empty: fast-forward to the next arrival
            tr = arrivals[i]
            seq += 1
            req = SvdRequest(
                seq=seq, n=tr.n, cls=shape_class(tr.n, config),
                t_submit=tr.t, slo_s=tr.slo_s, priority=tr.priority,
            )
            batcher.add(req)
            metrics.record_submit(tr.t)
            i += 1
            continue
        t_dispatch = max(ready_t, t_free)
        if i < len(arrivals) and arrivals[i].t <= t_dispatch:
            # an arrival lands before the next dispatch instant
            tr = arrivals[i]
            seq += 1
            req = SvdRequest(
                seq=seq, n=tr.n, cls=shape_class(tr.n, config),
                t_submit=tr.t, slo_s=tr.slo_s, priority=tr.priority,
            )
            batcher.add(req)
            metrics.record_submit(tr.t)
            i += 1
            continue
        batches = batcher.pop_ready(t_dispatch)
        batches.sort(key=lambda b: b.earliest_deadline)
        for batch in batches:
            t_start = max(t_dispatch, t_free)
            decision = admission.admit(batch, t_start)
            for _req, _err in decision.shed:
                metrics.record_shed()
            if not decision.admitted:
                continue
            t_done = t_start + decision.predicted_s
            t_free = t_done
            metrics.record_batch(
                len(decision.admitted), decision.predicted_s,
                decision.predicted_s, decision.out_of_core,
            )
            for req in decision.admitted:
                ok = req.slo_s is None or (t_done - req.t_submit) <= req.slo_s
                metrics.record_done(
                    t_start - req.t_submit, t_done - req.t_submit, ok, t_done
                )
    return metrics.snapshot(
        max_batch=max_batch,
        cache_stats={
            "price_cache_hits": admission.price_hits,
            "price_cache_misses": admission.price_misses,
        },
    )
