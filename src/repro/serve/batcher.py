"""Dynamic batching: group compatible requests, run them as one graph.

The serving layer's throughput comes from the graph-native ``batch=``
axis (PR 2): many small SVDs in one batched :class:`~repro.sim.graph.
LaunchGraph` amortize per-launch overhead across problems.  Two requests
are *compatible* when they share a :class:`~repro.tuning.ShapeClass` -
the padded tile geometry ``(npad, nbt, tilesize)`` under the service's
backend x precision config.  Within a class the tile engine zero-pads
every problem to the same ``npad`` and runs the identical kernel
sequence, so a heterogeneous-``n`` batch can execute as one graph
emitted at ``npad`` while staying bitwise identical to per-request
:meth:`repro.Solver.solve` calls (each request's true ``n`` only
truncates its padded value vector, exactly as the square driver does).

:class:`DynamicBatcher` is the pure grouping policy (no asyncio, no
numerics), shared by the live :class:`~repro.serve.SvdService` and the
deterministic simulator in :mod:`repro.serve.replay`; it trades latency
for occupancy through the ``max_batch`` / ``max_wait_s`` knobs.
:class:`BatchRunner` is the execution backend: emit (or reuse) the
batched graph of a shape class, optionally rewrite it out-of-core, and
replay it through the :class:`~repro.sim.graph.NumericExecutor`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..config import SolveConfig
from ..core.batched import emit_batched_graph
from ..core.svd import _rescale_factor
from ..errors import InvalidParamsError
from ..sim.graph import LaunchGraph, NumericExecutor
from ..tuning.planner import ShapeClass

__all__ = ["Batch", "BatchRunner", "DynamicBatcher", "SvdRequest"]


@dataclass(eq=False)
class SvdRequest:
    """One queued singular-value request.

    ``A`` is the original (unpadded, unscaled) square matrix; it is
    ``None`` in the trace-driven simulator, where only timing is modeled.
    ``future`` is the caller's :class:`asyncio.Future` in the live
    service and ``None`` in the simulator.  Identity (not value)
    equality keeps requests hashable bookkeeping tokens even though they
    carry arrays.
    """

    seq: int
    n: int
    cls: ShapeClass
    t_submit: float
    slo_s: Optional[float] = None
    priority: int = 0
    A: Optional[np.ndarray] = field(default=None, repr=False)
    future: Optional[object] = field(default=None, repr=False)

    @property
    def deadline(self) -> float:
        """Absolute completion deadline (``inf`` for best-effort)."""
        if self.slo_s is None:
            return float("inf")
        return self.t_submit + self.slo_s


@dataclass
class Batch:
    """A shape-class-homogeneous group popped from the batcher."""

    cls: ShapeClass
    requests: List[SvdRequest]

    @property
    def size(self) -> int:
        """Number of requests in the batch."""
        return len(self.requests)

    @property
    def earliest_deadline(self) -> float:
        """Minimum absolute deadline across the batch (EDF sort key)."""
        return min(r.deadline for r in self.requests)


class DynamicBatcher:
    """Group pending requests by shape class; flush on size or age.

    A class's batch becomes *ready* when it holds ``max_batch`` requests
    (ready at the time the batch filled) or when its oldest request has
    waited ``max_wait_s`` - whichever comes first.  Within a class,
    requests pop in ``(-priority, seq)`` order, so FIFO is preserved at
    equal priority and higher priority jumps the line without starving
    accounting (seq ties break deterministically).  The batcher holds no
    clock of its own: callers pass ``now``, which is what lets the live
    asyncio service and the virtual-clock simulator share this policy.
    """

    def __init__(self, max_batch: int = 16, max_wait_s: float = 0.002) -> None:
        """Validate and pin the batching knobs."""
        if max_batch < 1:
            raise InvalidParamsError(
                f"max_batch must be a positive request count, got {max_batch}"
            )
        if max_wait_s < 0:
            raise InvalidParamsError(
                f"max_wait_s must be non-negative, got {max_wait_s}"
            )
        self.max_batch = max_batch
        self.max_wait_s = max_wait_s
        self._pending: Dict[ShapeClass, List[SvdRequest]] = {}

    def __len__(self) -> int:
        """Total pending requests across all classes."""
        return sum(len(v) for v in self._pending.values())

    def add(self, req: SvdRequest) -> None:
        """Enqueue one request under its shape class."""
        self._pending.setdefault(req.cls, []).append(req)

    def _ready_time(self, reqs: List[SvdRequest]) -> float:
        """Absolute time at which this class's next batch is ready."""
        age_ready = min(r.t_submit for r in reqs) + self.max_wait_s
        if len(reqs) >= self.max_batch:
            # the batch filled when its latest member arrived; it may
            # still be the age deadline that fires first
            return min(age_ready, max(r.t_submit for r in reqs))
        return age_ready

    def next_deadline(self) -> Optional[float]:
        """Earliest absolute time any class has a ready batch.

        ``None`` when nothing is pending.  The live service sleeps until
        this instant (or a new submit); the simulator advances its
        virtual clock to it.
        """
        times = [self._ready_time(reqs) for reqs in self._pending.values()]
        return min(times) if times else None

    def pop_ready(self, now: float, force: bool = False) -> List[Batch]:
        """Pop every batch that is ready at ``now`` (all of them if forced).

        Each popped batch takes the top ``max_batch`` requests of its
        class in ``(-priority, seq)`` order; a class drains through
        repeated pops once ready.  ``force=True`` flushes everything
        regardless of readiness (service shutdown).
        """
        out: List[Batch] = []
        for cls in list(self._pending):
            while True:
                reqs = self._pending.get(cls)
                if not reqs:
                    break
                if not force and self._ready_time(reqs) > now:
                    break
                reqs.sort(key=lambda r: (-r.priority, r.seq))
                take = reqs[: self.max_batch]
                rest = reqs[self.max_batch:]
                if rest:
                    self._pending[cls] = rest
                else:
                    del self._pending[cls]
                out.append(Batch(cls=cls, requests=take))
        return out


class BatchRunner:
    """Execute one admitted batch as a single batched launch graph.

    The graph is emitted at the class's ``npad`` (so heterogeneous
    ``n`` within the class share it) and memoized per ``(npad, count,
    streams, out_of_core)`` - the serving analogue of
    :class:`repro.SvdPlan`'s precomputed graph, with hit counters
    surfaced in :class:`~repro.serve.ServiceStats`.  Numerics mirror the
    square driver exactly: the rescale factor comes from each request's
    *original* matrix, padding is zero-fill to ``npad``, and each
    request receives its leading ``n`` values scaled back.
    """

    def __init__(self, config: SolveConfig) -> None:
        """Pin the resolved config and storage precision for the service."""
        self.config = config
        self.storage = config.require_precision("serve")
        compute = config.backend.compute_precision(self.storage)
        self._compute_dtype = (
            compute.dtype if compute is not self.storage else None
        )
        self._graphs: Dict[Tuple, LaunchGraph] = {}
        self.graph_hits = 0
        self.graph_misses = 0

    def graph_for(
        self,
        cls: ShapeClass,
        count: int,
        streams: int = 1,
        out_of_core: bool = False,
        budget_bytes: Optional[float] = None,
    ) -> LaunchGraph:
        """The memoized batched launch graph of one (class, count) pair."""
        key = (cls, count, streams, out_of_core)
        graph = self._graphs.get(key)
        if graph is not None:
            self.graph_hits += 1
            return graph
        self.graph_misses += 1
        graph = emit_batched_graph(cls.npad, count, self.config, streams=streams)
        if out_of_core:
            from ..sim.outofcore import rewrite_out_of_core

            graph = rewrite_out_of_core(
                graph, self.config, self.storage, budget_bytes=budget_bytes
            )
        self._graphs[key] = graph
        return graph

    def run(
        self,
        requests: List[SvdRequest],
        streams: int = 1,
        out_of_core: bool = False,
        budget_bytes: Optional[float] = None,
        price: Optional[Callable[[LaunchGraph], float]] = None,
    ) -> Tuple[List[np.ndarray], float]:
        """Replay one admitted batch; return per-request values and price.

        Returns ``(values, replayed_s)`` where ``values[i]`` is request
        ``i``'s descending singular values (float64, length ``n_i``) and
        ``replayed_s`` is the analytic price of the executed graph via
        ``price`` (0.0 when no pricer is supplied).  Bitwise identity
        with per-request :meth:`repro.Solver.solve`: same storage
        rounding, same rescale factor (computed on the original matrix),
        same padded kernel sequence, same truncation.
        """
        cls = requests[0].cls
        graph = self.graph_for(
            cls, len(requests), streams=streams, out_of_core=out_of_core,
            budget_bytes=budget_bytes,
        )
        npad = cls.npad
        W = np.zeros((len(requests), npad, npad), dtype=self.storage.dtype)
        scales: List[float] = []
        for p, req in enumerate(requests):
            a = req.A
            scale = (
                _rescale_factor(a, self.storage)
                if self.config.rescale else 1.0
            )
            scales.append(scale)
            W[p, : req.n, : req.n] = a if scale == 1.0 else a * scale

        ex = NumericExecutor(
            W, cls.tilesize, self.storage.eps, session=None,
            compute_dtype=self._compute_dtype, storage=self.storage,
            stage3=self.config.stage3,
        )
        ex.run(graph)

        values: List[np.ndarray] = []
        for p, req in enumerate(requests):
            vals = ex.values_by_problem[p][: req.n].copy()
            if scales[p] != 1.0:
                vals /= scales[p]
            values.append(vals)
        replayed_s = price(graph) if price is not None else 0.0
        return values, replayed_s
