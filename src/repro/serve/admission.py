"""Planner-driven admission control: price before you dispatch.

The serving layer's core invariant (see ARCHITECTURE.md): **no batch
reaches the device unpriced**.  The analytic oracle behind
:meth:`repro.Solver.predict` is cheap enough to sit inside the admission
loop - the PPT idea of an analytic model as an online planner - so
before a batch dispatches the controller knows its predicted service
seconds and can

* order ready batches EDF over *predicted completion* (not arrival),
* shed every request whose predicted completion already violates its
  SLO - the caller gets a :class:`~repro.errors.ShedError` immediately
  instead of a doomed wait,
* spill a batch whose in-core footprint exceeds the memory budget to
  ``out_of_core=True`` execution instead of rejecting it, and
* shed outright (still a :class:`~repro.errors.ShedError`, carrying the
  underlying :class:`~repro.errors.CapacityError` as its cause) only
  when the problem cannot run even out-of-core.

Pricing is memoized per ``(shape class, count)`` - the same shape-class
collapsing that keys the tune/plan caches - so steady-state traffic
admits without re-running the oracle.  Since the struct-of-arrays
pricing PR the oracle itself is *bind-and-price*: in-core single-stream
batches bind the memoized chain skeleton of their shape family
(:func:`repro.core.batched.bind_batched_table`) instead of emitting
launch nodes, so a shed cascade that re-prices a shrinking batch each
round costs one O(unique keys) rebind per round rather than a full
re-emission - the old O(shed^2) node churn is gone
(:meth:`AdmissionController.bind_stats` exposes the proof counters).
With ``tune=True`` the controller additionally consults
:meth:`repro.Solver.tune` once per shape class to pick the ``streams``
axis for in-core batches, restricted to candidates sharing the handle's
kernel parameters so served numerics stay bitwise identical to
synchronous solves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..config import SolveConfig
from ..errors import CapacityError, InvalidParamsError, ShedError
from ..sim.graph import AnalyticExecutor, LaunchGraph
from ..tuning.planner import ShapeClass
from .batcher import Batch, SvdRequest

__all__ = ["AdmissionController", "AdmissionDecision", "PricedBatch"]

#: Working-set factor of the capacity model (matches
#: ``repro.core.batched.check_batched_capacity`` and the out-of-core
#: window accounting).
WORKING_FACTOR = 1.25


@dataclass(frozen=True)
class PricedBatch:
    """The oracle's verdict on one candidate ``(class, count)`` batch."""

    predicted_s: float
    out_of_core: bool
    streams: int


@dataclass
class AdmissionDecision:
    """Outcome of admitting one batch: who runs, who is shed, at what price."""

    cls: ShapeClass
    admitted: List[SvdRequest]
    shed: List[Tuple[SvdRequest, ShedError]]
    predicted_s: float
    out_of_core: bool
    streams: int


class AdmissionController:
    """Price candidate batches analytically and decide admission."""

    def __init__(
        self,
        config: SolveConfig,
        mem_budget_bytes: Optional[float] = None,
        tune: bool = False,
        tune_batch: int = 16,
        nodes: int = 1,
        topology=None,
    ) -> None:
        """Bind the oracle to a resolved config and a memory budget.

        ``mem_budget_bytes`` defaults to the backend's device memory;
        smaller values force earlier out-of-core spills (useful in tests
        and on shared devices).  ``tune=True`` enables the per-class
        ``streams`` consultation of :meth:`repro.Solver.tune`, priced at
        ``tune_batch`` problems per class.  ``nodes >= 2`` prices batches
        against a cluster of that many nodes through the discrete-event
        simulator: the in-core budget scales with the node count (each
        node holds its round-robin sub-batch) but batches beyond it are
        rejected rather than spilled, since out-of-core streaming does
        not compose with multi-node execution.  ``topology=`` is the
        fleet spelling of the same axis (a :class:`repro.Topology`):
        batches are priced through ``Solver.predict(topology=...)``, the
        in-core budget scales with the fleet's total rank count, and -
        exactly like ``nodes >= 2`` - over-budget batches are rejected
        rather than spilled.  Passing both ``topology=`` and ``nodes=``
        raises the conflicting-axes validation error.
        """
        from ..sim.topology import require_no_conflicts
        from ..solver import Solver

        if nodes < 1:
            raise InvalidParamsError(
                f"nodes must be a positive node count, got {nodes}"
            )
        if topology is not None:
            require_no_conflicts(
                topology, nodes=nodes if nodes != 1 else None
            )
            nodes = topology.nodes
        self.topology = topology
        self.nodes = int(nodes)
        self.config = config
        self.storage = config.require_precision("serve")
        self.solver = Solver.from_config(config)
        default_budget = config.backend.device.mem_bytes
        self.mem_budget_bytes = float(
            mem_budget_bytes if mem_budget_bytes is not None else default_budget
        )
        if self.mem_budget_bytes <= 0:
            raise CapacityError(
                f"mem budget must be positive, got {self.mem_budget_bytes}"
            )
        self.tune = tune
        self.tune_batch = tune_batch
        self._prices: Dict[Tuple[ShapeClass, int], PricedBatch] = {}
        self._class_streams: Dict[ShapeClass, int] = {}
        self.price_hits = 0
        self.price_misses = 0
        #: Oracle invocations (one per distinct ``(class, count)``); a
        #: shed cascade increments this once per round, and each of
        #: those rounds is a bound-table rebind, not a re-emission.
        self.reprice_rounds = 0

    def bind_stats(self) -> Dict[str, int]:
        """Bound-structure memo counters behind this controller's oracle.

        The hit/miss/entry counters of
        :func:`repro.sim.table.bound_table_stats`: every admission price
        of an in-core batch binds a memoized structure instead of
        emitting nodes, so after warm-up repeated traffic shows hits
        with no new misses (asserted by ``tests/test_serve.py``).
        """
        from ..sim.table import bound_table_stats

        return bound_table_stats()

    # ------------------------------------------------------------------ #
    # capacity and pricing
    # ------------------------------------------------------------------ #
    def per_problem_bytes(self, cls: ShapeClass) -> float:
        """In-core working-set bytes of one padded problem."""
        return cls.npad * cls.npad * self.storage.sizeof * WORKING_FACTOR

    def capacity_for(self, cls: ShapeClass) -> int:
        """How many problems of a class fit the in-core budget (may be 0).

        With ``nodes >= 2`` the budget is per node and the round-robin
        shard spreads the batch, so capacity scales with the node count;
        with a ``topology=`` fleet every rank holds its weighted shard,
        so capacity scales with the fleet's total device count.
        """
        ranks = self.topology.ngpu if self.topology is not None else self.nodes
        return int(
            self.mem_budget_bytes // self.per_problem_bytes(cls)
        ) * ranks

    def streams_for(self, cls: ShapeClass) -> int:
        """The tuned in-core ``streams`` axis of a shape class.

        Consults :meth:`repro.Solver.tune` (memoized per shape class by
        the planner cache) and picks the fastest candidate that keeps the
        handle's own kernel parameters on one in-core device - the only
        candidates whose execution is bitwise-interchangeable with the
        synchronous solver.  Returns 1 when tuning is disabled or finds
        nothing better.
        """
        if not self.tune:
            return 1
        streams = self._class_streams.get(cls)
        if streams is not None:
            return streams
        plan = self.solver.tune(cls.npad, batch=self.tune_batch)
        streams = 1
        for cand in plan.candidates:  # fastest first
            if (
                cand.params == self.config.params
                and cand.ngpu == 1
                and not cand.out_of_core
            ):
                streams = cand.streams
                break
        self._class_streams[cls] = streams
        return streams

    def price(self, cls: ShapeClass, count: int) -> PricedBatch:
        """Predicted service seconds of ``count`` problems of one class.

        In-core when the batch footprint fits the memory budget, spilled
        to out-of-core otherwise; raises
        :class:`~repro.errors.CapacityError` only when even the
        streaming window cannot hold one problem.
        """
        key = (cls, count)
        hit = self._prices.get(key)
        if hit is not None:
            self.price_hits += 1
            return hit
        self.price_misses += 1
        self.reprice_rounds += 1
        if count <= self.capacity_for(cls):
            streams = self.streams_for(cls)
            if self.topology is not None:
                kwargs = {"topology": self.topology}
            elif self.nodes > 1:
                kwargs = {"nodes": self.nodes}
            else:
                kwargs = {}
            result = self.solver.predict(
                cls.npad, batch=count, streams=streams,
                check_capacity=False, **kwargs
            )
            priced = PricedBatch(
                predicted_s=result.total_s, out_of_core=False, streams=streams
            )
        else:
            if self.topology is not None:
                raise CapacityError(
                    f"batch of {count} problems of class {cls} exceeds the "
                    f"in-core budget across the {self.topology.ngpu} ranks "
                    f"of {self.topology!r}, and out-of-core spilling does "
                    f"not compose with fleet execution"
                )
            if self.nodes > 1:
                raise CapacityError(
                    f"batch of {count} problems of class {cls} exceeds the "
                    f"in-core budget across {self.nodes} nodes, and "
                    f"out-of-core spilling does not compose with "
                    f"multi-node execution"
                )
            result = self.solver.predict(
                cls.npad, batch=count, out_of_core=True,
                oc_budget_gb=self.mem_budget_bytes / 2**30,
            )
            priced = PricedBatch(
                predicted_s=result.total_s, out_of_core=True, streams=1
            )
        self._prices[key] = priced
        return priced

    def price_graph(self, graph: LaunchGraph) -> float:
        """Analytic seconds of an already-built (possibly rewritten) graph."""
        if graph.streams > 1:
            from ..sim.timeline import schedule_streams

            return schedule_streams(
                graph, self.config, self.storage, graph.streams
            ).total_s
        return AnalyticExecutor(self.config, self.storage).run(graph).total_s

    # ------------------------------------------------------------------ #
    # admission
    # ------------------------------------------------------------------ #
    def admit(self, batch: Batch, now: float) -> AdmissionDecision:
        """Decide one batch: price, shed SLO-infeasible requests, re-price.

        Shedding shrinks the batch and therefore its predicted service
        time, so the loop re-prices until the survivors are all
        deadline-feasible (or the batch is empty).  Each round's price
        is an incremental rebind of the shape family's chain skeleton
        (new problem count, same node structure), not a re-emission, so
        a long cascade stays linear in its rounds.  A batch that cannot
        run even out-of-core sheds every member with the underlying
        :class:`~repro.errors.CapacityError` chained as the cause.
        """
        reqs = list(batch.requests)
        shed: List[Tuple[SvdRequest, ShedError]] = []
        priced: Optional[PricedBatch] = None
        while reqs:
            try:
                priced = self.price(batch.cls, len(reqs))
            except CapacityError as exc:
                for r in reqs:
                    err = ShedError(
                        f"request shed: batch of {len(reqs)} problems "
                        f"(npad={batch.cls.npad}, "
                        f"{self.storage.name_lower}) cannot run on "
                        f"{self.config.backend.name} even out-of-core: "
                        f"{exc}",
                        predicted_s=None, slo_s=r.slo_s,
                    )
                    err.__cause__ = exc
                    shed.append((r, err))
                reqs = []
                priced = None
                break
            late = [
                r for r in reqs
                if r.slo_s is not None
                and (now - r.t_submit) + priced.predicted_s > r.slo_s
            ]
            if not late:
                break
            late_ids = {id(r) for r in late}
            for r in late:
                wait = now - r.t_submit
                shed.append((r, ShedError(
                    f"request shed: predicted completion "
                    f"{wait + priced.predicted_s:.6g}s exceeds SLO "
                    f"{r.slo_s:.6g}s (queued {wait:.6g}s, predicted batch "
                    f"service {priced.predicted_s:.6g}s, batch of "
                    f"{len(reqs)}, npad={batch.cls.npad})",
                    predicted_s=priced.predicted_s, slo_s=r.slo_s,
                )))
            reqs = [r for r in reqs if id(r) not in late_ids]
        if priced is None or not reqs:
            return AdmissionDecision(
                cls=batch.cls, admitted=[], shed=shed, predicted_s=0.0,
                out_of_core=False, streams=1,
            )
        return AdmissionDecision(
            cls=batch.cls, admitted=reqs, shed=shed,
            predicted_s=priced.predicted_s, out_of_core=priced.out_of_core,
            streams=priced.streams,
        )
