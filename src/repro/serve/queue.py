"""The asyncio serving front door: bounded queue, batching dispatch loop.

:class:`SvdService` turns a :class:`repro.Solver` into an async
service: ``await service.submit(A, slo_s=..., priority=...)`` returns an
:class:`asyncio.Future` that resolves to the matrix's singular values -
bitwise identical to a synchronous ``solver.solve(A)`` - or raises a
:class:`~repro.errors.ShedError` when admission control sheds the
request.  ``submit`` itself applies backpressure: a bounded semaphore of
``max_depth`` in-flight requests makes over-offered producers await
rather than queue unboundedly.

One background task runs the dispatch loop: sleep until the batcher's
next ready deadline (or a new submit), pop every ready batch, order them
EDF by earliest predicted-completion deadline, admit (price/shed/spill)
and execute each through the shared :class:`~repro.serve.batcher.
BatchRunner`.  Numerics run in the default thread-pool executor so the
event loop keeps accepting submissions while a batch replays.

The wall clock is injectable (``clock=``) for deterministic tests; the
fully virtual-clock path lives in :mod:`repro.serve.replay`.
"""

from __future__ import annotations

import asyncio
import time

from typing import Callable, Optional

import numpy as np

from ..errors import InvalidParamsError, ShapeError
from ..tuning.planner import shape_class
from .admission import AdmissionController
from .batcher import Batch, BatchRunner, DynamicBatcher, SvdRequest
from .metrics import MetricsCollector, ServiceStats

__all__ = ["SvdService"]


class SvdService:
    """Async SVD service over one :class:`repro.Solver` handle.

    Use as an async context manager::

        async with solver.serve(max_batch=8) as service:
            future = await service.submit(A, slo_s=0.05)
            values = await future

    Construction validates the handle (explicit precision, QR method);
    the dispatch task starts on ``__aenter__`` (or :meth:`start`) and
    drains remaining requests on ``__aexit__`` (or :meth:`close`).
    """

    def __init__(
        self,
        solver,
        max_batch: int = 16,
        max_wait_s: float = 0.002,
        max_depth: int = 256,
        mem_budget_gb: Optional[float] = None,
        tune: bool = False,
        nodes: int = 1,
        topology=None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        """Validate the handle and pin the serving knobs.

        ``max_batch`` / ``max_wait_s`` set the batcher's occupancy-vs-
        latency tradeoff, ``max_depth`` bounds in-flight requests
        (backpressure), ``mem_budget_gb`` caps the in-core footprint
        before batches spill out-of-core (default: device memory),
        ``tune=True`` lets admission consult :meth:`repro.Solver.tune`
        per shape class for the streams axis, and ``nodes >= 2`` prices
        admission against a cluster topology through the discrete-event
        simulator (see :class:`~repro.serve.AdmissionController`).
        ``topology=`` is the fleet spelling of the same axis (a
        :class:`repro.Topology`, possibly heterogeneous); it conflicts
        with ``nodes=`` and routes admission pricing through
        ``Solver.predict(topology=...)``.
        """
        config = solver.config
        if config.method != "qr":
            raise InvalidParamsError(
                "serving batches the two-stage QR pipeline; construct "
                "the Solver with method='qr'"
            )
        config.require_precision("serve")
        if max_depth < 1:
            raise InvalidParamsError(
                f"max_depth must be a positive queue bound, got {max_depth}"
            )
        self._config = config
        self._max_batch = max_batch
        self._max_depth = max_depth
        self._clock = clock
        self._batcher = DynamicBatcher(max_batch, max_wait_s)
        self._admission = AdmissionController(
            config,
            mem_budget_bytes=(
                mem_budget_gb * 2**30 if mem_budget_gb is not None else None
            ),
            tune=tune,
            tune_batch=max_batch,
            nodes=nodes,
            topology=topology,
        )
        self._runner = BatchRunner(config)
        self._metrics = MetricsCollector()
        self._seq = 0
        self._task: Optional[asyncio.Task] = None
        self._sem: Optional[asyncio.Semaphore] = None
        self._wake: Optional[asyncio.Event] = None
        self._closing = False

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    async def __aenter__(self) -> "SvdService":
        """Start the dispatch task."""
        self.start()
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        """Drain pending requests and stop the dispatch task."""
        await self.close()

    def start(self) -> None:
        """Create the loop-bound primitives and launch the dispatch task."""
        if self._task is not None:
            raise RuntimeError("service already started")
        self._sem = asyncio.Semaphore(self._max_depth)
        self._wake = asyncio.Event()
        self._closing = False
        self._task = asyncio.get_running_loop().create_task(self._run())

    async def close(self) -> None:
        """Flush every pending request, then stop the dispatch task."""
        if self._task is None:
            return
        self._closing = True
        self._wake.set()
        await self._task
        self._task = None

    @property
    def pending(self) -> int:
        """Requests currently queued (not yet dispatched)."""
        return len(self._batcher)

    def stats(self) -> ServiceStats:
        """Snapshot the service's accounting."""
        return self._metrics.snapshot(
            max_batch=self._max_batch,
            cache_stats={
                "graph_cache_hits": self._runner.graph_hits,
                "graph_cache_misses": self._runner.graph_misses,
                "price_cache_hits": self._admission.price_hits,
                "price_cache_misses": self._admission.price_misses,
            },
        )

    # ------------------------------------------------------------------ #
    # submission
    # ------------------------------------------------------------------ #
    async def submit(
        self,
        A: np.ndarray,
        slo_s: Optional[float] = None,
        priority: int = 0,
    ) -> "asyncio.Future":
        """Enqueue one square matrix; returns the result future.

        Validation (shape, finiteness) happens here, synchronously, so
        malformed inputs fail at the call site instead of poisoning a
        batch.  The call itself blocks only when ``max_depth`` requests
        are already in flight (backpressure); the returned future
        resolves to the descending singular values (float64) or raises
        :class:`~repro.errors.ShedError` if admission sheds the request.
        """
        if self._task is None or self._closing:
            raise RuntimeError("service is not running (use 'async with')")
        A = np.asarray(A)
        if A.ndim != 2 or A.shape[0] != A.shape[1]:
            raise ShapeError(
                f"serving expects square matrices, got shape {A.shape}"
            )
        if A.shape[0] == 0:
            raise ShapeError("empty matrix")
        if self._config.check_finite and not np.all(np.isfinite(A)):
            raise ShapeError("input matrix contains NaN or Inf entries")
        if slo_s is not None and slo_s <= 0:
            raise InvalidParamsError(
                f"slo_s must be a positive deadline, got {slo_s}"
            )
        await self._sem.acquire()
        self._seq += 1
        req = SvdRequest(
            seq=self._seq,
            n=A.shape[0],
            cls=shape_class(A.shape[0], self._config),
            t_submit=self._clock(),
            slo_s=slo_s,
            priority=priority,
            A=A,
            future=asyncio.get_running_loop().create_future(),
        )
        self._batcher.add(req)
        self._metrics.record_submit(req.t_submit)
        self._wake.set()
        return req.future

    # ------------------------------------------------------------------ #
    # dispatch loop
    # ------------------------------------------------------------------ #
    async def _run(self) -> None:
        """Sleep until work is ready, then admit and execute batches."""
        while True:
            deadline = self._batcher.next_deadline()
            if deadline is None and self._closing:
                break
            try:
                if deadline is None:
                    await self._wake.wait()
                else:
                    timeout = max(0.0, deadline - self._clock())
                    await asyncio.wait_for(self._wake.wait(), timeout)
            except asyncio.TimeoutError:
                pass
            self._wake.clear()
            batches = self._batcher.pop_ready(
                self._clock(), force=self._closing
            )
            batches.sort(key=lambda b: b.earliest_deadline)
            for batch in batches:
                await self._dispatch(batch)

    def _resolve(self, req: SvdRequest, result=None, error=None) -> None:
        """Fulfil one request's future and release its queue slot."""
        if not req.future.done():
            if error is not None:
                req.future.set_exception(error)
            else:
                req.future.set_result(result)
        self._sem.release()

    async def _dispatch(self, batch: Batch) -> None:
        """Admit one batch, shed the infeasible, execute the rest."""
        decision = self._admission.admit(batch, self._clock())
        for req, err in decision.shed:
            self._metrics.record_shed()
            self._resolve(req, error=err)
        if not decision.admitted:
            return
        t_start = self._clock()
        loop = asyncio.get_running_loop()
        try:
            values, replayed_s = await loop.run_in_executor(
                None,
                lambda: self._runner.run(
                    decision.admitted,
                    streams=decision.streams,
                    out_of_core=decision.out_of_core,
                    budget_bytes=self._admission.mem_budget_bytes,
                    price=self._admission.price_graph,
                ),
            )
        except Exception as exc:  # pragma: no cover - executor bug surface
            for req in decision.admitted:
                self._resolve(req, error=exc)
            return
        t_done = self._clock()
        self._metrics.record_batch(
            len(decision.admitted), decision.predicted_s, replayed_s,
            decision.out_of_core,
        )
        for req, vals in zip(decision.admitted, values):
            ok = req.slo_s is None or (t_done - req.t_submit) <= req.slo_s
            self._metrics.record_done(
                t_start - req.t_submit, t_done - req.t_submit, ok, t_done
            )
            self._resolve(req, result=vals)
