"""ASCII table / series rendering for the experiment harness.

The benchmark scripts regenerate the paper's tables and figures as plain
text; these helpers keep the formatting consistent (fixed-width columns,
scientific notation for errors, engineering notation for times/ratios).
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional, Sequence

import numpy as np

__all__ = [
    "format_breakdown",
    "format_table",
    "format_seconds",
    "format_ratio",
    "geomean",
]


def geomean(values: Iterable[float]) -> float:
    """Geometric mean (the aggregation used by the paper's Table 4)."""
    vals = [float(v) for v in values]
    if not vals:
        raise ValueError("geomean of empty sequence")
    if any(v <= 0.0 for v in vals):
        raise ValueError("geomean requires positive values")
    return float(np.exp(np.mean(np.log(vals))))


def format_seconds(t: float) -> str:
    """Human-readable time: ``123 us`` / ``4.56 ms`` / ``7.89 s``."""
    if not math.isfinite(t):
        return "n/a"
    if t < 1e-3:
        return f"{t * 1e6:7.1f} us"
    if t < 1.0:
        return f"{t * 1e3:7.2f} ms"
    return f"{t:7.2f} s "


def format_ratio(r: float) -> str:
    """Ratio with adaptive precision (matches the paper's 2-sig-fig style)."""
    if not math.isfinite(r):
        return "n/a"
    if r >= 100:
        return f"{r:.0f}"
    if r >= 10:
        return f"{r:.1f}"
    return f"{r:.2f}"


def format_breakdown(bd, title: Optional[str] = None) -> str:
    """Stage table of a :class:`~repro.sim.TimeBreakdown` with shares.

    Renders the comm-vs-compute split of multi-GPU predictions: every
    stage (including the ``comm`` component of partitioned runs) gets a
    row with its simulated time and share of the total, followed by a
    total row.  Single-device breakdowns simply have no comm row.
    Fleet breakdowns (event-simulated, per-device occupancy attached)
    append one utilization row per device rank — the busy share of the
    makespan, where a straggler device is the one pinned near 100%
    while its peers idle.
    """
    rows = []
    fractions = bd.stage_fractions()
    for stage, share in fractions.items():
        seconds = share * bd.total_s
        rows.append(
            [stage, format_seconds(seconds).strip(), f"{share:6.1%}"]
        )
    rows.append(["total", format_seconds(bd.total_s).strip(), "100.0%"])
    util_of = getattr(bd, "device_utilization", None)
    if util_of is not None:
        for label, util in util_of().items():
            busy = util * bd.total_s
            rows.append(
                [f"util {label}", format_seconds(busy).strip(),
                 f"{util:6.1%}"]
            )
    if title is None:
        gpus = getattr(bd, "ngpu", 1)
        title = f"n={bd.n} stage breakdown" + (
            f" ({gpus} GPUs)" if gpus > 1 else ""
        )
    return format_table(["stage", "time", "share"], rows, title=title)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
    min_width: int = 6,
) -> str:
    """Render a fixed-width ASCII table."""
    cols = len(headers)
    cells: List[List[str]] = [[str(h) for h in headers]]
    for row in rows:
        if len(row) != cols:
            raise ValueError(f"row has {len(row)} cells, expected {cols}")
        cells.append([str(c) for c in row])
    widths = [
        max(min_width, max(len(r[i]) for r in cells)) for i in range(cols)
    ]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
