"""Shared pieces of the experiment harness.

Size grids follow the paper's evaluation: powers of two from 128, with the
vendor chart stopping at 16384 (the 64-bit addressing gap) and the
MAGMA/SLATE chart reaching 32768.  Real-numerics experiments (Table 1) are
bounded by the pure-Python substrate; they default to a reduced grid and
honour ``REPRO_FULL=1`` for the paper's full range.
"""

from __future__ import annotations

import os
from typing import List, Sequence

__all__ = [
    "SIZES_VENDOR",
    "SIZES_HPC",
    "SIZES_TABLE1",
    "SIZES_TABLE3",
    "full_run",
    "table1_sizes",
    "table1_runs",
]

#: Figure 4 grid (vendor libraries stop at 16384).
SIZES_VENDOR: Sequence[int] = (128, 256, 512, 1024, 2048, 4096, 8192, 16384)

#: Figure 3 grid (MAGMA / SLATE reach 32768).
SIZES_HPC: Sequence[int] = SIZES_VENDOR + (32768,)

#: Table 1 grid in the paper.
SIZES_TABLE1_PAPER: Sequence[int] = (64, 256, 1024, 4096, 16384)

#: Table 3 grid.
SIZES_TABLE3: Sequence[int] = (128, 512, 2048, 8192, 32768)

#: Reduced Table 1 grid for the pure-Python numerics substrate.
SIZES_TABLE1_DEFAULT: Sequence[int] = (64, 128, 256)

SIZES_TABLE1 = SIZES_TABLE1_DEFAULT  # backwards-compatible alias


def full_run() -> bool:
    """True when ``REPRO_FULL=1`` requests the paper's full grids."""
    return os.environ.get("REPRO_FULL", "0") not in ("", "0", "false", "no")


def table1_sizes() -> List[int]:
    """Sizes for the accuracy experiment (env-dependent)."""
    if full_run():
        return list(SIZES_TABLE1_PAPER)
    return list(SIZES_TABLE1_DEFAULT)


def table1_runs() -> int:
    """Matrices per (size, distribution): 10 in the paper, 3 by default."""
    return 10 if full_run() else 3
