"""Table 3: hyperparameter sensitivity of the unified kernels.

Reproduces the paper's two parameter studies against the reference
configuration (TILESIZE=32, COLPERBLOCK=32, SPLITK=8):

* ``TILESIZE 64 -> 32``: performance change from shrinking the tile, per
  size - positive means 32 is faster (paper: wins at small sizes, loses at
  32k on three of four device/precision pairs, wins everywhere on MI250
  FP64 because a 64^2 FP64 tile overflows the 16 KB L1);
* ``COLPERBLOCK 32 -> 16``: performance change from shrinking the column
  group - negative means 32 is better (paper: negligible at small sizes,
  increasingly negative at scale, worst on AMD wavefronts).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..report import format_table
from ..sim import KernelParams, predict
from .common import SIZES_TABLE3

__all__ = ["Table3Cell", "run", "render", "main", "CONFIGS"]

#: The four (device, precision) columns of the paper's Table 3.
CONFIGS: Sequence[Tuple[str, str]] = (
    ("h100", "fp32"),
    ("h100", "fp64"),
    ("mi250", "fp32"),
    ("mi250", "fp64"),
)

REFERENCE = KernelParams(tilesize=32, colperblock=32, splitk=8)


@dataclass
class Table3Cell:
    """Percent performance change for one (study, config, size)."""

    study: str  # "tilesize" or "colperblock"
    backend: str
    precision: str
    n: int
    delta_pct: float  # positive: the changed-to value is faster


def _delta(n: int, backend: str, precision: str, a: KernelParams, b: KernelParams) -> float:
    """Percent runtime reduction going from params ``a`` to params ``b``."""
    ta = predict(n, backend, precision, params=a, check_capacity=False).total_s
    tb = predict(n, backend, precision, params=b, check_capacity=False).total_s
    return 100.0 * (ta - tb) / ta


def run(sizes: Sequence[int] = SIZES_TABLE3) -> List[Table3Cell]:
    """Compute both parameter studies for all four configurations."""
    cells: List[Table3Cell] = []
    ts64 = REFERENCE.with_(tilesize=64)
    cpb16 = REFERENCE.with_(colperblock=16)
    for be, prec in CONFIGS:
        for n in sizes:
            cells.append(
                Table3Cell(
                    "tilesize", be, prec, n, _delta(n, be, prec, ts64, REFERENCE)
                )
            )
            cells.append(
                Table3Cell(
                    "colperblock",
                    be,
                    prec,
                    n,
                    # paper convention: negative = reference (32) is better
                    -_delta(n, be, prec, cpb16, REFERENCE),
                )
            )
    return cells


def render(cells: List[Table3Cell], sizes: Sequence[int] = SIZES_TABLE3) -> str:
    """Format both studies in the paper's Table 3 layout."""
    index: Dict[Tuple[str, str, str, int], float] = {
        (c.study, c.backend, c.precision, c.n): c.delta_pct for c in cells
    }
    headers = ["study / n"] + [f"{be} {pr}" for be, pr in CONFIGS]
    body = []
    for study, label in (
        ("tilesize", "TILESIZE 64->32"),
        ("colperblock", "COLPERBLOCK 32->16"),
    ):
        body.append([label] + [""] * len(CONFIGS))
        for n in sizes:
            row = [f"  {n}"]
            for be, pr in CONFIGS:
                row.append(f"{index[(study, be, pr, n)]:+.1f}%")
            body.append(row)
    return format_table(
        headers,
        body,
        title="Table 3: performance change vs reference (TS=32, CPB=32, SK=8)",
    )


def main() -> str:
    """Render the Table 3 hyperparameter table and return its text."""
    out = render(run())
    print(out)
    return out


if __name__ == "__main__":  # pragma: no cover
    main()
