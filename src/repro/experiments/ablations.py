"""Design-choice ablations called out in DESIGN.md.

Two studies beyond the paper's tables:

* **Kernel fusion** (section 3.2, Figure 2): launch counts and simulated
  time of fused FTSQRT/FTSMQR vs the classic row-by-row schedule.  The
  paper's scaling claim - launches quadratic in tiles unfused, linear
  fused - is regenerated as a table.
* **SPLITK** (section 3.3): panel-kernel time vs SPLITK, exposing the
  occupancy-vs-communication trade-off (more threads shorten the column
  pass but add reduction synchronization).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..report import format_seconds, format_table
from ..sim import KernelParams, stage1_launch_count
from ..solver import Solver

__all__ = [
    "FusionRow",
    "SplitkRow",
    "run_fusion",
    "run_splitk",
    "render_fusion",
    "render_splitk",
    "main",
]

FUSION_SIZES: Sequence[int] = (512, 1024, 2048, 4096, 8192, 16384)
SPLITK_VALUES: Sequence[int] = (1, 2, 4, 8, 16)


@dataclass
class FusionRow:
    """Fused vs unfused at one size."""

    n: int
    launches_fused: int
    launches_unfused: int
    seconds_fused: float
    seconds_unfused: float

    @property
    def speedup(self) -> float:
        """Simulated time ratio unfused / fused."""
        return self.seconds_unfused / self.seconds_fused


def run_fusion(
    sizes: Sequence[int] = FUSION_SIZES,
    backend: str = "h100",
    precision: str = "fp32",
) -> List[FusionRow]:
    """Price both schedules at every size."""
    rows = []
    params = KernelParams()
    # one handle per schedule variant, reused across the whole size sweep
    fused_solver = Solver(backend=backend, precision=precision, params=params)
    unfused_solver = fused_solver.with_(fused=False)
    for n in sizes:
        nbt = -(-n // params.tilesize)
        bf = fused_solver.predict(n, check_capacity=False)
        bu = unfused_solver.predict(n, check_capacity=False)
        rows.append(
            FusionRow(
                n=n,
                launches_fused=stage1_launch_count(nbt, fused=True),
                launches_unfused=stage1_launch_count(nbt, fused=False),
                seconds_fused=bf.total_s,
                seconds_unfused=bu.total_s,
            )
        )
    return rows


def render_fusion(rows: List[FusionRow]) -> str:
    """Format the fusion ablation rows as an ASCII table."""
    body = [
        [
            str(r.n),
            str(r.launches_fused),
            str(r.launches_unfused),
            format_seconds(r.seconds_fused).strip(),
            format_seconds(r.seconds_unfused).strip(),
            f"{r.speedup:.2f}x",
        ]
        for r in rows
    ]
    return format_table(
        ["n", "launches fused", "launches unfused", "t fused", "t unfused", "speedup"],
        body,
        title="Ablation: fused FTSQRT/FTSMQR vs row-by-row TSQRT/TSMQR (h100 fp32)",
    )


@dataclass
class SplitkRow:
    """Stage-1 panel time for one SPLITK value at one size."""

    n: int
    splitk: int
    panel_seconds: float
    total_seconds: float


def run_splitk(
    n: int = 8192,
    backend: str = "h100",
    precision: str = "fp32",
    values: Sequence[int] = SPLITK_VALUES,
) -> List[SplitkRow]:
    """Sweep SPLITK at fixed TILESIZE=32, COLPERBLOCK=32."""
    rows = []
    base = Solver(backend=backend, precision=precision)
    for sk in values:
        params = KernelParams(tilesize=32, colperblock=32, splitk=sk)
        bd = base.with_(params=params).predict(n, check_capacity=False)
        rows.append(SplitkRow(n, sk, bd.panel_s, bd.total_s))
    return rows


def render_splitk(rows: List[SplitkRow]) -> str:
    """Format the SPLITK ablation rows as an ASCII table."""
    body = [
        [
            str(r.n),
            str(r.splitk),
            format_seconds(r.panel_seconds).strip(),
            format_seconds(r.total_seconds).strip(),
        ]
        for r in rows
    ]
    return format_table(
        ["n", "SPLITK", "panel time", "total time"],
        body,
        title="Ablation: SPLITK occupancy vs communication (TS=32, CPB=32)",
    )


def main() -> str:
    """Render both ablation tables and return the combined text."""
    out = "\n\n".join(
        [render_fusion(run_fusion()), render_splitk(run_splitk())]
    )
    print(out)
    return out


if __name__ == "__main__":  # pragma: no cover
    main()
