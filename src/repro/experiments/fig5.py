"""Figure 5: portability across hardware and precision.

Reproduces the paper's runtime curves of the unified function on H100,
MI250, Apple M1 Pro and Intel PVC for FP16/FP32/FP64, with the tuned
hyperparameters per (hardware, precision) and the paper's support and
capacity structure:

* AMD has no FP16 path, Apple Metal no FP64 (gaps in the plot);
* NVIDIA FP16 runs at FP32 speed (upcast to the FP32 pipeline) but
  doubles the largest resident size - H100 FP16 reaches 131072;
* each curve stops at the device's memory capacity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..backends import resolve_backend
from ..report import format_seconds, format_table
from ..sim import predict
from ..tuning import autotune

__all__ = ["Fig5Series", "run", "render", "main", "FIG5_DEVICES", "FIG5_PRECISIONS"]

FIG5_DEVICES: Sequence[str] = ("h100", "mi250", "m1pro", "pvc")
FIG5_PRECISIONS: Sequence[str] = ("fp16", "fp32", "fp64")

#: Size grid: powers of two up to the paper's 131072 FP16 maximum.
SIZES: Sequence[int] = tuple(2**k for k in range(7, 18))  # 128 .. 131072


@dataclass
class Fig5Series:
    """One runtime curve (device x precision)."""

    backend: str
    precision: str
    supported: bool
    max_n: Optional[int]  # capacity limit when supported
    sizes: List[int]
    seconds: List[float]


def run(
    devices: Sequence[str] = FIG5_DEVICES,
    precisions: Sequence[str] = FIG5_PRECISIONS,
    sizes: Sequence[int] = SIZES,
) -> List[Fig5Series]:
    """Predict every curve, honouring support gaps and capacity limits."""
    series: List[Fig5Series] = []
    for dev in devices:
        be = resolve_backend(dev)
        for prec in precisions:
            if not be.supports(prec):
                series.append(
                    Fig5Series(dev, prec, False, None, [], [])
                )
                continue
            cap = be.max_n(prec)
            usable = [n for n in sizes if n <= cap]
            secs = []
            for n in usable:
                params = autotune(n, be, prec)
                secs.append(
                    predict(n, be, prec, params=params, check_capacity=True).total_s
                )
            series.append(Fig5Series(dev, prec, True, cap, usable, secs))
    return series


def render(series: List[Fig5Series]) -> str:
    """Format the curves as one column per (device, precision)."""
    sizes = sorted({n for s in series for n in s.sizes})
    headers = ["n"] + [f"{s.backend}/{s.precision}" for s in series]
    body = []
    for n in sizes:
        row = [str(n)]
        for s in series:
            if not s.supported:
                row.append("unsupported")
            elif n in s.sizes:
                row.append(format_seconds(s.seconds[s.sizes.index(n)]).strip())
            else:
                row.append("OOM")
        body.append(row)
    return format_table(
        headers,
        body,
        title=(
            "Figure 5: unified runtime across hardware and precision "
            "(tuned params; OOM = exceeds device memory)"
        ),
    )


def main() -> str:
    """Render the Figure 5 portability table and return its text."""
    out = render(run())
    print(out)
    return out


if __name__ == "__main__":  # pragma: no cover
    main()
