"""CLI entry point: ``python -m repro.experiments <name>``."""

from __future__ import annotations

import sys

from . import EXPERIMENTS


def main(argv=None) -> int:
    """Dispatch to one experiment (or ``all``)."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] in ("-h", "--help"):
        names = ", ".join(sorted(set(EXPERIMENTS)))
        print(f"usage: python -m repro.experiments <{names}|all>")
        return 0 if argv else 2
    name = argv[0].lower()
    if name == "all":
        seen = set()
        for key, fn in EXPERIMENTS.items():
            if fn in seen:
                continue
            seen.add(fn)
            print(f"\n===== {key} =====")
            fn()
        return 0
    if name not in EXPERIMENTS:
        print(f"unknown experiment {name!r}")
        return 2
    EXPERIMENTS[name]()
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
