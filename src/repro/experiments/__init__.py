"""Experiment harness: one module per paper table / figure.

Run from the command line::

    python -m repro.experiments table1      # accuracy (real numerics)
    python -m repro.experiments table3      # hyperparameter sensitivity
    python -m repro.experiments ratios      # Figures 3-4 + Table 4
    python -m repro.experiments fig5        # portability curves
    python -m repro.experiments fig6        # stage breakdown
    python -m repro.experiments ablations   # fusion + SPLITK studies
    python -m repro.experiments all

Set ``REPRO_FULL=1`` for the paper's full size grids where real numerics
are involved.
"""

from . import ablations, common, fig5, fig6, ratios, table1, table3

EXPERIMENTS = {
    "table1": table1.main,
    "table3": table3.main,
    "ratios": ratios.main,
    "fig3": ratios.main,
    "fig4": ratios.main,
    "table4": ratios.main,
    "fig5": fig5.main,
    "fig6": fig6.main,
    "ablations": ablations.main,
}

__all__ = ["EXPERIMENTS", "ablations", "common", "fig5", "fig6", "ratios", "table1", "table3"]
