"""Table 1: relative singular-value error of the unified implementation.

Reproduces the paper's accuracy study: for each matrix size and each of
the three singular-value distributions, generate matrices ``A = U' S V``
with known spectra, run the unified ``svdvals`` in FP64/FP32/FP16, and
report the *maximum relative Frobenius-norm error* across runs, alongside
the reference library (cuSOLVER in the paper; its LAPACK-backed numeric
oracle here - FP16 has no reference, exactly as in the paper).

This experiment runs the real numerics; sizes default to a reduced grid
(``REPRO_FULL=1`` enables the paper's 64..16384).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..baselines import get_baseline
from ..core import svdvals
from ..matrices import DISTRIBUTIONS, make_test_matrix
from ..precision import Precision
from ..report import format_table
from .common import table1_runs, table1_sizes

__all__ = ["Table1Row", "run", "render", "main"]

PRECISIONS: Sequence[Precision] = (
    Precision.FP64,
    Precision.FP32,
    Precision.FP16,
)


@dataclass
class Table1Row:
    """One Table 1 row: max relative errors per precision at one size."""

    n: int
    unified: Dict[str, float]
    reference: Dict[str, Optional[float]]


def relative_error(computed: np.ndarray, exact: np.ndarray) -> float:
    """Relative Frobenius-norm error between singular value vectors."""
    exact = np.sort(np.asarray(exact, dtype=np.float64))[::-1]
    computed = np.sort(np.asarray(computed, dtype=np.float64))[::-1]
    denom = np.linalg.norm(exact)
    if denom == 0.0:
        return float(np.linalg.norm(computed))
    return float(np.linalg.norm(computed - exact) / denom)


def run(
    sizes: Optional[Sequence[int]] = None,
    runs: Optional[int] = None,
    backend: str = "h100",
) -> List[Table1Row]:
    """Execute the accuracy sweep and return one row per size."""
    sizes = list(sizes) if sizes is not None else table1_sizes()
    runs = runs if runs is not None else table1_runs()
    reference = get_baseline("cusolver")

    rows: List[Table1Row] = []
    for n in sizes:
        uni: Dict[str, float] = {}
        ref: Dict[str, Optional[float]] = {}
        for prec in PRECISIONS:
            max_u = 0.0
            max_r: Optional[float] = None
            for dist in DISTRIBUTIONS:
                for seed in range(runs):
                    tm = make_test_matrix(
                        n, dist, precision=prec, seed=1000 * n + seed
                    )
                    vals = svdvals(tm.A, backend=backend, precision=prec)
                    max_u = max(max_u, relative_error(vals, tm.sigma))
                    if prec is not Precision.FP16:
                        rv = reference.svdvals(tm.A, precision=prec)
                        err = relative_error(rv, tm.sigma)
                        max_r = err if max_r is None else max(max_r, err)
            uni[prec.name_lower] = max_u
            ref[prec.name_lower] = max_r
        rows.append(Table1Row(n=n, unified=uni, reference=ref))
    return rows


def render(rows: List[Table1Row]) -> str:
    """Format the rows in the paper's Table 1 layout."""
    body = []
    for r in rows:
        cells = [str(r.n)]
        for prec in PRECISIONS:
            key = prec.name_lower
            u = r.unified[key]
            ref = r.reference.get(key)
            if ref is None:
                cells.append(f"{u:.1e}")
            else:
                cells.append(f"{u:.1e} ({ref:.1e})")
        body.append(cells)
    return format_table(
        ["n", "FP64 unified (ref)", "FP32 unified (ref)", "FP16 unified"],
        body,
        title=(
            "Table 1: max relative Frobenius error, unified (reference "
            "library) over distributions x runs"
        ),
    )


def main() -> str:
    """Run and render the experiment (used by the CLI and benchmarks)."""
    out = render(run())
    print(out)
    return out


if __name__ == "__main__":  # pragma: no cover
    main()
