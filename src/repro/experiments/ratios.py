"""Figures 3-4 and Table 4: runtime ratios of the unified API to libraries.

Ratio convention follows the paper: ``ratio = t_library / t_unified``,
higher meaning the unified function is faster.  Figure 3 compares against
MAGMA and SLATE up to 32768; Figure 4 against the vendor libraries
(cuSOLVER / rocSOLVER / oneMKL) up to 16384 (the vendor solvers' 64-bit
addressing limit).  Table 4 aggregates every curve into a geometric mean
and range.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from functools import lru_cache

from ..baselines import get_baseline
from ..report import format_ratio, format_table, geomean
from ..solver import Solver
from ..tuning import autotune
from .common import SIZES_HPC, SIZES_VENDOR

__all__ = [
    "RatioCurve",
    "unified_time",
    "ratio_curve",
    "fig3_curves",
    "fig4_curves",
    "table4",
    "render_curves",
    "render_table4",
    "main",
]

#: (device, vendor-library) pairs of Figure 4.
FIG4_PAIRS: Sequence[Tuple[str, str]] = (
    ("rtx4060", "cusolver"),
    ("a100", "cusolver"),
    ("h100", "cusolver"),
    ("mi250", "rocsolver"),
    ("pvc", "onemkl"),
)

#: Devices of Figure 3 (MAGMA and SLATE support NVIDIA + AMD).
FIG3_DEVICES: Sequence[str] = ("rtx4060", "a100", "h100", "mi250")


@dataclass
class RatioCurve:
    """One ratio-vs-size series (one bar group of Figure 3/4)."""

    backend: str
    library: str
    precision: str
    sizes: List[int]
    ratios: List[float]

    @property
    def geomean(self) -> float:
        """Geometric mean over sizes (Table 4 aggregation)."""
        return geomean(self.ratios)

    @property
    def range(self) -> Tuple[float, float]:
        """(min, max) over sizes (Table 4 bracket)."""
        return (min(self.ratios), max(self.ratios))


@lru_cache(maxsize=None)
def _solver(backend: str, precision: str) -> Solver:
    """One reusable handle per (backend, precision) pair.

    Every ratio curve prices dozens of sizes against the same device;
    constructing the :class:`Solver` once per pair is the intended handle
    idiom (per-size tuned hyperparameters are swapped in via ``with_``).
    """
    return Solver(backend=backend, precision=precision)


def unified_time(
    n: int,
    backend: str,
    precision: str = "fp32",
    tuned: bool = True,
) -> float:
    """Predicted unified runtime; hyperparameters autotuned per size
    (the paper selects the optimal combination per hardware and type)."""
    solver = _solver(backend, precision)
    if tuned:
        solver = solver.with_(params=autotune(n, backend, precision))
    return solver.predict(n, check_capacity=False).total_s


def ratio_curve(
    backend: str,
    library: str,
    precision: str = "fp32",
    sizes: Optional[Sequence[int]] = None,
    tuned: bool = True,
) -> RatioCurve:
    """Ratio series of one (device, library) pair."""
    lib = get_baseline(library)
    if sizes is None:
        sizes = SIZES_VENDOR if lib.max_n is not None else SIZES_HPC
    usable = [n for n in sizes if lib.max_n is None or n <= lib.max_n]
    ratios = [
        lib.predict_time(n, backend, precision)
        / unified_time(n, backend, precision, tuned=tuned)
        for n in usable
    ]
    return RatioCurve(backend, library, precision, list(usable), ratios)


def fig3_curves(precision: str = "fp32") -> List[RatioCurve]:
    """Figure 3: unified vs MAGMA and SLATE on every Figure 3 device."""
    out = []
    for lib in ("magma", "slate"):
        for be in FIG3_DEVICES:
            out.append(ratio_curve(be, lib, precision, SIZES_HPC))
    return out


def fig4_curves(precision: str = "fp32") -> List[RatioCurve]:
    """Figure 4: unified vs the vendor library of each device."""
    return [
        ratio_curve(be, lib, precision, SIZES_VENDOR) for be, lib in FIG4_PAIRS
    ]


def table4(precision: str = "fp32") -> Dict[str, Dict[str, RatioCurve]]:
    """Table 4: device -> {vendor, magma, slate} geometric-mean curves."""
    table: Dict[str, Dict[str, RatioCurve]] = {}
    for be, vendor_lib in FIG4_PAIRS:
        table.setdefault(be, {})["vendor"] = ratio_curve(
            be, vendor_lib, precision, SIZES_VENDOR
        )
    for be in FIG3_DEVICES:
        table.setdefault(be, {})["magma"] = ratio_curve(
            be, "magma", precision, SIZES_HPC
        )
        table.setdefault(be, {})["slate"] = ratio_curve(
            be, "slate", precision, SIZES_HPC
        )
    return table


def render_curves(curves: List[RatioCurve], title: str) -> str:
    """Format ratio series as a size-by-pair table."""
    sizes = sorted({n for c in curves for n in c.sizes})
    headers = ["n"] + [f"{c.backend}/{c.library}" for c in curves]
    body = []
    for n in sizes:
        row = [str(n)]
        for c in curves:
            if n in c.sizes:
                row.append(format_ratio(c.ratios[c.sizes.index(n)]))
            else:
                row.append("-")
        body.append(row)
    return format_table(headers, body, title=title)


def render_table4(table: Dict[str, Dict[str, RatioCurve]]) -> str:
    """Format the Table 4 geometric means with ranges."""
    headers = ["device", "vendor", "MAGMA", "SLATE"]
    body = []
    for be, entry in table.items():
        row = [be]
        for key in ("vendor", "magma", "slate"):
            c = entry.get(key)
            if c is None:
                row.append("-")
            else:
                lo, hi = c.range
                row.append(
                    f"{format_ratio(c.geomean)} ({format_ratio(lo)} - "
                    f"{format_ratio(hi)})"
                )
        body.append(row)
    return format_table(
        headers,
        body,
        title="Table 4: geometric mean of runtime ratios unified/library (range)",
    )


def main() -> str:
    """Render every ratio table and return the combined text."""
    parts = [
        render_curves(fig4_curves(), "Figure 4: unified vs vendor libraries"),
        render_curves(fig3_curves(), "Figure 3: unified vs MAGMA / SLATE"),
        render_table4(table4()),
    ]
    out = "\n\n".join(parts)
    print(out)
    return out


if __name__ == "__main__":  # pragma: no cover
    main()
