"""Figure 6: relative runtime of the computation stages.

Reproduces the paper's stage breakdown - panel factorization, trailing
submatrix update, reduction to bidiagonal, reduction to diagonal - as a
function of matrix size and device, using the simulator's stage-attributed
timeline.  The paper's two headline observations are regenerated:

* stage 1 (panel + trailing update) grows in relative terms with size;
* the trailing-update-to-panel ratio rises with size, steeply on GPUs
  with few SMs (RTX4060 between 8k and 32k) once full occupancy is passed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..report import format_table
from ..sim import Stage, predict

__all__ = ["Fig6Row", "run", "render", "main", "FIG6_DEVICES"]

FIG6_DEVICES: Sequence[str] = ("h100", "a100", "rtx4060", "mi250")
SIZES: Sequence[int] = (256, 512, 1024, 2048, 4096, 8192, 16384, 32768)


@dataclass
class Fig6Row:
    """Stage shares for one (device, size)."""

    backend: str
    n: int
    panel: float
    update: float
    brd: float
    solve: float
    update_to_panel: float

    @property
    def stage1(self) -> float:
        """Reduction-to-band share (panel + update)."""
        return self.panel + self.update


def run(
    devices: Sequence[str] = FIG6_DEVICES,
    sizes: Sequence[int] = SIZES,
    precision: str = "fp32",
) -> List[Fig6Row]:
    """Compute stage fractions for every device and size."""
    rows: List[Fig6Row] = []
    for dev in devices:
        for n in sizes:
            bd = predict(n, dev, precision, check_capacity=False)
            fr = bd.stage_fractions()
            rows.append(
                Fig6Row(
                    backend=dev,
                    n=n,
                    panel=fr.get(Stage.PANEL, 0.0),
                    update=fr.get(Stage.UPDATE, 0.0),
                    brd=fr.get(Stage.BRD, 0.0),
                    solve=fr.get(Stage.SOLVE, 0.0),
                    update_to_panel=(
                        bd.update_s / bd.panel_s if bd.panel_s > 0 else float("inf")
                    ),
                )
            )
    return rows


def render(rows: List[Fig6Row]) -> str:
    """Format the breakdown per device."""
    body = []
    for r in rows:
        body.append(
            [
                r.backend,
                str(r.n),
                f"{100 * r.panel:5.1f}%",
                f"{100 * r.update:5.1f}%",
                f"{100 * r.brd:5.1f}%",
                f"{100 * r.solve:5.1f}%",
                f"{r.update_to_panel:5.2f}",
            ]
        )
    return format_table(
        ["device", "n", "panel", "trailing", "band->bi", "bi->diag", "upd/panel"],
        body,
        title="Figure 6: relative runtime of the computation stages",
    )


def main() -> str:
    """Render the Figure 6 stage-share table and return its text."""
    out = render(run())
    print(out)
    return out


if __name__ == "__main__":  # pragma: no cover
    main()
