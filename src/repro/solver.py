"""The unified solver handle: one object for solve, predict, and batch.

The paper's headline claim is *one* hardware- and precision-agnostic code
path for singular value computation.  :class:`Solver` restores that story
at the API level with the handle + plan/execute idiom of production GPU
math libraries (cuSOLVER handles, FFTW plans):

* the **handle** is constructed once — backend, precision, hyperparameters,
  cost coefficients, stage-3 method and fusion mode are resolved and
  validated up front (:class:`repro.SolveConfig`) and never re-resolved per
  call;
* :meth:`Solver.solve` dispatches on the input's shape — square matrices
  run the two-stage QR driver, rectangular matrices the tall-QR
  preprocessing, 3-D stacks the batched driver — so callers stop choosing
  between ``svdvals`` / ``svdvals_rect`` / ``svdvals_batched`` by hand;
* :meth:`Solver.predict` is the one prediction front door replacing the
  four ``predict*`` variants (single-GPU, batched, multi-GPU, out-of-core);
  its execution axes (``batch``, ``streams``, ``ngpu``, ``out_of_core``)
  all compose through one emit -> partition -> rewrite -> price pipeline;
* :meth:`Solver.tune` searches those axes analytically (plus the kernel
  hyperparameters) and returns a ranked :class:`~repro.tuning.TunePlan`
  that constructs the winning handle;
* :meth:`Solver.plan` returns a reusable :class:`SvdPlan` that precomputes
  the padding/tiling metadata, capacity check, padded workspace and launch
  prices for one problem shape, so repeated same-shape solves skip the
  per-call setup entirely (results are bitwise identical to one-shot
  calls).

Every legacy entry point (``repro.svdvals``, ``svdvals_rect``,
``svdvals_batched``, ``svd_full``, ``predict``, ``predict_batched``,
``predict_multi_gpu``, ``predict_out_of_core``) is now a thin shim over a
one-shot ``Solver``, so there is exactly one dispatch point where batching,
caching and multi-backend sharding can hook in.

Quickstart
----------
>>> import numpy as np, repro
>>> solver = repro.Solver(backend="h100", precision="fp32")
>>> A = np.random.default_rng(0).standard_normal((256, 256))
>>> sv = solver.solve(A)                        # square driver
>>> sv3 = solver.solve(A[None].repeat(4, 0))    # batched driver
>>> bd = solver.predict(32768)                  # analytic prediction
>>> plan = solver.plan((128, 128))              # amortize per-call setup
>>> sv_again = plan.execute(A[:128, :128])
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple, Union

import numpy as np

from .backends.backend import Backend, BackendLike
from .config import SolveConfig
from .errors import InvalidParamsError, ShapeError
from .precision import Precision, PrecisionLike
from .sim.costmodel import CostCoefficients, FabricSpec, LinkSpec
from .sim.events import EventSchedule, simulate_events
from .sim.graph import AnalyticExecutor
from .sim.params import KernelParams
from .sim.schedule import TimeBreakdown, predict_resolved
from .sim.timeline import StreamSchedule, schedule_streams
from .core.batched import (
    check_batched_capacity,
    emit_batched_graph,
    predict_batched_resolved,
    svdvals_batched_resolved,
)
from .core.eigh import eigh_resolved, emit_eigh_graph
from .core.jacobi import jacobi_svdvals_resolved
from .core.randomized import (
    check_rank,
    emit_lowrank_graph,
    svd_lowrank_resolved,
)
from .core.rectangular import emit_tallqr_graph, svdvals_rect_resolved
from .core.svd import emit_svd_graph, svdvals_resolved
from .core.tiling import ntiles
from .core.vectors import svd_full_resolved
from .sim.outofcore import rewrite_out_of_core
from .sim.partition import (
    check_fleet_capacity,
    check_shard_capacity,
    fleet_scale,
    fleet_weights,
    partition_graph,
    price_partitioned,
)
from .sim.scaling import predict_multi_gpu_resolved, predict_out_of_core_resolved
from .sim.table import bound_structure
from .sim.topology import Topology, require_no_conflicts

__all__ = ["Solver", "SvdPlan"]


class Solver:
    """Reusable handle for unified singular value computation.

    All configuration axes are resolved and validated at construction;
    afterwards the handle is immutable and cheap to call.  Use
    :meth:`with_` to derive a variant handle (e.g. other hyperparameters)
    without re-specifying everything.
    """

    __slots__ = ("_config",)

    def __init__(
        self,
        backend: BackendLike = "h100",
        precision: Optional[PrecisionLike] = None,
        params: Optional[KernelParams] = None,
        coeffs: Optional[CostCoefficients] = None,
        stage3: str = "auto",
        fused: bool = True,
        check_finite: bool = True,
        rescale: bool = True,
        method: str = "qr",
        jacobi_tol: Optional[float] = None,
        jacobi_max_sweeps: int = 60,
        oversample: int = 8,
        link: Optional[LinkSpec] = None,
        fabric: Optional[FabricSpec] = None,
    ) -> None:
        self._config = SolveConfig.resolve(
            backend=backend,
            precision=precision,
            params=params,
            coeffs=coeffs,
            stage3=stage3,
            fused=fused,
            check_finite=check_finite,
            rescale=rescale,
            method=method,
            jacobi_tol=jacobi_tol,
            jacobi_max_sweeps=jacobi_max_sweeps,
            oversample=oversample,
            link=link,
            fabric=fabric,
        )

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def from_config(cls, config: SolveConfig) -> "Solver":
        """Wrap an already-resolved :class:`SolveConfig`."""
        if not isinstance(config, SolveConfig):
            raise InvalidParamsError(
                f"from_config expects a SolveConfig, got {type(config).__name__}"
            )
        solver = cls.__new__(cls)
        solver._config = config
        return solver

    def with_(self, **kwargs) -> "Solver":
        """Derive a handle with some axes replaced (re-validated)."""
        return type(self).from_config(self._config.with_(**kwargs))

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    @property
    def config(self) -> SolveConfig:
        """The frozen resolved configuration."""
        return self._config

    @property
    def backend(self) -> Backend:
        """The resolved backend."""
        return self._config.backend

    @property
    def precision(self) -> Optional[Precision]:
        """Configured precision (``None`` = inferred per input dtype)."""
        return self._config.precision

    @property
    def params(self) -> KernelParams:
        """The resolved kernel hyperparameters."""
        return self._config.params

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        """Readable summary of the resolved configuration axes."""
        cfg = self._config
        prec = cfg.precision.name_lower if cfg.precision else "auto"
        return (
            f"Solver(backend={cfg.backend.name!r}, precision={prec!r}, "
            f"params={cfg.params}, stage3={cfg.stage3!r}, fused={cfg.fused})"
        )

    # ------------------------------------------------------------------ #
    # numeric front doors
    # ------------------------------------------------------------------ #
    def solve(self, A: np.ndarray, return_info: bool = False):
        """Singular values of ``A``, dispatching on its shape.

        * ``(n, n)`` square  -> two-stage QR driver;
        * ``(m, n)`` rectangular -> tall-QR preprocessing + square driver;
        * ``(batch, n, n)`` stack -> batched driver.

        Returns descending singular values (``(min(m, n),)`` for 2-D
        inputs, ``(batch, n)`` for stacks), plus the execution report when
        ``return_info=True``.  Handles constructed with
        ``method="jacobi"`` run the one-sided Jacobi cross-check instead
        (no simulated launches, hence no execution report).
        """
        A = np.asarray(A)
        if self._config.method == "jacobi":
            return self._solve_jacobi(A, return_info=return_info)
        if A.ndim == 3:
            return self._solve_batched(A, return_info=return_info)
        if A.ndim == 2:
            if A.shape[0] == A.shape[1]:
                return self._solve_square(A, return_info=return_info)
            return self._solve_rect(A, return_info=return_info)
        raise ShapeError(
            f"Solver.solve expects a 2-D matrix or a (batch, n, n) stack, "
            f"got shape {A.shape}"
        )

    def svdvals(self, A: np.ndarray, return_info: bool = False):
        """Alias of :meth:`solve` (values only, any supported shape)."""
        return self.solve(A, return_info=return_info)

    def svd(self, A: np.ndarray, return_info: bool = False):
        """Full SVD ``A = U diag(s) Vt`` of a square matrix.

        Returns an :class:`~repro.SVDResult` (plus ``SVDInfo`` with
        ``return_info=True``).  Honors the handle's backend, precision,
        hyperparameters, coefficients and ``check_finite``; the
        ``stage3`` / ``fused`` / ``rescale`` axes do not apply to the
        vector-bearing pipeline (it always uses the fused kernels and the
        rotation-accumulating Golub-Kahan solver, with no rescaling).
        """
        if self._config.method != "qr":
            raise InvalidParamsError(
                "Solver.svd runs the two-stage QR vector pipeline; "
                "construct the Solver with method='qr'"
            )
        return svd_full_resolved(A, self._config, return_info=return_info)

    def svd_lowrank(
        self,
        A: np.ndarray,
        rank: int,
        seed: int = 0,
        return_info: bool = False,
    ):
        """Randomized top-``rank`` singular values of a 2-D matrix.

        Halko-Martinsson-Tropp randomized range finding composed from the
        pipeline's own kernels: a seeded Gaussian sketch of
        ``rank + oversample`` columns (the handle's ``oversample`` axis),
        the tall-QR chain, and the square pipeline on the projected
        factor (see :mod:`repro.core.randomized`).  Returns descending
        estimates bounded above by the exact truncated singular values;
        ``seed`` keys the sketch, so repeated calls are bitwise
        reproducible.  Wide inputs run on the transpose.
        """
        if self._config.method != "qr":
            raise InvalidParamsError(
                "Solver.svd_lowrank composes the two-stage QR pipeline; "
                "construct the Solver with method='qr'"
            )
        return svd_lowrank_resolved(
            A, rank, self._config, seed=seed, return_info=return_info
        )

    def eigh(self, A: np.ndarray, return_info: bool = False):
        """Eigenvalues of a symmetric matrix, descending.

        Rides the SVD pipeline via an exact power-of-two shift: for
        ``c >= 2 ||A||`` the shifted ``A + c I`` is positive definite, so
        its singular values are its eigenvalues and ``lambda(A) =
        sigma(A + c I) - c`` exactly (see :mod:`repro.core.eigh`).  The
        launch schedule differs from :meth:`solve` only in the final CPU
        node (tridiagonal Sturm bisection instead of the bidiagonal SVD).
        """
        if self._config.method != "qr":
            raise InvalidParamsError(
                "Solver.eigh rides the two-stage QR pipeline; construct "
                "the Solver with method='qr'"
            )
        return eigh_resolved(A, self._config, return_info=return_info)

    def _solve_jacobi(self, A, return_info=False):
        if return_info:
            raise InvalidParamsError(
                "method='jacobi' runs on the host without simulated "
                "launches; no execution report is available"
            )
        if A.ndim == 2:
            return jacobi_svdvals_resolved(A, self._config)
        if A.ndim == 3:
            if A.shape[0] == 0:
                raise ShapeError("empty batch")
            return np.stack(
                [jacobi_svdvals_resolved(a, self._config) for a in A]
            )
        raise ShapeError(
            f"Solver.solve expects a 2-D matrix or a (batch, n, n) stack, "
            f"got shape {A.shape}"
        )

    # internal single-shape paths (the legacy shims call these directly to
    # preserve their historical shape contracts)
    def _solve_square(self, A, return_info=False, workspace=None, cost_cache=None):
        return svdvals_resolved(
            A,
            self._config,
            return_info=return_info,
            workspace=workspace,
            cost_cache=cost_cache,
        )

    def _solve_rect(self, A, return_info=False):
        return svdvals_rect_resolved(A, self._config, return_info=return_info)

    def _solve_batched(self, As, return_info=False, workspace=None, cost_cache=None):
        return svdvals_batched_resolved(
            As,
            self._config,
            return_info=return_info,
            workspace=workspace,
            cost_cache=cost_cache,
        )

    # ------------------------------------------------------------------ #
    # prediction front door
    # ------------------------------------------------------------------ #
    def predict(
        self,
        n: int,
        batch: Optional[int] = None,
        ngpu: int = 1,
        nodes: int = 1,
        out_of_core: bool = False,
        check_capacity: bool = True,
        link_gbs: Optional[float] = None,
        fabric_gbs: Optional[float] = None,
        streams: int = 1,
        oc_budget_gb: Optional[float] = None,
        topology: Optional[Topology] = None,
        rank: Optional[int] = None,
        workload: str = "svd",
    ) -> Union[TimeBreakdown, StreamSchedule, EventSchedule]:
        """Predict the simulated runtime of an ``n x n`` solve.

        One front door for every analytic model:

        * default: the single-stream launch graph priced end to end;
        * ``batch=b``: ``b`` problems through the batched launch graph -
          one grid covers all problems per schedule step, so launch
          overheads amortize across the batch;
        * ``ngpu=g``: the emitted graph is sharded tile-row-wise across
          ``g`` devices with explicit comm nodes (panel broadcast,
          boundary exchange, band gather) and priced from the
          partitioned graph - launch counts come from that graph, comm
          time is reported as the breakdown's own ``comm_s`` component,
          and ``ngpu=1`` reproduces single-device pricing exactly.
          ``link_gbs`` overrides the interconnect bandwidth (default:
          the backend's link - NVLink on H100/A100, Infinity Fabric on
          MI250, ...; the handle's ``link=`` axis overrides the backend
          default);
        * ``nodes=m`` (m >= 2): cluster execution over an ``m x g``
          two-tier topology - the graph is sharded across all
          ``m * g`` device ranks, comm nodes are priced at the tier
          they cross (node-local link vs inter-node fabric, hierarchical
          panel broadcast spanning both), and the result comes from the
          discrete-event simulator
          (:func:`repro.sim.events.simulate_events`), which queues
          launches on per-device streams and per-tier link lanes and so
          reports queueing/contention the greedy scheduler cannot see
          (returns an :class:`~repro.sim.events.EventSchedule`).
          ``fabric_gbs`` overrides the inter-node fabric bandwidth (the
          handle's ``fabric=`` axis overrides the default fabric);
        * ``out_of_core=True``: host-resident execution beyond device
          memory - the emitted graph is rewritten by
          :func:`repro.sim.outofcore.rewrite_out_of_core` to stream
          tile panels through a bounded device window with explicit
          ``h2d_tile``/``d2h_tile`` transfer nodes, and transfer time is
          reported as the breakdown's own ``io_s`` component (zero when
          the problem fits; launch counts come from the rewritten
          graph).  ``oc_budget_gb`` overrides the per-device window
          budget (default: the backend's device memory);
        * ``streams=k`` (k >= 2): lookahead execution across ``k``
          streams - trailing updates are split so their remainders
          overlap the next panel factorization, and the graph is priced
          by the greedy critical-path scheduler (returns a
          :class:`~repro.sim.timeline.StreamSchedule`).

        Every execution axis **composes**: ``predict(n, ngpu=g,
        streams=k)`` emits the lookahead graph, partitions it, and runs
        the device-aware scheduler with ``k`` streams per device (comm
        nodes occupy each device's link lane); adding
        ``out_of_core=True`` partitions first, then rewrites each
        device's shard against its own budget - under the scheduler the
        transfers occupy a dedicated per-device host-link lane, so
        prefetch overlaps compute.  ``batch`` runs the same pipeline on
        the batched launch graph: ``streams=k`` splits the batch into
        ``k`` concurrent chains, ``ngpu=g`` shards it round-robin across
        devices (comm only for the result gather), and
        ``out_of_core=True`` streams whole problems through the device
        window, the budget shared across every in-flight problem.

        ``check_capacity`` applies to every in-core mode; with
        ``ngpu > 1`` it checks the *per-device* footprint - the tile-row
        shard for square predictions, the round-robin sub-batch for
        batched ones - so multi-GPU extends capacity (pass
        ``check_capacity=False`` to price beyond it).  Out-of-core
        predictions skip the device capacity check - exceeding it is
        their purpose - but raise
        :class:`~repro.errors.CapacityError` when the budget cannot hold
        even the minimum streaming window.  Requires a handle
        constructed with an explicit precision.

        ``topology=`` (a :class:`repro.Topology`) is the fleet spelling
        of the device axes and is mutually exclusive with
        ``ngpu``/``nodes``/``link_gbs``/``fabric_gbs`` (passing both
        raises naming the conflicting axes).  A *uniform* topology of
        the handle's own device routes through exactly the legacy paths
        above — graphs and prices are byte-identical to the ``ngpu=``
        spelling.  A heterogeneous fleet (mixed device types, or a
        uniform fleet of a different device than the handle's) takes the
        cost-weighted path: every sweep's tile rows are sharded
        proportionally to each rank's cost-model throughput
        (:func:`repro.sim.partition.fleet_weights`), per-rank compute
        durations are scaled to that rank's own speed, and the result
        always comes from the discrete-event simulator (an
        :class:`~repro.sim.events.EventSchedule` whose ``breakdown()``
        carries per-device busy/utilization).  ``streams``,
        ``out_of_core`` and ``batch`` compose with fleets the same way
        they compose with ``ngpu=``; capacity is checked against each
        rank's *own* memory (:func:`repro.sim.partition.check_fleet_capacity`).

        ``workload=`` selects which emitter feeds the pipeline:
        ``"svd"`` (default, everything above), ``"eigh"`` (the symmetric
        eigensolver graph - same sweeps, ``steig_cpu`` tail) or
        ``"lowrank"`` (the randomized low-rank graph; requires
        ``rank=``).  Passing ``rank=`` alone implies
        ``workload="lowrank"``.  Both new workloads run the same emit ->
        partition -> rewrite -> price pipeline, so ``streams``, ``ngpu``,
        ``nodes``, ``topology`` and ``out_of_core`` all compose;
        ``batch`` stays an SVD-only axis.
        """
        # the method guard comes first so a Jacobi handle is told about
        # its real problem, not about whichever axis value it passed
        if self._config.method != "qr":
            raise InvalidParamsError(
                "prediction models the two-stage QR pipeline; construct "
                "the Solver with method='qr'"
            )
        if workload not in ("svd", "eigh", "lowrank"):
            raise InvalidParamsError(
                f"unknown workload {workload!r}; expected one of "
                f"('svd', 'eigh', 'lowrank')"
            )
        if rank is not None:
            if workload == "eigh":
                raise InvalidParamsError(
                    f"rank={rank} selects the randomized low-rank workload "
                    f"and does not compose with workload='eigh'; drop one "
                    f"of the two axes"
                )
            workload = "lowrank"
        elif workload == "lowrank":
            raise InvalidParamsError(
                "workload='lowrank' predicts the randomized low-rank "
                "pipeline and requires rank= (the number of singular "
                "values to estimate)"
            )
        if workload != "svd" and batch is not None:
            raise InvalidParamsError(
                f"batch runs the batched SVD workload and does not "
                f"compose with workload={workload!r}; got batch={batch} "
                f"(drop one of the two axes)"
            )
        if workload == "lowrank":
            check_rank(rank, n, n)
        hetero = False
        if topology is not None:
            require_no_conflicts(
                topology,
                ngpu=ngpu if ngpu != 1 else None,
                nodes=nodes if nodes != 1 else None,
                fabric_gbs=fabric_gbs,
                link_gbs=link_gbs,
            )
            # a uniform fleet of the handle's own device takes the legacy
            # routing below (byte-identical by construction); anything
            # else is priced by the fleet path after the shared guards
            ngpu = topology.per_node
            nodes = topology.nodes
            link_gbs = topology.link_gbs
            fabric_gbs = topology.fabric_gbs
            hetero = (
                not topology.is_uniform
                or topology.device != self._config.backend.device.name
            )
        if ngpu < 1:
            raise InvalidParamsError(
                f"ngpu must be a positive device count, got {ngpu}"
            )
        if nodes < 1:
            raise InvalidParamsError(
                f"nodes must be a positive node count, got {nodes}"
            )
        if streams < 1:
            raise InvalidParamsError(
                f"streams must be a positive stream count, got {streams}"
            )
        if fabric_gbs is not None and nodes == 1:
            raise InvalidParamsError(
                "fabric_gbs sets the inter-node fabric bandwidth and "
                "requires nodes >= 2"
            )
        if out_of_core and nodes > 1:
            raise InvalidParamsError(
                f"out_of_core streaming and multi-node execution do not "
                f"compose yet; got out_of_core=True with nodes={nodes} "
                f"(drop one of the two axes)"
            )
        if oc_budget_gb is not None:
            if not out_of_core:
                raise InvalidParamsError(
                    "oc_budget_gb sets the out-of-core window budget and "
                    "requires out_of_core=True"
                )
            if oc_budget_gb <= 0:
                raise InvalidParamsError(
                    f"oc_budget_gb must be a positive budget, "
                    f"got {oc_budget_gb}"
                )
        storage = self._config.require_precision("predict")
        if workload != "svd":
            return self._predict_workload(
                n,
                workload,
                rank,
                ngpu=ngpu,
                nodes=nodes,
                streams=streams,
                out_of_core=out_of_core,
                check_capacity=check_capacity,
                link_gbs=link_gbs,
                fabric_gbs=fabric_gbs,
                oc_budget_gb=oc_budget_gb,
                topology=topology if hetero else None,
            )
        if hetero:
            return self._predict_fleet(
                n,
                topology,
                batch=batch,
                streams=streams,
                out_of_core=out_of_core,
                check_capacity=check_capacity,
                oc_budget_gb=oc_budget_gb,
            )
        if batch is not None:
            # the batched graph runs the same emit -> partition ->
            # rewrite -> price pipeline as every other axis
            return predict_batched_resolved(
                n,
                batch,
                self._config,
                ngpu=ngpu,
                nodes=nodes,
                streams=streams,
                out_of_core=out_of_core,
                link_gbs=link_gbs,
                fabric_gbs=fabric_gbs,
                budget_bytes=(
                    oc_budget_gb * 2**30 if oc_budget_gb is not None else None
                ),
                check_capacity=check_capacity,
            )
        if nodes > 1:
            # emit -> partition across the two-tier fabric -> simulate:
            # only the discrete-event engine can price the queueing and
            # fabric contention a cluster graph exhibits, so the cluster
            # path always returns an EventSchedule
            if check_capacity:
                check_shard_capacity(n, self._config, ngpu, nodes=nodes)
            config = self._config
            fabric = config.fabric_spec(link_gbs, fabric_gbs)

            def _compose_cluster():
                graph = emit_svd_graph(n, config, streams=streams)
                return partition_graph(
                    graph, ngpu, nodes=nodes, fabric=fabric
                )

            graph = bound_structure(
                ("sq_cluster_graph", config, n, nodes, ngpu, streams, fabric),
                _compose_cluster,
            )
            return simulate_events(graph, config, storage, streams=streams)
        if out_of_core:
            return predict_out_of_core_resolved(
                n,
                self._config,
                ngpu=ngpu,
                streams=streams,
                link_gbs=link_gbs,
                budget_bytes=(
                    oc_budget_gb * 2**30 if oc_budget_gb is not None else None
                ),
            )
        if ngpu == 1 and streams == 1:
            return predict_resolved(
                n, self._config, check_capacity=check_capacity
            )
        if check_capacity:
            if ngpu == 1:
                self._config.backend.check_capacity(n, storage)
            else:
                check_shard_capacity(n, self._config, ngpu)
        if ngpu > 1 and streams == 1:
            # emit -> partition -> price (the TimeBreakdown path)
            return predict_multi_gpu_resolved(
                n, self._config, ngpu, link_gbs=link_gbs
            )
        config = self._config
        link = config.link_spec(link_gbs) if ngpu > 1 else None

        def _compose():
            graph = emit_svd_graph(n, config, streams=streams)
            if ngpu > 1:
                graph = partition_graph(graph, ngpu, link)
            return graph

        # memoized per axes (see repro.sim.table): repeated stream-path
        # predictions reuse the emitted/partitioned graph and its table
        graph = bound_structure(
            ("sq_stream_graph", config, n, streams, ngpu, link), _compose
        )
        return schedule_streams(graph, config, storage, streams)

    def _predict_fleet(
        self,
        n: int,
        topology: Topology,
        *,
        batch: Optional[int] = None,
        streams: int = 1,
        out_of_core: bool = False,
        check_capacity: bool = True,
        oc_budget_gb: Optional[float] = None,
    ) -> EventSchedule:
        """Price a heterogeneous fleet through the discrete-event engine.

        The one pipeline behind every fleet prediction: emit -> weighted
        partition (:func:`repro.sim.partition.shard_rows_weighted`, one
        shard per rank sized by its cost-model throughput) -> optional
        out-of-core rewrite -> :func:`repro.sim.events.simulate_events`
        with per-rank compute-duration scales and labels, so the
        returned :class:`~repro.sim.events.EventSchedule` carries each
        rank's busy occupancy.  Composed graphs are memoized per axes
        through the bound-structure memo (the frozen topology is part of
        the key), so tune's placement search re-emits nothing.
        """
        config = self._config
        storage = config.require_precision("predict")
        weights = fleet_weights(topology, config)
        scale = fleet_scale(topology, config)
        labels = tuple(
            f"dev{i}:{d}" for i, d in enumerate(topology.devices)
        )
        budget_bytes = (
            oc_budget_gb * 2**30 if oc_budget_gb is not None else None
        )
        if batch is not None:
            if n < 1 or batch < 1:
                raise ShapeError(
                    f"need positive n and batch, got n={n}, batch={batch}"
                )
            if out_of_core:
                raise InvalidParamsError(
                    "out_of_core streaming and heterogeneous batched "
                    "fleets do not compose yet; drop one of the two axes"
                )
            if check_capacity:
                check_batched_capacity(n, batch, config, topology.ngpu)

            def _compose_fleet_batch():
                graph = emit_batched_graph(n, batch, config, streams=streams)
                return partition_graph(
                    graph, topology=topology, config=config, weights=weights
                )

            graph = bound_structure(
                (
                    "bat_fleet_graph", config, n, batch,
                    min(streams, batch), topology,
                ),
                _compose_fleet_batch,
            )
            return simulate_events(
                graph, config, storage, streams=streams,
                device_scale=scale, device_labels=labels,
            )
        if check_capacity and not out_of_core:
            check_fleet_capacity(n, config, topology, weights)

        def _compose_fleet():
            graph = emit_svd_graph(n, config, streams=streams)
            graph = partition_graph(
                graph, topology=topology, config=config, weights=weights
            )
            if out_of_core:
                return rewrite_out_of_core(
                    graph, config, storage, budget_bytes
                )
            return graph

        graph = bound_structure(
            (
                "sq_fleet_graph", config, n, topology, streams,
                out_of_core, budget_bytes,
            ),
            _compose_fleet,
        )
        return simulate_events(
            graph, config, storage, streams=streams,
            device_scale=scale, device_labels=labels,
        )

    def _predict_workload(
        self,
        n: int,
        workload: str,
        rank: Optional[int],
        *,
        ngpu: int = 1,
        nodes: int = 1,
        streams: int = 1,
        out_of_core: bool = False,
        check_capacity: bool = True,
        link_gbs: Optional[float] = None,
        fabric_gbs: Optional[float] = None,
        oc_budget_gb: Optional[float] = None,
        topology: Optional[Topology] = None,
    ) -> Union[TimeBreakdown, StreamSchedule, EventSchedule]:
        """Route a non-SVD workload through the shared graph pipeline.

        One pipeline for both new emitters: emit (the eigensolver or
        low-rank graph) -> partition (uniform peers, two-tier cluster or
        cost-weighted fleet) -> optional out-of-core rewrite -> price
        (analytic for the serial graph, greedy scheduler for streams,
        discrete-event simulator for clusters and fleets).  Composed
        graphs are memoized per axes exactly like the SVD paths.
        ``topology`` is only passed here when heterogeneous (uniform
        fleets of the handle's device were already folded into ``ngpu``
        / ``nodes`` by :meth:`predict`).
        """
        config = self._config
        storage = config.require_precision("predict")
        budget_bytes = (
            oc_budget_gb * 2**30 if oc_budget_gb is not None else None
        )
        if workload == "eigh":
            tag = "eigh"
            shape_key: Tuple = (n,)

            def emit():
                return emit_eigh_graph(n, config, streams=streams)
        else:
            tag = "lr"
            shape_key = (n, rank)

            def emit():
                return emit_lowrank_graph(n, n, rank, config, streams=streams)

        if topology is not None:
            weights = fleet_weights(topology, config)
            scale = fleet_scale(topology, config)
            labels = tuple(
                f"dev{i}:{d}" for i, d in enumerate(topology.devices)
            )
            if check_capacity and not out_of_core and workload == "eigh":
                check_fleet_capacity(n, config, topology, weights)

            def _compose_fleet():
                graph = partition_graph(
                    emit(), topology=topology, config=config, weights=weights
                )
                if out_of_core:
                    return rewrite_out_of_core(
                        graph, config, storage, budget_bytes
                    )
                return graph

            graph = bound_structure(
                (
                    tag + "_fleet_graph", config, *shape_key, topology,
                    streams, out_of_core, budget_bytes,
                ),
                _compose_fleet,
            )
            return simulate_events(
                graph, config, storage, streams=streams,
                device_scale=scale, device_labels=labels,
            )
        if check_capacity and not out_of_core:
            # the eigensolver shard has the square footprint; low-rank
            # shards are strictly smaller than the full input, so only
            # the single-device case is checked against the whole matrix
            if workload == "eigh" and ngpu * nodes > 1:
                check_shard_capacity(n, config, ngpu, nodes=nodes)
            elif ngpu * nodes == 1:
                config.backend.check_capacity(n, storage)
        if nodes > 1:
            fabric = config.fabric_spec(link_gbs, fabric_gbs)
            graph = bound_structure(
                (
                    tag + "_cluster_graph", config, *shape_key, nodes,
                    ngpu, streams, fabric,
                ),
                lambda: partition_graph(
                    emit(), ngpu, nodes=nodes, fabric=fabric
                ),
            )
            return simulate_events(graph, config, storage, streams=streams)
        link = config.link_spec(link_gbs) if ngpu > 1 else None

        def _compose():
            graph = emit()
            if ngpu > 1:
                graph = partition_graph(graph, ngpu, link)
            if out_of_core:
                graph = rewrite_out_of_core(
                    graph, config, storage, budget_bytes
                )
            return graph

        graph = bound_structure(
            (
                tag + "_graph", config, *shape_key, ngpu, streams,
                out_of_core, link, budget_bytes,
            ),
            _compose,
        )
        if streams > 1:
            return schedule_streams(graph, config, storage, streams)
        if ngpu > 1:
            return price_partitioned(graph, config, storage)
        return AnalyticExecutor(config, storage).run(graph)

    # ------------------------------------------------------------------ #
    # analytic autotuning
    # ------------------------------------------------------------------ #
    def tune(
        self,
        n: int,
        batch: Optional[int] = None,
        objective: str = "time",
        budget: int = 96,
        nodes: Optional[Tuple[int, ...]] = None,
        topology: Optional[Topology] = None,
    ) -> "TunePlan":
        """Search every execution axis analytically for the fastest config.

        Runs the staged analytic search of
        :mod:`repro.tuning.planner` - a coarse grid over
        :class:`~repro.sim.params.KernelParams` x ``streams`` x ``ngpu``
        x out-of-core window budget, followed by local refinement around
        the leaders - using this handle's cost model as the oracle (no
        numerics are executed), and returns a ranked
        :class:`~repro.tuning.TunePlan`.  The handle's own configuration
        is always evaluated first, so the winning config is never
        analytically slower than the untuned default.  Results are
        memoized per (device, precision, shape) alongside the autotune
        cache; ``budget`` caps the number of oracle evaluations.

        ``plan.apply()`` constructs the winning :class:`Solver`;
        ``plan.best.predict_kwargs()`` are the matching
        :meth:`predict` arguments.  ``objective`` is ``"time"`` (default)
        or ``"throughput"`` (problems per second; requires ``batch=``).
        ``nodes`` opts the search into the cluster axis: pass the node
        counts to consider (e.g. ``nodes=(1, 2, 4)``) and multi-node
        candidates are priced through the discrete-event simulator; the
        default searches single-node topologies only.

        ``topology`` (a :class:`repro.Topology`; mutually exclusive with
        ``nodes``) opts the search into the **placement axis** over a
        heterogeneous fleet: besides the kernel/stream grid, candidates
        cover which of the fleet's devices to use - the full
        cost-weighted fleet plus every uniform per-device-type subset at
        power-of-two counts - each priced through
        :meth:`predict` with ``topology=``.  The homogeneous default
        (the handle's own backend, ``ngpu=1``) is still evaluated first,
        so the winner is never analytically slower than it; the winning
        candidate's ``predict_kwargs()`` carry its topology.
        """
        if self._config.method != "qr":
            raise InvalidParamsError(
                "tuning searches the two-stage QR pipeline; construct "
                "the Solver with method='qr'"
            )
        if topology is not None and nodes is not None:
            raise InvalidParamsError(
                "topology= already fixes the fleet axes; also passing "
                "nodes is ambiguous - drop the legacy spelling(s) or "
                "the topology"
            )
        self._config.require_precision("tune")
        from .tuning.planner import tune_resolved

        return tune_resolved(
            n,
            self._config,
            batch=batch,
            objective=objective,
            budget=budget,
            nodes=nodes,
            topology=topology,
        )

    # ------------------------------------------------------------------ #
    # plan/execute
    # ------------------------------------------------------------------ #
    def plan(self, shape: Union[int, Tuple[int, ...]]) -> "SvdPlan":
        """Build a reusable :class:`SvdPlan` for one problem shape.

        ``shape`` is ``n`` or ``(n, n)`` for square problems, ``(m, n)``
        for rectangular ones, or ``(batch, n, n)`` for stacks.  Requires a
        handle constructed with an explicit precision (the plan pins the
        storage dtype of its workspace).
        """
        if self._config.method != "qr":
            raise InvalidParamsError(
                "plans precompute the two-stage QR launch graph; construct "
                "the Solver with method='qr'"
            )
        return SvdPlan(self._config, shape)

    # ------------------------------------------------------------------ #
    # serving
    # ------------------------------------------------------------------ #
    def serve(self, **kwargs) -> "object":
        """Build an async :class:`~repro.serve.SvdService` over this handle.

        The service queues ``submit(A, slo_s=, priority=)`` calls, groups
        them by shape class, prices every candidate batch with this
        handle's analytic oracle before dispatch (EDF ordering, SLO
        shedding, out-of-core spilling) and executes batches through the
        graph-native batched replay - results are bitwise identical to
        synchronous :meth:`solve` calls.  Keyword arguments
        (``max_batch``, ``max_wait_s``, ``max_depth``,
        ``mem_budget_gb``, ``tune``, ``clock``) are forwarded to
        :class:`~repro.serve.SvdService`; use ``async with
        solver.serve(...) as service:`` to run it.  Requires a handle
        constructed with an explicit precision and ``method='qr'``.
        """
        from .serve import SvdService

        return SvdService(self, **kwargs)


class SvdPlan:
    """Precomputed execution plan for repeated same-shape solves.

    Construction resolves everything a solve of this shape needs beyond
    the numerics: the padded problem size and tile grid, the capacity
    check, a reusable padded workspace in storage precision, the emitted
    :class:`~repro.sim.graph.LaunchGraph` of the static schedule, and its
    full launch-price table (filled by pricing the graph analytically).
    :meth:`execute` then replays the cached graph with zero
    schedule-construction cost — results are bitwise identical to
    one-shot :meth:`Solver.solve` calls.

    A plan owns one workspace buffer, so a single plan instance must not
    be executed concurrently from multiple threads.
    """

    def __init__(
        self, config: SolveConfig, shape: Union[int, Tuple[int, ...]]
    ) -> None:
        if isinstance(shape, (int, np.integer)):
            shape = (int(shape), int(shape))
        shape = tuple(int(s) for s in shape)
        if len(shape) not in (2, 3) or any(s < 1 for s in shape):
            raise ShapeError(
                f"plan expects (n, n), (m, n) or (batch, n, n) with "
                f"positive sizes, got {shape}"
            )
        if len(shape) == 3 and shape[1] != shape[2]:
            raise ShapeError(
                f"batched plans require square matrices, got {shape}"
            )

        storage = config.require_precision("plan")
        # pin the precision so execution cannot re-infer from input dtypes
        self.config = config
        self.shape = shape
        self.storage = storage
        self.compute = config.backend.compute_precision(storage)

        ts = config.params.tilesize
        if len(shape) == 3:
            self.kind = "batched"
            self.batch: Optional[int] = shape[0]
            m = n = shape[1]
        elif shape[0] == shape[1]:
            self.kind = "square"
            self.batch = None
            m = n = shape[0]
        else:
            self.kind = "rect"
            self.batch = None
            # the tall-QR chain runs on the transpose when m < n
            m, n = max(shape), min(shape)
        self.m, self.n = m, n
        #: Padded order of the square stage-1 problem (tiling metadata).
        self.npad = ntiles(n, ts) * ts
        #: Tile-grid side of the square stage-1 problem.
        self.nbt = self.npad // ts

        # capacity is checked once, exactly as the per-call drivers would
        if self.kind == "rect":
            config.backend.check_capacity(int(np.sqrt(m * n)) + 1, storage)
            self.mpad = ntiles(m, ts) * ts
            self._workspace = np.zeros(
                (self.mpad, self.npad), dtype=storage.dtype
            )
            # the square solve of the R factor reuses its own buffer too
            self._square_workspace: Optional[np.ndarray] = np.zeros(
                (self.npad, self.npad), dtype=storage.dtype
            )
        else:
            config.backend.check_capacity(n, storage)
            self.mpad = self.npad
            self._workspace = np.zeros(
                (self.npad, self.npad), dtype=storage.dtype
            )
            self._square_workspace = None

        #: The emitted launch graph of the planned (square) solve; rect
        #: plans additionally cache the tall-QR preprocessing graph, and
        #: batched plans replay the square graph once per matrix.
        self._graph = emit_svd_graph(self.n, config)
        self._prep_graph = (
            emit_tallqr_graph(self.m, self.n, config)
            if self.kind == "rect" else None
        )
        #: Shared launch-price memo (see ``Session.cost_cache``), filled
        #: by pricing the cached graph(s) - the numeric replay requests
        #: exactly these keys, so no cost-model arithmetic remains on the
        #: solve path.
        self._cost_cache: dict = {}
        pricer = AnalyticExecutor(config, storage, cache=self._cost_cache)
        self._square_breakdown = pricer.run(self._graph)
        self._prep_breakdown = (
            pricer.run(self._prep_graph) if self._prep_graph else None
        )

    # ------------------------------------------------------------------ #
    @property
    def graph(self):
        """The cached :class:`~repro.sim.graph.LaunchGraph` replayed per solve."""
        return self._graph

    @property
    def launch_prices(self) -> int:
        """Number of pre-priced launch shapes in the plan's table."""
        return len(self._cost_cache)

    def breakdown(self) -> TimeBreakdown:
        """Analytic runtime prediction for this plan's shape.

        Rectangular plans include the tall-QR preprocessing on top of the
        square ``min(m, n)`` solve (matching the merged ``return_info``
        accounting of the rectangular driver).
        """
        if self.kind == "batched":
            return predict_batched_resolved(self.n, self.batch, self.config)
        sq = self._square_breakdown
        bd = TimeBreakdown(
            n=sq.n, panel_s=sq.panel_s, update_s=sq.update_s,
            brd_s=sq.brd_s, solve_s=sq.solve_s, launches=dict(sq.launches),
            flops=sq.flops, bytes=sq.bytes,
        )
        if self.kind == "rect":
            pre = self._prep_breakdown
            bd.panel_s += pre.panel_s
            bd.update_s += pre.update_s
            for kernel, count in pre.launches.items():
                bd.launches[kernel] = bd.launches.get(kernel, 0) + count
            bd.flops += pre.flops
            bd.bytes += pre.bytes
        return bd

    def execute(
        self, A: Union[np.ndarray, Sequence[np.ndarray]], return_info: bool = False
    ):
        """Run the planned solve on one input of the planned shape.

        Square and rectangular plans expect exactly ``plan.shape`` (or its
        transpose for rectangular inputs); batched plans accept any batch
        count of ``(n, n)`` matrices.  Values are bitwise identical to the
        corresponding one-shot :meth:`Solver.solve` call.
        """
        if self.kind == "batched":
            return svdvals_batched_resolved(
                A,
                self.config,
                return_info=return_info,
                workspace=self._workspace,
                cost_cache=self._cost_cache,
                graph=self._graph,
            )
        A = np.asarray(A)
        if self.kind == "square":
            if A.shape != self.shape:
                raise ShapeError(
                    f"plan was built for shape {self.shape}, got {A.shape}"
                )
            return svdvals_resolved(
                A,
                self.config,
                return_info=return_info,
                workspace=self._workspace,
                cost_cache=self._cost_cache,
                graph=self._graph,
            )
        if A.shape not in ((self.m, self.n), (self.n, self.m)):
            raise ShapeError(
                f"plan was built for shape {self.shape}, got {A.shape}"
            )
        return svdvals_rect_resolved(
            A,
            self.config,
            return_info=return_info,
            workspace=self._workspace,
            cost_cache=self._cost_cache,
            square_workspace=self._square_workspace,
            prep_graph=self._prep_graph,
            square_graph=self._graph,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        """Readable summary of the plan's shape and backing config."""
        return (
            f"SvdPlan({self.kind}, shape={self.shape}, "
            f"backend={self.config.backend.name!r}, "
            f"precision={self.storage.name_lower!r}, npad={self.npad})"
        )
