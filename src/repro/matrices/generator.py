"""Test-matrix generator: ``A = U' diag(sigma) V`` with Haar-random factors.

Reproduces the paper's accuracy-study construction (after RandomMatrices.jl):
matrices with *known* singular values and random unitary factors, generated
per precision and seeded for reproducibility.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..precision import Precision, PrecisionLike, resolve_precision
from .distributions import get_distribution

__all__ = ["gaussian_sketch", "haar_orthogonal", "make_test_matrix", "TestMatrix"]


def haar_orthogonal(
    n: int, rng: np.random.Generator, dtype=np.float64
) -> np.ndarray:
    """Haar-distributed random orthogonal matrix.

    QR of a standard Gaussian matrix with the R-diagonal sign correction
    (Mezzadri 2007) - without the correction the distribution is not Haar.
    """
    Z = rng.standard_normal((n, n))
    Q, R = np.linalg.qr(Z)
    signs = np.sign(np.diagonal(R))
    signs[signs == 0.0] = 1.0
    return (Q * signs).astype(dtype)


def gaussian_sketch(
    n: int,
    l: int,
    seed: int = 0,
    precision: PrecisionLike = Precision.FP64,
) -> np.ndarray:
    """Seeded Gaussian sketch matrix ``Omega (n x l)`` for randomized SVD.

    The random stream is keyed by ``(seed, n, l)`` through one
    ``SeedSequence``, so the sketch is bitwise reproducible per
    ``(seed, shape, precision)`` — two solves with the same seed draw the
    same Omega regardless of what else the process sampled before, and
    *different* shapes under one seed draw independent streams instead of
    a shared-prefix one.  Entries are standard normal, drawn in float64
    and rounded once to the storage precision.
    """
    if n < 1 or l < 1:
        raise ValueError(f"sketch shape must be positive, got ({n}, {l})")
    prec = resolve_precision(precision)
    rng = np.random.default_rng(
        np.random.SeedSequence(entropy=int(seed), spawn_key=(int(n), int(l)))
    )
    return rng.standard_normal((n, l)).astype(prec.dtype)


@dataclass(frozen=True)
class TestMatrix:
    """A generated test matrix together with its exact singular values."""

    A: np.ndarray
    sigma: np.ndarray  # exact singular values (descending, float64)
    distribution: str
    seed: int


def make_test_matrix(
    n: int,
    distribution: str = "logarithmic",
    precision: PrecisionLike = Precision.FP64,
    seed: int = 0,
    sigma: Optional[np.ndarray] = None,
) -> TestMatrix:
    """Construct ``A = U diag(sigma) V^T`` with known singular values.

    Parameters
    ----------
    n:
        Matrix order.
    distribution:
        One of ``"arithmetic"``, ``"logarithmic"``, ``"quarter-circle"``
        (ignored when ``sigma`` is given).
    precision:
        Storage precision of the returned matrix.  Note that rounding the
        product to low precision perturbs the exact singular values by
        ``O(eps)`` - the same caveat applies to the paper's FP16 column.
    seed:
        Seed for the Haar factors.
    sigma:
        Explicit singular values (descending) overriding ``distribution``.
    """
    prec = resolve_precision(precision)
    rng = np.random.default_rng(seed)
    custom_sigma = sigma is not None
    if sigma is None:
        sigma = get_distribution(distribution)(n)
    sigma = np.asarray(sigma, dtype=np.float64)
    if sigma.shape != (n,):
        raise ValueError(f"sigma must have shape ({n},), got {sigma.shape}")
    U = haar_orthogonal(n, rng)
    V = haar_orthogonal(n, rng)
    A = (U * sigma) @ V.T  # U @ diag(sigma) @ V^T without forming diag
    return TestMatrix(
        A=A.astype(prec.dtype),
        sigma=np.sort(sigma)[::-1].copy(),
        distribution="custom" if custom_sigma else distribution,
        seed=seed,
    )
