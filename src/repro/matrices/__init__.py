"""Random test-matrix substrate (paper accuracy study, Table 1)."""

from .distributions import (
    DISTRIBUTIONS,
    arithmetic_sigma,
    get_distribution,
    logarithmic_sigma,
    quarter_circle_sigma,
)
from .generator import (
    TestMatrix,
    gaussian_sketch,
    haar_orthogonal,
    make_test_matrix,
)

__all__ = [
    "DISTRIBUTIONS",
    "TestMatrix",
    "arithmetic_sigma",
    "gaussian_sketch",
    "get_distribution",
    "haar_orthogonal",
    "logarithmic_sigma",
    "make_test_matrix",
    "quarter_circle_sigma",
]
