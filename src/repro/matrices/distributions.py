"""Singular-value distributions used by the paper's accuracy study.

Section 3.2 (Accuracy) evaluates three distributions of singular values on
the interval ``[0, 1]``:

* **arithmetic** - evenly spaced values; the best-conditioned case;
* **logarithmic** - geometrically spaced values, "more representative of
  typical practical cases";
* **quarter-circle** - the limiting spectral distribution of square
  matrices with i.i.d. random entries (Marchenko-Pastur in its
  quarter-circle form), mimicking random test matrices.

Each generator returns ``n`` values in descending order within ``(0, 1]``.
The ``[0, 1]`` interval is general: larger spectra are element-wise
rescalings (exactly the paper's argument).
"""

from __future__ import annotations

import math
from typing import Callable, Dict

import numpy as np

__all__ = [
    "arithmetic_sigma",
    "logarithmic_sigma",
    "quarter_circle_sigma",
    "DISTRIBUTIONS",
    "get_distribution",
]


def arithmetic_sigma(n: int) -> np.ndarray:
    """Evenly spaced singular values ``1, (n-1)/n, ..., 1/n``."""
    if n < 1:
        raise ValueError("need n >= 1")
    return (np.arange(n, 0, -1, dtype=np.float64)) / float(n)


def logarithmic_sigma(n: int, decades: float = 4.0) -> np.ndarray:
    """Geometrically spaced singular values spanning ``decades`` decades.

    ``sigma_i = 10^(-decades * i / (n-1))`` for ``i = 0..n-1``; the default
    four decades keeps the smallest value representable in FP16 while
    exercising a wide dynamic range.
    """
    if n < 1:
        raise ValueError("need n >= 1")
    if n == 1:
        return np.ones(1)
    expo = -decades * np.arange(n, dtype=np.float64) / (n - 1)
    return 10.0**expo


def _quarter_circle_cdf(x: np.ndarray) -> np.ndarray:
    """CDF of the quarter-circle density ``f(x) = (4/pi) sqrt(1 - x^2)``."""
    x = np.clip(x, 0.0, 1.0)
    return (2.0 / math.pi) * (x * np.sqrt(1.0 - x * x) + np.arcsin(x))


def quarter_circle_sigma(n: int, iters: int = 60) -> np.ndarray:
    """Deterministic quantiles of the quarter-circle law on ``[0, 1]``.

    Solves ``F(sigma_i) = (i + 1/2) / n`` by bisection (the CDF has no
    elementary inverse); values are returned in descending order, matching
    the expected spectrum shape of an i.i.d. random matrix normalized to
    spectral radius one.
    """
    if n < 1:
        raise ValueError("need n >= 1")
    targets = (np.arange(n, dtype=np.float64) + 0.5) / n
    lo = np.zeros(n)
    hi = np.ones(n)
    for _ in range(iters):
        mid = 0.5 * (lo + hi)
        too_high = _quarter_circle_cdf(mid) > targets
        hi = np.where(too_high, mid, hi)
        lo = np.where(too_high, lo, mid)
    vals = 0.5 * (lo + hi)
    return np.sort(vals)[::-1].copy()


DISTRIBUTIONS: Dict[str, Callable[[int], np.ndarray]] = {
    "arithmetic": arithmetic_sigma,
    "logarithmic": logarithmic_sigma,
    "quarter-circle": quarter_circle_sigma,
}


def get_distribution(name: str) -> Callable[[int], np.ndarray]:
    """Look up a distribution generator by name."""
    key = name.strip().lower().replace("_", "-")
    if key not in DISTRIBUTIONS:
        raise KeyError(
            f"unknown singular value distribution {name!r}; "
            f"available: {', '.join(sorted(DISTRIBUTIONS))}"
        )
    return DISTRIBUTIONS[key]
