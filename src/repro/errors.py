"""Exception hierarchy for the ``repro`` library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch library failures with a single ``except`` clause while letting genuine
programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations

from typing import Optional

__all__ = [
    "ReproError",
    "UnsupportedPrecisionError",
    "UnsupportedBackendError",
    "CapacityError",
    "ShedError",
    "WindowOverflowError",
    "InvalidParamsError",
    "ConvergenceError",
    "ShapeError",
]


class ReproError(Exception):
    """Base class for every exception raised by the ``repro`` library."""


class UnsupportedPrecisionError(ReproError):
    """A backend does not support the requested input precision.

    Mirrors the real-world gaps reported in the paper (Figure 5): the Julia
    AMD GPU stack cannot convert FP16 at calculation time, and Apple Metal
    has no FP64 arithmetic.
    """


class UnsupportedBackendError(ReproError):
    """The requested backend name is not registered."""


class CapacityError(ReproError):
    """The problem does not fit in simulated device memory.

    The paper notes the RTX4060 is limited to 32k matrices and that FP16
    enables H100-resident problems up to 131k x 131k; this error enforces
    the same ``n^2 * sizeof(precision)`` budget against device memory.
    """


class ShedError(CapacityError):
    """A serving request was shed instead of dispatched.

    Raised (via the request's future) by :class:`repro.serve.SvdService`
    when admission control decides a request cannot be served: either its
    predicted completion time already exceeds its SLO, or the batch it
    belongs to cannot run on the backend even out-of-core.  Deriving from
    :class:`CapacityError` keeps the library contract that pressure
    failures share one catchable type, while ``predicted_s`` / ``slo_s``
    preserve the admission context that a bare :class:`CapacityError`
    raised deep inside predict/emit would lose.
    """

    def __init__(
        self,
        message: str,
        *,
        predicted_s: Optional[float] = None,
        slo_s: Optional[float] = None,
    ) -> None:
        """Record the admission verdict alongside the message.

        ``predicted_s`` is the analytic service time of the batch the
        request would have joined (``None`` when pricing itself failed);
        ``slo_s`` is the request's deadline (``None`` for best-effort
        requests shed on capacity).
        """
        super().__init__(message)
        self.predicted_s = predicted_s
        self.slo_s = slo_s


class WindowOverflowError(CapacityError):
    """An out-of-core replay exceeded its device-window budget.

    Raised by the tile-residency tracker in :mod:`repro.backends.memory`
    when a rewritten out-of-core launch graph loads more tiles than its
    declared window capacity, or when a kernel touches a tile that is not
    resident - either is a bug in the graph rewriter, so the numeric
    executor *faults* instead of silently touching host-resident data.
    """


class InvalidParamsError(ReproError):
    """Kernel hyperparameters violate a hardware or algorithmic constraint.

    Section 3.3 constrains ``TILESIZE^2 * sizeof(precision)`` to the L1
    budget, ``SPLITK <= min(TILESIZE, 1024/TILESIZE)`` and ``COLPERBLOCK``
    to divide ``TILESIZE``.
    """


class ConvergenceError(ReproError):
    """An iterative bidiagonal solver exceeded its iteration budget."""


class ShapeError(ReproError):
    """Input matrix shape is not supported (non-square, empty, ...)."""
