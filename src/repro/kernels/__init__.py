"""Stage-1 tile kernels: the paper's unified GPU kernel set.

One precision- and backend-generic implementation of each kernel
(GEQRT, TSQRT, UNMQR, TSMQR and the fused FTSQRT/FTSMQR); LQ sweeps reuse
the same kernels on lazy-transpose views exactly as the Julia code does.
"""

from .fused import ftsmqr, ftsqrt
from .geqrt import geqrt
from .householder import make_reflector
from .tsmqr import tsmqr
from .tsqrt import tsqrt
from .unmqr import unmqr

__all__ = [
    "ftsmqr",
    "ftsqrt",
    "geqrt",
    "make_reflector",
    "tsmqr",
    "tsqrt",
    "unmqr",
]
