"""TSQRT: QR of a triangle-on-top-of-square tile pair.

Given the upper-triangular ``R`` produced by GEQRT on the diagonal tile and
a full square tile ``B`` below it, TSQRT computes the QR factorization of
the stacked ``[R; B]`` pair.  The reflector for column ``k`` has the
structured form ``v = [e_k; b]``: it touches only the diagonal element of
the top tile and the *entire* ``k``-th column of the bottom tile, so the
top tile stays triangular and the bottom tile stores the reflector tails.

On exit:

* ``R`` is overwritten by the updated triangular factor;
* ``B`` holds the normalized reflector tails (column ``k`` = ``u_k / x_k``);
* ``tau[k]`` holds ``tau_hat_k``.

This is Algorithm 3 "extended to use a second tile" (paper section 3.2);
every column produces a reflector because the bottom tile always has
``TILESIZE`` rows to annihilate.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .householder import make_reflector

__all__ = ["tsqrt", "tsqrt_body"]


def tsqrt_body(R: np.ndarray, B: np.ndarray, tau: np.ndarray, eps: float) -> None:
    """In-place TSQRT on arrays already in compute precision."""
    ts = R.shape[0]
    for k in range(ts):
        alpha = float(R[k, k])
        u = B[:, k].copy()
        sigma2 = float(u @ u)
        x, tk, clamped = make_reflector(alpha, sigma2, eps)
        tau[k] = tk
        v = np.zeros_like(u) if clamped else u / x
        if k + 1 < ts:
            rho = tk * (R[k, k + 1 :] + v @ B[:, k + 1 :])
            R[k, k + 1 :] -= rho
            B[:, k + 1 :] -= np.outer(v, rho)
        R[k, k] = -alpha if clamped else alpha - tk * (alpha + sigma2 / x)
        B[:, k] = v


def tsqrt(
    R: np.ndarray,
    B: np.ndarray,
    tau: np.ndarray,
    eps: float,
    compute_dtype: Optional[np.dtype] = None,
) -> None:
    """TSQRT with optional FP16-style load upcast / store downcast.

    Parameters
    ----------
    R:
        ``(ts, ts)`` upper-triangular tile (GEQRT output), updated in place.
    B:
        ``(ts, ts)`` below tile; replaced by the reflector tails.
    tau:
        Length-``ts`` output for the normalized taus.
    eps:
        Machine epsilon of the input precision.
    compute_dtype:
        Arithmetic dtype; defaults to the tiles' own dtype.
    """
    ts = R.shape[0]
    if R.shape != (ts, ts) or B.shape != (ts, ts):
        raise ValueError(
            f"TSQRT expects square tiles of equal size, got {R.shape}, {B.shape}"
        )
    if compute_dtype is None or R.dtype == compute_dtype:
        tsqrt_body(R, B, tau, eps)
        return
    Rw = R.astype(compute_dtype)
    Bw = B.astype(compute_dtype)
    tsqrt_body(Rw, Bw, tau, eps)
    R[...] = Rw
    B[...] = Bw
