"""GEQRT: in-place Householder QR of one square tile (Algorithm 3).

On the simulated GPU this kernel runs as a single thread block of
``SPLITK x TILESIZE`` threads; numerically it is the classical unblocked
Householder QR with the paper's normalized-tau storage scheme:

* on exit the upper triangle of the tile holds ``R``;
* the strict lower triangle holds the reflector tails ``u / x`` (the
  leading 1 of each ``v`` is implicit);
* ``tau[k]`` holds ``tau_hat_k`` with ``H_k = I - tau_hat_k v_k v_k^T``;
* the last column produces no reflector (``tau[TS-1] = 0``).

The kernel is precision-generic: when the storage dtype differs from the
backend's compute dtype (FP16 on NVIDIA/Intel), data is upcast on load and
rounded back through the storage dtype on store, mirroring the paper's
"upcast during computation, downcast at storage time" behaviour.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .householder import make_reflector

__all__ = ["geqrt"]


def geqrt(
    tile: np.ndarray,
    tau: np.ndarray,
    eps: float,
    compute_dtype: Optional[np.dtype] = None,
) -> None:
    """Factorize ``tile`` in place; write ``tau_hat`` coefficients.

    Parameters
    ----------
    tile:
        ``(ts, ts)`` array view (may be a lazy-transpose view for LQ use).
    tau:
        Length-``ts`` output vector for the normalized taus.
    eps:
        Machine epsilon of the *input* precision (small-reflector guard).
    compute_dtype:
        Arithmetic dtype; defaults to the tile's own dtype.
    """
    ts = tile.shape[0]
    if tile.shape != (ts, ts):
        raise ValueError(f"GEQRT expects a square tile, got {tile.shape}")
    work = tile
    if compute_dtype is not None and tile.dtype != compute_dtype:
        work = tile.astype(compute_dtype)

    for k in range(ts - 1):
        alpha = float(work[k, k])
        u = work[k + 1 :, k].copy()
        sigma2 = float(u @ u)
        x, tk, clamped = make_reflector(alpha, sigma2, eps)
        tau[k] = tk
        v = np.zeros_like(u) if clamped else u / x
        if k + 1 < ts:
            # trailing-column update: rho'_j = tau * (A[k,j] + (u/x).A[k+1:,j])
            rho = tk * (work[k, k + 1 :] + v @ work[k + 1 :, k + 1 :])
            work[k, k + 1 :] -= rho
            work[k + 1 :, k + 1 :] -= np.outer(v, rho)
        # pivot update (line 16 for thread i = k) and normalized-v store.
        work[k, k] = -alpha if clamped else alpha - tk * (alpha + sigma2 / x)
        work[k + 1 :, k] = v
    if ts >= 1:
        tau[ts - 1] = 0.0

    if work is not tile:
        tile[...] = work  # downcast store through the storage dtype
