"""UNMQR: apply a GEQRT reflector set to a tile row (Algorithm 4).

Applies ``Q^T`` (the product of the stored Householder reflectors, first
reflector first) to the trailing columns ``X`` of the panel's tile row.
On the simulated GPU this is the massively parallel update kernel: the
trailing width is partitioned into groups of ``COLPERBLOCK`` columns, one
workgroup each; numerically every reflector application is one vectorized
rank-1 update across the full row width.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["unmqr"]


def unmqr(
    V: np.ndarray,
    tau: np.ndarray,
    X: np.ndarray,
    compute_dtype: Optional[np.dtype] = None,
) -> None:
    """Overwrite ``X`` with ``Q^T X`` using GEQRT's stored reflectors.

    Parameters
    ----------
    V:
        ``(ts, ts)`` GEQRT output tile; the strict lower triangle holds the
        normalized reflector tails (implicit unit diagonal).
    tau:
        Length-``ts`` normalized taus from GEQRT.
    X:
        ``(ts, m)`` trailing-row view, updated in place.
    compute_dtype:
        Arithmetic dtype; defaults to ``X``'s dtype.
    """
    ts = V.shape[0]
    if X.shape[0] != ts:
        raise ValueError(f"X row count {X.shape[0]} != tile size {ts}")
    if X.shape[1] == 0:
        return
    work = X
    if compute_dtype is not None and X.dtype != compute_dtype:
        work = X.astype(compute_dtype)
    Vw = V if V.dtype == work.dtype else V.astype(work.dtype)

    for k in range(ts - 1):
        tk = float(tau[k])
        if tk == 0.0:
            continue
        v = Vw[k + 1 :, k]
        rho = tk * (work[k, :] + v @ work[k + 1 :, :])
        work[k, :] -= rho
        work[k + 1 :, :] -= np.outer(v, rho)

    if work is not X:
        X[...] = work
