"""Fused panel kernels FTSQRT / FTSMQR (paper Figure 2, Algorithm 5).

The classic schedule launches one TSQRT and one TSMQR *per below-diagonal
tile row*; launches then scale quadratically with the tile count.  The
fused kernels process the whole panel in a single launch:

* **FTSQRT** runs the TSQRT bodies for every tile row sequentially against
  the shared triangular top tile (the dependency chain through ``R`` is
  inherent, so fusion loses no parallelism);
* **FTSMQR** keeps the top tile row ``Y`` resident (in registers, per
  Algorithm 5's ``Yi`` private array) while walking the below rows, so the
  top row is loaded from global memory once per launch instead of once per
  tile row.

Numerically the fused kernels execute the *same operations in the same
order* as the unfused sequence - a property the test suite pins exactly.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from .tsmqr import tsmqr_body
from .tsqrt import tsqrt_body

__all__ = ["ftsqrt", "ftsmqr"]


def ftsqrt(
    R: np.ndarray,
    Bs: Sequence[np.ndarray],
    taus: Sequence[np.ndarray],
    eps: float,
    compute_dtype: Optional[np.dtype] = None,
) -> None:
    """Fused TSQRT over all below-diagonal tiles of one panel.

    Parameters
    ----------
    R:
        ``(ts, ts)`` triangular top tile (GEQRT output), updated in place.
    Bs:
        Below tiles, each ``(ts, ts)``; replaced by reflector tails.
    taus:
        One length-``ts`` tau vector per below tile.
    eps:
        Machine epsilon of the input precision.
    compute_dtype:
        Arithmetic dtype; defaults to the tiles' dtype.
    """
    if len(Bs) != len(taus):
        raise ValueError("need one tau vector per below tile")
    if not Bs:
        return
    if compute_dtype is None or R.dtype == compute_dtype:
        for B, tau in zip(Bs, taus):
            tsqrt_body(R, B, tau, eps)
        return
    Rw = R.astype(compute_dtype)
    for B, tau in zip(Bs, taus):
        Bw = B.astype(compute_dtype)
        tsqrt_body(Rw, Bw, tau, eps)
        B[...] = Bw  # downcast store per tile row, like the real kernel
    R[...] = Rw


def ftsmqr(
    Vs: Sequence[np.ndarray],
    taus: Sequence[np.ndarray],
    Y: np.ndarray,
    Xs: Sequence[np.ndarray],
    compute_dtype: Optional[np.dtype] = None,
) -> None:
    """Fused TSMQR: apply every panel row's reflectors in one launch.

    Parameters
    ----------
    Vs:
        TSQRT reflector tiles, one per below tile row.
    taus:
        Matching tau vectors.
    Y:
        ``(ts, m)`` top tile-row view, resident across the whole launch.
    Xs:
        Below tile-row views, each ``(ts, m)``, updated in place.
    compute_dtype:
        Arithmetic dtype; defaults to the views' dtype.
    """
    if not (len(Vs) == len(taus) == len(Xs)):
        raise ValueError("Vs, taus and Xs must have equal length")
    if not Vs or Y.shape[1] == 0:
        return
    if compute_dtype is None or Y.dtype == compute_dtype:
        for V, tau, X in zip(Vs, taus, Xs):
            Vw = V if V.dtype == Y.dtype else V.astype(Y.dtype)
            tsmqr_body(Vw, tau, Y, X)
        return
    Yw = Y.astype(compute_dtype)  # top row loaded once (Figure 2)
    for V, tau, X in zip(Vs, taus, Xs):
        Xw = X.astype(compute_dtype)
        tsmqr_body(V.astype(compute_dtype), tau, Yw, Xw)
        X[...] = Xw
    Y[...] = Yw
