"""Householder reflector arithmetic (Algorithm 3, lines 10-15).

The paper's kernels use a *normalized* reflector representation: the
Householder matrix is ``H = I - tau_hat * v v^T`` with ``v = [1, u / x]``,
where ``u`` is the below-pivot column, ``x`` the stabilized root

    x = alpha - sqrt(alpha^2 + |u|^2)   if alpha <  0
    x = alpha + sqrt(alpha^2 + |u|^2)   if alpha >= 0

and ``tau_hat = 2 x^2 / (x^2 + |u|^2)``.  Choosing the root with the same
sign as ``alpha`` avoids catastrophic cancellation (the classical LAPACK
trick), and ``tau_hat = 2 / (v^T v)`` makes ``H`` exactly orthogonal.

Tiny reflectors (``|x| < 10 eps``) arise when the pivot column is already
numerically zero - e.g. in zero-padded tiles.  Algorithm 3 lines 14-15
clamp ``x`` to ``10 eps`` and force ``tau_hat = 2`` (a pure sign flip),
which this module reproduces verbatim.
"""

from __future__ import annotations

import math
from typing import Tuple

__all__ = ["make_reflector", "apply_factor"]


def make_reflector(
    alpha: float, sigma2: float, eps: float
) -> Tuple[float, float, bool]:
    """Compute the stabilized root ``x`` and ``tau_hat`` for one reflector.

    Parameters
    ----------
    alpha:
        Pivot element ``A_k[k]``.
    sigma2:
        Squared norm of the below-pivot column ``|A_k[k+1:]|^2``.
    eps:
        Machine epsilon of the input precision (drives the small-reflector
        correction threshold ``10 eps``).

    Returns
    -------
    (x, tau_hat, clamped):
        Root, normalized tau, and whether the small-reflector correction
        fired.  The Householder vector is ``[1, u / x]`` and the updated
        pivot is ``alpha - tau_hat * (alpha + sigma2 / x)``.

    Notes
    -----
    When ``clamped`` is True the entire pivot column has magnitude below
    ``10 eps``.  Algorithm 3 lines 14-15 clamp ``x`` to ``10 eps`` and set
    ``tau_hat = 2``; the kernels in this reproduction additionally drop
    the stored tail (``v = e_k``, a pure sign flip).  ``tau_hat = 2`` is
    exactly orthogonal only for that choice, and keeping the ``u / x``
    tail can corrupt the trailing matrix at O(1) when ``|u| ~ |x|``
    (e.g. exactly-rank-deficient tiles); dropping it bounds the backward
    error by the ``10 eps`` column that is left behind.
    """
    s = math.sqrt(alpha * alpha + sigma2)
    if alpha < 0.0:
        x = alpha - s
    else:
        x = alpha + s
    # small-reflector correction (Algorithm 3 lines 14-15)
    if abs(x) < 10.0 * eps:
        return 10.0 * eps, 2.0, True
    tau = 2.0 * x * x / (x * x + sigma2)
    return x, tau, False


def apply_factor(tau: float, x: float, pivot_row, dot_row):
    """Scale factor ``rho' = tau_hat * (pivot + dot / x)`` (vectorized).

    ``pivot_row`` is the pivot-row slice of the columns being updated and
    ``dot_row`` the inner products of the (unnormalized) below-pivot column
    with those columns; both may be NumPy arrays.  This is line 13 of
    Algorithm 3 written for the normalized-``v`` storage convention, and it
    degrades to the corrected form of line 15 when ``tau_hat == 2``.
    """
    return tau * (pivot_row + dot_row / x)
