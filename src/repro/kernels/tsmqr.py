"""TSMQR: apply TSQRT reflectors to a pair of tile rows.

Given the structured reflectors ``v_k = [e_k; V[:, k]]`` produced by TSQRT,
update the trailing columns of the panel's top tile row ``Y`` and of the
below tile row ``X``:

    rho = tau_hat_k * (Y[k, :] + V[:, k]^T X)
    Y[k, :] -= rho
    X      -= V[:, k] * rho

which is exactly the inner loop of the fused kernel listing (Algorithm 5,
lines 25-33) with ``Y``/``X`` swapped into matrix form across the whole
trailing width.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["tsmqr", "tsmqr_body"]


def tsmqr_body(V: np.ndarray, tau: np.ndarray, Y: np.ndarray, X: np.ndarray) -> None:
    """In-place TSMQR on arrays already in compute precision."""
    ts = V.shape[0]
    for k in range(ts):
        tk = float(tau[k])
        if tk == 0.0:
            continue
        v = V[:, k]
        rho = tk * (Y[k, :] + v @ X)
        Y[k, :] -= rho
        X -= np.outer(v, rho)


def tsmqr(
    V: np.ndarray,
    tau: np.ndarray,
    Y: np.ndarray,
    X: np.ndarray,
    compute_dtype: Optional[np.dtype] = None,
) -> None:
    """Apply one TSQRT reflector set to the (``Y``, ``X``) tile-row pair.

    Parameters
    ----------
    V:
        ``(ts, ts)`` TSQRT output (reflector tails of the below tile).
    tau:
        Length-``ts`` normalized taus from TSQRT.
    Y:
        ``(ts, m)`` top tile-row view (the panel row), updated in place.
    X:
        ``(ts, m)`` below tile-row view, updated in place.
    compute_dtype:
        Arithmetic dtype; defaults to the views' dtype.
    """
    if Y.shape != X.shape:
        raise ValueError(f"Y shape {Y.shape} != X shape {X.shape}")
    if Y.shape[1] == 0:
        return
    if compute_dtype is None or Y.dtype == compute_dtype:
        Vw = V if V.dtype == Y.dtype else V.astype(Y.dtype)
        tsmqr_body(Vw, tau, Y, X)
        return
    Yw = Y.astype(compute_dtype)
    Xw = X.astype(compute_dtype)
    Vw = V.astype(compute_dtype)
    tsmqr_body(Vw, tau, Yw, Xw)
    Y[...] = Yw
    X[...] = Xw
