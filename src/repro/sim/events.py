"""Event-driven schedule simulation: virtual clock, queues, contention.

:func:`repro.sim.timeline.schedule_streams` is a greedy list scheduler:
it assigns each launch to the earliest-available lane of its resource
pool and never revisits the decision.  That is fast and fine for one
host's devices, but it cannot express what a cluster run is actually
limited by - *queueing*.  A node's inter-connect fabric (the NIC) is one
lane shared by every GPU of the node; when four devices finish their
shards at once, three of them wait, and that wait is invisible to a
greedy scheduler that hands every device its own comm lane.

This module prices the same :class:`~repro.sim.graph.LaunchGraph`
through a discrete-event simulation instead, in the style of LANL's
Performance Prediction Toolkit (PPT/Simian: parameterized hardware
models consume tasklists inside a discrete-event engine).  Every launch
node becomes a task that *occupies a resource for its priced duration*:

========================  =============================================
Task                      Resource (capacity)
========================  =============================================
compute kernel            ``("dev", d)`` - the device's stream pool
                          (``streams`` concurrent launches)
intra-node comm           ``("link", d)`` - the device's peer-link lane
                          (capacity 1)
inter-node comm           ``("fabric", node_of(d))`` - the node's NIC
                          (``fabric_lanes``, default 1)
host<->device transfer    ``("host", d)`` - the host link (capacity 1)
========================  =============================================

The virtual clock advances through an event heap; a task becomes ready
when its last dependency finishes, starts when its resource has a free
server (FIFO otherwise), and releases the server when its duration - the
same per-node duration vector :func:`~repro.sim.table.stream_costs`
feeds the greedy scheduler - elapses.  On contention-free graphs every
start time equals the dependency-ready time on both sides, so the event
makespan equals the greedy makespan *exactly*; the pinned tests in
``tests/test_events.py`` hold the two schedulers together, the same
oracle pattern that retired every closed-form model in earlier PRs
(greedy = fast approximation, events = oracle).

The resulting :class:`EventSchedule` reports the makespan, the total
FIFO wait (``contention_s``), the critical-path lower bound, and an
*exact decomposition* of the makespan along the critical chain: walking
back from the last-finishing task, each hop is either task work
(attributed to its stage or fabric tier) or time spent waiting for a
busy resource (``queue_s``), so ``breakdown()`` returns a
:class:`~repro.sim.schedule.TimeBreakdown` whose components - including
the queueing component greedy scheduling cannot produce - sum to the
makespan.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import InvalidParamsError
from .graph import LaunchGraph
from .schedule import TimeBreakdown
from .table import stream_costs
from .tracing import Stage

__all__ = ["EventSchedule", "simulate_events"]

#: Critical-chain bucket names: the four compute stages, the two comm
#: tiers, host transfers, and the resource-wait component.
_CHAIN_KEYS = (
    Stage.PANEL, Stage.UPDATE, Stage.BRD, Stage.SOLVE,
    "comm_intra", "comm_inter", "io", "queue",
)


@dataclass
class EventSchedule:
    """Result of one discrete-event schedule simulation.

    ``makespan_s`` is the virtual-clock finish time of the last task;
    ``serial_s`` the no-overlap sum of every duration; and
    ``critical_path_s`` the dependency-only lower bound (infinite
    resources).  ``contention_s`` totals the FIFO wait of *every* task,
    while ``chain_seconds`` decomposes the makespan itself along the
    critical chain - its values (stage work, per-tier comm, queueing)
    sum to ``makespan_s``.
    """

    n: int
    nnodes: int
    ngpu: int
    streams: int
    makespan_s: float
    serial_s: float
    critical_path_s: float
    contention_s: float
    comm_intra_s: float
    comm_inter_s: float
    stage_seconds: Dict[str, float] = field(default_factory=dict)
    chain_seconds: Dict[str, float] = field(default_factory=dict)
    launches: Dict[str, int] = field(default_factory=dict)
    resource_busy_s: Dict[Tuple[str, int], float] = field(
        default_factory=dict
    )
    device_labels: Tuple[str, ...] = ()

    @property
    def total_s(self) -> float:
        """End-to-end simulated seconds (the makespan)."""
        return self.makespan_s

    @property
    def queue_s(self) -> float:
        """Resource-wait component of the makespan (critical chain)."""
        return self.chain_seconds.get("queue", 0.0)

    @property
    def contention_share(self) -> float:
        """Fraction of the makespan spent waiting for busy resources."""
        if self.makespan_s <= 0.0:
            return 0.0
        return self.queue_s / self.makespan_s

    @property
    def speedup(self) -> float:
        """Serial time over makespan (overlap factor achieved)."""
        if self.makespan_s <= 0.0:
            return 1.0
        return self.serial_s / self.makespan_s

    @property
    def comm_s(self) -> float:
        """Serial communication seconds across both tiers."""
        return self.stage_seconds.get(Stage.COMM, 0.0)

    @property
    def io_s(self) -> float:
        """Serial host<->device transfer seconds."""
        return self.stage_seconds.get(Stage.TRANSFER, 0.0)

    @property
    def launch_total(self) -> int:
        """Total kernel launches."""
        return sum(self.launches.values())

    def device_busy(self) -> Tuple[Tuple[str, float], ...]:
        """Per-device compute-lane occupancy, as ``(label, seconds)``.

        One entry per device rank in rank order; the seconds are the
        total time that rank's stream pool held a running launch
        (``resource_busy_s[("dev", d)]``).  Labels are
        ``"dev<rank>:<device>"`` when the simulation was handed a fleet's
        device names, plain ``"dev<rank>"`` otherwise.  Divide by
        ``makespan_s`` for utilization - a straggler shows up as the
        rank whose busy share stays high while the others idle.
        """
        out = []
        for d in range(self.ngpu):
            label = (
                self.device_labels[d] if d < len(self.device_labels)
                else f"dev{d}"
            )
            out.append((label, self.resource_busy_s.get(("dev", d), 0.0)))
        return tuple(out)

    def breakdown(self) -> TimeBreakdown:
        """The makespan as a :class:`TimeBreakdown`, via the critical chain.

        Stage components are the chain's work attribution (not the
        serial sums - the chain is what the wall clock actually
        followed), ``comm_intra_s`` / ``comm_inter_s`` split the chain's
        comm time by fabric tier, and ``queue_s`` is the chain's
        resource wait, so the components sum to the makespan.
        """
        chain = self.chain_seconds
        ci = chain.get("comm_intra", 0.0)
        cx = chain.get("comm_inter", 0.0)
        return TimeBreakdown(
            n=self.n,
            panel_s=chain.get(Stage.PANEL, 0.0),
            update_s=chain.get(Stage.UPDATE, 0.0),
            brd_s=chain.get(Stage.BRD, 0.0),
            solve_s=chain.get(Stage.SOLVE, 0.0),
            comm_s=ci + cx,
            io_s=chain.get("io", 0.0),
            launches=dict(self.launches),
            ngpu=self.ngpu,
            nnodes=self.nnodes,
            comm_intra_s=ci,
            comm_inter_s=cx,
            queue_s=chain.get("queue", 0.0),
            device_busy_s=self.device_busy() if self.ngpu > 1 else (),
        )


def simulate_events(
    graph: LaunchGraph,
    config,
    storage=None,
    *,
    streams: int = 1,
    nodes: Optional[int] = None,
    ngpu: Optional[int] = None,
    fabric_lanes: int = 1,
    cache: Optional[dict] = None,
    device_scale=None,
    device_labels: Tuple[str, ...] = (),
) -> EventSchedule:
    """Simulate a launch graph through the discrete-event engine.

    ``streams`` is the per-device concurrent-launch capacity (the same
    knob :func:`~repro.sim.timeline.schedule_streams` takes);
    ``fabric_lanes`` the per-node NIC capacity (1 = one rail).
    ``nodes`` / ``ngpu``, when given, are cross-checked against the
    graph's partition so a mismatched topology fails loudly instead of
    silently simulating the wrong cluster.  Durations come from
    :func:`~repro.sim.table.stream_costs`, so they are float-identical
    to the greedy scheduler's - the basis of the pinned-agreement tests.

    Heterogeneous fleets pass ``device_scale`` (per-rank compute-duration
    factors relative to the handle's backend; see
    :func:`repro.sim.partition.fleet_scale`) and ``device_labels``
    (per-rank names for the utilization report) - each rank's compute
    launches then run at that rank's own speed while comm stays priced
    by the link specs the partition embedded.
    """
    if streams < 1:
        raise InvalidParamsError(
            f"streams must be a positive stream count, got {streams}"
        )
    if fabric_lanes < 1:
        raise InvalidParamsError(
            f"fabric_lanes must be a positive lane count, got {fabric_lanes}"
        )
    if nodes is not None and nodes != graph.nnodes:
        raise InvalidParamsError(
            f"nodes={nodes} does not match this graph's partition "
            f"(nnodes={graph.nnodes}); partition the graph for the "
            f"requested topology first"
        )
    if ngpu is not None and ngpu * graph.nnodes != graph.ngpu:
        raise InvalidParamsError(
            f"ngpu={ngpu} does not match this graph's partition "
            f"({graph.ngpu // graph.nnodes} devices per node over "
            f"{graph.nnodes} nodes)"
        )
    if graph.counted:
        raise ValueError(
            "counted graphs fold launch runs into single nodes; the event "
            "simulation schedules individual launches - emit with "
            "counted=False"
        )
    if storage is None:
        storage = config.require_precision("event simulation")
    if device_scale is not None and len(device_scale) != graph.ngpu:
        raise InvalidParamsError(
            f"{len(device_scale)} device_scale factors for a graph "
            f"partitioned over {graph.ngpu} devices"
        )

    table = graph.table()
    durs_arr, stage_seconds, launches, serial_s = stream_costs(
        table, config, storage, cache, device_scale=device_scale
    )
    durs = durs_arr.tolist()
    kinds = table.kinds
    kind_id = table.kind_id.tolist()
    stage_id = table.stage_id.tolist()
    device = table.device.tolist()
    stage_names = Stage.ALL
    comm_id = stage_names.index(Stage.COMM)
    transfer_id = stage_names.index(Stage.TRANSFER)
    gpn = max(1, graph.ngpu // graph.nnodes)

    src = graph.nodes
    N = len(src)
    children: List[List[int]] = [[] for _ in range(N)]
    indeg = [0] * N
    for i, node in enumerate(src):
        indeg[i] = len(node.deps)
        for d in node.deps:
            children[d].append(i)

    # serial per-tier comm folds (node order, like the analytic pricers)
    comm_intra_s = 0.0
    comm_inter_s = 0.0
    inter_kind = [k.endswith("_inter") for k in kinds]
    for i in range(N):
        if stage_id[i] == comm_id:
            if inter_kind[kind_id[i]]:
                comm_inter_s += durs[i]
            else:
                comm_intra_s += durs[i]

    def resource_of(i: int) -> Tuple[str, int]:
        si = stage_id[i]
        dev = device[i]
        if si == comm_id:
            if inter_kind[kind_id[i]]:
                return ("fabric", dev // gpn)
            return ("link", dev)
        if si == transfer_id:
            return ("host", dev)
        return ("dev", dev)

    def capacity_of(res: Tuple[str, int]) -> int:
        if res[0] == "dev":
            return streams
        if res[0] == "fabric":
            return fabric_lanes
        return 1

    # resource -> [busy server count, FIFO wait queue]
    res_state: Dict[Tuple[str, int], List] = {}
    busy_s: Dict[Tuple[str, int], float] = {}
    ready = [0.0] * N
    start = [0.0] * N
    finish = [0.0] * N
    blocker = [-1] * N  # dependency whose finish set the ready time
    contention_s = 0.0

    events: List[Tuple[float, int, int]] = []  # (time, 0=finish/1=arrive, i)

    def try_start(i: int, now: float) -> None:
        nonlocal contention_s
        res = resource_of(i)
        st = res_state.get(res)
        if st is None:
            st = res_state[res] = [0, deque()]
        if st[0] < capacity_of(res):
            st[0] += 1
            start[i] = now
            contention_s += now - ready[i]
            finish[i] = now + durs[i]
            busy_s[res] = busy_s.get(res, 0.0) + durs[i]
            heapq.heappush(events, (finish[i], 0, i))
        else:
            st[1].append(i)

    for i in range(N):
        if indeg[i] == 0:
            heapq.heappush(events, (0.0, 1, i))

    while events:
        t, code, i = heapq.heappop(events)
        if code == 1:
            try_start(i, t)
            continue
        # finish: release the server, admit the queue head, wake children
        st = res_state[resource_of(i)]
        st[0] -= 1
        if st[1]:
            try_start(st[1].popleft(), t)
        fi = finish[i]
        for c in children[i]:
            indeg[c] -= 1
            if fi > ready[c] or blocker[c] < 0:
                ready[c] = fi
                blocker[c] = i
            if indeg[c] == 0:
                heapq.heappush(events, (ready[c], 1, c))

    makespan = max(finish) if N else 0.0

    # dependency-only lower bound (infinite resources)
    cp = [0.0] * N
    for i in range(N - 1, -1, -1):
        best = 0.0
        for c in children[i]:
            if cp[c] > best:
                best = cp[c]
        cp[i] = durs[i] + best
    critical = max(cp) if N else 0.0

    # exact makespan decomposition along the critical chain
    chain = {k: 0.0 for k in _CHAIN_KEYS}
    if N:
        last = 0
        for i in range(1, N):
            if finish[i] > finish[last]:
                last = i
        i = last
        while True:
            si = stage_id[i]
            if si == comm_id:
                key = "comm_inter" if inter_kind[kind_id[i]] else "comm_intra"
            elif si == transfer_id:
                key = "io"
            else:
                key = stage_names[si]
            chain[key] += durs[i]
            chain["queue"] += start[i] - ready[i]
            if blocker[i] < 0:
                break
            i = blocker[i]
    chain = {k: v for k, v in chain.items() if v > 0.0}

    return EventSchedule(
        n=graph.n,
        nnodes=graph.nnodes,
        ngpu=graph.ngpu,
        streams=streams,
        makespan_s=makespan,
        serial_s=serial_s,
        critical_path_s=critical,
        contention_s=contention_s,
        comm_intra_s=comm_intra_s,
        comm_inter_s=comm_inter_s,
        stage_seconds=stage_seconds,
        chain_seconds=chain,
        launches=launches,
        resource_busy_s=busy_s,
        device_labels=tuple(device_labels),
    )
