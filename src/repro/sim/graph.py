"""LaunchGraph: the declarative launch IR behind every driver.

This module is the single encoding of the solver's kernel-launch schedule.
Drivers no longer interleave numerics with launch bookkeeping, and the
analytic predictor no longer re-walks the schedule by hand: both consume
one :class:`LaunchGraph` emitted per problem shape by the ``emit_*``
functions in :mod:`repro.core` (``emit_svd_graph``, ``emit_tallqr_graph``,
``emit_batched_graph``).

A :class:`LaunchGraph` is an ordered DAG of :class:`LaunchNode`\\ s.  Each
node carries

* ``kind``  - the kernel name (``"geqrt"``, ``"ftsmqr"``, ...);
* ``stage`` - the Figure 6 attribution tag (:class:`~repro.sim.tracing.Stage`);
* ``key``   - the cost-model key, in the same namespace as
  ``Session.cost_cache`` so numeric execution and analytic pricing share
  one launch-price memo;
* ``meta``  - the tile coordinates needed to run the numerics;
* ``deps``  - indices of earlier nodes this launch must wait for (used by
  the multi-stream scheduler; list order is already a topological order);
* ``stream`` - the stream the greedy scheduler placed the launch on
  (``None`` until :func:`repro.sim.timeline.schedule_streams` runs).

Two executors consume the graph:

* :class:`NumericExecutor` replays the nodes in order against a
  :class:`~repro.sim.session.Session`, invoking the NumPy kernels on a
  padded workspace.  Node order equals the historical driver loop order,
  so results are bitwise identical to the pre-graph drivers.
* :class:`AnalyticExecutor` prices the same nodes without touching data,
  producing the :class:`~repro.sim.schedule.TimeBreakdown` that
  :meth:`repro.Solver.predict` returns.  Because both executors walk the
  same nodes, the consistency between traced and predicted schedules is
  structural rather than maintained by hand (pinned in
  ``tests/test_graph.py``).

Multi-stream graphs (``streams > 1``) model the *lookahead* variant of
the algorithm: every trailing-update launch is split into a head chunk
and remainder chunks that may overlap the next panel on other streams.
The head chunk is the launch-granularity stand-in for the tile-level
prioritization of SLATE/MAGMA-class task-graph runtimes: it represents
the prioritized sub-launch that produces everything the next panel chain
reads (priced as one tile-column of update work), so ``panel(s+1) <-
head(s)`` is a *modeling* decomposition, not a claim that a literal
leading-column split carries those operands through the alternating
RQ/LQ orientation.  Such graphs change launch counts and are priced by
:func:`repro.sim.timeline.schedule_streams`; they are analytic-only - the
numeric executor rejects them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .costmodel import (
    LaunchCost,
    LinkSpec,
    ZERO_COST,
    bidiag_solve_cost,
    brd_cost,
    comm_cost,
    gemm_cost,
    panel_cost,
    trsm_cost,
    update_cost,
)
from .tracing import Stage

__all__ = [
    "AnalyticExecutor",
    "BATCHED_KINDS",
    "COMM_INTER_KINDS",
    "COMM_KINDS",
    "LaunchGraph",
    "LaunchNode",
    "NumericExecutor",
    "TRANSFER_KINDS",
    "node_overhead_s",
    "price_key",
    "price_node",
    "problem_range",
    "rekey_batched",
]

#: Cost-key families charged without a GPU launch overhead: CPU-side
#: launches and link transfers (whose latency term lives in the cost).
_NO_OVERHEAD_FAMILIES = ("solve", "solve_b", "comm")

#: Node kinds of the explicit communication launches a partitioned graph
#: carries (see :mod:`repro.sim.partition`).  They move data between
#: devices, never compute, and are numeric no-ops on the shared-memory
#: simulation fabric.  ``batch_gather`` is the single comm node of a
#: partitioned *batched* graph: devices solve disjoint problem subsets
#: independently, so the gather of their results is the only movement.
#: ``sketch_gather`` collects the per-device row blocks (or partial
#: products) of a partitioned low-rank graph's GEMM launches back to the
#: root device, where the tall-QR and small dense SVD tail run.
COMM_KINDS = (
    "panel_bcast", "boundary_x", "band_gather", "batch_gather",
    "sketch_gather",
)

#: Inter-node variants of the comm kinds, emitted by cluster-partitioned
#: graphs (``nodes > 1``) for the traffic that crosses hosts.  Each
#: carries the *inter* tier's bandwidth/latency in its cost key and is
#: scheduled on the owning node's fabric lane (the NIC) by the event
#: simulator, where concurrent arrivals queue; intra-node comm keeps the
#: per-device link lanes.  Numerically they are the same no-op movement.
COMM_INTER_KINDS = tuple(k + "_inter" for k in COMM_KINDS)
COMM_KINDS = COMM_KINDS + COMM_INTER_KINDS

#: Kinds of the batched launch graph (see ``repro.core.emit_batched_graph``):
#: each launch covers one *subset of problems* (``meta[0]``) with a single
#: grid.  The suffixed kinds mirror the square stage-1/2/3 kinds and carry
#: the same per-problem tile coordinates in ``meta[1:]``.
BATCHED_KINDS = (
    "geqrt_b", "unmqr_b", "ftsqrt_b", "ftsmqr_b", "tsqrt_b", "tsmqr_b",
    "brd_chase_b", "bdsqr_cpu_b",
)


def problem_range(probs: Tuple) -> range:
    """Decode a batched node's ``("b", start, stop, step)`` problem subset.

    Every batched launch covers the problem indices
    ``range(start, stop, step)`` of the batch — a compact encoding closed
    under the round-robin splits of the stream axis (chains), the device
    axis (:func:`repro.sim.partition.partition_graph`) and the contiguous
    window slices of the out-of-core rewriter.
    """
    return range(probs[1], probs[2], probs[3])


def rekey_batched(key: Tuple, old_count: int, new_count: int) -> Tuple:
    """Re-price a batched cost key for a different problem count.

    Used by the graph rewriters when they split one batched launch into
    per-device or per-window sub-launches: ``panel_b`` / ``brd_b`` /
    ``solve_b`` keys carry the count directly, ``update`` keys scale
    their column width (which is ``per-problem width x count``).
    """
    family = key[0]
    if family in ("panel_b", "brd_b", "solve_b"):
        return (family, new_count) + key[2:]
    if family == "update":
        return ("update", key[1] // old_count * new_count) + key[2:]
    raise ValueError(f"not a batched cost key: {key!r}")

#: Node kinds of the explicit host<->device transfers an out-of-core
#: rewritten graph carries (see :mod:`repro.sim.outofcore`).  Like comm
#: nodes they move data without computing and are numeric no-ops on the
#: simulation fabric, but they drive the tile-residency window the
#: numeric executor enforces on out-of-core replays.
TRANSFER_KINDS = ("h2d_tile", "d2h_tile")


@dataclass(slots=True)
class LaunchNode:
    """One kernel launch of the schedule.

    ``key`` determines the launch price; ``meta`` the numeric operands
    (tile-row *ranges* are stored as ``(start, stop)`` pairs so emission
    stays linear in the tile count).  ``primary=False`` marks follow-up
    launches of an aggregate kernel (the stage-2 chase issues many
    launches whose total work is priced on the first one) - they charge
    only their launch overhead.  Nodes are emitted once and treated as
    immutable afterwards; ``slots`` keeps per-node construction cheap on
    the ``predict`` hot path.
    """

    kind: str
    stage: str
    key: Tuple
    meta: Tuple = ()
    deps: Tuple[int, ...] = ()
    stream: Optional[int] = None
    primary: bool = True
    #: Identical consecutive launches folded into one node (counted
    #: analytic graphs only; replayable graphs always emit count=1).
    count: int = 1
    #: Owning device of a partitioned graph (``None`` = unpartitioned;
    #: set by :func:`repro.sim.partition.partition_graph`).
    device: Optional[int] = None


@dataclass
class LaunchGraph:
    """Ordered launch DAG for one problem shape.

    ``nodes`` is in emission order, which is both the numeric execution
    order and a topological order of ``deps``.
    """

    nodes: List[LaunchNode]
    kind: str  # "square" | "tallqr" | "batched" | "lowrank"
    n: int  # true (unpadded) problem order / column count
    npad: int
    ts: int
    nbt: int
    fused: bool = True
    streams: int = 1
    batch: Optional[int] = None
    mpad: Optional[int] = None  # row padding of tall-QR graphs
    #: Device count of a partitioned graph (1 = single device).  Graphs
    #: with ``ngpu > 1`` carry per-node ``device`` assignments and
    #: explicit :data:`COMM_KINDS` nodes.
    ngpu: int = 1
    #: Host count of a cluster-partitioned graph (1 = one node).  For
    #: ``nnodes > 1``, ``ngpu`` is the *total* device count over all
    #: nodes (``nnodes * gpus_per_node``), device ranks are global
    #: (``node_of(d) = d // gpus_per_node``), and comm nodes split into
    #: intra-node kinds and :data:`COMM_INTER_KINDS`.
    nnodes: int = 1
    #: True for graphs rewritten by
    #: :func:`repro.sim.outofcore.rewrite_out_of_core`: tile panels
    #: stream through a bounded device window via explicit
    #: :data:`TRANSFER_KINDS` nodes.
    out_of_core: bool = False
    #: Per-device window capacity (in tiles) of an out-of-core graph;
    #: the numeric executor enforces it during replay.
    oc_capacity_tiles: Optional[int] = None
    #: Per-device window capacity (in *problems*) of an out-of-core
    #: batched graph: whole problems stream through the device window,
    #: sharing the budget across every in-flight problem.
    oc_capacity_problems: Optional[int] = None
    #: True when identical consecutive launches are folded into counted
    #: nodes (analytic-only; keeps the unfused O(tiles^2) launch schedule
    #: priceable in O(tiles) nodes, like the pre-graph closed form).
    counted: bool = False
    #: Lazily-built struct-of-arrays view (:meth:`table`); never part of
    #: equality or construction.
    _table: Optional[object] = field(
        default=None, init=False, repr=False, compare=False
    )

    def __len__(self) -> int:
        """Number of launch nodes in the graph."""
        return len(self.nodes)

    def table(self):
        """Struct-of-arrays view of this graph, built once and memoized.

        The :class:`~repro.sim.table.NodeTable` is the representation the
        array-native pricers consume; node lists stay the source of truth
        for numeric replay.  Safe to cache because nodes are immutable
        after emission (the scheduler's ``stream`` annotations are not
        priced).
        """
        if self._table is None:
            from .table import NodeTable  # table imports this module

            self._table = NodeTable.from_graph(self)
        return self._table

    def launch_counts(self) -> Dict[str, int]:
        """Kernel name -> launch count (matches the traced execution)."""
        counts: Dict[str, int] = {}
        for node in self.nodes:
            counts[node.kind] = counts.get(node.kind, 0) + node.count
        return counts


# --------------------------------------------------------------------- #
# pricing
# --------------------------------------------------------------------- #
def price_node(
    node: LaunchNode,
    config,
    storage,
    compute,
    cache: Optional[dict] = None,
) -> LaunchCost:
    """Price one node against a resolved config.

    Keys of the ``panel`` / ``update`` / ``brd`` / ``solve`` families are
    identical to the keys :class:`~repro.sim.session.Session` uses, so a
    plan-owned ``cache`` is shared between analytic pricing and numeric
    execution.  Non-primary nodes are free (overhead-only launches).
    """
    if not node.primary:
        return ZERO_COST
    key = node.key
    if cache is not None:
        cost = cache.get(key)
        if cost is not None:
            return cost
    cost = price_key(key, config, storage, compute)
    if cache is not None:
        cache[key] = cost
    return cost


def price_key(key: Tuple, config, storage, compute) -> LaunchCost:
    """Price one cost key against a resolved config (the scalar oracle).

    The family dispatch behind :func:`price_node`, shared with the
    struct-of-arrays path (:mod:`repro.sim.table`), which delegates the
    low-multiplicity ``brd`` / ``solve`` families here and mirrors the
    rest as array expressions.
    """
    spec = config.backend.device
    params, coeffs = config.params, config.coeffs
    family = key[0]
    if family == "panel":
        cost = panel_cost(spec, params, storage, compute, key[1], key[2], coeffs)
    elif family == "update":
        cost = update_cost(
            spec, params, storage, compute, key[1], key[2], key[3], coeffs
        )
    elif family == "brd":
        cost = brd_cost(spec, key[1], key[2], storage, compute, coeffs)
    elif family == "solve":
        cost = bidiag_solve_cost(spec, key[1], storage, coeffs)
    elif family == "panel_b":
        # batch independent single-chain bodies per launch: the serial
        # chain length is one body, the grid must fit the device in
        # ceil(batch / SMs) rounds (see repro.core.batched).
        batch = key[1]
        one = panel_cost(spec, params, storage, compute, key[2], key[3], coeffs)
        rounds = max(1, math.ceil(batch / spec.sm_count))
        cost = LaunchCost(
            seconds=one.seconds * rounds,
            flops=one.flops * batch,
            bytes=one.bytes * batch,
            compute_seconds=one.compute_seconds * rounds,
            memory_seconds=one.memory_seconds * batch,
        )
    elif family == "brd_b":
        batch, n, band = key[1], key[2], key[3]
        one = brd_cost(spec, n, band, storage, compute, coeffs)
        # flops/bytes scale with the batch; the serial chase latency does
        # not (independent problems chase concurrently)
        cost = LaunchCost(
            seconds=max(
                one.compute_seconds * batch,
                one.memory_seconds * batch,
                one.seconds,
            ),
            flops=one.flops * batch,
            bytes=one.bytes * batch,
            compute_seconds=one.compute_seconds * batch,
            memory_seconds=one.memory_seconds * batch,
        )
    elif family == "solve_b":
        batch, n = key[1], key[2]
        one = bidiag_solve_cost(spec, n, storage, coeffs)
        cost = LaunchCost(
            seconds=one.compute_seconds * batch + coeffs.cpu_call_overhead_s,
            flops=one.flops * batch,
            compute_seconds=one.compute_seconds * batch,
        )
    elif family == "gemm":
        cost = gemm_cost(
            spec, storage, compute, key[1], key[2], key[3], coeffs
        )
    elif family == "trsm":
        cost = trsm_cost(spec, storage, compute, key[1], key[2], coeffs)
    elif family == "comm":
        # self-contained key: (elems, hops, link GB/s, link latency us) so
        # the same memo serves any link override (see partition_graph)
        elems, hops, link_gbs, latency_us = key[1], key[2], key[3], key[4]
        cost = comm_cost(
            LinkSpec("link", link_gbs, latency_us),
            elems * storage.sizeof,
            hops=hops,
        )
    else:  # pragma: no cover - emitter bug
        raise ValueError(f"unknown launch-cost family {family!r}")
    return cost


def node_overhead_s(node: LaunchNode, spec) -> float:
    """Launch overhead charged for one node (0 for CPU/link launches)."""
    if node.key[0] in _NO_OVERHEAD_FAMILIES:
        return 0.0
    return spec.launch_overhead_s


# --------------------------------------------------------------------- #
# analytic executor
# --------------------------------------------------------------------- #
class AnalyticExecutor:
    """Price a :class:`LaunchGraph` without touching matrix data.

    Accumulates per-stage kernel seconds and launch overheads in node
    order with the exact accounting of the
    :class:`~repro.sim.tracing.Tracer`, so the per-stage seconds of a
    traced numeric run and of the analytic pricing are *float-identical*
    (not merely approximately equal).

    :meth:`run` evaluates the graph's struct-of-arrays table
    (:mod:`repro.sim.table`) in whole-array NumPy expressions;
    :meth:`run_scalar` is the per-node reference loop it is pinned
    against (``tests/test_table_props.py``) - the scalar loop is the
    oracle, the array path is the implementation.
    """

    def __init__(self, config, storage, cache: Optional[dict] = None) -> None:
        self.config = config
        self.storage = storage
        self.compute = config.backend.compute_precision(storage)
        self.cache = cache

    def run(self, graph: LaunchGraph) -> "TimeBreakdown":
        """Return the priced :class:`~repro.sim.schedule.TimeBreakdown`."""
        from .table import price_table  # table imports this module

        return price_table(graph.table(), self.config, self.storage, self.cache)

    def run_scalar(self, graph: LaunchGraph) -> "TimeBreakdown":
        """Price node by node (the reference oracle for :meth:`run`)."""
        from .schedule import TimeBreakdown  # avoid import cycle

        spec = self.config.backend.device
        # a fixed shape prices the same few launch shapes repeatedly
        # (both sweeps of a diagonal step share keys); even a run-local
        # memo roughly halves the cost-model arithmetic
        cache = self.cache if self.cache is not None else {}
        cost_s: Dict[str, float] = {}
        over_s: Dict[str, float] = {}
        launches: Dict[str, int] = {}
        flops = 0.0
        nbytes = 0.0
        for node in graph.nodes:
            cost = price_node(
                node, self.config, self.storage, self.compute, cache
            )
            stage = node.stage
            overhead = node_overhead_s(node, spec)
            if node.count == 1:
                cost_s[stage] = cost_s.get(stage, 0.0) + cost.seconds
                over_s[stage] = over_s.get(stage, 0.0) + overhead
                flops += cost.flops
                nbytes += cost.bytes
            else:
                # expand counted nodes by repeated addition so per-stage
                # sums stay float-identical to the traced per-launch run
                c = cost_s.get(stage, 0.0)
                o = over_s.get(stage, 0.0)
                for _ in range(node.count):
                    c += cost.seconds
                    o += overhead
                    flops += cost.flops
                    nbytes += cost.bytes
                cost_s[stage] = c
                over_s[stage] = o
            launches[node.kind] = launches.get(node.kind, 0) + node.count

        def stage_total(stage: str) -> float:
            return cost_s.get(stage, 0.0) + over_s.get(stage, 0.0)

        return TimeBreakdown(
            n=graph.n,
            panel_s=stage_total(Stage.PANEL),
            update_s=stage_total(Stage.UPDATE),
            brd_s=stage_total(Stage.BRD),
            solve_s=stage_total(Stage.SOLVE),
            comm_s=stage_total(Stage.COMM),
            io_s=stage_total(Stage.TRANSFER),
            launches=launches,
            flops=flops,
            bytes=nbytes,
            ngpu=graph.ngpu,
        )


# --------------------------------------------------------------------- #
# numeric executor
# --------------------------------------------------------------------- #
class NumericExecutor:
    """Replay a :class:`LaunchGraph` numerically on a padded workspace.

    Nodes are executed in list order, which reproduces the historical
    driver loops kernel call for kernel call - results are bitwise
    identical to the pre-graph code path.  Every launch is recorded
    through ``session`` (when given) with the same cost keys the graph
    carries, so a plan-shared ``Session.cost_cache`` is hit, never
    re-priced.

    Partitioned graphs (``ngpu > 1``) replay too: each sharded update
    chunk runs against its device's tile-row views of the shared
    workspace (the per-device buffers of the simulated fabric), comm
    nodes are numeric no-ops, and the chunk order equals the monolithic
    row order - so partitioned replay is bitwise identical to the
    single-device run (pinned in ``tests/test_partition.py``).

    Stage-1-only node lists (from ``emit_band_reduction`` /
    ``emit_tallqr_graph``) need no ``storage``/``stage3``; full square
    graphs run stage 2/3 as well and leave the singular values in
    ``self.values``.
    """

    def __init__(
        self,
        W,
        ts: int,
        eps: float,
        session=None,
        compute_dtype=None,
        storage=None,
        stage3: str = "auto",
    ) -> None:
        import numpy as np

        self.W = W
        self.Wt = W.T
        self.ts = ts
        self.eps = eps
        self.session = session
        self.compute_dtype = compute_dtype
        self.storage = storage
        self.stage3 = stage3
        self._np = np
        #: Tile-residency tracker of an out-of-core replay (``None`` for
        #: in-core graphs); installed by :meth:`run` from the graph's
        #: declared window capacity and enforced on every node.
        self._window = None
        #: Batched replay (``W`` is a ``(batch, npad, npad)`` stack):
        #: per-problem child executors, created lazily, each replaying
        #: the square-kind body of a batched launch on its own slice.
        self._subs: Dict[int, "NumericExecutor"] = {}
        #: problem index -> float64 singular values (batched replay).
        self.values_by_problem: Dict[int, object] = {}
        self._tau0: Dict[int, object] = {}
        #: sweep -> (first row, stop row, tau list) of the live FTSQRT
        #: output; partitioned graphs consume it chunk by chunk.
        self._taus: Dict[int, Tuple[int, int, list]] = {}
        self._tau1: Dict[Tuple[int, int], object] = {}
        #: sweep -> compute-precision copy of the pivot tile row, kept
        #: resident across the row chunks of one fused update launch.
        self._ylive: Dict[int, object] = {}
        self.d = None
        self.e = None
        self.values = None
        # kernels are imported lazily: repro.core and repro.kernels import
        # this module at load time, so a module-level import would cycle.
        from ..kernels import ftsmqr, ftsqrt, geqrt, tsmqr, tsqrt, unmqr
        from ..kernels.tsmqr import tsmqr_body
        from ..core.tiling import extract_band, tile

        self._k = (geqrt, unmqr, ftsqrt, ftsmqr, tsqrt, tsmqr)
        self._tsmqr_body = tsmqr_body
        self._tile = tile
        self._extract_band = extract_band

    # ------------------------------------------------------------------ #
    def run(self, graph) -> "NumericExecutor":
        """Execute all nodes (a :class:`LaunchGraph` or a node list)."""
        nodes = graph.nodes if isinstance(graph, LaunchGraph) else graph
        if isinstance(graph, LaunchGraph) and (
            graph.counted
            or (graph.streams != 1 and graph.kind != "batched")
        ):
            # batched multi-stream graphs split the *problem set* into
            # chains, not a launch into column chunks, so they stay
            # replayable; square lookahead graphs are analytic-only
            raise ValueError(
                "multi-stream and counted graphs are analytic-only; emit "
                "with streams=1, counted=False for numeric replay"
            )
        self._window = None  # never carry a tracker across run() calls
        if isinstance(graph, LaunchGraph) and graph.out_of_core:
            # out-of-core replays run under an enforced window budget:
            # every launch must find its tiles resident or the replay
            # faults (lazy import - outofcore imports this module)
            from .outofcore import WindowTracker

            self._window = WindowTracker(graph)
        for node in nodes:
            self._dispatch(node)
        return self

    # ------------------------------------------------------------------ #
    def _view(self, lq: bool):
        return self.Wt if lq else self.W

    def _zeros_tau(self):
        np = self._np
        return np.zeros(
            self.ts, dtype=self.compute_dtype or self.W.dtype
        )

    def _dispatch(self, node: LaunchNode) -> None:
        kind = node.kind
        if kind in TRANSFER_KINDS:
            # pure host<->device movement: a numeric no-op on the shared
            # simulation fabric, but it drives the residency window and
            # is traced and priced like a launch
            if self._window is not None:
                self._window.on_transfer(node)
            if self.session is not None:
                self.session.launch_comm(kind, node.key, stage=Stage.TRANSFER)
            return
        if self._window is not None:
            self._window.require(node)
        if kind in BATCHED_KINDS:
            self._dispatch_batched(node)
            return
        ts = self.ts
        geqrt, unmqr, ftsqrt, ftsmqr, tsqrt, tsmqr = self._k
        tile = self._tile
        if kind == "geqrt":
            lq, row, col, sweep = node.meta
            B = self._view(lq)
            diag = tile(B, row, col, ts)
            tau0 = self._zeros_tau()
            self._tau0[sweep] = tau0
            geqrt(diag, tau0, self.eps, self.compute_dtype)
            if self.session is not None:
                self.session.launch_panel(kind, *node.key[1:])
        elif kind == "unmqr":
            lq, row, col, c0t, off, cw, sweep = node.meta
            B = self._view(lq)
            diag = tile(B, row, col, ts)
            c0 = c0t * ts + off
            view = B[row * ts : (row + 1) * ts, c0 : c0 + cw]
            # each tau register has exactly one consumer; popping keeps
            # the replay's live set at one sweep, like the old loops
            unmqr(diag, self._tau0.pop(sweep), view, self.compute_dtype)
            if self.session is not None:
                self.session.launch_update(kind, *node.key[1:])
        elif kind == "ftsqrt":
            lq, row, col, rows, sweep = node.meta
            B = self._view(lq)
            diag = tile(B, row, col, ts)
            taus = [self._zeros_tau() for _ in range(rows[0], rows[1])]
            self._taus[sweep] = (rows[0], rows[1], taus)
            Bs = [tile(B, l, col, ts) for l in range(rows[0], rows[1])]
            ftsqrt(diag, Bs, taus, self.eps, self.compute_dtype)
            if self.session is not None:
                self.session.launch_panel(kind, *node.key[1:])
        elif kind == "ftsmqr":
            # `rows` may be a sub-range of the FTSQRT rows: a partitioned
            # graph shards one fused update into per-device row chunks,
            # replayed in row order (the inherent chain through Y)
            lq, row, col, rows, c0t, off, cw, sweep = node.meta
            B = self._view(lq)
            c0 = c0t * ts + off
            base, stop, taus = self._taus[sweep]
            lo, hi = rows
            tau_slice = taus[lo - base : hi - base]
            Bs = [tile(B, l, col, ts) for l in range(lo, hi)]
            Y = B[row * ts : (row + 1) * ts, c0 : c0 + cw]
            Xs = [
                B[l * ts : (l + 1) * ts, c0 : c0 + cw] for l in range(lo, hi)
            ]
            if self.compute_dtype is None or Y.dtype == self.compute_dtype:
                ftsmqr(Bs, tau_slice, Y, Xs, self.compute_dtype)
            else:
                # the real fused kernel keeps Y resident in compute
                # precision for the *whole* launch; carrying the live copy
                # across row chunks keeps sharded replay bitwise identical
                # to the monolithic launch
                Yw = self._ylive.get(sweep)
                if Yw is None:
                    Yw = Y.astype(self.compute_dtype)
                    self._ylive[sweep] = Yw
                body = self._tsmqr_body
                for V, tau, X in zip(Bs, tau_slice, Xs):
                    Xw = X.astype(self.compute_dtype)
                    body(V.astype(self.compute_dtype), tau, Yw, Xw)
                    X[...] = Xw
                if hi == stop:
                    Y[...] = Yw
                    del self._ylive[sweep]
            if hi == stop:
                # last chunk: the sweep's tau registers are fully consumed
                del self._taus[sweep]
            if self.session is not None:
                self.session.launch_update(kind, *node.key[1:])
        elif kind == "tsqrt":
            lq, row, col, l, sweep = node.meta
            B = self._view(lq)
            taul = self._zeros_tau()
            self._tau1[(sweep, l)] = taul
            tsqrt(
                tile(B, row, col, ts), tile(B, l, col, ts), taul, self.eps,
                self.compute_dtype,
            )
            if self.session is not None:
                self.session.launch_panel(kind, *node.key[1:])
        elif kind == "tsmqr":
            lq, row, col, l, c0t, off, cw, sweep = node.meta
            B = self._view(lq)
            c0 = c0t * ts + off
            Y = B[row * ts : (row + 1) * ts, c0 : c0 + cw]
            X = B[l * ts : (l + 1) * ts, c0 : c0 + cw]
            tsmqr(
                tile(B, l, col, ts), self._tau1.pop((sweep, l)), Y, X,
                self.compute_dtype,
            )
            if self.session is not None:
                self.session.launch_update(kind, *node.key[1:])
        elif kind == "brd_chase":
            if node.primary:
                if self.session is not None:
                    # records the full launch pattern (aggregate cost on
                    # the first launch, overhead-only on the rest), which
                    # the follow-up non-primary nodes represent
                    self.session.launch_brd(node.key[1], node.key[2])
                self._run_stage2()
        elif kind == "bdsqr_cpu":
            np = self._np
            self._run_stage2()
            n = node.key[1]
            if self.session is not None:
                self.session.launch_solve(n)
            from ..core.bidiag import svdvals_bidiag

            # round through storage precision, as a device-resident
            # result would be
            d = self.d.astype(self.storage.dtype).astype(np.float64)
            e = self.e.astype(self.storage.dtype).astype(np.float64)
            self.values = svdvals_bidiag(d, e, method=self.stage3)
        elif kind == "steig_cpu":
            # symmetric-eigensolver tail: same band -> bidiagonal front as
            # bdsqr_cpu, then the tridiagonal Gram finish (T = B^T B,
            # Sturm bisection) instead of a bidiagonal SVD
            np = self._np
            self._run_stage2()
            n = node.key[1]
            if self.session is not None:
                self.session.launch_solve(n, kernel=kind)
            from ..core.eigh import steig_values

            d = self.d.astype(self.storage.dtype).astype(np.float64)
            e = self.e.astype(self.storage.dtype).astype(np.float64)
            self.values = steig_values(d, e)
        elif kind in COMM_KINDS:
            # pure data movement: a numeric no-op on the simulation's
            # shared-memory fabric, but traced and priced like a launch
            if self.session is not None:
                self.session.launch_comm(kind, node.key)
        else:  # pragma: no cover - emitter bug
            raise ValueError(f"unknown launch kind {kind!r}")

    def _sub(self, p: int) -> "NumericExecutor":
        """Child executor replaying problem ``p`` of a batched workspace."""
        ex = self._subs.get(p)
        if ex is None:
            ex = NumericExecutor(
                self.W[p], self.ts, self.eps, session=None,
                compute_dtype=self.compute_dtype, storage=self.storage,
                stage3=self.stage3,
            )
            self._subs[p] = ex
        return ex

    def _dispatch_batched(self, node: LaunchNode) -> None:
        """Replay one batched launch: its square body, per covered problem.

        ``meta[0]`` names the problem subset; ``meta[1:]`` is exactly the
        square node's meta, so each problem executes kernel-for-kernel the
        sequence the square driver would run — batched replay is bitwise
        identical to solving every matrix alone (pinned in
        ``tests/test_batched_compose.py``).  Requires a 3-D ``W`` stack.
        """
        probs = problem_range(node.meta[0])
        base = node.kind[:-2]  # strip the "_b" suffix
        if base == "brd_chase":
            if node.primary:
                for p in probs:
                    self._sub(p)._run_stage2()
            return
        if base == "bdsqr_cpu":
            sq = LaunchNode(base, node.stage, ("solve", node.key[2]))
            for p in probs:
                sub = self._sub(p)
                sub._dispatch(sq)
                self.values_by_problem[p] = sub.values
            return
        sq = LaunchNode(base, node.stage, node.key, node.meta[1:])
        for p in probs:
            self._sub(p)._dispatch(sq)

    def _run_stage2(self) -> None:
        """Band -> bidiagonal numerics (once, on the first stage-2 node)."""
        if self.d is not None:
            return
        from ..core.brd import band_to_bidiagonal

        band = self._extract_band(self.W, self.ts)
        work_dtype = (
            self.compute_dtype
            if self.compute_dtype is not None
            else self.storage.dtype
        )
        band_c = band.astype(work_dtype, copy=False)
        self.d, self.e = band_to_bidiagonal(
            band_c, self.ts, session=None, inplace=True
        )
