"""Analytic per-launch cost model for the simulated GPU.

The model prices the four stage-1 kernel families of the paper plus the
stage-2/stage-3 reductions.  It is deliberately built from *named physical
terms* so every performance-portability effect in the evaluation maps to an
identifiable mechanism:

===============================  =============================================
Paper observation                Model term
===============================  =============================================
Panel kernel is a latency-bound  ``panel_cost``: serial iteration chain,
single thread block (Alg. 3)     ``TILESIZE`` iterations, column work split
                                 across ``SPLITK`` threads + reduction cost
Register pressure / L1 fit       ``spill factor`` once the resident tile(s)
(sec. 3.3)                       exceed the per-SM L1 budget - this is what
                                 makes TILESIZE=64 lose on MI250 FP64 (16 KB
                                 L1, 32 KB tile) while winning on H100
Trailing update is BLAS3-like    ``update_cost``: roofline of flops vs bytes;
(Alg. 4/5)                       arithmetic intensity grows with TILESIZE
                                 (reflector reuse) and COLPERBLOCK (A_k
                                 cooperative-load amortization)
COLPERBLOCK < warp hurts, worse  warp/wavefront utilization derate
on AMD (Table 3)                 (64-wide wavefronts waste more lanes)
Small matrices underutilize      occupancy derate from active threads vs
big GPUs (sec. 4.1/4.2)          latency-hiding capacity
Fused kernels cut launches and   per-launch overhead priced separately +
top-row reloads (Fig. 2)         Y-tile traffic counted once per launch
===============================  =============================================

All constants live in :class:`CostCoefficients`; the calibration tests pin
the qualitative shapes (Table 3 signs, Table 4 bands) rather than absolute
times.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from ..backends.device import DeviceSpec
from ..precision import Precision
from .occupancy import update_occupancy
from .params import KernelParams

__all__ = [
    "CostCoefficients",
    "DEFAULT_COEFFS",
    "DEFAULT_INTER_LINK",
    "FabricSpec",
    "LaunchCost",
    "LinkSpec",
    "comm_cost",
    "gemm_cost",
    "panel_cost",
    "trsm_cost",
    "update_cost",
    "update_rate",
    "brd_cost",
    "bidiag_solve_cost",
    "transfer_cost",
]


@dataclass(frozen=True)
class CostCoefficients:
    """Tunable constants of the cost model (dimensionless or cycles)."""

    # ---- panel (GEQRT / TSQRT / fused) ------------------------------- #
    panel_cycles_per_elem: float = 6.0  # dependent FMA chain per column elem
    panel_sync_cycles: float = 20.0  # block barrier + shared-mem reduction
    panel_spill_exponent: float = 1.6  # L1-overflow penalty growth
    panel_mem_fraction: float = 1.0  # tile load+store counted once
    # register pressure: each thread keeps a TILESIZE-element column private
    # (Algorithm 3 thread memory); past this per-thread byte budget the
    # resident-warp count drops and the latency chain lengthens.  This is
    # the "reduced occupancy" cost of large TILESIZE at small sizes (3.3).
    panel_reg_budget_bytes: float = 128.0
    panel_reg_pressure: float = 0.5

    # ---- trailing update (UNMQR / TSMQR / fused) ---------------------- #
    update_flops_per_elem: float = 4.0  # dot + axpy per reflector element
    update_compute_eff: float = 0.60  # achieved fraction of peak FLOPS
    update_mem_eff: float = 0.50  # achieved fraction of peak bandwidth
    update_occ_exponent: float = 0.5  # softened occupancy derate
    update_reg_budget_bytes: float = 1024.0  # 256 x 32-bit registers/thread
    update_spill_penalty: float = 1.5  # compute slowdown per spilled byte frac
    update_l2_reuse: float = 0.3  # V/tau re-reads mostly hit L2, not DRAM
    # divergence softening: idle SIMT lanes cost less than linearly (dual
    # issue / memory slack absorb part of the loss)
    update_divergence_exp: float = 0.35

    # ---- stage 2: band -> bidiagonal (bulge chasing) ------------------ #
    brd_flops_per_n2b: float = 6.0  # flops ~ brd_flops * n^2 * band
    brd_compute_eff: float = 0.20
    brd_mem_eff: float = 0.50
    brd_bytes_per_flop: float = 1.0 / 6.0  # block reuse inside chase windows
    # serial chase critical path: each hop's (band x band) window is worked
    # by one fixed-width workgroup -> hop latency grows with the band, so
    # sweeps cost ~ n * band / warp_ref cycles and the whole stage
    # ~ n^2 * band / (warp_ref * clock).  Larger TILESIZE directly
    # inflates stage 2 - part of why TILESIZE=64 loses at small sizes.
    brd_serial_cycles: float = 10.0
    brd_chase_width: float = 32.0
    # concurrent chase sweeps: the communication-avoiding schedule pipelines
    # more independent sweeps as the matrix grows, up to a device cap
    brd_pipeline_n0: float = 768.0
    brd_pipeline_max: float = 24.0
    brd_launch_per_sweepcol: float = 0.0625  # fused chase kernels per column

    # ---- stage 3: bidiagonal -> singular values (CPU) ----------------- #
    cpu_gflops: float = 50.0  # host LAPACK throughput
    bdc_flops_per_n2: float = 9.0  # D&C singular-values-only work
    cpu_call_overhead_s: float = 2.0e-4  # library call + D2H/H2D latency
    pcie_gbs: float = 25.0  # host link bandwidth
    pcie_latency_us: float = 10.0  # host link per-transfer latency

    def with_(self, **kwargs) -> "CostCoefficients":
        """Copy with selected coefficients replaced."""
        return replace(self, **kwargs)


DEFAULT_COEFFS = CostCoefficients()


@dataclass(frozen=True)
class LaunchCost:
    """Priced kernel launch: seconds plus accounting detail."""

    seconds: float
    flops: float = 0.0
    bytes: float = 0.0
    compute_seconds: float = 0.0
    memory_seconds: float = 0.0

    def __add__(self, other: "LaunchCost") -> "LaunchCost":
        """Component-wise sum of two launch costs."""
        return LaunchCost(
            self.seconds + other.seconds,
            self.flops + other.flops,
            self.bytes + other.bytes,
            self.compute_seconds + other.compute_seconds,
            self.memory_seconds + other.memory_seconds,
        )


ZERO_COST = LaunchCost(0.0)


# --------------------------------------------------------------------- #
# device-to-device interconnect
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class LinkSpec:
    """Peer-to-peer interconnect of a multi-device node.

    ``bandwidth_gbs`` is the per-direction peer bandwidth of one link
    (NVLink / Infinity Fabric / Xe Link / PCIe, per the device's
    :attr:`~repro.backends.device.DeviceSpec.link_name`);
    ``latency_us`` is the one-hop message latency.  The partitioned
    execution model prices every explicit ``comm`` node of a sharded
    :class:`~repro.sim.graph.LaunchGraph` against one of these.
    """

    name: str
    bandwidth_gbs: float
    latency_us: float

    @property
    def bandwidth_bytes(self) -> float:
        """Per-direction link bandwidth in bytes/second."""
        return self.bandwidth_gbs * 1e9

    @property
    def latency_s(self) -> float:
        """One-hop message latency in seconds."""
        return self.latency_us * 1e-6

    def with_(self, **kwargs) -> "LinkSpec":
        """Copy with selected link parameters replaced."""
        return replace(self, **kwargs)


#: Conservative inter-node fabric (InfiniBand NDR-class NIC, one rail):
#: an order of magnitude below NVLink-class intra-node bandwidth and
#: with microsecond-scale switch latency.  Used whenever a cluster
#: topology is requested without an explicit :class:`FabricSpec`.
DEFAULT_INTER_LINK = LinkSpec("ib-ndr", bandwidth_gbs=50.0, latency_us=5.0)


@dataclass(frozen=True)
class FabricSpec:
    """Two-tier interconnect of a ``nodes x gpus`` cluster.

    ``intra`` prices device-to-device traffic that stays inside one host
    (NVLink / Infinity Fabric / Xe Link, the existing :class:`LinkSpec`
    tier); ``inter`` prices traffic that crosses hosts (InfiniBand /
    Slingshot / RoCE).  Cluster-partitioned graphs emit each comm node
    with the :class:`LinkSpec` of the tier it crosses baked into the
    node key, so pricing stays self-contained per node.
    """

    intra: LinkSpec
    inter: LinkSpec

    def with_(self, **kwargs) -> "FabricSpec":
        """Copy with selected tiers replaced."""
        return replace(self, **kwargs)


def comm_cost(link: LinkSpec, nbytes: float, hops: int = 1) -> LaunchCost:
    """Price one device-to-device communication on the critical path.

    ``hops`` is the serialized stage count (1 for a point-to-point
    gather/exchange, ``ceil(log2(g))`` for a tree broadcast to ``g``
    peers); each hop pays the link latency plus the payload transfer, so
    ``seconds = hops * (latency + nbytes / bandwidth)``.  ``bytes``
    reports the critical-path link traffic (payload per hop).
    """
    if nbytes < 0:
        raise ValueError(f"communication payload must be >= 0, got {nbytes}")
    hops = max(1, int(hops))
    seconds = hops * (link.latency_s + nbytes / link.bandwidth_bytes)
    return LaunchCost(
        seconds=seconds,
        bytes=nbytes * hops,
        memory_seconds=seconds,
    )


# --------------------------------------------------------------------- #
# panel factorization kernels
# --------------------------------------------------------------------- #
def panel_cost(
    spec: DeviceSpec,
    params: KernelParams,
    storage: Precision,
    compute: Precision,
    nbodies: int = 1,
    body_tiles: int = 1,
    coeffs: CostCoefficients = DEFAULT_COEFFS,
) -> LaunchCost:
    """Cost of one panel-kernel launch (GEQRT / TSQRT / fused FTSQRT).

    Parameters
    ----------
    nbodies:
        Sequential factorization bodies executed inside the launch: 1 for
        GEQRT/TSQRT, the number of below-diagonal tile rows for FTSQRT.
    body_tiles:
        Tiles resident per body: 1 for GEQRT, 2 for TSQRT (triangle +
        square).
    """
    ts = params.tilesize
    sk = params.splitk

    # serial Householder chain: TS reflectors, each a column pass shared by
    # SPLITK threads plus a shared-memory reduction / barrier.
    per_iter_cycles = (
        coeffs.panel_cycles_per_elem * body_tiles * ts / sk
        + coeffs.panel_sync_cycles * (1.0 + math.log2(sk))
    )
    cycles = nbodies * ts * per_iter_cycles

    # per-thread register pressure: a private TILESIZE column per thread;
    # beyond the budget, fewer warps stay resident and latency hiding
    # degrades (the paper's small-matrix TILESIZE penalty).
    reg_overflow = ts * compute.sizeof / coeffs.panel_reg_budget_bytes
    if reg_overflow > 1.0:
        cycles *= 1.0 + coeffs.panel_reg_pressure * (reg_overflow - 1.0)

    # block-level L1 pressure: the kernel stages one full tile through the
    # SM-local storage (registers backed by L1); overflowing that budget
    # spills to slower memory.  With the MI250's 16 KB L1 this is exactly
    # what breaks TILESIZE=64 in FP64 (32 KB tile) while FP32 (16 KB) and
    # the 256 KB H100 stay clean - the Table 3 asymmetry.
    resident = ts * ts * compute.sizeof
    overflow = resident / spec.l1_bytes
    if overflow > 1.0:
        cycles *= overflow**coeffs.panel_spill_exponent

    compute_s = cycles / spec.clock_hz

    nbytes = (
        coeffs.panel_mem_fraction
        * nbodies
        * body_tiles
        * 2.0  # load + store
        * ts
        * ts
        * storage.sizeof
    )
    memory_s = nbytes / spec.bandwidth_bytes
    flops = nbodies * body_tiles * (4.0 / 3.0) * ts**3

    return LaunchCost(
        seconds=max(compute_s, memory_s),
        flops=flops,
        bytes=nbytes,
        compute_seconds=compute_s,
        memory_seconds=memory_s,
    )


# --------------------------------------------------------------------- #
# trailing submatrix update kernels
# --------------------------------------------------------------------- #
def update_cost(
    spec: DeviceSpec,
    params: KernelParams,
    storage: Precision,
    compute: Precision,
    width_cols: int,
    nrows: int = 1,
    has_top_row: bool = True,
    coeffs: CostCoefficients = DEFAULT_COEFFS,
) -> LaunchCost:
    """Cost of one update-kernel launch (UNMQR / TSMQR / fused FTSMQR).

    Parameters
    ----------
    width_cols:
        Total trailing-matrix columns processed by the grid.
    nrows:
        Tile rows applied sequentially inside the launch: 1 for UNMQR and
        classic TSMQR, the full panel height for FTSMQR.
    has_top_row:
        True for TSMQR-family kernels that keep the top row (Y) resident;
        its traffic is charged once per *launch*, which is exactly the
        fusion saving of Figure 2.
    """
    ts = params.tilesize
    cpb = params.colperblock
    nblocks = max(1, math.ceil(width_cols / cpb))

    # each thread owns one column of X (and of Y when fused): TS reflectors
    # times (dot + axpy) over TS elements.
    flops = coeffs.update_flops_per_elem * nrows * ts * ts * width_cols

    # registers: private X (+Y) columns; spilling throttles compute.
    priv_elems = ts * (2 if has_top_row else 1)
    priv_bytes = priv_elems * compute.sizeof
    spill = max(0.0, priv_bytes / coeffs.update_reg_budget_bytes - 1.0)
    compute_derate = 1.0 + coeffs.update_spill_penalty * spill

    occ = update_occupancy(
        spec, params, nblocks, compute.sizeof, regs_per_thread_elems=priv_elems
    )
    parallel = (occ.occupancy**coeffs.update_occ_exponent) * (
        occ.warp_util**coeffs.update_divergence_exp
    )
    eff_flops = spec.peak_flops(compute.sizeof) * coeffs.update_compute_eff
    compute_s = flops * compute_derate / max(eff_flops * parallel, 1.0)

    # memory traffic (storage precision): X load+store per row; Y load+store
    # once per launch; V (A_k) and tau re-read by every block.
    sz = storage.sizeof
    nbytes = 2.0 * nrows * ts * width_cols * sz  # X in/out
    if has_top_row:
        nbytes += 2.0 * ts * width_cols * sz  # Y in/out, once per launch
    # V + tau are re-read by every block but mostly hit L2 (shared across
    # the grid); weight their DRAM cost accordingly.
    nbytes += (
        coeffs.update_l2_reuse * nblocks * nrows * (ts * ts + ts) * sz
    )
    memory_s = nbytes / (spec.effective_bandwidth * coeffs.update_mem_eff)

    return LaunchCost(
        seconds=max(compute_s, memory_s),
        flops=flops,
        bytes=nbytes,
        compute_seconds=compute_s,
        memory_seconds=memory_s,
    )


def update_rate(
    spec: DeviceSpec,
    params: KernelParams,
    storage: Precision,
    compute: Precision,
    coeffs: CostCoefficients = DEFAULT_COEFFS,
) -> float:
    """Trailing-update throughput of one device, in tile rows per second.

    The scalar weight heterogeneous partitioning shards by
    (:func:`repro.sim.partition.shard_rows_weighted`): the reciprocal of
    one tile row's :func:`update_cost` at the configured hyperparameters.
    Each sweep's update work is proportional to its tile-row count, so a
    device's fair share of rows is proportional to this rate - the same
    NodeTable pricing arithmetic the analytic executors charge, evaluated
    per device spec instead of once for the backend.
    """
    cost = update_cost(
        spec, params, storage, compute,
        width_cols=params.tilesize, nrows=1, has_top_row=True,
        coeffs=coeffs,
    )
    if cost.seconds <= 0.0:
        raise ValueError(
            f"update_cost priced a non-positive duration for {spec.name}"
        )
    return 1.0 / cost.seconds


# --------------------------------------------------------------------- #
# dense BLAS-3 launches of the randomized low-rank workload
# --------------------------------------------------------------------- #
def gemm_cost(
    spec: DeviceSpec,
    storage: Precision,
    compute: Precision,
    m: int,
    k: int,
    n: int,
    coeffs: CostCoefficients = DEFAULT_COEFFS,
) -> LaunchCost:
    """Cost of one dense matrix multiply ``C (m x n) = A (m x k) B (k x n)``.

    The sketch and projection products of the randomized SVD workload are
    plain library GEMMs, not tile kernels, so the model is a bare roofline:
    ``2 m k n`` flops against the device's sustained compute efficiency,
    and one read of each operand plus one write of the product against
    sustained bandwidth (the same ``update_*`` efficiency constants; a
    GEMM is the best-behaved BLAS-3 case those constants describe).
    """
    if m <= 0 or k <= 0 or n <= 0:
        return ZERO_COST
    flops = 2.0 * float(m) * k * n
    nbytes = (float(m) * k + float(k) * n + float(m) * n) * storage.sizeof
    eff_flops = spec.peak_flops(compute.sizeof) * coeffs.update_compute_eff
    compute_s = flops / eff_flops
    memory_s = nbytes / (spec.effective_bandwidth * coeffs.update_mem_eff)
    return LaunchCost(
        seconds=max(compute_s, memory_s),
        flops=flops,
        bytes=nbytes,
        compute_seconds=compute_s,
        memory_seconds=memory_s,
    )


def trsm_cost(
    spec: DeviceSpec,
    storage: Precision,
    compute: Precision,
    n: int,
    l: int,
    coeffs: CostCoefficients = DEFAULT_COEFFS,
) -> LaunchCost:
    """Cost of one triangular solve ``X (n x l) = B (n x l) R^-1 (l x l)``.

    The randomized SVD driver recovers ``Q^T A`` as ``(A^T Y) R^-1``
    without materializing ``Q``; this prices that right-side TRSM:
    ``n l^2`` flops (half a GEMM of the same shape) with the triangular
    factor read once and the right-hand side read and written once.
    """
    if n <= 0 or l <= 0:
        return ZERO_COST
    flops = float(n) * l * l
    nbytes = (2.0 * float(n) * l + 0.5 * float(l) * l) * storage.sizeof
    eff_flops = spec.peak_flops(compute.sizeof) * coeffs.update_compute_eff
    compute_s = flops / eff_flops
    memory_s = nbytes / (spec.effective_bandwidth * coeffs.update_mem_eff)
    return LaunchCost(
        seconds=max(compute_s, memory_s),
        flops=flops,
        bytes=nbytes,
        compute_seconds=compute_s,
        memory_seconds=memory_s,
    )


# --------------------------------------------------------------------- #
# stage 2: band -> bidiagonal
# --------------------------------------------------------------------- #
def brd_cost(
    spec: DeviceSpec,
    n: int,
    band: int,
    storage: Precision,
    compute: Precision,
    coeffs: CostCoefficients = DEFAULT_COEFFS,
) -> LaunchCost:
    """Cost of the GPU bulge-chasing reduction from band to bidiagonal.

    Modelled after the memory-bound, cache-efficient tile kernels of
    Haidar et al. adopted by the paper: ``O(n^2 * band)`` flops with block
    reuse inside chase windows, plus a serial critical path along each
    chased bulge (the reason this stage dominates at small sizes in
    Figure 6 yet fades at large ones).
    """
    if n <= 1 or band <= 1:
        return ZERO_COST
    flops = coeffs.brd_flops_per_n2b * float(n) * n * band
    nbytes = flops * coeffs.brd_bytes_per_flop * storage.sizeof
    compute_s = flops / (spec.peak_flops(compute.sizeof) * coeffs.brd_compute_eff)
    memory_s = nbytes / (spec.effective_bandwidth * coeffs.brd_mem_eff)
    # serial chase critical path: n sweeps, each ~ n/band hops whose
    # (band x band) windows are processed by a fixed-width workgroup; the
    # communication-avoiding schedule overlaps sweeps at large sizes.
    pipelined = min(
        coeffs.brd_pipeline_max, max(1.0, n / coeffs.brd_pipeline_n0)
    )
    latency_s = (
        coeffs.brd_serial_cycles
        * float(n)
        * n
        * (band / coeffs.brd_chase_width)
        / (spec.clock_hz * pipelined)
    )
    return LaunchCost(
        seconds=max(compute_s, memory_s, latency_s),
        flops=flops,
        bytes=nbytes,
        compute_seconds=compute_s,
        memory_seconds=memory_s,
    )


def brd_launch_count(n: int, band: int, coeffs: CostCoefficients = DEFAULT_COEFFS) -> int:
    """Number of fused chase-kernel launches for stage 2."""
    if n <= 1 or band <= 1:
        return 0
    return max(1, int(coeffs.brd_launch_per_sweepcol * n))


# --------------------------------------------------------------------- #
# stage 3: bidiagonal -> singular values (CPU)
# --------------------------------------------------------------------- #
def bidiag_solve_cost(
    spec: DeviceSpec,
    n: int,
    storage: Precision,
    coeffs: CostCoefficients = DEFAULT_COEFFS,
) -> LaunchCost:
    """Cost of the final CPU solve (paper: LAPACK divide & conquer).

    Includes the device-to-host transfer of the two bidiagonal vectors and
    a fixed library-call overhead; the arithmetic is ``O(n^2)`` for
    singular values only.
    """
    if n <= 0:
        return ZERO_COST
    flops = coeffs.bdc_flops_per_n2 * float(n) * n
    compute_s = flops / (coeffs.cpu_gflops * 1e9)
    xfer = 2.0 * n * storage.sizeof / (coeffs.pcie_gbs * 1e9)
    return LaunchCost(
        seconds=coeffs.cpu_call_overhead_s + compute_s + xfer,
        flops=flops,
        bytes=2.0 * n * storage.sizeof,
        compute_seconds=compute_s,
        memory_seconds=xfer,
    )


def transfer_cost(
    nbytes: float, coeffs: CostCoefficients = DEFAULT_COEFFS
) -> LaunchCost:
    """Host<->device transfer over the PCIe-class link."""
    s = nbytes / (coeffs.pcie_gbs * 1e9)
    return LaunchCost(seconds=s, bytes=nbytes, memory_seconds=s)
