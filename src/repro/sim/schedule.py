"""Closed-form schedule model: predict simulated runtime without numerics.

The stage-1 reduction (Algorithm 1/2) has a fully static launch schedule:
for each of the ``N = n / TILESIZE`` diagonal tiles, an RQ sweep and an LQ
sweep issue a fixed pattern of panel and update launches.  This module
walks that schedule *analytically* - the launch sequence and its cost are
computed without touching matrix data - which lets the benchmark harness
price the paper's full size grid (up to 131072 for FP16 on H100) in
milliseconds.

Consistency guarantee: for sizes where the numeric driver actually runs,
``predict(...)`` charges exactly the same launches as the traced execution
(pinned by a property test in ``tests/test_schedule_consistency.py``).

Fused vs unfused (Figure 2): ``fused=True`` prices one FTSQRT + one FTSMQR
launch per sweep; ``fused=False`` prices one TSQRT + one TSMQR launch per
below-diagonal tile row, reproducing the paper's quadratic-vs-linear launch
scaling.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..backends.backend import BackendLike
from ..errors import ShapeError
from ..precision import PrecisionLike
from .costmodel import (
    DEFAULT_COEFFS,
    CostCoefficients,
    LaunchCost,
    bidiag_solve_cost,
    brd_cost,
    brd_launch_count,
    panel_cost,
    update_cost,
)
from .params import KernelParams
from .tracing import Stage

__all__ = ["TimeBreakdown", "predict", "stage1_launch_count"]


@dataclass
class TimeBreakdown:
    """Predicted simulated runtime, attributed per stage.

    ``panel_s`` / ``update_s`` / ``brd_s`` / ``solve_s`` include the launch
    overheads of their own kernels, matching the tracer's accounting.
    """

    n: int
    panel_s: float = 0.0
    update_s: float = 0.0
    brd_s: float = 0.0
    solve_s: float = 0.0
    launches: Dict[str, int] = field(default_factory=dict)
    flops: float = 0.0
    bytes: float = 0.0

    @property
    def total_s(self) -> float:
        """End-to-end simulated seconds."""
        return self.panel_s + self.update_s + self.brd_s + self.solve_s

    @property
    def stage1_s(self) -> float:
        """Reduction to band form (panel + trailing update)."""
        return self.panel_s + self.update_s

    @property
    def launch_total(self) -> int:
        """Total kernel launches."""
        return sum(self.launches.values())

    def stage_fractions(self) -> Dict[str, float]:
        """Figure 6 quantities: each stage's share of total runtime."""
        t = self.total_s
        if t <= 0.0:
            return {}
        return {
            Stage.PANEL: self.panel_s / t,
            Stage.UPDATE: self.update_s / t,
            Stage.BRD: self.brd_s / t,
            Stage.SOLVE: self.solve_s / t,
        }


def stage1_launch_count(nbtiles: int, fused: bool = True) -> int:
    """Total stage-1 kernel launches for an ``N x N`` tile grid.

    Fused kernels launch O(N) kernels, unfused O(N^2) - the scaling claim
    of section 3.2 ("quadratically with matrix size when using unfused
    kernels, but only linearly with fused kernels" in terms of tile count).
    """
    if nbtiles < 1:
        raise ShapeError("need at least one tile")
    total = 1  # final diagonal GEQRT
    for k in range(nbtiles - 1):
        w = nbtiles - 1 - k  # trailing tiles right of / below diagonal
        r2 = w - 1  # LQ below-panel rows
        # RQ sweep: GEQRT + UNMQR
        total += 2
        if fused:
            total += 2  # FTSQRT + FTSMQR
        else:
            total += 2 * w  # w x (TSQRT + TSMQR)
        # LQ sweep: GEQRT + UNMQR
        total += 2
        if r2 > 0:
            total += 2 if fused else 2 * r2
    return total


def predict_resolved(
    n: int, config, check_capacity: bool = True
) -> TimeBreakdown:
    """Single-matrix prediction against a resolved ``SolveConfig``.

    The single shared code path behind :meth:`repro.Solver.predict` and
    the legacy :func:`predict` shim.
    """
    be = config.backend
    storage = config.require_precision("prediction")
    compute = be.compute_precision(storage)
    params = config.params
    fused = config.fused
    coeffs = config.coeffs
    if n < 1:
        raise ShapeError(f"matrix order must be positive, got {n}")
    if check_capacity:
        be.check_capacity(n, storage)

    spec = be.device
    ts = params.tilesize
    nbtiles = max(1, math.ceil(n / ts))
    npad = nbtiles * ts
    overhead = spec.launch_overhead_s

    bd = TimeBreakdown(n=n)
    launches: Dict[str, int] = {}

    def add(kind: str, stage: str, cost: LaunchCost, count: int = 1) -> None:
        if count <= 0:
            return
        launches[kind] = launches.get(kind, 0) + count
        seconds = count * (cost.seconds + overhead)
        if stage == Stage.PANEL:
            bd.panel_s += seconds
        elif stage == Stage.UPDATE:
            bd.update_s += seconds
        elif stage == Stage.BRD:
            bd.brd_s += seconds
        else:
            bd.solve_s += seconds
        bd.flops += count * cost.flops
        bd.bytes += count * cost.bytes

    # cost of each kernel shape is k-dependent only through widths/rows;
    # memoize the three panel shapes once.
    geqrt = panel_cost(spec, params, storage, compute, 1, 1, coeffs)
    tsqrt = panel_cost(spec, params, storage, compute, 1, 2, coeffs)

    for k in range(nbtiles - 1):
        w = nbtiles - 1 - k  # trailing width in tiles
        width = w * ts  # trailing width in columns
        r = w  # RQ below-diagonal tile rows
        r2 = w - 1  # LQ right-of-superdiagonal tile cols

        # ---- RQ sweep -------------------------------------------------- #
        add("geqrt", Stage.PANEL, geqrt)
        add(
            "unmqr",
            Stage.UPDATE,
            update_cost(
                spec, params, storage, compute, width, 1, False, coeffs
            ),
        )
        if r > 0:
            if fused:
                add(
                    "ftsqrt",
                    Stage.PANEL,
                    panel_cost(spec, params, storage, compute, r, 2, coeffs),
                )
                add(
                    "ftsmqr",
                    Stage.UPDATE,
                    update_cost(
                        spec, params, storage, compute, width, r, True, coeffs
                    ),
                )
            else:
                add("tsqrt", Stage.PANEL, tsqrt, count=r)
                add(
                    "tsmqr",
                    Stage.UPDATE,
                    update_cost(
                        spec, params, storage, compute, width, 1, True, coeffs
                    ),
                    count=r,
                )

        # ---- LQ sweep (transposed) ------------------------------------- #
        add("geqrt", Stage.PANEL, geqrt)
        add(
            "unmqr",
            Stage.UPDATE,
            update_cost(
                spec, params, storage, compute, width, 1, False, coeffs
            ),
        )
        if r2 > 0:
            if fused:
                add(
                    "ftsqrt",
                    Stage.PANEL,
                    panel_cost(spec, params, storage, compute, r2, 2, coeffs),
                )
                add(
                    "ftsmqr",
                    Stage.UPDATE,
                    update_cost(
                        spec, params, storage, compute, width, r2, True, coeffs
                    ),
                )
            else:
                add("tsqrt", Stage.PANEL, tsqrt, count=r2)
                add(
                    "tsmqr",
                    Stage.UPDATE,
                    update_cost(
                        spec, params, storage, compute, width, 1, True, coeffs
                    ),
                    count=r2,
                )

    # final diagonal tile
    add("geqrt", Stage.PANEL, geqrt)

    # ---- stage 2: band -> bidiagonal ----------------------------------- #
    brd = brd_cost(spec, npad, ts, storage, compute, coeffs)
    nbrd = brd_launch_count(npad, ts, coeffs)
    if nbrd > 0:
        launches["brd_chase"] = nbrd
        bd.brd_s += brd.seconds + nbrd * overhead
        bd.flops += brd.flops
        bd.bytes += brd.bytes

    # ---- stage 3: bidiagonal -> singular values (CPU) ------------------- #
    solve = bidiag_solve_cost(spec, n, storage, coeffs)
    launches["bdsqr_cpu"] = 1
    bd.solve_s += solve.seconds
    bd.flops += solve.flops
    bd.bytes += solve.bytes

    bd.launches = launches
    return bd


def predict(
    n: int,
    backend: BackendLike,
    precision: PrecisionLike,
    params: Optional[KernelParams] = None,
    fused: bool = True,
    coeffs: CostCoefficients = DEFAULT_COEFFS,
    check_capacity: bool = True,
) -> TimeBreakdown:
    """Predict the simulated runtime of ``svdvals`` on an ``n x n`` matrix.

    Parameters mirror :func:`repro.svdvals`; this function never executes
    numerics and is safe for the paper's largest sizes.  Thin shim over
    :class:`repro.Solver`.
    """
    from ..solver import Solver

    solver = Solver(
        backend=backend, precision=precision, params=params, coeffs=coeffs,
        fused=fused,
    )
    return solver.predict(n, check_capacity=check_capacity)
