"""Analytic runtime prediction: price the launch graph without numerics.

The solver's launch schedule is fully static per problem shape.  Since the
stage-graph refactor there is exactly *one* encoding of it - the
:class:`~repro.sim.graph.LaunchGraph` emitted by
:func:`repro.core.emit_svd_graph` - and this module is a thin wrapper that
prices that graph with the :class:`~repro.sim.graph.AnalyticExecutor`.
The launch sequence and its cost are computed without touching matrix
data, which lets the benchmark harness price the paper's full size grid
(up to 131072 for FP16 on H100) in milliseconds.

Consistency guarantee: the numeric driver replays the *same* graph, so
``predict(...)`` charges identical launches and per-stage seconds by
construction (pinned by the property tests in ``tests/test_graph.py``).

Fused vs unfused (Figure 2): ``fused=True`` prices one FTSQRT + one FTSMQR
launch per sweep; ``fused=False`` prices one TSQRT + one TSMQR launch per
below-diagonal tile row, reproducing the paper's quadratic-vs-linear launch
scaling (:func:`stage1_launch_count` is the closed-form count).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..backends.backend import BackendLike
from ..errors import ShapeError
from ..precision import PrecisionLike
from .costmodel import DEFAULT_COEFFS, CostCoefficients
from .params import KernelParams
from .tracing import Stage

__all__ = ["TimeBreakdown", "predict", "stage1_launch_count"]


@dataclass
class TimeBreakdown:
    """Predicted simulated runtime, attributed per stage.

    ``panel_s`` / ``update_s`` / ``brd_s`` / ``solve_s`` include the launch
    overheads of their own kernels, matching the tracer's accounting.
    ``comm_s`` is the device-to-device communication time of partitioned
    (``ngpu > 1``) predictions — zero on single-device runs; for
    partitioned predictions ``update_s`` is the per-device critical path
    (the concurrent shards' maximum), not the serial shard sum.
    ``io_s`` is the host<->device transfer time of out-of-core
    predictions (the ``h2d_tile`` / ``d2h_tile`` nodes a rewritten graph
    carries; see :mod:`repro.sim.outofcore`) — zero for in-core runs.

    Cluster predictions (``nnodes > 1``) attribute further:
    ``comm_intra_s`` / ``comm_inter_s`` split ``comm_s`` by the fabric
    tier each comm node crossed, and ``queue_s`` is the
    resource-contention component of an event-simulated makespan (time
    the critical chain spent waiting for a busy stream / link / fabric
    lane; see :mod:`repro.sim.events`) — zero for analytic pricings.

    Fleet predictions (event-simulated; heterogeneous or multi-device)
    also carry ``device_busy_s``: per-rank ``(label, seconds)`` pairs of
    compute-lane occupancy, so one ``format_breakdown`` call shows the
    straggler A100 in an H100 fleet.  Empty for analytic pricings.
    """

    n: int
    panel_s: float = 0.0
    update_s: float = 0.0
    brd_s: float = 0.0
    solve_s: float = 0.0
    comm_s: float = 0.0
    io_s: float = 0.0
    launches: Dict[str, int] = field(default_factory=dict)
    flops: float = 0.0
    bytes: float = 0.0
    ngpu: int = 1
    nnodes: int = 1
    comm_intra_s: float = 0.0
    comm_inter_s: float = 0.0
    queue_s: float = 0.0
    device_busy_s: Tuple[Tuple[str, float], ...] = ()

    @property
    def total_s(self) -> float:
        """End-to-end simulated seconds."""
        return (
            self.panel_s + self.update_s + self.brd_s + self.solve_s
            + self.comm_s + self.io_s + self.queue_s
        )

    @property
    def stage1_s(self) -> float:
        """Reduction to band form (panel + trailing update)."""
        return self.panel_s + self.update_s

    @property
    def launch_total(self) -> int:
        """Total kernel launches."""
        return sum(self.launches.values())

    def stage_fractions(self) -> Dict[str, float]:
        """Figure 6 quantities: each stage's share of total runtime."""
        t = self.total_s
        if t <= 0.0:
            return {}
        out = {
            Stage.PANEL: self.panel_s / t,
            Stage.UPDATE: self.update_s / t,
            Stage.BRD: self.brd_s / t,
            Stage.SOLVE: self.solve_s / t,
        }
        if self.comm_inter_s > 0.0:
            # cluster runs: report the tier split instead of one comm row
            out["comm_intra"] = self.comm_intra_s / t
            out["comm_inter"] = self.comm_inter_s / t
        elif self.comm_s > 0.0:
            out[Stage.COMM] = self.comm_s / t
        if self.io_s > 0.0:
            out[Stage.TRANSFER] = self.io_s / t
        if self.queue_s > 0.0:
            out["queue"] = self.queue_s / t
        return out

    def device_utilization(self) -> Dict[str, float]:
        """Per-device busy share of the makespan (fleet predictions).

        ``device_busy_s`` seconds divided by ``total_s``, keyed by the
        rank label — 1.0 is a rank computing for the whole run, and a
        wide spread means the partition left slow ranks idle (or
        overloaded them).  Empty when the prediction carried no
        per-device occupancy (analytic pricings).
        """
        t = self.total_s
        if t <= 0.0 or not self.device_busy_s:
            return {}
        return {label: busy / t for label, busy in self.device_busy_s}


def stage1_launch_count(nbtiles: int, fused: bool = True) -> int:
    """Total stage-1 kernel launches for an ``N x N`` tile grid.

    Fused kernels launch O(N) kernels, unfused O(N^2) - the scaling claim
    of section 3.2 ("quadratically with matrix size when using unfused
    kernels, but only linearly with fused kernels" in terms of tile count).
    """
    if nbtiles < 1:
        raise ShapeError("need at least one tile")
    total = 1  # final diagonal GEQRT
    for k in range(nbtiles - 1):
        w = nbtiles - 1 - k  # trailing tiles right of / below diagonal
        r2 = w - 1  # LQ below-panel rows
        # RQ sweep: GEQRT + UNMQR
        total += 2
        if fused:
            total += 2  # FTSQRT + FTSMQR
        else:
            total += 2 * w  # w x (TSQRT + TSMQR)
        # LQ sweep: GEQRT + UNMQR
        total += 2
        if r2 > 0:
            total += 2 if fused else 2 * r2
    return total


def predict_resolved(
    n: int, config, check_capacity: bool = True
) -> TimeBreakdown:
    """Single-matrix prediction against a resolved ``SolveConfig``.

    The single shared code path behind :meth:`repro.Solver.predict` and
    the legacy :func:`predict` shim: bind the shape-parametric sweep
    structure to ``(n, config)`` (memoized; no per-tile node emission)
    and price the struct-of-arrays table analytically.  Float-identical
    to pricing ``emit_svd_graph(n, config, counted=True)`` node by node.
    """
    # the structure binder lives with the drivers; importing it lazily
    # keeps repro.sim importable before repro.core
    from ..core.svd import bind_svd_table

    storage = config.require_precision("prediction")
    if n < 1:
        raise ShapeError(f"matrix order must be positive, got {n}")
    if check_capacity:
        config.backend.check_capacity(n, storage)
    from .table import price_table

    return price_table(bind_svd_table(n, config), config, storage, None)


def predict(
    n: int,
    backend: BackendLike,
    precision: PrecisionLike,
    params: Optional[KernelParams] = None,
    fused: bool = True,
    coeffs: CostCoefficients = DEFAULT_COEFFS,
    check_capacity: bool = True,
) -> TimeBreakdown:
    """Predict the simulated runtime of ``svdvals`` on an ``n x n`` matrix.

    Parameters mirror :func:`repro.svdvals`; this function never executes
    numerics and is safe for the paper's largest sizes.  Thin shim over
    :class:`repro.Solver`.
    """
    from ..solver import Solver

    solver = Solver(
        backend=backend, precision=precision, params=params, coeffs=coeffs,
        fused=fused,
    )
    return solver.predict(n, check_capacity=check_capacity)
